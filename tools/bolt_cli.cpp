// bolt — command-line front end for the library's file-based workflows.
//
//   bolt synth    --dataset mnist|lstw|yelp --rows N --out data.csv
//   bolt train    --data train.csv --trees 10 --height 4 --out model.forest
//                 [--boosted] [--export-dot model.dot]
//   bolt compress --model model.forest --out model.bolt
//                 [--threshold T | --plan --calibration data.csv --cores C]
//   bolt predict  --artifact model.bolt --data test.csv [--explain K]
//                 [--profile]
//   bolt verify   --model model.forest --artifact model.bolt [--samples N]
//   bolt serve    --artifact model.bolt --socket /tmp/bolt.sock
//                 [--batching ...] [--idle-timeout-ms MS]
//                 [--metrics-port P] [--trace-sample N]
//                 [--timeline-sample N] [--timeline-ring K]
//                 [--slow-threshold-us T] [--slow-ring K]
//   bolt stats    --socket /tmp/bolt.sock [--json]
//   bolt timeline --port P [--host H] [--out trace.json]
//   bolt trace    --socket /tmp/bolt.sock --data test.csv [--count N]
//   bolt slow     --socket /tmp/bolt.sock [--json]
//   bolt batch    --data test.csv (--socket /tmp/bolt.sock |
//                 --artifact model.bolt [--naive]) [--batch N]
//   bolt pack     --artifact model.bolt --out model.boltv2
//   bolt inspect  --model model.forest | --artifact model.bolt
//
// Model-file commands accept v1 ("BOLF" stream) and v2 ("BOL2" flat,
// mmap'd zero-copy) artifacts interchangeably, dispatching on the magic.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "bolt/artifact/handle.h"
#include "bolt/artifact/mapped.h"
#include "bolt/artifact/pack.h"
#include "bolt/bolt.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "forest/boosted.h"
#include "forest/dot_io.h"
#include "forest/serialize.h"
#include "forest/trainer.h"
#include "service/metrics_http.h"
#include "service/server.h"
#include "util/crc32c.h"
#include "util/timer.h"

namespace {

using namespace bolt;

/// Minimal `--key value` / `--flag` argument map.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw std::runtime_error("expected --flag, got: " + key);
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  std::string require(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("missing required --" + key);
    return values_.at(key);
  }
  long get_int(const std::string& key, long fallback) const {
    return has(key) ? std::stol(values_.at(key)) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
};

int cmd_synth(const Args& args) {
  const std::string which = args.require("dataset");
  const auto rows = static_cast<std::size_t>(args.get_int("rows", 2000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  data::Dataset ds(0, 0);
  if (which == "mnist") {
    ds = data::make_synth_mnist(rows, seed);
  } else if (which == "lstw") {
    ds = data::make_synth_lstw(rows, seed);
  } else if (which == "yelp") {
    ds = data::make_synth_yelp(rows, seed);
  } else {
    throw std::runtime_error("unknown dataset: " + which);
  }
  data::write_csv_file(ds, args.require("out"));
  std::printf("wrote %zu rows x %zu features (%zu classes) to %s\n",
              ds.num_rows(), ds.num_features(), ds.num_classes(),
              args.get("out").c_str());
  return 0;
}

int cmd_train(const Args& args) {
  data::Dataset ds = data::read_csv_file(args.require("data"));
  std::printf("loaded %zu rows x %zu features, %zu classes\n", ds.num_rows(),
              ds.num_features(), ds.num_classes());
  util::Timer timer;
  forest::Forest model;
  if (args.has("boosted")) {
    forest::BoostConfig cfg;
    cfg.num_rounds = static_cast<std::size_t>(args.get_int("trees", 10));
    cfg.max_height = static_cast<std::size_t>(args.get_int("height", 4));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    model = forest::train_boosted(ds, cfg);
  } else {
    forest::TrainConfig cfg;
    cfg.num_trees = static_cast<std::size_t>(args.get_int("trees", 10));
    cfg.max_height = static_cast<std::size_t>(args.get_int("height", 4));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    model = forest::train_random_forest(ds, cfg);
  }
  std::printf("trained %zu trees (max height %zu) in %.1f ms; "
              "training accuracy %.1f%%\n",
              model.trees.size(), model.max_height(), timer.elapsed_ms(),
              100.0 * forest::accuracy(model, ds));
  forest::save_forest_file(model, args.require("out"));
  if (args.has("export-dot")) {
    std::ofstream dot(args.get("export-dot"));
    forest::write_forest_dot(model, dot);
    std::printf("exported DOT to %s\n", args.get("export-dot").c_str());
  }
  std::printf("saved model to %s\n", args.get("out").c_str());
  return 0;
}

int cmd_compress(const Args& args) {
  const forest::Forest model =
      forest::load_forest_file(args.require("model"));
  util::Timer timer;
  core::BoltForest artifact = [&] {
    if (args.has("plan")) {
      data::Dataset calibration =
          data::read_csv_file(args.require("calibration"));
      core::PlannerConfig pc;
      pc.cores = static_cast<std::size_t>(args.get_int("cores", 1));
      core::PlanResult planned = core::plan(model, calibration, pc);
      const auto& best = planned.best_candidate();
      std::printf("planner: threshold %zu, split %zu x %zu, %.3f us/sample "
                  "over %zu candidates\n",
                  best.threshold, best.partitions.dict_parts,
                  best.partitions.table_parts, best.avg_response_us,
                  planned.candidates.size());
      return std::move(*planned.artifact);
    }
    core::BoltConfig cfg;
    cfg.cluster.threshold =
        static_cast<std::size_t>(args.get_int("threshold", 4));
    cfg.use_bloom = args.has("bloom");
    return core::BoltForest::build(model, cfg);
  }();
  const auto& s = artifact.stats();
  std::printf("compressed in %.1f ms: %zu paths -> %zu merged -> %zu "
              "dictionary entries, %zu table entries in %zu slots, %zu KB\n",
              timer.elapsed_ms(), s.num_raw_paths, s.num_merged_paths,
              s.num_clusters, s.table_entries, s.table_slots,
              artifact.memory_bytes() / 1024);
  artifact.save_file(args.require("out"));
  std::printf("saved artifact to %s\n", args.get("out").c_str());
  return 0;
}

/// Opens a model file of either artifact generation: v1 "BOLF" is
/// heap-deserialized, v2 "BOL2" is mmap'd zero-copy. Commands that only
/// read the model go through this so both formats work everywhere.
std::shared_ptr<const core::BoltForest> load_any_artifact(
    const std::string& path) {
  return artifact::ModelHandle(path).current();
}

int cmd_predict(const Args& args) {
  const auto artifact_ptr = load_any_artifact(args.require("artifact"));
  const core::BoltForest& artifact = *artifact_ptr;
  data::Dataset ds = data::read_csv_file(args.require("data"));
  core::BoltEngine engine(artifact);
  const auto explain_k = static_cast<std::size_t>(args.get_int("explain", 0));
  const bool profile = args.has("profile");
  core::EntryProfile entry_profile(artifact.dictionary().num_entries());

  std::size_t correct = 0;
  util::Timer timer;
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    int cls;
    if (profile) {
      cls = engine.predict_profiled(ds.row(i), entry_profile);
      correct += cls == ds.label(i);
      continue;
    }
    if (explain_k > 0) {
      core::Explanation why(artifact.num_features());
      cls = engine.predict_explained(ds.row(i), why);
      std::printf("%zu: class %d  salient:", i, cls);
      for (std::uint32_t f : why.top_k(explain_k)) {
        if (why.scores()[f] <= 0) break;
        std::printf(" f%u(%.0f)", f, why.scores()[f]);
      }
      std::printf("\n");
    } else {
      cls = engine.predict(ds.row(i));
      std::printf("%d\n", cls);
    }
    correct += cls == ds.label(i);
  }
  std::fprintf(stderr, "%zu samples in %.1f ms (%.2f us/sample), "
               "accuracy vs labels %.1f%%\n",
               ds.num_rows(), timer.elapsed_ms(),
               timer.elapsed_us() / static_cast<double>(ds.num_rows()),
               100.0 * static_cast<double>(correct) /
                   static_cast<double>(std::max<std::size_t>(1, ds.num_rows())));
  if (profile) {
    std::printf("dictionary telemetry over %llu samples "
                "(false-positive rate %.2f%%):\n",
                static_cast<unsigned long long>(entry_profile.samples()),
                100.0 * entry_profile.false_positive_rate());
    std::printf("  %-8s %-12s %-12s\n", "entry", "candidates", "accepts");
    for (std::uint32_t e : entry_profile.hottest(10)) {
      if (entry_profile.accepts()[e] == 0) break;
      std::printf("  %-8u %-12llu %-12llu\n", e,
                  static_cast<unsigned long long>(entry_profile.candidates()[e]),
                  static_cast<unsigned long long>(entry_profile.accepts()[e]));
    }
  }
  return 0;
}

/// Client-side connection options shared by every command that dials a
/// live server. The 5 s default connect budget (retry with backoff inside
/// InferenceClient) lets `bolt serve ... & bolt stats` sequences work
/// without sleep-and-pray startup ordering.
service::ClientOptions client_options(const Args& args) {
  service::ClientOptions o;
  o.connect_timeout_ms =
      static_cast<std::uint32_t>(args.get_int("connect-timeout-ms", 5000));
  o.io_timeout_ms =
      static_cast<std::uint32_t>(args.get_int("io-timeout-ms", 0));
  return o;
}

/// Where a client command dials: `--tcp host:port` wins over `--socket`
/// (both transports speak the identical protocol).
service::Endpoint client_endpoint(const Args& args) {
  if (args.has("tcp")) return service::Endpoint::parse_tcp(args.get("tcp"));
  return service::Endpoint::unix_socket(args.get("socket", "/tmp/bolt.sock"));
}

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_reload = 0;

int cmd_serve(const Args& args) {
  // The handle owns "the current model"; every engine holds its own
  // shared_ptr, so a future reload can swap the model under a live server
  // without invalidating in-flight requests. v2 artifacts are mmap'd
  // zero-copy (all engines share one read-only mapping); v1 loads heap.
  artifact::ModelHandle::Options handle_opts;
  // --trust-artifact is the map-and-fixup tier (no CRC pass, no O(n)
  // structural scans); only for files this host packed and verified.
  handle_opts.verify_checksums =
      !args.has("no-verify-checksums") && !args.has("trust-artifact");
  handle_opts.validate_structure = !args.has("trust-artifact");
  auto* handle =  // leaked on purpose: outlives engines for process life
      new artifact::ModelHandle(args.require("artifact"), handle_opts);
  const std::shared_ptr<const core::BoltForest> artifact = handle->current();
  const std::string socket = args.get("socket", "/tmp/bolt.sock");
  service::ServerOptions opts;
  opts.max_connections =
      static_cast<std::size_t>(args.get_int("max-connections", 256));
  opts.idle_timeout_ms =
      static_cast<std::uint32_t>(args.get_int("idle-timeout-ms", 0));
  opts.tcp_port = static_cast<std::int32_t>(args.get_int("tcp-port", -1));
  opts.listen_backlog =
      static_cast<std::int32_t>(args.get_int("listen-backlog", 0));
  const std::string front_end = args.get("front-end", "threaded");
  if (front_end == "event-loop" || front_end == "event_loop") {
    opts.front_end = service::FrontEnd::kEventLoop;
    opts.workers = static_cast<std::size_t>(args.get_int("workers", 2));
  } else if (front_end != "threaded") {
    throw std::runtime_error(
        "--front-end must be threaded or event-loop, got: " + front_end);
  }
  if (args.has("batching")) {
    opts.scheduler.enabled = true;
    opts.scheduler.max_batch_size =
        static_cast<std::size_t>(args.get_int("max-batch", 64));
    opts.scheduler.max_queue_delay_us =
        static_cast<std::uint32_t>(args.get_int("batch-delay-us", 200));
    opts.scheduler.queue_capacity =
        static_cast<std::size_t>(args.get_int("queue-capacity", 1024));
    opts.scheduler.deadline_us =
        static_cast<std::uint32_t>(args.get_int("deadline-us", 0));
    opts.scheduler.workers =
        static_cast<std::size_t>(args.get_int("sched-workers", 0));
  }
  opts.metrics_port =
      static_cast<std::int32_t>(args.get_int("metrics-port", -1));
  opts.trace.sample_every =
      static_cast<std::uint32_t>(args.get_int("trace-sample", 0));
  opts.trace.slow_threshold_us =
      static_cast<std::uint32_t>(args.get_int("slow-threshold-us", 0));
  opts.trace.slow_ring_capacity =
      static_cast<std::size_t>(args.get_int("slow-ring", 16));
  opts.timeline.sample_every =
      static_cast<std::uint32_t>(args.get_int("timeline-sample", 0));
  opts.timeline.ring_capacity =
      static_cast<std::size_t>(args.get_int("timeline-ring", 4096));
  // Admin surface: /readyz and the model_generation gauge track the
  // handle, so rollouts (SIGHUP reloads below) are observable end to end.
  opts.model_generation = [handle] { return handle->generation(); };
  opts.extra_build_labels.emplace_back(
      "artifact_version", std::to_string(handle->artifact_version()));
  opts.extra_build_labels.emplace_back(
      "artifact_mode", artifact->mapped() ? "mapped" : "heap");
  opts.extra_build_labels.emplace_back(
      "artifact_checksums",
      handle->artifact_version() == 2
          ? (!handle_opts.validate_structure
                 ? "trusted"
                 : (handle_opts.verify_checksums ? "verified" : "skipped"))
          : "n/a");
  service::InferenceServer server(
      socket,
      [handle] {
        return std::make_unique<core::BoltEngine>(handle->current());
      },
      opts);
  server.start();
  std::printf("model %s: artifact v%u (%s storage, pools own %zu KB)\n",
              handle->path().c_str(), handle->artifact_version(),
              artifact->mapped() ? "mapped" : "heap",
              artifact->owned_bytes() / 1024);
  std::printf("serving %s (%zu dictionary entries, %zu KB); Ctrl-C stops\n"
              "front end %s; dynamic batching %s; scrape live metrics with: "
              "bolt stats --socket %s\n",
              socket.c_str(), artifact->dictionary().num_entries(),
              artifact->memory_bytes() / 1024,
              opts.front_end == service::FrontEnd::kEventLoop ? "event-loop"
                                                              : "threaded",
              opts.scheduler.enabled ? "ON" : "off", socket.c_str());
  if (server.tcp_port() >= 0) {
    std::printf("tcp transport: 127.0.0.1:%d (e.g. bolt stats --tcp "
                "127.0.0.1:%d)\n",
                server.tcp_port(), server.tcp_port());
  }
  if (server.metrics_http_port() >= 0) {
    std::printf("prometheus: http://127.0.0.1:%d/metrics\n",
                server.metrics_http_port());
  }
  if (opts.trace.slow_threshold_us > 0) {
    std::printf("slow-request capture armed at %u us (ring of %zu); "
                "retrieve with: bolt slow --socket %s\n",
                opts.trace.slow_threshold_us, opts.trace.slow_ring_capacity,
                socket.c_str());
  }
  std::signal(SIGINT, [](int) { g_stop = 1; });
  std::signal(SIGTERM, [](int) { g_stop = 1; });
  std::signal(SIGHUP, [](int) { g_reload = 1; });
  while (!g_stop) {
    struct timespec ts = {0, 200 * 1000 * 1000};
    nanosleep(&ts, nullptr);
    if (g_reload) {
      g_reload = 0;
      // Hot swap: re-read the artifact path and swap generations under
      // live traffic. A bad file on disk leaves the old model serving.
      try {
        handle->reload();
        std::printf("reloaded %s: generation %llu\n", handle->path().c_str(),
                    static_cast<unsigned long long>(handle->generation()));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "reload failed (still serving generation "
                     "%llu): %s\n",
                     static_cast<unsigned long long>(handle->generation()),
                     e.what());
      }
    }
  }
  std::printf("served %lu requests\n",
              static_cast<unsigned long>(server.requests_served()));
  server.stop();
  return 0;
}

int cmd_stats(const Args& args) {
  service::InferenceClient client(client_endpoint(args),
                                  client_options(args));
  const std::string body = client.stats(args.has("json"));
  std::fwrite(body.data(), 1, body.size(), stdout);
  if (!body.empty() && body.back() != '\n') std::printf("\n");
  return 0;
}

int cmd_timeline(const Args& args) {
  // Drains a serving process's timeline rings through the admin HTTP
  // surface (GET /timeline) as Chrome Trace Event JSON — load the output
  // in Perfetto / chrome://tracing (docs/OBSERVABILITY.md). The server
  // must be running with --metrics-port and --timeline-sample.
  const auto port = static_cast<std::uint16_t>(args.get_int("port", 0));
  if (port == 0) throw std::runtime_error("missing required --port");
  const std::string host = args.get("host", "127.0.0.1");
  int status = 0;
  const std::string body =
      service::admin_http_get(host, port, "/timeline", &status);
  if (status != 200) {
    throw std::runtime_error("GET /timeline returned " +
                             std::to_string(status) + ": " + body);
  }
  if (args.has("out")) {
    std::ofstream out(args.get("out"), std::ios::binary);
    if (!out) throw std::runtime_error("cannot open " + args.get("out"));
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    std::printf("wrote %zu bytes of trace JSON to %s\n", body.size(),
                args.get("out").c_str());
  } else {
    std::fwrite(body.data(), 1, body.size(), stdout);
    if (!body.empty() && body.back() != '\n') std::printf("\n");
  }
  return 0;
}

int cmd_trace(const Args& args) {
  // Round-trips samples with the trace flag set and prints the server's
  // per-stage latency breakdown for each — the quickest way to see where
  // a live server spends a request's time (docs/OBSERVABILITY.md).
  data::Dataset ds = data::read_csv_file(args.require("data"));
  if (ds.num_rows() == 0) throw std::runtime_error("no rows in --data");
  const auto count = static_cast<std::size_t>(
      std::min<long>(args.get_int("count", 1),
                     static_cast<long>(ds.num_rows())));
  service::InferenceClient client(client_endpoint(args),
                                  client_options(args));
  for (std::size_t i = 0; i < count; ++i) {
    const service::Response resp = client.classify_traced(ds.row(i));
    std::printf("row %zu: class %d", i, resp.predicted_class);
    if (!resp.traced) {
      std::printf("  (no trace: server built with BOLT_TRACING=0)\n");
      continue;
    }
    std::printf("  total %.1f us\n",
                static_cast<double>(resp.trace_total_ns) / 1e3);
    std::uint64_t spans_ns = 0;
    for (const service::TraceSpan& s : resp.trace) {
      spans_ns += s.total_ns;
      std::printf("  %-12s %9.1f us  (x%u)\n",
                  util::stage_name(static_cast<util::Stage>(s.stage)),
                  static_cast<double>(s.total_ns) / 1e3, s.count);
    }
    std::printf("  %-12s %9.1f us  (%.0f%% of total)\n", "spans sum",
                static_cast<double>(spans_ns) / 1e3,
                resp.trace_total_ns > 0
                    ? 100.0 * static_cast<double>(spans_ns) /
                          static_cast<double>(resp.trace_total_ns)
                    : 0.0);
  }
  return 0;
}

int cmd_slow(const Args& args) {
  service::InferenceClient client(client_endpoint(args),
                                  client_options(args));
  const std::string body = client.slow(args.has("json"));
  std::fwrite(body.data(), 1, body.size(), stdout);
  if (!body.empty() && body.back() != '\n') std::printf("\n");
  return 0;
}

int cmd_batch(const Args& args) {
  data::Dataset ds = data::read_csv_file(args.require("data"));
  const std::size_t stride = ds.num_features();
  const auto batch = static_cast<std::size_t>(args.get_int("batch", 64));
  if (batch == 0) throw std::runtime_error("--batch must be positive");
  std::vector<int> classes(ds.num_rows());

  util::Timer timer;
  if (args.has("socket") || args.has("tcp")) {
    // Remote: one BATCH frame per `batch` rows through a live server.
    service::InferenceClient client(client_endpoint(args),
                                    client_options(args));
    for (std::size_t begin = 0; begin < ds.num_rows(); begin += batch) {
      const std::size_t n = std::min(batch, ds.num_rows() - begin);
      const auto out = client.classify_batch(
          {ds.raw_features().data() + begin * stride, n * stride}, n, stride);
      std::copy(out.begin(), out.end(), classes.begin() + begin);
    }
  } else {
    // Local: the amortized batch kernel (or, with --naive, the per-row
    // loop it replaced, for quick A/B runs).
    const auto artifact = load_any_artifact(args.require("artifact"));
    core::BoltEngine engine(artifact);
    for (std::size_t begin = 0; begin < ds.num_rows(); begin += batch) {
      const std::size_t n = std::min(batch, ds.num_rows() - begin);
      std::span<const float> rows{ds.raw_features().data() + begin * stride,
                                  n * stride};
      std::span<int> out{classes.data() + begin, n};
      if (args.has("naive")) {
        engine.predict_batch_naive(rows, n, stride, out);
      } else {
        engine.predict_batch(rows, n, stride, out);
      }
    }
  }
  const double us = timer.elapsed_us();

  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    std::printf("%d\n", classes[i]);
    correct += classes[i] == ds.label(i);
  }
  std::fprintf(stderr,
               "%zu rows in batches of %zu: %.1f ms total, %.3f us/row "
               "(%.0f rows/s), accuracy vs labels %.1f%%\n",
               ds.num_rows(), batch, us / 1e3,
               us / static_cast<double>(std::max<std::size_t>(1, ds.num_rows())),
               ds.num_rows() / (us / 1e6),
               100.0 * static_cast<double>(correct) /
                   static_cast<double>(std::max<std::size_t>(1, ds.num_rows())));
  return 0;
}

int cmd_verify(const Args& args) {
  const forest::Forest model = forest::load_forest_file(args.require("model"));
  const auto artifact = load_any_artifact(args.require("artifact"));
  util::Timer timer;
  const core::VerifyReport report = core::verify(
      model, *artifact,
      static_cast<std::size_t>(args.get_int("samples", 20000)));
  std::printf("%s verification: checked %llu %s in %.1f ms -> %llu "
              "mismatches\n",
              report.exhaustive ? "EXHAUSTIVE" : "sampled",
              static_cast<unsigned long long>(report.checked),
              report.exhaustive ? "input classes (the whole input space)"
                                : "adversarial samples",
              timer.elapsed_ms(),
              static_cast<unsigned long long>(report.mismatches));
  if (report.counterexample) {
    std::printf("counterexample (first features): ");
    for (std::size_t f = 0; f < std::min<std::size_t>(8, report.counterexample->size()); ++f) {
      std::printf("%g ", (*report.counterexample)[f]);
    }
    std::printf("...\n");
  }
  return report.ok() ? 0 : 1;
}

int cmd_pack(const Args& args) {
  // v1 -> v2 compiler (a v2 input is accepted too and re-packed): load
  // whichever generation is on disk, emit the flat mmap-able layout, then
  // re-open the result mapped — which re-verifies every section CRC and
  // every structural invariant — as a built-in self-check.
  const std::string in_path = args.require("artifact");
  const std::string out_path = args.require("out");
  util::Timer timer;
  const auto bf = load_any_artifact(in_path);
  const double load_ms = timer.elapsed_ms();
  artifact::write_v2_file(*bf, out_path);
  const double pack_ms = timer.elapsed_ms() - load_ms;

  util::Timer reopen_timer;
  artifact::MappedArtifact packed = artifact::MappedArtifact::open(out_path);
  const core::BoltForest check = packed.build_forest();
  const double reopen_ms = reopen_timer.elapsed_ms();
  if (check.dictionary().num_entries() != bf->dictionary().num_entries() ||
      check.table().num_slots() != bf->table().num_slots() ||
      check.results().size() != bf->results().size()) {
    throw std::runtime_error("pack self-check: packed model disagrees");
  }
  std::printf("packed %s -> %s: %zu KB, %u sections\n", in_path.c_str(),
              out_path.c_str(), packed.file_size() / 1024,
              packed.header().num_sections);
  std::printf("  load %.1f ms, pack %.1f ms; mapped re-open (full CRC + "
              "validation) %.1f ms, pools own %zu bytes\n",
              load_ms, pack_ms, reopen_ms, check.owned_bytes());
  return 0;
}

int cmd_inspect(const Args& args) {
  if (args.has("model")) {
    const forest::Forest model = forest::load_forest_file(args.get("model"));
    std::printf("forest: %zu trees, %zu features, %zu classes\n",
                model.trees.size(), model.num_features, model.num_classes);
    std::printf("  max height %zu, total leaves %zu\n", model.max_height(),
                model.total_leaves());
    bool weighted = false;
    for (double w : model.weights) weighted |= w != 1.0;
    std::printf("  weighted: %s\n", weighted ? "yes (boosted)" : "no");
    return 0;
  }
  const std::string path = args.require("artifact");
  const unsigned version = artifact::sniff_artifact_version(path);
  std::shared_ptr<const core::BoltForest> loaded;
  if (version == 2) {
    // v2: the section table is the format — print it before the model
    // summary, with per-section CRC verification status.
    artifact::OpenOptions mo;
    mo.verify_checksums = false;  // verified per section below, reported
    artifact::MappedArtifact a = artifact::MappedArtifact::open(path, mo);
    const auto& h = a.header();
    std::printf("bolt v2 flat artifact: %s (%zu KB)\n", path.c_str(),
                a.file_size() / 1024);
    std::printf("  version %u.%u | abi 0x%08x | %u sections | header crc "
                "0x%08x ok\n",
                h.version_major, h.version_minor, h.abi_tag, h.num_sections,
                h.header_crc);
    std::printf("  %-24s %10s %12s %12s  %s\n", "section", "offset", "bytes",
                "elems", "crc32c");
    for (const artifact::SectionDesc& d : a.sections()) {
      const auto bytes = a.section_bytes(d);
      const bool ok = util::crc32c(bytes.data(), bytes.size()) == d.crc;
      std::printf("  %-24s %10llu %12llu %12llu  0x%08x %s\n",
                  artifact::section_kind_name(
                      static_cast<artifact::SectionKind>(d.kind)),
                  static_cast<unsigned long long>(d.offset),
                  static_cast<unsigned long long>(d.size),
                  static_cast<unsigned long long>(
                      d.elem_size ? d.size / d.elem_size : 0),
                  d.crc, ok ? "ok" : "MISMATCH");
    }
    loaded = std::make_shared<const core::BoltForest>(a.build_forest());
  } else {
    loaded = load_any_artifact(path);
  }
  const core::BoltForest& artifact = *loaded;
  const auto& s = artifact.stats();
  std::printf("bolt %s artifact: %zu features, %zu classes\n",
              version == 2 ? "v2 (mapped)" : "v1 (heap)",
              artifact.num_features(), artifact.num_classes());
  std::printf("  predicates %zu | paths %zu -> merged %zu\n",
              s.num_predicates, s.num_raw_paths, s.num_merged_paths);
  std::printf("  dictionary entries %zu | table entries %zu in %zu slots\n",
              s.num_clusters, s.table_entries, s.table_slots);
  std::printf("  distinct results %zu (packed votes: %s)\n",
              s.distinct_results,
              artifact.results().packed_available() ? "yes" : "no");
  std::printf("  threshold %zu | strategy %s | id-check %s | bloom %s\n",
              artifact.config().cluster.threshold,
              artifact.table().strategy() == core::TableStrategy::kDisplacement
                  ? "displacement"
                  : "seed-search",
              artifact.table().id_check() == core::IdCheck::kExact ? "exact"
                                                                   : "byte",
              artifact.bloom() ? "yes" : "no");
  std::printf("  memory %zu KB (dict %zu, table %zu)\n",
              artifact.memory_bytes() / 1024,
              artifact.dictionary().memory_bytes() / 1024,
              artifact.table().memory_bytes() / 1024);
  return 0;
}

void usage() {
  std::fprintf(stderr, R"(bolt — fast random-forest inference (Middleware '22 reproduction)

usage: bolt <command> [flags]

  synth    --dataset mnist|lstw|yelp --rows N --out data.csv [--seed S]
  train    --data train.csv --out model.forest [--trees N] [--height H]
           [--boosted] [--seed S] [--export-dot model.dot]
  compress --model model.forest --out model.bolt
           [--threshold T] [--bloom]
           [--plan --calibration calib.csv --cores C]
  predict  --artifact model.bolt --data test.csv [--explain K] [--profile]
  verify   --model model.forest --artifact model.bolt [--samples N]
  pack     --artifact model.bolt --out model.boltv2
           compile a v1 stream (or re-pack a v2) into the flat mmap-able
           v2 layout served zero-copy (docs/ARTIFACT_FORMAT.md)
  serve    --artifact model.bolt [--socket /tmp/bolt.sock]
           [--no-verify-checksums]     skip v2 per-section CRC at load
           [--trust-artifact]          v2 map-and-fixup only: skip CRC and
                                       structural scans (pack-verified files)
           [--tcp-port P]              also listen on 127.0.0.1:P (0 = ephemeral)
           [--front-end threaded|event-loop] [--workers N]
           [--listen-backlog B]        accept backlog (default SOMAXCONN)
           [--max-connections N] [--idle-timeout-ms MS]
           [--batching [--max-batch N] [--batch-delay-us D]
            [--queue-capacity Q] [--deadline-us T] [--sched-workers W]]
           [--metrics-port P] [--trace-sample N]
           [--timeline-sample N]       emit 1-in-N timeline events
           [--timeline-ring K]         per-thread event ring size
           [--slow-threshold-us T] [--slow-ring K]
           SIGHUP hot-swaps the artifact from disk (generation bump)
  stats    [--socket /tmp/bolt.sock] [--json]   scrape a live server
  timeline --port P [--host H] [--out trace.json]
           drain the /timeline admin endpoint as Chrome Trace Event JSON
           (open in Perfetto or chrome://tracing)
  trace    --data test.csv [--socket /tmp/bolt.sock] [--count N]
           per-stage latency breakdown of live requests
  slow     [--socket /tmp/bolt.sock] [--json]   dump slow-request ring
  batch    --data test.csv (--socket /tmp/bolt.sock |
           --artifact model.bolt [--naive]) [--batch N]
  inspect  --model model.forest | --artifact model.bolt

Client commands (stats/trace/slow/batch) also accept
  [--tcp HOST:PORT]           dial the TCP transport instead of --socket
  [--connect-timeout-ms MS]   retry connect with backoff (default 5000)
  [--io-timeout-ms MS]        per-op send/recv deadline (default 0 = none)
)");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    Args args(argc, argv);
    if (cmd == "synth") return cmd_synth(args);
    if (cmd == "train") return cmd_train(args);
    if (cmd == "compress") return cmd_compress(args);
    if (cmd == "predict") return cmd_predict(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "timeline") return cmd_timeline(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "slow") return cmd_slow(args);
    if (cmd == "batch") return cmd_batch(args);
    if (cmd == "verify") return cmd_verify(args);
    if (cmd == "pack") return cmd_pack(args);
    if (cmd == "inspect") return cmd_inspect(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bolt %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
