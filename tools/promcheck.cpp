// promcheck — validates Prometheus text exposition (format 0.0.4) read
// from stdin against the strict grammar checks in util/prometheus.h:
// every sample needs a preceding # TYPE, histogram buckets must be
// cumulative with ascending le bounds ending at +Inf == _count, labels
// must be legally escaped, and the body must end with a newline.
//
//   bolt serve --artifact m.bolt --metrics-port 9464 &
//   curl -sf http://127.0.0.1:9464/metrics | promcheck
//
// Exits 0 when the exposition is valid, 1 with a diagnostic otherwise.
// CI uses it to gate the /metrics endpoint (.github/workflows/ci.yml).
#include <cstdio>
#include <string>

#include "util/prometheus.h"

int main() {
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), stdin)) > 0) {
    text.append(buf, n);
  }
  if (text.empty()) {
    std::fprintf(stderr, "promcheck: empty input\n");
    return 1;
  }
  std::string error;
  if (!bolt::util::validate_prometheus(text, &error)) {
    std::fprintf(stderr, "promcheck: INVALID: %s\n", error.c_str());
    return 1;
  }
  std::printf("promcheck: OK (%zu bytes)\n", text.size());
  return 0;
}
