// promcheck — validates Prometheus text exposition (format 0.0.4) read
// from stdin against the strict grammar checks in util/prometheus.h:
// every sample needs a preceding # TYPE, histogram buckets must be
// cumulative with ascending le bounds ending at +Inf == _count, labels
// must be legally escaped and legally named (no ':', no duplicates
// within a sample), and the body must end with a newline.
//
//   bolt serve --artifact m.bolt --metrics-port 9464 &
//   curl -sf http://127.0.0.1:9464/metrics |
//     promcheck --expect service_requests_by_op --expect model_generation
//
// Each --expect NAME additionally requires at least one sample of that
// metric name (labeled or not) to be present — CI uses this to pin the
// labeled per-op/per-transport series and the model_generation gauge.
//
// Exits 0 when the exposition is valid, 1 with a diagnostic otherwise.
// CI uses it to gate the /metrics endpoint (.github/workflows/ci.yml).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/prometheus.h"

namespace {

/// True when `text` contains a sample line for metric `name`: a line
/// starting with the name followed by '{' (labeled) or ' ' (bare).
bool has_sample(const std::string& text, const std::string& name) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    if (text.compare(pos, name.size(), name) == 0) {
      const std::size_t after = pos + name.size();
      if (after < eol && (text[after] == '{' || text[after] == ' ')) {
        return true;
      }
    }
    pos = eol + 1;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> expected;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--expect") == 0 && i + 1 < argc) {
      expected.emplace_back(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: promcheck [--expect METRIC_NAME]... < exposition\n");
      return 2;
    }
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), stdin)) > 0) {
    text.append(buf, n);
  }
  if (text.empty()) {
    std::fprintf(stderr, "promcheck: empty input\n");
    return 1;
  }
  std::string error;
  if (!bolt::util::validate_prometheus(text, &error)) {
    std::fprintf(stderr, "promcheck: INVALID: %s\n", error.c_str());
    return 1;
  }
  for (const std::string& name : expected) {
    if (!has_sample(text, name)) {
      std::fprintf(stderr, "promcheck: MISSING expected metric: %s\n",
                   name.c_str());
      return 1;
    }
  }
  std::printf("promcheck: OK (%zu bytes)\n", text.size());
  return 0;
}
