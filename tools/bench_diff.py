#!/usr/bin/env python3
"""Compare a fresh BENCH_service_soak.json against the committed baseline.

Stdlib-only, so CI can run it with any python3. The comparison is
regression-direction-only: a fresh run *slower* than baseline by more than
the tolerance fails; a faster run prints the improvement and passes (CI
runners are usually faster than the box that produced the baseline, and an
improvement should never block a merge — refresh the baseline instead, see
docs/BENCHMARKS.md).

Checks:
  * overall p99 latency <= baseline p99 * (1 + --p99-tolerance)
  * protocol_errors == 0 in the fresh run
  * client/server request-count match_pct >= --min-match-pct (when the
    fresh run scraped the server successfully)
  * the fresh run's own --gate-* verdict ("pass") is true

Exit codes: 0 = pass, 1 = regression, 2 = usage/file/schema error.
"""

import argparse
import json
import sys


KNOWN_SCHEMAS = ("bolt-bench-soak-v1", "bolt-bench-coldstart-v1")


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        print(f"bench_diff: {path} is not valid JSON: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") not in KNOWN_SCHEMAS:
        print(
            f"bench_diff: {path}: expected schema in {KNOWN_SCHEMAS}, "
            f"got {doc.get('schema')!r}",
            file=sys.stderr,
        )
        sys.exit(2)
    return doc


def diff_coldstart(base, fresh, args):
    """bolt-bench-coldstart-v1 (bench_coldstart): gate the v1->v2 cold-start
    speedup and the zero-copy contract; RSS is informational."""
    failures = []

    base_sp = base["speedup_v1_over_v2"]
    fresh_sp = fresh["speedup_v1_over_v2"]
    floor = base_sp * (1.0 - args.speedup_tolerance)
    print(
        f"v1/v2 cold-start speedup: baseline {base_sp:.1f}x -> fresh "
        f"{fresh_sp:.1f}x (floor {floor:.1f}x)"
    )
    if fresh_sp < floor:
        failures.append(
            f"cold-start speedup regressed: {fresh_sp:.1f}x < {floor:.1f}x "
            f"(baseline {base_sp:.1f}x - {args.speedup_tolerance * 100:.0f}%)"
        )

    owned = fresh["zero_copy"]["mapped_owned_bytes"]
    print(f"mapped forest owned pool bytes: {owned}")
    if owned != 0:
        failures.append(f"mapped forest owns {owned} pool bytes (must be 0)")

    cs = fresh["coldstart_us"]
    print(
        f"cold start us: v1 {cs['v1_load']:.0f}, v2 verified "
        f"{cs['v2_map_verified']:.0f}, v2 map-only {cs['v2_map']:.0f}"
    )
    rss = fresh.get("rss_kb", {})
    if rss:
        print(
            f"rss kb: baseline {rss['baseline']}, 8 mapped engines "
            f"{rss['eight_mapped_engines']}, 8 heap forests "
            f"{rss['eight_heap_forests']} (informational)"
        )

    if not fresh.get("pass", False):
        failures.append("fresh run failed its own in-process gates")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True, help="committed baseline JSON")
    ap.add_argument("--fresh", required=True, help="JSON from this run")
    ap.add_argument(
        "--p99-tolerance",
        type=float,
        default=0.25,
        help="allowed relative p99 regression (default 0.25 = +25%%)",
    )
    ap.add_argument(
        "--min-match-pct",
        type=float,
        default=99.9,
        help="required client/server request-count agreement (default 99.9)",
    )
    ap.add_argument(
        "--speedup-tolerance",
        type=float,
        default=0.5,
        help="coldstart only: allowed relative speedup regression vs the "
        "baseline (default 0.5 — cold-start timing is noisy on shared CI)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    if base["schema"] != fresh["schema"]:
        print(
            f"bench_diff: schema mismatch: baseline {base['schema']!r} vs "
            f"fresh {fresh['schema']!r}",
            file=sys.stderr,
        )
        sys.exit(2)

    if base["schema"] == "bolt-bench-coldstart-v1":
        failures = diff_coldstart(base, fresh, args)
        if failures:
            print("\nbench_diff: FAIL")
            for f in failures:
                print(f"  - {f}")
            return 1
        print("\nbench_diff: PASS")
        return 0

    failures = []

    base_p99 = base["latency_us"]["p99"]
    fresh_p99 = fresh["latency_us"]["p99"]
    limit = base_p99 * (1.0 + args.p99_tolerance)
    delta = (fresh_p99 - base_p99) / base_p99 * 100.0 if base_p99 > 0 else 0.0
    print(
        f"p99 latency: baseline {base_p99:.0f} us -> fresh {fresh_p99:.0f} us "
        f"({delta:+.1f}%, limit {limit:.0f} us)"
    )
    if base_p99 > 0 and fresh_p99 > limit:
        failures.append(
            f"p99 regressed {delta:+.1f}% "
            f"(> +{args.p99_tolerance * 100:.0f}% tolerance)"
        )
    elif delta < -args.p99_tolerance * 100.0:
        print(
            "  note: large improvement — consider refreshing the committed "
            "baseline (docs/BENCHMARKS.md)"
        )

    proto = fresh["totals"]["protocol_errors"]
    print(f"protocol errors: {proto}")
    if proto != 0:
        failures.append(f"{proto} protocol errors (must be 0)")

    server = fresh.get("server", {})
    if server.get("scrape_ok"):
        match = server["match_pct"]
        print(
            f"request-count match: {match:.3f}% "
            f"(client {server['client_expected']} vs "
            f"server {server['requests_delta']}, "
            f"min {args.min_match_pct}%)"
        )
        if match < args.min_match_pct:
            failures.append(
                f"client/server request counts diverge: {match:.3f}% "
                f"< {args.min_match_pct}%"
            )
    else:
        print("request-count match: server scrape unavailable in fresh run")
        failures.append("fresh run has no server scrape to cross-check")

    if not fresh.get("pass", False):
        failures.append("fresh run failed its own --gate-* checks")

    # Context only — throughput is informational, never gated here (the
    # soak's offered rate is fixed, so responses/s mostly mirrors errors).
    base_rps = base["totals"].get("responses_per_s", 0.0)
    fresh_rps = fresh["totals"].get("responses_per_s", 0.0)
    print(f"responses/s: baseline {base_rps:.0f} -> fresh {fresh_rps:.0f}")

    if failures:
        print("\nbench_diff: FAIL")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nbench_diff: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
