// bolt_loadgen — multi-threaded open-loop soak/replay load generator for
// the inference server (docs/BENCHMARKS.md).
//
//   bolt_loadgen --socket /tmp/bolt.sock --data test.csv
//     [--tcp HOST:PORT]  (dial the TCP transport instead of --socket)
//     --duration-s 60 --rps 300 --threads 4 --arrival poisson
//     --mix classify=70,batch=20,trace=5,stats=5 --batch-rows 32
//     --gate-p99-us 50000 --gate-errors 0 --out BENCH_service_soak.json
//
// Each worker thread runs an independent arrival schedule at rps/threads
// (the superposition is the requested shape at the requested rate) and
// never closes the loop: arrivals are scheduled in advance, a busy thread
// records its lateness instead of thinning the offered load. Per-op
// latency histograms (p50/p95/p99/p999), shed/expired/error counts, and a
// before/after scrape of the server's own counters cross-check what the
// client observed against what the server recorded. At exit it prints a
// human summary, optionally emits a machine-readable BENCH_*.json, and
// sets the exit code from the --gate-* flags so CI can fail on
// regressions:
//   0 = gates passed (or none given)   1 = a gate failed
//   2 = usage error                    3 = runtime error
//
// Chaos arms (--chaos-slow / --chaos-disconnect) exercise the server's
// slow-loris reaping and mid-frame disconnect handling on throwaway
// connections; their outcomes are tracked separately and never count as
// protocol errors.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.h"  // bench::JsonWriter
#include "data/csv.h"
#include "loadgen/workload.h"
#include "service/client.h"
#include "service/metrics_http.h"
#include "service/net.h"
#include "service/protocol.h"
#include "service/unix_socket.h"
#include "util/rng.h"

namespace {

using namespace bolt;
using namespace bolt::loadgen;
using Clock = std::chrono::steady_clock;

/// Minimal `--key value` / `--flag` argument map (args start at argv[1]).
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw std::runtime_error("expected --flag, got: " + key);
      }
      key = key.substr(2);
      if (i + 1 < argc && (std::string(argv[i + 1]).rfind("--", 0) != 0 ||
                           is_number(argv[i + 1]))) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  std::string get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  std::string require(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("missing required --" + key);
    return values_.at(key);
  }
  long get_int(const std::string& key, long fallback) const {
    return has(key) ? std::stol(values_.at(key)) : fallback;
  }
  double get_double(const std::string& key, double fallback) const {
    return has(key) ? std::stod(values_.at(key)) : fallback;
  }

 private:
  // "--gate-p99-us --5" is nonsense but "-5" as a value is not; only treat
  // the next token as a flag when it is not numeric.
  static bool is_number(const char* s) {
    if (*s != '-') return false;
    ++s;
    return *s >= '0' && *s <= '9';
  }
  std::map<std::string, std::string> values_;
};

struct Config {
  std::string socket;  // empty when --tcp is used
  std::string tcp;     // HOST:PORT, empty when --socket is used
  std::string data;
  double duration_s = 10.0;
  double rps = 200.0;
  std::size_t threads = 4;
  ShapeConfig shape;
  OpMix mix;
  std::size_t batch_rows = 32;
  std::uint64_t seed = 1;
  std::string record_path, replay_path;
  std::size_t chaos_slow = 0, chaos_disconnect = 0;
  std::uint32_t chaos_dribble_ms = 5;
  std::uint32_t connect_timeout_ms = 5000;
  std::uint32_t io_timeout_ms = 10000;
  std::int32_t metrics_port = -1;
  std::string timeline_out;  // drain /timeline here after the run
  // Gates: negative = not gated.
  double gate_p99_us = -1.0;
  std::int64_t gate_errors = -1;
  double gate_match_pct = -1.0;
  std::string out_path;
  std::string label = "soak";
};

service::Endpoint endpoint(const Config& cfg) {
  return cfg.tcp.empty() ? service::Endpoint::unix_socket(cfg.socket)
                         : service::Endpoint::parse_tcp(cfg.tcp);
}

/// Client-observed tallies for one op. `sent`/`ok`/... are denominated in
/// rows (matching the server's service.requests accounting): a CLASSIFY/
/// TRACE/EXPLAIN op is one row, a BATCH op is batch-rows rows. Latency is
/// recorded once per *frame* (the unit a client actually waits on).
struct OpCounts {
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> class_errors{0};  // wire class -1
  std::atomic<std::uint64_t> shed{0};          // wire class -2 (kClassBusy)
  std::atomic<std::uint64_t> expired{0};       // wire class -3 (kClassExpired)
  std::atomic<std::uint64_t> protocol_errors{0};  // failed frames
  LatencyRecorder latency;
};

struct ChaosCounts {
  std::atomic<std::uint64_t> slow_sent{0};
  std::atomic<std::uint64_t> slow_completed{0};
  std::atomic<std::uint64_t> slow_reaped{0};
  std::atomic<std::uint64_t> disconnects{0};
};

struct Shared {
  std::array<OpCounts, kNumOps> ops;
  LatencyRecorder all_latency;  // every frame, all ops
  LatencyRecorder sojourn;      // intended arrival -> response (open loop)
  std::atomic<std::uint64_t> late_dispatches{0};
  std::atomic<std::uint64_t> batch_frames{0};
  /// Responses the server must have counted in service.requests: one per
  /// CLASSIFY/TRACE/EXPLAIN response received, `rows` per BATCH response.
  std::atomic<std::uint64_t> server_countable{0};
  ChaosCounts chaos;
  std::atomic<std::size_t> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> fatal{false};
  Clock::time_point start;
};

void tally_class(std::int32_t cls, OpCounts& oc) {
  if (cls >= 0) {
    oc.ok.fetch_add(1, std::memory_order_relaxed);
  } else if (cls == service::kClassBusy) {
    oc.shed.fetch_add(1, std::memory_order_relaxed);
  } else if (cls == service::kClassExpired) {
    oc.expired.fetch_add(1, std::memory_order_relaxed);
  } else {
    oc.class_errors.fetch_add(1, std::memory_order_relaxed);
  }
}

/// One worker: open-loop arrivals against a private connection. Never
/// throws — connection failures are counted and retried per arrival.
void run_worker(std::size_t tid, const Config& cfg,
                const data::Dataset& ds, Shared& sh,
                const std::vector<LogEvent>& replay_events,
                std::vector<LogEvent>* record_out) {
  service::ClientOptions copts;
  copts.connect_timeout_ms = cfg.connect_timeout_ms;
  copts.io_timeout_ms = cfg.io_timeout_ms;
  std::unique_ptr<service::InferenceClient> client;
  try {
    client = std::make_unique<service::InferenceClient>(endpoint(cfg), copts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen: worker %zu connect: %s\n", tid, e.what());
    sh.fatal.store(true);
    sh.ready.fetch_add(1);
    return;
  }
  sh.ready.fetch_add(1);
  while (!sh.go.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const bool replaying = !cfg.replay_path.empty();
  ShapeConfig shape = cfg.shape;
  shape.rps = cfg.rps / static_cast<double>(cfg.threads);
  ArrivalSchedule sched(shape, cfg.seed * 1000003 + tid);
  util::Rng rng(cfg.seed * 7919 + tid + 1);
  const auto duration_us =
      static_cast<std::uint64_t>(cfg.duration_s * 1e6);
  const std::size_t stride = ds.num_features();
  const std::size_t batch_starts =
      ds.num_rows() > cfg.batch_rows ? ds.num_rows() - cfg.batch_rows + 1 : 1;
  std::size_t row_idx = tid;
  std::size_t replay_i = 0;

  for (;;) {
    std::uint64_t t_us;
    Op op;
    std::uint32_t rows = 1;
    if (replaying) {
      if (replay_i >= replay_events.size()) break;
      const LogEvent& e = replay_events[replay_i++];
      t_us = e.t_us;
      op = e.op;
      rows = e.rows;
    } else {
      t_us = sched.next_us();
      if (t_us > duration_us) break;
      op = cfg.mix.pick(rng);
      rows = op == Op::kBatch
                 ? static_cast<std::uint32_t>(
                       std::min(cfg.batch_rows, ds.num_rows()))
                 : 1;
    }
    if (record_out != nullptr) record_out->push_back({t_us, op, rows});

    const Clock::time_point intended =
        sh.start + std::chrono::microseconds(t_us);
    std::this_thread::sleep_until(intended);
    if (Clock::now() - intended > std::chrono::milliseconds(1)) {
      sh.late_dispatches.fetch_add(1, std::memory_order_relaxed);
    }

    OpCounts& oc = sh.ops[static_cast<std::size_t>(op)];
    oc.sent.fetch_add(op == Op::kBatch ? rows : 1, std::memory_order_relaxed);
    if (client == nullptr) {
      // The previous op lost the connection: one quick reattempt per
      // arrival so a restarted server picks the soak back up.
      try {
        service::ClientOptions retry = copts;
        retry.connect_timeout_ms = std::min<std::uint32_t>(
            copts.connect_timeout_ms, 500);
        client =
            std::make_unique<service::InferenceClient>(endpoint(cfg), retry);
      } catch (const std::exception&) {
        oc.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    }
    const Clock::time_point send_start = Clock::now();
    try {
      switch (op) {
        case Op::kClassify: {
          const auto resp = client->classify(ds.row(row_idx % ds.num_rows()));
          tally_class(resp.predicted_class, oc);
          sh.server_countable.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        case Op::kTrace: {
          const auto resp =
              client->classify_traced(ds.row(row_idx % ds.num_rows()));
          tally_class(resp.predicted_class, oc);
          sh.server_countable.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        case Op::kExplain: {
          const auto resp = client->classify(ds.row(row_idx % ds.num_rows()),
                                             /*explain=*/true);
          tally_class(resp.predicted_class, oc);
          sh.server_countable.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        case Op::kBatch: {
          const std::size_t start = row_idx % batch_starts;
          const auto classes = client->classify_batch(
              {ds.raw_features().data() + start * stride,
               static_cast<std::size_t>(rows) * stride},
              rows, stride);
          for (std::int32_t c : classes) tally_class(c, oc);
          sh.batch_frames.fetch_add(1, std::memory_order_relaxed);
          sh.server_countable.fetch_add(classes.size(),
                                        std::memory_order_relaxed);
          break;
        }
        case Op::kStats: {
          const std::string body = client->stats(/*json=*/true);
          if (!body.empty()) oc.ok.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
      const double us = std::chrono::duration<double, std::micro>(
                            Clock::now() - send_start)
                            .count();
      oc.latency.record_us(us);
      sh.all_latency.record_us(us);
      sh.sojourn.record_us(std::chrono::duration<double, std::micro>(
                               Clock::now() - intended)
                               .count());
    } catch (const std::exception&) {
      oc.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      client.reset();  // reconnect on the next arrival
    }
    row_idx += cfg.threads;
  }
}

/// Raw classify frame bytes (4-byte length prefix + payload) for the
/// chaos arms, which bypass InferenceClient on purpose.
std::vector<std::uint8_t> raw_classify_frame(std::span<const float> row) {
  service::Request req;
  req.features.assign(row.begin(), row.end());
  std::vector<std::uint8_t> payload;
  service::encode_request(req, payload);
  std::vector<std::uint8_t> frame(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::memcpy(frame.data(), &len, 4);
  std::memcpy(frame.data() + 4, payload.data(), payload.size());
  return frame;
}

int chaos_connect(const Config& cfg) {
  if (cfg.tcp.empty()) {
    const int fd = service::detail::make_unix_socket();
    sockaddr_un addr = service::detail::make_addr(cfg.socket);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  const service::Endpoint ep = service::Endpoint::parse_tcp(cfg.tcp);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = service::detail::make_inet_addr(ep.host, ep.port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  service::detail::set_tcp_nodelay(fd);
  return fd;
}

/// Slow-client arm: a valid CLASSIFY frame dribbled a few bytes at a time.
/// Completes (server answered despite the dribble) or is reaped (server's
/// idle timeout, or EOF) — both are expected outcomes, tracked separately.
void chaos_slow_client(const Config& cfg, const data::Dataset& ds,
                       Shared& sh) {
  sh.chaos.slow_sent.fetch_add(1, std::memory_order_relaxed);
  const int fd = chaos_connect(cfg);
  if (fd < 0) {
    sh.chaos.slow_reaped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  timeval tv{10, 0};  // bounded wait for the response
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const auto frame = raw_classify_frame(ds.row(0));
  bool sent = true;
  for (std::size_t off = 0; off < frame.size() && sent; off += 8) {
    const std::size_t n = std::min<std::size_t>(8, frame.size() - off);
    sent = ::send(fd, frame.data() + off, n, MSG_NOSIGNAL) ==
           static_cast<ssize_t>(n);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(cfg.chaos_dribble_ms));
  }
  bool completed = false;
  if (sent) {
    try {
      std::vector<std::uint8_t> resp;
      completed = service::read_frame(fd, resp);
    } catch (const std::exception&) {
      completed = false;
    }
  }
  if (completed) {
    sh.chaos.slow_completed.fetch_add(1, std::memory_order_relaxed);
    // The server answered, so it counted this request.
    sh.server_countable.fetch_add(1, std::memory_order_relaxed);
  } else {
    sh.chaos.slow_reaped.fetch_add(1, std::memory_order_relaxed);
  }
  ::close(fd);
}

/// Disconnect arm: half a frame, then a hard close mid-payload.
void chaos_disconnect_midframe(const Config& cfg, const data::Dataset& ds,
                               Shared& sh) {
  const int fd = chaos_connect(cfg);
  if (fd < 0) return;
  const auto frame = raw_classify_frame(ds.row(0));
  const std::size_t half = frame.size() / 2;
  (void)!::send(fd, frame.data(), half, MSG_NOSIGNAL);
  ::close(fd);
  sh.chaos.disconnects.fetch_add(1, std::memory_order_relaxed);
}

void run_chaos(const Config& cfg, const data::Dataset& ds, Shared& sh,
               std::uint64_t duration_us) {
  std::vector<std::uint8_t> is_slow;
  is_slow.insert(is_slow.end(), cfg.chaos_slow, 1);
  is_slow.insert(is_slow.end(), cfg.chaos_disconnect, 0);
  util::Rng rng(cfg.seed * 31337 + 17);
  rng.shuffle(is_slow);
  if (is_slow.empty()) return;
  while (!sh.go.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::uint64_t interval_us =
      duration_us / (static_cast<std::uint64_t>(is_slow.size()) + 1);
  for (std::size_t k = 0; k < is_slow.size(); ++k) {
    std::this_thread::sleep_until(
        sh.start + std::chrono::microseconds((k + 1) * interval_us));
    if (is_slow[k]) {
      chaos_slow_client(cfg, ds, sh);
    } else {
      chaos_disconnect_midframe(cfg, ds, sh);
    }
  }
}

/// Extracts `"name":<uint>` from a STATS JSON body (counter section —
/// metric names are unique across sections, so a plain search suffices).
bool json_counter(const std::string& body, const std::string& name,
                  std::uint64_t& out) {
  const std::string needle = "\"" + name + "\":";
  const auto pos = body.find(needle);
  if (pos == std::string::npos) return false;
  const char* p = body.c_str() + pos + needle.size();
  if (*p < '0' || *p > '9') return false;
  out = std::strtoull(p, nullptr, 10);
  return true;
}

struct ServerCounters {
  bool ok = false;
  std::uint64_t requests = 0, errors = 0, malformed = 0;
  std::uint64_t shed = 0, expired = 0, idle_timeouts = 0;
};

ServerCounters scrape_stats(const Config& cfg) {
  ServerCounters s;
  try {
    service::ClientOptions copts;
    copts.connect_timeout_ms = cfg.connect_timeout_ms;
    copts.io_timeout_ms = cfg.io_timeout_ms;
    service::InferenceClient client(endpoint(cfg), copts);
    const std::string body = client.stats(/*json=*/true);
    s.ok = json_counter(body, "service.requests", s.requests);
    json_counter(body, "service.errors", s.errors);
    json_counter(body, "service.malformed_requests", s.malformed);
    json_counter(body, "scheduler.shed", s.shed);
    json_counter(body, "scheduler.expired", s.expired);
    json_counter(body, "service.idle_timeouts", s.idle_timeouts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen: stats scrape failed: %s\n", e.what());
  }
  return s;
}

/// GET /metrics over HTTP and pull one un-labelled sample value — the
/// independent path to the same registry, cross-checking the STATS op.
bool http_metric(std::int32_t port, const std::string& name, double& out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return false;
  }
  const std::string req = "GET /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                          "Connection: close\r\n\r\n";
  if (::send(fd, req.data(), req.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(req.size())) {
    ::close(fd);
    return false;
  }
  std::string body;
  char buf[4096];
  ssize_t r;
  while ((r = ::read(fd, buf, sizeof(buf))) > 0) body.append(buf, r);
  ::close(fd);
  // Find the exposition line "name <value>" at line start.
  std::size_t pos = 0;
  while ((pos = body.find(name + " ", pos)) != std::string::npos) {
    if (pos == 0 || body[pos - 1] == '\n') {
      out = std::strtod(body.c_str() + pos + name.size() + 1, nullptr);
      return true;
    }
    pos += name.size();
  }
  return false;
}

void print_summary_line(const char* name, const OpCounts& oc) {
  const LatencySummary s = oc.latency.summary();
  std::printf("  %-9s %10llu %10llu %7llu %7llu %7llu %7llu  "
              "%9.0f %9.0f %9.0f %9.0f\n",
              name, static_cast<unsigned long long>(oc.sent.load()),
              static_cast<unsigned long long>(oc.ok.load()),
              static_cast<unsigned long long>(oc.class_errors.load()),
              static_cast<unsigned long long>(oc.shed.load()),
              static_cast<unsigned long long>(oc.expired.load()),
              static_cast<unsigned long long>(oc.protocol_errors.load()),
              s.p50, s.p95, s.p99, s.p999);
}

void json_latency(bench::JsonWriter& w, const char* key,
                  const LatencySummary& s) {
  w.begin_object(key)
      .field("count", s.count)
      .field("mean", s.mean)
      .field("min", s.min)
      .field("max", s.max)
      .field("p50", s.p50)
      .field("p95", s.p95)
      .field("p99", s.p99)
      .field("p999", s.p999)
      .end_object();
}

void usage() {
  std::fprintf(stderr, R"(bolt_loadgen — open-loop soak/replay load generator (docs/BENCHMARKS.md)

usage: bolt_loadgen (--socket PATH | --tcp HOST:PORT) --data test.csv [flags]

traffic shape
  --duration-s S        soak length (default 10)
  --rps R               total offered arrival rate (default 200)
  --threads N           worker connections, each rps/N (default 4)
  --arrival KIND        poisson | uniform | burst (default poisson)
  --burst-size N        arrivals per burst for --arrival burst (default 32)
  --mix SPEC            op weights, e.g. classify=70,batch=20,trace=5,stats=5
  --batch-rows N        rows per BATCH frame (default 32)
  --seed S              deterministic traffic (default 1)
record / replay
  --record FILE         write the generated request log
  --replay FILE         replay a recorded log (ignores rps/mix/arrival)
chaos arms
  --chaos-slow N        N slow-client connections over the run
  --chaos-disconnect N  N disconnect-mid-frame connections over the run
  --chaos-dribble-ms MS delay between slow-client chunks (default 5)
client
  --tcp HOST:PORT          dial the TCP transport instead of --socket
  --connect-timeout-ms MS  connect retry budget (default 5000)
  --io-timeout-ms MS       per-op send/recv deadline (default 10000)
cross-check & output
  --metrics-port P      also scrape http://127.0.0.1:P/metrics
  --timeline-out FILE   after the run, drain GET /timeline (Chrome Trace
                        Event JSON) from --metrics-port into FILE
  --out FILE            write machine-readable BENCH_*.json
  --label STR           label recorded in the JSON (default "soak")
gates (exit code 1 when any fails)
  --gate-p99-us X       overall p99 latency must be <= X
  --gate-errors N       protocol + class(-1) errors must be <= N
  --gate-match-pct P    client/server request-count match must be >= P
)");
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  std::vector<LogEvent> replay_events;
  try {
    Args args(argc, argv);
    if (args.has("help")) {
      usage();
      return 0;
    }
    cfg.socket = args.get("socket");
    cfg.tcp = args.get("tcp");
    if (cfg.socket.empty() == cfg.tcp.empty()) {
      throw std::runtime_error("need exactly one of --socket / --tcp");
    }
    if (!cfg.tcp.empty()) {
      (void)service::Endpoint::parse_tcp(cfg.tcp);  // validate early
    }
    cfg.data = args.require("data");
    cfg.duration_s = args.get_double("duration-s", 10.0);
    cfg.rps = args.get_double("rps", 200.0);
    cfg.threads = static_cast<std::size_t>(args.get_int("threads", 4));
    if (cfg.threads == 0) throw std::runtime_error("--threads must be > 0");
    if (!parse_shape(args.get("arrival", "poisson"), cfg.shape.kind)) {
      throw std::runtime_error("unknown --arrival: " + args.get("arrival"));
    }
    cfg.shape.burst_size =
        static_cast<std::size_t>(args.get_int("burst-size", 32));
    if (args.has("mix")) cfg.mix = OpMix::parse(args.get("mix"));
    cfg.batch_rows = static_cast<std::size_t>(args.get_int("batch-rows", 32));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    cfg.record_path = args.get("record");
    cfg.replay_path = args.get("replay");
    cfg.chaos_slow = static_cast<std::size_t>(args.get_int("chaos-slow", 0));
    cfg.chaos_disconnect =
        static_cast<std::size_t>(args.get_int("chaos-disconnect", 0));
    cfg.chaos_dribble_ms =
        static_cast<std::uint32_t>(args.get_int("chaos-dribble-ms", 5));
    cfg.connect_timeout_ms =
        static_cast<std::uint32_t>(args.get_int("connect-timeout-ms", 5000));
    cfg.io_timeout_ms =
        static_cast<std::uint32_t>(args.get_int("io-timeout-ms", 10000));
    cfg.metrics_port =
        static_cast<std::int32_t>(args.get_int("metrics-port", -1));
    cfg.timeline_out = args.get("timeline-out");
    if (!cfg.timeline_out.empty() && cfg.metrics_port <= 0) {
      throw std::runtime_error("--timeline-out requires --metrics-port");
    }
    if (args.has("gate-p99-us")) {
      cfg.gate_p99_us = args.get_double("gate-p99-us", -1.0);
    }
    if (args.has("gate-errors")) {
      cfg.gate_errors = args.get_int("gate-errors", 0);
    }
    if (args.has("gate-match-pct")) {
      cfg.gate_match_pct = args.get_double("gate-match-pct", 99.9);
    }
    cfg.out_path = args.get("out");
    cfg.label = args.get("label", "soak");
    if (!cfg.replay_path.empty()) {
      replay_events = read_request_log(cfg.replay_path);
      if (replay_events.empty()) {
        throw std::runtime_error("replay log has no events");
      }
      std::sort(replay_events.begin(), replay_events.end(),
                [](const LogEvent& a, const LogEvent& b) {
                  return a.t_us < b.t_us;
                });
      cfg.duration_s =
          static_cast<double>(replay_events.back().t_us) / 1e6;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bolt_loadgen: %s\n", e.what());
    usage();
    return 2;
  }

  try {
    const data::Dataset ds = data::read_csv_file(cfg.data);
    if (ds.num_rows() == 0) throw std::runtime_error("no rows in --data");
    const auto duration_us =
        static_cast<std::uint64_t>(cfg.duration_s * 1e6);

    // Before-scrape doubles as the wait-for-server barrier: the client's
    // connect retry converges as soon as `bolt serve` binds the socket.
    const ServerCounters before = scrape_stats(cfg);

    auto sh = std::make_unique<Shared>();
    // Round-robin partition of replay events across workers.
    std::vector<std::vector<LogEvent>> replay_slices(cfg.threads);
    if (!replay_events.empty()) {
      for (std::size_t i = 0; i < replay_events.size(); ++i) {
        replay_slices[i % cfg.threads].push_back(replay_events[i]);
      }
    }
    std::vector<std::vector<LogEvent>> record_slices(
        cfg.record_path.empty() ? 0 : cfg.threads);

    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < cfg.threads; ++t) {
      workers.emplace_back([&, t] {
        run_worker(t, cfg, ds, *sh, replay_slices[t],
                   cfg.record_path.empty() ? nullptr : &record_slices[t]);
      });
    }
    std::thread chaos([&] { run_chaos(cfg, ds, *sh, duration_us); });

    while (sh->ready.load() < cfg.threads) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (sh->fatal.load()) {
      sh->go.store(true);  // release everyone so joins complete
      for (auto& w : workers) w.join();
      chaos.join();
      std::fprintf(stderr, "bolt_loadgen: worker failed to connect\n");
      return 3;
    }
    sh->start = Clock::now() + std::chrono::milliseconds(20);
    sh->go.store(true, std::memory_order_release);

    for (auto& w : workers) w.join();
    chaos.join();
    const double actual_s = std::chrono::duration<double>(
                                Clock::now() - sh->start)
                                .count();

    const ServerCounters after = scrape_stats(cfg);
    const std::uint64_t server_delta =
        after.ok && before.ok ? after.requests - before.requests : 0;
    const std::uint64_t expected = sh->server_countable.load();
    const double match_pct =
        after.ok && std::max(server_delta, expected) > 0
            ? 100.0 * static_cast<double>(std::min(server_delta, expected)) /
                  static_cast<double>(std::max(server_delta, expected))
            : 0.0;
    double http_requests = -1.0;
    if (cfg.metrics_port > 0) {
      if (!http_metric(cfg.metrics_port, "service_requests", http_requests)) {
        std::fprintf(stderr,
                     "loadgen: /metrics scrape on port %d failed\n",
                     cfg.metrics_port);
      }
    }
    if (!cfg.timeline_out.empty()) {
      // Drain the timeline last so the dump covers the whole soak
      // (serve must be running with --timeline-sample; see
      // docs/OBSERVABILITY.md for loading the JSON in Perfetto).
      try {
        int status = 0;
        const std::string trace = service::admin_http_get(
            "127.0.0.1", static_cast<std::uint16_t>(cfg.metrics_port),
            "/timeline", &status);
        if (status != 200) {
          std::fprintf(stderr, "loadgen: GET /timeline returned %d\n",
                       status);
        } else {
          FILE* f = std::fopen(cfg.timeline_out.c_str(), "wb");
          if (f == nullptr) {
            std::fprintf(stderr, "loadgen: cannot write --timeline-out %s\n",
                         cfg.timeline_out.c_str());
          } else {
            std::fwrite(trace.data(), 1, trace.size(), f);
            std::fclose(f);
            std::printf("  wrote %zu bytes of trace JSON to %s\n",
                        trace.size(), cfg.timeline_out.c_str());
          }
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "loadgen: timeline drain failed: %s\n",
                     e.what());
      }
    }

    if (!cfg.record_path.empty()) {
      std::vector<LogEvent> all;
      for (auto& slice : record_slices) {
        all.insert(all.end(), slice.begin(), slice.end());
      }
      std::sort(all.begin(), all.end(),
                [](const LogEvent& a, const LogEvent& b) {
                  return a.t_us < b.t_us;
                });
      if (!write_request_log(cfg.record_path, all)) {
        std::fprintf(stderr, "loadgen: cannot write --record %s\n",
                     cfg.record_path.c_str());
      }
    }

    // ---- totals and gates --------------------------------------------
    std::uint64_t sent = 0, ok = 0, class_errors = 0, shed = 0, expired = 0,
                  protocol_errors = 0;
    for (const OpCounts& oc : sh->ops) {
      sent += oc.sent.load();
      ok += oc.ok.load();
      class_errors += oc.class_errors.load();
      shed += oc.shed.load();
      expired += oc.expired.load();
      protocol_errors += oc.protocol_errors.load();
    }
    const LatencySummary all = sh->all_latency.summary();
    const LatencySummary sojourn = sh->sojourn.summary();

    const bool gate_p99_pass =
        cfg.gate_p99_us < 0.0 || all.p99 <= cfg.gate_p99_us;
    const std::uint64_t gated_errors = protocol_errors + class_errors;
    const bool gate_errors_pass =
        cfg.gate_errors < 0 ||
        gated_errors <= static_cast<std::uint64_t>(cfg.gate_errors);
    const bool gate_match_pass =
        cfg.gate_match_pct < 0.0 || match_pct >= cfg.gate_match_pct;
    const bool pass = gate_p99_pass && gate_errors_pass && gate_match_pass;

    // ---- human summary ------------------------------------------------
    std::printf("\n=== bolt_loadgen %s: %.1f s @ %s %.0f rps x %zu threads "
                "(mix %s) ===\n",
                cfg.label.c_str(), actual_s,
                cfg.replay_path.empty() ? shape_name(cfg.shape.kind)
                                        : "replay",
                cfg.rps, cfg.threads, cfg.mix.describe().c_str());
    std::printf("  %-9s %10s %10s %7s %7s %7s %7s  %9s %9s %9s %9s\n", "op",
                "rows", "ok", "err", "shed", "expired", "proto", "p50us",
                "p95us", "p99us", "p999us");
    for (std::size_t i = 0; i < kNumOps; ++i) {
      if (sh->ops[i].sent.load() == 0) continue;
      print_summary_line(op_name(static_cast<Op>(i)), sh->ops[i]);
    }
    std::printf("  overall p50/p95/p99/p999: %.0f/%.0f/%.0f/%.0f us | "
                "sojourn p99 %.0f us | late dispatches %llu\n",
                all.p50, all.p95, all.p99, all.p999, sojourn.p99,
                static_cast<unsigned long long>(sh->late_dispatches.load()));
    std::printf("  achieved %.0f responses/s (offered %.0f rps)\n",
                actual_s > 0 ? static_cast<double>(all.count) / actual_s : 0.0,
                cfg.rps);
    if (cfg.chaos_slow + cfg.chaos_disconnect > 0) {
      std::printf("  chaos: slow %llu sent / %llu completed / %llu reaped; "
                  "%llu mid-frame disconnects\n",
                  static_cast<unsigned long long>(sh->chaos.slow_sent.load()),
                  static_cast<unsigned long long>(
                      sh->chaos.slow_completed.load()),
                  static_cast<unsigned long long>(
                      sh->chaos.slow_reaped.load()),
                  static_cast<unsigned long long>(
                      sh->chaos.disconnects.load()));
    }
    if (after.ok && before.ok) {
      std::printf("  server: %llu requests counted vs %llu client-observed "
                  "(match %.3f%%); shed %llu expired %llu errors %llu\n",
                  static_cast<unsigned long long>(server_delta),
                  static_cast<unsigned long long>(expected), match_pct,
                  static_cast<unsigned long long>(after.shed - before.shed),
                  static_cast<unsigned long long>(after.expired -
                                                  before.expired),
                  static_cast<unsigned long long>(after.errors -
                                                  before.errors));
    } else {
      std::printf("  server: STATS scrape unavailable (metrics off?)\n");
    }
    if (http_requests >= 0.0) {
      std::printf("  /metrics cross-check: service_requests %.0f\n",
                  http_requests);
    }
    if (cfg.gate_p99_us >= 0.0) {
      std::printf("  gate p99 <= %.0f us: %.0f — %s\n", cfg.gate_p99_us,
                  all.p99, gate_p99_pass ? "PASS" : "FAIL");
    }
    if (cfg.gate_errors >= 0) {
      std::printf("  gate errors <= %lld: %llu — %s\n",
                  static_cast<long long>(cfg.gate_errors),
                  static_cast<unsigned long long>(gated_errors),
                  gate_errors_pass ? "PASS" : "FAIL");
    }
    if (cfg.gate_match_pct >= 0.0) {
      std::printf("  gate match >= %.2f%%: %.3f%% — %s\n", cfg.gate_match_pct,
                  match_pct, gate_match_pass ? "PASS" : "FAIL");
    }

    // ---- machine-readable result (docs/BENCHMARKS.md schema) ----------
    if (!cfg.out_path.empty()) {
      bench::JsonWriter w;
      w.begin_object()
          .field("schema", "bolt-bench-soak-v1")
          .field("tool", "bolt_loadgen")
          .field("label", cfg.label)
          .field("pass", pass);
      w.begin_object("config")
          .field("endpoint", endpoint(cfg).describe())
          .field("duration_s", cfg.duration_s)
          .field("rps", cfg.rps)
          .field("threads", static_cast<std::uint64_t>(cfg.threads))
          .field("arrival", cfg.replay_path.empty()
                                ? shape_name(cfg.shape.kind)
                                : "replay")
          .field("burst_size",
                 static_cast<std::uint64_t>(cfg.shape.burst_size))
          .field("mix", cfg.mix.describe())
          .field("batch_rows", static_cast<std::uint64_t>(cfg.batch_rows))
          .field("seed", cfg.seed)
          .field("chaos_slow", static_cast<std::uint64_t>(cfg.chaos_slow))
          .field("chaos_disconnect",
                 static_cast<std::uint64_t>(cfg.chaos_disconnect))
          .field("io_timeout_ms",
                 static_cast<std::uint64_t>(cfg.io_timeout_ms))
          .end_object();
      w.begin_object("totals")
          .field("sent_rows", sent)
          .field("ok", ok)
          .field("class_errors", class_errors)
          .field("shed", shed)
          .field("expired", expired)
          .field("protocol_errors", protocol_errors)
          .field("late_dispatches", sh->late_dispatches.load())
          .field("batch_frames", sh->batch_frames.load())
          .field("duration_s_actual", actual_s)
          .field("responses_per_s",
                 actual_s > 0 ? static_cast<double>(all.count) / actual_s
                              : 0.0)
          .end_object();
      json_latency(w, "latency_us", all);
      json_latency(w, "sojourn_us", sojourn);
      w.begin_object("ops");
      for (std::size_t i = 0; i < kNumOps; ++i) {
        const OpCounts& oc = sh->ops[i];
        if (oc.sent.load() == 0) continue;
        w.begin_object(op_name(static_cast<Op>(i)))
            .field("sent_rows", oc.sent.load())
            .field("ok", oc.ok.load())
            .field("class_errors", oc.class_errors.load())
            .field("shed", oc.shed.load())
            .field("expired", oc.expired.load())
            .field("protocol_errors", oc.protocol_errors.load());
        json_latency(w, "latency_us", oc.latency.summary());
        w.end_object();
      }
      w.end_object();
      w.begin_object("chaos")
          .field("slow_sent", sh->chaos.slow_sent.load())
          .field("slow_completed", sh->chaos.slow_completed.load())
          .field("slow_reaped", sh->chaos.slow_reaped.load())
          .field("disconnects", sh->chaos.disconnects.load())
          .end_object();
      w.begin_object("server")
          .field("scrape_ok", after.ok && before.ok)
          .field("requests_before", before.requests)
          .field("requests_after", after.requests)
          .field("requests_delta", server_delta)
          .field("client_expected", expected)
          .field("match_pct", match_pct)
          .field("errors_delta", after.errors - before.errors)
          .field("shed_delta", after.shed - before.shed)
          .field("expired_delta", after.expired - before.expired)
          .field("malformed_delta", after.malformed - before.malformed)
          .field("idle_timeouts_delta",
                 after.idle_timeouts - before.idle_timeouts)
          .field("http_requests", http_requests)
          .end_object();
      w.begin_object("gates");
      w.begin_object("p99_us")
          .field("enabled", cfg.gate_p99_us >= 0.0)
          .field("limit", cfg.gate_p99_us)
          .field("value", all.p99)
          .field("pass", gate_p99_pass)
          .end_object();
      w.begin_object("errors")
          .field("enabled", cfg.gate_errors >= 0)
          .field("limit", static_cast<std::int64_t>(cfg.gate_errors))
          .field("value", gated_errors)
          .field("pass", gate_errors_pass)
          .end_object();
      w.begin_object("match_pct")
          .field("enabled", cfg.gate_match_pct >= 0.0)
          .field("limit", cfg.gate_match_pct)
          .field("value", match_pct)
          .field("pass", gate_match_pass)
          .end_object();
      w.end_object();
      w.end_object();
      if (!w.write_file(cfg.out_path)) {
        std::fprintf(stderr, "loadgen: cannot write --out %s\n",
                     cfg.out_path.c_str());
      } else {
        std::printf("  wrote %s\n", cfg.out_path.c_str());
      }
    }

    return pass ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bolt_loadgen: %s\n", e.what());
    return 3;
  }
}
