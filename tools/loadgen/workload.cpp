#include "loadgen/workload.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace bolt::loadgen {

namespace {

constexpr const char* kOpNames[kNumOps] = {"classify", "batch", "trace",
                                           "explain", "stats"};
constexpr const char* kLogHeader = "# bolt_loadgen replay v1";

}  // namespace

const char* op_name(Op op) {
  const auto i = static_cast<std::size_t>(op);
  return i < kNumOps ? kOpNames[i] : "?";
}

bool parse_op(const std::string& name, Op& out) {
  for (std::size_t i = 0; i < kNumOps; ++i) {
    if (name == kOpNames[i]) {
      out = static_cast<Op>(i);
      return true;
    }
  }
  return false;
}

OpMix::OpMix() {
  weights_[static_cast<std::size_t>(Op::kClassify)] = 1.0;
  total_ = 1.0;
}

OpMix OpMix::parse(const std::string& spec) {
  OpMix mix;
  mix.weights_ = {};
  mix.total_ = 0.0;
  std::istringstream in(spec);
  std::string part;
  while (std::getline(in, part, ',')) {
    if (part.empty()) continue;
    const auto eq = part.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("op mix: expected op=weight, got: " + part);
    }
    Op op;
    if (!parse_op(part.substr(0, eq), op)) {
      throw std::runtime_error("op mix: unknown op: " + part.substr(0, eq));
    }
    double w = 0.0;
    try {
      w = std::stod(part.substr(eq + 1));
    } catch (const std::exception&) {
      throw std::runtime_error("op mix: bad weight in: " + part);
    }
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::runtime_error("op mix: weight must be finite and >= 0: " +
                               part);
    }
    mix.weights_[static_cast<std::size_t>(op)] = w;
  }
  for (double w : mix.weights_) mix.total_ += w;
  if (mix.total_ <= 0.0) {
    throw std::runtime_error("op mix: all weights zero: " + spec);
  }
  return mix;
}

Op OpMix::pick(util::Rng& rng) const {
  double x = rng.uniform() * total_;
  for (std::size_t i = 0; i < kNumOps; ++i) {
    x -= weights_[i];
    if (x < 0.0) return static_cast<Op>(i);
  }
  // Rounding spill: the last op with weight.
  for (std::size_t i = kNumOps; i-- > 0;) {
    if (weights_[i] > 0.0) return static_cast<Op>(i);
  }
  return Op::kClassify;
}

std::string OpMix::describe() const {
  std::string out;
  for (std::size_t i = 0; i < kNumOps; ++i) {
    if (weights_[i] <= 0.0) continue;
    if (!out.empty()) out += ',';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%g", kOpNames[i], weights_[i]);
    out += buf;
  }
  return out;
}

const char* shape_name(ShapeConfig::Kind kind) {
  switch (kind) {
    case ShapeConfig::Kind::kPoisson:
      return "poisson";
    case ShapeConfig::Kind::kUniform:
      return "uniform";
    case ShapeConfig::Kind::kBurst:
      return "burst";
  }
  return "?";
}

bool parse_shape(const std::string& name, ShapeConfig::Kind& out) {
  if (name == "poisson") {
    out = ShapeConfig::Kind::kPoisson;
  } else if (name == "uniform") {
    out = ShapeConfig::Kind::kUniform;
  } else if (name == "burst") {
    out = ShapeConfig::Kind::kBurst;
  } else {
    return false;
  }
  return true;
}

ArrivalSchedule::ArrivalSchedule(const ShapeConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  if (cfg_.rps <= 0.0 || !std::isfinite(cfg_.rps)) {
    throw std::runtime_error("arrival schedule: rps must be positive");
  }
  if (cfg_.kind == ShapeConfig::Kind::kBurst && cfg_.burst_size == 0) {
    throw std::runtime_error("arrival schedule: burst size must be positive");
  }
}

std::uint64_t ArrivalSchedule::next_us() {
  const double mean_gap_us = 1e6 / cfg_.rps;
  switch (cfg_.kind) {
    case ShapeConfig::Kind::kPoisson: {
      // Exponential inter-arrival via inversion; clamp the uniform away
      // from 0 so the log stays finite.
      double u = rng_.uniform();
      if (u < 1e-12) u = 1e-12;
      t_us_ += -std::log(u) * mean_gap_us;
      break;
    }
    case ShapeConfig::Kind::kUniform:
      t_us_ += mean_gap_us;
      break;
    case ShapeConfig::Kind::kBurst:
      // burst_size arrivals share one timestamp; bursts are spaced so the
      // long-run mean rate is still rps.
      if (burst_left_ == 0) {
        burst_left_ = cfg_.burst_size;
        t_us_ += mean_gap_us * static_cast<double>(cfg_.burst_size);
      }
      --burst_left_;
      break;
  }
  return static_cast<std::uint64_t>(t_us_);
}

bool write_request_log(const std::string& path,
                       const std::vector<LogEvent>& events) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "%s\n", kLogHeader);
  for (const LogEvent& e : events) {
    std::fprintf(f, "%llu %s %u\n", static_cast<unsigned long long>(e.t_us),
                 op_name(e.op), e.rows);
  }
  std::fclose(f);
  return true;
}

std::vector<LogEvent> read_request_log(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) throw std::runtime_error("replay log: cannot open " + path);
  std::vector<LogEvent> events;
  char line[256];
  std::size_t line_no = 0;
  while (std::fgets(line, sizeof(line), f)) {
    ++line_no;
    if (line[0] == '#' || line[0] == '\n') continue;
    unsigned long long t = 0;
    char op_buf[32];
    unsigned rows = 0;
    if (std::sscanf(line, "%llu %31s %u", &t, op_buf, &rows) != 3) {
      std::fclose(f);
      throw std::runtime_error("replay log: malformed line " +
                               std::to_string(line_no) + " in " + path);
    }
    LogEvent e;
    e.t_us = t;
    if (!parse_op(op_buf, e.op)) {
      std::fclose(f);
      throw std::runtime_error("replay log: unknown op '" +
                               std::string(op_buf) + "' at line " +
                               std::to_string(line_no));
    }
    e.rows = rows == 0 ? 1 : rows;
    events.push_back(e);
  }
  std::fclose(f);
  return events;
}

LatencyRecorder::LatencyRecorder()
    // ~10 % geometric buckets from 1 µs to ~66 s: fine enough that a p99
    // or p999 read off the histogram is within one bucket (±10 %) of the
    // exact order statistic, over the full range a soak can produce.
    : hist_(util::Histogram::exponential_bounds(1.0, 1.1, 190)) {}

LatencySummary LatencyRecorder::summary() const {
  const util::HistogramSnapshot snap = hist_.snapshot();
  LatencySummary s;
  s.count = snap.count;
  s.mean = snap.mean();
  s.min = snap.min;
  s.max = snap.max;
  s.p50 = snap.percentile(50);
  s.p95 = snap.percentile(95);
  s.p99 = snap.percentile(99);
  s.p999 = snap.percentile(99.9);
  return s;
}

}  // namespace bolt::loadgen
