// Workload shapes for the soak/replay load generator (bolt_loadgen) and
// its tests: arrival processes (Poisson / uniform-paced / burst), weighted
// op mixes over the service's wire ops, a record/replay request log, and a
// thread-safe latency recorder with tail percentiles.
//
// Everything here is deterministic given a seed, so a recorded soak run is
// reproducible bit-for-bit by replaying its log — and two loadgen runs
// with the same flags generate the same traffic.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/rng.h"

namespace bolt::loadgen {

/// Operations the generator can issue against a live server. CLASSIFY,
/// TRACE (CLASSIFY + kFlagTrace) and EXPLAIN round-trip one row; BATCH
/// round-trips `rows` rows in one frame; STATS scrapes the registry.
enum class Op : std::uint8_t {
  kClassify = 0,
  kBatch,
  kTrace,
  kExplain,
  kStats,
};
constexpr std::size_t kNumOps = 5;

const char* op_name(Op op);
/// Parses a lowercase op name ("classify", "batch", "trace", "explain",
/// "stats"); returns false on anything else.
bool parse_op(const std::string& name, Op& out);

/// Weighted mix over ops, e.g. "classify=70,batch=20,trace=5,stats=5".
/// Weights are relative (need not sum to 100); absent ops weigh 0.
class OpMix {
 public:
  /// Default mix: CLASSIFY only.
  OpMix();
  /// Throws std::runtime_error on malformed specs, unknown ops, negative
  /// weights, or an all-zero mix.
  static OpMix parse(const std::string& spec);

  Op pick(util::Rng& rng) const;
  double weight(Op op) const { return weights_[static_cast<std::size_t>(op)]; }
  /// Canonical "op=weight,..." string of the non-zero entries.
  std::string describe() const;

 private:
  std::array<double, kNumOps> weights_{};
  double total_ = 0.0;
};

/// Traffic shape of one arrival schedule.
struct ShapeConfig {
  enum class Kind {
    kPoisson,  ///< open-loop Poisson process: exponential inter-arrivals
    kUniform,  ///< deterministic pacing at exactly 1/rps spacing
    kBurst,    ///< `burst_size` simultaneous arrivals every burst_size/rps
  };
  Kind kind = Kind::kPoisson;
  /// Mean arrival rate of this schedule (requests per second).
  double rps = 100.0;
  /// kBurst only: arrivals per burst.
  std::size_t burst_size = 32;
};

const char* shape_name(ShapeConfig::Kind kind);
bool parse_shape(const std::string& name, ShapeConfig::Kind& out);

/// A monotone stream of arrival offsets (microseconds from schedule
/// start), deterministic for (config, seed). Superposing N independent
/// Poisson schedules at rps/N reproduces a single Poisson at rps, so the
/// generator gives each worker thread its own schedule.
class ArrivalSchedule {
 public:
  ArrivalSchedule(const ShapeConfig& cfg, std::uint64_t seed);
  /// Offset of the next arrival; never decreases.
  std::uint64_t next_us();

 private:
  ShapeConfig cfg_;
  util::Rng rng_;
  double t_us_ = 0.0;
  std::size_t burst_left_ = 0;
};

/// One request in a recorded traffic log: when it was scheduled (offset
/// from run start), what op, and how many rows (BATCH; 1 otherwise).
struct LogEvent {
  std::uint64_t t_us = 0;
  Op op = Op::kClassify;
  std::uint32_t rows = 1;
};

/// Writes a replayable request log ("# bolt_loadgen replay v1" header,
/// one "t_us op rows" line per event). Returns false when the file cannot
/// be opened. Events are written in the order given; record callers sort
/// by t_us first so replay timelines are monotone per thread.
bool write_request_log(const std::string& path,
                       const std::vector<LogEvent>& events);
/// Reads a log written by write_request_log. Throws std::runtime_error on
/// missing files or malformed lines.
std::vector<LogEvent> read_request_log(const std::string& path);

/// Tail summary of one latency population (microseconds).
struct LatencySummary {
  std::uint64_t count = 0;
  double mean = 0.0, min = 0.0, max = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0, p999 = 0.0;
};

/// Thread-safe latency recorder: a fine-grained geometric histogram
/// (~10 % bucket resolution from 1 µs to ~60 s) over util::Histogram's
/// lock-free record path, so every worker thread records into one shared
/// instance without synchronization.
class LatencyRecorder {
 public:
  LatencyRecorder();
  void record_us(double us) { hist_.record(us); }
  LatencySummary summary() const;

 private:
  util::Histogram hist_;
};

}  // namespace bolt::loadgen
