// Cross-module integration: the full paper pipeline — train, export to
// DOT (the paper's Scikit-Learn -> Bolt hand-off), re-import, compress
// with Bolt, plan parameters, serve, and verify against traversal on all
// three (synthetic) paper datasets. Also the deep-forest cascade through
// Bolt engines (Figure 15's workload).
#include <gtest/gtest.h>

#include <sstream>

#include "../helpers.h"
#include "baselines/fp_engine.h"
#include "baselines/service_model.h"
#include "baselines/sklearn_engine.h"
#include "bolt/bolt.h"
#include "data/synthetic.h"
#include "forest/deep_forest.h"
#include "forest/dot_io.h"
#include "forest/serialize.h"
#include "forest/trainer.h"
#include "service/server.h"

namespace bolt {
namespace {

struct DatasetCase {
  const char* name;
  data::Dataset (*make)(std::size_t, std::uint64_t);
  std::size_t rows;
  std::size_t height;
};

class PipelineOnDataset : public ::testing::TestWithParam<DatasetCase> {};

TEST_P(PipelineOnDataset, TrainDotRoundTripBoltServe) {
  const DatasetCase& p = GetParam();
  data::Dataset ds = p.make(p.rows, 7);
  auto [train, test] = ds.split(0.8);

  forest::TrainConfig tc;
  tc.num_trees = 8;
  tc.max_height = p.height;
  const forest::Forest trained = forest::train_random_forest(train, tc);

  // The paper's hand-off: trained forest -> DOT files -> Bolt tools.
  std::stringstream dot;
  forest::write_forest_dot(trained, dot);
  const forest::Forest imported = forest::read_forest_dot(dot);

  const core::BoltForest bf = core::BoltForest::build(imported, {});
  core::BoltEngine engine(bf);

  const std::size_t n = std::min<std::size_t>(test.num_rows(), 150);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(engine.predict(test.row(i)), trained.predict(test.row(i)))
        << p.name << " sample " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperDatasets, PipelineOnDataset,
    ::testing::Values(
        DatasetCase{"mnist", data::make_synth_mnist, 600, 4},
        DatasetCase{"lstw", data::make_synth_lstw, 1000, 5},
        DatasetCase{"yelp", data::make_synth_yelp, 300, 4}),
    [](const auto& info) { return info.param.name; });

TEST(Integration, PlannerFeedsServiceWhichMatchesTraversal) {
  data::Dataset ds = bolt::testing::small_dataset(800, 101);
  auto [train, test] = ds.split(0.8);
  forest::TrainConfig tc;
  tc.num_trees = 10;
  tc.max_height = 4;
  const forest::Forest trained = forest::train_random_forest(train, tc);

  core::PlannerConfig pc;
  pc.thresholds = {1, 4, 8};
  pc.repetitions = 1;
  pc.max_calibration_samples = 32;
  core::PlanResult planned = core::plan(trained, test, pc);

  const std::string path =
      ::testing::TempDir() + "/bolt_int_" + std::to_string(::getpid());
  service::InferenceServer server(path, [&] {
    return std::make_unique<core::BoltEngine>(*planned.artifact);
  });
  server.start();
  service::InferenceClient client(path);
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(client.classify(test.row(i)).predicted_class,
              trained.predict(test.row(i)));
  }
  server.stop();
}

TEST(Integration, DeepForestThroughBoltMatchesCascade) {
  // Figure 15's structure: compress each layer's forests in isolation and
  // run the dictionaries sequentially, appending vote fractions.
  data::Dataset ds = bolt::testing::small_dataset(1000, 103);
  forest::DeepForestConfig cfg;
  cfg.num_layers = 2;
  cfg.forests_per_layer = 2;
  cfg.forest_cfg.num_trees = 5;
  cfg.forest_cfg.max_height = 4;
  const forest::DeepForest df = forest::DeepForest::train(ds, cfg);

  // Bolt-compress every forest of every layer.
  std::vector<std::vector<core::BoltForest>> layers;
  for (std::size_t l = 0; l < df.num_layers(); ++l) {
    std::vector<core::BoltForest> row;
    for (const forest::Forest& f : df.layer(l)) {
      row.push_back(core::BoltForest::build(f, {}));
    }
    layers.push_back(std::move(row));
  }

  for (std::size_t i = 0; i < 100; ++i) {
    // Drive the cascade with Bolt vote functions.
    std::vector<float> features(ds.row(i).begin(), ds.row(i).end());
    for (std::size_t l = 0; l + 1 < layers.size(); ++l) {
      std::vector<std::vector<double>> votes;
      for (core::BoltForest& bf : layers[l]) {
        core::BoltEngine engine(bf);
        std::vector<double> v(ds.num_classes());
        engine.vote(features, v);
        votes.push_back(std::move(v));
      }
      features = df.augment(features, votes);
    }
    std::vector<double> total(ds.num_classes(), 0.0);
    for (core::BoltForest& bf : layers.back()) {
      core::BoltEngine engine(bf);
      std::vector<double> v(ds.num_classes());
      engine.vote(features, v);
      for (std::size_t c = 0; c < total.size(); ++c) total[c] += v[c];
    }
    ASSERT_EQ(forest::argmax_class(total), df.predict(ds.row(i)))
        << "sample " << i;
  }
}

TEST(Integration, SerializedForestSurvivesFullPipeline) {
  data::Dataset ds = bolt::testing::small_dataset(600, 104);
  const forest::Forest trained = bolt::testing::small_forest(8, 4, 104);
  std::stringstream blob;
  forest::save_forest(trained, blob);
  const forest::Forest loaded = forest::load_forest(blob);
  const core::BoltForest bf = core::BoltForest::build(loaded, {});
  core::BoltEngine engine(bf);
  for (std::size_t i = 0; i < 200; ++i) {
    ASSERT_EQ(engine.predict(ds.row(i)), trained.predict(ds.row(i)));
  }
}

TEST(Integration, ModeledCountersShowBoltAdvantages) {
  // Figure 12's robust qualitative claims as assertions: Bolt takes fewer
  // branches and suffers fewer branch misses than Forest Packing (bit-mask
  // scans replace per-node conditionals), and both are orders of magnitude
  // below the Scikit-like platform in instructions.
  data::Dataset ds = data::make_synth_lstw(1200, 105);
  auto [train, test] = ds.split(0.8);
  forest::TrainConfig tc;
  tc.num_trees = 10;
  tc.max_height = 4;
  const forest::Forest trained = forest::train_random_forest(train, tc);
  const core::BoltForest bf = core::BoltForest::build(trained, {});
  core::BoltEngine bolt_engine(bf);
  engines::ForestPackingEngine fp(trained, test);
  engines::SklearnEngine sk(trained);

  const auto cfg = archsim::xeon_e5_2650_v4();
  archsim::Machine m1(cfg), m2(cfg), m3(cfg);
  const auto rb = engines::model_service(bolt_engine, m1, test, 200);
  const auto rf = engines::model_service(fp, m2, test, 200);
  const auto rs = engines::model_service(sk, m3, test, 200);

  EXPECT_LT(rb.per_sample.branches, rf.per_sample.branches);
  EXPECT_LE(rb.per_sample.branch_misses, rf.per_sample.branch_misses);
  EXPECT_LT(rb.per_sample.instructions * 100, rs.per_sample.instructions);
  EXPECT_LT(rf.per_sample.instructions * 100, rs.per_sample.instructions);
}

}  // namespace
}  // namespace bolt
