#include "util/stats.h"

#include <gtest/gtest.h>

namespace bolt::util {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(7.0);
  EXPECT_EQ(s.mean(), 7.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.percentile(0), 7.0);
  EXPECT_EQ(s.percentile(100), 7.0);
}

TEST(Summary, MeanAndStddev) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_EQ(s.percentile(0), 1.0);
  EXPECT_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.01);
}

TEST(Summary, MinMax) {
  Summary s;
  s.add(3);
  s.add(-1);
  s.add(10);
  EXPECT_EQ(s.min(), -1.0);
  EXPECT_EQ(s.max(), 10.0);
}

}  // namespace
}  // namespace bolt::util
