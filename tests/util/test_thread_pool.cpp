#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace bolt::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(200, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 200);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroRequestedStillWorks) {
  ThreadPool pool(0);  // clamps to 1
  EXPECT_EQ(pool.size(), 1u);
  auto f = pool.submit([] {});
  f.get();
}

TEST(ThreadPool, DestructionDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&] { counter.fetch_add(1); }).get();
    }
  }
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace bolt::util
