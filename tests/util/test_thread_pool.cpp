#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace bolt::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(200, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 200);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroRequestedStillWorks) {
  ThreadPool pool(0);  // clamps to 1
  EXPECT_EQ(pool.size(), 1u);
  auto f = pool.submit([] {});
  f.get();
}

TEST(ThreadPool, DestructionDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&] { counter.fetch_add(1); }).get();
    }
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, DestructionRunsTasksStillQueued) {
  // Tasks enqueued but not yet started when the destructor fires must
  // still run (the pool drains, it does not drop).
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    pool.post([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
    for (int i = 0; i < 20; ++i) {
      pool.post([&] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ThrowingPostedTaskDoesNotKillWorkerOrDeadlockQueue) {
  // A single-threaded pool proves the worker survived: every later task
  // must run on that same (only) thread.
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 5; ++i) {
    pool.post([] { throw std::runtime_error("escaping"); });
    pool.post([&] { counter.fetch_add(1); });
  }
  pool.submit([] {}).get();  // barrier: queue fully drained
  EXPECT_EQ(counter.load(), 5);
}

TEST(ThreadPool, ThrowingTaskInDestructorDrainIsSwallowed) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    pool.post([] { throw std::logic_error("mid-drain"); });
    pool.post([&] { counter.fetch_add(1); });
  }  // destructor joins; a live exception here would terminate the process
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ZeroThreadPoolSurvivesThrowingTasks) {
  ThreadPool pool(0);  // clamps to 1 worker
  auto bad = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  auto good = pool.submit([] {});
  good.get();  // the lone worker is still alive
}

TEST(ThreadPool, ParallelForRunsEveryIndexEvenWhenSomeThrow) {
  // parallel_for must not abandon queued iterations (which still hold a
  // reference to fn) when an early index throws — it drains everything,
  // then rethrows the first failure.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(pool.parallel_for(hits.size(),
                                 [&](std::size_t i) {
                                   hits[i].fetch_add(1);
                                   if (i % 7 == 0) {
                                     throw std::runtime_error("index failed");
                                   }
                                 }),
               std::runtime_error);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace bolt::util
