#include "util/bits.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace bolt::util {
namespace {

TEST(Pext, EmptyMaskYieldsZero) {
  EXPECT_EQ(pext64(0xdeadbeef, 0), 0u);
}

TEST(Pext, FullMaskIsIdentity) {
  EXPECT_EQ(pext64(0x123456789abcdef0ULL, ~0ULL), 0x123456789abcdef0ULL);
}

TEST(Pext, GathersSelectedBitsInOrder) {
  // value bits at positions 1 and 3 -> result bits 0 and 1.
  EXPECT_EQ(pext64(0b1010, 0b1010), 0b11u);
  EXPECT_EQ(pext64(0b1000, 0b1010), 0b10u);
  EXPECT_EQ(pext64(0b0010, 0b1010), 0b01u);
}

TEST(Pext, FastVariantMatchesPortable) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next();
    const std::uint64_t m = rng.next() & rng.next();  // sparse-ish mask
    EXPECT_EQ(pext64_fast(v, m), pext64(v, m)) << "v=" << v << " m=" << m;
  }
}

TEST(Pdep, InverseOfPextOnMask) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next();
    const std::uint64_t m = rng.next();
    EXPECT_EQ(pdep64(pext64(v, m), m), v & m);
  }
}

TEST(BitVector, StartsCleared) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.popcount(), 0u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(bv.get(i));
}

TEST(BitVector, FillConstructorSetsExactlyNBits) {
  BitVector bv(70, true);
  EXPECT_EQ(bv.popcount(), 70u);
  // Trailing bits of the last word must not be set (masked_equals and
  // popcount depend on it).
  BitVector other(70);
  other.resize(70);
  EXPECT_TRUE(bv.contains_all(other));
}

TEST(BitVector, SetAndClearRoundTrip) {
  BitVector bv(200);
  bv.set(0);
  bv.set(63);
  bv.set(64);
  bv.set(199);
  EXPECT_EQ(bv.popcount(), 4u);
  EXPECT_TRUE(bv.get(63));
  EXPECT_TRUE(bv.get(64));
  bv.set(63, false);
  EXPECT_FALSE(bv.get(63));
  EXPECT_EQ(bv.popcount(), 3u);
}

TEST(BitVector, MaskedEqualsMatchesNaiveSemantics) {
  Rng rng(7);
  const std::size_t n = 150;
  for (int iter = 0; iter < 200; ++iter) {
    BitVector data(n), mask(n), expect(n);
    for (std::size_t i = 0; i < n; ++i) {
      data.set(i, rng.bernoulli(0.5));
      const bool m = rng.bernoulli(0.3);
      mask.set(i, m);
      if (m) expect.set(i, rng.bernoulli(0.5));
    }
    bool naive = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask.get(i) && data.get(i) != expect.get(i)) naive = false;
    }
    EXPECT_EQ(data.masked_equals(mask, expect), naive);
  }
}

TEST(BitVector, ContainsAllAndDisjoint) {
  BitVector a(100), b(100), c(100);
  a.set(3);
  a.set(50);
  a.set(99);
  b.set(3);
  b.set(99);
  c.set(4);
  EXPECT_TRUE(a.contains_all(b));
  EXPECT_FALSE(b.contains_all(a));
  EXPECT_TRUE(a.disjoint(c));
  EXPECT_FALSE(a.disjoint(b));
}

TEST(BitVector, BitwiseOperators) {
  BitVector a(70), b(70);
  a.set(1);
  a.set(65);
  b.set(1);
  b.set(2);
  BitVector o = a;
  o |= b;
  EXPECT_TRUE(o.get(1));
  EXPECT_TRUE(o.get(2));
  EXPECT_TRUE(o.get(65));
  BitVector n = a;
  n &= b;
  EXPECT_TRUE(n.get(1));
  EXPECT_FALSE(n.get(2));
  EXPECT_FALSE(n.get(65));
  BitVector x = a;
  x ^= b;
  EXPECT_FALSE(x.get(1));
  EXPECT_TRUE(x.get(2));
  EXPECT_TRUE(x.get(65));
}

TEST(BitVector, SetBitsAscending) {
  BitVector bv(300);
  const std::vector<std::uint32_t> want = {0, 63, 64, 128, 299};
  for (auto i : want) bv.set(i);
  EXPECT_EQ(bv.set_bits(), want);
}

TEST(BitVector, ResizeShrinkClearsTrailingBits) {
  BitVector bv(100, true);
  bv.resize(70);
  EXPECT_EQ(bv.popcount(), 70u);
  bv.resize(100);
  EXPECT_EQ(bv.popcount(), 70u);  // re-grown bits are zero
}

TEST(GatherBits, MatchesBitOrder) {
  BitVector bv(100);
  bv.set(5);
  bv.set(70);
  const std::vector<std::uint32_t> positions = {5, 6, 70};
  // bit0 <- pos5 (1), bit1 <- pos6 (0), bit2 <- pos70 (1).
  EXPECT_EQ(gather_bits(bv, positions), 0b101u);
}

TEST(BitStream, WriteReadRoundTrip) {
  BitWriter w;
  w.write(0b101, 3);
  w.write(0xffff, 16);
  w.write(1, 1);
  w.write(0x123456789abcdefULL, 60);
  BitReader r(w.words());
  EXPECT_EQ(r.read(0, 3), 0b101u);
  EXPECT_EQ(r.read(3, 16), 0xffffu);
  EXPECT_EQ(r.read(19, 1), 1u);
  EXPECT_EQ(r.read(20, 60), 0x123456789abcdefULL);
  EXPECT_EQ(w.bit_size(), 80u);
  EXPECT_EQ(w.byte_size(), 10u);
}

TEST(BitStream, RandomizedRoundTrip) {
  Rng rng(42);
  std::vector<std::pair<std::uint64_t, unsigned>> values;
  BitWriter w;
  for (int i = 0; i < 500; ++i) {
    const unsigned width = 1 + static_cast<unsigned>(rng.below(64));
    const std::uint64_t v =
        width == 64 ? rng.next() : rng.next() & ((1ULL << width) - 1);
    values.emplace_back(v, width);
    w.write(v, width);
  }
  BitReader r(w.words());
  std::size_t pos = 0;
  for (const auto& [v, width] : values) {
    EXPECT_EQ(r.read(pos, width), v);
    pos += width;
  }
}

TEST(BitWidthFor, Boundaries) {
  EXPECT_EQ(bit_width_for(0), 1u);
  EXPECT_EQ(bit_width_for(1), 1u);
  EXPECT_EQ(bit_width_for(2), 2u);
  EXPECT_EQ(bit_width_for(255), 8u);
  EXPECT_EQ(bit_width_for(256), 9u);
  EXPECT_EQ(bit_width_for(~0ULL), 64u);
}

TEST(WordsForBits, Rounding) {
  EXPECT_EQ(words_for_bits(0), 0u);
  EXPECT_EQ(words_for_bits(1), 1u);
  EXPECT_EQ(words_for_bits(64), 1u);
  EXPECT_EQ(words_for_bits(65), 2u);
}

}  // namespace
}  // namespace bolt::util
