#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

namespace bolt::util {
namespace {

// RFC 3720 known-answer vectors for CRC32C.
TEST(Crc32c, KnownVectors) {
  EXPECT_EQ(crc32c("", 0), 0u);
  const char* nums = "123456789";
  EXPECT_EQ(crc32c(nums, 9), 0xE3069283u);
  std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<std::uint8_t> ones(32, 0xff);
  EXPECT_EQ(crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  std::vector<std::uint8_t> inc(32);
  for (std::size_t i = 0; i < inc.size(); ++i) inc[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(crc32c(inc.data(), inc.size()), 0x46DD794Eu);
}

TEST(Crc32c, DispatchedMatchesSoftwareOracle) {
  std::mt19937_64 rng(42);
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u, 4097u}) {
    std::vector<std::uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(crc32c(buf.data(), buf.size()), crc32c_sw(buf.data(), buf.size()))
        << "len=" << len;
  }
}

TEST(Crc32c, SeedChainingEqualsOneShot) {
  std::mt19937_64 rng(7);
  std::vector<std::uint8_t> buf(777);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
  const std::uint32_t whole = crc32c(buf.data(), buf.size());
  for (std::size_t cut : {1u, 8u, 100u, 776u}) {
    const std::uint32_t a = crc32c(buf.data(), cut);
    EXPECT_EQ(crc32c(buf.data() + cut, buf.size() - cut, a), whole)
        << "cut=" << cut;
    const std::uint32_t a_sw = crc32c_sw(buf.data(), cut);
    EXPECT_EQ(crc32c_sw(buf.data() + cut, buf.size() - cut, a_sw), whole);
  }
}

TEST(Crc32c, MisalignedStartMatches) {
  std::vector<std::uint8_t> buf(64 + 15);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::uint8_t>(i * 37);
  for (std::size_t off = 0; off < 15; ++off) {
    EXPECT_EQ(crc32c(buf.data() + off, 64), crc32c_sw(buf.data() + off, 64));
  }
}

TEST(Crc32c, SingleBitFlipChangesChecksum) {
  std::vector<std::uint8_t> buf(256, 0xa5);
  const std::uint32_t base = crc32c(buf.data(), buf.size());
  for (std::size_t i = 0; i < buf.size(); i += 17) {
    buf[i] ^= 0x10;
    EXPECT_NE(crc32c(buf.data(), buf.size()), base) << "byte " << i;
    buf[i] ^= 0x10;
  }
}

}  // namespace
}  // namespace bolt::util
