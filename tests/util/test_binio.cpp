#include "util/binio.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bolt::util {
namespace {

TEST(BinIo, ScalarRoundTrip) {
  std::stringstream ss;
  put(ss, std::uint32_t{0xdeadbeef});
  put(ss, -1.5);
  put(ss, std::uint8_t{7});
  EXPECT_EQ(get<std::uint32_t>(ss), 0xdeadbeefu);
  EXPECT_EQ(get<double>(ss), -1.5);
  EXPECT_EQ(get<std::uint8_t>(ss), 7u);
}

TEST(BinIo, VectorRoundTrip) {
  std::stringstream ss;
  const std::vector<std::uint64_t> v = {1, 2, 3, ~0ull};
  put_vec(ss, v);
  EXPECT_EQ(get_vec<std::uint64_t>(ss), v);
}

TEST(BinIo, EmptyVector) {
  std::stringstream ss;
  put_vec(ss, std::vector<float>{});
  EXPECT_TRUE(get_vec<float>(ss).empty());
}

TEST(BinIo, TruncatedScalarThrows) {
  std::stringstream ss;
  put(ss, std::uint16_t{1});
  EXPECT_THROW(get<std::uint64_t>(ss), std::runtime_error);
}

TEST(BinIo, TruncatedVectorThrows) {
  std::stringstream ss;
  put_vec(ss, std::vector<std::uint64_t>{1, 2, 3});
  const std::string s = ss.str();
  std::stringstream cut(s.substr(0, s.size() - 4));
  EXPECT_THROW(get_vec<std::uint64_t>(cut), std::runtime_error);
}

TEST(BinIo, ImplausibleSizeRejectedBeforeAllocation) {
  std::stringstream ss;
  put(ss, ~std::uint64_t{0});  // claims 2^64-1 elements
  EXPECT_THROW(get_vec<std::uint64_t>(ss), std::runtime_error);
}

TEST(BinIo, CustomElementLimit) {
  std::stringstream ss;
  put_vec(ss, std::vector<std::uint8_t>(100, 1));
  EXPECT_THROW(get_vec<std::uint8_t>(ss, 50), std::runtime_error);
}

// Regression: a crafted count that passes the plausibility cap but exceeds
// the bytes actually present must be rejected before any allocation. The
// check divides (n > remaining / sizeof(T)) because n * sizeof(T) can wrap.
TEST(BinIo, HugeCountHeaderRejectedBeforeAllocation) {
  std::stringstream ss;
  put(ss, std::uint64_t{1} << 28);  // exactly max_elems: passes the cap
  put(ss, std::uint64_t{42});       // ... but only 8 payload bytes follow
  EXPECT_THROW(get_vec<std::uint64_t>(ss), std::runtime_error);
}

TEST(BinIo, CountTimesSizeofOverflowRejected) {
  // 2^61 u64 elements would wrap n * sizeof(T) to 0; the divide-based
  // check must still reject it (with a raised cap to reach that code).
  std::stringstream ss;
  put(ss, std::uint64_t{1} << 61);
  put(ss, std::uint64_t{0});
  EXPECT_THROW(get_vec<std::uint64_t>(ss, ~std::uint64_t{0}), std::runtime_error);
}

TEST(BinIo, RemainingBytesRestoresPosition) {
  std::stringstream ss;
  put(ss, std::uint32_t{7});
  put(ss, std::uint32_t{9});
  EXPECT_EQ(remaining_bytes(ss), 8u);
  EXPECT_EQ(get<std::uint32_t>(ss), 7u);
  EXPECT_EQ(remaining_bytes(ss), 4u);
  EXPECT_EQ(get<std::uint32_t>(ss), 9u);
}

}  // namespace
}  // namespace bolt::util
