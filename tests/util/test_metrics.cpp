#include "util/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace bolt::util {
namespace {

TEST(Counter, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddSub) {
  Gauge g;
  g.set(10);
  g.add(5);
  g.sub(12);
  EXPECT_EQ(g.value(), 3);
  g.set(-4);
  EXPECT_EQ(g.value(), -4);
}

TEST(Histogram, BucketAssignment) {
  // Bucket i counts samples in (bounds[i-1], bounds[i]]; one overflow
  // bucket past the last bound.
  Histogram h({1.0, 2.0, 4.0, 8.0});
  h.record(0.5);   // bucket 0
  h.record(1.0);   // bucket 0 (inclusive upper bound)
  h.record(1.5);   // bucket 1
  h.record(4.0);   // bucket 2
  h.record(8.1);   // overflow bucket
  h.record(100.0); // overflow bucket

  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 5u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 0u);
  EXPECT_EQ(snap.counts[4], 2u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 4.0 + 8.1 + 100.0);
  EXPECT_DOUBLE_EQ(snap.mean(), snap.sum / 6.0);
}

TEST(Histogram, PercentilesInterpolateWithinBuckets) {
  // 100 samples uniform over (0, 100] with decade-width buckets: pXX must
  // land at XX exactly under linear interpolation.
  std::vector<double> bounds;
  for (double b = 10.0; b <= 100.0; b += 10.0) bounds.push_back(b);
  Histogram h(bounds);
  for (int i = 0; i < 100; ++i) h.record(static_cast<double>(i) + 0.5);

  const HistogramSnapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(snap.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(snap.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(snap.percentile(100), 100.0);
  EXPECT_GT(snap.percentile(1), 0.0);
}

TEST(Histogram, OverflowBucketClampsToLastBound) {
  Histogram h({1.0, 10.0});
  for (int i = 0; i < 10; ++i) h.record(1e6);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.percentile(50), 10.0);
  EXPECT_DOUBLE_EQ(snap.percentile(99), 10.0);
}

TEST(Histogram, EmptySnapshotIsZero) {
  Histogram h({1.0});
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, DefaultLatencyBoundsAreAscending) {
  const auto bounds = Histogram::default_latency_bounds_us();
  ASSERT_FALSE(bounds.empty());
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  Histogram h(bounds);  // must construct
  h.record(3.0);
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(Metrics, ConcurrentRecordingIsLossless) {
  // N threads hammer one counter and one histogram; every event must be
  // accounted for and bucket counts must sum to the total.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  Counter c;
  Histogram h({10.0, 25.0, 50.0, 75.0, 100.0});

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(static_cast<double>(i % 100));
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto total = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(c.value(), total);

  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, total);
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t n : snap.counts) bucket_sum += n;
  EXPECT_EQ(bucket_sum, total);
  // Sum of i%100 over kPerThread i's, per thread — integer-valued doubles
  // below 2^53 add exactly, so this is deterministic despite the races.
  const double per_thread = (kPerThread / 100) * 4950.0;
  EXPECT_DOUBLE_EQ(snap.sum, per_thread * kThreads);
}

TEST(Histogram, SnapshotTracksMinAndMax) {
  Histogram h({10.0, 100.0});
  h.record(42.0);
  h.record(3.5);
  h.record(7000.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.min, 3.5);
  EXPECT_DOUBLE_EQ(snap.max, 7000.0);
  // Empty histograms report zero extremes, not sentinel infinities.
  EXPECT_DOUBLE_EQ(Histogram({1.0}).snapshot().min, 0.0);
  EXPECT_DOUBLE_EQ(Histogram({1.0}).snapshot().max, 0.0);
}

TEST(Registry, ResetForTestingZeroesEveryMetric) {
  MetricsRegistry reg;
  reg.counter("c").inc(9);
  reg.gauge("g").set(-3);
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  h.record(1.5);
  reg.reset_for_testing();

  EXPECT_EQ(reg.counter("c").value(), 0u);
  EXPECT_EQ(reg.gauge("g").value(), 0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  // The same references stay registered and usable after the reset.
  reg.counter("c").inc();
  h.record(1.0);
  EXPECT_EQ(reg.counter("c").value(), 1u);
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(Metrics, SnapshotRacesWithWritersSafely) {
  // Writers hammer the registry while a reader snapshots concurrently —
  // the TSan CI job turns any unsynchronized access here into a failure.
  // Each snapshot must also be internally sane (monotonic counter view,
  // bucket sum == count).
  MetricsRegistry reg;
  Counter& c = reg.counter("svc.requests");
  Histogram& h = reg.histogram("svc.lat", {10.0, 50.0, 90.0});
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 30000; ++i) {
        c.inc();
        h.record(static_cast<double>(i % 100));
      }
    });
  }
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snap = reg.snapshot();
      ASSERT_EQ(snap.counters.size(), 1u);
      EXPECT_GE(snap.counters[0].second, last);
      last = snap.counters[0].second;
      for (const auto& [name, hist] : snap.histograms) {
        std::uint64_t bucket_sum = 0;
        for (std::uint64_t n : hist.counts) bucket_sum += n;
        // Bucket increments and the count increment are separate relaxed
        // ops, so a mid-record snapshot may be off by the in-flight
        // records (at most one per writer thread).
        const std::uint64_t diff = bucket_sum > hist.count
                                       ? bucket_sum - hist.count
                                       : hist.count - bucket_sum;
        EXPECT_LE(diff, 4u);
      }
      (void)reg.render_prometheus();  // exposition must be race-free too
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(c.value(), 4u * 30000u);
}

TEST(Registry, SameNameReturnsSameMetric) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(&reg.histogram("h"), &reg.histogram("h"));
  EXPECT_EQ(&reg.gauge("g"), &reg.gauge("g"));
}

TEST(Registry, SnapshotRendersTextAndJson) {
  MetricsRegistry reg;
  reg.counter("svc.requests").inc(7);
  reg.gauge("svc.active").set(2);
  reg.histogram("svc.lat", {1.0, 10.0}).record(0.5);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "svc.requests");
  EXPECT_EQ(snap.counters[0].second, 7u);

  const std::string text = snap.to_text();
  EXPECT_NE(text.find("svc.requests 7"), std::string::npos);
  EXPECT_NE(text.find("svc.active 2"), std::string::npos);
  EXPECT_NE(text.find("svc.lat count=1"), std::string::npos);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"svc.requests\":7"), std::string::npos);
  EXPECT_NE(json.find("\"svc.active\":2"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":["), std::string::npos);
}

TEST(Registry, EngineAndPartitionBundlesRegisterPrefixedNames) {
  MetricsRegistry reg;
  const EngineMetrics em = EngineMetrics::in(reg, "engine");
  const PartitionMetrics pm = PartitionMetrics::in(reg, "partitioned");
  ASSERT_NE(em.samples, nullptr);
  ASSERT_NE(pm.discarded_lookups, nullptr);
  em.samples->inc(3);
  em.scan_ns->record(128.0);
  pm.discarded_lookups->inc();
  pm.core_work_ns->record(256.0);

  const std::string text = reg.snapshot().to_text();
  EXPECT_NE(text.find("engine.samples 3"), std::string::npos);
  EXPECT_NE(text.find("engine.scan_ns count=1"), std::string::npos);
  EXPECT_NE(text.find("partitioned.discarded_lookups 1"), std::string::npos);
  EXPECT_NE(text.find("partitioned.core_work_ns count=1"), std::string::npos);
  // Bundles copy freely: copies share the registry-owned atomics.
  const EngineMetrics copy = em;
  copy.samples->inc();
  EXPECT_EQ(em.samples->value(), 4u);
}

}  // namespace
}  // namespace bolt::util
