#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace bolt::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(1), b(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsProduceDifferentStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(4);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.2);
  EXPECT_NEAR(hits, 2000, 200);
}

TEST(Rng, PoissonMean) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) sum += rng.poisson(2.5);
  EXPECT_NEAR(sum / 10000, 2.5, 0.15);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // overwhelmingly likely
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

}  // namespace
}  // namespace bolt::util
