#include "util/vec_view.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/aligned.h"

namespace bolt::util {
namespace {

TEST(VecOrView, OwningBuildsLikeVector) {
  VecOrView<std::uint32_t> v;
  EXPECT_TRUE(v.empty());
  v.reserve(4);
  v.push_back(1);
  v.push_back(2);
  const std::uint32_t extra[] = {3, 4, 5};
  v.append(std::begin(extra), std::end(extra));
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0], 1u);
  EXPECT_EQ(v[4], 5u);
  EXPECT_EQ(v.front(), 1u);
  EXPECT_EQ(v.back(), 5u);
  EXPECT_FALSE(v.is_view());
  EXPECT_EQ(v.owned_bytes(), 5 * sizeof(std::uint32_t));
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0u), 15u);
}

TEST(VecOrView, AdoptVectorAndAssignForms) {
  std::vector<std::uint64_t> src = {10, 20, 30};
  VecOrView<std::uint64_t> v(std::move(src));
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 20u);

  v.assign(2, 9);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 9u);

  v = std::vector<std::uint64_t>{7};
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 7u);
}

TEST(VecOrView, CrossAllocatorAssignment) {
  // get_vec returns a default-allocator vector; aligned containers adopt
  // it element-wise into aligned storage.
  std::vector<std::uint32_t> plain = {1, 2, 3, 4};
  VecOrView<std::uint32_t, AlignedAllocator<std::uint32_t, 64>> v;
  v = std::move(plain);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
}

TEST(VecOrView, ViewBorrowsWithoutCopy) {
  const std::vector<std::uint16_t> backing = {5, 6, 7, 8};
  auto v = VecOrView<std::uint16_t>::view(backing.data(), backing.size());
  EXPECT_TRUE(v.is_view());
  EXPECT_EQ(v.data(), backing.data());
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v[2], 7u);
  EXPECT_EQ(v.owned_bytes(), 0u);
}

TEST(VecOrView, CopyOfOwningRepoints) {
  VecOrView<int> a(std::vector<int>{1, 2, 3});
  VecOrView<int> b = a;
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(b[2], 3);
  VecOrView<int> c;
  c = a;
  EXPECT_NE(a.data(), c.data());
  EXPECT_EQ(c.size(), 3u);
}

TEST(VecOrView, CopyOfViewShares) {
  const std::vector<int> backing = {4, 5};
  auto a = VecOrView<int>::view(backing.data(), backing.size());
  VecOrView<int> b = a;
  EXPECT_EQ(b.data(), backing.data());
  EXPECT_TRUE(b.is_view());
}

TEST(VecOrView, MovePreservesPointers) {
  VecOrView<int> a(std::vector<int>{9, 8, 7});
  const int* p = a.data();
  VecOrView<int> b = std::move(a);
  EXPECT_EQ(b.data(), p);  // vector move transfers the buffer
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT: moved-from is reset to empty-owning
  EXPECT_FALSE(a.is_view());
}

TEST(VecOrView, SpanConversion) {
  VecOrView<float> v(std::vector<float>{1.5f, 2.5f});
  std::span<const float> s = v;
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[1], 2.5f);
}

TEST(VecOrView, ClearResetsViewToOwning) {
  const std::vector<int> backing = {1};
  auto v = VecOrView<int>::view(backing.data(), backing.size());
  v.clear();
  EXPECT_FALSE(v.is_view());
  EXPECT_TRUE(v.empty());
  v.push_back(3);
  EXPECT_EQ(v[0], 3);
}

}  // namespace
}  // namespace bolt::util
