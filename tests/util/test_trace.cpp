#include "util/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace bolt::util {
namespace {

TEST(TraceContext, AccumulatesPerStage) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "built with BOLT_TRACING=0";
  TraceContext t;
  t.add(Stage::kScan, 100);
  t.add(Stage::kScan, 50);
  t.add(Stage::kTableProbe, 30, /*entries=*/4);

  const StageTotals scan = t.stage(Stage::kScan);
  EXPECT_EQ(scan.count, 2u);
  EXPECT_EQ(scan.total_ns, 150u);
  const StageTotals probe = t.stage(Stage::kTableProbe);
  EXPECT_EQ(probe.count, 4u);
  EXPECT_EQ(probe.total_ns, 30u);
  EXPECT_EQ(t.stage(Stage::kDecode).count, 0u);
  EXPECT_EQ(t.attributed_ns(), 180u);
}

TEST(TraceContext, NegativeDurationsClampToZero) {
  // Derived spans (dispatch = wall - attributed) can go negative under
  // clock noise; the time must clamp while the entry still counts.
  if (!kTracingCompiledIn) GTEST_SKIP() << "built with BOLT_TRACING=0";
  TraceContext t;
  t.add(Stage::kDispatch, -500);
  EXPECT_EQ(t.stage(Stage::kDispatch).count, 1u);
  EXPECT_EQ(t.stage(Stage::kDispatch).total_ns, 0u);
}

TEST(TraceContext, ResetZeroesEverything) {
  TraceContext t;
  t.add(Stage::kBinarize, 99);
  t.reset();
  for (std::size_t s = 0; s < kNumStages; ++s) {
    EXPECT_EQ(t.stage(static_cast<Stage>(s)).count, 0u);
    EXPECT_EQ(t.stage(static_cast<Stage>(s)).total_ns, 0u);
  }
}

TEST(TraceContext, MergeFoldsAndSkipsEmptyStages) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "built with BOLT_TRACING=0";
  TraceContext tile;
  tile.add(Stage::kScan, 1000);
  tile.add(Stage::kBinarize, 200);
  TraceContext row;
  row.add(Stage::kQueueWait, 40);
  row.merge(tile);
  EXPECT_EQ(row.stage(Stage::kScan).total_ns, 1000u);
  EXPECT_EQ(row.stage(Stage::kBinarize).total_ns, 200u);
  EXPECT_EQ(row.stage(Stage::kQueueWait).total_ns, 40u);
  // Stages the tile never entered stay untouched (count 0).
  EXPECT_EQ(row.stage(Stage::kEncode).count, 0u);
}

TEST(TraceContext, SpanRecordsElapsedAndIsNullSafe) {
  TraceContext t;
  {
    TraceContext::Span s(&t, Stage::kAggregate);
  }
  if (kTracingCompiledIn) {
    EXPECT_EQ(t.stage(Stage::kAggregate).count, 1u);
  }
  {
    TraceContext::Span s(nullptr, Stage::kAggregate);  // must not crash
    s.end();
    s.end();  // double end is a no-op
  }
  TraceContext::Span s2(&t, Stage::kEncode);
  s2.end();
  const std::uint32_t after_end = t.stage(Stage::kEncode).count;
  s2.end();  // second end records nothing
  EXPECT_EQ(t.stage(Stage::kEncode).count, after_end);
}

TEST(TraceContext, ConcurrentAddsAreLossless) {
  // Scheduler workers add to a shared context concurrently (relaxed
  // atomics); every span must be accounted for. Run under TSan in CI.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  TraceContext t;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < kPerThread; ++j) t.add(Stage::kScan, 3);
    });
  }
  for (auto& th : threads) th.join();
  if (kTracingCompiledIn) {
    const auto total = static_cast<std::uint64_t>(kThreads) * kPerThread;
    EXPECT_EQ(t.stage(Stage::kScan).count, total);
    EXPECT_EQ(t.stage(Stage::kScan).total_ns, total * 3);
  }
}

TEST(TraceSampler, OneInNArmsEveryNth) {
  TraceConfig cfg;
  cfg.sample_every = 4;
  TraceSampler sampler(cfg);
  int armed = 0;
  for (int i = 0; i < 100; ++i) armed += sampler.should_trace();
  EXPECT_EQ(armed, kTracingCompiledIn ? 25 : 0);
}

TEST(TraceSampler, SlowThresholdArmsEveryRequest) {
  TraceConfig cfg;
  cfg.slow_threshold_us = 1000;
  TraceSampler sampler(cfg);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sampler.should_trace(), kTracingCompiledIn);
  }
}

TEST(TraceSampler, DisabledConfigNeverArms) {
  TraceSampler sampler(TraceConfig{});
  EXPECT_FALSE(TraceConfig{}.enabled());
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(sampler.should_trace());
}

TEST(StageName, CoversTaxonomy) {
  EXPECT_STREQ(stage_name(Stage::kDecode), "decode");
  EXPECT_STREQ(stage_name(Stage::kQueueWait), "queue_wait");
  EXPECT_STREQ(stage_name(Stage::kTableProbe), "table_probe");
  EXPECT_STREQ(stage_name(Stage::kEncode), "encode");
}

TEST(SlowRing, CapturesOnlyAboveThreshold) {
  SlowRing ring(/*capacity=*/4, /*threshold_us=*/100);
  TraceContext t;
  t.add(Stage::kScan, 50'000);
  EXPECT_FALSE(ring.maybe_capture(t, 99.9, "CLASSIFY", 1));
  EXPECT_TRUE(ring.maybe_capture(t, 100.0, "CLASSIFY", 1));
  EXPECT_TRUE(ring.maybe_capture(t, 2500.0, "BATCH", 64));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.captured_total(), 2u);

  const auto entries = ring.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].op, "CLASSIFY");
  EXPECT_EQ(entries[1].op, "BATCH");
  EXPECT_EQ(entries[1].rows, 64u);
  EXPECT_EQ(entries[1].stages[static_cast<std::size_t>(Stage::kScan)]
                .total_ns,
            kTracingCompiledIn ? 50'000u : 0u);
}

TEST(SlowRing, ZeroThresholdNeverCaptures) {
  SlowRing ring(4, 0);
  TraceContext t;
  EXPECT_FALSE(ring.maybe_capture(t, 1e9, "CLASSIFY", 1));
  EXPECT_EQ(ring.size(), 0u);
}

TEST(SlowRing, EvictsOldestAtCapacityAndKeepsSeqIds) {
  SlowRing ring(/*capacity=*/3, /*threshold_us=*/1);
  TraceContext t;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.maybe_capture(t, 10.0 + i, "CLASSIFY", 1));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.captured_total(), 5u);  // lifetime count survives eviction
  const auto entries = ring.entries();
  ASSERT_EQ(entries.size(), 3u);
  // Oldest two (ids 0, 1) evicted; remaining are in capture order.
  EXPECT_EQ(entries[0].id, 2u);
  EXPECT_EQ(entries[1].id, 3u);
  EXPECT_EQ(entries[2].id, 4u);
}

TEST(SlowRing, CapacityClampsToAtLeastOne) {
  SlowRing ring(0, 1);
  EXPECT_EQ(ring.capacity(), 1u);
  TraceContext t;
  EXPECT_TRUE(ring.maybe_capture(t, 5.0, "CLASSIFY", 1));
  EXPECT_TRUE(ring.maybe_capture(t, 6.0, "CLASSIFY", 1));
  EXPECT_EQ(ring.size(), 1u);
}

TEST(SlowRing, RendersTextAndJson) {
  SlowRing ring(4, 50);
  TraceContext t;
  t.add(Stage::kScan, 123'000);
  t.add(Stage::kDecode, 7'000);
  ring.maybe_capture(t, 456.7, "CLASSIFY", 1);

  const std::string text = ring.render_text();
  EXPECT_NE(text.find("# slow ring: 1 captured, capacity 4, threshold_us 50"),
            std::string::npos);
  EXPECT_NE(text.find("id=0 op=CLASSIFY rows=1 total_us=456.7"),
            std::string::npos);
  if (kTracingCompiledIn) {
    EXPECT_NE(text.find("scan_us=123.0"), std::string::npos);
    EXPECT_NE(text.find("decode_us=7.0"), std::string::npos);
  }

  const std::string json = ring.render_json();
  EXPECT_NE(json.find("\"threshold_us\":50"), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"CLASSIFY\""), std::string::npos);
  if (kTracingCompiledIn) {
    EXPECT_NE(json.find("\"scan\":{\"count\":1,\"total_ns\":123000}"),
              std::string::npos);
  }
}

TEST(SlowRing, EmptyRingRendersHeaderOnly) {
  SlowRing ring(8, 100);
  EXPECT_EQ(ring.render_text(),
            "# slow ring: 0 captured, capacity 8, threshold_us 100\n");
  EXPECT_EQ(ring.render_json(),
            "{\"threshold_us\":100,\"capacity\":8,\"entries\":[]}");
}

}  // namespace
}  // namespace bolt::util
