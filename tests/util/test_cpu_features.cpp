// Runtime CPU detection and the dispatched PEXT: the feature flags must be
// internally consistent (an ISA without OS state support is reported
// absent), and pext64_fast — whichever implementation the dispatcher
// resolved — must agree with the portable loop on every input.
#include "util/cpu_features.h"

#include <gtest/gtest.h>

#include "util/bits.h"
#include "util/rng.h"

namespace bolt::util {
namespace {

TEST(CpuFeatures, DetectionIsMemoizedAndConsistent) {
  const CpuFeatures& a = cpu_features();
  const CpuFeatures& b = cpu_features();
  EXPECT_EQ(&a, &b);
  // OS-state implications baked into detection.
  if (a.avx2) EXPECT_TRUE(a.os_avx);
  if (a.avx512f) EXPECT_TRUE(a.os_avx512);
  if (a.avx512bw || a.avx512dq || a.avx512vl) EXPECT_TRUE(a.avx512f);
  EXPECT_EQ(a.can_avx2(), a.avx2 && a.os_avx);
  EXPECT_EQ(a.can_avx512(), a.avx512f && a.os_avx512);
  EXPECT_EQ(a.can_pext(), a.bmi2);
}

TEST(CpuFeatures, SummaryIsNonEmpty) {
  EXPECT_FALSE(cpu_features_summary().empty());
}

TEST(CpuFeatures, DispatchedPextMatchesPortableLoop) {
  util::Rng rng(77);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::uint64_t value = rng.next();
    std::uint64_t mask = rng.next();
    // Mix in sparse/dense masks, not just uniform ones.
    if (trial % 3 == 1) mask &= rng.next();
    if (trial % 3 == 2) mask |= rng.next();
    ASSERT_EQ(pext64_fast(value, mask), pext64(value, mask))
        << "value=" << value << " mask=" << mask;
  }
  // Edge masks.
  for (std::uint64_t mask : {std::uint64_t{0}, ~std::uint64_t{0},
                             std::uint64_t{1}, std::uint64_t{1} << 63}) {
    ASSERT_EQ(pext64_fast(0x0123456789abcdefull, mask),
              pext64(0x0123456789abcdefull, mask));
  }
}

}  // namespace
}  // namespace bolt::util
