#include "util/hash.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

namespace bolt::util {
namespace {

TEST(Mix64, Deterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(Mix64, SeededVariantsDiffer) {
  EXPECT_NE(mix64(1, 100), mix64(2, 100));
  EXPECT_NE(mix64(1, 100), mix64(1, 101));
}

TEST(Mix64, AvalancheOnLowBits) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (std::uint64_t x = 0; x < 256; ++x) {
    total += std::popcount(mix64(x) ^ mix64(x ^ 1));
  }
  const double avg = total / 256.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashBytes, EmptyAndSeedSensitivity) {
  const std::uint64_t h0 = hash_bytes({}, 0);
  const std::uint64_t h1 = hash_bytes({}, 1);
  EXPECT_NE(h0, h1);
}

TEST(HashBytes, ContentSensitivity) {
  const char a[] = "hello";
  const char b[] = "hellp";
  const auto sa = std::as_bytes(std::span(a, 5));
  const auto sb = std::as_bytes(std::span(b, 5));
  EXPECT_NE(hash_bytes(sa), hash_bytes(sb));
  EXPECT_EQ(hash_bytes(sa), hash_bytes(sa));
}

TEST(HashWords, OrderSensitive) {
  const std::uint64_t a[] = {1, 2};
  const std::uint64_t b[] = {2, 1};
  EXPECT_NE(hash_words(a), hash_words(b));
}

TEST(HashTableKey, DistinctKeysRarelyCollideInLowBits) {
  // The recombined table uses low bits for slots; check distribution over
  // a small slot space.
  std::set<std::uint64_t> slots;
  const std::uint64_t mask = (1 << 16) - 1;
  int collisions = 0;
  for (std::uint32_t id = 0; id < 64; ++id) {
    for (std::uint64_t addr = 0; addr < 64; ++addr) {
      const std::uint64_t s = hash_table_key(id, addr, 7) & mask;
      if (!slots.insert(s).second) ++collisions;
    }
  }
  // 4096 keys into 65536 slots: expect ~124 birthday collisions; fail only
  // on gross clustering.
  EXPECT_LT(collisions, 400);
}

TEST(HashTableKey, SeedChangesMapping) {
  EXPECT_NE(hash_table_key(1, 2, 3), hash_table_key(1, 2, 4));
}

}  // namespace
}  // namespace bolt::util
