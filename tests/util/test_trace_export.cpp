// Timeline export layer (util/trace_export.h): seqlock ring record/drain
// semantics, drop accounting under overwrite and concurrent drains, the
// process-wide sampler, Chrome Trace Event JSON rendering, and the
// Span -> timeline hand-off when a TraceContext is armed.
#include "util/trace_export.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "util/trace.h"

namespace bolt::util {
namespace {

/// Minimal structural JSON check: balanced {}/[] outside strings and a
/// non-empty top-level object. Enough to catch a malformed render without
/// a JSON parser dependency.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string && !s.empty() && s.front() == '{' &&
         s.back() == '}';
}

class TimelineTest : public ::testing::Test {
 protected:
  void SetUp() override { Timeline::instance().reset_for_testing(); }
  void TearDown() override { Timeline::instance().reset_for_testing(); }
};

TEST_F(TimelineTest, ConfigEnabledSemantics) {
  TimelineConfig off;
  EXPECT_FALSE(off.enabled());
  TimelineConfig on;
  on.sample_every = 64;
  EXPECT_EQ(on.enabled(), kTimelineCompiledIn);
}

TEST_F(TimelineTest, DisabledByDefault) {
  EXPECT_FALSE(timeline_enabled());
  EXPECT_FALSE(Timeline::instance().sample());
  // Recording while disabled is a no-op; the drain is still valid JSON.
  timeline_record("test", "noop", 100, 50);
  const std::string json = Timeline::instance().drain_chrome_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos) << json;
}

TEST_F(TimelineTest, RecordAndDrainRoundTrip) {
  if (!kTimelineCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TimelineConfig cfg;
  cfg.sample_every = 1;
  Timeline::instance().configure(cfg);
  ASSERT_TRUE(timeline_enabled());

  timeline_record("sched", "kernel", 1'000'000, 250'000, "rows", 32);
  Timeline::instance().record_instant("model", "swap", 2'000'000,
                                      "generation", 2);

  const std::string json = Timeline::instance().drain_chrome_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  // Complete span: ph "X", ts/dur in microseconds, single uint arg.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\":\"sched\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"kernel\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":1000.000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":250.000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"args\":{\"rows\":32}"), std::string::npos) << json;
  // Instant event: ph "i" with thread scope, no dur.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"swap\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"args\":{\"generation\":2}"), std::string::npos)
      << json;

  // Drains consume: the second scrape returns a disjoint (empty) window.
  const std::string again = Timeline::instance().drain_chrome_json();
  EXPECT_NE(again.find("\"traceEvents\":[]"), std::string::npos) << again;
}

TEST_F(TimelineTest, SamplerIsOneInN) {
  if (!kTimelineCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TimelineConfig cfg;
  cfg.sample_every = 4;
  Timeline::instance().configure(cfg);
  int hits = 0;
  for (int i = 0; i < 400; ++i) hits += Timeline::instance().sample();
  EXPECT_EQ(hits, 100);
}

TEST(TimelineRingTest, CapacityRoundsUpAndDrainsInOrder) {
  TimelineRing ring(5, 7);  // rounds up to 8
  EXPECT_EQ(ring.display_tid(), 7u);
  for (int i = 0; i < 3; ++i) {
    TimelineEvent e;
    e.cat = "t";
    e.name = "e";
    e.ts_ns = i;
    ring.record(e);
  }
  std::vector<TimelineEvent> out;
  EXPECT_EQ(ring.drain(out), 0u);
  ASSERT_EQ(out.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(out[i].ts_ns, i);
  out.clear();
  EXPECT_EQ(ring.drain(out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(TimelineRingTest, OverwriteCountsDroppedKeepsNewest) {
  TimelineRing ring(8, 1);
  for (int i = 0; i < 20; ++i) {
    TimelineEvent e;
    e.cat = "t";
    e.name = "e";
    e.ts_ns = i;
    ring.record(e);
  }
  std::vector<TimelineEvent> out;
  // 20 recorded into 8 slots: the 12 oldest were lapped.
  EXPECT_EQ(ring.drain(out), 12u);
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out.front().ts_ns, 12);
  EXPECT_EQ(out.back().ts_ns, 19);
}

TEST(TimelineRingTest, ConcurrentWriterAndDrainLoseNothingUnaccounted) {
  constexpr std::uint64_t kEvents = 50'000;
  TimelineRing ring(256, 1);
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      TimelineEvent e;
      e.cat = "w";
      e.name = "e";
      e.ts_ns = static_cast<std::int64_t>(i);
      ring.record(e);
    }
    done.store(true, std::memory_order_release);
  });
  std::uint64_t drained = 0, dropped = 0;
  std::vector<TimelineEvent> out;
  while (!done.load(std::memory_order_acquire)) {
    out.clear();
    dropped += ring.drain(out);
    drained += out.size();
  }
  writer.join();
  out.clear();
  dropped += ring.drain(out);
  drained += out.size();
  // Every event is either delivered or counted as dropped — never silent.
  EXPECT_EQ(drained + dropped, kEvents);
  EXPECT_GT(drained, 0u);
}

TEST_F(TimelineTest, MultiThreadEventsCarryDistinctTids) {
  if (!kTimelineCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TimelineConfig cfg;
  cfg.sample_every = 1;
  Timeline::instance().configure(cfg);
  std::thread other([] { timeline_record("test", "other_thread", 10, 5); });
  other.join();
  timeline_record("test", "main_thread", 20, 5);
  const std::string json = Timeline::instance().drain_chrome_json();
  EXPECT_NE(json.find("\"name\":\"other_thread\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"main_thread\""), std::string::npos)
      << json;
}

TEST_F(TimelineTest, ArmedTraceContextSpansFeedTheTimeline) {
  if (!kTimelineCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TimelineConfig cfg;
  cfg.sample_every = 1;
  Timeline::instance().configure(cfg);

  TraceContext unarmed;
  { TraceContext::Span s(&unarmed, Stage::kScan); }
  std::string json = Timeline::instance().drain_chrome_json();
  EXPECT_EQ(json.find("\"cat\":\"engine\""), std::string::npos) << json;

  TraceContext armed;
  armed.set_timeline(true);
  EXPECT_TRUE(armed.timeline_armed());
  { TraceContext::Span s(&armed, Stage::kScan); }
  json = Timeline::instance().drain_chrome_json();
  EXPECT_NE(json.find("\"cat\":\"engine\""), std::string::npos) << json;
  EXPECT_NE(json.find(stage_name(Stage::kScan)), std::string::npos) << json;

  armed.reset();
  EXPECT_FALSE(armed.timeline_armed());  // reset() disarms for reuse
}

TEST_F(TimelineTest, EscapesHostileNamesInJson) {
  if (!kTimelineCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TimelineConfig cfg;
  cfg.sample_every = 1;
  Timeline::instance().configure(cfg);
  static const char kEvil[] = "a\"b\\c\nd";
  timeline_record(kEvil, kEvil, 0, 1, kEvil, 9);
  const std::string json = Timeline::instance().drain_chrome_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos) << json;
}

}  // namespace
}  // namespace bolt::util
