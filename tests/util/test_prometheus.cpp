#include "util/prometheus.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "util/metrics.h"

namespace bolt::util {
namespace {

TEST(PrometheusName, SanitizesIllegalCharacters) {
  EXPECT_EQ(prometheus_name("service.request_latency_us"),
            "service_request_latency_us");
  EXPECT_EQ(prometheus_name("engine.scan-ns"), "engine_scan_ns");
  EXPECT_EQ(prometheus_name("ok_name:sub"), "ok_name:sub");
  EXPECT_EQ(prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(prometheus_name(""), "_");
  EXPECT_EQ(prometheus_name("a b\tc"), "a_b_c");
}

TEST(PrometheusEscape, EscapesLabelValues) {
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label("back\\slash"), "back\\\\slash");
  EXPECT_EQ(prometheus_escape_label("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prometheus_escape_label("two\nlines"), "two\\nlines");
}

MetricsSnapshot sample_snapshot() {
  MetricsRegistry reg;
  reg.counter("service.requests_total").inc(42);
  reg.gauge("service.active_connections").set(3);
  Histogram& h = reg.histogram("service.request_latency_us", {1.0, 10.0, 100.0});
  h.record(0.5);
  h.record(5.0);
  h.record(5000.0);
  reg.set_build_info({{"version", "v1.2.3-4-gabc"},
                      {"compiler", "GNU 12.2.0"},
                      {"sanitizers", "none"}});
  return reg.snapshot();
}

TEST(PrometheusExposition, RendersAndValidates) {
  const std::string text = sample_snapshot().to_prometheus();
  EXPECT_NE(text.find("# TYPE service_requests_total counter\n"
                      "service_requests_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE service_active_connections gauge\n"
                      "service_active_connections 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE service_request_latency_us histogram"),
            std::string::npos);
  // Cumulative buckets: 1 sample <= 1, 2 <= 10, 2 <= 100, 3 total.
  EXPECT_NE(text.find("service_request_latency_us_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("service_request_latency_us_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("service_request_latency_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("service_request_latency_us_count 3"),
            std::string::npos);
  EXPECT_NE(text.find("bolt_build_info{"), std::string::npos);
  EXPECT_NE(text.find("version=\"v1.2.3-4-gabc\""), std::string::npos);

  std::string error;
  EXPECT_TRUE(validate_prometheus(text, &error)) << error;
}

TEST(PrometheusExposition, EmptyRegistryStillValidates) {
  MetricsRegistry reg;
  reg.counter("one").inc();
  std::string error;
  EXPECT_TRUE(validate_prometheus(reg.render_prometheus(), &error)) << error;
}

TEST(PrometheusValidator, RejectsSampleWithoutType) {
  std::string error;
  EXPECT_FALSE(validate_prometheus("orphan_metric 5\n", &error));
  EXPECT_NE(error.find("no preceding # TYPE"), std::string::npos);
}

TEST(PrometheusValidator, RejectsMissingTrailingNewline) {
  std::string error;
  EXPECT_FALSE(validate_prometheus(
      "# TYPE x counter\nx 1", &error));
  EXPECT_NE(error.find("newline"), std::string::npos);
}

TEST(PrometheusValidator, RejectsDuplicateType) {
  std::string error;
  EXPECT_FALSE(validate_prometheus(
      "# TYPE x counter\n# TYPE x counter\nx 1\n", &error));
  EXPECT_NE(error.find("duplicate TYPE"), std::string::npos);
}

TEST(PrometheusValidator, RejectsDescendingBounds) {
  const std::string text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"10\"} 1\n"
      "h_bucket{le=\"1\"} 2\n"
      "h_bucket{le=\"+Inf\"} 2\n"
      "h_sum 11\n"
      "h_count 2\n";
  std::string error;
  EXPECT_FALSE(validate_prometheus(text, &error));
  EXPECT_NE(error.find("not ascending"), std::string::npos);
}

TEST(PrometheusValidator, RejectsDecreasingCumulativeCounts) {
  const std::string text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\n"
      "h_bucket{le=\"10\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\n"
      "h_sum 11\n"
      "h_count 5\n";
  std::string error;
  EXPECT_FALSE(validate_prometheus(text, &error));
  EXPECT_NE(error.find("decrease"), std::string::npos);
}

TEST(PrometheusValidator, RejectsMissingInfBucket) {
  const std::string text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 1\n"
      "h_sum 1\n"
      "h_count 1\n";
  std::string error;
  EXPECT_FALSE(validate_prometheus(text, &error));
  EXPECT_NE(error.find("+Inf"), std::string::npos);
}

TEST(PrometheusValidator, RejectsInfBucketCountMismatch) {
  const std::string text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"+Inf\"} 4\n"
      "h_sum 1\n"
      "h_count 5\n";
  std::string error;
  EXPECT_FALSE(validate_prometheus(text, &error));
  EXPECT_NE(error.find("!= _count"), std::string::npos);
}

TEST(PrometheusValidator, RejectsBadEscapesAndUnterminatedLabels) {
  std::string error;
  EXPECT_FALSE(validate_prometheus(
      "# TYPE x counter\nx{l=\"bad\\q\"} 1\n", &error));
  EXPECT_NE(error.find("invalid escape"), std::string::npos);
  EXPECT_FALSE(validate_prometheus(
      "# TYPE x counter\nx{l=\"open} 1\n", &error));
  EXPECT_FALSE(validate_prometheus(
      "# TYPE x counter\nx{l=\"v\"} not_a_number\n", &error));
}

TEST(PrometheusExposition, LabeledSeriesShareOneTypeLine) {
  // Registry naming convention: `base{key=value,...}` renders as a
  // labeled sample; series of one base share a single # TYPE line.
  MetricsRegistry reg;
  reg.counter("svc.by_op{op=classify}").inc(7);
  reg.counter("svc.by_op{op=batch}").inc(2);
  reg.counter("svc.by_op{op=weird \"op\"\n}").inc(1);
  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("svc_by_op{op=\"classify\"} 7"), std::string::npos)
      << text;
  EXPECT_NE(text.find("svc_by_op{op=\"batch\"} 2"), std::string::npos);
  // Hostile label values are escaped, not mangled.
  EXPECT_NE(text.find("svc_by_op{op=\"weird \\\"op\\\"\\n\"} 1"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("# TYPE svc_by_op counter"),
            text.rfind("# TYPE svc_by_op counter"));
  std::string error;
  EXPECT_TRUE(validate_prometheus(text, &error)) << error << "\n" << text;
}

TEST(PrometheusExposition, MalformedLabelSyntaxFallsBackToFlatName) {
  MetricsRegistry reg;
  reg.counter("svc.bad{not_key_value}").inc(1);
  const std::string text = reg.render_prometheus();
  // No '=' inside the braces: not the labeled convention, so the whole
  // name is sanitized flat instead of rendering broken labels.
  EXPECT_EQ(text.find("svc_bad{"), std::string::npos) << text;
  std::string error;
  EXPECT_TRUE(validate_prometheus(text, &error)) << error << "\n" << text;
}

TEST(PrometheusExposition, NanHistogramSumRendersParseable) {
  // A NaN fed to a histogram must render as "NaN" (the one spelling the
  // format accepts), not %g's "nan".
  MetricsRegistry reg;
  Histogram& h = reg.histogram("svc.lat", {1.0, 10.0});
  h.record(std::numeric_limits<double>::quiet_NaN());
  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("svc_lat_sum NaN"), std::string::npos) << text;
  std::string error;
  EXPECT_TRUE(validate_prometheus(text, &error)) << error << "\n" << text;
}

TEST(PrometheusValidator, RejectsIllegalLabelNames) {
  std::string error;
  EXPECT_FALSE(validate_prometheus(
      "# TYPE x counter\nx{bad:name=\"v\"} 1\n", &error));
  EXPECT_NE(error.find("label name"), std::string::npos) << error;
  EXPECT_FALSE(validate_prometheus(
      "# TYPE x counter\nx{9lives=\"v\"} 1\n", &error));
}

TEST(PrometheusValidator, RejectsDuplicateLabelNames) {
  std::string error;
  EXPECT_FALSE(validate_prometheus(
      "# TYPE x counter\nx{a=\"1\",a=\"2\"} 1\n", &error));
  EXPECT_NE(error.find("duplicate label"), std::string::npos) << error;
}

TEST(PrometheusValidator, AcceptsEscapedLabelsAndTimestamps) {
  std::string error;
  EXPECT_TRUE(validate_prometheus(
      "# TYPE x counter\nx{l=\"a\\\\b\\\"c\\nd\"} 1\n", &error))
      << error;
  EXPECT_TRUE(validate_prometheus(
      "# TYPE x counter\nx 1 1700000000000\n", &error))
      << error;
}

}  // namespace
}  // namespace bolt::util
