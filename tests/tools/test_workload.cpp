// Unit tests for the load generator's workload-shape library (arrival
// schedules, op mixes, the replay log format, the latency recorder) and
// for the shared bench JSON writer that BENCH_*.json files go through.
#include "loadgen/workload.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.h"  // bench::JsonWriter
#include "util/rng.h"

namespace bolt::loadgen {
namespace {

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "/bolt_" + tag + "_" +
         std::to_string(::getpid()) + ".log";
}

TEST(OpNames, RoundTrip) {
  for (std::size_t i = 0; i < kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    Op back;
    ASSERT_TRUE(parse_op(op_name(op), back)) << op_name(op);
    EXPECT_EQ(back, op);
  }
  Op ignored;
  EXPECT_FALSE(parse_op("CLASSIFY", ignored));  // names are lowercase
  EXPECT_FALSE(parse_op("bogus", ignored));
}

TEST(OpMix, DefaultIsClassifyOnly) {
  OpMix mix;
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(mix.pick(rng), Op::kClassify);
  EXPECT_EQ(mix.describe(), "classify=1");
}

TEST(OpMix, ParseDescribeRoundTrip) {
  const OpMix mix = OpMix::parse("classify=70,batch=20,trace=5,stats=5");
  EXPECT_DOUBLE_EQ(mix.weight(Op::kClassify), 70.0);
  EXPECT_DOUBLE_EQ(mix.weight(Op::kBatch), 20.0);
  EXPECT_DOUBLE_EQ(mix.weight(Op::kTrace), 5.0);
  EXPECT_DOUBLE_EQ(mix.weight(Op::kStats), 5.0);
  EXPECT_DOUBLE_EQ(mix.weight(Op::kExplain), 0.0);
  EXPECT_EQ(mix.describe(), "classify=70,batch=20,trace=5,stats=5");
}

TEST(OpMix, PickTracksWeights) {
  const OpMix mix = OpMix::parse("classify=60,batch=30,stats=10");
  util::Rng rng(7);
  std::array<int, kNumOps> hits{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    hits[static_cast<std::size_t>(mix.pick(rng))]++;
  }
  EXPECT_NEAR(hits[static_cast<std::size_t>(Op::kClassify)], 60000, 2000);
  EXPECT_NEAR(hits[static_cast<std::size_t>(Op::kBatch)], 30000, 2000);
  EXPECT_NEAR(hits[static_cast<std::size_t>(Op::kStats)], 10000, 1500);
  EXPECT_EQ(hits[static_cast<std::size_t>(Op::kTrace)], 0);
  EXPECT_EQ(hits[static_cast<std::size_t>(Op::kExplain)], 0);
}

TEST(OpMix, RejectsMalformedSpecs) {
  EXPECT_THROW(OpMix::parse("classify"), std::runtime_error);
  EXPECT_THROW(OpMix::parse("warp=1"), std::runtime_error);
  EXPECT_THROW(OpMix::parse("classify=x"), std::runtime_error);
  EXPECT_THROW(OpMix::parse("classify=-1"), std::runtime_error);
  EXPECT_THROW(OpMix::parse("classify=0,batch=0"), std::runtime_error);
}

TEST(ArrivalSchedule, PoissonIsDeterministicPerSeed) {
  ShapeConfig cfg;
  cfg.kind = ShapeConfig::Kind::kPoisson;
  cfg.rps = 500.0;
  ArrivalSchedule a(cfg, 42), b(cfg, 42), c(cfg, 43);
  bool any_different = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t ta = a.next_us();
    EXPECT_EQ(ta, b.next_us());
    any_different = any_different || ta != c.next_us();
  }
  EXPECT_TRUE(any_different);  // a different seed is a different process
}

TEST(ArrivalSchedule, PoissonMeanRateConverges) {
  ShapeConfig cfg;
  cfg.kind = ShapeConfig::Kind::kPoisson;
  cfg.rps = 1000.0;  // mean gap 1000 us
  ArrivalSchedule sched(cfg, 7);
  constexpr int kN = 50000;
  std::uint64_t last = 0, prev = 0;
  for (int i = 0; i < kN; ++i) {
    prev = last;
    last = sched.next_us();
    ASSERT_GE(last, prev);  // monotone
  }
  const double mean_gap = static_cast<double>(last) / kN;
  EXPECT_NEAR(mean_gap, 1000.0, 50.0);  // within 5% over 50k arrivals
}

TEST(ArrivalSchedule, UniformIsExactlyPaced) {
  ShapeConfig cfg;
  cfg.kind = ShapeConfig::Kind::kUniform;
  cfg.rps = 100.0;  // 10 ms gap
  ArrivalSchedule sched(cfg, 1);
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(sched.next_us(), static_cast<std::uint64_t>(i) * 10000u);
  }
}

TEST(ArrivalSchedule, BurstGroupsShareTimestampAtMeanRate) {
  ShapeConfig cfg;
  cfg.kind = ShapeConfig::Kind::kBurst;
  cfg.rps = 1000.0;
  cfg.burst_size = 8;
  ArrivalSchedule sched(cfg, 1);
  std::uint64_t last_burst_t = 0;
  for (int burst = 0; burst < 5; ++burst) {
    const std::uint64_t t = sched.next_us();
    for (std::size_t i = 1; i < cfg.burst_size; ++i) {
      EXPECT_EQ(sched.next_us(), t);  // whole burst lands at once
    }
    if (burst > 0) {
      // Bursts spaced burst_size/rps apart keep the long-run rate at rps.
      EXPECT_EQ(t - last_burst_t, 8000u);
    }
    last_burst_t = t;
  }
}

TEST(ArrivalSchedule, RejectsBadConfig) {
  ShapeConfig cfg;
  cfg.rps = 0.0;
  EXPECT_THROW(ArrivalSchedule(cfg, 1), std::runtime_error);
  cfg.rps = 100.0;
  cfg.kind = ShapeConfig::Kind::kBurst;
  cfg.burst_size = 0;
  EXPECT_THROW(ArrivalSchedule(cfg, 1), std::runtime_error);
}

TEST(ShapeNames, RoundTrip) {
  for (const auto kind :
       {ShapeConfig::Kind::kPoisson, ShapeConfig::Kind::kUniform,
        ShapeConfig::Kind::kBurst}) {
    ShapeConfig::Kind back;
    ASSERT_TRUE(parse_shape(shape_name(kind), back));
    EXPECT_EQ(back, kind);
  }
  ShapeConfig::Kind ignored;
  EXPECT_FALSE(parse_shape("bursty", ignored));
}

TEST(RequestLog, WriteReadRoundTrip) {
  const std::string path = temp_path("roundtrip");
  const std::vector<LogEvent> events = {
      {0, Op::kClassify, 1},
      {1500, Op::kBatch, 32},
      {1500, Op::kStats, 1},
      {999999, Op::kTrace, 1},
  };
  ASSERT_TRUE(write_request_log(path, events));
  const std::vector<LogEvent> back = read_request_log(path);
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i].t_us, events[i].t_us);
    EXPECT_EQ(back[i].op, events[i].op);
    EXPECT_EQ(back[i].rows, events[i].rows);
  }
  std::remove(path.c_str());
}

TEST(RequestLog, MissingFileAndMalformedLinesThrow) {
  EXPECT_THROW(read_request_log(temp_path("nonexistent")),
               std::runtime_error);

  const std::string path = temp_path("malformed");
  {
    std::ofstream out(path);
    out << "# bolt_loadgen replay v1\n100 classify 1\nnot a line\n";
  }
  EXPECT_THROW(read_request_log(path), std::runtime_error);
  std::remove(path.c_str());

  {
    std::ofstream out(path);
    out << "100 teleport 1\n";
  }
  EXPECT_THROW(read_request_log(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(RequestLog, CommentsSkippedAndZeroRowsClamped) {
  const std::string path = temp_path("comments");
  {
    std::ofstream out(path);
    out << "# header\n\n# another comment\n10 batch 0\n";
  }
  const auto events = read_request_log(path);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].op, Op::kBatch);
  EXPECT_EQ(events[0].rows, 1u);  // rows=0 is meaningless; clamp to 1
  std::remove(path.c_str());
}

TEST(LatencyRecorder, PercentilesTrackRecordedPopulation) {
  LatencyRecorder rec;
  // 1..1000 us uniform: p50 ~ 500, p99 ~ 990. The recorder's geometric
  // buckets are ~10% wide, so assert within that resolution.
  for (int us = 1; us <= 1000; ++us) {
    rec.record_us(static_cast<double>(us));
  }
  const LatencySummary s = rec.summary();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_NEAR(s.p50, 500.0, 75.0);
  EXPECT_NEAR(s.p99, 990.0, 150.0);
  // min/max are tracked exactly; percentiles read off bucket bounds, so
  // p999 may land up to one ~10% bucket above the true maximum.
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_NEAR(s.p999, 1000.0, 120.0);
  EXPECT_GE(s.p999, s.p99);
  EXPECT_GE(s.p99, s.p95);
  EXPECT_GE(s.p95, s.p50);
  EXPECT_NEAR(s.mean, 500.5, 75.0);
}

TEST(LatencyRecorder, EmptySummaryIsZero) {
  LatencyRecorder rec;
  const LatencySummary s = rec.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(JsonWriter, NestedStructureAndEscaping) {
  bench::JsonWriter w;
  w.begin_object()
      .field("schema", "test-v1")
      .field("count", static_cast<std::uint64_t>(3))
      .field("ratio", 0.5)
      .field("ok", true)
      .field("tricky", "a\"b\\c\nd");
  w.begin_object("nested").field("x", static_cast<std::int64_t>(-7))
      .end_object();
  w.begin_array("values");
  w.value(1.0).value(static_cast<std::uint64_t>(2)).value("three");
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"schema\":\"test-v1\",\"count\":3,\"ratio\":0.5,\"ok\":true,"
            "\"tricky\":\"a\\\"b\\\\c\\nd\","
            "\"nested\":{\"x\":-7},"
            "\"values\":[1,2,\"three\"]}");
}

TEST(JsonWriter, NonFiniteNumbersSerializeAsZero) {
  bench::JsonWriter w;
  w.begin_object()
      .field("nan", std::nan(""))
      .field("inf", std::numeric_limits<double>::infinity())
      .end_object();
  EXPECT_EQ(w.str(), "{\"nan\":0,\"inf\":0}");
}

TEST(JsonWriter, WriteFileAppendsTrailingNewline) {
  const std::string path = temp_path("json");
  bench::JsonWriter w;
  w.begin_object().field("a", static_cast<std::uint64_t>(1)).end_object();
  ASSERT_TRUE(w.write_file(path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"a\":1}\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bolt::loadgen
