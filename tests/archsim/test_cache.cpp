#include "archsim/cache.h"

#include <gtest/gtest.h>

namespace bolt::archsim {
namespace {

TEST(Cache, ColdMissThenHit) {
  Cache c({1024, 2, 64});
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
}

TEST(Cache, LruEvictionOrder) {
  // 2-way, 8 sets of 64B lines: lines 0, 8, 16 map to set 0.
  Cache c({1024, 2, 64});
  EXPECT_FALSE(c.access(0 * 64));
  EXPECT_FALSE(c.access(8 * 64));
  EXPECT_TRUE(c.access(0 * 64));    // refresh line 0; line 8 is now LRU
  EXPECT_FALSE(c.access(16 * 64));  // evicts line 8
  EXPECT_TRUE(c.access(0 * 64));
  EXPECT_FALSE(c.access(8 * 64));   // was evicted
}

TEST(Cache, FullyAssociativeBehaviour) {
  Cache c({256, 4, 64});  // one set, 4 ways
  EXPECT_EQ(c.num_sets(), 1u);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(c.access(i * 64));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(c.access(i * 64));
  EXPECT_FALSE(c.access(4 * 64));  // evicts LRU (line 0)
  EXPECT_FALSE(c.access(0));
}

TEST(Cache, NonPowerOfTwoSetCount) {
  // 30 MB / 20 ways / 64 B = 24576 sets (not a power of two).
  Cache c({30ull * 1024 * 1024, 20, 64});
  EXPECT_EQ(c.num_sets(), 24576u);
  EXPECT_FALSE(c.access(123456));
  EXPECT_TRUE(c.access(123456));
}

TEST(Cache, ResetClearsContents) {
  Cache c({1024, 2, 64});
  c.access(0);
  c.reset();
  EXPECT_FALSE(c.access(0));
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache({1024, 3, 64}), std::invalid_argument);  // 16 lines % 3
  EXPECT_THROW(Cache({1024, 2, 60}), std::invalid_argument);  // line not pow2
  EXPECT_THROW(Cache({0, 1, 64}), std::invalid_argument);
}

TEST(CacheHierarchy, MissesPropagate) {
  CacheHierarchy h({128, 2, 64}, {256, 2, 64}, {512, 2, 64});
  EXPECT_EQ(h.access(0), 4);  // cold: memory
  EXPECT_EQ(h.access(0), 1);  // now L1
}

TEST(CacheHierarchy, L1EvictionFallsBackToL2) {
  // L1: 2 lines total (128B, 2-way, 1 set). L2: 4 lines.
  CacheHierarchy h({128, 2, 64}, {256, 4, 64}, {1024, 4, 64});
  h.access(0 * 64);
  h.access(1 * 64);
  h.access(2 * 64);            // evicts line 0 from L1; L2 holds all three
  EXPECT_EQ(h.access(0), 2);   // L1 miss, L2 hit
}

TEST(CacheHierarchy, WorkingSetLargerThanLlcMissesToMemory) {
  CacheHierarchy h({128, 2, 64}, {256, 4, 64}, {512, 8, 64});
  // Touch 64 lines (4 KiB) round-robin twice: far exceeds the 512B LLC.
  int memory_hits = 0;
  for (int round = 0; round < 2; ++round) {
    for (int line = 0; line < 64; ++line) {
      if (h.access(static_cast<std::uint64_t>(line) * 64) == 4) ++memory_hits;
    }
  }
  EXPECT_EQ(memory_hits, 128);  // LRU round-robin over-capacity: all miss
}

}  // namespace
}  // namespace bolt::archsim
