#include "archsim/branch.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace bolt::archsim {
namespace {

TEST(BranchPredictor, LearnsAlwaysTaken) {
  BranchPredictor bp;
  int correct = 0;
  for (int i = 0; i < 100; ++i) correct += bp.predict_and_update(42, true);
  // After warm-up the predictor should be nearly perfect.
  EXPECT_GT(correct, 90);
}

TEST(BranchPredictor, LearnsAlwaysNotTaken) {
  BranchPredictor bp;
  int correct = 0;
  for (int i = 0; i < 100; ++i) correct += bp.predict_and_update(42, false);
  EXPECT_GT(correct, 95);
}

TEST(BranchPredictor, LearnsAlternatingViaHistory) {
  // Global history lets gshare capture a strict T/NT alternation.
  BranchPredictor bp({12, 8});
  int correct = 0;
  for (int i = 0; i < 400; ++i) {
    correct += bp.predict_and_update(7, i % 2 == 0);
  }
  EXPECT_GT(correct, 300);
}

TEST(BranchPredictor, RandomOutcomesNearChance) {
  BranchPredictor bp;
  util::Rng rng(5);
  int correct = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    correct += bp.predict_and_update(9, rng.bernoulli(0.5));
  }
  EXPECT_GT(correct, n * 0.40);
  EXPECT_LT(correct, n * 0.60);
}

TEST(BranchPredictor, BiasedBranchesBeatChance) {
  BranchPredictor bp;
  util::Rng rng(6);
  int correct = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    correct += bp.predict_and_update(11, rng.bernoulli(0.9));
  }
  EXPECT_GT(correct, n * 0.80);
}

TEST(BranchPredictor, ResetForgetsTraining) {
  BranchPredictor bp;
  for (int i = 0; i < 50; ++i) bp.predict_and_update(1, true);
  bp.reset();
  // Counters reinitialize to weakly-not-taken: first taken prediction is
  // wrong again.
  EXPECT_FALSE(bp.predict_and_update(1, true));
}

}  // namespace
}  // namespace bolt::archsim
