// Property test: the set-associative Cache must agree with a simple,
// obviously-correct reference LRU model on random access streams across a
// grid of geometries.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "archsim/cache.h"
#include "util/rng.h"

namespace bolt::archsim {
namespace {

/// Reference model: per set, an explicit recency list of tags.
class OracleLru {
 public:
  OracleLru(const CacheConfig& cfg)
      : ways_(cfg.ways), line_bytes_(cfg.line_bytes),
        sets_(cfg.size_bytes / cfg.line_bytes / cfg.ways), lists_(sets_) {}

  bool access(std::uint64_t addr) {
    const std::uint64_t line = addr / line_bytes_;
    const std::uint64_t set = line % sets_;
    const std::uint64_t tag = line / sets_;
    auto& lru = lists_[set];
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (*it == tag) {
        lru.erase(it);
        lru.push_front(tag);
        return true;
      }
    }
    lru.push_front(tag);
    if (lru.size() > ways_) lru.pop_back();
    return false;
  }

 private:
  std::size_t ways_;
  std::uint64_t line_bytes_;
  std::uint64_t sets_;
  std::vector<std::list<std::uint64_t>> lists_;
};

class CacheOracle : public ::testing::TestWithParam<CacheConfig> {};

TEST_P(CacheOracle, AgreesOnRandomStreams) {
  const CacheConfig cfg = GetParam();
  Cache cache(cfg);
  OracleLru oracle(cfg);
  util::Rng rng(cfg.size_bytes ^ cfg.ways);

  // Mixed access pattern: hot set, random far lines, and strides, over a
  // footprint ~4x the cache so evictions are constant.
  const std::uint64_t footprint = cfg.size_bytes * 4;
  std::uint64_t stride_cursor = 0;
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t addr;
    switch (rng.below(3)) {
      case 0:
        addr = rng.below(cfg.size_bytes / 4);  // hot region
        break;
      case 1:
        addr = rng.below(footprint);  // random
        break;
      default:
        stride_cursor = (stride_cursor + cfg.line_bytes) % footprint;
        addr = stride_cursor;  // streaming
    }
    ASSERT_EQ(cache.access(addr), oracle.access(addr))
        << "access " << i << " addr " << addr;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheOracle,
    ::testing::Values(CacheConfig{1024, 2, 64}, CacheConfig{4096, 4, 64},
                      CacheConfig{8192, 8, 64}, CacheConfig{2048, 1, 64},
                      CacheConfig{512, 8, 64},    // fully associative
                      CacheConfig{12288, 3, 64},  // non-pow2 sets
                      CacheConfig{4096, 4, 32}),
    [](const auto& info) {
      return "s" + std::to_string(info.param.size_bytes) + "w" +
             std::to_string(info.param.ways) + "l" +
             std::to_string(info.param.line_bytes);
    });

}  // namespace
}  // namespace bolt::archsim
