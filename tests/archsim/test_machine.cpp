#include "archsim/machine.h"

#include <gtest/gtest.h>

namespace bolt::archsim {
namespace {

MachineConfig tiny_config() {
  MachineConfig cfg;
  cfg.name = "tiny";
  cfg.ghz = 1.0;
  cfg.l1 = {128, 2, 64};
  cfg.l2 = {256, 4, 64};
  cfg.llc = {1024, 4, 64};
  cfg.service_disturbance_bytes = 0;
  return cfg;
}

TEST(Machine, CountsInstructionsAndBranches) {
  Machine m(tiny_config());
  m.instr(100);
  m.branch(1, true);
  m.branch(1, true);
  m.branch(1, false);
  EXPECT_EQ(m.counters().instructions, 100u);
  EXPECT_EQ(m.counters().branches, 2u);  // only taken branches counted
}

TEST(Machine, MemReadSpansLines) {
  Machine m(tiny_config());
  alignas(64) static char buf[256];
  m.mem_read(buf, 1);
  EXPECT_EQ(m.counters().mem_accesses, 1u);
  m.reset_state();
  m.mem_read(buf, 160);  // 3 lines when aligned
  EXPECT_EQ(m.counters().mem_accesses, 3u);
}

TEST(Machine, MissCountersFollowHierarchy) {
  Machine m(tiny_config());
  alignas(64) static char buf[64];
  m.mem_read(buf, 1);
  EXPECT_EQ(m.counters().l1_misses, 1u);
  EXPECT_EQ(m.counters().llc_misses, 1u);  // cold: missed everywhere
  m.mem_read(buf, 1);
  EXPECT_EQ(m.counters().l1_misses, 1u);  // now a hit
}

TEST(Machine, SerialCostsMoreThanParallel) {
  alignas(64) static char buf[64 * 64];
  Machine serial(tiny_config());
  for (int i = 0; i < 64; ++i) {
    serial.mem_read(buf + i * 64, 1, MemDep::kSerial);
  }
  Machine parallel(tiny_config());
  for (int i = 0; i < 64; ++i) {
    parallel.mem_read(buf + i * 64, 1, MemDep::kParallel);
  }
  EXPECT_GT(serial.estimated_cycles(),
            parallel.estimated_cycles() * 2.0);
  // Counter totals identical; only the cycle model differs.
  EXPECT_EQ(serial.counters().mem_accesses,
            parallel.counters().mem_accesses);
}

TEST(Machine, BranchMissesAddPenalty) {
  Machine m(tiny_config());
  const double before = m.estimated_cycles();
  // Mispredict by alternating unpredictably at a fresh site with an
  // untrained table: the first taken branch mispredicts.
  m.branch(12345, true);
  EXPECT_GE(m.counters().branch_misses, 1u);
  EXPECT_GT(m.estimated_cycles(), before);
}

TEST(Machine, PreloadInstallsWithoutCharging) {
  Machine m(tiny_config());
  alignas(64) static char buf[64];
  m.preload(buf, 64);
  EXPECT_EQ(m.counters().mem_accesses, 0u);
  EXPECT_EQ(m.estimated_cycles(), 0.0);
  m.mem_read(buf, 1);
  EXPECT_EQ(m.counters().l1_misses, 0u);  // preloaded -> L1 hit
}

TEST(Machine, BetweenRequestsEvictsUncharged) {
  MachineConfig cfg = tiny_config();
  cfg.service_disturbance_bytes = 4096;  // >> tiny caches
  Machine m(cfg);
  alignas(64) static char buf[64];
  m.mem_read(buf, 1);
  m.reset_counters();
  m.between_requests();
  EXPECT_EQ(m.counters().mem_accesses, 0u);  // uncharged
  m.mem_read(buf, 1);
  EXPECT_EQ(m.counters().l1_misses, 1u);  // evicted by disturbance
}

TEST(Machine, EstimatedTimeScalesWithFrequency) {
  MachineConfig slow = tiny_config();
  MachineConfig fast = tiny_config();
  fast.ghz = 2.0;
  Machine a(slow), b(fast);
  a.instr(1000);
  b.instr(1000);
  EXPECT_NEAR(a.estimated_ns(), 2.0 * b.estimated_ns(), 1e-9);
}

TEST(MachinePresets, MatchPaperHardware) {
  const MachineConfig xeon = xeon_e5_2650_v4();
  EXPECT_EQ(xeon.cores, 12u);
  EXPECT_DOUBLE_EQ(xeon.ghz, 2.2);
  EXPECT_EQ(xeon.llc.size_bytes, 30ull * 1024 * 1024);
  EXPECT_EQ(ec_small().cores, 4u);
  EXPECT_EQ(ec_large().cores, 32u);
}

}  // namespace
}  // namespace bolt::archsim
