// Artifact serialization: a compiled BoltForest shipped to another process
// must classify identically, bit for bit.
#include <gtest/gtest.h>

#include <sstream>

#include "../helpers.h"
#include "bolt/builder.h"
#include "bolt/engine.h"

namespace bolt::core {
namespace {

struct IoCase {
  const char* name;
  BoltConfig cfg;
};

class ArtifactIo : public ::testing::TestWithParam<IoCase> {};

TEST_P(ArtifactIo, RoundTripPreservesEverything) {
  const forest::Forest forest = bolt::testing::small_forest(8, 4, 111);
  const data::Dataset inputs = bolt::testing::small_dataset(300, 112);
  const BoltForest original = BoltForest::build(forest, GetParam().cfg);

  std::stringstream blob;
  original.save(blob);
  const BoltForest loaded = BoltForest::load(blob);

  EXPECT_EQ(loaded.num_classes(), original.num_classes());
  EXPECT_EQ(loaded.num_features(), original.num_features());
  EXPECT_EQ(loaded.dictionary().num_entries(),
            original.dictionary().num_entries());
  EXPECT_EQ(loaded.table().num_slots(), original.table().num_slots());
  EXPECT_EQ(loaded.results().size(), original.results().size());
  EXPECT_EQ(loaded.results().packed_available(),
            original.results().packed_available());
  EXPECT_EQ(loaded.stats().table_entries, original.stats().table_entries);
  EXPECT_EQ(loaded.config().cluster.threshold,
            original.config().cluster.threshold);
  EXPECT_EQ(loaded.bloom() != nullptr, original.bloom() != nullptr);

  BoltEngine a(original);
  BoltEngine b(loaded);
  std::vector<double> va(forest.num_classes), vb(forest.num_classes);
  for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
    a.vote(inputs.row(i), va);
    b.vote(inputs.row(i), vb);
    for (std::size_t c = 0; c < va.size(); ++c) {
      ASSERT_EQ(va[c], vb[c]) << "sample " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ArtifactIo,
    ::testing::Values(
        IoCase{"default", {}},
        IoCase{"bloom",
               [] {
                 BoltConfig c;
                 c.use_bloom = true;
                 return c;
               }()},
        IoCase{"byte_seed",
               [] {
                 BoltConfig c;
                 c.table.strategy = TableStrategy::kSeedSearch;
                 c.table.id_check = IdCheck::kByte;
                 return c;
               }()},
        IoCase{"thr8",
               [] {
                 BoltConfig c;
                 c.cluster.threshold = 8;
                 return c;
               }()}),
    [](const auto& info) { return info.param.name; });

TEST(ArtifactIoErrors, RejectsGarbage) {
  std::stringstream blob("this is not an artifact at all, sorry");
  EXPECT_THROW(BoltForest::load(blob), std::runtime_error);
}

TEST(ArtifactIoErrors, RejectsTruncation) {
  const forest::Forest forest = bolt::testing::small_forest(4, 3, 113);
  const BoltForest original = BoltForest::build(forest, {});
  std::stringstream blob;
  original.save(blob);
  const std::string full = blob.str();
  for (std::size_t cut : {std::size_t{8}, std::size_t{64}, full.size() / 2,
                          full.size() - 4}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(BoltForest::load(truncated), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(ArtifactIoErrors, FileRoundTrip) {
  const forest::Forest forest = bolt::testing::small_forest(4, 3, 114);
  const BoltForest original = BoltForest::build(forest, {});
  const std::string path = ::testing::TempDir() + "/bolt_artifact.bolt";
  original.save_file(path);
  const BoltForest loaded = BoltForest::load_file(path);
  BoltEngine a(original), b(loaded);
  util::Rng rng(115);
  for (int i = 0; i < 100; ++i) {
    const auto x = bolt::testing::random_sample(rng, forest.num_features);
    EXPECT_EQ(a.predict(x), b.predict(x));
  }
}

TEST(ArtifactIoErrors, MissingFileThrows) {
  EXPECT_THROW(BoltForest::load_file("/no/such/file.bolt"),
               std::runtime_error);
}

}  // namespace
}  // namespace bolt::core
