#include <gtest/gtest.h>

#include "../helpers.h"
#include "bolt/builder.h"
#include "bolt/engine.h"
#include "bolt/explain.h"

namespace bolt::core {
namespace {

TEST(EntryProfile, ClassificationUnchanged) {
  const forest::Forest f = bolt::testing::small_forest(8, 4, 121);
  const data::Dataset inputs = bolt::testing::small_dataset(200, 122);
  const BoltForest bf = BoltForest::build(f, {});
  BoltEngine engine(bf);
  EntryProfile profile(bf.dictionary().num_entries());
  for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
    ASSERT_EQ(engine.predict_profiled(inputs.row(i), profile),
              f.predict(inputs.row(i)));
  }
  EXPECT_EQ(profile.samples(), inputs.num_rows());
}

TEST(EntryProfile, AcceptsAreSubsetOfCandidates) {
  const forest::Forest f = bolt::testing::small_forest(6, 4, 123);
  const data::Dataset inputs = bolt::testing::small_dataset(150, 124);
  const BoltForest bf = BoltForest::build(f, {});
  BoltEngine engine(bf);
  EntryProfile profile(bf.dictionary().num_entries());
  for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
    engine.predict_profiled(inputs.row(i), profile);
  }
  for (std::size_t e = 0; e < bf.dictionary().num_entries(); ++e) {
    EXPECT_LE(profile.accepts()[e], profile.candidates()[e]) << "entry " << e;
  }
  const double fpr = profile.false_positive_rate();
  EXPECT_GE(fpr, 0.0);
  EXPECT_LT(fpr, 1.0);
}

TEST(EntryProfile, TotalAcceptsBoundedByTreesTimesSamples) {
  // Each sample matches exactly one path per tree; accepted lookups can
  // merge several trees' paths, so accepts <= samples * trees.
  const forest::Forest f = bolt::testing::small_forest(6, 4, 125);
  const data::Dataset inputs = bolt::testing::small_dataset(100, 126);
  const BoltForest bf = BoltForest::build(f, {});
  BoltEngine engine(bf);
  EntryProfile profile(bf.dictionary().num_entries());
  for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
    engine.predict_profiled(inputs.row(i), profile);
  }
  std::uint64_t total = 0;
  for (auto a : profile.accepts()) total += a;
  EXPECT_GT(total, 0u);
  EXPECT_LE(total, inputs.num_rows() * f.trees.size());
}

TEST(EntryProfile, HottestOrdering) {
  EntryProfile p(4);
  p.record_accept(2);
  p.record_accept(2);
  p.record_accept(0);
  const auto hot = p.hottest(4);
  EXPECT_EQ(hot[0], 2u);
  EXPECT_EQ(hot[1], 0u);
  // Ties (entries 1, 3 at zero) break by index.
  EXPECT_EQ(hot[2], 1u);
  EXPECT_EQ(hot[3], 3u);
}

TEST(EntryProfile, SkewedWorkloadConcentratesHeat) {
  // Serving the same sample repeatedly must concentrate accepts on the
  // few entries covering that sample's paths — the §2.1 service-hot-path
  // observation.
  const forest::Forest f = bolt::testing::small_forest(6, 4, 127);
  const data::Dataset inputs = bolt::testing::small_dataset(50, 128);
  const BoltForest bf = BoltForest::build(f, {});
  BoltEngine engine(bf);
  EntryProfile profile(bf.dictionary().num_entries());
  for (int rep = 0; rep < 100; ++rep) {
    engine.predict_profiled(inputs.row(0), profile);
  }
  std::uint64_t total = 0, nonzero = 0;
  for (auto a : profile.accepts()) {
    total += a;
    nonzero += a > 0;
  }
  // One sample's paths: at most one accepted entry per tree.
  EXPECT_LE(nonzero, f.trees.size());
  EXPECT_EQ(total % 100, 0u);  // identical per repetition
}

}  // namespace
}  // namespace bolt::core
