#include "bolt/bloom.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace bolt::core {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  // The safety property: a key that was inserted is ALWAYS reported
  // possibly-present (otherwise Bolt would drop true-positive lookups).
  BloomFilter bf(1000, 10);
  util::Rng rng(1);
  std::vector<std::pair<std::uint32_t, std::uint64_t>> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.emplace_back(static_cast<std::uint32_t>(rng.below(256)), rng.next());
    bf.insert(keys.back().first, keys.back().second);
  }
  for (const auto& [id, addr] : keys) {
    ASSERT_TRUE(bf.maybe_contains(id, addr));
  }
}

TEST(BloomFilter, FalsePositiveRateNearTheory) {
  BloomFilter bf(2000, 10);
  util::Rng rng(2);
  std::set<std::uint64_t> inserted;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.next();
    inserted.insert(a);
    bf.insert(0, a);
  }
  std::size_t fp = 0, probes = 0;
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t a = rng.next();
    if (inserted.count(a)) continue;
    ++probes;
    fp += bf.maybe_contains(0, a);
  }
  const double rate = static_cast<double>(fp) / probes;
  // 10 bits/key, k=7: theoretical ~0.8%; accept anything clearly sublinear.
  EXPECT_LT(rate, 0.03);
  EXPECT_NEAR(rate, bf.estimated_fpp(), 0.02);
}

TEST(BloomFilter, MoreBitsFewerFalsePositives) {
  util::Rng rng(3);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(rng.next());

  auto measure = [&](std::size_t bits_per_key) {
    BloomFilter bf(keys.size(), bits_per_key);
    for (auto k : keys) bf.insert(1, k);
    std::size_t fp = 0;
    util::Rng probe_rng(4);
    for (int i = 0; i < 20000; ++i) {
      fp += bf.maybe_contains(1, probe_rng.next() | (1ULL << 63));
    }
    return fp;
  };
  EXPECT_LE(measure(16), measure(4));
}

TEST(BloomFilter, EmptyFilterRejectsEverything) {
  BloomFilter bf(100, 10);
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(bf.maybe_contains(0, rng.next()));
  }
  EXPECT_EQ(bf.estimated_fpp(), 0.0);
}

TEST(BloomFilter, SizingIsPowerOfTwo) {
  for (std::size_t n : {1u, 10u, 100u, 5000u}) {
    BloomFilter bf(n, 10);
    EXPECT_EQ(bf.bit_count() & (bf.bit_count() - 1), 0u);
    EXPECT_GE(bf.bit_count(), n * 10 / 2);
  }
}

TEST(BloomFilter, HashCountBounded) {
  BloomFilter small(100, 1);
  EXPECT_GE(small.num_hashes(), 1u);
  BloomFilter big(100, 64);
  EXPECT_LE(big.num_hashes(), 8u);
}

TEST(BloomFilter, EntryIdDistinguishesKeys) {
  BloomFilter bf(10, 12);
  bf.insert(1, 42);
  EXPECT_TRUE(bf.maybe_contains(1, 42));
  // A different entry id with the same address is a different key; it may
  // false-positive but overwhelmingly should not in a near-empty filter.
  int hits = 0;
  for (std::uint32_t id = 2; id < 200; ++id) hits += bf.maybe_contains(id, 42);
  EXPECT_LT(hits, 10);
}

}  // namespace
}  // namespace bolt::core
