// The amortized batch kernel's contract: `predict_batch` runs the same
// tests as per-row `predict` in a different order, so classifications must
// be bit-identical for every batch size — empty, sub-tile, exactly one
// tile, tile+1 (the ragged-tail path), and multi-tile.
#include "bolt/engine.h"

#include <gtest/gtest.h>

#include "../helpers.h"
#include "bolt/parallel.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace bolt::core {
namespace {

class BatchFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    forest_ = bolt::testing::small_forest(6, 4, 17);
    inputs_ = bolt::testing::small_dataset(200, 18);
    artifact_ =
        std::make_unique<BoltForest>(BoltForest::build(forest_, {}));
    reference_.resize(inputs_.num_rows());
    BoltEngine ref(*artifact_);
    for (std::size_t i = 0; i < inputs_.num_rows(); ++i) {
      reference_[i] = ref.predict(inputs_.row(i));
    }
  }

  // Batch sizes straddling the kTileRows = 64 tile boundary.
  static constexpr std::size_t kSizes[] = {0, 1, 63, 64, 65, 200};

  forest::Forest forest_;
  data::Dataset inputs_{0, 0};
  std::unique_ptr<BoltForest> artifact_;
  std::vector<int> reference_;
};

TEST_F(BatchFixture, AmortizedKernelBitIdenticalToPredict) {
  BoltEngine engine(*artifact_);
  const float* rows = inputs_.raw_features().data();
  const std::size_t stride = inputs_.num_features();
  for (std::size_t n : kSizes) {
    std::vector<int> out(n, -2);
    engine.predict_batch({rows, n * stride}, n, stride, out);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], reference_[i]) << "row " << i << " of batch " << n;
    }
  }
}

TEST_F(BatchFixture, NaiveLoopMatchesAmortizedKernel) {
  BoltEngine engine(*artifact_);
  const float* rows = inputs_.raw_features().data();
  const std::size_t stride = inputs_.num_features();
  const std::size_t n = inputs_.num_rows();
  std::vector<int> naive(n), amortized(n);
  engine.predict_batch_naive({rows, n * stride}, n, stride, naive);
  engine.predict_batch({rows, n * stride}, n, stride, amortized);
  EXPECT_EQ(naive, amortized);
}

TEST_F(BatchFixture, PoolParallelBatchBitIdentical) {
  PartitionedBoltEngine engine(*artifact_, {});
  util::ThreadPool pool(3);
  const float* rows = inputs_.raw_features().data();
  const std::size_t stride = inputs_.num_features();
  for (std::size_t n : kSizes) {
    std::vector<int> out(n, -2);
    engine.predict_batch({rows, n * stride}, n, stride, out, pool);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], reference_[i]) << "row " << i << " of batch " << n;
    }
  }
}

TEST_F(BatchFixture, BatchMetricsFeedTheSameFunnel) {
  util::MetricsRegistry reg;
  const util::EngineMetrics metrics = util::EngineMetrics::in(reg, "engine");
  BoltEngine engine(*artifact_);
  engine.attach_metrics(&metrics);

  const float* rows = inputs_.raw_features().data();
  const std::size_t stride = inputs_.num_features();
  const std::size_t n = 150;  // two full tiles + a ragged tail
  std::vector<int> out(n);
  engine.predict_batch({rows, n * stride}, n, stride, out);

  EXPECT_EQ(metrics.samples->value(), n);
  EXPECT_EQ(metrics.batch_rows->value(), n);
  EXPECT_EQ(metrics.candidates->value(),
            metrics.accepts->value() + metrics.rejected->value());
  EXPECT_GT(metrics.accepts->value(), 0u);
  const auto sizes = metrics.batch_size->snapshot();
  EXPECT_EQ(sizes.count, 1u);
  EXPECT_EQ(sizes.sum, static_cast<double>(n));
  // Per-phase timing histograms stay single-sample-only.
  EXPECT_EQ(metrics.scan_ns->snapshot().count, 0u);
  EXPECT_EQ(metrics.binarize_ns->snapshot().count, 0u);
}

}  // namespace
}  // namespace bolt::core
