// Randomized end-to-end property sweep: across randomly drawn forest
// shapes, datasets, clustering thresholds and table configurations, Bolt's
// classification must equal reference traversal on both in-distribution
// and adversarially out-of-distribution inputs. This is the wide-net
// complement to the targeted safety cases in test_builder.cpp.
#include <gtest/gtest.h>

#include "../helpers.h"
#include "bolt/builder.h"
#include "bolt/engine.h"
#include "bolt/parallel.h"

namespace bolt::core {
namespace {

class RandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSweep, BoltAlwaysMatchesTraversal) {
  util::Rng rng(GetParam() * 0x9e3779b9 + 17);

  // Random forest shape.
  forest::TrainConfig tc;
  tc.num_trees = 1 + rng.below(12);
  tc.max_height = 1 + rng.below(6);
  tc.max_features = rng.below(2) ? 0 : 1 + rng.below(8);
  tc.min_samples_leaf = 1 + rng.below(4);
  tc.seed = rng.next();
  const data::Dataset train = bolt::testing::small_dataset(
      300 + rng.below(500), rng.next());
  const forest::Forest forest = forest::train_random_forest(train, tc);

  // Random Bolt configuration.
  BoltConfig cfg;
  cfg.cluster.threshold = rng.below(20);
  cfg.cluster.max_table_bits = 8 + rng.below(12);
  cfg.table.strategy = rng.below(2) ? TableStrategy::kDisplacement
                                    : TableStrategy::kSeedSearch;
  cfg.use_bloom = rng.below(2) == 1;

  const BoltForest bf = BoltForest::build(forest, cfg);
  BoltEngine engine(bf);

  // In-distribution inputs.
  for (std::size_t i = 0; i < 80; ++i) {
    ASSERT_EQ(engine.predict(train.row(i)), forest.predict(train.row(i)))
        << "in-distribution sample " << i;
  }
  // Out-of-distribution inputs, including extreme values and exact
  // threshold hits.
  for (int i = 0; i < 80; ++i) {
    std::vector<float> x(forest.num_features);
    for (auto& v : x) {
      switch (rng.below(4)) {
        case 0:
          v = static_cast<float>(rng.uniform(-1e6, 1e6));
          break;
        case 1:
          v = 0.0f;
          break;
        case 2: {
          // Hit a split threshold exactly.
          const auto& t = forest.trees[rng.below(forest.trees.size())];
          const auto& n = t.nodes()[rng.below(t.nodes().size())];
          v = n.is_leaf() ? 1.0f : n.threshold;
          break;
        }
        default:
          v = static_cast<float>(rng.normal(0.0, 100.0));
      }
    }
    ASSERT_EQ(engine.predict(x), forest.predict(x)) << "OOD sample " << i;
  }

  // A random partitioning must agree too.
  const PartitionPlan plan{1 + rng.below(5), 1 + rng.below(5)};
  PartitionedBoltEngine partitioned(bf, plan);
  for (std::size_t i = 0; i < 40; ++i) {
    ASSERT_EQ(partitioned.predict(train.row(i)), forest.predict(train.row(i)))
        << "partitioned (" << plan.dict_parts << "x" << plan.table_parts
        << ") sample " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSweep, ::testing::Range<std::uint64_t>(1, 21),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace bolt::core
