#include "bolt/dictionary.h"

#include <gtest/gtest.h>

#include "../helpers.h"
#include "bolt/paths.h"

namespace bolt::core {
namespace {

struct Built {
  forest::Forest forest;
  forest::PredicateSpace space;
  std::vector<Path> paths;
  std::vector<Cluster> clusters;
  Dictionary dict;

  explicit Built(std::size_t threshold = 4, std::size_t trees = 6,
                 std::size_t height = 4)
      : forest(bolt::testing::small_forest(trees, height)),
        space(forest),
        paths(enumerate_paths(forest, space)),
        clusters(greedy_cluster(paths, {threshold, 20})),
        dict(clusters, space.size()) {}
};

TEST(Dictionary, OneEntryPerCluster) {
  Built b;
  EXPECT_EQ(b.dict.num_entries(), b.clusters.size());
  EXPECT_EQ(b.dict.num_predicates(), b.space.size());
}

TEST(Dictionary, MatchesIffCommonItemsSatisfied) {
  Built b;
  util::Rng rng(17);
  for (int iter = 0; iter < 100; ++iter) {
    const auto x = bolt::testing::random_sample(rng, b.forest.num_features);
    const auto bits = b.space.binarize(x);
    for (std::size_t e = 0; e < b.dict.num_entries(); ++e) {
      bool expect = true;
      for (PathItem item : b.clusters[e].common_items) {
        if (bits.get(item_pred(item)) != item_value(item)) expect = false;
      }
      ASSERT_EQ(b.dict.matches(e, bits), expect) << "entry " << e;
    }
  }
}

TEST(Dictionary, PextAddressEqualsPositionOracle) {
  Built b;
  util::Rng rng(18);
  for (int iter = 0; iter < 200; ++iter) {
    const auto x = bolt::testing::random_sample(rng, b.forest.num_features);
    const auto bits = b.space.binarize(x);
    for (std::size_t e = 0; e < b.dict.num_entries(); ++e) {
      ASSERT_EQ(b.dict.address(e, bits), b.dict.address_by_positions(e, bits));
    }
  }
}

TEST(Dictionary, AddressBitsMatchClusterWidth) {
  Built b;
  for (std::size_t e = 0; e < b.dict.num_entries(); ++e) {
    EXPECT_EQ(b.dict.address_bits(e), b.clusters[e].uncommon_preds.size());
    const auto positions = b.dict.address_positions(e);
    ASSERT_EQ(positions.size(), b.clusters[e].uncommon_preds.size());
    for (std::size_t k = 0; k < positions.size(); ++k) {
      EXPECT_EQ(positions[k], b.clusters[e].uncommon_preds[k]);
    }
  }
}

TEST(Dictionary, CommonItemsExposedForExplanation) {
  Built b;
  for (std::size_t e = 0; e < b.dict.num_entries(); ++e) {
    const auto items = b.dict.common_items(e);
    ASSERT_EQ(items.size(), b.clusters[e].common_items.size());
    for (std::size_t k = 0; k < items.size(); ++k) {
      EXPECT_EQ(items[k], b.clusters[e].common_items[k]);
    }
  }
}

TEST(Dictionary, SparseWordsCoverExactlyCommonPredicates) {
  Built b;
  for (std::size_t e = 0; e < b.dict.num_entries(); ++e) {
    std::size_t mask_bits = 0;
    for (const auto& sw : b.dict.sparse_words(e)) {
      mask_bits += static_cast<std::size_t>(std::popcount(sw.mask));
      // expect must be a subset of mask.
      EXPECT_EQ(sw.expect & ~sw.mask, 0u);
    }
    EXPECT_EQ(mask_bits, b.clusters[e].common_items.size());
  }
}

TEST(Dictionary, EmptyCommonSetMatchesEverything) {
  // A cluster with no common items yields an entry that matches any input.
  std::vector<Path> paths(2);
  paths[0].items = {make_item(0, true)};
  paths[0].votes = {1.0f, 0.0f};
  paths[1].items = {make_item(1, false)};
  paths[1].votes = {0.0f, 1.0f};
  Cluster c;
  c.paths = {0, 1};
  derive_structure(paths, c);
  ASSERT_TRUE(c.common_items.empty());
  Dictionary dict(std::span(&c, 1), 4);
  util::BitVector bits(4);
  EXPECT_TRUE(dict.matches(0, bits));
  bits.set(0);
  bits.set(3);
  EXPECT_TRUE(dict.matches(0, bits));
}

TEST(Dictionary, MemoryScalesWithEntries) {
  Built small(4, 3, 3);
  Built large(4, 12, 5);
  EXPECT_GT(large.dict.memory_bytes(), small.dict.memory_bytes());
  EXPECT_GT(small.dict.memory_bytes(), 0u);
}

}  // namespace
}  // namespace bolt::core
