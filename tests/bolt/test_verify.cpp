#include "bolt/verify.h"

#include <gtest/gtest.h>

#include "../helpers.h"
#include "bolt/engine.h"

namespace bolt::core {
namespace {

TEST(FeasibleClasses, CountsStaircases) {
  // tiny_forest: feature 0 has 1 threshold, feature 1 has 2 -> 2 * 3 = 6.
  EXPECT_EQ(feasible_classes(bolt::testing::tiny_forest()), 6u);
}

TEST(FeasibleClasses, SaturatesInsteadOfOverflowing) {
  data::Dataset ds = bolt::testing::small_dataset(800, 7);
  forest::TrainConfig tc;
  tc.num_trees = 20;
  tc.max_height = 8;
  tc.max_thresholds = 0;
  const forest::Forest big = forest::train_random_forest(ds, tc);
  EXPECT_GT(feasible_classes(big), 1ull << 40);  // huge, possibly saturated
}

TEST(VerifyExhaustive, ProvesTinyForestForAllInputs) {
  const forest::Forest f = bolt::testing::tiny_forest();
  const BoltForest bf = BoltForest::build(f, {});
  const auto report = verify_exhaustive(f, bf);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->exhaustive);
  EXPECT_EQ(report->checked, 6u);
  EXPECT_EQ(report->mismatches, 0u);
  EXPECT_TRUE(report->ok());
}

TEST(VerifyExhaustive, ProvesTrainedForestsAcrossConfigs) {
  // Small trained forests have modest class counts; prove them fully for
  // several Bolt configurations.
  const forest::Forest f = bolt::testing::small_forest(4, 3, 41);
  ASSERT_LE(feasible_classes(f), 1ull << 22);
  for (std::size_t threshold : {0u, 2u, 8u}) {
    BoltConfig cfg;
    cfg.cluster.threshold = threshold;
    const BoltForest bf = BoltForest::build(f, cfg);
    const auto report = verify_exhaustive(f, bf);
    ASSERT_TRUE(report.has_value()) << "threshold " << threshold;
    EXPECT_EQ(report->mismatches, 0u) << "threshold " << threshold;
    EXPECT_GT(report->checked, 0u);
  }
}

TEST(VerifyExhaustive, RefusesHugeSpaces) {
  data::Dataset ds = bolt::testing::small_dataset(800, 8);
  forest::TrainConfig tc;
  tc.num_trees = 15;
  tc.max_height = 6;
  const forest::Forest big = forest::train_random_forest(ds, tc);
  if (feasible_classes(big) > (1ull << 22)) {
    EXPECT_FALSE(verify_exhaustive(big, BoltForest::build(big, {})).has_value());
  }
}

TEST(VerifyExhaustive, FindsInjectedCorruption) {
  // Corrupt the artifact's result pool indirectly: verify against a
  // DIFFERENT forest — the verifier must produce a counterexample.
  const forest::Forest f1 = bolt::testing::small_forest(4, 3, 42);
  forest::Forest f2 = f1;
  // Flip one leaf's class.
  for (auto& n : f2.trees[0].nodes()) {
    if (n.is_leaf()) {
      n.leaf_class = (n.leaf_class + 1) % static_cast<int>(f2.num_classes);
      break;
    }
  }
  const BoltForest bf = BoltForest::build(f2, {});
  const auto report = verify_exhaustive(f1, bf);
  ASSERT_TRUE(report.has_value());
  EXPECT_GT(report->mismatches, 0u);
  ASSERT_TRUE(report->counterexample.has_value());
  // The counterexample must actually demonstrate a vote disagreement (the
  // argmax may still coincide when the flipped leaf is not decisive).
  BoltEngine engine(bf);
  std::vector<double> got(f1.num_classes);
  engine.vote(*report->counterexample, got);
  const auto want = f1.vote(*report->counterexample);
  bool differs = false;
  for (std::size_t c = 0; c < got.size(); ++c) {
    if (std::abs(got[c] - want[c]) > 1e-6) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(VerifySampled, CleanOnCorrectArtifact) {
  const forest::Forest f = bolt::testing::small_forest(8, 4, 43);
  const BoltForest bf = BoltForest::build(f, {});
  const auto report = verify_sampled(f, bf, 3000);
  EXPECT_EQ(report.mismatches, 0u);
  EXPECT_EQ(report.checked, 3000u);
  EXPECT_FALSE(report.exhaustive);
}

TEST(Verify, PicksExhaustiveWhenTractable) {
  const forest::Forest f = bolt::testing::tiny_forest();
  const auto report = verify(f, BoltForest::build(f, {}));
  EXPECT_TRUE(report.exhaustive);
  EXPECT_TRUE(report.ok());
}

}  // namespace
}  // namespace bolt::core
