#include "bolt/planner.h"

#include <gtest/gtest.h>

#include "../helpers.h"
#include "bolt/engine.h"

namespace bolt::core {
namespace {

TEST(Planner, ReturnsFeasiblePlanAndArtifact) {
  const forest::Forest forest = bolt::testing::small_forest(8, 4, 61);
  const data::Dataset calib = bolt::testing::small_dataset(200, 62);
  PlannerConfig cfg;
  cfg.thresholds = {1, 4, 8};
  cfg.cores = 1;
  cfg.max_calibration_samples = 32;
  cfg.repetitions = 1;
  const PlanResult plan_result = plan(forest, calib, cfg);

  EXPECT_FALSE(plan_result.candidates.empty());
  ASSERT_NE(plan_result.artifact, nullptr);
  const PlanCandidate& best = plan_result.best_candidate();
  EXPECT_GT(best.avg_response_us, 0.0);
  // The selected artifact's threshold matches the winning candidate.
  EXPECT_EQ(plan_result.artifact->config().cluster.threshold, best.threshold);
}

TEST(Planner, BestIsMinimalAmongFeasible) {
  const forest::Forest forest = bolt::testing::small_forest(6, 4, 63);
  const data::Dataset calib = bolt::testing::small_dataset(150, 64);
  PlannerConfig cfg;
  cfg.thresholds = {1, 2, 4, 8};
  cfg.repetitions = 1;
  const PlanResult r = plan(forest, calib, cfg);
  const auto& best = r.best_candidate();
  for (const PlanCandidate& c : r.candidates) {
    if (c.fits_cache == best.fits_cache) {
      EXPECT_GE(c.avg_response_us * 1.0001, best.avg_response_us * 0.0);
    }
  }
  // At least: best is no slower than every same-feasibility candidate.
  for (const PlanCandidate& c : r.candidates) {
    if (c.fits_cache == best.fits_cache) {
      EXPECT_LE(best.avg_response_us, c.avg_response_us + 1e-9);
    }
  }
}

TEST(Planner, MultiCoreExploresPartitionShapes) {
  const forest::Forest forest = bolt::testing::small_forest(6, 4, 65);
  const data::Dataset calib = bolt::testing::small_dataset(100, 66);
  PlannerConfig cfg;
  cfg.thresholds = {4};
  cfg.cores = 4;
  cfg.repetitions = 1;
  const PlanResult r = plan(forest, calib, cfg);
  // Shapes: (1,1), (1,4), (2,2), (4,1) => 4 candidates.
  EXPECT_EQ(r.candidates.size(), 4u);
  bool saw_multi = false;
  for (const auto& c : r.candidates) {
    if (c.partitions.cores() == 4) saw_multi = true;
  }
  EXPECT_TRUE(saw_multi);
}

TEST(Planner, CacheBudgetMarksCandidates) {
  const forest::Forest forest = bolt::testing::small_forest(10, 5, 67);
  const data::Dataset calib = bolt::testing::small_dataset(100, 68);
  PlannerConfig cfg;
  cfg.thresholds = {2};
  cfg.repetitions = 1;
  cfg.cache_bytes_per_core = 1;  // nothing fits
  const PlanResult r = plan(forest, calib, cfg);
  for (const auto& c : r.candidates) EXPECT_FALSE(c.fits_cache);

  cfg.cache_bytes_per_core = 1ull << 30;  // everything fits
  const PlanResult r2 = plan(forest, calib, cfg);
  for (const auto& c : r2.candidates) EXPECT_TRUE(c.fits_cache);
}

TEST(Planner, SkipsInfeasibleThresholds) {
  const forest::Forest forest = bolt::testing::small_forest(8, 5, 69);
  const data::Dataset calib = bolt::testing::small_dataset(100, 70);
  PlannerConfig cfg;
  cfg.thresholds = {2, 64};  // 64 may blow the table cap
  cfg.base.table.max_slots = 1 << 14;
  cfg.repetitions = 1;
  const PlanResult r = plan(forest, calib, cfg);  // must not throw
  ASSERT_NE(r.artifact, nullptr);
}

TEST(Planner, SelectedArtifactClassifiesCorrectly) {
  const forest::Forest forest = bolt::testing::small_forest(6, 4, 71);
  const data::Dataset calib = bolt::testing::small_dataset(200, 72);
  PlannerConfig cfg;
  cfg.thresholds = {1, 4};
  cfg.repetitions = 1;
  const PlanResult r = plan(forest, calib, cfg);
  BoltEngine engine(*r.artifact);
  for (std::size_t i = 0; i < calib.num_rows(); ++i) {
    ASSERT_EQ(engine.predict(calib.row(i)), forest.predict(calib.row(i)));
  }
}

TEST(Diagnose, FlagsCacheCapacity) {
  const forest::Forest forest = bolt::testing::small_forest(6, 4, 73);
  const BoltForest bf = BoltForest::build(forest, {});
  EXPECT_EQ(diagnose(bf, 1), Bottleneck::kCacheCapacity);
  EXPECT_NE(diagnose(bf, 1ull << 30), Bottleneck::kCacheCapacity);
}

}  // namespace
}  // namespace bolt::core
