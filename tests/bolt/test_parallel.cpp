#include "bolt/parallel.h"

#include <gtest/gtest.h>

#include "../helpers.h"
#include "bolt/engine.h"

namespace bolt::core {
namespace {

struct PlanCase {
  const char* name;
  std::size_t dict_parts;
  std::size_t table_parts;
};

class PartitionEquivalence : public ::testing::TestWithParam<PlanCase> {};

TEST_P(PartitionEquivalence, MatchesSingleCoreEngine) {
  // Figure 4 / §4.5: any (dictionary x table) partitioning must yield the
  // same classification — discarded lookups are covered by the core owning
  // the right table partition.
  const auto p = GetParam();
  const forest::Forest forest = bolt::testing::small_forest(8, 4, 51);
  const data::Dataset inputs = bolt::testing::small_dataset(300, 52);
  const BoltForest bf = BoltForest::build(forest, {});
  BoltEngine reference(bf);
  PartitionedBoltEngine partitioned(bf, {p.dict_parts, p.table_parts});
  for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
    ASSERT_EQ(partitioned.predict(inputs.row(i)),
              reference.predict(inputs.row(i)))
        << "sample " << i;
  }
}

TEST_P(PartitionEquivalence, ThreadedMatchesSequential) {
  const auto p = GetParam();
  const forest::Forest forest = bolt::testing::small_forest(6, 4, 53);
  const data::Dataset inputs = bolt::testing::small_dataset(100, 54);
  const BoltForest bf = BoltForest::build(forest, {});
  PartitionedBoltEngine a(bf, {p.dict_parts, p.table_parts});
  PartitionedBoltEngine b(bf, {p.dict_parts, p.table_parts});
  util::ThreadPool pool(4);
  for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
    ASSERT_EQ(b.predict_threaded(inputs.row(i), pool),
              a.predict(inputs.row(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionEquivalence,
    ::testing::Values(PlanCase{"d1t1", 1, 1}, PlanCase{"d2t1", 2, 1},
                      PlanCase{"d1t2", 1, 2}, PlanCase{"d2t2", 2, 2},
                      PlanCase{"d4t1", 4, 1}, PlanCase{"d1t4", 1, 4},
                      PlanCase{"d4t4", 4, 4}, PlanCase{"d8t2", 8, 2},
                      PlanCase{"d16t1", 16, 1}),
    [](const auto& info) { return info.param.name; });

TEST(PartitionedEngine, MetricsCountDiscardsAndCoreWork) {
  const forest::Forest forest = bolt::testing::small_forest(6, 4, 57);
  const data::Dataset inputs = bolt::testing::small_dataset(50, 58);
  const BoltForest bf = BoltForest::build(forest, {});

  util::MetricsRegistry registry;
  const util::PartitionMetrics pm =
      util::PartitionMetrics::in(registry, "partitioned");

  // Table partitioning routes lookups across cores: with t > 1 a core must
  // discard the accepted lookups another core owns (Figure 4), and each
  // threaded predict records one core_work timing per core.
  PartitionedBoltEngine engine(bf, {2, 2});
  engine.attach_metrics(&pm);
  util::ThreadPool pool(4);
  for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
    engine.predict_threaded(inputs.row(i), pool);
  }
  EXPECT_EQ(pm.core_work_ns->snapshot().count,
            inputs.num_rows() * engine.plan().cores());

  // With t=2, every address formed in a dictionary partition is routed by
  // both of its cores and owned by one, so a run this size must discard
  // lookups; detaching stops the recording.
  EXPECT_GT(pm.discarded_lookups->value(), 0u);
  const std::uint64_t before = pm.discarded_lookups->value();
  engine.attach_metrics(nullptr);
  engine.predict(inputs.row(0));
  EXPECT_EQ(pm.discarded_lookups->value(), before);
}

TEST(PartitionedEngine, EachAcceptedLookupHandledByExactlyOneCore) {
  const forest::Forest forest = bolt::testing::small_forest(6, 4, 55);
  const data::Dataset inputs = bolt::testing::small_dataset(50, 56);
  const BoltForest bf = BoltForest::build(forest, {});
  const PartitionPlan plan{2, 2};
  PartitionedBoltEngine engine(bf, plan);

  util::BitVector bits(bf.space().size());
  std::vector<double> total(forest.num_classes, 0.0);
  for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
    bf.space().binarize(inputs.row(i), bits);
    std::fill(total.begin(), total.end(), 0.0);
    for (std::size_t d = 0; d < plan.dict_parts; ++d) {
      for (std::size_t t = 0; t < plan.table_parts; ++t) {
        engine.core_work(d, t, bits, total);
      }
    }
    const auto expected = forest.vote(inputs.row(i));
    for (std::size_t c = 0; c < total.size(); ++c) {
      // Sum over all cores equals the forest vote: nothing double-counted
      // (the lookup appears in exactly one table partition), nothing lost.
      ASSERT_NEAR(total[c], expected[c], 1e-6);
    }
  }
}

TEST(PartitionedEngine, TablePartitionBytesShrinkPerCore) {
  const forest::Forest forest = bolt::testing::small_forest(10, 5, 57);
  const BoltForest bf = BoltForest::build(forest, {});
  PartitionedBoltEngine one(bf, {1, 1});
  PartitionedBoltEngine four(bf, {1, 4});
  EXPECT_LT(four.table_partition_bytes(0), one.table_partition_bytes(0));
}

TEST(PartitionedEngine, MeasureResponseIsPositiveAndFinite) {
  const forest::Forest forest = bolt::testing::small_forest(6, 4, 58);
  const data::Dataset inputs = bolt::testing::small_dataset(10, 59);
  const BoltForest bf = BoltForest::build(forest, {});
  PartitionedBoltEngine engine(bf, {2, 2});
  for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
    const double us = engine.measure_response_us(inputs.row(i));
    EXPECT_GT(us, 0.0);
    EXPECT_LT(us, 1e6);
  }
}

TEST(PartitionedEngine, MorePartitionsThanEntriesStillCorrect) {
  // Degenerate split: more dictionary partitions than entries.
  forest::Forest f;
  f.num_features = 2;
  f.num_classes = 3;
  f.trees.push_back(bolt::testing::tiny_tree());
  f.weights = {1.0};
  const BoltForest bf = BoltForest::build(f, {});
  PartitionedBoltEngine engine(bf, {16, 4});
  util::Rng rng(60);
  for (int i = 0; i < 50; ++i) {
    const auto x = bolt::testing::random_sample(rng, 2);
    EXPECT_EQ(engine.predict(x), f.predict(x));
  }
}

}  // namespace
}  // namespace bolt::core
