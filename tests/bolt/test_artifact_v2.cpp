// The v2 flat artifact (src/bolt/artifact/): pack -> mmap round trips
// must be bit-identical to the heap-built engine across every compiled
// kernel, batch size, and both engines; mapped forests must borrow the
// mapping with zero pool copies; and the ModelHandle hot-swap substrate
// must keep old models alive while engines still hold them.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "../helpers.h"
#include "bolt/artifact/handle.h"
#include "bolt/artifact/mapped.h"
#include "bolt/artifact/pack.h"
#include "bolt/builder.h"
#include "bolt/engine.h"
#include "bolt/kernels/kernels.h"
#include "bolt/parallel.h"

namespace bolt::core {
namespace {

std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "/bolt_v2_" + tag + "_" +
         std::to_string(::getpid());
}

/// Restores normal kernel dispatch when a forcing test scope ends.
struct KernelGuard {
  ~KernelGuard() { kernels::force_kernel_for_testing(nullptr); }
};

struct V2Case {
  const char* name;
  BoltConfig cfg;
};

class ArtifactV2 : public ::testing::TestWithParam<V2Case> {};

TEST_P(ArtifactV2, PackRoundTripBitIdentical) {
  const forest::Forest forest = bolt::testing::small_forest(8, 5, 211);
  const data::Dataset inputs = bolt::testing::small_dataset(300, 212);
  const BoltForest built = BoltForest::build(forest, GetParam().cfg);

  const std::string path = temp_path(GetParam().name);
  artifact::write_v2_file(built, path);
  artifact::MappedArtifact mapped = artifact::MappedArtifact::open(path);
  const BoltForest loaded = mapped.build_forest();

  EXPECT_TRUE(loaded.mapped());
  EXPECT_FALSE(built.mapped());
  EXPECT_EQ(loaded.num_classes(), built.num_classes());
  EXPECT_EQ(loaded.num_features(), built.num_features());
  EXPECT_EQ(loaded.dictionary().num_entries(),
            built.dictionary().num_entries());
  EXPECT_EQ(loaded.table().num_slots(), built.table().num_slots());
  EXPECT_EQ(loaded.results().size(), built.results().size());
  EXPECT_EQ(loaded.results().packed_available(),
            built.results().packed_available());
  EXPECT_EQ(loaded.bloom() != nullptr, built.bloom() != nullptr);
  EXPECT_EQ(loaded.stats().table_entries, built.stats().table_entries);
  EXPECT_EQ(loaded.config().cluster.threshold,
            built.config().cluster.threshold);
  EXPECT_EQ(loaded.config().use_bloom, built.config().use_bloom);

  // Votes bit-identical per row under every compiled kernel this CPU runs.
  KernelGuard guard;
  for (const kernels::KernelOps* k : kernels::available_kernels()) {
    kernels::force_kernel_for_testing(k);
    BoltEngine a(built);
    BoltEngine b(loaded);
    std::vector<double> va(forest.num_classes), vb(forest.num_classes);
    for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
      a.vote(inputs.row(i), va);
      b.vote(inputs.row(i), vb);
      for (std::size_t c = 0; c < va.size(); ++c) {
        ASSERT_EQ(va[c], vb[c]) << k->name << " sample " << i;
      }
    }

    // Batched path, including tile-boundary sizes.
    const std::size_t stride = inputs.num_features();
    for (std::size_t batch : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                              std::size_t{65}, std::size_t{200}}) {
      const std::size_t n = std::min(batch, inputs.num_rows());
      std::vector<int> oa(n), ob(n);
      std::span<const float> rows{inputs.raw_features().data(), n * stride};
      a.predict_batch(rows, n, stride, oa);
      b.predict_batch(rows, n, stride, ob);
      ASSERT_EQ(oa, ob) << k->name << " batch " << batch;
    }
  }
  kernels::force_kernel_for_testing(nullptr);

  // Partitioned engine over the mapped forest agrees with the heap one.
  PartitionPlan plan;
  plan.dict_parts = 2;
  plan.table_parts = 2;
  PartitionedBoltEngine pa(built, plan);
  PartitionedBoltEngine pb(loaded, plan);
  for (std::size_t i = 0; i < 50; ++i) {
    ASSERT_EQ(pa.predict(inputs.row(i)), pb.predict(inputs.row(i)));
  }

  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ArtifactV2,
    ::testing::Values(
        V2Case{"default", {}},
        V2Case{"bloom",
               [] {
                 BoltConfig c;
                 c.use_bloom = true;
                 return c;
               }()},
        V2Case{"byte_seed_search",
               [] {
                 BoltConfig c;
                 c.table.strategy = TableStrategy::kSeedSearch;
                 c.table.id_check = IdCheck::kByte;
                 return c;
               }()}),
    [](const ::testing::TestParamInfo<V2Case>& p) {
      return std::string(p.param.name);
    });

TEST(ArtifactV2Storage, MappedForestIsZeroCopy) {
  const BoltForest built =
      BoltForest::build(bolt::testing::small_forest(6, 4, 31), {});
  EXPECT_GT(built.owned_bytes(), 0u);

  const std::string path = temp_path("zerocopy");
  artifact::write_v2_file(built, path);
  artifact::MappedArtifact mapped = artifact::MappedArtifact::open(path);
  const BoltForest loaded = mapped.build_forest();

  // The zero-copy contract: no pool bytes on the heap, and the pools
  // point INTO the mapped sections (pointer identity, not just equality).
  EXPECT_TRUE(loaded.mapped());
  EXPECT_EQ(loaded.owned_bytes(), 0u);
  EXPECT_EQ(loaded.dictionary().pools().words.data(),
            mapped.view<Dictionary::SparseWord>(
                      artifact::SectionKind::kDictWords)
                .data());
  EXPECT_EQ(loaded.table().pools().result_idx.data(),
            mapped.view<std::uint32_t>(artifact::SectionKind::kTableResultIdx)
                .data());
  EXPECT_EQ(loaded.results().raw().data(),
            mapped.view<float>(artifact::SectionKind::kResultPool).data());
  EXPECT_EQ(loaded.scan_layout().mask(),
            mapped.view<std::uint64_t>(artifact::SectionKind::kLayoutMask)
                .data());
  EXPECT_EQ(loaded.space().pools().predicates.data(),
            mapped.view<bolt::forest::Predicate>(
                      artifact::SectionKind::kPredicates)
                .data());
  EXPECT_EQ(loaded.space().pools().soa_thresholds.data(),
            mapped.view<float>(artifact::SectionKind::kPredSoaThresholds)
                .data());

  // Copies of a mapped forest share the mapping and stay zero-copy.
  const BoltForest copy = loaded;
  EXPECT_TRUE(copy.mapped());
  EXPECT_EQ(copy.owned_bytes(), 0u);
  EXPECT_EQ(copy.dictionary().pools().words.data(),
            loaded.dictionary().pools().words.data());

  std::remove(path.c_str());
}

TEST(ArtifactV2Storage, ForestOutlivesMappedArtifactAndFile) {
  const BoltForest built =
      BoltForest::build(bolt::testing::small_forest(6, 4, 32), {});
  const std::string path = temp_path("lifetime");
  artifact::write_v2_file(built, path);

  BoltEngine reference(built);
  const data::Dataset inputs = bolt::testing::small_dataset(50, 33);

  std::vector<int> expected;
  for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
    expected.push_back(reference.predict(inputs.row(i)));
  }

  // Open, build, then destroy the MappedArtifact and unlink the file: the
  // forest's keepalive must hold the mapping (POSIX keeps the inode while
  // mapped).
  BoltForest loaded = [&] {
    artifact::MappedArtifact mapped = artifact::MappedArtifact::open(path);
    return mapped.build_forest();
  }();
  std::remove(path.c_str());

  BoltEngine engine(loaded);
  for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
    ASSERT_EQ(engine.predict(inputs.row(i)), expected[i]);
  }
}

TEST(ArtifactV2Storage, TrustedOpenMatchesValidated) {
  // The trusted tier (no CRC pass, no O(n) structural scans — see the
  // contract on artifact::OpenOptions) must produce a bit-identical
  // forest on a pristine pack-verified file, stay zero-copy, and still
  // reject files that fail the always-on O(1) checks.
  const BoltForest built =
      BoltForest::build(bolt::testing::small_forest(8, 5, 36), {});
  const std::string path = temp_path("trusted");
  artifact::write_v2_file(built, path);
  const data::Dataset inputs = bolt::testing::small_dataset(100, 37);

  artifact::OpenOptions trusted;
  trusted.verify_checksums = false;
  trusted.validate_structure = false;
  const BoltForest validated =
      artifact::MappedArtifact::open(path).build_forest();
  const BoltForest fast =
      artifact::MappedArtifact::open(path, trusted).build_forest();
  EXPECT_EQ(fast.owned_bytes(), 0u);

  BoltEngine ev(validated);
  BoltEngine ef(fast);
  for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
    ASSERT_EQ(ef.predict(inputs.row(i)), ev.predict(inputs.row(i)));
  }

  // The O(1) tier still runs under trusted open: truncation and a bad
  // header are rejected before any view forms.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> image((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  const std::string cut = temp_path("trusted_cut");
  std::ofstream(cut, std::ios::binary)
      .write(image.data(), static_cast<std::streamsize>(image.size() / 2));
  EXPECT_THROW(artifact::MappedArtifact::open(cut, trusted),
               std::runtime_error);
  std::remove(cut.c_str());
  std::remove(path.c_str());
}

TEST(ArtifactV2Storage, PackedResultsRoundTrip) {
  // A small plain forest packs votes into u64 fields; the packed section
  // must survive the round trip (it is the engine's single-add path).
  const BoltForest built =
      BoltForest::build(bolt::testing::small_forest(4, 3, 34), {});
  ASSERT_TRUE(built.results().packed_available());

  const std::string path = temp_path("packed");
  artifact::write_v2_file(built, path);
  const BoltForest loaded =
      artifact::MappedArtifact::open(path).build_forest();
  EXPECT_TRUE(loaded.results().packed_available());
  EXPECT_EQ(loaded.results().packed_field_bits(),
            built.results().packed_field_bits());
  std::remove(path.c_str());
}

TEST(ArtifactV2Handle, DispatchesOnMagicAndReloads) {
  const BoltForest built =
      BoltForest::build(bolt::testing::small_forest(6, 4, 35), {});
  const std::string v1_path = temp_path("handle_v1");
  const std::string v2_path = temp_path("handle_v2");
  built.save_file(v1_path);
  artifact::write_v2_file(built, v2_path);

  EXPECT_EQ(artifact::sniff_artifact_version(v1_path), 1u);
  EXPECT_EQ(artifact::sniff_artifact_version(v2_path), 2u);

  artifact::ModelHandle handle(v1_path);
  EXPECT_EQ(handle.artifact_version(), 1u);
  EXPECT_EQ(handle.generation(), 1u);
  EXPECT_FALSE(handle.current()->mapped());

  // Engines built before a reload keep the old model alive and correct.
  const data::Dataset inputs = bolt::testing::small_dataset(50, 36);
  BoltEngine old_engine(handle.current());
  std::vector<int> expected;
  for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
    expected.push_back(old_engine.predict(inputs.row(i)));
  }

  handle.reload(v2_path);
  EXPECT_EQ(handle.artifact_version(), 2u);
  EXPECT_EQ(handle.generation(), 2u);
  EXPECT_EQ(handle.path(), v2_path);
  EXPECT_TRUE(handle.current()->mapped());

  BoltEngine new_engine(handle.current());
  for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
    ASSERT_EQ(old_engine.predict(inputs.row(i)), expected[i]);
    ASSERT_EQ(new_engine.predict(inputs.row(i)), expected[i]);
  }

  // Same-path reload bumps the generation (picks up a rewritten file).
  handle.reload();
  EXPECT_EQ(handle.generation(), 3u);

  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
}

TEST(ArtifactV2Handle, FailedReloadKeepsCurrentModel) {
  const BoltForest built =
      BoltForest::build(bolt::testing::small_forest(6, 4, 37), {});
  const std::string path = temp_path("handle_fail");
  artifact::write_v2_file(built, path);

  artifact::ModelHandle handle(path);
  const auto before = handle.current();

  EXPECT_THROW(handle.reload(temp_path("does_not_exist")),
               std::runtime_error);
  EXPECT_EQ(handle.current(), before);
  EXPECT_EQ(handle.generation(), 1u);
  EXPECT_EQ(handle.path(), path);

  // Corrupt the file in place: a same-path reload must fail and keep
  // serving the old model.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    f.put('\xff');
  }
  EXPECT_THROW(handle.reload(), std::runtime_error);
  EXPECT_EQ(handle.current(), before);
  EXPECT_EQ(handle.generation(), 1u);

  std::remove(path.c_str());
}

TEST(ArtifactV2Reject, TruncationAndGarbage) {
  const BoltForest built =
      BoltForest::build(bolt::testing::small_forest(6, 4, 38), {});
  const std::vector<std::uint8_t> image = artifact::pack_v2(built);
  const std::string path = temp_path("reject");

  auto write_bytes = [&](const std::uint8_t* p, std::size_t n) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(p), static_cast<long>(n));
  };

  // Every truncation point must be rejected (file_size check + bounds).
  for (std::size_t len :
       {std::size_t{0}, std::size_t{17}, std::size_t{63}, sizeof(artifact::FileHeader),
        image.size() / 2, image.size() - 1}) {
    write_bytes(image.data(), len);
    EXPECT_THROW(artifact::MappedArtifact::open(path), std::runtime_error)
        << "truncated to " << len;
  }

  // Garbage of plausible size.
  std::vector<std::uint8_t> garbage(4096, 0xa5);
  write_bytes(garbage.data(), garbage.size());
  EXPECT_THROW(artifact::MappedArtifact::open(path), std::runtime_error);

  std::remove(path.c_str());
}

}  // namespace
}  // namespace bolt::core
