#include "bolt/explain.h"

#include <gtest/gtest.h>

#include "../helpers.h"
#include "bolt/builder.h"
#include "bolt/engine.h"

namespace bolt::core {
namespace {

TEST(Explanation, TopKOrdersByScore) {
  Explanation e(5);
  e.add_feature(0, 1.0);
  e.add_feature(3, 5.0);
  e.add_feature(4, 2.0);
  const auto top = e.top_k(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 3u);
  EXPECT_EQ(top[1], 4u);
}

TEST(Explanation, TopKTiesBreakByIndex) {
  Explanation e(4);
  e.add_feature(2, 1.0);
  e.add_feature(1, 1.0);
  const auto top = e.top_k(4);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 2u);
}

TEST(Explanation, ClearResets) {
  Explanation e(3);
  e.add_feature(1, 2.0);
  e.clear();
  for (double s : e.scores()) EXPECT_EQ(s, 0.0);
}

TEST(PredictExplained, ClassificationUnchanged) {
  const forest::Forest forest = bolt::testing::small_forest(8, 4, 81);
  const data::Dataset inputs = bolt::testing::small_dataset(200, 82);
  const BoltForest bf = BoltForest::build(forest, {});
  BoltEngine engine(bf);
  Explanation e(forest.num_features);
  for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
    e.clear();
    ASSERT_EQ(engine.predict_explained(inputs.row(i), e),
              forest.predict(inputs.row(i)));
  }
}

TEST(PredictExplained, SalienceCoversUsedFeaturesOnly) {
  const forest::Forest forest = bolt::testing::small_forest(6, 4, 83);
  const data::Dataset inputs = bolt::testing::small_dataset(50, 84);
  const BoltForest bf = BoltForest::build(forest, {});

  // Features used anywhere in the forest.
  std::vector<bool> used(forest.num_features, false);
  for (const auto& tree : forest.trees) {
    for (const auto& n : tree.nodes()) {
      if (!n.is_leaf()) used[n.feature] = true;
    }
  }

  BoltEngine engine(bf);
  Explanation e(forest.num_features);
  for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
    engine.predict_explained(inputs.row(i), e);
  }
  for (std::size_t f = 0; f < forest.num_features; ++f) {
    if (!used[f]) EXPECT_EQ(e.scores()[f], 0.0) << "feature " << f;
  }
  // Something must be salient.
  double total = 0;
  for (double s : e.scores()) total += s;
  EXPECT_GT(total, 0.0);
}

TEST(PredictExplained, SingleTreeSalienceIsMatchedPath) {
  // With one tiny tree, the salient features of an input are exactly the
  // features on its matching root-to-leaf path's cluster.
  forest::Forest f;
  f.num_features = 2;
  f.num_classes = 3;
  f.trees.push_back(bolt::testing::tiny_tree());
  f.weights = {1.0};
  BoltConfig cfg;
  cfg.cluster.threshold = 0;  // one cluster per path
  const BoltForest bf = BoltForest::build(f, cfg);
  BoltEngine engine(bf);

  Explanation e(2);
  const float x[2] = {0.9f, 0.9f};  // right at root: path tests f0 only
  engine.predict_explained(x, e);
  EXPECT_GT(e.scores()[0], 0.0);
  EXPECT_EQ(e.scores()[1], 0.0);
}

}  // namespace
}  // namespace bolt::core
