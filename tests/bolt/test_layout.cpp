#include "bolt/layout.h"

#include <gtest/gtest.h>

#include "../helpers.h"

namespace bolt::core {
namespace {

TEST(Layout, CompressedBeatsPlainOnEveryComponent) {
  // Figure 8's claim: every BOLT bar is below its decompressed bar.
  const forest::Forest forest = bolt::testing::small_forest(10, 4);
  const BoltForest bf = BoltForest::build(forest, {});
  const LayoutReport r = analyze_layout(bf);

  EXPECT_LT(r.dict_masks.bolt_bytes_per_entry,
            r.dict_masks.plain_bytes_per_entry);
  EXPECT_LT(r.dict_features.bolt_bytes_per_entry,
            r.dict_features.plain_bytes_per_entry);
  EXPECT_LT(r.table_results.bolt_bytes_per_entry,
            r.table_results.plain_bytes_per_entry);
  EXPECT_LT(r.table_entry_id.bolt_bytes_per_entry,
            r.table_entry_id.plain_bytes_per_entry);
}

TEST(Layout, EntryIdIsOneByte) {
  const forest::Forest forest = bolt::testing::small_forest(4, 3);
  const LayoutReport r = analyze_layout(BoltForest::build(forest, {}));
  EXPECT_DOUBLE_EQ(r.table_entry_id.bolt_bytes_per_entry, 1.0);
  EXPECT_DOUBLE_EQ(r.table_entry_id.plain_bytes_per_entry, 4.0);
}

TEST(Layout, MaskCompressionIsEightToOneOnBits) {
  const forest::Forest forest = bolt::testing::small_forest(8, 4);
  const LayoutReport r = analyze_layout(BoltForest::build(forest, {}));
  // Bitmaps vs byte-per-bool: compressed masks must be ~8x smaller
  // (rounded up to whole bytes).
  EXPECT_LE(r.dict_masks.bolt_bytes_per_entry * 4,
            r.dict_masks.plain_bytes_per_entry);
}

TEST(Layout, TotalsAggregateComponents) {
  const forest::Forest forest = bolt::testing::small_forest(6, 4);
  const LayoutReport r = analyze_layout(BoltForest::build(forest, {}));
  EXPECT_DOUBLE_EQ(r.dict_total_bolt(),
                   r.dict_masks.bolt_bytes_per_entry +
                       r.dict_features.bolt_bytes_per_entry);
  EXPECT_DOUBLE_EQ(r.table_total_plain(),
                   r.table_results.plain_bytes_per_entry +
                       r.table_entry_id.plain_bytes_per_entry);
  EXPECT_GT(r.dict_total_bolt(), 0.0);
  EXPECT_GT(r.table_total_bolt(), 0.0);
}

}  // namespace
}  // namespace bolt::core
