// Bit-identity suite for the SIMD scan-kernel layer: every kernel compiled
// into this binary and runnable on this CPU must produce *identical bits*
// to the scalar oracle — same bitmap, same rowmasks, same engine votes,
// same classifications — on forest-built and synthetic dictionaries,
// including the edge geometries (zero entries, many-word entries, padding
// lanes, tile row counts straddling every vector width).
#include "bolt/kernels/kernels.h"

#include <gtest/gtest.h>

#include <vector>

#include <cmath>
#include <limits>

#include "../helpers.h"
#include "bolt/builder.h"
#include "bolt/engine.h"
#include "bolt/parallel.h"
#include "forest/predicates.h"
#include "util/aligned.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace bolt::kernels {
namespace {

using core::BoltEngine;
using core::BoltForest;
using core::Cluster;
using core::Dictionary;

/// Restores normal dispatch even when an assertion fails mid-test.
struct ForcedKernel {
  explicit ForcedKernel(const KernelOps* k) { force_kernel_for_testing(k); }
  ~ForcedKernel() { force_kernel_for_testing(nullptr); }
};

util::BitVector random_bits(util::Rng& rng, std::size_t nbits) {
  util::BitVector bits(nbits);
  for (std::size_t i = 0; i < nbits; ++i) {
    if (rng.uniform() < 0.5) bits.set(i);
  }
  return bits;
}

/// Word-major transposed tile (the batch kernels' input layout) from
/// independently random rows.
util::aligned_vector<std::uint64_t> random_tile(util::Rng& rng,
                                                std::size_t words_per_row,
                                                std::size_t nbits,
                                                std::vector<util::BitVector>& rows) {
  util::aligned_vector<std::uint64_t> tile(words_per_row * kTileRows, 0);
  rows.clear();
  for (std::size_t r = 0; r < kTileRows; ++r) {
    rows.push_back(random_bits(rng, nbits));
    for (std::size_t w = 0; w < words_per_row; ++w) {
      tile[w * kTileRows + r] = rows.back().words()[w];
    }
  }
  return tile;
}

/// Synthetic dictionary with a spread of sparse-word counts (0 up to many
/// words per entry) so the layout gets several buckets, including widths
/// no forest-built dictionary on the small dataset would produce.
Dictionary synthetic_dictionary(std::size_t num_predicates,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Cluster> clusters;
  for (std::size_t width : {0u, 1u, 1u, 2u, 3u, 3u, 3u, 5u, 8u, 12u}) {
    Cluster c;
    for (std::size_t k = 0; k < width; ++k) {
      // One predicate per distinct word so the entry spans `width` words.
      const auto pred = static_cast<std::uint32_t>(
          k * 64 + static_cast<std::uint32_t>(rng.uniform() * 63));
      c.common_items.push_back(
          core::make_item(pred, rng.uniform() < 0.5 ? 1 : 0));
    }
    const auto addr = static_cast<std::uint32_t>(rng.uniform() * 60) + 1;
    c.uncommon_preds.push_back(addr);
    clusters.push_back(std::move(c));
  }
  return Dictionary(clusters, num_predicates);
}

void expect_layout_sound(const ScanLayout& layout, const Dictionary& dict,
                         std::size_t entry_begin, std::size_t entry_end) {
  EXPECT_EQ(layout.num_entries(), entry_end - entry_begin);
  EXPECT_EQ(layout.local_size() % 64, 0u);
  std::vector<bool> seen(dict.num_entries(), false);
  std::size_t covered = 0;
  for (std::size_t local = 0; local < layout.local_size(); ++local) {
    const std::uint32_t e = layout.entry_id(local);
    if (e == kInvalidEntry) continue;
    ASSERT_GE(e, entry_begin);
    ASSERT_LT(e, entry_end);
    ASSERT_FALSE(seen[e]) << "entry mapped twice";
    seen[e] = true;
    ++covered;
  }
  EXPECT_EQ(covered, entry_end - entry_begin);
  for (const ScanLayout::Bucket& b : layout.buckets()) {
    EXPECT_EQ(b.local_base % 64, 0u);
    EXPECT_EQ(b.padded % kLanePad, 0u);
    EXPECT_LE(b.count, b.padded);
    // Plane-major pools mirror the dictionary's CSR words exactly.
    for (std::uint32_t i = 0; i < b.count; ++i) {
      const std::uint32_t e = layout.entry_id(b.local_base + i);
      const auto words = dict.sparse_words(e);
      ASSERT_EQ(words.size(), b.width);
      for (std::uint32_t k = 0; k < b.width; ++k) {
        const std::size_t p =
            b.plane_offset + static_cast<std::size_t>(k) * b.padded + i;
        EXPECT_EQ(layout.widx()[p], words[k].word);
        EXPECT_EQ(layout.mask()[p], words[k].mask);
        EXPECT_EQ(layout.expect()[p], words[k].expect);
      }
    }
  }
}

/// Scalar scan_row against Dictionary::matches, the independent oracle.
void expect_row_matches_dictionary(const ScanLayout& layout,
                                   const Dictionary& dict,
                                   const util::BitVector& bits) {
  std::vector<std::uint64_t> bitmap(layout.bitmap_words() + 1, ~std::uint64_t{0});
  scalar_kernel().scan_row(layout, bits.words().data(), bitmap.data());
  for (std::size_t local = 0; local < layout.local_size(); ++local) {
    const std::uint32_t e = layout.entry_id(local);
    const bool bit = (bitmap[local >> 6] >> (local & 63)) & 1u;
    if (e == kInvalidEntry) {
      ASSERT_FALSE(bit) << "padding lane " << local << " leaked a candidate";
    } else {
      ASSERT_EQ(bit, dict.matches(e, bits)) << "entry " << e;
    }
  }
}

TEST(ScanLayout, ForestBuiltDictionaryIsCoveredExactly) {
  const BoltForest bf =
      BoltForest::build(bolt::testing::small_forest(8, 5, 3), {});
  const Dictionary& dict = bf.dictionary();
  expect_layout_sound(bf.scan_layout(), dict, 0, dict.num_entries());
}

TEST(ScanLayout, PartitionRangesCoverTheirEntries) {
  const BoltForest bf =
      BoltForest::build(bolt::testing::small_forest(8, 5, 3), {});
  const Dictionary& dict = bf.dictionary();
  const std::size_t n = dict.num_entries();
  const std::size_t mid = n / 2;
  expect_layout_sound(ScanLayout(dict, 0, mid), dict, 0, mid);
  expect_layout_sound(ScanLayout(dict, mid, n), dict, mid, n);
}

TEST(ScanLayout, SyntheticWidthsIncludingManyWordEntries) {
  const Dictionary dict = synthetic_dictionary(12 * 64, 7);
  const ScanLayout layout(dict);
  expect_layout_sound(layout, dict, 0, dict.num_entries());
  // The width-0 and width-12 clusters must land in distinct buckets.
  EXPECT_GE(layout.buckets().size(), 5u);
}

TEST(ScanLayout, ZeroEntryDictionaryIsEmpty) {
  const Dictionary dict(std::span<const Cluster>{}, 256);
  const ScanLayout layout(dict);
  EXPECT_EQ(layout.num_entries(), 0u);
  EXPECT_EQ(layout.local_size(), 0u);
  EXPECT_EQ(layout.bitmap_words(), 0u);
  // Kernels over an empty layout must be harmless no-ops.
  util::Rng rng(1);
  const util::BitVector bits = random_bits(rng, 256);
  std::uint64_t sentinel = 0xabcdefu;
  for (const KernelOps* k : available_kernels()) {
    k->scan_row(layout, bits.words().data(), &sentinel);
    k->scan_tile(layout, bits.words().data(), 0, &sentinel);
  }
  EXPECT_EQ(sentinel, 0xabcdefu);
}

TEST(ScanKernels, ScalarRowMatchesDictionaryOracle) {
  const BoltForest bf =
      BoltForest::build(bolt::testing::small_forest(10, 5, 21), {});
  util::Rng rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    expect_row_matches_dictionary(bf.scan_layout(), bf.dictionary(),
                                  random_bits(rng, bf.space().size()));
  }
}

TEST(ScanKernels, ScalarRowMatchesOracleOnSyntheticWidths) {
  const std::size_t nbits = 12 * 64;
  const Dictionary dict = synthetic_dictionary(nbits, 9);
  const ScanLayout layout(dict);
  util::Rng rng(10);
  for (int trial = 0; trial < 50; ++trial) {
    expect_row_matches_dictionary(layout, dict, random_bits(rng, nbits));
  }
}

TEST(ScanKernels, EveryKernelRowBitIdenticalToScalar) {
  const BoltForest bf =
      BoltForest::build(bolt::testing::small_forest(10, 6, 31), {});
  const ScanLayout& layout = bf.scan_layout();
  const Dictionary synth = synthetic_dictionary(12 * 64, 33);
  const ScanLayout synth_layout(synth);
  util::Rng rng(32);
  for (int trial = 0; trial < 100; ++trial) {
    const util::BitVector bits = random_bits(rng, bf.space().size());
    std::vector<std::uint64_t> oracle(layout.bitmap_words());
    scalar_kernel().scan_row(layout, bits.words().data(), oracle.data());
    for (const KernelOps* k : available_kernels()) {
      std::vector<std::uint64_t> got(layout.bitmap_words(), ~std::uint64_t{0});
      k->scan_row(layout, bits.words().data(), got.data());
      ASSERT_EQ(got, oracle) << "kernel " << k->name << " trial " << trial;
    }
    const util::BitVector sbits = random_bits(rng, 12 * 64);
    std::vector<std::uint64_t> soracle(synth_layout.bitmap_words());
    scalar_kernel().scan_row(synth_layout, sbits.words().data(),
                             soracle.data());
    for (const KernelOps* k : available_kernels()) {
      std::vector<std::uint64_t> got(synth_layout.bitmap_words(),
                                     ~std::uint64_t{0});
      k->scan_row(synth_layout, sbits.words().data(), got.data());
      ASSERT_EQ(got, soracle) << "kernel " << k->name << " trial " << trial;
    }
  }
}

TEST(ScanKernels, EveryKernelTileBitIdenticalToScalar) {
  const BoltForest bf =
      BoltForest::build(bolt::testing::small_forest(10, 6, 41), {});
  const ScanLayout& layout = bf.scan_layout();
  const std::size_t wpr = util::words_for_bits(bf.space().size());
  util::Rng rng(42);
  std::vector<util::BitVector> rows;
  for (int trial = 0; trial < 20; ++trial) {
    const auto tile = random_tile(rng, wpr, bf.space().size(), rows);
    // Row counts straddling every vector width and the full-tile case.
    for (std::size_t num_rows : {std::size_t{1}, std::size_t{3},
                                 std::size_t{4}, std::size_t{7},
                                 std::size_t{8}, std::size_t{63},
                                 std::size_t{64}}) {
      std::vector<std::uint64_t> oracle(layout.local_size());
      scalar_kernel().scan_tile(layout, tile.data(), num_rows, oracle.data());
      // The oracle itself must agree with the per-row dictionary test.
      for (std::size_t local = 0; local < layout.local_size(); ++local) {
        const std::uint32_t e = layout.entry_id(local);
        for (std::size_t r = 0; r < num_rows; ++r) {
          const bool bit = (oracle[local] >> r) & 1u;
          const bool want =
              e != kInvalidEntry && bf.dictionary().matches(e, rows[r]);
          ASSERT_EQ(bit, want) << "local " << local << " row " << r;
        }
        ASSERT_EQ(oracle[local] & ~detail::tile_rows_mask(num_rows), 0u);
      }
      for (const KernelOps* k : available_kernels()) {
        std::vector<std::uint64_t> got(layout.local_size(), ~std::uint64_t{0});
        k->scan_tile(layout, tile.data(), num_rows, got.data());
        ASSERT_EQ(got, oracle)
            << "kernel " << k->name << " num_rows " << num_rows;
      }
    }
  }
}

TEST(KernelDispatch, RegistryIsSaneAndScalarAlwaysAvailable) {
  ASSERT_FALSE(compiled_kernels().empty());
  ASSERT_FALSE(available_kernels().empty());
  EXPECT_EQ(compiled_kernels().front(), &scalar_kernel());
  EXPECT_EQ(available_kernels().front(), &scalar_kernel());
  EXPECT_EQ(find_kernel("scalar"), &scalar_kernel());
  EXPECT_EQ(find_kernel("no-such-kernel"), nullptr);
  for (const KernelOps* k : available_kernels()) {
    EXPECT_NE(k->scan_row, nullptr);
    EXPECT_NE(k->scan_tile, nullptr);
    EXPECT_NE(k->binarize_row, nullptr);
    EXPECT_NE(k->binarize_tile, nullptr);
    EXPECT_GE(k->lanes, 1u);
  }
  EXPECT_EQ(scalar_kernel().binarize_row, &forest::binarize_row_scalar);
}

// Regression for the PR 5 latent bug: -mavx2 is scoped to kernel TUs, so a
// forest-layer `#if defined(__AVX2__)` binarize path is dead code in every
// default build. The kernel layer must instead *install* its selected
// binarize_row into PredicateSpace::binarize's dispatch hook — and keep the
// hook in sync across force transitions.
TEST(KernelDispatch, BinarizeHookTracksSelectedKernel) {
  EXPECT_EQ(forest::detail::binarize_row_dispatch.load(),
            select_kernel().binarize_row);
  for (const KernelOps* k : available_kernels()) {
    ForcedKernel forced(k);
    EXPECT_EQ(forest::detail::binarize_row_dispatch.load(), k->binarize_row)
        << "kernel " << k->name;
  }
  // The guard restored normal dispatch; the hook must follow it back.
  EXPECT_EQ(forest::detail::binarize_row_dispatch.load(),
            select_kernel().binarize_row);
}

/// Synthetic predicate space: `num_predicates` tests spread over
/// `num_features` input features with strictly increasing thresholds.
/// Feature 0 and the last feature are deliberately left without predicates
/// so the CSR walk crosses empty ranges (including a leading one).
forest::PredicateSpace synthetic_space(std::size_t num_predicates,
                                       std::size_t num_features) {
  const std::size_t used = num_features > 2 ? num_features - 2 : 1;
  const std::size_t first = num_features > 2 ? 1 : 0;
  std::vector<forest::Predicate> preds;
  preds.reserve(num_predicates);
  for (std::size_t p = 0; p < num_predicates; ++p) {
    const auto f = static_cast<std::uint32_t>(first + (p * used) / num_predicates);
    preds.push_back({f, static_cast<float>(p) * 0.013f});
  }
  return forest::PredicateSpace::from_predicates(num_features, preds);
}

std::vector<float> random_sample_for(util::Rng& rng, std::size_t num_features,
                                     std::size_t num_predicates) {
  std::vector<float> x(num_features);
  // Spread across the threshold range so bits come out genuinely mixed.
  for (float& v : x) {
    v = static_cast<float>(rng.uniform()) *
        static_cast<float>(num_predicates) * 0.013f;
  }
  return x;
}

TEST(BinarizeKernels, Transpose64x64MatchesNaiveAndRoundTrips) {
  util::Rng rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    std::uint64_t a[64];
    for (std::uint64_t& w : a) {
      w = (static_cast<std::uint64_t>(rng.uniform() * 4294967296.0) << 32) ^
          static_cast<std::uint64_t>(rng.uniform() * 4294967296.0);
    }
    std::uint64_t t[64];
    std::copy(a, a + 64, t);
    detail::transpose_64x64(t);
    for (int r = 0; r < 64; ++r) {
      for (int c = 0; c < 64; ++c) {
        ASSERT_EQ((t[r] >> c) & 1u, (a[c] >> r) & 1u)
            << "bit (" << r << ", " << c << ")";
      }
    }
    detail::transpose_64x64(t);
    for (int r = 0; r < 64; ++r) ASSERT_EQ(t[r], a[r]);
  }
}

// The predicate counts exercise every tail shape: sub-lane spaces (1, 3),
// exact lane/word multiples (8, 64, 128), one-past boundaries (9, 65), and
// the mid-word vector-loop stop where the scalar tail must merge into a
// word the vector loop already wrote (67: AVX-512 stops at 64; 74: AVX2
// stops at 72, 8 bits into word 1).
constexpr std::size_t kBinarizeSizes[] = {1, 3, 8, 9, 15, 16, 63, 64,
                                          65, 67, 74, 128, 200};

TEST(BinarizeKernels, EveryKernelRowBitIdenticalToScalarOracle) {
  util::Rng rng(92);
  for (const std::size_t n : kBinarizeSizes) {
    const std::size_t num_features = 7;
    const forest::PredicateSpace space = synthetic_space(n, num_features);
    ASSERT_EQ(space.size(), n);
    const std::size_t nwords = util::words_for_bits(n);
    for (int trial = 0; trial < 20; ++trial) {
      const auto x = random_sample_for(rng, num_features, n);
      std::vector<std::uint64_t> oracle(nwords, 0xdeadbeefdeadbeefull);
      forest::binarize_row_scalar(space.soa(), x.data(), oracle.data());
      // The oracle itself must match the predicate definition.
      for (std::size_t p = 0; p < n; ++p) {
        const auto& pr = space.predicate(p);
        ASSERT_EQ((oracle[p >> 6] >> (p & 63)) & 1u,
                  static_cast<std::uint64_t>(x[pr.feature] <= pr.threshold))
            << "n " << n << " predicate " << p;
      }
      for (const KernelOps* k : available_kernels()) {
        // Canary prefill: every output word must be fully defined.
        std::vector<std::uint64_t> got(nwords, 0xabad1deaabad1deaull);
        k->binarize_row(space.soa(), x.data(), got.data());
        ASSERT_EQ(got, oracle) << "kernel " << k->name << " n " << n;
      }
    }
  }
}

TEST(BinarizeKernels, EveryKernelTileBitIdenticalToRowOracle) {
  util::Rng rng(93);
  for (const std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                              std::size_t{65}, std::size_t{130},
                              std::size_t{200}}) {
    const std::size_t num_features = 9;
    const std::size_t stride = num_features + 2;  // row stride > arity
    const forest::PredicateSpace space = synthetic_space(n, num_features);
    const std::size_t nwords = util::words_for_bits(n);
    std::vector<float> rows(kTileRows * stride);
    for (float& v : rows) {
      v = static_cast<float>(rng.uniform()) * static_cast<float>(n) * 0.013f;
    }
    for (const std::size_t num_rows :
         {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{7},
          std::size_t{8}, std::size_t{15}, std::size_t{16}, std::size_t{63},
          std::size_t{64}}) {
      // Expected tile straight from the row oracle; rows >= num_rows are
      // zero words by contract.
      std::vector<std::uint64_t> expected(nwords * kTileRows, 0);
      std::vector<std::uint64_t> row_words(nwords);
      for (std::size_t r = 0; r < num_rows; ++r) {
        forest::binarize_row_scalar(space.soa(), rows.data() + r * stride,
                                    row_words.data());
        for (std::size_t w = 0; w < nwords; ++w) {
          expected[w * kTileRows + r] = row_words[w];
        }
      }
      for (const KernelOps* k : available_kernels()) {
        util::aligned_vector<std::uint64_t> got(nwords * kTileRows,
                                                0xabad1deaabad1deaull);
        k->binarize_tile(space.soa(), rows.data(), num_rows, stride,
                         got.data());
        for (std::size_t i = 0; i < expected.size(); ++i) {
          ASSERT_EQ(got[i], expected[i])
              << "kernel " << k->name << " n " << n << " num_rows " << num_rows
              << " word " << i / kTileRows << " row " << i % kTileRows;
        }
      }
    }
  }
}

// NaN fails every predicate (scalar `x <= t` and vector _CMP_LE_OQ agree);
// ±inf follow IEEE ordering. Row and tile shapes, every kernel.
TEST(BinarizeKernels, NanAndInfBitIdenticalAcrossKernels) {
  const std::size_t n = 130;
  const std::size_t num_features = 9;
  const forest::PredicateSpace space = synthetic_space(n, num_features);
  const std::size_t nwords = util::words_for_bits(n);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  util::Rng rng(94);

  // One all-special row plus a tile where specials are scattered.
  std::vector<float> special(num_features);
  for (std::size_t f = 0; f < num_features; ++f) {
    special[f] = f % 3 == 0 ? nan : (f % 3 == 1 ? inf : -inf);
  }
  std::vector<std::uint64_t> oracle(nwords);
  forest::binarize_row_scalar(space.soa(), special.data(), oracle.data());
  for (std::size_t p = 0; p < n; ++p) {
    const auto& pr = space.predicate(p);
    const bool bit = (oracle[p >> 6] >> (p & 63)) & 1u;
    // NaN and +inf fail (thresholds are finite); -inf passes.
    ASSERT_EQ(bit, pr.feature % 3 == 2) << "predicate " << p;
  }
  for (const KernelOps* k : available_kernels()) {
    std::vector<std::uint64_t> got(nwords, 0xabad1deaabad1deaull);
    k->binarize_row(space.soa(), special.data(), got.data());
    ASSERT_EQ(got, oracle) << "kernel " << k->name;
  }

  const std::size_t stride = num_features;
  std::vector<float> rows(kTileRows * stride);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double u = rng.uniform();
    rows[i] = u < 0.1 ? nan
              : u < 0.2 ? inf
              : u < 0.3 ? -inf
                        : static_cast<float>(u) * static_cast<float>(n) * 0.013f;
  }
  for (const std::size_t num_rows : {std::size_t{5}, std::size_t{64}}) {
    std::vector<std::uint64_t> expected(nwords * kTileRows, 0);
    std::vector<std::uint64_t> row_words(nwords);
    for (std::size_t r = 0; r < num_rows; ++r) {
      forest::binarize_row_scalar(space.soa(), rows.data() + r * stride,
                                  row_words.data());
      for (std::size_t w = 0; w < nwords; ++w) {
        expected[w * kTileRows + r] = row_words[w];
      }
    }
    for (const KernelOps* k : available_kernels()) {
      util::aligned_vector<std::uint64_t> got(nwords * kTileRows, 0);
      k->binarize_tile(space.soa(), rows.data(), num_rows, stride, got.data());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(got[i], expected[i])
            << "kernel " << k->name << " num_rows " << num_rows;
      }
    }
  }
}

// PredicateSpace::binarize routes through the installed hook: under every
// forced kernel it must still produce the oracle's bits (same contract the
// engines rely on after capturing the kernel directly).
TEST(BinarizeKernels, PredicateSpaceBinarizeMatchesOracleUnderEveryKernel) {
  const BoltForest bf =
      BoltForest::build(bolt::testing::small_forest(8, 5, 95), {});
  const forest::PredicateSpace& space = bf.space();
  util::Rng rng(96);
  for (int trial = 0; trial < 20; ++trial) {
    const auto x =
        bolt::testing::random_sample(rng, space.soa().num_features);
    std::vector<std::uint64_t> oracle(util::words_for_bits(space.size()));
    forest::binarize_row_scalar(space.soa(), x.data(), oracle.data());
    for (const KernelOps* k : available_kernels()) {
      ForcedKernel forced(k);
      const util::BitVector bits = space.binarize(x);
      for (std::size_t w = 0; w < oracle.size(); ++w) {
        ASSERT_EQ(bits.words()[w], oracle[w])
            << "kernel " << k->name << " word " << w;
      }
    }
  }
}

TEST(KernelDispatch, ForceOverridesSelection) {
  {
    ForcedKernel forced(&scalar_kernel());
    EXPECT_EQ(&select_kernel(), &scalar_kernel());
  }
  // After the guard, selection reverts to an available kernel.
  const KernelOps& chosen = select_kernel();
  bool listed = false;
  for (const KernelOps* k : available_kernels()) listed |= (k == &chosen);
  EXPECT_TRUE(listed);
}

class EngineKernelIdentity : public ::testing::Test {
 protected:
  void SetUp() override {
    artifact_ = std::make_unique<BoltForest>(
        BoltForest::build(bolt::testing::small_forest(8, 5, 51), {}));
    inputs_ = bolt::testing::small_dataset(200, 52);
    ForcedKernel forced(&scalar_kernel());
    BoltEngine ref(*artifact_);
    reference_.resize(inputs_.num_rows());
    reference_votes_.resize(inputs_.num_rows() *
                            artifact_->num_classes());
    for (std::size_t i = 0; i < inputs_.num_rows(); ++i) {
      reference_[i] = ref.predict(inputs_.row(i));
      ref.vote(inputs_.row(i), {reference_votes_.data() +
                                    i * artifact_->num_classes(),
                                artifact_->num_classes()});
    }
  }

  std::unique_ptr<BoltForest> artifact_;
  data::Dataset inputs_{0, 0};
  std::vector<int> reference_;
  std::vector<double> reference_votes_;
};

TEST_F(EngineKernelIdentity, PredictAndVotesIdenticalUnderEveryKernel) {
  for (const KernelOps* k : available_kernels()) {
    ForcedKernel forced(k);
    BoltEngine engine(*artifact_);
    std::vector<double> votes(artifact_->num_classes());
    for (std::size_t i = 0; i < inputs_.num_rows(); ++i) {
      ASSERT_EQ(engine.predict(inputs_.row(i)), reference_[i])
          << "kernel " << k->name << " row " << i;
      engine.vote(inputs_.row(i), votes);
      for (std::size_t c = 0; c < votes.size(); ++c) {
        // Bit-identity: same accepts in the same (layout) order means the
        // float accumulation is the same arithmetic — exact equality.
        ASSERT_EQ(votes[c],
                  reference_votes_[i * artifact_->num_classes() + c])
            << "kernel " << k->name << " row " << i << " class " << c;
      }
    }
  }
}

TEST_F(EngineKernelIdentity, BatchIdenticalUnderEveryKernelAcrossTileEdges) {
  const float* rows = inputs_.raw_features().data();
  const std::size_t stride = inputs_.num_features();
  for (const KernelOps* k : available_kernels()) {
    ForcedKernel forced(k);
    BoltEngine engine(*artifact_);
    for (std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                          std::size_t{65}, std::size_t{200}}) {
      std::vector<int> out(n, -2);
      engine.predict_batch({rows, n * stride}, n, stride, out);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], reference_[i])
            << "kernel " << k->name << " batch " << n << " row " << i;
      }
    }
  }
}

TEST_F(EngineKernelIdentity, PartitionedIdenticalUnderEveryKernel) {
  util::ThreadPool pool(3);
  for (const KernelOps* k : available_kernels()) {
    ForcedKernel forced(k);
    for (const core::PartitionPlan plan :
         {core::PartitionPlan{1, 1}, core::PartitionPlan{3, 1},
          core::PartitionPlan{2, 2}}) {
      core::PartitionedBoltEngine part(*artifact_, plan);
      for (std::size_t i = 0; i < 60; ++i) {
        ASSERT_EQ(part.predict(inputs_.row(i)), reference_[i])
            << "kernel " << k->name << " plan " << plan.dict_parts << "x"
            << plan.table_parts;
        ASSERT_EQ(part.predict_threaded(inputs_.row(i), pool), reference_[i]);
      }
    }
  }
}

}  // namespace
}  // namespace bolt::kernels
