#include "bolt/results.h"

#include <gtest/gtest.h>

#include <vector>

namespace bolt::core {
namespace {

TEST(ResultPool, InternDeduplicates) {
  ResultPool pool(3);
  const std::vector<float> a = {1, 0, 2};
  const std::vector<float> b = {0, 1, 0};
  const auto ia = pool.intern(a);
  const auto ib = pool.intern(b);
  const auto ia2 = pool.intern(a);
  EXPECT_EQ(ia, ia2);
  EXPECT_NE(ia, ib);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(ResultPool, VotesRoundTrip) {
  ResultPool pool(4);
  const std::vector<float> v = {0.5f, 1.5f, 0, 7};
  const auto idx = pool.intern(v);
  const auto got = pool.votes(idx);
  ASSERT_EQ(got.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(got[i], v[i]);
}

TEST(ResultPool, AccumulateAdds) {
  ResultPool pool(2);
  const std::vector<float> a = {1, 2};
  const std::vector<float> b = {10, 0};
  const auto ia = pool.intern(a);
  const auto ib = pool.intern(b);
  std::vector<double> acc = {100, 100};
  pool.accumulate(ia, acc);
  pool.accumulate(ib, acc);
  EXPECT_DOUBLE_EQ(acc[0], 111.0);
  EXPECT_DOUBLE_EQ(acc[1], 102.0);
}

TEST(ResultPool, PackedRoundTrip) {
  ResultPool pool(5);
  const std::vector<float> a = {1, 0, 3, 0, 2};
  const std::vector<float> b = {0, 6, 0, 0, 0};
  const auto ia = pool.intern(a);
  const auto ib = pool.intern(b);
  ASSERT_TRUE(pool.finalize_packed(10.0));
  ASSERT_TRUE(pool.packed_available());

  std::uint64_t acc = 0;
  pool.accumulate_packed(ia, acc);
  pool.accumulate_packed(ib, acc);
  pool.accumulate_packed(ia, acc);
  std::vector<double> out(5);
  pool.unpack(acc, out);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
  EXPECT_DOUBLE_EQ(out[2], 6.0);
  EXPECT_DOUBLE_EQ(out[3], 0.0);
  EXPECT_DOUBLE_EQ(out[4], 4.0);
}

TEST(ResultPool, PackedRefusesNonIntegralVotes) {
  ResultPool pool(2);
  const std::vector<float> v = {0.5f, 1.0f};
  pool.intern(v);
  EXPECT_FALSE(pool.finalize_packed(10.0));
  EXPECT_FALSE(pool.packed_available());
}

TEST(ResultPool, PackedRefusesWhenFieldsDontFit) {
  ResultPool pool(10);
  std::vector<float> v(10, 1.0f);
  pool.intern(v);
  // total mass 200 needs 8+ bits per field; 10 classes * 8 > 64.
  EXPECT_FALSE(pool.finalize_packed(200.0));
}

TEST(ResultPool, PackedAcceptsTenClassThirtyTrees) {
  // The paper's largest plain-RF benchmark shape must stay packable.
  ResultPool pool(10);
  std::vector<float> v(10, 0.0f);
  v[3] = 30.0f;
  pool.intern(v);
  EXPECT_TRUE(pool.finalize_packed(30.0));
}

TEST(ResultPool, InternInvalidatesPacking) {
  ResultPool pool(2);
  const std::vector<float> a = {1, 0};
  pool.intern(a);
  ASSERT_TRUE(pool.finalize_packed(4.0));
  const std::vector<float> b = {0, 1};
  pool.intern(b);  // pool changed: packing must be rebuilt
  EXPECT_FALSE(pool.packed_available());
}

TEST(ResultPool, CompressedBytesSmallerThanPlain) {
  ResultPool pool(10);
  for (int r = 0; r < 50; ++r) {
    std::vector<float> v(10, 0.0f);
    v[r % 10] = static_cast<float>(1 + r % 3);
    pool.intern(v);
  }
  EXPECT_LT(pool.compressed_bytes(), pool.decompressed_bytes());
  // Small integer votes: expect at least the paper's ~3x compression.
  EXPECT_LE(pool.compressed_bytes() * 3, pool.decompressed_bytes());
}

TEST(ResultPool, ManyDistinctVectorsSurviveInternStress) {
  ResultPool pool(4);
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 1000; ++i) {
    std::vector<float> v = {static_cast<float>(i % 7),
                            static_cast<float>(i % 11),
                            static_cast<float>(i % 13),
                            static_cast<float>(i % 3)};
    ids.push_back(pool.intern(v));
  }
  for (int i = 0; i < 1000; ++i) {
    const auto got = pool.votes(ids[i]);
    EXPECT_EQ(got[0], static_cast<float>(i % 7));
    EXPECT_EQ(got[1], static_cast<float>(i % 11));
    EXPECT_EQ(got[2], static_cast<float>(i % 13));
    EXPECT_EQ(got[3], static_cast<float>(i % 3));
  }
}

}  // namespace
}  // namespace bolt::core
