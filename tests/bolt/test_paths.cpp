#include "bolt/paths.h"

#include <gtest/gtest.h>

#include "../helpers.h"

namespace bolt::core {
namespace {

TEST(PathItem, PackingRoundTrip) {
  for (std::uint32_t pred : {0u, 1u, 63u, 1000u}) {
    for (bool v : {false, true}) {
      const PathItem item = make_item(pred, v);
      EXPECT_EQ(item_pred(item), pred);
      EXPECT_EQ(item_value(item), v);
    }
  }
}

TEST(EnumeratePaths, CountsMatchLeaves) {
  forest::Forest f = bolt::testing::small_forest(5, 4);
  forest::PredicateSpace space(f);
  const auto paths = enumerate_paths(f, space);
  // Merged paths can be fewer than leaves but never more.
  EXPECT_LE(paths.size(), f.total_leaves());
  EXPECT_GT(paths.size(), 0u);
}

TEST(EnumeratePaths, SortedStrictlyLexicographic) {
  forest::Forest f = bolt::testing::small_forest(5, 4);
  forest::PredicateSpace space(f);
  const auto paths = enumerate_paths(f, space);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LT(paths[i - 1].items, paths[i].items);  // strict: merged dups
  }
}

TEST(EnumeratePaths, ItemsSortedByPredicateWithinPath) {
  forest::Forest f = bolt::testing::small_forest(5, 5);
  forest::PredicateSpace space(f);
  for (const Path& p : enumerate_paths(f, space)) {
    for (std::size_t i = 1; i < p.items.size(); ++i) {
      EXPECT_LT(item_pred(p.items[i - 1]), item_pred(p.items[i]));
    }
  }
}

TEST(EnumeratePaths, VoteMassEqualsTreeWeights) {
  forest::Forest f = bolt::testing::small_forest(6, 4);
  f.weights = {1.0, 2.0, 0.5, 1.0, 3.0, 1.5};
  forest::PredicateSpace space(f);
  const auto paths = enumerate_paths(f, space);
  // Per-tree, each input matches one path; but globally, total vote mass
  // over all paths equals sum over leaves of their weights, which equals
  // sum over trees of weight * num_leaves.
  double total = 0.0;
  for (const Path& p : paths) {
    for (float v : p.votes) total += v;
  }
  double expected = 0.0;
  for (std::size_t t = 0; t < f.trees.size(); ++t) {
    expected += f.weights[t] * static_cast<double>(f.trees[t].num_leaves());
  }
  EXPECT_NEAR(total, expected, 1e-6);
}

TEST(EnumeratePaths, ExactlyOneMatchPerTreePerInput) {
  forest::Forest f = bolt::testing::small_forest(6, 4);
  forest::PredicateSpace space(f);
  const auto paths = enumerate_paths(f, space);

  util::Rng rng(31);
  for (int iter = 0; iter < 100; ++iter) {
    const auto x = bolt::testing::random_sample(rng, f.num_features);
    const auto bits = space.binarize(x);
    // Sum of matching paths' votes must equal the forest's vote.
    std::vector<double> votes(f.num_classes, 0.0);
    for (const Path& p : paths) {
      if (path_matches(p, bits)) {
        for (std::size_t c = 0; c < votes.size(); ++c) votes[c] += p.votes[c];
      }
    }
    const auto expected = f.vote(x);
    for (std::size_t c = 0; c < votes.size(); ++c) {
      ASSERT_NEAR(votes[c], expected[c], 1e-6) << "iter " << iter;
    }
  }
}

TEST(EnumeratePaths, MergesRedundantPathsAcrossTrees) {
  // Two identical trees: every path appears in both -> each merged path
  // carries double votes and the path list is the size of one tree's.
  forest::Forest f;
  f.num_features = 2;
  f.num_classes = 3;
  f.trees.push_back(bolt::testing::tiny_tree());
  f.trees.push_back(bolt::testing::tiny_tree());
  f.weights = {1.0, 1.0};
  forest::PredicateSpace space(f);
  const auto paths = enumerate_paths(f, space);
  EXPECT_EQ(paths.size(), 3u);  // tiny_tree has 3 leaves
  for (const Path& p : paths) {
    double mass = 0;
    for (float v : p.votes) mass += v;
    EXPECT_DOUBLE_EQ(mass, 2.0);
  }
}

TEST(EnumeratePaths, SingleLeafTreeYieldsEmptyPath) {
  forest::Forest f;
  f.num_features = 1;
  f.num_classes = 2;
  std::vector<forest::TreeNode> nodes(1);
  nodes[0] = {forest::TreeNode::kLeaf, 0.0f, -1, -1, 1};
  f.trees.emplace_back(std::move(nodes));
  f.weights = {1.0};
  forest::PredicateSpace space(f);
  const auto paths = enumerate_paths(f, space);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths[0].items.empty());
  EXPECT_EQ(paths[0].votes[1], 1.0f);
}

TEST(PathMatches, RespectsValues) {
  Path p;
  p.items = {make_item(2, true), make_item(5, false)};
  util::BitVector bits(8);
  bits.set(2, true);
  EXPECT_TRUE(path_matches(p, bits));
  bits.set(5, true);
  EXPECT_FALSE(path_matches(p, bits));
}

}  // namespace
}  // namespace bolt::core
