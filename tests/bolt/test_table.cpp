#include "bolt/table.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace bolt::core {
namespace {

std::vector<TableEntry> random_entries(std::size_t n, std::uint64_t seed,
                                       std::uint32_t max_id = 64,
                                       unsigned addr_bits = 16) {
  util::Rng rng(seed);
  std::vector<TableEntry> entries;
  std::set<std::pair<std::uint32_t, std::uint64_t>> seen;
  while (entries.size() < n) {
    const auto id = static_cast<std::uint32_t>(rng.below(max_id));
    const std::uint64_t addr = rng.next() & ((1ULL << addr_bits) - 1);
    if (!seen.emplace(id, addr).second) continue;
    entries.push_back({id, addr, static_cast<std::uint32_t>(entries.size())});
  }
  return entries;
}

class TableStrategyTest : public ::testing::TestWithParam<TableStrategy> {};

TEST_P(TableStrategyTest, FindsEveryInsertedKey) {
  TableConfig cfg;
  cfg.strategy = GetParam();
  const auto entries = random_entries(500, 1);
  const auto table = RecombinedTable::build(entries, cfg);
  for (const TableEntry& e : entries) {
    const auto r = table.find(e.entry_id, e.address);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, e.result_idx);
  }
}

TEST_P(TableStrategyTest, InsertedKeysOccupyDistinctSlots) {
  TableConfig cfg;
  cfg.strategy = GetParam();
  const auto entries = random_entries(300, 2);
  const auto table = RecombinedTable::build(entries, cfg);
  std::set<std::size_t> slots;
  for (const TableEntry& e : entries) {
    EXPECT_TRUE(slots.insert(table.slot_of(e.entry_id, e.address)).second);
  }
}

TEST_P(TableStrategyTest, ExactModeRejectsEveryAbsentKey) {
  TableConfig cfg;
  cfg.strategy = GetParam();
  cfg.id_check = IdCheck::kExact;
  const auto entries = random_entries(200, 3);
  const auto table = RecombinedTable::build(entries, cfg);
  std::set<std::pair<std::uint32_t, std::uint64_t>> inserted;
  for (const TableEntry& e : entries) inserted.emplace(e.entry_id, e.address);
  util::Rng rng(33);
  std::size_t false_accepts = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto id = static_cast<std::uint32_t>(rng.below(64));
    const std::uint64_t addr = rng.next() & 0xffff;
    if (inserted.count({id, addr})) continue;
    if (table.find(id, addr)) ++false_accepts;
  }
  EXPECT_EQ(false_accepts, 0u);  // exact verification: no errors, ever
}

TEST_P(TableStrategyTest, ByteModeErrorRateIsLow) {
  // The paper's 1-byte entry-ID layout admits rare false accepts; measure
  // that the rate is small (the paper argues it is negligible, §4.4/§5).
  TableConfig cfg;
  cfg.strategy = GetParam();
  cfg.id_check = IdCheck::kByte;
  const auto entries = random_entries(200, 4);
  const auto table = RecombinedTable::build(entries, cfg);
  std::set<std::pair<std::uint32_t, std::uint64_t>> inserted;
  for (const TableEntry& e : entries) inserted.emplace(e.entry_id, e.address);
  util::Rng rng(44);
  std::size_t false_accepts = 0, probes = 0;
  for (int i = 0; i < 50000; ++i) {
    const auto id = static_cast<std::uint32_t>(rng.below(64));
    const std::uint64_t addr = rng.next() & 0xffff;
    if (inserted.count({id, addr})) continue;
    ++probes;
    if (table.find(id, addr)) ++false_accepts;
  }
  EXPECT_LT(static_cast<double>(false_accepts) / probes, 0.01);
}

TEST_P(TableStrategyTest, HandlesAdversarialBucketSkew) {
  // Many keys sharing one entry id with sequential addresses — the pattern
  // the builder actually produces.
  std::vector<TableEntry> entries;
  for (std::uint64_t a = 0; a < 1000; ++a) {
    entries.push_back({7, a, static_cast<std::uint32_t>(a)});
  }
  TableConfig cfg;
  cfg.strategy = GetParam();
  const auto table = RecombinedTable::build(entries, cfg);
  for (const TableEntry& e : entries) {
    ASSERT_EQ(table.find(e.entry_id, e.address).value(), e.result_idx);
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, TableStrategyTest,
                         ::testing::Values(TableStrategy::kDisplacement,
                                           TableStrategy::kSeedSearch),
                         [](const auto& info) {
                           return info.param == TableStrategy::kDisplacement
                                      ? "Displacement"
                                      : "SeedSearch";
                         });

TEST(RecombinedTable, EmptyTableFindsNothing) {
  const auto table = RecombinedTable::build({}, {});
  EXPECT_FALSE(table.find(0, 0).has_value());
  EXPECT_EQ(table.num_entries(), 0u);
}

TEST(RecombinedTable, SingleEntry) {
  const auto table = RecombinedTable::build({{3, 17, 99}}, {});
  EXPECT_EQ(table.find(3, 17).value(), 99u);
  EXPECT_FALSE(table.find(3, 18).has_value());
  EXPECT_FALSE(table.find(4, 17).has_value());
}

TEST(RecombinedTable, DisplacementStaysNearMinimalSize) {
  TableConfig cfg;
  cfg.strategy = TableStrategy::kDisplacement;
  cfg.max_load = 0.5;
  const auto entries = random_entries(1000, 5);
  const auto table = RecombinedTable::build(entries, cfg);
  // 1000 entries at load 0.5 -> 2048 slots; allow one doubling of slack.
  EXPECT_LE(table.num_slots(), 4096u);
}

TEST(RecombinedTable, RejectsOversizedAddress) {
  TableConfig cfg;
  EXPECT_THROW(
      RecombinedTable::build({{0, 1ULL << 40, 0}}, cfg),
      std::invalid_argument);
}

TEST(RecombinedTable, RejectsOversizedEntryId) {
  TableConfig cfg;
  EXPECT_THROW(RecombinedTable::build({{1u << 24, 0, 0}}, cfg),
               std::invalid_argument);
}

TEST(RecombinedTable, RejectsReservedResultIndex) {
  TableConfig cfg;
  EXPECT_THROW(RecombinedTable::build({{0, 0, RecombinedTable::kEmpty}}, cfg),
               std::invalid_argument);
}

TEST(RecombinedTable, MemoryAccountsForMode) {
  const auto entries = random_entries(100, 6);
  TableConfig exact;
  exact.id_check = IdCheck::kExact;
  TableConfig byte;
  byte.id_check = IdCheck::kByte;
  const auto t_exact = RecombinedTable::build(entries, exact);
  const auto t_byte = RecombinedTable::build(entries, byte);
  // The byte layout drops the 8-byte key per slot (paper Figure 8's
  // entry-ID compression).
  EXPECT_LT(t_byte.memory_bytes(), t_exact.memory_bytes());
}

}  // namespace
}  // namespace bolt::core
