#include "bolt/cluster.h"

#include <gtest/gtest.h>

#include <set>

#include "../helpers.h"

namespace bolt::core {
namespace {

Path make_path(std::initializer_list<std::pair<std::uint32_t, bool>> items,
               int cls = 0, std::size_t num_classes = 2) {
  Path p;
  for (auto [pred, v] : items) p.items.push_back(make_item(pred, v));
  std::sort(p.items.begin(), p.items.end());
  p.votes.assign(num_classes, 0.0f);
  p.votes[cls] = 1.0f;
  return p;
}

TEST(GreedyCluster, PaperFigure3Example) {
  // Predicates: a=0, b=1, c=2, h=3. The paper's sorted path list:
  //   (a,0)(b,0) | (a,0)(b,1) | (a,0)(h,0) | (a,1)(c,0) | (a,1)(c,1) |
  //   (a,1)(h,0) | (c,0)(h,1) | (c,1)(h,1)
  std::vector<Path> paths;
  paths.push_back(make_path({{0, false}, {1, false}}));
  paths.push_back(make_path({{0, false}, {1, true}}));
  paths.push_back(make_path({{0, false}, {3, false}}));
  paths.push_back(make_path({{0, true}, {2, false}}));
  paths.push_back(make_path({{0, true}, {2, true}}));
  paths.push_back(make_path({{0, true}, {3, false}}));
  paths.push_back(make_path({{2, false}, {3, true}}));
  paths.push_back(make_path({{2, true}, {3, true}}));

  ClusterConfig cfg;
  cfg.threshold = 2;
  const auto clusters = greedy_cluster(paths, cfg);

  // The paper groups these into three clusters: first three paths (common
  // (a,0)), next three (common (a,1)), last two (common (h,1)).
  ASSERT_EQ(clusters.size(), 3u);
  EXPECT_EQ(clusters[0].paths.size(), 3u);
  EXPECT_EQ(clusters[1].paths.size(), 3u);
  EXPECT_EQ(clusters[2].paths.size(), 2u);

  ASSERT_EQ(clusters[0].common_items.size(), 1u);
  EXPECT_EQ(clusters[0].common_items[0], make_item(0, false));  // (a,0)
  ASSERT_EQ(clusters[1].common_items.size(), 1u);
  EXPECT_EQ(clusters[1].common_items[0], make_item(0, true));   // (a,1)
  ASSERT_EQ(clusters[2].common_items.size(), 1u);
  EXPECT_EQ(clusters[2].common_items[0], make_item(3, true));   // (h,1)

  // Uncommon predicates: {b, h} for green, {c, h} for yellow, {c} for blue
  // (Figure 3 ⑤'s table columns).
  EXPECT_EQ(clusters[0].uncommon_preds, (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(clusters[1].uncommon_preds, (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(clusters[2].uncommon_preds, (std::vector<std::uint32_t>{2}));
}

TEST(GreedyCluster, PartitionsAllPathsContiguously) {
  forest::Forest f = bolt::testing::small_forest(6, 4);
  forest::PredicateSpace space(f);
  const auto paths = enumerate_paths(f, space);
  for (std::size_t threshold : {1u, 2u, 4u, 8u, 16u}) {
    ClusterConfig cfg;
    cfg.threshold = threshold;
    const auto clusters = greedy_cluster(paths, cfg);
    std::size_t next = 0;
    for (const Cluster& c : clusters) {
      for (std::size_t idx : c.paths) {
        ASSERT_EQ(idx, next) << "threshold " << threshold;
        ++next;
      }
    }
    EXPECT_EQ(next, paths.size());
  }
}

TEST(GreedyCluster, CommonItemsPresentInEveryMemberPath) {
  forest::Forest f = bolt::testing::small_forest(8, 4);
  forest::PredicateSpace space(f);
  const auto paths = enumerate_paths(f, space);
  ClusterConfig cfg;
  cfg.threshold = 6;
  for (const Cluster& c : greedy_cluster(paths, cfg)) {
    for (std::size_t idx : c.paths) {
      const auto& items = paths[idx].items;
      for (PathItem common : c.common_items) {
        EXPECT_TRUE(std::find(items.begin(), items.end(), common) !=
                    items.end());
      }
    }
  }
}

TEST(GreedyCluster, UncommonCoversEveryNonCommonItem) {
  forest::Forest f = bolt::testing::small_forest(8, 4);
  forest::PredicateSpace space(f);
  const auto paths = enumerate_paths(f, space);
  ClusterConfig cfg;
  cfg.threshold = 4;
  for (const Cluster& c : greedy_cluster(paths, cfg)) {
    const std::set<PathItem> common(c.common_items.begin(),
                                    c.common_items.end());
    const std::set<std::uint32_t> uncommon(c.uncommon_preds.begin(),
                                           c.uncommon_preds.end());
    for (std::size_t idx : c.paths) {
      for (PathItem item : paths[idx].items) {
        if (!common.count(item)) {
          EXPECT_TRUE(uncommon.count(item_pred(item)))
              << "pred " << item_pred(item);
        }
      }
    }
  }
}

TEST(GreedyCluster, ThresholdOneProducesFineClusters) {
  forest::Forest f = bolt::testing::small_forest(6, 4);
  forest::PredicateSpace space(f);
  const auto paths = enumerate_paths(f, space);
  ClusterConfig fine;
  fine.threshold = 1;
  ClusterConfig coarse;
  coarse.threshold = 16;
  EXPECT_GE(greedy_cluster(paths, fine).size(),
            greedy_cluster(paths, coarse).size());
}

TEST(GreedyCluster, RespectsTableBitsCap) {
  forest::Forest f = bolt::testing::small_forest(10, 5);
  forest::PredicateSpace space(f);
  const auto paths = enumerate_paths(f, space);
  ClusterConfig cfg;
  cfg.threshold = 64;  // permissive pair threshold
  cfg.max_table_bits = 6;
  for (const Cluster& c : greedy_cluster(paths, cfg)) {
    EXPECT_LE(c.uncommon_preds.size(), 6u);
  }
}

TEST(GreedyCluster, SinglePathCluster) {
  std::vector<Path> paths;
  paths.push_back(make_path({{0, true}, {1, false}}));
  ClusterConfig cfg;
  const auto clusters = greedy_cluster(paths, cfg);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].common_items.size(), 2u);
  EXPECT_TRUE(clusters[0].uncommon_preds.empty());
}

TEST(GreedyCluster, EmptyInput) {
  EXPECT_TRUE(greedy_cluster({}, {}).empty());
}

TEST(DeriveStructure, EmptyPathCluster) {
  std::vector<Path> paths;
  Path p;
  p.votes = {1.0f, 0.0f};
  paths.push_back(p);  // zero-item path (single-leaf tree)
  Cluster c;
  c.paths = {0};
  derive_structure(paths, c);
  EXPECT_TRUE(c.common_items.empty());
  EXPECT_TRUE(c.uncommon_preds.empty());
}

}  // namespace
}  // namespace bolt::core
