// The safety property (paper footnote 1: "transformations preserve
// classification results for all inputs") — Bolt's aggregate votes must
// equal plain traversal's votes, input for input, across every
// configuration axis: clustering threshold, table strategy, ID-check mode,
// Bloom filter on/off, forest shape, and weighted (boosted) ensembles.
#include "bolt/builder.h"

#include <gtest/gtest.h>

#include "../helpers.h"
#include "bolt/engine.h"
#include "forest/boosted.h"

namespace bolt::core {
namespace {

struct SafetyCase {
  const char* name;
  std::size_t threshold;
  TableStrategy strategy;
  IdCheck id_check;
  bool bloom;
};

class BoltSafety : public ::testing::TestWithParam<SafetyCase> {};

void expect_vote_equivalence(const forest::Forest& forest,
                             const BoltConfig& cfg,
                             const data::Dataset& inputs) {
  const BoltForest bf = BoltForest::build(forest, cfg);
  BoltEngine engine(bf);
  std::vector<double> votes(forest.num_classes);
  for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
    const auto expected = forest.vote(inputs.row(i));
    engine.vote(inputs.row(i), votes);
    for (std::size_t c = 0; c < votes.size(); ++c) {
      ASSERT_NEAR(votes[c], expected[c], 1e-6)
          << "sample " << i << " class " << c;
    }
    ASSERT_EQ(engine.predict(inputs.row(i)), forest.predict(inputs.row(i)));
  }
}

TEST_P(BoltSafety, VotesEqualTraversalOnTestData) {
  const SafetyCase& p = GetParam();
  BoltConfig cfg;
  cfg.cluster.threshold = p.threshold;
  cfg.table.strategy = p.strategy;
  cfg.table.id_check = p.id_check;
  cfg.use_bloom = p.bloom;
  const forest::Forest forest = bolt::testing::small_forest(8, 4, 21);
  const data::Dataset inputs = bolt::testing::small_dataset(400, 22);
  expect_vote_equivalence(forest, cfg, inputs);
}

TEST_P(BoltSafety, VotesEqualTraversalOnRandomInputs) {
  // Random inputs stress paths the training distribution never visits —
  // exactly where don't-care expansion bugs would hide.
  const SafetyCase& p = GetParam();
  BoltConfig cfg;
  cfg.cluster.threshold = p.threshold;
  cfg.table.strategy = p.strategy;
  cfg.table.id_check = p.id_check;
  cfg.use_bloom = p.bloom;
  const forest::Forest forest = bolt::testing::small_forest(6, 5, 23);
  data::Dataset inputs(forest.num_features, forest.num_classes);
  util::Rng rng(24);
  for (int i = 0; i < 300; ++i) {
    std::vector<float> x(forest.num_features);
    for (auto& v : x) v = static_cast<float>(rng.uniform(-50.0, 200.0));
    inputs.add_row(x, 0);
  }
  expect_vote_equivalence(forest, cfg, inputs);
}

INSTANTIATE_TEST_SUITE_P(
    Axes, BoltSafety,
    ::testing::Values(
        SafetyCase{"thr1", 1, TableStrategy::kDisplacement, IdCheck::kExact,
                   false},
        SafetyCase{"thr2", 2, TableStrategy::kDisplacement, IdCheck::kExact,
                   false},
        SafetyCase{"thr4", 4, TableStrategy::kDisplacement, IdCheck::kExact,
                   false},
        SafetyCase{"thr8", 8, TableStrategy::kDisplacement, IdCheck::kExact,
                   false},
        SafetyCase{"thr16", 16, TableStrategy::kDisplacement, IdCheck::kExact,
                   false},
        SafetyCase{"seed_search", 4, TableStrategy::kSeedSearch,
                   IdCheck::kExact, false},
        SafetyCase{"bloom", 4, TableStrategy::kDisplacement, IdCheck::kExact,
                   true},
        SafetyCase{"bloom_seed", 2, TableStrategy::kSeedSearch,
                   IdCheck::kExact, true}),
    [](const auto& info) { return info.param.name; });

TEST(BoltBuilder, WeightedBoostedForestPreserved) {
  data::Dataset ds = bolt::testing::small_dataset(800, 31);
  forest::BoostConfig bcfg;
  bcfg.num_rounds = 6;
  const forest::Forest boosted = forest::train_boosted(ds, bcfg);

  const BoltForest bf = BoltForest::build(boosted, {});
  // Boosted weights are non-integral: the packed path must be off and the
  // float path exact.
  EXPECT_FALSE(bf.results().packed_available());
  BoltEngine engine(bf);
  std::vector<double> votes(boosted.num_classes);
  for (std::size_t i = 0; i < 200; ++i) {
    const auto expected = boosted.vote(ds.row(i));
    engine.vote(ds.row(i), votes);
    for (std::size_t c = 0; c < votes.size(); ++c) {
      ASSERT_NEAR(votes[c], expected[c], 1e-5);
    }
  }
}

TEST(BoltBuilder, PlainForestUsesPackedVotes) {
  const forest::Forest forest = bolt::testing::small_forest(8, 4);
  const BoltForest bf = BoltForest::build(forest, {});
  EXPECT_TRUE(bf.results().packed_available());
}

TEST(BoltBuilder, StatsAreConsistent) {
  const forest::Forest forest = bolt::testing::small_forest(8, 4);
  BoltConfig cfg;
  cfg.cluster.threshold = 4;
  const BoltForest bf = BoltForest::build(forest, cfg);
  const BuildStats& s = bf.stats();
  EXPECT_EQ(s.num_raw_paths, forest.total_leaves());
  EXPECT_LE(s.num_merged_paths, s.num_raw_paths);
  EXPECT_LE(s.num_clusters, s.num_merged_paths);
  EXPECT_GE(s.table_entries, s.num_merged_paths);  // expansion only grows
  EXPECT_GE(s.table_slots, s.table_entries);
  EXPECT_EQ(s.num_clusters, bf.dictionary().num_entries());
  EXPECT_GT(s.num_predicates, 0u);
  EXPECT_GE(s.distinct_results, 1u);
}

TEST(BoltBuilder, HigherThresholdFewerEntriesBiggerTable) {
  const forest::Forest forest = bolt::testing::small_forest(10, 5);
  BoltConfig fine;
  fine.cluster.threshold = 1;
  BoltConfig coarse;
  coarse.cluster.threshold = 12;
  const BoltForest a = BoltForest::build(forest, fine);
  const BoltForest b = BoltForest::build(forest, coarse);
  EXPECT_GE(a.dictionary().num_entries(), b.dictionary().num_entries());
  EXPECT_LE(a.stats().table_entries, b.stats().table_entries);
}

TEST(BoltBuilder, SingleLeafForest) {
  forest::Forest f;
  f.num_features = 3;
  f.num_classes = 2;
  std::vector<forest::TreeNode> nodes(1);
  nodes[0] = {forest::TreeNode::kLeaf, 0.0f, -1, -1, 1};
  f.trees.emplace_back(std::move(nodes));
  f.weights = {1.0};
  const BoltForest bf = BoltForest::build(f, {});
  BoltEngine engine(bf);
  const float x[3] = {1, 2, 3};
  EXPECT_EQ(engine.predict(x), 1);
}

TEST(BoltBuilder, TableSizeCapThrows) {
  const forest::Forest forest = bolt::testing::small_forest(10, 5);
  BoltConfig cfg;
  cfg.cluster.threshold = 14;
  cfg.table.max_slots = 64;  // absurdly small: must refuse, not corrupt
  EXPECT_THROW(BoltForest::build(forest, cfg), std::runtime_error);
}

TEST(BoltBuilder, MemoryAccountingIsPositiveAndComposite) {
  const forest::Forest forest = bolt::testing::small_forest(6, 4);
  const BoltForest bf = BoltForest::build(forest, {});
  EXPECT_GE(bf.memory_bytes(),
            bf.dictionary().memory_bytes() + bf.table().memory_bytes());
}

TEST(BoltBuilder, IdenticalTreesCollapse) {
  // A forest of two identical trees compresses to the path set of one.
  forest::Forest f;
  f.num_features = 2;
  f.num_classes = 3;
  f.trees.push_back(bolt::testing::tiny_tree());
  f.trees.push_back(bolt::testing::tiny_tree());
  f.weights = {1.0, 1.0};
  const BoltForest bf = BoltForest::build(f, {});
  EXPECT_EQ(bf.stats().num_merged_paths, 3u);
  EXPECT_EQ(bf.stats().num_raw_paths, 6u);

  BoltEngine engine(bf);
  util::Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    const auto x = bolt::testing::random_sample(rng, 2);
    EXPECT_EQ(engine.predict(x), f.predict(x));
  }
}

}  // namespace
}  // namespace bolt::core
