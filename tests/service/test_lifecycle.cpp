// Accept-path and lifecycle regression coverage: the historical bugs were
// a listen fd (and stale socket file) leaked when start() threw partway, a
// connection accepted in the stop() window spawning an uncovered handler,
// and accept_loop() dying silently on transient errno (EMFILE above all).
// Each test here pins the fixed behaviour on both front ends where it
// applies.
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "../helpers.h"
#include "service/net.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/unix_socket.h"

namespace bolt::service {
namespace {

std::string temp_socket(const char* tag) {
  return ::testing::TempDir() + "/bolt_lc_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

std::size_t open_fd_count() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++n;
  }
  return n;  // includes the iterator's own fd, identically on every call
}

std::uint64_t stat_value(const std::string& text, const std::string& name) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    if (text.compare(pos, name.size(), name) == 0 &&
        pos + name.size() < eol && text[pos + name.size()] == ' ') {
      return std::stoull(text.substr(pos + name.size() + 1, eol - pos));
    }
    pos = eol + 1;
  }
  ADD_FAILURE() << "metric not found: " << name << "\n" << text;
  return 0;
}

class LifecycleFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    forest_ = bolt::testing::small_forest(6, 4, 91);
    inputs_ = bolt::testing::small_dataset(50, 92);
    artifact_ = std::make_unique<core::BoltForest>(
        core::BoltForest::build(forest_, {}));
  }

  std::function<std::unique_ptr<engines::Engine>()> factory() {
    return [this] { return std::make_unique<core::BoltEngine>(*artifact_); };
  }

  forest::Forest forest_;
  data::Dataset inputs_{0, 0};
  std::unique_ptr<core::BoltForest> artifact_;
};

// start() that throws partway (TCP bind fails after the UNIX listener is
// up) must release every fd and the socket file it created — and the same
// server object must be startable again once the conflict clears.
TEST_F(LifecycleFixture, FailedStartLeaksNothingAndCanRetry) {
  // Occupy a port so the victim's TCP bind fails deterministically.
  std::uint16_t port = 0;
  const int blocker =
      detail::make_tcp_listener(0, /*backlog=*/4, port);
  ASSERT_GE(blocker, 0);

  const std::string path = temp_socket("failed_start");
  ServerOptions opts;
  opts.tcp_port = port;
  InferenceServer server(path, factory(), opts);

  const std::size_t fds_before = open_fd_count();
  EXPECT_THROW(server.start(), std::runtime_error);
  EXPECT_EQ(open_fd_count(), fds_before) << "failed start leaked an fd";
  EXPECT_FALSE(std::filesystem::exists(path))
      << "failed start left a stale socket file";

  ::close(blocker);  // conflict gone: the same object starts cleanly now
  server.start();
  InferenceClient client(path);
  EXPECT_EQ(client.classify(inputs_.row(0)).predicted_class,
            forest_.predict(inputs_.row(0)));
  InferenceClient tcp(Endpoint::tcp("127.0.0.1", port));
  EXPECT_EQ(tcp.classify(inputs_.row(1)).predicted_class,
            forest_.predict(inputs_.row(1)));
  server.stop();
  EXPECT_FALSE(std::filesystem::exists(path));
}

// The event-loop start path allocates more (epoll, eventfd, worker pool);
// same no-leak contract.
TEST_F(LifecycleFixture, FailedEventLoopStartLeaksNothing) {
  std::uint16_t port = 0;
  const int blocker = detail::make_tcp_listener(0, /*backlog=*/4, port);
  ASSERT_GE(blocker, 0);

  ServerOptions opts;
  opts.front_end = FrontEnd::kEventLoop;
  opts.tcp_port = port;
  InferenceServer server(temp_socket("failed_el"), factory(), opts);
  const std::size_t fds_before = open_fd_count();
  EXPECT_THROW(server.start(), std::runtime_error);
  EXPECT_EQ(open_fd_count(), fds_before);
  ::close(blocker);
}

// Connections racing stop(): clients hammer connect/classify/close while
// the server stops and restarts. No crash, no wedge, and after the final
// stop the handler count must drain to zero (the historical race left a
// handler running on a connection accepted after running_ flipped).
TEST_F(LifecycleFixture, AcceptVersusStopChurn) {
  for (const FrontEnd fe : {FrontEnd::kThreaded, FrontEnd::kEventLoop}) {
    const std::string path = temp_socket(
        fe == FrontEnd::kThreaded ? "churn_thr" : "churn_el");
    ServerOptions opts;
    opts.front_end = fe;
    InferenceServer server(path, factory(), opts);

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> answered{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
      clients.emplace_back([&] {
        while (!done.load(std::memory_order_acquire)) {
          try {
            ClientOptions copts;
            copts.connect_timeout_ms = 50;
            copts.io_timeout_ms = 2000;
            InferenceClient client(path, copts);
            if (client.classify(inputs_.row(0)).predicted_class ==
                forest_.predict(inputs_.row(0))) {
              answered.fetch_add(1, std::memory_order_relaxed);
            }
          } catch (const std::exception&) {
            // Connect/IO failures while the server is down are the point.
          }
        }
      });
    }
    for (int round = 0; round < 5; ++round) {
      server.start();
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      server.stop();
      EXPECT_EQ(server.active_handler_count(), 0u)
          << "handler survived stop() on round " << round;
    }
    done.store(true, std::memory_order_release);
    for (auto& t : clients) t.join();
    EXPECT_GT(answered.load(), 0u) << "churn never got a single answer";
  }
}

// Drive accept into EMFILE by clamping RLIMIT_NOFILE to the fds already
// open. The fixed accept path must not die: it counts the error, releases
// the emergency spare fd to shed the pending connection with a clean EOF,
// and resumes accepting once the pressure clears.
class FdExhaustionTest : public LifecycleFixture,
                         public ::testing::WithParamInterface<FrontEnd> {};

TEST_P(FdExhaustionTest, AcceptSurvivesAndShedsCleanly) {
  const std::string path = temp_socket(
      GetParam() == FrontEnd::kThreaded ? "emfile_thr" : "emfile_el");
  ServerOptions opts;
  opts.front_end = GetParam();
  InferenceServer server(path, factory(), opts);
  server.start();

  // Sanity round trip, and keep this client's fd alive across the squeeze.
  InferenceClient warm(path);
  EXPECT_GE(warm.classify(inputs_.row(0)).predicted_class, 0);

  // Pre-create the sockets used during the squeeze: socket() needs a free
  // slot, connect() does not. The blocking accept loop reserves its result
  // fd on syscall entry — before it sleeps — so the first connection after
  // the squeeze can still be accepted with that pre-squeeze reservation;
  // `sacrifice` absorbs it and `starved` is the one that must hit EMFILE.
  const int sacrifice = detail::make_unix_socket();
  const int starved = detail::make_unix_socket();
  ASSERT_GE(sacrifice, 0);
  ASSERT_GE(starved, 0);
  timeval tv{10, 0};  // fail loudly instead of hanging if the shed breaks
  ::setsockopt(starved, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_un addr = detail::make_addr(path);

  // RLIMIT_NOFILE caps fd *numbers*, and closed fds leave reusable holes
  // below any cap — so clamp, then burn every remaining slot.
  rlimit old_limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &old_limit), 0);
  rlimit squeezed = old_limit;
  squeezed.rlim_cur = open_fd_count() + 4;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &squeezed), 0);
  std::vector<int> fillers;
  for (int fd; (fd = ::open("/dev/null", O_RDONLY)) >= 0;) {
    fillers.push_back(fd);
  }
  ASSERT_EQ(errno, EMFILE);

  EXPECT_EQ(::connect(sacrifice, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(
      ::connect(starved, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
      0);
  // accept() hits EMFILE; the spare-fd dance must shed us with an EOF
  // instead of leaving the connection parked in the backlog forever.
  std::uint8_t byte;
  const ssize_t n = ::recv(starved, &byte, 1, 0);
  EXPECT_EQ(n, 0) << "expected clean shed EOF, got "
                  << (n < 0 ? std::strerror(errno) : "data");
  ::close(starved);
  ::close(sacrifice);
  for (int fd : fillers) ::close(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &old_limit), 0);

  // Pressure gone: the accept loop is still alive and serving.
  InferenceClient after(path);
  EXPECT_EQ(after.classify(inputs_.row(1)).predicted_class,
            forest_.predict(inputs_.row(1)));
  EXPECT_GE(stat_value(after.stats(), "service.accept_errors"), 1u);
  server.stop();
}

INSTANTIATE_TEST_SUITE_P(BothFrontEnds, FdExhaustionTest,
                         ::testing::Values(FrontEnd::kThreaded,
                                           FrontEnd::kEventLoop));

// listen_backlog is honored end to end: a burst larger than the old
// hardcoded backlog of 16 completes without a refused connection.
TEST_F(LifecycleFixture, ConfigurableBacklogAbsorbsConnectBurst) {
  const std::string path = temp_socket("backlog");
  ServerOptions opts;
  opts.listen_backlog = 512;
  opts.max_connections = 512;
  InferenceServer server(path, factory(), opts);
  server.start();

  // Raw connects arrive far faster than the threaded accept loop drains
  // them, so the burst genuinely sits in the kernel backlog.
  std::vector<int> fds;
  for (int i = 0; i < 128; ++i) {
    const int fd = detail::make_unix_socket();
    ASSERT_GE(fd, 0);
    sockaddr_un addr = detail::make_addr(path);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0)
        << "connect " << i << " refused: " << std::strerror(errno);
    fds.push_back(fd);
  }
  for (int fd : fds) ::close(fd);
  server.stop();
}

TEST_F(LifecycleFixture, RepeatedStartStopIsStable) {
  const std::string path = temp_socket("cycle");
  InferenceServer server(path, factory(), ServerOptions{});
  for (int i = 0; i < 10; ++i) {
    server.start();
    InferenceClient client(path);
    EXPECT_EQ(client.classify(inputs_.row(0)).predicted_class,
              forest_.predict(inputs_.row(0)));
    server.stop();
    EXPECT_FALSE(std::filesystem::exists(path));
  }
}

}  // namespace
}  // namespace bolt::service
