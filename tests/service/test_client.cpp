// InferenceClient connection-establishment tests: single-shot connect
// semantics (the historical default), bounded retry-with-backoff against a
// server that binds its socket late (the CI race the retry exists for),
// budget exhaustion, and per-op I/O deadlines against a server that
// accepts but never answers.
#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "../helpers.h"
#include "bolt/engine.h"
#include "service/server.h"

namespace bolt::service {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

std::string temp_socket(const char* tag) {
  return ::testing::TempDir() + "/bolt_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// Arity-3 engine answering class = (int)row[0]; enough to prove a
/// round-trip reached a real server.
class EchoEngine final : public engines::Engine {
 public:
  std::string_view name() const override { return "echo"; }
  std::size_t num_features() const override { return 3; }
  int predict(std::span<const float> x) override {
    return static_cast<int>(x[0]);
  }
  int predict_traced(std::span<const float> x, archsim::Machine&) override {
    return predict(x);
  }
  void vote(std::span<const float>, std::span<double> out) override {
    for (auto& v : out) v = 0.0;
  }
  void predict_batch(std::span<const float> rows, std::size_t num_rows,
                     std::size_t row_stride, std::span<int> out) override {
    for (std::size_t r = 0; r < num_rows; ++r) {
      out[r] = static_cast<int>(rows[r * row_stride]);
    }
  }
  std::size_t memory_bytes() const override { return 0; }
};

std::function<std::unique_ptr<engines::Engine>()> echo_factory() {
  return [] { return std::make_unique<EchoEngine>(); };
}

TEST(ClientConnect, DefaultOptionsFailImmediatelyWhenSocketMissing) {
  const std::string path = temp_socket("absent");
  const auto t0 = Clock::now();
  EXPECT_THROW(InferenceClient client(path), std::runtime_error);
  // Zero budget = one attempt, no sleeping: this is the "is it up?" probe
  // behaviour every pre-existing caller relied on.
  EXPECT_LT(Clock::now() - t0, 1s);
}

TEST(ClientConnect, RetriesUntilLateServerBinds) {
  const std::string path = temp_socket("late");
  // The server starts well after the client begins connecting — the
  // loadgen/CI startup race, compressed.
  std::unique_ptr<InferenceServer> server;
  std::thread starter([&] {
    std::this_thread::sleep_for(200ms);
    server = std::make_unique<InferenceServer>(path, echo_factory(),
                                               ServerOptions{});
    server->start();
  });

  ClientOptions opts;
  opts.connect_timeout_ms = 5000;
  InferenceClient client(path, opts);
  starter.join();
  // The first attempts ran against a missing socket, so the client must
  // have retried at least once before converging.
  EXPECT_GT(client.connect_attempts(), 1u);
  const auto resp = client.classify(std::vector<float>{7.0f, 0.0f, 0.0f});
  EXPECT_EQ(resp.predicted_class, 7);
  server->stop();
}

TEST(ClientConnect, GivesUpWhenBudgetExhausted) {
  const std::string path = temp_socket("never");
  ClientOptions opts;
  opts.connect_timeout_ms = 150;
  const auto t0 = Clock::now();
  EXPECT_THROW(InferenceClient client(path, opts), std::runtime_error);
  const auto elapsed = Clock::now() - t0;
  // Must have honoured the budget: not instant, not unbounded.
  EXPECT_LT(elapsed, 5s);
}

TEST(ClientConnect, SingleAttemptWhenServerAlreadyUp) {
  const std::string path = temp_socket("up");
  InferenceServer server(path, echo_factory(), ServerOptions{});
  server.start();
  ClientOptions opts;
  opts.connect_timeout_ms = 5000;
  InferenceClient client(path, opts);
  EXPECT_EQ(client.connect_attempts(), 1u);
  server.stop();
}

TEST(ClientConnect, IoDeadlineSurfacesAsReadTimeout) {
  // A raw listening socket that accepts the connection (kernel backlog)
  // but never reads or answers: without a deadline classify() would hang
  // forever; with one it must throw ReadTimeoutError promptly.
  const std::string path = temp_socket("mute");
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 4), 0);

  ClientOptions opts;
  opts.io_timeout_ms = 100;
  InferenceClient client(path, opts);
  const auto t0 = Clock::now();
  EXPECT_THROW(client.classify(std::vector<float>{1.0f, 0.0f, 0.0f}),
               ReadTimeoutError);
  EXPECT_LT(Clock::now() - t0, 5s);
  ::close(listener);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace bolt::service
