// Event-loop front end + TCP transport coverage (docs/SERVING.md
// "Transports and front ends"): end-to-end ops over both transports,
// bit-identical responses vs the threaded front end, frame fragmentation
// and partial-write handling, idle reaping, and the bounded-thread
// guarantee under 1k+ concurrent connections.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "../helpers.h"
#include "service/net.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/unix_socket.h"

namespace bolt::service {
namespace {

std::string temp_socket(const char* tag) {
  return ::testing::TempDir() + "/bolt_el_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

std::uint64_t stat_value(const std::string& text, const std::string& name) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    if (text.compare(pos, name.size(), name) == 0 &&
        pos + name.size() < eol && text[pos + name.size()] == ' ') {
      return std::stoull(text.substr(pos + name.size() + 1, eol - pos));
    }
    pos = eol + 1;
  }
  ADD_FAILURE() << "metric not found: " << name << "\n" << text;
  return 0;
}

ServerOptions event_loop_options() {
  ServerOptions opts;
  opts.front_end = FrontEnd::kEventLoop;
  opts.workers = 2;
  return opts;
}

int raw_unix_connect(const std::string& path) {
  const int fd = detail::make_unix_socket();
  sockaddr_un addr = detail::make_addr(path);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int raw_tcp_connect(std::int32_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr =
      detail::make_inet_addr("127.0.0.1", static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  detail::set_tcp_nodelay(fd);
  return fd;
}

std::vector<std::uint8_t> with_length_prefix(
    std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::memcpy(frame.data(), &len, 4);
  std::memcpy(frame.data() + 4, payload.data(), payload.size());
  return frame;
}

void send_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << "send: " << std::strerror(errno);
    off += static_cast<std::size_t>(n);
  }
}

/// One raw request/response round trip; returns the response payload
/// (no length prefix) so callers can compare bytes across transports.
std::vector<std::uint8_t> raw_round_trip(
    int fd, std::span<const std::uint8_t> request_payload) {
  send_all(fd, with_length_prefix(request_payload));
  std::vector<std::uint8_t> resp;
  if (!read_frame(fd, resp)) ADD_FAILURE() << "peer closed mid-response";
  return resp;
}

class EventLoopFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    forest_ = bolt::testing::small_forest(6, 4, 91);
    inputs_ = bolt::testing::small_dataset(100, 92);
    artifact_ = std::make_unique<core::BoltForest>(
        core::BoltForest::build(forest_, {}));
  }

  std::function<std::unique_ptr<engines::Engine>()> factory() {
    return [this] { return std::make_unique<core::BoltEngine>(*artifact_); };
  }

  forest::Forest forest_;
  data::Dataset inputs_{0, 0};
  std::unique_ptr<core::BoltForest> artifact_;
};

TEST_F(EventLoopFixture, EndToEndAllOps) {
  const std::string path = temp_socket("e2e");
  ServerOptions opts = event_loop_options();
  opts.trace.slow_threshold_us = 1;  // arm the slow ring
  InferenceServer server(path, factory(), opts);
  server.start();

  InferenceClient client(path);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(client.classify(inputs_.row(i)).predicted_class,
              forest_.predict(inputs_.row(i)));
  }
  const Response explained = client.classify(inputs_.row(0), /*explain=*/true);
  EXPECT_EQ(explained.predicted_class, forest_.predict(inputs_.row(0)));
  EXPECT_FALSE(explained.salient.empty());
  const Response traced = client.classify_traced(inputs_.row(1));
  EXPECT_EQ(traced.predicted_class, forest_.predict(inputs_.row(1)));
  EXPECT_TRUE(traced.traced);
  const auto classes = client.classify_batch(
      {inputs_.raw_features().data(), 8 * inputs_.num_features()}, 8,
      inputs_.num_features());
  ASSERT_EQ(classes.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(classes[i], forest_.predict(inputs_.row(i)));
  }
  EXPECT_FALSE(client.slow(/*json=*/true).empty());

  const std::string stats = client.stats();
  EXPECT_EQ(stat_value(stats, "service.requests"), 42 + 8u);
  EXPECT_EQ(stat_value(stats, "service.batch_requests"), 1u);
  server.stop();
  EXPECT_EQ(server.active_handler_count(), 0u);
}

TEST_F(EventLoopFixture, TcpTransportServesBesideUnix) {
  const std::string path = temp_socket("tcp");
  ServerOptions opts = event_loop_options();
  opts.tcp_port = 0;  // kernel-assigned ephemeral port
  InferenceServer server(path, factory(), opts);
  server.start();
  ASSERT_GT(server.tcp_port(), 0);

  InferenceClient tcp(Endpoint::tcp(
      "127.0.0.1", static_cast<std::uint16_t>(server.tcp_port())));
  InferenceClient unx(path);
  for (std::size_t i = 0; i < 30; ++i) {
    const int want = forest_.predict(inputs_.row(i));
    EXPECT_EQ(tcp.classify(inputs_.row(i)).predicted_class, want);
    EXPECT_EQ(unx.classify(inputs_.row(i)).predicted_class, want);
  }
  EXPECT_FALSE(tcp.stats().empty());
  server.stop();
}

TEST_F(EventLoopFixture, EndpointParsing) {
  const Endpoint ep = Endpoint::parse_tcp("localhost:9000");
  EXPECT_EQ(ep.host, "localhost");
  EXPECT_EQ(ep.port, 9000);
  EXPECT_THROW(Endpoint::parse_tcp("nocolon"), std::runtime_error);
  EXPECT_THROW(Endpoint::parse_tcp("host:"), std::runtime_error);
  EXPECT_THROW(Endpoint::parse_tcp("host:0"), std::runtime_error);
  EXPECT_THROW(Endpoint::parse_tcp("host:99999"), std::runtime_error);
  EXPECT_THROW(Endpoint::parse_tcp("host:12ab"), std::runtime_error);
}

// The acceptance bar for the refactor: every transport/front-end pairing
// answers CLASSIFY / EXPLAIN / BATCH with byte-identical payloads.
TEST_F(EventLoopFixture, ResponsesBitIdenticalAcrossFrontEnds) {
  const std::string threaded_path = temp_socket("ident_thr");
  InferenceServer threaded(threaded_path, factory(), ServerOptions{});
  threaded.start();

  const std::string el_path = temp_socket("ident_el");
  ServerOptions opts = event_loop_options();
  opts.tcp_port = 0;
  InferenceServer event_loop(el_path, factory(), opts);
  event_loop.start();

  std::vector<std::vector<std::uint8_t>> requests;
  for (std::size_t i = 0; i < 5; ++i) {
    Request req;
    req.features.assign(inputs_.row(i).begin(), inputs_.row(i).end());
    if (i == 4) req.flags = kFlagExplain;
    std::vector<std::uint8_t> payload;
    encode_request(req, payload);
    requests.push_back(std::move(payload));
  }
  BatchRequest breq;
  for (std::size_t i = 0; i < 6; ++i) breq.add_row(inputs_.row(i));
  requests.emplace_back();
  encode_batch_request(breq, requests.back());

  const int fd_thr = raw_unix_connect(threaded_path);
  const int fd_el = raw_unix_connect(el_path);
  const int fd_tcp = raw_tcp_connect(event_loop.tcp_port());
  ASSERT_GE(fd_thr, 0);
  ASSERT_GE(fd_el, 0);
  ASSERT_GE(fd_tcp, 0);
  for (const auto& payload : requests) {
    const auto want = raw_round_trip(fd_thr, payload);
    EXPECT_EQ(raw_round_trip(fd_el, payload), want);
    EXPECT_EQ(raw_round_trip(fd_tcp, payload), want);
  }
  ::close(fd_thr);
  ::close(fd_el);
  ::close(fd_tcp);
  threaded.stop();
  event_loop.stop();
}

// A frame dribbled a few bytes at a time must assemble incrementally, and
// two frames written back-to-back in one send must both be answered
// (read-buffer compaction keeps the second frame).
TEST_F(EventLoopFixture, FragmentedAndPipelinedFrames) {
  const std::string path = temp_socket("frag");
  InferenceServer server(path, factory(), event_loop_options());
  server.start();

  Request req;
  req.features.assign(inputs_.row(3).begin(), inputs_.row(3).end());
  std::vector<std::uint8_t> payload;
  encode_request(req, payload);
  const auto frame = with_length_prefix(payload);

  const int fd = raw_unix_connect(path);
  ASSERT_GE(fd, 0);
  for (std::size_t off = 0; off < frame.size(); off += 3) {
    const std::size_t n = std::min<std::size_t>(3, frame.size() - off);
    send_all(fd, {frame.data() + off, n});
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<std::uint8_t> resp;
  ASSERT_TRUE(read_frame(fd, resp));
  EXPECT_EQ(decode_response(resp).predicted_class,
            forest_.predict(inputs_.row(3)));

  // Pipelined: both frames in one send; protocol is serial per connection,
  // so the answers come back in order.
  std::vector<std::uint8_t> two = frame;
  two.insert(two.end(), frame.begin(), frame.end());
  send_all(fd, two);
  for (int k = 0; k < 2; ++k) {
    ASSERT_TRUE(read_frame(fd, resp));
    EXPECT_EQ(decode_response(resp).predicted_class,
              forest_.predict(inputs_.row(3)));
  }
  ::close(fd);
  server.stop();
}

// A response bigger than the peer's receive window forces a short write;
// the loop must park the remainder on EPOLLOUT and finish when the client
// finally drains. A BATCH over every row with a deliberately tiny client
// receive buffer and a delayed first read exercises exactly that.
TEST_F(EventLoopFixture, PartialWritesCompleteLargeResponses) {
  const std::string path = temp_socket("partial");
  ServerOptions opts = event_loop_options();
  opts.tcp_port = 0;
  InferenceServer server(path, factory(), opts);
  server.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  int tiny = 256;  // the kernel clamps to its floor, still far below the frame
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  sockaddr_in addr = detail::make_inet_addr(
      "127.0.0.1", static_cast<std::uint16_t>(server.tcp_port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  BatchRequest breq;
  for (std::size_t r = 0; r < 40000; ++r) {
    breq.add_row(inputs_.row(r % inputs_.num_rows()));
  }
  std::vector<std::uint8_t> payload;
  encode_batch_request(breq, payload);
  send_all(fd, with_length_prefix(payload));
  // Let the server hit the short write and park before we start draining.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::vector<std::uint8_t> resp;
  ASSERT_TRUE(read_frame(fd, resp));
  const BatchResponse bresp = decode_batch_response(resp);
  ASSERT_EQ(bresp.classes.size(), 40000u);
  for (std::size_t r = 0; r < 40000; ++r) {
    EXPECT_EQ(bresp.classes[r],
              forest_.predict(inputs_.row(r % inputs_.num_rows())));
  }
  ::close(fd);
  server.stop();
}

// The point of the front end: >1k concurrent connections without >1k
// threads. Thread count is read from /proc/self/task (the server runs in
// this process; idle raw clients add fds, not threads).
TEST_F(EventLoopFixture, ThousandIdleConnectionsBoundedThreads) {
  const std::string path = temp_socket("kilo");
  ServerOptions opts = event_loop_options();
  opts.max_connections = 1300;
  InferenceServer server(path, factory(), opts);
  server.start();

  const auto thread_count = [] {
    std::size_t n = 0;
    for ([[maybe_unused]] const auto& e :
         std::filesystem::directory_iterator("/proc/self/task")) {
      ++n;
    }
    return n;
  };
  const std::size_t before = thread_count();

  std::vector<int> fds;
  for (int i = 0; i < 1100; ++i) {
    const int fd = raw_unix_connect(path);
    ASSERT_GE(fd, 0) << "connect " << i << ": " << std::strerror(errno);
    fds.push_back(fd);
  }
  // Wait for the loop to register them all (accept happens on one thread).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.active_handler_count() < fds.size() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.active_handler_count(), fds.size());
  // The whole point: connection count grew by 1100, thread count did not.
  EXPECT_LE(thread_count(), before + 2);

  // The server still answers new work while holding them all open.
  InferenceClient client(path);
  EXPECT_EQ(client.classify(inputs_.row(0)).predicted_class,
            forest_.predict(inputs_.row(0)));

  for (int fd : fds) ::close(fd);
  while (server.active_handler_count() > 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LE(server.active_handler_count(), 1u);  // just the live client
  server.stop();
  EXPECT_EQ(server.active_handler_count(), 0u);
}

TEST_F(EventLoopFixture, IdleConnectionsReaped) {
  const std::string path = temp_socket("reap");
  ServerOptions opts = event_loop_options();
  opts.idle_timeout_ms = 100;
  InferenceServer server(path, factory(), opts);
  server.start();

  const int fd = raw_unix_connect(path);
  ASSERT_GE(fd, 0);
  // Never send a frame: the loop's timer (not SO_RCVTIMEO — there is no
  // blocked thread to time out) must close us.
  std::uint8_t byte;
  const ssize_t n = ::recv(fd, &byte, 1, 0);
  EXPECT_EQ(n, 0) << "expected EOF from idle reap";
  ::close(fd);

  InferenceClient client(path);
  const std::string stats = client.stats();
  EXPECT_GE(stat_value(stats, "service.idle_timeouts"), 1u);
  server.stop();
}

TEST_F(EventLoopFixture, SchedulerBatchesAcrossConnections) {
  const std::string path = temp_socket("sched");
  ServerOptions opts = event_loop_options();
  opts.scheduler.enabled = true;
  opts.scheduler.max_batch_size = 8;
  opts.scheduler.max_queue_delay_us = 200;
  InferenceServer server(path, factory(), opts);
  server.start();

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      InferenceClient client(path);
      for (std::size_t i = c; i < 80; i += 4) {
        if (client.classify(inputs_.row(i)).predicted_class !=
            forest_.predict(inputs_.row(i))) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), 80u);
  server.stop();
}

TEST_F(EventLoopFixture, RestartsOnSamePathAndPort) {
  const std::string path = temp_socket("restart");
  ServerOptions opts = event_loop_options();
  opts.tcp_port = 0;
  InferenceServer first(path, factory(), opts);
  first.start();
  const std::int32_t port = first.tcp_port();
  {
    InferenceClient client(path);
    EXPECT_GE(client.classify(inputs_.row(0)).predicted_class, 0);
  }
  first.stop();

  opts.tcp_port = port;  // rebind the same port through TIME_WAIT
  InferenceServer second(path, factory(), opts);
  second.start();
  InferenceClient tcp(
      Endpoint::tcp("127.0.0.1", static_cast<std::uint16_t>(port)));
  EXPECT_EQ(tcp.classify(inputs_.row(1)).predicted_class,
            forest_.predict(inputs_.row(1)));
  second.stop();
}

TEST_F(EventLoopFixture, MalformedFrameDropsOnlyThatConnection) {
  const std::string path = temp_socket("malformed");
  InferenceServer server(path, factory(), event_loop_options());
  server.start();

  const int bad = raw_unix_connect(path);
  ASSERT_GE(bad, 0);
  std::vector<std::uint8_t> junk(32, 0xab);
  send_all(bad, with_length_prefix(junk));
  std::uint8_t byte;
  EXPECT_EQ(::recv(bad, &byte, 1, 0), 0) << "malformed peer must be dropped";
  ::close(bad);

  // An oversized length prefix is rejected before any allocation.
  const int huge = raw_unix_connect(path);
  ASSERT_GE(huge, 0);
  const std::uint32_t len = kMaxFrameBytes + 1;
  std::vector<std::uint8_t> prefix(4);
  std::memcpy(prefix.data(), &len, 4);
  send_all(huge, prefix);
  EXPECT_EQ(::recv(huge, &byte, 1, 0), 0) << "oversized frame must drop";
  ::close(huge);

  InferenceClient client(path);
  EXPECT_EQ(client.classify(inputs_.row(0)).predicted_class,
            forest_.predict(inputs_.row(0)));
  EXPECT_GE(stat_value(client.stats(), "service.malformed_requests"), 1u);
  server.stop();
}

TEST_F(EventLoopFixture, EofMidFrameCleansUp) {
  const std::string path = temp_socket("eof");
  InferenceServer server(path, factory(), event_loop_options());
  server.start();

  Request req;
  req.features.assign(inputs_.row(0).begin(), inputs_.row(0).end());
  std::vector<std::uint8_t> payload;
  encode_request(req, payload);
  const auto frame = with_length_prefix(payload);
  const int fd = raw_unix_connect(path);
  ASSERT_GE(fd, 0);
  send_all(fd, {frame.data(), frame.size() / 2});
  ::close(fd);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.active_handler_count() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server.active_handler_count(), 0u);
  server.stop();
}

}  // namespace
}  // namespace bolt::service
