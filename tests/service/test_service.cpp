#include "service/server.h"

#include <gtest/gtest.h>

#include <memory>

#include "../helpers.h"
#include "baselines/ranger_engine.h"
#include "service/protocol.h"

namespace bolt::service {
namespace {

std::string temp_socket(const char* tag) {
  return ::testing::TempDir() + "/bolt_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// Value of `name` in a STATS text dump (`name 123` or `name count=123 ...`
/// lines — `field` selects a key=value field, empty reads the plain value).
std::uint64_t stat_value(const std::string& text, const std::string& name,
                         const std::string& field = "") {
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    if (text.compare(pos, name.size(), name) == 0 &&
        pos + name.size() < eol && text[pos + name.size()] == ' ') {
      const std::string line = text.substr(pos, eol - pos);
      std::string token = field.empty() ? line.substr(name.size() + 1)
                                        : line.substr(line.find(field + "=") +
                                                      field.size() + 1);
      return std::stoull(token);
    }
    pos = eol + 1;
  }
  ADD_FAILURE() << "metric not found: " << name << "\n" << text;
  return 0;
}

TEST(Protocol, RequestRoundTrip) {
  Request req;
  req.flags = kFlagExplain;
  req.features = {1.5f, -2.0f, 3.25f};
  std::vector<std::uint8_t> buf;
  encode_request(req, buf);
  const Request back = decode_request(buf);
  EXPECT_EQ(back.flags, kFlagExplain);
  EXPECT_EQ(back.features, req.features);
}

TEST(Protocol, ResponseRoundTrip) {
  Response resp;
  resp.predicted_class = 7;
  resp.salient = {{3, 1.5}, {100, 0.25}};
  std::vector<std::uint8_t> buf;
  encode_response(resp, buf);
  const Response back = decode_response(buf);
  EXPECT_EQ(back.predicted_class, 7);
  ASSERT_EQ(back.salient.size(), 2u);
  EXPECT_EQ(back.salient[0].feature, 3u);
  EXPECT_EQ(back.salient[1].score, 0.25);
}

TEST(Protocol, RejectsBadMagic) {
  std::vector<std::uint8_t> buf(16, 0xab);
  EXPECT_THROW(decode_request(buf), std::runtime_error);
  EXPECT_THROW(decode_response(buf), std::runtime_error);
}

TEST(Protocol, RejectsTruncation) {
  Request req;
  req.features = {1.0f, 2.0f};
  std::vector<std::uint8_t> buf;
  encode_request(req, buf);
  buf.pop_back();
  EXPECT_THROW(decode_request(buf), std::runtime_error);
}

TEST(Protocol, StatsRoundTrip) {
  StatsRequest req;
  req.flags = kStatsFlagJson;
  std::vector<std::uint8_t> buf;
  encode_stats_request(req, buf);
  EXPECT_EQ(frame_magic(buf), kStatsRequestMagic);
  EXPECT_EQ(decode_stats_request(buf).flags, kStatsFlagJson);

  StatsResponse resp;
  resp.body = "service.requests 12\n";
  buf.clear();
  encode_stats_response(resp, buf);
  EXPECT_EQ(frame_magic(buf), kStatsResponseMagic);
  EXPECT_EQ(decode_stats_response(buf).body, resp.body);
}

TEST(Protocol, StatsRejectsMalformed) {
  std::vector<std::uint8_t> buf;
  encode_stats_request({}, buf);
  buf.push_back(0);  // trailing byte
  EXPECT_THROW(decode_stats_request(buf), std::runtime_error);

  buf.clear();
  encode_stats_response({"abc"}, buf);
  buf.pop_back();  // body shorter than declared
  EXPECT_THROW(decode_stats_response(buf), std::runtime_error);

  EXPECT_EQ(frame_magic(std::vector<std::uint8_t>{1, 2}), 0u);
  // A classification frame must not be mistaken for a STATS frame.
  Request req;
  req.features = {1.0f};
  buf.clear();
  encode_request(req, buf);
  EXPECT_EQ(frame_magic(buf), kRequestMagic);
}

class ServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    forest_ = bolt::testing::small_forest(6, 4, 91);
    inputs_ = bolt::testing::small_dataset(100, 92);
    artifact_ = std::make_unique<core::BoltForest>(
        core::BoltForest::build(forest_, {}));
  }

  forest::Forest forest_;
  data::Dataset inputs_{0, 0};
  std::unique_ptr<core::BoltForest> artifact_;
};

TEST_F(ServiceFixture, EndToEndClassification) {
  const std::string path = temp_socket("e2e");
  InferenceServer server(
      path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); });
  server.start();

  InferenceClient client(path);
  for (std::size_t i = 0; i < inputs_.num_rows(); ++i) {
    const Response resp = client.classify(inputs_.row(i));
    EXPECT_EQ(resp.predicted_class, forest_.predict(inputs_.row(i)));
    EXPECT_TRUE(resp.salient.empty());
  }
  EXPECT_EQ(server.requests_served(), inputs_.num_rows());
  server.stop();
}

TEST_F(ServiceFixture, ExplanationsReturned) {
  const std::string path = temp_socket("explain");
  InferenceServer server(
      path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); });
  server.start();

  InferenceClient client(path);
  const Response resp = client.classify(inputs_.row(0), /*explain=*/true);
  EXPECT_EQ(resp.predicted_class, forest_.predict(inputs_.row(0)));
  EXPECT_FALSE(resp.salient.empty());
  for (const auto& s : resp.salient) {
    EXPECT_LT(s.feature, forest_.num_features);
    EXPECT_GT(s.score, 0.0);
  }
  server.stop();
}

TEST_F(ServiceFixture, ServesBaselineEnginesToo) {
  const std::string path = temp_socket("ranger");
  InferenceServer server(path, [&] {
    return std::make_unique<engines::RangerEngine>(forest_);
  });
  server.start();
  InferenceClient client(path);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(client.classify(inputs_.row(i)).predicted_class,
              forest_.predict(inputs_.row(i)));
  }
  server.stop();
}

TEST_F(ServiceFixture, MultipleConcurrentClients) {
  const std::string path = temp_socket("multi");
  InferenceServer server(
      path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); });
  server.start();

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      InferenceClient client(path);
      for (std::size_t i = c; i < 60; i += 4) {
        if (client.classify(inputs_.row(i)).predicted_class !=
            forest_.predict(inputs_.row(i))) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.stop();
}

TEST_F(ServiceFixture, RejectsWrongArity) {
  const std::string path = temp_socket("arity");
  InferenceServer server(
      path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); });
  server.start();
  InferenceClient client(path);
  // Too few and too many features: the front end must answer class -1
  // rather than dispatch a malformed request to the engine.
  std::vector<float> too_few(forest_.num_features - 1, 0.0f);
  std::vector<float> too_many(forest_.num_features + 5, 0.0f);
  EXPECT_EQ(client.classify(too_few).predicted_class, -1);
  EXPECT_EQ(client.classify(too_many).predicted_class, -1);
  // The connection survives and valid requests still work.
  EXPECT_EQ(client.classify(inputs_.row(0)).predicted_class,
            forest_.predict(inputs_.row(0)));
  server.stop();
}

TEST_F(ServiceFixture, StatsTotalsMatchClientGroundTruth) {
  // Acceptance gate: after a multi-threaded pipelined run, the STATS
  // request count, error count and latency-histogram total must agree with
  // what the clients actually sent.
  const std::string path = temp_socket("stats");
  InferenceServer server(
      path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); });
  server.start();

  constexpr int kClients = 4;
  constexpr std::size_t kPerClient = 60;
  constexpr std::size_t kBadPerClient = 3;  // wrong arity -> error class
  std::atomic<std::uint64_t> ok_sent{0}, bad_sent{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      InferenceClient client(path);
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const auto row = inputs_.row((c * kPerClient + i) % inputs_.num_rows());
        ASSERT_GE(client.classify(row).predicted_class, 0);
        ok_sent.fetch_add(1);
      }
      std::vector<float> bad(forest_.num_features + 1, 0.0f);
      for (std::size_t i = 0; i < kBadPerClient; ++i) {
        ASSERT_EQ(client.classify(bad).predicted_class, -1);
        bad_sent.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  const std::uint64_t total = ok_sent.load() + bad_sent.load();
  EXPECT_EQ(total, kClients * (kPerClient + kBadPerClient));
  EXPECT_EQ(server.requests_served(), total);

  InferenceClient scraper(path);
  const std::string text = scraper.stats();
  EXPECT_EQ(stat_value(text, "service.requests"), total);
  EXPECT_EQ(stat_value(text, "service.errors"), bad_sent.load());
  EXPECT_EQ(stat_value(text, "service.malformed_requests"), 0u);
  EXPECT_EQ(stat_value(text, "service.request_latency_us", "count"), total);
  // Only well-formed requests reach the engine's hot path.
  EXPECT_EQ(stat_value(text, "engine.samples"), ok_sent.load());
  EXPECT_EQ(stat_value(text, "engine.candidates"),
            stat_value(text, "engine.accepts") +
                stat_value(text, "engine.rejected"));
  EXPECT_EQ(stat_value(text, "service.stats_requests"), 1u);
  EXPECT_EQ(stat_value(text, "service.connections_total"),
            static_cast<std::uint64_t>(kClients) + 1);

  // The JSON rendering reports the same totals.
  const std::string json = scraper.stats(/*json=*/true);
  EXPECT_NE(
      json.find("\"service.requests\":" + std::to_string(total)),
      std::string::npos);

  // STATS did not perturb the inference request count.
  EXPECT_EQ(server.requests_served(), total);
  server.stop();
}

TEST_F(ServiceFixture, StatsInterleavesWithClassification) {
  const std::string path = temp_socket("interleave");
  InferenceServer server(
      path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); });
  server.start();
  InferenceClient client(path);
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(client.classify(inputs_.row(round)).predicted_class,
              forest_.predict(inputs_.row(round)));
    const std::string text = client.stats();
    EXPECT_EQ(stat_value(text, "service.requests"),
              static_cast<std::uint64_t>(round) + 1);
  }
  server.stop();
}

TEST_F(ServiceFixture, MetricsDisabledServerStillServesAndAnswersStats) {
  const std::string path = temp_socket("nometrics");
  InferenceServer server(
      path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); },
      ServerOptions{.metrics = false});
  server.start();
  InferenceClient client(path);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client.classify(inputs_.row(i)).predicted_class,
              forest_.predict(inputs_.row(i)));
  }
  EXPECT_EQ(server.requests_served(), 10u);
  const std::string text = client.stats();
  EXPECT_EQ(stat_value(text, "service.requests"), 0u);  // recording off
  server.stop();
}

TEST_F(ServiceFixture, StopIsIdempotentAndRestartable) {
  const std::string path = temp_socket("restart");
  {
    InferenceServer server(
        path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); });
    server.start();
    server.stop();
    server.stop();  // no-op
  }
  InferenceServer server2(
      path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); });
  server2.start();
  InferenceClient client(path);
  EXPECT_GE(client.classify(inputs_.row(0)).predicted_class, 0);
  server2.stop();
}

}  // namespace
}  // namespace bolt::service
