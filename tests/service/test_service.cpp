#include "service/server.h"

#include <gtest/gtest.h>

#include <memory>

#include "../helpers.h"
#include "baselines/ranger_engine.h"
#include "service/protocol.h"

namespace bolt::service {
namespace {

std::string temp_socket(const char* tag) {
  return ::testing::TempDir() + "/bolt_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(Protocol, RequestRoundTrip) {
  Request req;
  req.flags = kFlagExplain;
  req.features = {1.5f, -2.0f, 3.25f};
  std::vector<std::uint8_t> buf;
  encode_request(req, buf);
  const Request back = decode_request(buf);
  EXPECT_EQ(back.flags, kFlagExplain);
  EXPECT_EQ(back.features, req.features);
}

TEST(Protocol, ResponseRoundTrip) {
  Response resp;
  resp.predicted_class = 7;
  resp.salient = {{3, 1.5}, {100, 0.25}};
  std::vector<std::uint8_t> buf;
  encode_response(resp, buf);
  const Response back = decode_response(buf);
  EXPECT_EQ(back.predicted_class, 7);
  ASSERT_EQ(back.salient.size(), 2u);
  EXPECT_EQ(back.salient[0].feature, 3u);
  EXPECT_EQ(back.salient[1].score, 0.25);
}

TEST(Protocol, RejectsBadMagic) {
  std::vector<std::uint8_t> buf(16, 0xab);
  EXPECT_THROW(decode_request(buf), std::runtime_error);
  EXPECT_THROW(decode_response(buf), std::runtime_error);
}

TEST(Protocol, RejectsTruncation) {
  Request req;
  req.features = {1.0f, 2.0f};
  std::vector<std::uint8_t> buf;
  encode_request(req, buf);
  buf.pop_back();
  EXPECT_THROW(decode_request(buf), std::runtime_error);
}

class ServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    forest_ = bolt::testing::small_forest(6, 4, 91);
    inputs_ = bolt::testing::small_dataset(100, 92);
    artifact_ = std::make_unique<core::BoltForest>(
        core::BoltForest::build(forest_, {}));
  }

  forest::Forest forest_;
  data::Dataset inputs_{0, 0};
  std::unique_ptr<core::BoltForest> artifact_;
};

TEST_F(ServiceFixture, EndToEndClassification) {
  const std::string path = temp_socket("e2e");
  InferenceServer server(
      path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); });
  server.start();

  InferenceClient client(path);
  for (std::size_t i = 0; i < inputs_.num_rows(); ++i) {
    const Response resp = client.classify(inputs_.row(i));
    EXPECT_EQ(resp.predicted_class, forest_.predict(inputs_.row(i)));
    EXPECT_TRUE(resp.salient.empty());
  }
  EXPECT_EQ(server.requests_served(), inputs_.num_rows());
  server.stop();
}

TEST_F(ServiceFixture, ExplanationsReturned) {
  const std::string path = temp_socket("explain");
  InferenceServer server(
      path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); });
  server.start();

  InferenceClient client(path);
  const Response resp = client.classify(inputs_.row(0), /*explain=*/true);
  EXPECT_EQ(resp.predicted_class, forest_.predict(inputs_.row(0)));
  EXPECT_FALSE(resp.salient.empty());
  for (const auto& s : resp.salient) {
    EXPECT_LT(s.feature, forest_.num_features);
    EXPECT_GT(s.score, 0.0);
  }
  server.stop();
}

TEST_F(ServiceFixture, ServesBaselineEnginesToo) {
  const std::string path = temp_socket("ranger");
  InferenceServer server(path, [&] {
    return std::make_unique<engines::RangerEngine>(forest_);
  });
  server.start();
  InferenceClient client(path);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(client.classify(inputs_.row(i)).predicted_class,
              forest_.predict(inputs_.row(i)));
  }
  server.stop();
}

TEST_F(ServiceFixture, MultipleConcurrentClients) {
  const std::string path = temp_socket("multi");
  InferenceServer server(
      path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); });
  server.start();

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      InferenceClient client(path);
      for (std::size_t i = c; i < 60; i += 4) {
        if (client.classify(inputs_.row(i)).predicted_class !=
            forest_.predict(inputs_.row(i))) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.stop();
}

TEST_F(ServiceFixture, RejectsWrongArity) {
  const std::string path = temp_socket("arity");
  InferenceServer server(
      path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); });
  server.start();
  InferenceClient client(path);
  // Too few and too many features: the front end must answer class -1
  // rather than dispatch a malformed request to the engine.
  std::vector<float> too_few(forest_.num_features - 1, 0.0f);
  std::vector<float> too_many(forest_.num_features + 5, 0.0f);
  EXPECT_EQ(client.classify(too_few).predicted_class, -1);
  EXPECT_EQ(client.classify(too_many).predicted_class, -1);
  // The connection survives and valid requests still work.
  EXPECT_EQ(client.classify(inputs_.row(0)).predicted_class,
            forest_.predict(inputs_.row(0)));
  server.stop();
}

TEST_F(ServiceFixture, StopIsIdempotentAndRestartable) {
  const std::string path = temp_socket("restart");
  {
    InferenceServer server(
        path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); });
    server.start();
    server.stop();
    server.stop();  // no-op
  }
  InferenceServer server2(
      path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); });
  server2.start();
  InferenceClient client(path);
  EXPECT_GE(client.classify(inputs_.row(0)).predicted_class, 0);
  server2.stop();
}

}  // namespace
}  // namespace bolt::service
