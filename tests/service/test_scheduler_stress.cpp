// Scheduler integration stress: dozens of concurrent single-row clients
// through the real UNIX-socket server with dynamic batching enabled.
// Verifies bit-identical answers to the unbatched path, clean quiescence,
// and that the overload paths (queue-full shedding, per-request deadlines)
// answer explicit error codes — never blocked accepts or silent drops.
// Runs under the `stress` CTest label (longer timeout, included in the
// TSan CI job).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "../helpers.h"
#include "bolt/engine.h"
#include "service/protocol.h"
#include "service/server.h"

namespace bolt::service {
namespace {

using namespace std::chrono_literals;

std::string temp_socket(const char* tag) {
  return ::testing::TempDir() + "/bolt_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

std::uint64_t counter_value(util::MetricsRegistry& reg,
                            const std::string& name) {
  for (const auto& [n, v] : reg.snapshot().counters) {
    if (n == name) return v;
  }
  return 0;
}

std::int64_t gauge_value(util::MetricsRegistry& reg, const std::string& name) {
  for (const auto& [n, v] : reg.snapshot().gauges) {
    if (n == name) return v;
  }
  return 0;
}

/// Engine wrapper that makes every batch slow — the only way a test can
/// deterministically overload a bounded queue on fast hardware.
class SlowEngine final : public engines::Engine {
 public:
  SlowEngine(const forest::Forest& forest, std::chrono::milliseconds delay)
      : forest_(forest), delay_(delay) {}

  std::string_view name() const override { return "slow"; }
  std::size_t num_features() const override { return forest_.num_features; }
  int predict(std::span<const float> x) override {
    std::this_thread::sleep_for(delay_);
    return forest_.predict(x);
  }
  int predict_traced(std::span<const float> x, archsim::Machine&) override {
    return predict(x);
  }
  void vote(std::span<const float> x, std::span<double> out) override {
    const auto v = forest_.vote(x);
    std::copy(v.begin(), v.end(), out.begin());
  }
  void predict_batch(std::span<const float> rows, std::size_t num_rows,
                     std::size_t row_stride, std::span<int> out) override {
    std::this_thread::sleep_for(delay_);
    for (std::size_t r = 0; r < num_rows; ++r) {
      out[r] = forest_.predict({rows.data() + r * row_stride, row_stride});
    }
  }
  std::size_t memory_bytes() const override { return 0; }

 private:
  const forest::Forest& forest_;
  std::chrono::milliseconds delay_;
};

class SchedulerStress : public ::testing::Test {
 protected:
  void SetUp() override {
    forest_ = bolt::testing::small_forest(8, 5, 41);
    inputs_ = bolt::testing::small_dataset(300, 42);
    artifact_ = std::make_unique<core::BoltForest>(
        core::BoltForest::build(forest_, {}));
    expected_.reserve(inputs_.num_rows());
    for (std::size_t i = 0; i < inputs_.num_rows(); ++i) {
      expected_.push_back(forest_.predict(inputs_.row(i)));
    }
  }

  forest::Forest forest_;
  data::Dataset inputs_{0, 0};
  std::unique_ptr<core::BoltForest> artifact_;
  std::vector<int> expected_;
};

TEST_F(SchedulerStress, DozensOfClientsBitIdenticalToUnbatchedPath) {
  const std::string path = temp_socket("sched_stress");
  ServerOptions opts;
  opts.scheduler.enabled = true;
  opts.scheduler.max_batch_size = 32;
  opts.scheduler.max_queue_delay_us = 300;
  opts.scheduler.workers = 2;
  InferenceServer server(
      path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); },
      opts);
  server.start();

  constexpr int kClients = 32;
  constexpr std::size_t kPerClient = 100;
  std::atomic<int> mismatches{0};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      InferenceClient client(path);
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::size_t row = (c * kPerClient + i) % inputs_.num_rows();
        const Response resp = client.classify(inputs_.row(row));
        answered.fetch_add(1);
        if (resp.predicted_class != expected_[row]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(answered.load(), kClients * kPerClient);
  EXPECT_EQ(server.requests_served(), kClients * kPerClient);
  // No backpressure or deadline events on an uncapped healthy run, the
  // queue drained to zero, and rows actually went through shared tiles.
  EXPECT_EQ(counter_value(server.metrics(), "scheduler.shed"), 0u);
  EXPECT_EQ(counter_value(server.metrics(), "scheduler.expired"), 0u);
  EXPECT_EQ(gauge_value(server.metrics(), "scheduler.queue_depth"), 0);
  EXPECT_GT(counter_value(server.metrics(), "scheduler.batches"), 0u);
  server.stop();
}

TEST_F(SchedulerStress, BatchOpRoutesThroughSchedulerBitIdentically) {
  const std::string path = temp_socket("sched_batchop");
  ServerOptions opts;
  opts.scheduler.enabled = true;
  opts.scheduler.max_batch_size = 16;
  opts.scheduler.workers = 2;
  InferenceServer server(
      path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); },
      opts);
  server.start();

  InferenceClient client(path);
  const std::size_t n = 50;
  const auto classes = client.classify_batch(
      {inputs_.raw_features().data(), n * inputs_.num_features()}, n,
      inputs_.num_features());
  ASSERT_EQ(classes.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(classes[i], expected_[i]);
  EXPECT_GT(counter_value(server.metrics(), "scheduler.batches"), 0u);
  server.stop();
}

TEST_F(SchedulerStress, QueueFullShedsWithBusyCodeAndServerSurvives) {
  const std::string path = temp_socket("sched_shed");
  ServerOptions opts;
  opts.scheduler.enabled = true;
  opts.scheduler.max_batch_size = 1;  // one slow row per tile
  opts.scheduler.queue_capacity = 2;
  opts.scheduler.max_queue_delay_us = 0;
  opts.scheduler.workers = 1;
  InferenceServer server(
      path, [&] { return std::make_unique<SlowEngine>(forest_, 5ms); }, opts);
  server.start();

  constexpr int kClients = 24;
  std::atomic<int> ok{0}, busy{0}, other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      InferenceClient client(path);
      const std::size_t row = c % inputs_.num_rows();
      const Response resp = client.classify(inputs_.row(row));
      if (resp.predicted_class == expected_[row]) {
        ok.fetch_add(1);
      } else if (resp.predicted_class == kClassBusy) {
        busy.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  // Overload must shed explicitly: every client got an answer (the joins
  // above would hang otherwise), shed ones saw kClassBusy, and nothing
  // was mislabelled.
  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(busy.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(counter_value(server.metrics(), "scheduler.shed"),
            static_cast<std::uint64_t>(busy.load()));

  // The server is still healthy after the burst.
  InferenceClient again(path);
  EXPECT_EQ(again.classify(inputs_.row(0)).predicted_class, expected_[0]);
  server.stop();
}

TEST_F(SchedulerStress, ExpiredDeadlinesAnswerExplicitCode) {
  const std::string path = temp_socket("sched_deadline");
  ServerOptions opts;
  opts.scheduler.enabled = true;
  opts.scheduler.max_batch_size = 1;
  opts.scheduler.max_queue_delay_us = 0;
  opts.scheduler.deadline_us = 1000;  // 1 ms, versus 10 ms per tile
  opts.scheduler.workers = 1;
  InferenceServer server(
      path, [&] { return std::make_unique<SlowEngine>(forest_, 10ms); }, opts);
  server.start();

  constexpr int kClients = 12;
  std::atomic<int> ok{0}, expired{0}, other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      InferenceClient client(path);
      const std::size_t row = c % inputs_.num_rows();
      const Response resp = client.classify(inputs_.row(row));
      if (resp.predicted_class == expected_[row]) {
        ok.fetch_add(1);
      } else if (resp.predicted_class == kClassExpired) {
        expired.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  // With a 1 ms deadline against 10 ms tiles, the burst cannot all make
  // it: some requests expire in queue and are answered kClassExpired
  // without ever running inference.
  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(expired.load(), 0);
  EXPECT_EQ(counter_value(server.metrics(), "scheduler.expired"),
            static_cast<std::uint64_t>(expired.load()));

  // A lone request after the burst sails through (empty queue, fresh
  // deadline: the tile starts well within 1 ms).
  InferenceClient again(path);
  const Response resp = again.classify(inputs_.row(1));
  EXPECT_TRUE(resp.predicted_class == expected_[1] ||
              resp.predicted_class == kClassExpired);
  server.stop();
}

TEST_F(SchedulerStress, StopWhileClientsInFlightAnswersEveryone) {
  const std::string path = temp_socket("sched_stop");
  ServerOptions opts;
  opts.scheduler.enabled = true;
  opts.scheduler.max_batch_size = 8;
  opts.scheduler.workers = 1;
  InferenceServer server(
      path, [&] { return std::make_unique<SlowEngine>(forest_, 2ms); }, opts);
  server.start();

  std::atomic<bool> stop_clients{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      try {
        InferenceClient client(path);
        while (!stop_clients.load()) {
          client.classify(inputs_.row(c));
        }
      } catch (const std::exception&) {
        // Server went away mid-request: expected during shutdown.
      }
    });
  }
  std::this_thread::sleep_for(50ms);
  // stop() must drain the scheduler and release every parked handler; if a
  // handler stayed blocked on a future, stop() itself would hang (and the
  // test would time out).
  server.stop();
  stop_clients.store(true);
  for (auto& t : clients) t.join();
  EXPECT_EQ(server.active_handler_count(), 0u);
}

}  // namespace
}  // namespace bolt::service
