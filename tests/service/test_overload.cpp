// Scheduler overload regression: open-loop arrivals pushed past queue
// capacity through the real server socket and through the scheduler
// directly. Under overload every request must still get exactly one
// prompt answer — a real class, kClassBusy (-2, shed at admission), or
// kClassExpired (-3, deadline lapsed in queue) — the accounting must
// balance (nothing lost, nothing duplicated, nothing computed for shed
// rows), and the queue must drain back to zero after the burst.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "../helpers.h"
#include "bolt/engine.h"
#include "loadgen/workload.h"
#include "service/client.h"
#include "service/scheduler.h"
#include "service/server.h"

namespace bolt::service {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

/// Arity-3 engine, class = (int)row[0], with a fixed per-batch stall so a
/// test can overrun the queue with a modest client fleet.
class SlowEchoEngine final : public engines::Engine {
 public:
  SlowEchoEngine(std::atomic<std::uint64_t>* rows_seen,
                 std::chrono::milliseconds stall)
      : rows_seen_(rows_seen), stall_(stall) {}

  std::string_view name() const override { return "slow-echo"; }
  std::size_t num_features() const override { return 3; }
  int predict(std::span<const float> x) override {
    return static_cast<int>(x[0]);
  }
  int predict_traced(std::span<const float> x, archsim::Machine&) override {
    return predict(x);
  }
  void vote(std::span<const float>, std::span<double> out) override {
    for (auto& v : out) v = 0.0;
  }
  void predict_batch(std::span<const float> rows, std::size_t num_rows,
                     std::size_t row_stride, std::span<int> out) override {
    std::this_thread::sleep_for(stall_);
    rows_seen_->fetch_add(num_rows);
    for (std::size_t r = 0; r < num_rows; ++r) {
      out[r] = static_cast<int>(rows[r * row_stride]);
    }
  }
  std::size_t memory_bytes() const override { return 0; }

 private:
  std::atomic<std::uint64_t>* rows_seen_;
  std::chrono::milliseconds stall_;
};

std::string temp_socket(const char* tag) {
  return ::testing::TempDir() + "/bolt_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

std::uint64_t counter_value(const util::MetricsRegistry& reg,
                            const std::string& name) {
  for (const auto& [n, v] : reg.snapshot().counters) {
    if (n == name) return v;
  }
  return 0;
}

std::int64_t gauge_value(const util::MetricsRegistry& reg,
                         const std::string& name) {
  for (const auto& [n, v] : reg.snapshot().gauges) {
    if (n == name) return v;
  }
  return -1;
}

TEST(SchedulerOverload, ShedsPastCapacityWithExactlyOnceAccounting) {
  const std::string path = temp_socket("overload");
  std::atomic<std::uint64_t> rows_seen{0};
  ServerOptions opts;
  opts.max_connections = 64;
  opts.scheduler.enabled = true;
  opts.scheduler.workers = 1;
  opts.scheduler.max_batch_size = 4;
  opts.scheduler.max_queue_delay_us = 200;
  // Smaller than the client fleet: 8 concurrent submissions against a
  // stalled worker must overrun a 4-deep queue.
  opts.scheduler.queue_capacity = 4;
  InferenceServer server(
      path, [&] { return std::make_unique<SlowEchoEngine>(&rows_seen, 3ms); },
      opts);
  server.start();

  // 8 clients firing back-to-back: offered rate far above the ~1.3k rows/s
  // the stalled engine can drain, so the shallow queue must overflow.
  constexpr int kClients = 8;
  constexpr int kPerClient = 50;
  std::atomic<std::uint64_t> ok{0}, shed{0}, expired{0}, wrong{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      InferenceClient client(path);
      for (int i = 0; i < kPerClient; ++i) {
        const int v = c * 1000 + i;
        const auto resp = client.classify(
            std::vector<float>{static_cast<float>(v), 0.0f, 0.0f});
        if (resp.predicted_class == v) {
          ok.fetch_add(1);
        } else if (resp.predicted_class == kClassBusy) {
          shed.fetch_add(1);
        } else if (resp.predicted_class == kClassExpired) {
          expired.fetch_add(1);
        } else {
          // Any other class means rows were mixed or duplicated across
          // requests — the failure this regression test exists to catch.
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // Every request got exactly one answer and none was mislabelled.
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(ok.load() + shed.load() + expired.load(),
            static_cast<std::uint64_t>(kClients * kPerClient));
  // Overload actually happened, and shed rows were never computed.
  EXPECT_GT(shed.load(), 0u);
  EXPECT_EQ(rows_seen.load(), ok.load());
  EXPECT_EQ(counter_value(server.metrics(), "scheduler.shed"), shed.load());

  // After the burst the queue must drain to zero and keep serving.
  InferenceClient probe(path);
  const auto resp =
      probe.classify(std::vector<float>{42.0f, 0.0f, 0.0f});
  EXPECT_EQ(resp.predicted_class, 42);
  EXPECT_EQ(gauge_value(server.metrics(), "scheduler.queue_depth"), 0);
  server.stop();
}

TEST(SchedulerOverload, QueuedRequestsExpirePromptlyUnderDeadline) {
  const std::string path = temp_socket("deadline");
  std::atomic<std::uint64_t> rows_seen{0};
  ServerOptions opts;
  opts.max_connections = 64;
  opts.scheduler.enabled = true;
  opts.scheduler.workers = 1;
  opts.scheduler.max_batch_size = 1;   // one row per 20 ms stall
  opts.scheduler.max_queue_delay_us = 0;
  opts.scheduler.queue_capacity = 256;  // deep queue: expiry, not shedding
  opts.scheduler.deadline_us = 5000;    // 5 ms << time-to-head under load
  InferenceServer server(
      path, [&] { return std::make_unique<SlowEchoEngine>(&rows_seen, 20ms); },
      opts);
  server.start();

  constexpr int kClients = 6;
  constexpr int kPerClient = 8;
  std::atomic<std::uint64_t> ok{0}, expired{0}, other{0};
  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      InferenceClient client(path);
      for (int i = 0; i < kPerClient; ++i) {
        const int v = c * 1000 + i;
        const auto resp = client.classify(
            std::vector<float>{static_cast<float>(v), 0.0f, 0.0f});
        if (resp.predicted_class == v) {
          ok.fetch_add(1);
        } else if (resp.predicted_class == kClassExpired) {
          expired.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const auto elapsed = Clock::now() - t0;

  EXPECT_EQ(other.load(), 0u);
  EXPECT_EQ(ok.load() + expired.load(),
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_GT(expired.load(), 0u);
  // Expired answers must come back promptly, not after the row would have
  // been computed: 48 rows at 20 ms each would be ~1 s if everything were
  // computed serially; expiry keeps the run far under the all-computed
  // bound even on slow CI.
  EXPECT_LT(elapsed, 30s);
  EXPECT_EQ(rows_seen.load(), ok.load());
  EXPECT_EQ(counter_value(server.metrics(), "scheduler.expired"),
            expired.load());
  server.stop();
}

TEST(SchedulerOverload, OpenLoopBurstArrivalsDrainBackToZero) {
  // Direct scheduler, true open-loop arrivals from the load generator's
  // burst schedule: each arrival fires at its scheduled offset regardless
  // of how far behind the scheduler is, exactly like bolt_loadgen's
  // workers. The whole burst must be answered and the queue must read
  // empty the moment the last response is out.
  std::atomic<std::uint64_t> rows_seen{0};
  util::MetricsRegistry registry;
  SchedulerOptions opts;
  opts.enabled = true;
  opts.workers = 1;
  opts.max_batch_size = 8;
  opts.max_queue_delay_us = 200;
  opts.queue_capacity = 32;
  BatchScheduler sched(
      [&] { return std::make_unique<SlowEchoEngine>(&rows_seen, 2ms); }, opts,
      registry, /*record=*/true);
  sched.start();

  loadgen::ShapeConfig shape;
  shape.kind = loadgen::ShapeConfig::Kind::kBurst;
  shape.rps = 2000.0;
  shape.burst_size = 64;  // 2x queue capacity arriving at one instant
  loadgen::ArrivalSchedule schedule(shape, /*seed=*/99);

  constexpr int kArrivals = 192;  // 3 bursts
  std::atomic<std::uint64_t> ok{0}, busy{0}, expired{0}, wrong{0};
  const auto start = Clock::now() + 50ms;
  std::vector<std::thread> arrivals;
  for (int i = 0; i < kArrivals; ++i) {
    const auto at = start + std::chrono::microseconds(schedule.next_us());
    arrivals.emplace_back([&, i, at] {
      std::this_thread::sleep_until(at);
      const auto r = sched.classify(
          std::vector<float>{static_cast<float>(i), 0.0f, 0.0f});
      switch (r.status) {
        case BatchScheduler::Status::kOk:
          if (r.predicted_class == i) {
            ok.fetch_add(1);
          } else {
            wrong.fetch_add(1);
          }
          break;
        case BatchScheduler::Status::kBusy:
          busy.fetch_add(1);
          break;
        case BatchScheduler::Status::kExpired:
          expired.fetch_add(1);
          break;
        default:
          wrong.fetch_add(1);
      }
    });
  }
  for (auto& t : arrivals) t.join();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(ok.load() + busy.load() + expired.load(),
            static_cast<std::uint64_t>(kArrivals));
  EXPECT_GT(busy.load(), 0u);  // a 64-burst must overrun capacity 32
  EXPECT_EQ(rows_seen.load(), ok.load());
  // All callers have their answers, so nothing can still be queued.
  EXPECT_EQ(sched.queue_depth(), 0u);
  EXPECT_EQ(counter_value(registry, "scheduler.shed"), busy.load());
  sched.stop();
}

}  // namespace
}  // namespace bolt::service
