// Integration coverage for the observability layer: request-scoped
// tracing over the wire (kFlagTrace), the slow-request capture ring and
// its SLOW protocol op, and the /metrics Prometheus HTTP endpoint.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "../helpers.h"
#include "service/protocol.h"
#include "service/server.h"
#include "util/prometheus.h"
#include "util/trace.h"

namespace bolt::service {
namespace {

std::string temp_socket(const char* tag) {
  return ::testing::TempDir() + "/bolt_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

std::uint64_t stat_value(const std::string& text, const std::string& name) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    if (text.compare(pos, name.size(), name) == 0 &&
        pos + name.size() < eol && text[pos + name.size()] == ' ') {
      return std::stoull(text.substr(pos + name.size() + 1,
                                     eol - pos - name.size() - 1));
    }
    pos = eol + 1;
  }
  ADD_FAILURE() << "metric not found: " << name << "\n" << text;
  return 0;
}

/// Minimal HTTP GET against 127.0.0.1:`port`; returns the full response
/// (head + body) or "" on connect failure.
std::string http_get(std::int32_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: l\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string out;
  char buf[4096];
  ssize_t r;
  while ((r = ::read(fd, buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  return out;
}

std::string http_body(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

class TraceServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    forest_ = bolt::testing::small_forest(6, 4, 91);
    inputs_ = bolt::testing::small_dataset(80, 92);
    artifact_ = std::make_unique<core::BoltForest>(
        core::BoltForest::build(forest_, {}));
  }

  std::unique_ptr<InferenceServer> make_server(const char* tag,
                                               ServerOptions opts) {
    auto server = std::make_unique<InferenceServer>(
        temp_socket(tag),
        [&] { return std::make_unique<core::BoltEngine>(*artifact_); }, opts);
    server->start();
    return server;
  }

  forest::Forest forest_;
  data::Dataset inputs_{0, 0};
  std::unique_ptr<core::BoltForest> artifact_;
};

TEST(Protocol, TraceSectionRoundTrip) {
  Response resp;
  resp.predicted_class = 3;
  resp.traced = true;
  resp.trace_total_ns = 123456;
  resp.trace.push_back({static_cast<std::uint8_t>(util::Stage::kDecode),
                        1, 1000});
  resp.trace.push_back({static_cast<std::uint8_t>(util::Stage::kScan),
                        2, 98000});
  std::vector<std::uint8_t> buf;
  encode_response(resp, buf);
  const Response back = decode_response(buf);
  EXPECT_EQ(back.predicted_class, 3);
  ASSERT_TRUE(back.traced);
  EXPECT_EQ(back.trace_total_ns, 123456u);
  ASSERT_EQ(back.trace.size(), 2u);
  EXPECT_EQ(back.trace[0].stage,
            static_cast<std::uint8_t>(util::Stage::kDecode));
  EXPECT_EQ(back.trace[1].count, 2u);
  EXPECT_EQ(back.trace[1].total_ns, 98000u);

  // Responses without the section decode as untraced (old-server shape).
  Response plain;
  plain.predicted_class = 1;
  buf.clear();
  encode_response(plain, buf);
  EXPECT_FALSE(decode_response(buf).traced);

  // A span naming an out-of-taxonomy stage must be rejected.
  resp.trace[0].stage = 200;
  buf.clear();
  encode_response(resp, buf);
  EXPECT_THROW(decode_response(buf), std::runtime_error);
}

TEST(Protocol, SlowRoundTrip) {
  SlowRequest req;
  req.flags = kSlowFlagJson;
  std::vector<std::uint8_t> buf;
  encode_slow_request(req, buf);
  EXPECT_EQ(frame_magic(buf), kSlowRequestMagic);
  EXPECT_EQ(decode_slow_request(buf).flags, kSlowFlagJson);
  buf.push_back(0);  // trailing byte
  EXPECT_THROW(decode_slow_request(buf), std::runtime_error);

  SlowResponse resp;
  resp.body = "# slow ring: 0 captured\n";
  buf.clear();
  encode_slow_response(resp, buf);
  EXPECT_EQ(frame_magic(buf), kSlowResponseMagic);
  EXPECT_EQ(decode_slow_response(buf).body, resp.body);
}

TEST_F(TraceServiceFixture, ClassifyTracedEchoesBreakdown) {
  auto server = make_server("traced", ServerOptions{});
  InferenceClient client(server->socket_path());
  for (int i = 0; i < 8; ++i) client.classify(inputs_.row(i));  // warm

  const Response resp = client.classify_traced(inputs_.row(0));
  EXPECT_EQ(resp.predicted_class, forest_.predict(inputs_.row(0)));
  if (!util::kTracingCompiledIn) {
    EXPECT_FALSE(resp.traced);
    server->stop();
    return;
  }
  ASSERT_TRUE(resp.traced);
  EXPECT_GT(resp.trace_total_ns, 0u);
  ASSERT_FALSE(resp.trace.empty());

  bool saw_decode = false, saw_encode = false, saw_dispatch = false;
  std::uint64_t spans_ns = 0;
  for (const TraceSpan& s : resp.trace) {
    ASSERT_LT(s.stage, util::kNumStages);
    EXPECT_GT(s.count, 0u);
    spans_ns += s.total_ns;
    saw_decode |= s.stage == static_cast<std::uint8_t>(util::Stage::kDecode);
    saw_encode |= s.stage == static_cast<std::uint8_t>(util::Stage::kEncode);
    saw_dispatch |=
        s.stage == static_cast<std::uint8_t>(util::Stage::kDispatch);
  }
  EXPECT_TRUE(saw_decode);
  EXPECT_TRUE(saw_encode);
  EXPECT_TRUE(saw_dispatch);
  // The derived dispatch span closes the attribution gap: spans can never
  // exceed the measured wall time by construction (modulo the final
  // timer read), and must account for most of it.
  EXPECT_LE(spans_ns, resp.trace_total_ns + resp.trace_total_ns / 10);
  EXPECT_GE(spans_ns, resp.trace_total_ns / 2);

  // Untraced requests on the same connection stay clean.
  EXPECT_FALSE(client.classify(inputs_.row(1)).traced);

  const std::string stats = client.stats();
  EXPECT_GE(stat_value(stats, "service.traced_requests"), 1u);
  server->stop();
}

TEST_F(TraceServiceFixture, SchedulerPathRecordsQueueWait) {
  if (!util::kTracingCompiledIn) GTEST_SKIP();
  ServerOptions opts;
  opts.scheduler.enabled = true;
  opts.scheduler.max_batch_size = 8;
  opts.scheduler.max_queue_delay_us = 100;
  auto server = make_server("traced_sched", opts);
  InferenceClient client(server->socket_path());
  for (int i = 0; i < 8; ++i) client.classify(inputs_.row(i));  // warm

  const Response resp = client.classify_traced(inputs_.row(0));
  EXPECT_EQ(resp.predicted_class, forest_.predict(inputs_.row(0)));
  ASSERT_TRUE(resp.traced);
  bool saw_queue_wait = false, saw_kernel = false;
  for (const TraceSpan& s : resp.trace) {
    saw_queue_wait |=
        s.stage == static_cast<std::uint8_t>(util::Stage::kQueueWait);
    saw_kernel |= s.stage == static_cast<std::uint8_t>(util::Stage::kScan);
  }
  EXPECT_TRUE(saw_queue_wait);
  EXPECT_TRUE(saw_kernel);
  server->stop();
}

TEST_F(TraceServiceFixture, SlowRingCapturesOverThreshold) {
  if (!util::kTracingCompiledIn) GTEST_SKIP();
  ServerOptions opts;
  opts.trace.slow_threshold_us = 1;  // everything is "slow"
  opts.trace.slow_ring_capacity = 8;
  auto server = make_server("slow", opts);
  InferenceClient client(server->socket_path());

  client.classify(inputs_.row(0));
  // A deliberately large batch: lands in the ring with op=BATCH and the
  // full kernel breakdown.
  const std::size_t stride = inputs_.num_features();
  client.classify_batch({inputs_.raw_features().data(), 64 * stride}, 64,
                        stride);

  const std::string text = client.slow();
  EXPECT_NE(text.find("op=CLASSIFY"), std::string::npos) << text;
  EXPECT_NE(text.find("op=BATCH rows=64"), std::string::npos) << text;
  EXPECT_NE(text.find("scan_us="), std::string::npos) << text;

  const std::string json = client.slow(/*json=*/true);
  EXPECT_NE(json.find("\"op\":\"BATCH\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"spans\""), std::string::npos) << json;

  EXPECT_EQ(server->slow_ring().captured_total(), 2u);
  const std::string stats = client.stats();
  EXPECT_EQ(stat_value(stats, "service.slow_captured"), 2u);
  EXPECT_GE(stat_value(stats, "service.slow_op_requests"), 2u);
  server->stop();
}

TEST_F(TraceServiceFixture, SlowRingStaysEmptyWhenDisarmed) {
  auto server = make_server("slow_off", ServerOptions{});
  InferenceClient client(server->socket_path());
  client.classify(inputs_.row(0));
  const std::string text = client.slow();
  EXPECT_NE(text.find("# slow ring: 0 captured"), std::string::npos) << text;
  server->stop();
}

TEST_F(TraceServiceFixture, MetricsEndpointServesValidPrometheus) {
  ServerOptions opts;
  opts.metrics_port = 0;  // ephemeral
  auto server = make_server("prom", opts);
  const std::int32_t port = server->metrics_http_port();
  ASSERT_GT(port, 0);

  InferenceClient client(server->socket_path());
  for (int i = 0; i < 5; ++i) client.classify(inputs_.row(i));

  const std::string response = http_get(port, "/metrics");
  ASSERT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  const std::string body = http_body(response);
  std::string error;
  EXPECT_TRUE(util::validate_prometheus(body, &error)) << error << "\n"
                                                       << body;

  // The exposition and STATS views are one registry: the request counter
  // must round-trip the same value (no more requests were sent between).
  EXPECT_EQ(stat_value(body, "service_requests"), 5u);
  EXPECT_EQ(stat_value(client.stats(), "service.requests"), 5u);

  // Satellite metrics: build info labels and a live uptime gauge.
  EXPECT_NE(body.find("bolt_build_info{"), std::string::npos);
  EXPECT_NE(body.find("compiler="), std::string::npos);
  EXPECT_NE(body.find("service_uptime_seconds"), std::string::npos);
  EXPECT_NE(client.stats().find("service.uptime_seconds"),
            std::string::npos);

  // Unknown paths 404 without wedging the serve loop.
  EXPECT_NE(http_get(port, "/nope").find("404"), std::string::npos);
  EXPECT_NE(http_get(port, "/metrics").find("200 OK"), std::string::npos);
  server->stop();
  EXPECT_EQ(server->metrics_http_port(), -1);
}

TEST_F(TraceServiceFixture, MetricsPortDisabledByDefault) {
  auto server = make_server("prom_off", ServerOptions{});
  EXPECT_EQ(server->metrics_http_port(), -1);
  server->stop();
}

}  // namespace
}  // namespace bolt::service
