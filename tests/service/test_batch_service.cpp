// BATCH op + serving-robustness regression tests:
//   - BATCH protocol round-trips (empty, single-row, ragged batches) and
//     pre-reserve validation of attacker-controlled counts;
//   - the SIGPIPE fix (peer disconnecting between request and response
//     must not kill the server process);
//   - bounded connection handling (handler count drains after churn,
//     max_connections backpressure).
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "../helpers.h"
#include "service/protocol.h"
#include "service/server.h"

namespace bolt::service {
namespace {

std::string temp_socket(const char* tag) {
  return ::testing::TempDir() + "/bolt_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// Raw client socket for tests that need to misbehave (disconnect early,
/// send crafted frames) in ways InferenceClient never would.
int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

std::size_t open_fd_count() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++n;
  }
  return n;
}

std::size_t thread_count() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::stoul(line.substr(8));
    }
  }
  return 0;
}

TEST(BatchProtocol, RoundTripRaggedRows) {
  BatchRequest req;
  req.flags = 0;
  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  const std::vector<float> b{4.5f};
  const std::vector<float> c{};
  req.add_row(a);
  req.add_row(b);
  req.add_row(c);
  std::vector<std::uint8_t> buf;
  encode_batch_request(req, buf);
  EXPECT_EQ(frame_magic(buf), kBatchRequestMagic);

  const BatchRequest back = decode_batch_request(buf);
  ASSERT_EQ(back.num_rows(), 3u);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), back.row(0).begin()));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), back.row(1).begin()));
  EXPECT_TRUE(back.row(2).empty());
  EXPECT_FALSE(back.uniform_arity(3));

  BatchResponse resp;
  resp.classes = {4, -1, 0};
  buf.clear();
  encode_batch_response(resp, buf);
  EXPECT_EQ(frame_magic(buf), kBatchResponseMagic);
  EXPECT_EQ(decode_batch_response(buf).classes, resp.classes);
}

TEST(BatchProtocol, RoundTripEmptyBatch) {
  std::vector<std::uint8_t> buf;
  encode_batch_request(BatchRequest{}, buf);
  EXPECT_EQ(decode_batch_request(buf).num_rows(), 0u);
  buf.clear();
  encode_batch_response(BatchResponse{}, buf);
  EXPECT_TRUE(decode_batch_response(buf).classes.empty());
}

TEST(BatchProtocol, UniformArityDetected) {
  BatchRequest req;
  const std::vector<float> row{1.0f, 2.0f};
  req.add_row(row);
  req.add_row(row);
  EXPECT_TRUE(req.uniform_arity(2));
  EXPECT_FALSE(req.uniform_arity(3));
  req.add_row(std::vector<float>{9.0f});
  EXPECT_FALSE(req.uniform_arity(2));
}

TEST(BatchProtocol, RejectsDeclaredCountsLargerThanFrame) {
  // A crafted frame declaring 2^32-1 rows but carrying none must throw on
  // the size check, not reserve gigabytes first.
  std::vector<std::uint8_t> frame;
  append_u32(frame, kBatchRequestMagic);
  append_u32(frame, 0);            // flags
  append_u32(frame, 0xffffffffu);  // num_rows
  EXPECT_THROW(decode_batch_request(frame), std::runtime_error);

  // Same for a single row declaring more floats than the frame holds.
  frame.clear();
  append_u32(frame, kBatchRequestMagic);
  append_u32(frame, 0);
  append_u32(frame, 1);            // num_rows
  append_u32(frame, 0x40000000u);  // row arity
  EXPECT_THROW(decode_batch_request(frame), std::runtime_error);

  frame.clear();
  append_u32(frame, kBatchResponseMagic);
  append_u32(frame, 0x7fffffffu);  // num_rows, no payload
  EXPECT_THROW(decode_batch_response(frame), std::runtime_error);
}

TEST(BatchProtocol, ResponseDecodeValidatesSalientCountBeforeReserve) {
  // Regression: decode_response used to reserve() the attacker-controlled
  // salient count before checking it against the frame size.
  std::vector<std::uint8_t> frame;
  append_u32(frame, kResponseMagic);
  append_u32(frame, 3);            // predicted class
  append_u32(frame, 0xfffffff0u);  // num_salient, nothing behind it
  EXPECT_THROW(decode_response(frame), std::runtime_error);
}

class BatchServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    forest_ = bolt::testing::small_forest(6, 4, 91);
    inputs_ = bolt::testing::small_dataset(100, 92);
    artifact_ = std::make_unique<core::BoltForest>(
        core::BoltForest::build(forest_, {}));
  }

  std::unique_ptr<InferenceServer> make_server(const std::string& path,
                                               ServerOptions options = {}) {
    return std::make_unique<InferenceServer>(
        path, [&] { return std::make_unique<core::BoltEngine>(*artifact_); },
        options);
  }

  forest::Forest forest_;
  data::Dataset inputs_{0, 0};
  std::unique_ptr<core::BoltForest> artifact_;
};

TEST_F(BatchServiceFixture, BatchEndToEndMatchesPerRowPredict) {
  const std::string path = temp_socket("batch_e2e");
  auto server = make_server(path);
  server->start();
  InferenceClient client(path);

  const std::size_t n = inputs_.num_rows();
  const std::size_t stride = inputs_.num_features();
  const auto classes =
      client.classify_batch(inputs_.raw_features(), n, stride);
  ASSERT_EQ(classes.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(classes[i], forest_.predict(inputs_.row(i))) << "row " << i;
  }
  EXPECT_EQ(server->requests_served(), n);

  // Empty and single-row batches round-trip too.
  EXPECT_TRUE(client.classify_batch({}, 0, stride).empty());
  const auto one = client.classify_batch(inputs_.row(0), 1, stride);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], forest_.predict(inputs_.row(0)));
  server->stop();
}

TEST_F(BatchServiceFixture, ArityMismatchRowAnswersMinusOneWithoutPoisoning) {
  const std::string path = temp_socket("batch_arity");
  auto server = make_server(path);
  server->start();

  // A ragged batch needs a hand-built request; InferenceClient only sends
  // uniform ones.
  BatchRequest req;
  req.add_row(inputs_.row(0));
  std::vector<float> bad(inputs_.num_features() + 3, 0.0f);
  req.add_row(bad);
  req.add_row(inputs_.row(1));
  std::vector<std::uint8_t> buf;
  encode_batch_request(req, buf);

  const int fd = raw_connect(path);
  write_frame(fd, buf);
  ASSERT_TRUE(read_frame(fd, buf));
  const BatchResponse resp = decode_batch_response(buf);
  ASSERT_EQ(resp.classes.size(), 3u);
  EXPECT_EQ(resp.classes[0], forest_.predict(inputs_.row(0)));
  EXPECT_EQ(resp.classes[1], -1);
  EXPECT_EQ(resp.classes[2], forest_.predict(inputs_.row(1)));
  ::close(fd);
  server->stop();
}

TEST_F(BatchServiceFixture, OversizedBatchFrameDropsConnectionNotServer) {
  const std::string path = temp_socket("batch_cap");
  auto server = make_server(path);
  server->start();

  // Claim a frame beyond the 64 MB cap; the server must drop the
  // connection without reading (or allocating) the payload.
  const int fd = raw_connect(path);
  const std::uint32_t huge = 256u << 20;
  ASSERT_EQ(::send(fd, &huge, sizeof(huge), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(huge)));
  std::uint8_t byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);  // clean EOF: connection dropped
  ::close(fd);

  // The server survives and keeps serving other clients.
  InferenceClient client(path);
  const auto classes = client.classify_batch(inputs_.row(0), 1,
                                             inputs_.num_features());
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0], forest_.predict(inputs_.row(0)));
  server->stop();
}

TEST_F(BatchServiceFixture, ClientDisconnectMidResponseDoesNotKillServer) {
  // Regression: write_frame used plain write(); a peer that closed after
  // sending its request made the response write raise SIGPIPE and kill the
  // whole server process. With MSG_NOSIGNAL the handler sees EPIPE and
  // just drops the connection.
  const std::string path = temp_socket("sigpipe");
  auto server = make_server(path);
  server->start();

  Request req;
  req.features.assign(inputs_.num_features(), 0.25f);
  std::vector<std::uint8_t> buf;
  encode_request(req, buf);

  for (int i = 0; i < 50; ++i) {
    const int fd = raw_connect(path);
    write_frame(fd, buf);
    // Close before reading the response: the handler's write lands on a
    // dead peer. (shutdown first so the close is visible immediately.)
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }

  // If SIGPIPE fired, this process is already gone; prove the server is
  // still answering.
  InferenceClient client(path);
  EXPECT_EQ(client.classify(inputs_.row(0)).predicted_class,
            forest_.predict(inputs_.row(0)));
  server->stop();
}

TEST_F(BatchServiceFixture, ConnectionChurnDoesNotAccumulateThreadsOrFds) {
  const std::string path = temp_socket("churn");
  auto server = make_server(path);
  server->start();

  // Let the first connection settle so baseline counts include any
  // lazily-created service state.
  {
    InferenceClient warmup(path);
    warmup.classify(inputs_.row(0));
  }
  const std::size_t fds_before = open_fd_count();
  const std::size_t threads_before = thread_count();

  for (int i = 0; i < 100; ++i) {
    InferenceClient client(path);
    client.classify(inputs_.row(i % inputs_.num_rows()));
  }

  // Handlers are detached and self-reaping; give them a moment to drain.
  for (int i = 0; i < 200 && server->active_handler_count() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server->active_handler_count(), 0u);
  for (int i = 0; i < 200 && thread_count() > threads_before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Pre-fix, 100 churned connections left 100 zombie thread handles and
  // their stacks. Allow a little slack for unrelated runtime threads.
  EXPECT_LE(thread_count(), threads_before + 2);
  EXPECT_LE(open_fd_count(), fds_before + 2);
  server->stop();
}

TEST_F(BatchServiceFixture, MaxConnectionsRejectsExcessAccepts) {
  const std::string path = temp_socket("conncap");
  auto server = make_server(path, ServerOptions{.max_connections = 2});
  server->start();

  InferenceClient a(path), b(path);
  // Pin both handlers live.
  EXPECT_GE(a.classify(inputs_.row(0)).predicted_class, 0);
  EXPECT_GE(b.classify(inputs_.row(1)).predicted_class, 0);

  // The third connection is accepted then immediately closed by the cap.
  const int fd = raw_connect(path);
  std::uint8_t byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);  // EOF: rejected
  ::close(fd);

  // Existing connections are unaffected.
  EXPECT_GE(a.classify(inputs_.row(2)).predicted_class, 0);
  server->stop();
}

std::uint64_t idle_timeouts(InferenceServer& server) {
  for (const auto& [n, v] : server.metrics().snapshot().counters) {
    if (n == "service.idle_timeouts") return v;
  }
  return 0;
}

TEST_F(BatchServiceFixture, SlowLorisConnectionIsReapedAndSlotFreed) {
  // Regression: pre-fix, a client that connected and never sent a frame
  // held a max_connections slot forever (no receive timeout), so a handful
  // of idle sockets could wedge the whole service.
  const std::string path = temp_socket("loris");
  ServerOptions opts;
  opts.max_connections = 1;
  opts.idle_timeout_ms = 100;
  auto server = make_server(path, opts);
  server->start();

  const int idle_fd = raw_connect(path);  // sends nothing, ever
  // Wait for the accept loop to hand the connection to a handler...
  for (int i = 0; i < 500 && server->active_handler_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // ...which occupies the only slot until the idle timeout reaps it.
  for (int i = 0; i < 500 && server->active_handler_count() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server->active_handler_count(), 0u);
  EXPECT_EQ(idle_timeouts(*server), 1u);

  // The slot is genuinely free again: a real client connects and is served.
  InferenceClient client(path);
  EXPECT_EQ(client.classify(inputs_.row(0)).predicted_class,
            forest_.predict(inputs_.row(0)));
  ::close(idle_fd);
  server->stop();
}

TEST_F(BatchServiceFixture, MidFrameStallIsAlsoReaped) {
  // A slow-loris variant: send a length prefix then stall. The receive
  // timeout must fire mid-frame too, not only before the first byte.
  const std::string path = temp_socket("loris_mid");
  ServerOptions opts;
  opts.idle_timeout_ms = 100;
  auto server = make_server(path, opts);
  server->start();

  const int fd = raw_connect(path);
  std::vector<std::uint8_t> prefix;
  append_u32(prefix, 64);  // promises 64 bytes, never delivers them
  EXPECT_EQ(::send(fd, prefix.data(), prefix.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(prefix.size()));
  for (int i = 0; i < 500 && server->active_handler_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (int i = 0; i < 500 && server->active_handler_count() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server->active_handler_count(), 0u);
  EXPECT_EQ(idle_timeouts(*server), 1u);
  ::close(fd);
  server->stop();
}

TEST_F(BatchServiceFixture, ActiveClientsSurviveIdleTimeoutWindow) {
  // The reaper must only fire on silence: a client that keeps sending
  // requests (each well within the window) is never disconnected, even
  // across a total connection lifetime many times the timeout.
  const std::string path = temp_socket("loris_active");
  ServerOptions opts;
  opts.idle_timeout_ms = 80;
  auto server = make_server(path, opts);
  server->start();

  InferenceClient client(path);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client.classify(inputs_.row(i)).predicted_class,
              forest_.predict(inputs_.row(i)));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  EXPECT_EQ(idle_timeouts(*server), 0u);
  server->stop();
}

}  // namespace
}  // namespace bolt::service
