// BatchScheduler unit tests (no sockets): aggregation triggers (full tile
// vs delay bound), cross-request row integrity, backpressure shedding,
// per-request deadlines, shutdown drain, and the scheduler.* metrics
// invariants. A controllable fake engine stands in for Bolt so tests can
// hold a worker inside predict_batch and observe the queue deterministically.
#include "service/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "../helpers.h"
#include "bolt/engine.h"

namespace bolt::service {
namespace {

using namespace std::chrono_literals;

/// Open/closed gate a test uses to park scheduler workers mid-inference.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = true;
  std::atomic<int> waiting{0};

  void close() {
    std::lock_guard lock(mu);
    open = false;
  }
  void release() {
    {
      std::lock_guard lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void pass() {
    waiting.fetch_add(1);
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return open; });
    waiting.fetch_sub(1);
  }
  /// Blocks until a worker is parked at the gate.
  void await_waiter() {
    while (waiting.load() == 0) std::this_thread::sleep_for(1ms);
  }
};

/// Telemetry shared across every FakeEngine the factory hands out.
struct FakeState {
  Gate gate;
  std::mutex mu;
  std::vector<std::size_t> batch_sizes;  // per predict_batch call
  std::atomic<std::uint64_t> rows_seen{0};
};

/// Arity-3 engine whose class for a row is `(int)row[0]` — so a response
/// carrying the wrong class pinpoints cross-request row mixing in the
/// scheduler's tile gather.
class FakeEngine final : public engines::Engine {
 public:
  explicit FakeEngine(FakeState* state) : state_(state) {}

  std::string_view name() const override { return "fake"; }
  std::size_t num_features() const override { return 3; }
  int predict(std::span<const float> x) override {
    return static_cast<int>(x[0]);
  }
  int predict_traced(std::span<const float> x, archsim::Machine&) override {
    return predict(x);
  }
  void vote(std::span<const float>, std::span<double> out) override {
    for (auto& v : out) v = 0.0;
  }
  void predict_batch(std::span<const float> rows, std::size_t num_rows,
                     std::size_t row_stride, std::span<int> out) override {
    state_->gate.pass();
    {
      std::lock_guard lock(state_->mu);
      state_->batch_sizes.push_back(num_rows);
    }
    state_->rows_seen.fetch_add(num_rows);
    for (std::size_t r = 0; r < num_rows; ++r) {
      out[r] = static_cast<int>(rows[r * row_stride]);
    }
  }
  std::size_t memory_bytes() const override { return 0; }

 private:
  FakeState* state_;
};

std::vector<float> row_of(float v) { return {v, 0.0f, 0.0f}; }

std::uint64_t counter_value(const util::MetricsRegistry& reg,
                            const std::string& name) {
  for (const auto& [n, v] : reg.snapshot().counters) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "counter not found: " << name;
  return 0;
}

std::uint64_t histogram_count(const util::MetricsRegistry& reg,
                              const std::string& name) {
  for (const auto& [n, h] : reg.snapshot().histograms) {
    if (n == name) return h.count;
  }
  ADD_FAILURE() << "histogram not found: " << name;
  return 0;
}

class SchedulerFixture : public ::testing::Test {
 protected:
  std::unique_ptr<BatchScheduler> make(const SchedulerOptions& opts) {
    SchedulerOptions o = opts;
    o.enabled = true;
    return std::make_unique<BatchScheduler>(
        [this] { return std::make_unique<FakeEngine>(&state_); }, o,
        registry_, /*record=*/true);
  }

  FakeState state_;
  util::MetricsRegistry registry_;
};

TEST_F(SchedulerFixture, ClassifiesAndReturnsPerRowAnswers) {
  SchedulerOptions opts;
  opts.workers = 2;
  auto sched = make(opts);
  sched->start();
  for (int v = 0; v < 20; ++v) {
    const auto r = sched->classify(row_of(static_cast<float>(v)));
    ASSERT_EQ(r.status, BatchScheduler::Status::kOk);
    EXPECT_EQ(r.predicted_class, v);
  }
  sched->stop();
  EXPECT_EQ(state_.rows_seen.load(), 20u);
}

TEST_F(SchedulerFixture, ConcurrentRequestsNeverMixRows) {
  SchedulerOptions opts;
  opts.workers = 2;
  opts.max_batch_size = 8;
  opts.max_queue_delay_us = 500;
  auto sched = make(opts);
  sched->start();
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        const int v = t * 1000 + i;
        const auto r = sched->classify(row_of(static_cast<float>(v)));
        if (r.status != BatchScheduler::Status::kOk ||
            r.predicted_class != v) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(state_.rows_seen.load(), 800u);
  sched->stop();
}

TEST_F(SchedulerFixture, AggregatesQueuedRequestsIntoOneTile) {
  SchedulerOptions opts;
  opts.workers = 1;
  opts.max_batch_size = 16;
  opts.max_queue_delay_us = 50000;  // don't run partial tiles early
  auto sched = make(opts);
  sched->start();

  // Park the single worker inside predict_batch on a first request, queue
  // eight more behind it, then release: the backlog must drain as ONE tile.
  state_.gate.close();
  std::thread head([&] {
    EXPECT_EQ(sched->classify(row_of(0)).status, BatchScheduler::Status::kOk);
  });
  state_.gate.await_waiter();
  std::vector<std::thread> queued;
  for (int v = 1; v <= 8; ++v) {
    queued.emplace_back([&, v] {
      const auto r = sched->classify(row_of(static_cast<float>(v)));
      EXPECT_EQ(r.status, BatchScheduler::Status::kOk);
      EXPECT_EQ(r.predicted_class, v);
    });
  }
  while (sched->queue_depth() < 8) std::this_thread::sleep_for(1ms);
  state_.gate.release();
  head.join();
  for (auto& th : queued) th.join();
  sched->stop();

  std::lock_guard lock(state_.mu);
  ASSERT_EQ(state_.batch_sizes.size(), 2u);
  EXPECT_EQ(state_.batch_sizes[0], 1u);
  EXPECT_EQ(state_.batch_sizes[1], 8u);
}

TEST_F(SchedulerFixture, FullTileRunsWithoutWaitingForDelay) {
  SchedulerOptions opts;
  opts.workers = 1;
  opts.max_batch_size = 4;
  opts.max_queue_delay_us = 2'000'000;  // 2 s: a timer-based run would hang
  auto sched = make(opts);
  sched->start();

  state_.gate.close();
  std::thread head([&] { sched->classify(row_of(99)); });
  state_.gate.await_waiter();
  std::vector<std::thread> queued;
  for (int v = 0; v < 4; ++v) {
    queued.emplace_back([&, v] {
      EXPECT_EQ(sched->classify(row_of(static_cast<float>(v))).predicted_class,
                v);
    });
  }
  while (sched->queue_depth() < 4) std::this_thread::sleep_for(1ms);
  const auto t0 = std::chrono::steady_clock::now();
  state_.gate.release();
  head.join();
  for (auto& th : queued) th.join();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // The 4-row tile is full, so it must run immediately, not after the 2 s
  // delay bound (generous margin for slow CI).
  EXPECT_LT(elapsed, 1s);
  sched->stop();
}

TEST_F(SchedulerFixture, PartialTileRunsAfterDelayBound) {
  SchedulerOptions opts;
  opts.workers = 1;
  opts.max_batch_size = 64;
  opts.max_queue_delay_us = 10000;  // 10 ms
  auto sched = make(opts);
  sched->start();
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = sched->classify(row_of(7));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(r.status, BatchScheduler::Status::kOk);
  EXPECT_EQ(r.predicted_class, 7);
  // A lone request must not wait for 63 peers that never come; it runs
  // once the head has aged max_queue_delay_us (plus scheduling noise).
  EXPECT_LT(elapsed, 5s);
  std::lock_guard lock(state_.mu);
  ASSERT_EQ(state_.batch_sizes.size(), 1u);
  EXPECT_EQ(state_.batch_sizes[0], 1u);
}

TEST_F(SchedulerFixture, FullQueueShedsInsteadOfBlocking) {
  SchedulerOptions opts;
  opts.workers = 1;
  opts.max_batch_size = 1;
  opts.queue_capacity = 2;
  opts.max_queue_delay_us = 0;
  auto sched = make(opts);
  sched->start();

  state_.gate.close();
  std::thread head([&] { sched->classify(row_of(0)); });
  state_.gate.await_waiter();  // worker busy; queue empty
  std::vector<std::thread> queued;
  for (int v = 1; v <= 2; ++v) {
    queued.emplace_back([&, v] {
      EXPECT_EQ(sched->classify(row_of(static_cast<float>(v))).status,
                BatchScheduler::Status::kOk);
    });
  }
  while (sched->queue_depth() < 2) std::this_thread::sleep_for(1ms);

  // Queue full: the third submission is answered kBusy immediately — the
  // caller is never blocked and nothing is silently dropped.
  const auto shed = sched->classify(row_of(3));
  EXPECT_EQ(shed.status, BatchScheduler::Status::kBusy);

  state_.gate.release();
  head.join();
  for (auto& th : queued) th.join();
  sched->stop();
  EXPECT_EQ(state_.rows_seen.load(), 3u);  // the shed row never ran
  EXPECT_EQ(counter_value(registry_, "scheduler.shed"), 1u);
}

TEST_F(SchedulerFixture, ExpiredRequestIsAnsweredNotComputed) {
  SchedulerOptions opts;
  opts.workers = 1;
  opts.max_batch_size = 4;
  opts.deadline_us = 1000;  // 1 ms
  auto sched = make(opts);
  sched->start();

  state_.gate.close();
  std::thread head([&] { sched->classify(row_of(0)); });
  state_.gate.await_waiter();
  BatchScheduler::Result late;
  std::thread waiter([&] { late = sched->classify(row_of(1)); });
  while (sched->queue_depth() < 1) std::this_thread::sleep_for(1ms);
  std::this_thread::sleep_for(20ms);  // let the queued deadline lapse
  state_.gate.release();
  head.join();
  waiter.join();
  sched->stop();

  EXPECT_EQ(late.status, BatchScheduler::Status::kExpired);
  EXPECT_EQ(late.predicted_class, -1);
  EXPECT_EQ(state_.rows_seen.load(), 1u);  // only the head row ran
  EXPECT_EQ(counter_value(registry_, "scheduler.expired"), 1u);
}

TEST_F(SchedulerFixture, StopDrainsAcceptedWorkThenRejectsNew) {
  SchedulerOptions opts;
  opts.workers = 1;
  opts.max_batch_size = 8;
  auto sched = make(opts);
  sched->start();

  state_.gate.close();
  std::thread head([&] {
    EXPECT_EQ(sched->classify(row_of(0)).status, BatchScheduler::Status::kOk);
  });
  state_.gate.await_waiter();
  std::vector<std::thread> queued;
  std::atomic<int> ok{0};
  for (int v = 1; v <= 3; ++v) {
    queued.emplace_back([&, v] {
      if (sched->classify(row_of(static_cast<float>(v))).status ==
          BatchScheduler::Status::kOk) {
        ok.fetch_add(1);
      }
    });
  }
  while (sched->queue_depth() < 3) std::this_thread::sleep_for(1ms);

  std::thread stopper([&] { sched->stop(); });
  std::this_thread::sleep_for(10ms);
  state_.gate.release();
  stopper.join();
  head.join();
  for (auto& th : queued) th.join();

  // Everything accepted before stop() was answered with a real result...
  EXPECT_EQ(ok.load(), 3);
  EXPECT_EQ(state_.rows_seen.load(), 4u);
  // ...and new work is refused, not queued into a dead scheduler.
  EXPECT_EQ(sched->classify(row_of(9)).status,
            BatchScheduler::Status::kShutdown);
}

TEST_F(SchedulerFixture, SubmitBeforeStartIsRejected) {
  auto sched = make({});
  EXPECT_EQ(sched->classify(row_of(1)).status,
            BatchScheduler::Status::kShutdown);
}

TEST_F(SchedulerFixture, ClassifyManySharesTheQueueAndShedsPerRow) {
  SchedulerOptions opts;
  opts.workers = 1;
  opts.max_batch_size = 2;
  opts.queue_capacity = 2;
  auto sched = make(opts);
  sched->start();

  state_.gate.close();
  std::thread head([&] { sched->classify(row_of(100)); });
  state_.gate.await_waiter();

  // 6 rows into a capacity-2 queue: rows 0-1 are accepted, rows 2-5 shed
  // individually with kBusy. Release the gate from the side so the blocking
  // classify_many can complete.
  std::vector<float> rows;
  for (int v = 0; v < 6; ++v) {
    const auto r = row_of(static_cast<float>(v));
    rows.insert(rows.end(), r.begin(), r.end());
  }
  std::vector<BatchScheduler::Result> results(6);
  std::thread opener([&] {
    std::this_thread::sleep_for(30ms);
    state_.gate.release();
  });
  sched->classify_many(rows, 6, 3, results);
  opener.join();
  head.join();

  EXPECT_EQ(results[0].status, BatchScheduler::Status::kOk);
  EXPECT_EQ(results[0].predicted_class, 0);
  EXPECT_EQ(results[1].status, BatchScheduler::Status::kOk);
  EXPECT_EQ(results[1].predicted_class, 1);
  for (int v = 2; v < 6; ++v) {
    EXPECT_EQ(results[v].status, BatchScheduler::Status::kBusy);
  }
  sched->stop();
  EXPECT_EQ(counter_value(registry_, "scheduler.shed"), 4u);
}

TEST_F(SchedulerFixture, MetricsInvariantsHold) {
  SchedulerOptions opts;
  opts.workers = 2;
  opts.max_batch_size = 8;
  auto sched = make(opts);
  sched->start();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        sched->classify(row_of(static_cast<float>(t * 50 + i)));
      }
    });
  }
  for (auto& th : threads) th.join();
  sched->stop();

  // Every request passed through the queue exactly once: the queue-wait
  // histogram count equals rows inferred + rows expired (none here), and
  // the tile-size histogram matches the batches counter.
  EXPECT_EQ(histogram_count(registry_, "scheduler.queue_wait_us"),
            state_.rows_seen.load() +
                counter_value(registry_, "scheduler.expired"));
  EXPECT_EQ(histogram_count(registry_, "scheduler.batch_size"),
            counter_value(registry_, "scheduler.batches"));
  EXPECT_EQ(state_.rows_seen.load(), 200u);
  EXPECT_EQ(counter_value(registry_, "scheduler.shed"), 0u);
  // Quiescent scheduler: nothing left queued.
  EXPECT_EQ(sched->queue_depth(), 0u);
}

TEST_F(SchedulerFixture, BitIdenticalToUnbatchedBoltEngine) {
  // The real engine through the scheduler must answer exactly what the
  // unbatched per-row path answers (the batch kernel's contract, exercised
  // here through the scheduler's gather/scatter).
  const forest::Forest forest = bolt::testing::small_forest(6, 4, 17);
  const data::Dataset inputs = bolt::testing::small_dataset(200, 18);
  const core::BoltForest artifact = core::BoltForest::build(forest, {});

  SchedulerOptions opts;
  opts.enabled = true;
  opts.workers = 2;
  opts.max_batch_size = 16;
  opts.max_queue_delay_us = 300;
  BatchScheduler sched(
      [&] { return std::make_unique<core::BoltEngine>(artifact); }, opts,
      registry_, true);
  sched.start();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = t; i < inputs.num_rows(); i += 8) {
        const auto r = sched.classify(inputs.row(i));
        if (r.status != BatchScheduler::Status::kOk ||
            r.predicted_class != forest.predict(inputs.row(i))) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  sched.stop();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace bolt::service
