// Admin HTTP surface + timeline export integration (docs/OBSERVABILITY.md
// "Admin endpoints"): request routing (404/405/HEAD/414), /healthz and
// /readyz lifecycle, /timeline Chrome Trace JSON with event-loop,
// scheduler, engine, and generation-swap events, the labeled per-op /
// per-transport Prometheus series, and the model_generation gauge across
// a live ModelHandle::reload().
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "../helpers.h"
#include "bolt/artifact/handle.h"
#include "service/metrics_http.h"
#include "service/server.h"
#include "util/prometheus.h"
#include "util/trace_export.h"

namespace bolt::service {
namespace {

std::string temp_path(const char* tag, const char* ext) {
  return ::testing::TempDir() + "/bolt_admin_" + tag + "_" +
         std::to_string(::getpid()) + ext;
}

std::uint64_t stat_value(const std::string& text, const std::string& name) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    if (text.compare(pos, name.size(), name) == 0 &&
        pos + name.size() < eol && text[pos + name.size()] == ' ') {
      return std::stoull(text.substr(pos + name.size() + 1,
                                     eol - pos - name.size() - 1));
    }
    pos = eol + 1;
  }
  ADD_FAILURE() << "metric not found: " << name << "\n" << text;
  return 0;
}

/// Sends `raw` verbatim to 127.0.0.1:`port` and returns the full response.
std::string http_raw(std::int32_t port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  (void)!::write(fd, raw.data(), raw.size());
  std::string out;
  char buf[4096];
  ssize_t r;
  while ((r = ::read(fd, buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  return out;
}

std::string http_body(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

class AdminHttpFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Timeline::instance().reset_for_testing();
    forest_ = bolt::testing::small_forest(6, 4, 31);
    inputs_ = bolt::testing::small_dataset(80, 32);
    artifact_ = std::make_unique<core::BoltForest>(
        core::BoltForest::build(forest_, {}));
  }
  void TearDown() override { util::Timeline::instance().reset_for_testing(); }

  std::unique_ptr<InferenceServer> make_server(const char* tag,
                                               ServerOptions opts) {
    opts.metrics_port = 0;  // ephemeral
    auto server = std::make_unique<InferenceServer>(
        temp_path(tag, ".sock"),
        [&] { return std::make_unique<core::BoltEngine>(*artifact_); }, opts);
    server->start();
    return server;
  }

  forest::Forest forest_;
  data::Dataset inputs_{0, 0};
  std::unique_ptr<core::BoltForest> artifact_;
};

TEST_F(AdminHttpFixture, RoutingAndMethodHandling) {
  auto server = make_server("routing", ServerOptions{});
  const std::int32_t port = server->metrics_http_port();
  ASSERT_GT(port, 0);

  // Exact-path routing: /metrics works, a prefix-extended path does not.
  int status = 0;
  admin_http_get("127.0.0.1", static_cast<std::uint16_t>(port), "/metrics",
                 &status);
  EXPECT_EQ(status, 200);
  admin_http_get("127.0.0.1", static_cast<std::uint16_t>(port),
                 "/metricsfoo", &status);
  EXPECT_EQ(status, 404);
  admin_http_get("127.0.0.1", static_cast<std::uint16_t>(port), "/nope",
                 &status);
  EXPECT_EQ(status, 404);
  // A query string does not break path matching.
  admin_http_get("127.0.0.1", static_cast<std::uint16_t>(port),
                 "/healthz?verbose=1", &status);
  EXPECT_EQ(status, 200);

  // Non-GET methods: 405 with the allowed set.
  const std::string post =
      http_raw(port, "POST /metrics HTTP/1.1\r\nHost: l\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos) << post;
  EXPECT_NE(post.find("Allow: GET, HEAD"), std::string::npos) << post;

  // HEAD: full headers with the real Content-Length, no body.
  const std::string head =
      http_raw(port, "HEAD /healthz HTTP/1.1\r\nHost: l\r\n\r\n");
  EXPECT_NE(head.find("200 OK"), std::string::npos) << head;
  EXPECT_NE(head.find("Content-Length: 3"), std::string::npos) << head;
  EXPECT_TRUE(http_body(head).empty()) << head;

  // Malformed request line.
  EXPECT_NE(http_raw(port, "NONSENSE\r\n\r\n").find("400"),
            std::string::npos);

  // Request line beyond the cap.
  const std::string long_req =
      "GET /" + std::string(4096, 'a') + " HTTP/1.1\r\n\r\n";
  EXPECT_NE(http_raw(port, long_req).find("414"), std::string::npos);
  server->stop();
}

TEST_F(AdminHttpFixture, HealthAndReadiness) {
  // healthz: the process answers. readyz: serving traffic AND the
  // optional application hook agrees.
  std::atomic<bool> app_ready{true};
  ServerOptions opts;
  opts.ready = [&app_ready] { return app_ready.load(); };
  auto server = make_server("ready", opts);
  const std::int32_t port = server->metrics_http_port();
  ASSERT_GT(port, 0);

  int status = 0;
  std::string body = admin_http_get(
      "127.0.0.1", static_cast<std::uint16_t>(port), "/healthz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");
  body = admin_http_get("127.0.0.1", static_cast<std::uint16_t>(port),
                        "/readyz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ready\n");

  app_ready.store(false);
  body = admin_http_get("127.0.0.1", static_cast<std::uint16_t>(port),
                        "/readyz", &status);
  EXPECT_EQ(status, 503);
  EXPECT_EQ(body, "not ready\n");
  // Liveness is unaffected by readiness.
  admin_http_get("127.0.0.1", static_cast<std::uint16_t>(port), "/healthz",
                 &status);
  EXPECT_EQ(status, 200);
  server->stop();
}

TEST_F(AdminHttpFixture, LabeledSeriesAndPerOpCounters) {
  auto server = make_server("labels", ServerOptions{});
  const std::int32_t port = server->metrics_http_port();
  ASSERT_GT(port, 0);

  InferenceClient client(server->socket_path());
  for (int i = 0; i < 7; ++i) client.classify(inputs_.row(i));
  client.stats();

  int status = 0;
  const std::string body = admin_http_get(
      "127.0.0.1", static_cast<std::uint16_t>(port), "/metrics", &status);
  ASSERT_EQ(status, 200);
  std::string error;
  EXPECT_TRUE(util::validate_prometheus(body, &error)) << error << "\n"
                                                       << body;
  EXPECT_EQ(stat_value(body, "service_requests_by_op{op=\"classify\"}"), 7u);
  EXPECT_GE(stat_value(body, "service_requests_by_op{op=\"stats\"}"), 1u);
  EXPECT_GE(
      stat_value(body, "service_connections_by_transport{transport=\"unix\"}"),
      1u);
  // One TYPE line per labeled base, as the exposition format requires.
  EXPECT_EQ(body.find("# TYPE service_requests_by_op counter"),
            body.rfind("# TYPE service_requests_by_op counter"));
  EXPECT_NE(body.find("model_generation"), std::string::npos) << body;
  server->stop();
}

TEST_F(AdminHttpFixture, EventLoopMetricsUnderConnectionChurn) {
  if (!util::kTimelineCompiledIn) GTEST_SKIP() << "tracing compiled out";
  ServerOptions opts;
  opts.front_end = FrontEnd::kEventLoop;
  opts.workers = 2;
  opts.timeline.sample_every = 1;
  auto server = make_server("churn", opts);
  const std::int32_t port = server->metrics_http_port();
  ASSERT_GT(port, 0);

  // Churn: short-lived connections, one classify each.
  constexpr int kConns = 24;
  for (int c = 0; c < kConns; ++c) {
    InferenceClient client(server->socket_path());
    EXPECT_GE(client.classify(inputs_.row(c % 16)).predicted_class, 0);
  }

  int status = 0;
  const std::string body = admin_http_get(
      "127.0.0.1", static_cast<std::uint16_t>(port), "/metrics", &status);
  ASSERT_EQ(status, 200);
  std::string error;
  EXPECT_TRUE(util::validate_prometheus(body, &error)) << error;
  EXPECT_GE(
      stat_value(body, "service_connections_by_transport{transport=\"unix\"}"),
      static_cast<std::uint64_t>(kConns));
  EXPECT_EQ(stat_value(body, "service_requests"),
            static_cast<std::uint64_t>(kConns));

  // The event loop fed the timeline: epoll wake batches and the
  // readiness->dispatch spans are in the drain.
  const std::string trace = admin_http_get(
      "127.0.0.1", static_cast<std::uint16_t>(port), "/timeline", &status);
  ASSERT_EQ(status, 200);
  EXPECT_NE(trace.find("\"cat\":\"loop\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"name\":\"epoll_wake\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"dispatch_wait\""), std::string::npos);
  server->stop();
}

TEST_F(AdminHttpFixture, TimelineEndpointDrainsChromeTraceJson) {
  if (!util::kTimelineCompiledIn) GTEST_SKIP() << "tracing compiled out";
  ServerOptions opts;
  opts.timeline.sample_every = 1;
  opts.scheduler.enabled = true;
  opts.scheduler.max_batch_size = 8;
  opts.scheduler.max_queue_delay_us = 100;
  auto server = make_server("timeline", opts);
  const std::int32_t port = server->metrics_http_port();
  ASSERT_GT(port, 0);

  InferenceClient client(server->socket_path());
  for (int i = 0; i < 16; ++i) client.classify(inputs_.row(i));

  int status = 0;
  const std::string trace = admin_http_get(
      "127.0.0.1", static_cast<std::uint16_t>(port), "/timeline", &status);
  ASSERT_EQ(status, 200);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos) << trace;
  // Request spans, scheduler tile lifecycle, and engine stages all land
  // in one drain.
  EXPECT_NE(trace.find("\"cat\":\"service\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"cat\":\"sched\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"name\":\"tile_form\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"kernel\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"engine\""), std::string::npos) << trace;

  // Consumed on drain: an immediate re-scrape is empty but still valid.
  const std::string again = admin_http_get(
      "127.0.0.1", static_cast<std::uint16_t>(port), "/timeline", &status);
  ASSERT_EQ(status, 200);
  EXPECT_NE(again.find("\"traceEvents\":["), std::string::npos) << again;
  server->stop();
}

TEST_F(AdminHttpFixture, GenerationGaugeTracksLiveReload) {
  // Serve through a ModelHandle backed by a real artifact file, reload it
  // under live traffic, and watch the generation move through STATS, the
  // Prometheus gauge, and the timeline's swap/drain events.
  const std::string artifact_path = temp_path("gen", ".bolt");
  artifact_->save_file(artifact_path);
  artifact::ModelHandle handle(artifact_path);
  EXPECT_EQ(handle.generation(), 1u);

  ServerOptions opts;
  opts.metrics_port = 0;
  opts.timeline.sample_every = 1;
  opts.model_generation = [&handle] { return handle.generation(); };
  InferenceServer server(
      temp_path("gen", ".sock"),
      [&handle] { return std::make_unique<core::BoltEngine>(handle.current()); },
      opts);
  server.start();
  const std::int32_t port = server.metrics_http_port();
  ASSERT_GT(port, 0);

  int status = 0;
  std::string body = admin_http_get(
      "127.0.0.1", static_cast<std::uint16_t>(port), "/metrics", &status);
  ASSERT_EQ(status, 200);
  EXPECT_EQ(stat_value(body, "model_generation"), 1u);

  // Reload while a client hammers the old generation.
  std::atomic<bool> stop{false};
  std::thread traffic([&] {
    InferenceClient client(server.socket_path());
    int i = 0;
    while (!stop.load()) {
      EXPECT_GE(client.classify(inputs_.row(i++ % 32)).predicted_class, 0);
    }
  });
  handle.reload();
  EXPECT_EQ(handle.generation(), 2u);
  stop.store(true);
  traffic.join();

  const std::string stats =
      InferenceClient(server.socket_path()).stats();
  EXPECT_EQ(stat_value(stats, "model.generation"), 2u);
  body = admin_http_get("127.0.0.1", static_cast<std::uint16_t>(port),
                        "/metrics", &status);
  EXPECT_EQ(stat_value(body, "model_generation"), 2u);

  if (util::kTimelineCompiledIn) {
    const std::string trace = admin_http_get(
        "127.0.0.1", static_cast<std::uint16_t>(port), "/timeline", &status);
    ASSERT_EQ(status, 200);
    EXPECT_NE(trace.find("\"cat\":\"model\""), std::string::npos) << trace;
    EXPECT_NE(trace.find("\"name\":\"reload\""), std::string::npos);
    EXPECT_NE(trace.find("\"name\":\"swap\""), std::string::npos);
    EXPECT_NE(trace.find("\"args\":{\"generation\":2}"), std::string::npos);
  }
  server.stop();
}

}  // namespace
}  // namespace bolt::service
