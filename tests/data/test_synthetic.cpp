#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <set>

#include "forest/trainer.h"

namespace bolt::data {
namespace {

TEST(SynthMnist, ShapeAndRanges) {
  Dataset ds = make_synth_mnist(200, 1);
  EXPECT_EQ(ds.num_rows(), 200u);
  EXPECT_EQ(ds.num_features(), 784u);
  EXPECT_EQ(ds.num_classes(), 10u);
  std::set<int> labels;
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    labels.insert(ds.label(i));
    for (float v : ds.row(i)) {
      ASSERT_GE(v, 0.0f);
      ASSERT_LE(v, 255.0f);
    }
  }
  EXPECT_GE(labels.size(), 8u);  // nearly all digits appear in 200 draws
}

TEST(SynthMnist, DeterministicPerSeed) {
  Dataset a = make_synth_mnist(20, 5);
  Dataset b = make_synth_mnist(20, 5);
  Dataset c = make_synth_mnist(20, 6);
  EXPECT_EQ(a.raw_features(), b.raw_features());
  EXPECT_EQ(a.raw_labels(), b.raw_labels());
  EXPECT_NE(a.raw_features(), c.raw_features());
}

TEST(SynthMnist, IsLearnable) {
  // The generator must produce structure a shallow forest can learn —
  // otherwise the benchmark forests would be degenerate.
  Dataset ds = make_synth_mnist(800, 2);
  auto [train, test] = ds.split(0.8);
  forest::TrainConfig cfg;
  cfg.num_trees = 10;
  cfg.max_height = 4;
  const auto f = forest::train_random_forest(train, cfg);
  EXPECT_GT(forest::accuracy(f, test), 0.5);  // 10-class chance is 0.1
}

TEST(SynthLstw, ShapeAndFeatureNames) {
  Dataset ds = make_synth_lstw(300, 1);
  EXPECT_EQ(ds.num_features(), 11u);
  EXPECT_EQ(ds.num_classes(), 4u);
  ASSERT_EQ(ds.feature_names().size(), 11u);
  EXPECT_EQ(ds.feature_names()[0], "latitude");
}

TEST(SynthLstw, CoordinatesUseShiftedByteFriendlyRange) {
  // The paper's §5 normalization: latitude shifted to [0, 180].
  Dataset ds = make_synth_lstw(500, 2);
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    ASSERT_GE(ds.row(i)[0], 0.0f);
    ASSERT_LE(ds.row(i)[0], 180.0f);
  }
}

TEST(SynthLstw, AllSeverityClassesOccur) {
  Dataset ds = make_synth_lstw(2000, 3);
  std::set<int> labels;
  for (std::size_t i = 0; i < ds.num_rows(); ++i) labels.insert(ds.label(i));
  EXPECT_EQ(labels.size(), 4u);
}

TEST(SynthLstw, IsLearnable) {
  Dataset ds = make_synth_lstw(2000, 4);
  auto [train, test] = ds.split(0.8);
  forest::TrainConfig cfg;
  cfg.num_trees = 10;
  cfg.max_height = 5;
  const auto f = forest::train_random_forest(train, cfg);
  EXPECT_GT(forest::accuracy(f, test), 0.40);  // 4-class chance is ~0.25
}

TEST(SynthYelp, ShapeAndSparsity) {
  Dataset ds = make_synth_yelp(100, 1);
  EXPECT_EQ(ds.num_features(), 1500u);
  EXPECT_EQ(ds.num_classes(), 5u);
  // Bag-of-words rows must be sparse non-negative counts.
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    std::size_t nonzero = 0;
    for (float v : ds.row(i)) {
      ASSERT_GE(v, 0.0f);
      ASSERT_EQ(v, static_cast<float>(static_cast<int>(v)));
      nonzero += v > 0;
    }
    EXPECT_GT(nonzero, 5u);
    EXPECT_LT(nonzero, 100u);
  }
}

TEST(SynthYelp, Deterministic) {
  Dataset a = make_synth_yelp(30, 9);
  Dataset b = make_synth_yelp(30, 9);
  EXPECT_EQ(a.raw_features(), b.raw_features());
}

}  // namespace
}  // namespace bolt::data
