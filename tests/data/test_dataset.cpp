#include "data/dataset.h"

#include <gtest/gtest.h>

#include <set>

namespace bolt::data {
namespace {

Dataset make_small() {
  Dataset ds(2, 3);
  const float rows[][2] = {{0, 1}, {2, 3}, {4, 5}, {6, 7}};
  for (int i = 0; i < 4; ++i) ds.add_row(rows[i], i % 3);
  return ds;
}

TEST(Dataset, BasicAccessors) {
  Dataset ds = make_small();
  EXPECT_EQ(ds.num_rows(), 4u);
  EXPECT_EQ(ds.num_features(), 2u);
  EXPECT_EQ(ds.num_classes(), 3u);
  EXPECT_EQ(ds.row(1)[0], 2.0f);
  EXPECT_EQ(ds.row(1)[1], 3.0f);
  EXPECT_EQ(ds.label(2), 2);
}

TEST(Dataset, AddRowValidatesArity) {
  Dataset ds(2, 2);
  const float bad[3] = {1, 2, 3};
  EXPECT_THROW(ds.add_row(bad, 0), std::invalid_argument);
}

TEST(Dataset, AddRowValidatesLabelRange) {
  Dataset ds(1, 2);
  const float x[1] = {0};
  EXPECT_THROW(ds.add_row(x, 2), std::invalid_argument);
  EXPECT_THROW(ds.add_row(x, -1), std::invalid_argument);
}

TEST(Dataset, TakeSelectsRowsWithRepetition) {
  Dataset ds = make_small();
  const std::size_t idx[] = {3, 0, 3};
  Dataset sub = ds.take(idx);
  EXPECT_EQ(sub.num_rows(), 3u);
  EXPECT_EQ(sub.row(0)[0], 6.0f);
  EXPECT_EQ(sub.row(1)[0], 0.0f);
  EXPECT_EQ(sub.row(2)[0], 6.0f);
  EXPECT_EQ(sub.num_classes(), 3u);
}

TEST(Dataset, SplitPartitionsAllRows) {
  Dataset ds(1, 2);
  for (int i = 0; i < 100; ++i) {
    const float x[1] = {static_cast<float>(i)};
    ds.add_row(x, i % 2);
  }
  auto [train, test] = ds.split(0.8, 42);
  EXPECT_EQ(train.num_rows(), 80u);
  EXPECT_EQ(test.num_rows(), 20u);
  std::set<float> seen;
  for (std::size_t i = 0; i < train.num_rows(); ++i) {
    seen.insert(train.row(i)[0]);
  }
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    // No overlap between splits.
    EXPECT_FALSE(seen.count(test.row(i)[0]));
    seen.insert(test.row(i)[0]);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Dataset, SplitIsDeterministicPerSeed) {
  Dataset ds(1, 2);
  for (int i = 0; i < 50; ++i) {
    const float x[1] = {static_cast<float>(i)};
    ds.add_row(x, 0);
  }
  auto [a1, b1] = ds.split(0.5, 7);
  auto [a2, b2] = ds.split(0.5, 7);
  auto [a3, b3] = ds.split(0.5, 8);
  EXPECT_EQ(a1.raw_features(), a2.raw_features());
  EXPECT_NE(a1.raw_features(), a3.raw_features());
}

}  // namespace
}  // namespace bolt::data
