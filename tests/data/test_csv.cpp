#include "data/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bolt::data {
namespace {

TEST(Csv, RoundTripPreservesData) {
  Dataset ds(3, 4);
  ds.feature_names() = {"alpha", "beta", "gamma"};
  const float rows[][3] = {{1.5f, -2.0f, 0.0f}, {3.25f, 4.0f, 5.0f}};
  ds.add_row(rows[0], 1);
  ds.add_row(rows[1], 3);

  std::stringstream ss;
  write_csv(ds, ss);
  Dataset back = read_csv(ss, 4);

  ASSERT_EQ(back.num_rows(), 2u);
  EXPECT_EQ(back.num_features(), 3u);
  EXPECT_EQ(back.num_classes(), 4u);
  EXPECT_EQ(back.feature_names()[0], "alpha");
  EXPECT_EQ(back.row(0)[0], 1.5f);
  EXPECT_EQ(back.row(0)[1], -2.0f);
  EXPECT_EQ(back.row(1)[2], 5.0f);
  EXPECT_EQ(back.label(0), 1);
  EXPECT_EQ(back.label(1), 3);
}

TEST(Csv, InfersNumClassesFromData) {
  std::stringstream ss("f0,label\n1.0,0\n2.0,5\n");
  Dataset ds = read_csv(ss);
  EXPECT_EQ(ds.num_classes(), 6u);
}

TEST(Csv, DefaultFeatureNames) {
  Dataset ds(2, 2);
  const float row[2] = {1, 2};
  ds.add_row(row, 0);
  std::stringstream ss;
  write_csv(ds, ss);
  std::string header;
  std::getline(ss, header);
  EXPECT_EQ(header, "f0,f1,label");
}

TEST(Csv, RejectsMissingLabelColumn) {
  std::stringstream ss("a,b\n1,2\n");
  EXPECT_THROW(read_csv(ss), std::runtime_error);
}

TEST(Csv, RejectsRaggedRows) {
  std::stringstream ss("a,label\n1,0\n1,2,3\n");
  EXPECT_THROW(read_csv(ss), std::runtime_error);
}

TEST(Csv, RejectsGarbageNumbers) {
  std::stringstream ss("a,label\nxyz,0\n");
  EXPECT_THROW(read_csv(ss), std::runtime_error);
}

TEST(Csv, RejectsEmptyInput) {
  std::stringstream ss("");
  EXPECT_THROW(read_csv(ss), std::runtime_error);
}

TEST(Csv, SkipsBlankLines) {
  std::stringstream ss("a,label\n1,0\n\n2,1\n");
  Dataset ds = read_csv(ss);
  EXPECT_EQ(ds.num_rows(), 2u);
}

}  // namespace
}  // namespace bolt::data
