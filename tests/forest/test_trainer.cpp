#include "forest/trainer.h"

#include <gtest/gtest.h>

#include "../helpers.h"
#include "data/synthetic.h"

namespace bolt::forest {
namespace {

data::Dataset xor_dataset(std::size_t n = 400) {
  // XOR of two thresholded features — requires height >= 2 to separate.
  data::Dataset ds(2, 2);
  util::Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    const float a = static_cast<float>(rng.uniform());
    const float b = static_cast<float>(rng.uniform());
    const float x[2] = {a, b};
    ds.add_row(x, (a > 0.5f) != (b > 0.5f) ? 1 : 0);
  }
  return ds;
}

TEST(Trainer, RespectsMaxHeight) {
  data::Dataset ds = bolt::testing::small_dataset();
  for (std::size_t h : {1u, 2u, 4u, 6u}) {
    TrainConfig cfg;
    cfg.max_height = h;
    cfg.num_trees = 4;
    const Forest f = train_random_forest(ds, cfg);
    EXPECT_LE(f.max_height(), h);
  }
}

TEST(Trainer, ProducesRequestedTreeCount) {
  data::Dataset ds = bolt::testing::small_dataset();
  TrainConfig cfg;
  cfg.num_trees = 7;
  const Forest f = train_random_forest(ds, cfg);
  EXPECT_EQ(f.trees.size(), 7u);
  EXPECT_EQ(f.weights.size(), 7u);
  for (double w : f.weights) EXPECT_EQ(w, 1.0);
}

TEST(Trainer, LearnsXorWithSufficientHeight) {
  data::Dataset ds = xor_dataset();
  auto [train, test] = ds.split(0.8);
  TrainConfig cfg;
  cfg.max_height = 4;
  cfg.num_trees = 15;
  cfg.max_features = 2;
  const Forest f = train_random_forest(train, cfg);
  EXPECT_GT(accuracy(f, test), 0.9);
}

TEST(Trainer, HeightOneCannotLearnXor) {
  data::Dataset ds = xor_dataset();
  auto [train, test] = ds.split(0.8);
  TrainConfig cfg;
  cfg.max_height = 1;
  cfg.num_trees = 15;
  cfg.max_features = 2;
  const Forest f = train_random_forest(train, cfg);
  EXPECT_LT(accuracy(f, test), 0.70);
}

TEST(Trainer, DeterministicPerSeed) {
  data::Dataset ds = bolt::testing::small_dataset();
  TrainConfig cfg;
  cfg.num_trees = 3;
  cfg.seed = 99;
  const Forest a = train_random_forest(ds, cfg);
  const Forest b = train_random_forest(ds, cfg);
  ASSERT_EQ(a.trees.size(), b.trees.size());
  for (std::size_t t = 0; t < a.trees.size(); ++t) {
    ASSERT_EQ(a.trees[t].nodes().size(), b.trees[t].nodes().size());
    for (std::size_t n = 0; n < a.trees[t].nodes().size(); ++n) {
      EXPECT_EQ(a.trees[t].nodes()[n].feature, b.trees[t].nodes()[n].feature);
      EXPECT_EQ(a.trees[t].nodes()[n].threshold,
                b.trees[t].nodes()[n].threshold);
    }
  }
}

TEST(Trainer, DifferentSeedsDiffer) {
  data::Dataset ds = bolt::testing::small_dataset();
  TrainConfig cfg;
  cfg.num_trees = 3;
  cfg.seed = 1;
  const Forest a = train_random_forest(ds, cfg);
  cfg.seed = 2;
  const Forest b = train_random_forest(ds, cfg);
  bool identical = true;
  for (std::size_t t = 0; t < a.trees.size() && identical; ++t) {
    if (a.trees[t].nodes().size() != b.trees[t].nodes().size()) {
      identical = false;
    }
  }
  // Bootstrap + feature sampling make identical forests essentially
  // impossible on this data.
  EXPECT_FALSE(identical && a.trees[0].nodes().size() ==
                                b.trees[0].nodes().size() &&
               a.trees[0].nodes()[0].feature == b.trees[0].nodes()[0].feature &&
               a.trees[0].nodes()[0].threshold == b.trees[0].nodes()[0].threshold);
}

TEST(Trainer, PureNodeBecomesLeaf) {
  // Single-class data: the tree must be a single leaf.
  data::Dataset ds(2, 2);
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const float x[2] = {static_cast<float>(rng.uniform()),
                        static_cast<float>(rng.uniform())};
    ds.add_row(x, 1);
  }
  TrainConfig cfg;
  cfg.num_trees = 1;
  cfg.bootstrap = false;
  const Forest f = train_random_forest(ds, cfg);
  EXPECT_EQ(f.trees[0].num_leaves(), 1u);
  const float x[2] = {0.5f, 0.5f};
  EXPECT_EQ(f.predict(x), 1);
}

TEST(Trainer, ConstantFeaturesYieldLeaf) {
  data::Dataset ds(2, 2);
  for (int i = 0; i < 20; ++i) {
    const float x[2] = {1.0f, 2.0f};
    ds.add_row(x, i % 2);
  }
  TrainConfig cfg;
  cfg.num_trees = 1;
  cfg.bootstrap = false;
  const Forest f = train_random_forest(ds, cfg);
  EXPECT_EQ(f.trees[0].num_leaves(), 1u);
}

TEST(Trainer, MinSamplesLeafRespected) {
  data::Dataset ds = bolt::testing::small_dataset(200);
  TrainConfig cfg;
  cfg.num_trees = 1;
  cfg.bootstrap = false;
  cfg.min_samples_leaf = 20;
  cfg.max_height = 10;
  const Forest f = train_random_forest(ds, cfg);
  // With 200 rows and >= 20 rows per leaf there can be at most 10 leaves.
  EXPECT_LE(f.trees[0].num_leaves(), 10u);
}

TEST(Trainer, TrainedForestPassesCheck) {
  const Forest f = bolt::testing::small_forest();
  EXPECT_NO_THROW(f.check());
}

TEST(Accuracy, EmptyDatasetIsZero) {
  const Forest f = bolt::testing::tiny_forest();
  data::Dataset empty(2, 3);
  EXPECT_EQ(accuracy(f, empty), 0.0);
}

}  // namespace
}  // namespace bolt::forest
