#include "forest/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "../helpers.h"
#include "forest/trainer.h"

namespace bolt::forest {
namespace {

TEST(Serialize, RoundTripBitExact) {
  Forest f = bolt::testing::small_forest(4, 4);
  f.weights = {1.0, 0.25, 3.5, 2.0};
  std::stringstream ss;
  save_forest(f, ss);
  Forest back = load_forest(ss);

  EXPECT_EQ(back.num_features, f.num_features);
  EXPECT_EQ(back.num_classes, f.num_classes);
  EXPECT_EQ(back.weights, f.weights);
  ASSERT_EQ(back.trees.size(), f.trees.size());
  for (std::size_t t = 0; t < f.trees.size(); ++t) {
    const auto& a = f.trees[t].nodes();
    const auto& b = back.trees[t].nodes();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t n = 0; n < a.size(); ++n) {
      EXPECT_EQ(a[n].feature, b[n].feature);
      EXPECT_EQ(a[n].threshold, b[n].threshold);
      EXPECT_EQ(a[n].left, b[n].left);
      EXPECT_EQ(a[n].right, b[n].right);
      EXPECT_EQ(a[n].leaf_class, b[n].leaf_class);
    }
  }
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream ss("garbage data here and more of it");
  EXPECT_THROW(load_forest(ss), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream) {
  Forest f = bolt::testing::small_forest(2, 3);
  std::stringstream ss;
  save_forest(f, ss);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_forest(cut), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  Forest f = bolt::testing::small_forest(2, 3);
  const std::string path = ::testing::TempDir() + "/bolt_forest.bin";
  save_forest_file(f, path);
  Forest back = load_forest_file(path);
  util::Rng rng(14);
  for (int i = 0; i < 50; ++i) {
    const auto x = bolt::testing::random_sample(rng, f.num_features);
    EXPECT_EQ(back.predict(x), f.predict(x));
  }
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_forest_file("/nonexistent/path/f.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace bolt::forest
