#include "forest/boosted.h"

#include <gtest/gtest.h>

#include "../helpers.h"

namespace bolt::forest {
namespace {

TEST(Boosted, ProducesWeightedEnsemble) {
  data::Dataset ds = bolt::testing::small_dataset(800);
  BoostConfig cfg;
  cfg.num_rounds = 8;
  const Forest f = train_boosted(ds, cfg);
  EXPECT_GE(f.trees.size(), 1u);
  EXPECT_LE(f.trees.size(), 8u);
  EXPECT_EQ(f.trees.size(), f.weights.size());
  for (double w : f.weights) EXPECT_GT(w, 0.0);
  EXPECT_NO_THROW(f.check());
}

TEST(Boosted, WeightsAreNotAllEqual) {
  data::Dataset ds = bolt::testing::small_dataset(800);
  BoostConfig cfg;
  cfg.num_rounds = 8;
  const Forest f = train_boosted(ds, cfg);
  if (f.weights.size() >= 2) {
    bool varied = false;
    for (std::size_t i = 1; i < f.weights.size(); ++i) {
      if (std::abs(f.weights[i] - f.weights[0]) > 1e-9) varied = true;
    }
    EXPECT_TRUE(varied);
  }
}

TEST(Boosted, BeatsChance) {
  data::Dataset ds = bolt::testing::small_dataset(1500);
  auto [train, test] = ds.split(0.8);
  BoostConfig cfg;
  cfg.num_rounds = 12;
  cfg.max_height = 3;
  const Forest f = train_boosted(train, cfg);
  EXPECT_GT(accuracy(f, test), 0.35);  // 4 classes, chance ~0.25
}

TEST(Boosted, BoostingImprovesOverSingleStump) {
  data::Dataset ds = bolt::testing::small_dataset(1500);
  auto [train, test] = ds.split(0.8);
  BoostConfig one;
  one.num_rounds = 1;
  one.max_height = 2;
  BoostConfig many = one;
  many.num_rounds = 15;
  const double acc1 = accuracy(train_boosted(train, one), test);
  const double acc15 = accuracy(train_boosted(train, many), test);
  EXPECT_GE(acc15 + 0.02, acc1);  // no meaningful regression
}

TEST(Boosted, Deterministic) {
  data::Dataset ds = bolt::testing::small_dataset(500);
  BoostConfig cfg;
  cfg.num_rounds = 4;
  const Forest a = train_boosted(ds, cfg);
  const Forest b = train_boosted(ds, cfg);
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (std::size_t i = 0; i < a.weights.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.weights[i], b.weights[i]);
  }
}

}  // namespace
}  // namespace bolt::forest
