#include "forest/predicates.h"

#include <gtest/gtest.h>

#include "../helpers.h"

namespace bolt::forest {
namespace {

TEST(PredicateSpace, DeduplicatesSharedSplits) {
  // tiny_forest: tree0 uses (0, 0.5) and (1, 0.5); tree1 uses (1, 0.25).
  Forest f = bolt::testing::tiny_forest();
  PredicateSpace space(f);
  EXPECT_EQ(space.size(), 3u);
  EXPECT_EQ(space.num_used_features(), 2u);
}

TEST(PredicateSpace, OrderedByFeatureThenThreshold) {
  Forest f = bolt::testing::tiny_forest();
  PredicateSpace space(f);
  for (std::size_t i = 1; i < space.size(); ++i) {
    const auto& a = space.predicate(i - 1);
    const auto& b = space.predicate(i);
    EXPECT_TRUE(a.feature < b.feature ||
                (a.feature == b.feature && a.threshold < b.threshold));
  }
}

TEST(PredicateSpace, IdOfFindsEveryPredicate) {
  Forest f = bolt::testing::small_forest();
  PredicateSpace space(f);
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto& p = space.predicate(i);
    EXPECT_EQ(space.id_of(p.feature, p.threshold), i);
  }
}

TEST(PredicateSpace, IdOfThrowsOnUnknown) {
  Forest f = bolt::testing::tiny_forest();
  PredicateSpace space(f);
  EXPECT_THROW(space.id_of(0, 123.0f), std::out_of_range);
}

TEST(PredicateSpace, BinarizeMatchesDefinition) {
  Forest f = bolt::testing::small_forest();
  PredicateSpace space(f);
  util::Rng rng(21);
  util::BitVector bits(space.size());
  for (int iter = 0; iter < 100; ++iter) {
    const auto x = bolt::testing::random_sample(rng, f.num_features);
    space.binarize(x, bits);
    for (std::size_t p = 0; p < space.size(); ++p) {
      const auto& pr = space.predicate(p);
      EXPECT_EQ(bits.get(p), x[pr.feature] <= pr.threshold)
          << "predicate " << p;
    }
  }
}

TEST(PredicateSpace, BinarizeBoundaryIsInclusive) {
  Forest f = bolt::testing::tiny_forest();
  PredicateSpace space(f);
  std::vector<float> x = {0.5f, 0.25f};  // exactly on both thresholds
  util::BitVector bits = space.binarize(x);
  EXPECT_TRUE(bits.get(space.id_of(0, 0.5f)));
  EXPECT_TRUE(bits.get(space.id_of(1, 0.25f)));
}

TEST(PredicateSpace, BinarizeHandlesWordBoundaries) {
  // Build a forest whose predicate count crosses 64/128 bit words: many
  // stumps with distinct thresholds.
  data::Dataset ds(3, 2);
  util::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const float x[3] = {static_cast<float>(rng.uniform()),
                        static_cast<float>(rng.uniform()),
                        static_cast<float>(rng.uniform())};
    ds.add_row(x, x[0] > 0.5f);
  }
  TrainConfig cfg;
  cfg.num_trees = 100;
  cfg.max_height = 4;
  cfg.max_thresholds = 0;
  Forest f = train_random_forest(ds, cfg);
  PredicateSpace space(f);
  ASSERT_GT(space.size(), 128u);

  util::BitVector bits(space.size());
  for (int iter = 0; iter < 50; ++iter) {
    const auto x = bolt::testing::random_sample(rng, 3);
    space.binarize(x, bits);
    for (std::size_t p = 0; p < space.size(); ++p) {
      const auto& pr = space.predicate(p);
      ASSERT_EQ(bits.get(p), x[pr.feature] <= pr.threshold);
    }
  }
}

TEST(PredicateSpace, TreePredictionRecoverableFromBits) {
  // Walking a tree using only binarized predicate values must agree with
  // float traversal — the foundation of Bolt's safety.
  Forest f = bolt::testing::small_forest();
  PredicateSpace space(f);
  util::Rng rng(77);
  for (int iter = 0; iter < 200; ++iter) {
    const auto x = bolt::testing::random_sample(rng, f.num_features);
    const util::BitVector bits = space.binarize(x);
    for (const auto& tree : f.trees) {
      std::int32_t node = 0;
      while (!tree.nodes()[node].is_leaf()) {
        const auto& n = tree.nodes()[node];
        const bool left = bits.get(
            space.id_of(static_cast<std::uint32_t>(n.feature), n.threshold));
        node = left ? n.left : n.right;
      }
      EXPECT_EQ(tree.nodes()[node].leaf_class, tree.predict(x));
    }
  }
}

}  // namespace
}  // namespace bolt::forest
