#include "forest/predicates.h"

#include <gtest/gtest.h>

#include <iterator>
#include <limits>
#include <numeric>

#include "../helpers.h"

namespace bolt::forest {
namespace {

/// Space with `per_feature` predicates on each of features 0..2 (dense IDs
/// 0..3*per_feature-1, thresholds 0.25*k).
PredicateSpace three_feature_space(int per_feature) {
  std::vector<Predicate> preds;
  for (std::uint32_t f = 0; f < 3; ++f) {
    for (int k = 0; k < per_feature; ++k) {
      preds.push_back({f, 0.25f * static_cast<float>(k)});
    }
  }
  return PredicateSpace::from_predicates(3, preds);
}

TEST(PredicateSpace, DeduplicatesSharedSplits) {
  // tiny_forest: tree0 uses (0, 0.5) and (1, 0.5); tree1 uses (1, 0.25).
  Forest f = bolt::testing::tiny_forest();
  PredicateSpace space(f);
  EXPECT_EQ(space.size(), 3u);
  EXPECT_EQ(space.num_used_features(), 2u);
}

TEST(PredicateSpace, OrderedByFeatureThenThreshold) {
  Forest f = bolt::testing::tiny_forest();
  PredicateSpace space(f);
  for (std::size_t i = 1; i < space.size(); ++i) {
    const auto& a = space.predicate(i - 1);
    const auto& b = space.predicate(i);
    EXPECT_TRUE(a.feature < b.feature ||
                (a.feature == b.feature && a.threshold < b.threshold));
  }
}

TEST(PredicateSpace, IdOfFindsEveryPredicate) {
  Forest f = bolt::testing::small_forest();
  PredicateSpace space(f);
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto& p = space.predicate(i);
    EXPECT_EQ(space.id_of(p.feature, p.threshold), i);
  }
}

TEST(PredicateSpace, IdOfThrowsOnUnknown) {
  Forest f = bolt::testing::tiny_forest();
  PredicateSpace space(f);
  EXPECT_THROW(space.id_of(0, 123.0f), std::out_of_range);
}

TEST(PredicateSpace, BinarizeMatchesDefinition) {
  Forest f = bolt::testing::small_forest();
  PredicateSpace space(f);
  util::Rng rng(21);
  util::BitVector bits(space.size());
  for (int iter = 0; iter < 100; ++iter) {
    const auto x = bolt::testing::random_sample(rng, f.num_features);
    space.binarize(x, bits);
    for (std::size_t p = 0; p < space.size(); ++p) {
      const auto& pr = space.predicate(p);
      EXPECT_EQ(bits.get(p), x[pr.feature] <= pr.threshold)
          << "predicate " << p;
    }
  }
}

TEST(PredicateSpace, BinarizeBoundaryIsInclusive) {
  Forest f = bolt::testing::tiny_forest();
  PredicateSpace space(f);
  std::vector<float> x = {0.5f, 0.25f};  // exactly on both thresholds
  util::BitVector bits = space.binarize(x);
  EXPECT_TRUE(bits.get(space.id_of(0, 0.5f)));
  EXPECT_TRUE(bits.get(space.id_of(1, 0.25f)));
}

TEST(PredicateSpace, BinarizeHandlesWordBoundaries) {
  // Build a forest whose predicate count crosses 64/128 bit words: many
  // stumps with distinct thresholds.
  data::Dataset ds(3, 2);
  util::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const float x[3] = {static_cast<float>(rng.uniform()),
                        static_cast<float>(rng.uniform()),
                        static_cast<float>(rng.uniform())};
    ds.add_row(x, x[0] > 0.5f);
  }
  TrainConfig cfg;
  cfg.num_trees = 100;
  cfg.max_height = 4;
  cfg.max_thresholds = 0;
  Forest f = train_random_forest(ds, cfg);
  PredicateSpace space(f);
  ASSERT_GT(space.size(), 128u);

  util::BitVector bits(space.size());
  for (int iter = 0; iter < 50; ++iter) {
    const auto x = bolt::testing::random_sample(rng, 3);
    space.binarize(x, bits);
    for (std::size_t p = 0; p < space.size(); ++p) {
      const auto& pr = space.predicate(p);
      ASSERT_EQ(bits.get(p), x[pr.feature] <= pr.threshold);
    }
  }
}

TEST(PredicateSpace, NanFailsAndInfFollowsIeeeOrderingOnEveryPath) {
  // The NaN contract (predicates.h): a NaN feature value fails every
  // predicate on every binarize path; -inf passes and +inf fails any
  // finite threshold.
  const PredicateSpace space = three_feature_space(50);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> x = {nan, inf, -inf};

  auto check = [&](const util::BitVector& bits, const char* path) {
    for (std::size_t p = 0; p < space.size(); ++p) {
      // Feature 0 is NaN, feature 1 is +inf (both fail), feature 2 is
      // -inf (passes).
      ASSERT_EQ(bits.get(p), space.predicate(p).feature == 2)
          << path << " predicate " << p;
    }
  };

  check(space.binarize(x), "binarize(row)");

  util::BitVector oracle(space.size());
  binarize_row_scalar(space.soa(), x.data(), oracle.words().data());
  check(oracle, "binarize_row_scalar");

  util::BitVector sub(space.size());
  std::vector<std::uint32_t> all(space.size());
  std::iota(all.begin(), all.end(), 0u);
  space.binarize_subset(x, all, sub);
  check(sub, "binarize_subset");
}

TEST(PredicateSpace, BinarizeSubsetEmptyPositionsLeavesBitsUntouched) {
  const PredicateSpace space = three_feature_space(50);
  const std::vector<float> x = {1.0f, 2.0f, 3.0f};
  const std::vector<float> y = {12.0f, 0.0f, -1.0f};
  util::BitVector out = space.binarize(y);
  const util::BitVector before = out;
  space.binarize_subset(x, {}, out);
  for (std::size_t p = 0; p < space.size(); ++p) {
    ASSERT_EQ(out.get(p), before.get(p)) << "predicate " << p;
  }
}

TEST(PredicateSpace, BinarizeSubsetSinglePredicateUpdatesOnlyThatBit) {
  const PredicateSpace space = three_feature_space(50);
  const std::vector<float> x = {100.0f, 100.0f, 100.0f};  // every test false
  const std::vector<float> y = {-1.0f, -1.0f, -1.0f};     // every test true
  for (const std::uint32_t pos : {0u, 63u, 64u, 149u}) {
    util::BitVector out = space.binarize(y);
    const std::uint32_t positions[] = {pos};
    space.binarize_subset(x, positions, out);
    for (std::size_t p = 0; p < space.size(); ++p) {
      ASSERT_EQ(out.get(p), p != pos) << "pos " << pos << " predicate " << p;
    }
  }
}

TEST(PredicateSpace, BinarizeSubsetSpanningWordBoundary) {
  const PredicateSpace space = three_feature_space(50);  // 150 predicates
  util::Rng rng(31);
  const std::uint32_t positions[] = {5u, 62u, 63u, 64u, 65u, 127u, 128u, 149u};
  for (int trial = 0; trial < 25; ++trial) {
    const auto x = bolt::testing::random_sample(rng, 3);
    const auto y = bolt::testing::random_sample(rng, 3);
    const util::BitVector full_x = space.binarize(x);
    util::BitVector out = space.binarize(y);
    const util::BitVector before = out;
    space.binarize_subset(x, positions, out);
    std::size_t k = 0;
    for (std::size_t p = 0; p < space.size(); ++p) {
      const bool selected = k < std::size(positions) && positions[k] == p;
      if (selected) ++k;
      // Selected bits re-encode from x; everything else keeps y's bits.
      ASSERT_EQ(out.get(p), selected ? full_x.get(p) : before.get(p))
          << "predicate " << p;
    }
  }
}

TEST(PredicateSpace, TreePredictionRecoverableFromBits) {
  // Walking a tree using only binarized predicate values must agree with
  // float traversal — the foundation of Bolt's safety.
  Forest f = bolt::testing::small_forest();
  PredicateSpace space(f);
  util::Rng rng(77);
  for (int iter = 0; iter < 200; ++iter) {
    const auto x = bolt::testing::random_sample(rng, f.num_features);
    const util::BitVector bits = space.binarize(x);
    for (const auto& tree : f.trees) {
      std::int32_t node = 0;
      while (!tree.nodes()[node].is_leaf()) {
        const auto& n = tree.nodes()[node];
        const bool left = bits.get(
            space.id_of(static_cast<std::uint32_t>(n.feature), n.threshold));
        node = left ? n.left : n.right;
      }
      EXPECT_EQ(tree.nodes()[node].leaf_class, tree.predict(x));
    }
  }
}

}  // namespace
}  // namespace bolt::forest
