#include "forest/dot_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "../helpers.h"
#include "forest/trainer.h"

namespace bolt::forest {
namespace {

bool trees_equal(const DecisionTree& a, const DecisionTree& b) {
  if (a.nodes().size() != b.nodes().size()) return false;
  // Compare by structure: predictions on a probe grid.
  return true;
}

TEST(DotIo, RoundTripPreservesPredictions) {
  DecisionTree t = bolt::testing::tiny_tree();
  DecisionTree back = parse_dot(to_dot(t));
  for (float a : {0.1f, 0.4f, 0.6f, 0.9f}) {
    for (float b : {0.1f, 0.4f, 0.6f, 0.9f}) {
      const float x[2] = {a, b};
      EXPECT_EQ(back.predict(x), t.predict(x));
    }
  }
}

TEST(DotIo, EmitsSklearnDialect) {
  const std::string dot = to_dot(bolt::testing::tiny_tree());
  EXPECT_NE(dot.find("digraph Tree"), std::string::npos);
  EXPECT_NE(dot.find("X[0] <= 0.5"), std::string::npos);
  EXPECT_NE(dot.find("class = 2"), std::string::npos);
  EXPECT_NE(dot.find("headlabel=\"True\""), std::string::npos);
}

TEST(DotIo, ParsesSklearnStyleLabelsWithExtras) {
  // Labels as sklearn.tree.export_graphviz writes them: gini/samples/value
  // packed into the label with \n separators.
  const std::string dot = R"(digraph Tree {
node [shape=box] ;
0 [label="X[3] <= 2.45\ngini = 0.667\nsamples = 150\nvalue = [50, 50, 50]"] ;
1 [label="gini = 0.0\nsamples = 50\nvalue = [50, 0, 0]\nclass = 0"] ;
2 [label="gini = 0.5\nsamples = 100\nvalue = [0, 50, 50]\nclass = 2"] ;
0 -> 1 [labeldistance=2.5, labelangle=45, headlabel="True"] ;
0 -> 2 [labeldistance=2.5, labelangle=-45, headlabel="False"] ;
}
)";
  DecisionTree t = parse_dot(dot);
  const float left[4] = {0, 0, 0, 1.0f};
  const float right[4] = {0, 0, 0, 3.0f};
  EXPECT_EQ(t.predict(left), 0);
  EXPECT_EQ(t.predict(right), 2);
}

TEST(DotIo, SingleLeafGraph) {
  const std::string dot = "digraph Tree {\n0 [label=\"class = 4\"] ;\n}\n";
  DecisionTree t = parse_dot(dot);
  const float x[1] = {0};
  EXPECT_EQ(t.predict(x), 4);
}

TEST(DotIo, RejectsGarbage) {
  EXPECT_THROW(parse_dot("digraph Tree {\n}\n"), std::runtime_error);
  EXPECT_THROW(parse_dot("not dot at all"), std::runtime_error);
}

TEST(DotIo, RejectsMissingChild) {
  const std::string dot = R"(digraph Tree {
0 [label="X[0] <= 1.0"] ;
1 [label="class = 0"] ;
0 -> 1 [headlabel="True"] ;
}
)";
  EXPECT_THROW(parse_dot(dot), std::runtime_error);
}

TEST(DotIo, ForestRoundTripPreservesEverything) {
  Forest f = bolt::testing::small_forest(5, 4);
  f.weights = {1.0, 2.0, 0.5, 1.5, 3.0};
  std::stringstream ss;
  write_forest_dot(f, ss);
  Forest back = read_forest_dot(ss);

  EXPECT_EQ(back.num_features, f.num_features);
  EXPECT_EQ(back.num_classes, f.num_classes);
  EXPECT_EQ(back.weights, f.weights);
  ASSERT_EQ(back.trees.size(), f.trees.size());

  util::Rng rng(9);
  for (int iter = 0; iter < 100; ++iter) {
    const auto x = bolt::testing::random_sample(rng, f.num_features);
    EXPECT_EQ(back.predict(x), f.predict(x));
  }
  (void)trees_equal;
}

TEST(DotIo, TrainedTreeRoundTrip) {
  Forest f = bolt::testing::small_forest(1, 5);
  DecisionTree back = parse_dot(to_dot(f.trees[0]));
  util::Rng rng(10);
  for (int iter = 0; iter < 200; ++iter) {
    const auto x = bolt::testing::random_sample(rng, f.num_features);
    EXPECT_EQ(back.predict(x), f.trees[0].predict(x));
  }
}

}  // namespace
}  // namespace bolt::forest
