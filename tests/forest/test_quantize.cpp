#include "forest/quantize.h"

#include <gtest/gtest.h>

#include "../helpers.h"
#include "bolt/builder.h"
#include "bolt/engine.h"
#include "data/synthetic.h"
#include "forest/trainer.h"

namespace bolt::forest {

using data::Dataset;
using data::make_synth_mnist;
namespace {

TEST(Quantizer, PureShiftForByteRangedIntegralFeatures) {
  // Latitude-style data: integral values in [-90, 90] must map by shift
  // only (the paper's §5 normalization), losing nothing.
  Dataset ds(1, 2);
  for (int v = -90; v <= 90; ++v) {
    const float x[1] = {static_cast<float>(v)};
    ds.add_row(x, v > 0);
  }
  const FeatureQuantizer q = FeatureQuantizer::fit(ds);
  EXPECT_EQ(q.channel(0).offset, -90.0f);
  EXPECT_EQ(q.channel(0).scale, 1.0f);
  EXPECT_EQ(q.quantize_value(0, -90.0f), 0.0f);
  EXPECT_EQ(q.quantize_value(0, 90.0f), 180.0f);
}

TEST(Quantizer, ScalesWideRangesIntoByte) {
  Dataset ds(1, 2);
  for (int v = 0; v <= 100; ++v) {
    const float x[1] = {static_cast<float>(v) * 100.0f};
    ds.add_row(x, 0);
  }
  const FeatureQuantizer q = FeatureQuantizer::fit(ds);
  EXPECT_EQ(q.quantize_value(0, 0.0f), 0.0f);
  EXPECT_EQ(q.quantize_value(0, 10000.0f), 255.0f);
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    const float v = q.quantize_value(0, ds.row(i)[0]);
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 255.0f);
  }
}

TEST(Quantizer, ConstantFeatureMapsToZero) {
  Dataset ds(2, 2);
  for (int i = 0; i < 10; ++i) {
    const float x[2] = {7.0f, static_cast<float>(i)};
    ds.add_row(x, 0);
  }
  const FeatureQuantizer q = FeatureQuantizer::fit(ds);
  EXPECT_EQ(q.quantize_value(0, 7.0f), 0.0f);
  EXPECT_EQ(q.quantize_value(0, 100.0f), 0.0f);
}

TEST(Quantizer, ApplyPreservesShapeAndLabels) {
  Dataset ds = bolt::testing::small_dataset(100);
  const FeatureQuantizer q = FeatureQuantizer::fit(ds);
  const Dataset quantized = q.apply(ds);
  ASSERT_EQ(quantized.num_rows(), ds.num_rows());
  ASSERT_EQ(quantized.num_features(), ds.num_features());
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    EXPECT_EQ(quantized.label(i), ds.label(i));
    for (float v : quantized.row(i)) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 255.0f);
      EXPECT_EQ(v, std::round(v));
    }
  }
}

TEST(QuantizeForest, ExactOnBytePixelData) {
  // MNIST-like pixels are integral bytes: requantization must be exact and
  // every prediction preserved.
  Dataset ds = make_synth_mnist(400, 3);
  TrainConfig tc;
  tc.num_trees = 6;
  tc.max_height = 4;
  const Forest model = train_random_forest(ds, tc);

  const FeatureQuantizer q = FeatureQuantizer::fit(ds);
  const QuantizedForest qf = quantize_forest(model, q, ds);
  EXPECT_TRUE(qf.exact);
  EXPECT_EQ(qf.inexact_splits, 0u);

  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    const auto qrow = q.apply_row(ds.row(i));
    ASSERT_EQ(qf.forest.predict(qrow), model.predict(ds.row(i)))
        << "sample " << i;
  }
}

TEST(QuantizeForest, PredictionsPreservedOnReferenceWhenExact) {
  Dataset ds = bolt::testing::small_dataset(600, 21);
  TrainConfig tc;
  tc.num_trees = 8;
  tc.max_height = 4;
  const Forest model = train_random_forest(ds, tc);
  const FeatureQuantizer q = FeatureQuantizer::fit(ds);
  const QuantizedForest qf = quantize_forest(model, q, ds);

  std::size_t agree = 0;
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    agree += qf.forest.predict(q.apply_row(ds.row(i))) ==
             model.predict(ds.row(i));
  }
  if (qf.exact) {
    EXPECT_EQ(agree, ds.num_rows());
  } else {
    // Continuous features can lose resolution; the drop must be small.
    EXPECT_GT(static_cast<double>(agree) / ds.num_rows(), 0.95);
  }
}

TEST(QuantizeForest, QuantizedPipelineThroughBolt) {
  // End-to-end: quantize data + forest, compress the quantized forest with
  // Bolt, and verify Bolt(quantized input) == raw traversal for exact
  // quantizations. Also: the value bits statistic must shrink to <= 9.
  Dataset ds = make_synth_mnist(300, 4);
  TrainConfig tc;
  tc.num_trees = 5;
  tc.max_height = 4;
  const Forest model = train_random_forest(ds, tc);
  const FeatureQuantizer q = FeatureQuantizer::fit(ds);
  const QuantizedForest qf = quantize_forest(model, q, ds);
  ASSERT_TRUE(qf.exact);

  const core::BoltForest bf = core::BoltForest::build(qf.forest, {});
  core::BoltEngine engine(bf);
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    ASSERT_EQ(engine.predict(q.apply_row(ds.row(i))),
              model.predict(ds.row(i)));
  }
  EXPECT_LE(FeatureQuantizer::value_bits_for(qf.forest), 9u);
}

TEST(ValueBits, MatchesLargestThreshold) {
  Forest f = bolt::testing::tiny_forest();  // thresholds 0.5, 0.25
  EXPECT_EQ(FeatureQuantizer::value_bits_for(f), 1u);
  f.trees[0].nodes()[0].threshold = 200.0f;
  EXPECT_EQ(FeatureQuantizer::value_bits_for(f), 8u);
}

}  // namespace
}  // namespace bolt::forest
