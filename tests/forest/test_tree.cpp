#include "forest/tree.h"

#include <gtest/gtest.h>

#include "../helpers.h"

namespace bolt::forest {
namespace {

TEST(DecisionTree, PredictFollowsSplits) {
  DecisionTree t = bolt::testing::tiny_tree();
  const float a[] = {0.2f, 0.2f};  // left, left -> class 0
  const float b[] = {0.2f, 0.8f};  // left, right -> class 1
  const float c[] = {0.8f, 0.0f};  // right -> class 2
  EXPECT_EQ(t.predict(a), 0);
  EXPECT_EQ(t.predict(b), 1);
  EXPECT_EQ(t.predict(c), 2);
}

TEST(DecisionTree, BoundaryGoesLeft) {
  // x <= threshold goes left (Scikit-Learn convention).
  DecisionTree t = bolt::testing::tiny_tree();
  const float exact[] = {0.5f, 0.5f};
  EXPECT_EQ(t.predict(exact), 0);
}

TEST(DecisionTree, HeightAndLeaves) {
  DecisionTree t = bolt::testing::tiny_tree();
  EXPECT_EQ(t.height(), 2u);
  EXPECT_EQ(t.num_leaves(), 3u);
}

TEST(DecisionTree, SingleLeafTree) {
  std::vector<TreeNode> nodes(1);
  nodes[0] = {TreeNode::kLeaf, 0.0f, -1, -1, 1};
  DecisionTree t(std::move(nodes));
  EXPECT_EQ(t.height(), 0u);
  EXPECT_EQ(t.num_leaves(), 1u);
  const float x[] = {0.0f};
  EXPECT_EQ(t.predict(x), 1);
  EXPECT_NO_THROW(t.check());
}

TEST(DecisionTree, CheckRejectsLeafWithoutClass) {
  std::vector<TreeNode> nodes(1);
  nodes[0] = {TreeNode::kLeaf, 0.0f, -1, -1, -1};
  DecisionTree t(std::move(nodes));
  EXPECT_THROW(t.check(), std::logic_error);
}

TEST(DecisionTree, CheckRejectsOutOfRangeChild) {
  std::vector<TreeNode> nodes(2);
  nodes[0] = {0, 0.5f, 1, 7, -1};  // right child out of range
  nodes[1] = {TreeNode::kLeaf, 0.0f, -1, -1, 0};
  DecisionTree t(std::move(nodes));
  EXPECT_THROW(t.check(), std::logic_error);
}

TEST(DecisionTree, CheckRejectsSharedSubtree) {
  std::vector<TreeNode> nodes(2);
  nodes[0] = {0, 0.5f, 1, 1, -1};  // both children point at node 1
  nodes[1] = {TreeNode::kLeaf, 0.0f, -1, -1, 0};
  DecisionTree t(std::move(nodes));
  EXPECT_THROW(t.check(), std::logic_error);
}

TEST(Forest, WeightedVoteAndPredict) {
  Forest f = bolt::testing::tiny_forest();
  f.weights = {1.0, 2.5};
  const float x[] = {0.2f, 0.2f};  // tree0 -> 0, tree1 -> 1
  const auto votes = f.vote(x);
  EXPECT_DOUBLE_EQ(votes[0], 1.0);
  EXPECT_DOUBLE_EQ(votes[1], 2.5);
  EXPECT_DOUBLE_EQ(votes[2], 0.0);
  EXPECT_EQ(f.predict(x), 1);
}

TEST(Forest, TieBreaksTowardLowerClass) {
  Forest f = bolt::testing::tiny_forest();  // equal weights
  const float x[] = {0.2f, 0.2f};           // votes: class0=1, class1=1
  EXPECT_EQ(f.predict(x), 0);
}

TEST(Forest, CheckValidatesFeatureRange) {
  Forest f = bolt::testing::tiny_forest();
  f.num_features = 1;  // tree uses feature 1 -> out of range
  EXPECT_THROW(f.check(), std::logic_error);
}

TEST(Forest, CheckValidatesWeightArity) {
  Forest f = bolt::testing::tiny_forest();
  f.weights.pop_back();
  EXPECT_THROW(f.check(), std::logic_error);
}

TEST(Forest, Totals) {
  Forest f = bolt::testing::tiny_forest();
  EXPECT_EQ(f.total_leaves(), 5u);
  EXPECT_EQ(f.max_height(), 2u);
}

TEST(ArgmaxClass, FirstMaxWins) {
  const double v1[] = {0.0, 3.0, 3.0};
  EXPECT_EQ(argmax_class(v1), 1);
  const double v2[] = {5.0};
  EXPECT_EQ(argmax_class(v2), 0);
}

}  // namespace
}  // namespace bolt::forest
