#include "forest/deep_forest.h"

#include <gtest/gtest.h>

#include "../helpers.h"

namespace bolt::forest {
namespace {

DeepForestConfig small_cfg() {
  DeepForestConfig cfg;
  cfg.num_layers = 2;
  cfg.forests_per_layer = 2;
  cfg.forest_cfg.num_trees = 5;
  cfg.forest_cfg.max_height = 4;
  return cfg;
}

TEST(DeepForest, StructureMatchesConfig) {
  data::Dataset ds = bolt::testing::small_dataset(600);
  const DeepForest df = DeepForest::train(ds, small_cfg());
  EXPECT_EQ(df.num_layers(), 2u);
  EXPECT_EQ(df.layer(0).size(), 2u);
  EXPECT_EQ(df.layer(1).size(), 2u);
  EXPECT_EQ(df.base_features(), ds.num_features());
  // Layer 1 consumes base + 2 forests * 4 classes augmented features.
  EXPECT_EQ(df.layer(1)[0].num_features, ds.num_features() + 8);
}

TEST(DeepForest, PredictsValidClasses) {
  data::Dataset ds = bolt::testing::small_dataset(600);
  const DeepForest df = DeepForest::train(ds, small_cfg());
  for (std::size_t i = 0; i < 50; ++i) {
    const int c = df.predict(ds.row(i));
    EXPECT_GE(c, 0);
    EXPECT_LT(c, static_cast<int>(ds.num_classes()));
  }
}

TEST(DeepForest, BeatsChance) {
  data::Dataset ds = bolt::testing::small_dataset(1500);
  auto [train, test] = ds.split(0.8);
  const DeepForest df = DeepForest::train(train, small_cfg());
  EXPECT_GT(df.accuracy(test), 0.35);
}

TEST(DeepForest, AugmentAppendsNormalizedVotes) {
  data::Dataset ds = bolt::testing::small_dataset(300);
  const DeepForest df = DeepForest::train(ds, small_cfg());
  const auto x = ds.row(0);
  std::vector<std::vector<double>> votes = {{2.0, 1.0, 1.0, 0.0},
                                            {0.0, 0.0, 4.0, 0.0}};
  const auto augmented = df.augment(x, votes);
  ASSERT_EQ(augmented.size(), x.size() + 8);
  EXPECT_FLOAT_EQ(augmented[x.size() + 0], 0.5f);
  EXPECT_FLOAT_EQ(augmented[x.size() + 1], 0.25f);
  EXPECT_FLOAT_EQ(augmented[x.size() + 6], 1.0f);
}

TEST(DeepForest, SingleLayerEqualsForestVote) {
  data::Dataset ds = bolt::testing::small_dataset(400);
  DeepForestConfig cfg = small_cfg();
  cfg.num_layers = 1;
  cfg.forests_per_layer = 1;
  const DeepForest df = DeepForest::train(ds, cfg);
  // One layer, one forest: cascade prediction == that forest's prediction.
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(df.predict(ds.row(i)), df.layer(0)[0].predict(ds.row(i)));
  }
}

}  // namespace
}  // namespace bolt::forest
