// Shared fixtures/helpers for the test suite: small deterministic datasets
// and forests that keep individual test processes fast.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "forest/trainer.h"
#include "forest/tree.h"
#include "util/rng.h"

namespace bolt::testing {

/// Small LSTW-like dataset: 11 features, 4 classes — cheap to train on.
inline data::Dataset small_dataset(std::size_t rows = 600,
                                   std::uint64_t seed = 11) {
  return data::make_synth_lstw(rows, seed);
}

/// A quick random forest over the small dataset.
inline forest::Forest small_forest(std::size_t trees = 6,
                                   std::size_t height = 4,
                                   std::uint64_t seed = 5) {
  data::Dataset ds = small_dataset(500, seed);
  forest::TrainConfig cfg;
  cfg.num_trees = trees;
  cfg.max_height = height;
  cfg.seed = seed;
  return forest::train_random_forest(ds, cfg);
}

/// Hand-built tree: (f0 <= 0.5) ? ((f1 <= 0.5) ? c0 : c1) : c2.
inline forest::DecisionTree tiny_tree() {
  using forest::TreeNode;
  std::vector<TreeNode> nodes(5);
  nodes[0] = {0, 0.5f, 1, 2, -1};
  nodes[1] = {1, 0.5f, 3, 4, -1};
  nodes[2] = {TreeNode::kLeaf, 0.0f, -1, -1, 2};
  nodes[3] = {TreeNode::kLeaf, 0.0f, -1, -1, 0};
  nodes[4] = {TreeNode::kLeaf, 0.0f, -1, -1, 1};
  return forest::DecisionTree(std::move(nodes));
}

/// A two-tree forest over 2 features / 3 classes built from tiny trees.
inline forest::Forest tiny_forest() {
  forest::Forest f;
  f.num_features = 2;
  f.num_classes = 3;
  f.trees.push_back(tiny_tree());
  // Second tree: (f1 <= 0.25) ? c1 : c2.
  using forest::TreeNode;
  std::vector<TreeNode> nodes(3);
  nodes[0] = {1, 0.25f, 1, 2, -1};
  nodes[1] = {TreeNode::kLeaf, 0.0f, -1, -1, 1};
  nodes[2] = {TreeNode::kLeaf, 0.0f, -1, -1, 2};
  f.trees.emplace_back(std::move(nodes));
  f.weights = {1.0, 1.0};
  return f;
}

/// Uniform random sample in [0,1)^n.
inline std::vector<float> random_sample(util::Rng& rng, std::size_t n) {
  std::vector<float> x(n);
  for (auto& v : x) v = static_cast<float>(rng.uniform());
  return x;
}

}  // namespace bolt::testing
