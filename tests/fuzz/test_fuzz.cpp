// Deterministic fuzz-lite robustness tests: every parser/loader must
// either succeed or throw — never crash, hang, or corrupt memory — on
// arbitrary byte streams and on mutations of valid inputs.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "../helpers.h"
#include "bolt/artifact/mapped.h"
#include "bolt/artifact/pack.h"
#include "bolt/builder.h"
#include "bolt/engine.h"
#include "data/csv.h"
#include "forest/dot_io.h"
#include "forest/serialize.h"
#include "service/protocol.h"
#include "util/rng.h"

namespace bolt {
namespace {

std::string random_bytes(util::Rng& rng, std::size_t max_len) {
  std::string s(rng.below(max_len + 1), '\0');
  for (char& c : s) c = static_cast<char>(rng.below(256));
  return s;
}

/// Flips a few random bytes of a valid blob.
std::string mutate(util::Rng& rng, std::string blob) {
  const std::size_t flips = 1 + rng.below(8);
  for (std::size_t i = 0; i < flips && !blob.empty(); ++i) {
    blob[rng.below(blob.size())] = static_cast<char>(rng.below(256));
  }
  return blob;
}

template <class Fn>
void expect_no_crash(Fn&& fn) {
  try {
    fn();
  } catch (const std::exception&) {
    // Throwing is the contract; crashing is the bug.
  }
}

TEST(Fuzz, DotParserOnGarbage) {
  util::Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    expect_no_crash([&] { forest::parse_dot(random_bytes(rng, 400)); });
  }
}

TEST(Fuzz, DotParserOnMutatedValidInput) {
  util::Rng rng(2);
  const std::string valid = forest::to_dot(bolt::testing::tiny_tree());
  for (int i = 0; i < 300; ++i) {
    expect_no_crash([&] { forest::parse_dot(mutate(rng, valid)); });
  }
}

TEST(Fuzz, CsvReaderOnGarbage) {
  util::Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    expect_no_crash([&] {
      std::istringstream in(random_bytes(rng, 400));
      data::read_csv(in);
    });
  }
}

TEST(Fuzz, ForestLoaderOnGarbageAndMutations) {
  util::Rng rng(4);
  std::stringstream valid;
  forest::save_forest(bolt::testing::tiny_forest(), valid);
  const std::string blob = valid.str();
  for (int i = 0; i < 200; ++i) {
    expect_no_crash([&] {
      std::istringstream in(random_bytes(rng, 300));
      forest::load_forest(in);
    });
    expect_no_crash([&] {
      std::istringstream in(mutate(rng, blob));
      forest::load_forest(in);
    });
  }
}

TEST(Fuzz, ForestLoaderOnTruncatedInput) {
  // Every strict prefix of a valid serialized forest is incomplete; the
  // loader must throw on each one rather than crash or over-read.
  std::stringstream valid;
  forest::save_forest(bolt::testing::tiny_forest(), valid);
  const std::string blob = valid.str();
  ASSERT_GT(blob.size(), 0u);
  for (std::size_t len = 0; len < blob.size(); ++len) {
    std::istringstream in(blob.substr(0, len));
    EXPECT_THROW(forest::load_forest(in), std::exception) << "prefix " << len;
  }
  // The untruncated blob still round-trips.
  std::istringstream in(blob);
  const forest::Forest loaded = forest::load_forest(in);
  EXPECT_EQ(loaded.trees.size(), bolt::testing::tiny_forest().trees.size());
}

TEST(Fuzz, ForestLoaderMutationsThatLoadAreStillUsable) {
  // When a mutation slips past validation, the loaded forest must still
  // be safe to evaluate — predictions may differ, memory safety may not.
  util::Rng rng(8);
  std::stringstream valid;
  forest::save_forest(bolt::testing::tiny_forest(), valid);
  const std::string blob = valid.str();
  for (int i = 0; i < 200; ++i) {
    expect_no_crash([&] {
      std::istringstream in(mutate(rng, blob));
      const forest::Forest loaded = forest::load_forest(in);
      if (loaded.num_features == 0 || loaded.num_features > 4096) return;
      std::vector<float> x(loaded.num_features, 0.5f);
      (void)loaded.predict(x);
      (void)loaded.vote(x);
    });
  }
}

TEST(Fuzz, ArtifactLoaderOnMutations) {
  util::Rng rng(5);
  std::stringstream valid;
  core::BoltForest::build(bolt::testing::tiny_forest(), {}).save(valid);
  const std::string blob = valid.str();
  for (int i = 0; i < 200; ++i) {
    expect_no_crash([&] {
      std::istringstream in(mutate(rng, blob));
      auto loaded = core::BoltForest::load(in);
      // If a mutation slips through validation, using the artifact must
      // still be memory-safe when the caller honours the arity contract.
      if (loaded.num_features() > 4096) return;  // absurd arity: skip use
      core::BoltEngine engine(loaded);
      std::vector<float> x(loaded.num_features(), 0.5f);
      (void)engine.predict(x);
    });
  }
}

TEST(Fuzz, ProtocolDecodersOnGarbage) {
  util::Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const std::string bytes = random_bytes(rng, 200);
    const std::span<const std::uint8_t> frame(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    expect_no_crash([&] { service::decode_request(frame); });
    expect_no_crash([&] { service::decode_response(frame); });
  }
}

TEST(Fuzz, ProtocolDecodersOnMutatedValidFrames) {
  util::Rng rng(7);
  service::Request req;
  req.features = {1.0f, 2.0f, 3.0f};
  std::vector<std::uint8_t> valid;
  service::encode_request(req, valid);
  std::string blob(valid.begin(), valid.end());
  for (int i = 0; i < 300; ++i) {
    const std::string m = mutate(rng, blob);
    const std::span<const std::uint8_t> frame(
        reinterpret_cast<const std::uint8_t*>(m.data()), m.size());
    expect_no_crash([&] { service::decode_request(frame); });
  }
}

// ---- v2 flat artifact (src/bolt/artifact/) ---------------------------------
//
// The mapped loader's contract is stronger than the stream loaders' above:
// a corrupt file must be rejected at open (CRC or bounds check), and any
// file that does open must be fully safe to use — the sweeps assert
// predictions still match the pristine baseline, not just "no crash".

namespace {

struct V2Corpus {
  core::BoltForest built;
  std::vector<std::uint8_t> image;
  std::vector<int> baseline;
  data::Dataset inputs;

  V2Corpus()
      : built(core::BoltForest::build(bolt::testing::small_forest(6, 4, 91),
                                      {})),
        image(artifact::pack_v2(built)),
        inputs(bolt::testing::small_dataset(20, 92)) {
    core::BoltEngine engine(built);
    for (std::size_t i = 0; i < inputs.num_rows(); ++i) {
      baseline.push_back(engine.predict(inputs.row(i)));
    }
  }

  static const V2Corpus& get() {
    static const V2Corpus corpus;
    return corpus;
  }
};

std::string fuzz_v2_path(const char* tag) {
  return ::testing::TempDir() + "/bolt_fuzz_v2_" + tag + "_" +
         std::to_string(::getpid());
}

void write_blob(const std::string& path, const std::uint8_t* data,
                std::size_t len) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data), static_cast<long>(len));
}

}  // namespace

TEST(Fuzz, MappedArtifactOnTruncatedPrefixes) {
  const V2Corpus& c = V2Corpus::get();
  const std::string path = fuzz_v2_path("trunc");
  // Every strict prefix must be rejected: the header's file_size field
  // catches most, section bounds catch a truncated table. Sweep every
  // 64-byte boundary (section alignment) plus unaligned lengths around it.
  for (std::size_t len = 0; len < c.image.size(); len += 64) {
    for (std::size_t off : {std::size_t{0}, std::size_t{1}, std::size_t{33}}) {
      const std::size_t n = len + off;
      if (n >= c.image.size()) continue;
      write_blob(path, c.image.data(), n);
      EXPECT_THROW(artifact::MappedArtifact::open(path), std::runtime_error)
          << "prefix of " << n << " bytes accepted";
    }
  }
  std::remove(path.c_str());
}

TEST(Fuzz, MappedArtifactOnBitFlips) {
  const V2Corpus& c = V2Corpus::get();
  const std::string path = fuzz_v2_path("bitflip");
  // One flipped bit anywhere: open must throw, or — when the flip lands in
  // CRC-exempt inter-section padding — the forest must still predict
  // exactly the baseline. Never a crash or an OOB read (ASan job).
  const std::size_t step = std::max<std::size_t>(1, c.image.size() / 600);
  std::size_t opened_clean = 0;
  for (std::size_t byte = 0; byte < c.image.size(); byte += step) {
    for (unsigned bit : {0u, 3u, 7u}) {
      std::vector<std::uint8_t> mutated = c.image;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      write_blob(path, mutated.data(), mutated.size());
      try {
        artifact::MappedArtifact a = artifact::MappedArtifact::open(path);
        const core::BoltForest forest = a.build_forest();
        ++opened_clean;
        core::BoltEngine engine(forest);
        for (std::size_t i = 0; i < c.inputs.num_rows(); ++i) {
          ASSERT_EQ(engine.predict(c.inputs.row(i)), c.baseline[i])
              << "flip at byte " << byte << " bit " << bit
              << " silently changed predictions";
        }
      } catch (const std::exception&) {
        // Rejected at open or during build_forest validation: the common,
        // correct outcome for a flip inside a CRC-covered range.
      }
    }
  }
  // Padding is a tiny fraction of the file; if most flips opened clean the
  // checksums are not actually being verified.
  EXPECT_LT(opened_clean, c.image.size() / step);
  std::remove(path.c_str());
}

TEST(Fuzz, MappedArtifactOnGarbageFiles) {
  util::Rng rng(13);
  const std::string path = fuzz_v2_path("garbage");
  for (int i = 0; i < 200; ++i) {
    const std::string blob = random_bytes(rng, 4096);
    write_blob(path, reinterpret_cast<const std::uint8_t*>(blob.data()),
               blob.size());
    expect_no_crash(
        [&] { (void)artifact::MappedArtifact::open(path).build_forest(); });
  }
  std::remove(path.c_str());
}

TEST(Fuzz, MappedArtifactOnMutatedSections) {
  // Multi-byte mutations (the mutate() idiom above) across the whole file,
  // same contract as the single-bit sweep.
  const V2Corpus& c = V2Corpus::get();
  util::Rng rng(17);
  const std::string path = fuzz_v2_path("mutate");
  std::string blob(c.image.begin(), c.image.end());
  for (int i = 0; i < 300; ++i) {
    const std::string m = mutate(rng, blob);
    write_blob(path, reinterpret_cast<const std::uint8_t*>(m.data()),
               m.size());
    expect_no_crash([&] {
      artifact::MappedArtifact a = artifact::MappedArtifact::open(path);
      const core::BoltForest forest = a.build_forest();
      core::BoltEngine engine(forest);
      for (std::size_t r = 0; r < c.inputs.num_rows(); ++r) {
        ASSERT_EQ(engine.predict(c.inputs.row(r)), c.baseline[r]);
      }
    });
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bolt
