// Deterministic fuzz-lite robustness tests: every parser/loader must
// either succeed or throw — never crash, hang, or corrupt memory — on
// arbitrary byte streams and on mutations of valid inputs.
#include <gtest/gtest.h>

#include <sstream>

#include "../helpers.h"
#include "bolt/builder.h"
#include "bolt/engine.h"
#include "data/csv.h"
#include "forest/dot_io.h"
#include "forest/serialize.h"
#include "service/protocol.h"
#include "util/rng.h"

namespace bolt {
namespace {

std::string random_bytes(util::Rng& rng, std::size_t max_len) {
  std::string s(rng.below(max_len + 1), '\0');
  for (char& c : s) c = static_cast<char>(rng.below(256));
  return s;
}

/// Flips a few random bytes of a valid blob.
std::string mutate(util::Rng& rng, std::string blob) {
  const std::size_t flips = 1 + rng.below(8);
  for (std::size_t i = 0; i < flips && !blob.empty(); ++i) {
    blob[rng.below(blob.size())] = static_cast<char>(rng.below(256));
  }
  return blob;
}

template <class Fn>
void expect_no_crash(Fn&& fn) {
  try {
    fn();
  } catch (const std::exception&) {
    // Throwing is the contract; crashing is the bug.
  }
}

TEST(Fuzz, DotParserOnGarbage) {
  util::Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    expect_no_crash([&] { forest::parse_dot(random_bytes(rng, 400)); });
  }
}

TEST(Fuzz, DotParserOnMutatedValidInput) {
  util::Rng rng(2);
  const std::string valid = forest::to_dot(bolt::testing::tiny_tree());
  for (int i = 0; i < 300; ++i) {
    expect_no_crash([&] { forest::parse_dot(mutate(rng, valid)); });
  }
}

TEST(Fuzz, CsvReaderOnGarbage) {
  util::Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    expect_no_crash([&] {
      std::istringstream in(random_bytes(rng, 400));
      data::read_csv(in);
    });
  }
}

TEST(Fuzz, ForestLoaderOnGarbageAndMutations) {
  util::Rng rng(4);
  std::stringstream valid;
  forest::save_forest(bolt::testing::tiny_forest(), valid);
  const std::string blob = valid.str();
  for (int i = 0; i < 200; ++i) {
    expect_no_crash([&] {
      std::istringstream in(random_bytes(rng, 300));
      forest::load_forest(in);
    });
    expect_no_crash([&] {
      std::istringstream in(mutate(rng, blob));
      forest::load_forest(in);
    });
  }
}

TEST(Fuzz, ForestLoaderOnTruncatedInput) {
  // Every strict prefix of a valid serialized forest is incomplete; the
  // loader must throw on each one rather than crash or over-read.
  std::stringstream valid;
  forest::save_forest(bolt::testing::tiny_forest(), valid);
  const std::string blob = valid.str();
  ASSERT_GT(blob.size(), 0u);
  for (std::size_t len = 0; len < blob.size(); ++len) {
    std::istringstream in(blob.substr(0, len));
    EXPECT_THROW(forest::load_forest(in), std::exception) << "prefix " << len;
  }
  // The untruncated blob still round-trips.
  std::istringstream in(blob);
  const forest::Forest loaded = forest::load_forest(in);
  EXPECT_EQ(loaded.trees.size(), bolt::testing::tiny_forest().trees.size());
}

TEST(Fuzz, ForestLoaderMutationsThatLoadAreStillUsable) {
  // When a mutation slips past validation, the loaded forest must still
  // be safe to evaluate — predictions may differ, memory safety may not.
  util::Rng rng(8);
  std::stringstream valid;
  forest::save_forest(bolt::testing::tiny_forest(), valid);
  const std::string blob = valid.str();
  for (int i = 0; i < 200; ++i) {
    expect_no_crash([&] {
      std::istringstream in(mutate(rng, blob));
      const forest::Forest loaded = forest::load_forest(in);
      if (loaded.num_features == 0 || loaded.num_features > 4096) return;
      std::vector<float> x(loaded.num_features, 0.5f);
      (void)loaded.predict(x);
      (void)loaded.vote(x);
    });
  }
}

TEST(Fuzz, ArtifactLoaderOnMutations) {
  util::Rng rng(5);
  std::stringstream valid;
  core::BoltForest::build(bolt::testing::tiny_forest(), {}).save(valid);
  const std::string blob = valid.str();
  for (int i = 0; i < 200; ++i) {
    expect_no_crash([&] {
      std::istringstream in(mutate(rng, blob));
      auto loaded = core::BoltForest::load(in);
      // If a mutation slips through validation, using the artifact must
      // still be memory-safe when the caller honours the arity contract.
      if (loaded.num_features() > 4096) return;  // absurd arity: skip use
      core::BoltEngine engine(loaded);
      std::vector<float> x(loaded.num_features(), 0.5f);
      (void)engine.predict(x);
    });
  }
}

TEST(Fuzz, ProtocolDecodersOnGarbage) {
  util::Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const std::string bytes = random_bytes(rng, 200);
    const std::span<const std::uint8_t> frame(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    expect_no_crash([&] { service::decode_request(frame); });
    expect_no_crash([&] { service::decode_response(frame); });
  }
}

TEST(Fuzz, ProtocolDecodersOnMutatedValidFrames) {
  util::Rng rng(7);
  service::Request req;
  req.features = {1.0f, 2.0f, 3.0f};
  std::vector<std::uint8_t> valid;
  service::encode_request(req, valid);
  std::string blob(valid.begin(), valid.end());
  for (int i = 0; i < 300; ++i) {
    const std::string m = mutate(rng, blob);
    const std::span<const std::uint8_t> frame(
        reinterpret_cast<const std::uint8_t*>(m.data()), m.size());
    expect_no_crash([&] { service::decode_request(frame); });
  }
}

}  // namespace
}  // namespace bolt
