// The service measurement protocol itself (baselines/service_model.h):
// warmup exclusion, per-sample averaging, determinism, and the effect of
// the disturbance knob.
#include "baselines/service_model.h"

#include <gtest/gtest.h>

#include "archsim/cost_model.h"

#include "../helpers.h"
#include "baselines/ranger_engine.h"
#include "bolt/builder.h"
#include "bolt/engine.h"

namespace bolt::engines {
namespace {

archsim::MachineConfig tiny_machine(std::size_t disturb) {
  archsim::MachineConfig cfg = archsim::xeon_e5_2650_v4();
  cfg.service_disturbance_bytes = disturb;
  return cfg;
}

TEST(ServiceModel, DeterministicAcrossRuns) {
  const forest::Forest f = bolt::testing::small_forest(6, 4, 131);
  const data::Dataset ds = bolt::testing::small_dataset(200, 132);
  const core::BoltForest bf = core::BoltForest::build(f, {});
  core::BoltEngine e1(bf), e2(bf);
  archsim::Machine m1(tiny_machine(1 << 18)), m2(tiny_machine(1 << 18));
  const auto r1 = model_service(e1, m1, ds, 100);
  const auto r2 = model_service(e2, m2, ds, 100);
  EXPECT_EQ(r1.total.instructions, r2.total.instructions);
  EXPECT_EQ(r1.total.mem_accesses, r2.total.mem_accesses);
  EXPECT_EQ(r1.total.l1_misses, r2.total.l1_misses);
  EXPECT_DOUBLE_EQ(r1.us_per_sample, r2.us_per_sample);
}

TEST(ServiceModel, DisturbanceIncreasesMisses) {
  const forest::Forest f = bolt::testing::small_forest(6, 4, 133);
  const data::Dataset ds = bolt::testing::small_dataset(200, 134);
  RangerEngine quiet(f), noisy(f);
  archsim::Machine m_quiet(tiny_machine(0));
  archsim::Machine m_noisy(tiny_machine(1 << 19));
  const auto r_quiet = model_service(quiet, m_quiet, ds, 100);
  const auto r_noisy = model_service(noisy, m_noisy, ds, 100);
  EXPECT_GT(r_noisy.total.l1_misses, r_quiet.total.l1_misses);
  EXPECT_GT(r_noisy.us_per_sample, r_quiet.us_per_sample);
}

TEST(ServiceModel, SampleCountClampedToDataset) {
  const forest::Forest f = bolt::testing::small_forest(4, 3, 135);
  const data::Dataset ds = bolt::testing::small_dataset(50, 136);
  RangerEngine engine(f);
  archsim::Machine m(tiny_machine(0));
  const auto r = model_service(engine, m, ds, 10000, /*warmup=*/8);
  EXPECT_GT(r.us_per_sample, 0.0);
  // Per-sample counters are averages over the 50 real samples.
  EXPECT_EQ(r.per_sample.instructions, r.total.instructions / 50);
}

TEST(ServiceModel, WarmupNotCounted) {
  const forest::Forest f = bolt::testing::small_forest(4, 3, 137);
  const data::Dataset ds = bolt::testing::small_dataset(100, 138);
  RangerEngine engine(f);
  archsim::Machine m(tiny_machine(0));
  const auto r = model_service(engine, m, ds, 10, /*warmup=*/64);
  // Counters reflect exactly 10 measured samples: instructions per sample
  // for Ranger are dominated by the fixed per-call charge.
  EXPECT_NEAR(static_cast<double>(r.per_sample.instructions),
              static_cast<double>(archsim::cost::kRangerPerCallInstructions),
              static_cast<double>(archsim::cost::kRangerPerCallInstructions) *
                  0.05);
}

}  // namespace
}  // namespace bolt::engines
