// Every inference platform must classify identically to the reference
// forest traversal for every input — the comparison in the paper's
// evaluation is only meaningful if all platforms compute the same model.
#include <gtest/gtest.h>

#include <memory>

#include "../helpers.h"
#include "baselines/fp_engine.h"
#include "baselines/ranger_engine.h"
#include "baselines/service_model.h"
#include "baselines/sklearn_engine.h"
#include "bolt/bolt.h"

namespace bolt::engines {
namespace {

struct EngineCase {
  const char* name;
  std::size_t trees;
  std::size_t height;
  std::uint64_t seed;
};

class EngineEquivalence : public ::testing::TestWithParam<EngineCase> {
 protected:
  void SetUp() override {
    const EngineCase& c = GetParam();
    data_ = bolt::testing::small_dataset(700, c.seed);
    forest_ = bolt::testing::small_forest(c.trees, c.height, c.seed);
  }

  data::Dataset data_{0, 0};
  forest::Forest forest_;
};

std::vector<std::unique_ptr<Engine>> make_engines(
    const forest::Forest& forest, const data::Dataset& calib,
    const core::BoltForest& bf) {
  std::vector<std::unique_ptr<Engine>> engines;
  engines.push_back(std::make_unique<core::BoltEngine>(bf));
  engines.push_back(std::make_unique<SklearnEngine>(forest));
  engines.push_back(std::make_unique<RangerEngine>(forest));
  engines.push_back(std::make_unique<ForestPackingEngine>(forest, calib));
  return engines;
}

TEST_P(EngineEquivalence, AllEnginesMatchReferenceTraversal) {
  const auto bf = core::BoltForest::build(forest_, {});
  auto engines = make_engines(forest_, data_, bf);
  for (std::size_t i = 0; i < data_.num_rows(); ++i) {
    const int expected = forest_.predict(data_.row(i));
    for (auto& e : engines) {
      ASSERT_EQ(e->predict(data_.row(i)), expected)
          << e->name() << " sample " << i;
    }
  }
}

TEST_P(EngineEquivalence, VotesMatchReference) {
  const auto bf = core::BoltForest::build(forest_, {});
  auto engines = make_engines(forest_, data_, bf);
  std::vector<double> votes(forest_.num_classes);
  for (std::size_t i = 0; i < 100; ++i) {
    const auto expected = forest_.vote(data_.row(i));
    for (auto& e : engines) {
      e->vote(data_.row(i), votes);
      for (std::size_t c = 0; c < votes.size(); ++c) {
        ASSERT_NEAR(votes[c], expected[c], 1e-9)
            << e->name() << " sample " << i << " class " << c;
      }
    }
  }
}

TEST_P(EngineEquivalence, TracedPredictionEqualsUntraced) {
  const auto bf = core::BoltForest::build(forest_, {});
  auto engines = make_engines(forest_, data_, bf);
  archsim::MachineConfig cfg = archsim::xeon_e5_2650_v4();
  for (auto& e : engines) {
    archsim::Machine m(cfg);
    for (std::size_t i = 0; i < 50; ++i) {
      ASSERT_EQ(e->predict_traced(data_.row(i), m), e->predict(data_.row(i)))
          << e->name();
    }
    EXPECT_GT(m.counters().instructions, 0u);
    EXPECT_GT(m.counters().mem_accesses, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineEquivalence,
    ::testing::Values(EngineCase{"small", 4, 3, 1},
                      EngineCase{"paper_small", 10, 4, 2},
                      EngineCase{"wide", 20, 2, 3},
                      EngineCase{"deep", 5, 7, 4},
                      EngineCase{"single_tree", 1, 4, 5},
                      EngineCase{"stumps", 12, 1, 6}),
    [](const auto& info) { return info.param.name; });

TEST(ForestPacking, HotPathRatioIsHigh) {
  // The layout exists to make the frequent child adjacent; on the
  // calibration distribution the hot ratio must exceed 1/2 by a margin.
  data::Dataset ds = bolt::testing::small_dataset(800, 3);
  forest::Forest f = bolt::testing::small_forest(8, 5, 3);
  ForestPackingEngine fp(f, ds);
  EXPECT_GT(fp.hot_path_ratio(), 0.6);
  EXPECT_LE(fp.hot_path_ratio(), 1.0);
}

TEST(ForestPacking, MemoryIsCompact) {
  forest::Forest f = bolt::testing::small_forest(8, 5, 3);
  data::Dataset ds = bolt::testing::small_dataset(200, 3);
  ForestPackingEngine fp(f, ds);
  SklearnEngine sk(f);
  // Packed nodes are an order of magnitude smaller than scattered
  // Python-style objects.
  EXPECT_LT(fp.memory_bytes() * 4, sk.memory_bytes());
}

TEST(Ranger, BatchMatchesSingle) {
  data::Dataset ds = bolt::testing::small_dataset(300, 8);
  forest::Forest f = bolt::testing::small_forest(6, 4, 8);
  RangerEngine ranger(f);
  std::vector<int> batch(ds.num_rows());
  ranger.predict_batch(ds.raw_features(), ds.num_rows(), ds.num_features(),
                       batch);
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    EXPECT_EQ(batch[i], ranger.predict(ds.row(i))) << i;
  }
}

TEST(ServiceModel, ProducesStableOrdering) {
  // The modeled service comparison must reproduce the paper's platform
  // ordering: Bolt and FP orders of magnitude below Scikit/Ranger.
  data::Dataset ds = bolt::testing::small_dataset(400, 9);
  forest::Forest f = bolt::testing::small_forest(10, 4, 9);
  const auto bf = core::BoltForest::build(f, {});
  core::BoltEngine bolt_engine(bf);
  SklearnEngine sk(f);
  RangerEngine rg(f);
  ForestPackingEngine fp(f, ds);

  const auto cfg = archsim::xeon_e5_2650_v4();
  archsim::Machine m1(cfg), m2(cfg), m3(cfg), m4(cfg);
  const double bolt_us = model_service(bolt_engine, m1, ds, 100).us_per_sample;
  const double sk_us = model_service(sk, m2, ds, 100).us_per_sample;
  const double rg_us = model_service(rg, m3, ds, 100).us_per_sample;
  const double fp_us = model_service(fp, m4, ds, 100).us_per_sample;

  EXPECT_LT(bolt_us, fp_us);       // Bolt beats Forest Packing (shallow)
  EXPECT_LT(fp_us, rg_us / 10);    // both far below Ranger
  EXPECT_LT(rg_us, sk_us);         // Ranger below Scikit
}

}  // namespace
}  // namespace bolt::engines
