file(REMOVE_RECURSE
  "CMakeFiles/traffic_explain.dir/traffic_explain.cpp.o"
  "CMakeFiles/traffic_explain.dir/traffic_explain.cpp.o.d"
  "traffic_explain"
  "traffic_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
