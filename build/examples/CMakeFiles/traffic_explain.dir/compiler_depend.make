# Empty compiler generated dependencies file for traffic_explain.
# This may be replaced when dependencies are built.
