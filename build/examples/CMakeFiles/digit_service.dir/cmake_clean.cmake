file(REMOVE_RECURSE
  "CMakeFiles/digit_service.dir/digit_service.cpp.o"
  "CMakeFiles/digit_service.dir/digit_service.cpp.o.d"
  "digit_service"
  "digit_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digit_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
