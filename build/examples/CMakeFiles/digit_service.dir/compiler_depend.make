# Empty compiler generated dependencies file for digit_service.
# This may be replaced when dependencies are built.
