# Empty compiler generated dependencies file for review_stars.
# This may be replaced when dependencies are built.
