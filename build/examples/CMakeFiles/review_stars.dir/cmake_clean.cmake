file(REMOVE_RECURSE
  "CMakeFiles/review_stars.dir/review_stars.cpp.o"
  "CMakeFiles/review_stars.dir/review_stars.cpp.o.d"
  "review_stars"
  "review_stars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/review_stars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
