# Empty compiler generated dependencies file for bench_fig11b_trees.
# This may be replaced when dependencies are built.
