file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_deepforest.dir/bench_fig15_deepforest.cpp.o"
  "CMakeFiles/bench_fig15_deepforest.dir/bench_fig15_deepforest.cpp.o.d"
  "bench_fig15_deepforest"
  "bench_fig15_deepforest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_deepforest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
