# Empty dependencies file for bench_fig15_deepforest.
# This may be replaced when dependencies are built.
