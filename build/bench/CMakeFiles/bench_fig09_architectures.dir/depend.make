# Empty dependencies file for bench_fig09_architectures.
# This may be replaced when dependencies are built.
