file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11a_height.dir/bench_fig11a_height.cpp.o"
  "CMakeFiles/bench_fig11a_height.dir/bench_fig11a_height.cpp.o.d"
  "bench_fig11a_height"
  "bench_fig11a_height.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_height.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
