# Empty dependencies file for bench_fig11a_height.
# This may be replaced when dependencies are built.
