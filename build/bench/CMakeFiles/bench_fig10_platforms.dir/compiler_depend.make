# Empty compiler generated dependencies file for bench_fig10_platforms.
# This may be replaced when dependencies are built.
