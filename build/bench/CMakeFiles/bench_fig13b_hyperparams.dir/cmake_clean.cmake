file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13b_hyperparams.dir/bench_fig13b_hyperparams.cpp.o"
  "CMakeFiles/bench_fig13b_hyperparams.dir/bench_fig13b_hyperparams.cpp.o.d"
  "bench_fig13b_hyperparams"
  "bench_fig13b_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13b_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
