# Empty compiler generated dependencies file for bench_fig13b_hyperparams.
# This may be replaced when dependencies are built.
