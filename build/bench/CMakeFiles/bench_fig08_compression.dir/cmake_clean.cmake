file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_compression.dir/bench_fig08_compression.cpp.o"
  "CMakeFiles/bench_fig08_compression.dir/bench_fig08_compression.cpp.o.d"
  "bench_fig08_compression"
  "bench_fig08_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
