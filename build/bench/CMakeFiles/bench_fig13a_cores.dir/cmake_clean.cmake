file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13a_cores.dir/bench_fig13a_cores.cpp.o"
  "CMakeFiles/bench_fig13a_cores.dir/bench_fig13a_cores.cpp.o.d"
  "bench_fig13a_cores"
  "bench_fig13a_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13a_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
