# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_util[1]_include.cmake")
include("/root/repo/build/tests/tests_data[1]_include.cmake")
include("/root/repo/build/tests/tests_forest[1]_include.cmake")
include("/root/repo/build/tests/tests_archsim[1]_include.cmake")
include("/root/repo/build/tests/tests_engines[1]_include.cmake")
include("/root/repo/build/tests/tests_bolt[1]_include.cmake")
include("/root/repo/build/tests/tests_service[1]_include.cmake")
include("/root/repo/build/tests/tests_integration[1]_include.cmake")
include("/root/repo/build/tests/tests_fuzz[1]_include.cmake")
