file(REMOVE_RECURSE
  "CMakeFiles/tests_util.dir/util/test_binio.cpp.o"
  "CMakeFiles/tests_util.dir/util/test_binio.cpp.o.d"
  "CMakeFiles/tests_util.dir/util/test_bits.cpp.o"
  "CMakeFiles/tests_util.dir/util/test_bits.cpp.o.d"
  "CMakeFiles/tests_util.dir/util/test_hash.cpp.o"
  "CMakeFiles/tests_util.dir/util/test_hash.cpp.o.d"
  "CMakeFiles/tests_util.dir/util/test_rng.cpp.o"
  "CMakeFiles/tests_util.dir/util/test_rng.cpp.o.d"
  "CMakeFiles/tests_util.dir/util/test_stats.cpp.o"
  "CMakeFiles/tests_util.dir/util/test_stats.cpp.o.d"
  "CMakeFiles/tests_util.dir/util/test_thread_pool.cpp.o"
  "CMakeFiles/tests_util.dir/util/test_thread_pool.cpp.o.d"
  "tests_util"
  "tests_util.pdb"
  "tests_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
