file(REMOVE_RECURSE
  "CMakeFiles/tests_archsim.dir/archsim/test_branch.cpp.o"
  "CMakeFiles/tests_archsim.dir/archsim/test_branch.cpp.o.d"
  "CMakeFiles/tests_archsim.dir/archsim/test_cache.cpp.o"
  "CMakeFiles/tests_archsim.dir/archsim/test_cache.cpp.o.d"
  "CMakeFiles/tests_archsim.dir/archsim/test_cache_oracle.cpp.o"
  "CMakeFiles/tests_archsim.dir/archsim/test_cache_oracle.cpp.o.d"
  "CMakeFiles/tests_archsim.dir/archsim/test_machine.cpp.o"
  "CMakeFiles/tests_archsim.dir/archsim/test_machine.cpp.o.d"
  "tests_archsim"
  "tests_archsim.pdb"
  "tests_archsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_archsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
