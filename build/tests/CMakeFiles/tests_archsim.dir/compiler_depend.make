# Empty compiler generated dependencies file for tests_archsim.
# This may be replaced when dependencies are built.
