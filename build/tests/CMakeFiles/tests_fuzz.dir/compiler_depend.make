# Empty compiler generated dependencies file for tests_fuzz.
# This may be replaced when dependencies are built.
