# Empty compiler generated dependencies file for tests_engines.
# This may be replaced when dependencies are built.
