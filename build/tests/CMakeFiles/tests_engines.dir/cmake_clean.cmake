file(REMOVE_RECURSE
  "CMakeFiles/tests_engines.dir/baselines/test_engines.cpp.o"
  "CMakeFiles/tests_engines.dir/baselines/test_engines.cpp.o.d"
  "CMakeFiles/tests_engines.dir/baselines/test_service_model.cpp.o"
  "CMakeFiles/tests_engines.dir/baselines/test_service_model.cpp.o.d"
  "tests_engines"
  "tests_engines.pdb"
  "tests_engines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
