file(REMOVE_RECURSE
  "CMakeFiles/tests_data.dir/data/test_csv.cpp.o"
  "CMakeFiles/tests_data.dir/data/test_csv.cpp.o.d"
  "CMakeFiles/tests_data.dir/data/test_dataset.cpp.o"
  "CMakeFiles/tests_data.dir/data/test_dataset.cpp.o.d"
  "CMakeFiles/tests_data.dir/data/test_synthetic.cpp.o"
  "CMakeFiles/tests_data.dir/data/test_synthetic.cpp.o.d"
  "tests_data"
  "tests_data.pdb"
  "tests_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
