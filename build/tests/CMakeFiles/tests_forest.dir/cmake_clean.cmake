file(REMOVE_RECURSE
  "CMakeFiles/tests_forest.dir/forest/test_boosted.cpp.o"
  "CMakeFiles/tests_forest.dir/forest/test_boosted.cpp.o.d"
  "CMakeFiles/tests_forest.dir/forest/test_deep_forest.cpp.o"
  "CMakeFiles/tests_forest.dir/forest/test_deep_forest.cpp.o.d"
  "CMakeFiles/tests_forest.dir/forest/test_dot_io.cpp.o"
  "CMakeFiles/tests_forest.dir/forest/test_dot_io.cpp.o.d"
  "CMakeFiles/tests_forest.dir/forest/test_predicates.cpp.o"
  "CMakeFiles/tests_forest.dir/forest/test_predicates.cpp.o.d"
  "CMakeFiles/tests_forest.dir/forest/test_quantize.cpp.o"
  "CMakeFiles/tests_forest.dir/forest/test_quantize.cpp.o.d"
  "CMakeFiles/tests_forest.dir/forest/test_serialize.cpp.o"
  "CMakeFiles/tests_forest.dir/forest/test_serialize.cpp.o.d"
  "CMakeFiles/tests_forest.dir/forest/test_trainer.cpp.o"
  "CMakeFiles/tests_forest.dir/forest/test_trainer.cpp.o.d"
  "CMakeFiles/tests_forest.dir/forest/test_tree.cpp.o"
  "CMakeFiles/tests_forest.dir/forest/test_tree.cpp.o.d"
  "tests_forest"
  "tests_forest.pdb"
  "tests_forest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
