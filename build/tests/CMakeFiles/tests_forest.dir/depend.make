# Empty dependencies file for tests_forest.
# This may be replaced when dependencies are built.
