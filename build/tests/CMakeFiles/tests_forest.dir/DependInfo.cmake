
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/forest/test_boosted.cpp" "tests/CMakeFiles/tests_forest.dir/forest/test_boosted.cpp.o" "gcc" "tests/CMakeFiles/tests_forest.dir/forest/test_boosted.cpp.o.d"
  "/root/repo/tests/forest/test_deep_forest.cpp" "tests/CMakeFiles/tests_forest.dir/forest/test_deep_forest.cpp.o" "gcc" "tests/CMakeFiles/tests_forest.dir/forest/test_deep_forest.cpp.o.d"
  "/root/repo/tests/forest/test_dot_io.cpp" "tests/CMakeFiles/tests_forest.dir/forest/test_dot_io.cpp.o" "gcc" "tests/CMakeFiles/tests_forest.dir/forest/test_dot_io.cpp.o.d"
  "/root/repo/tests/forest/test_predicates.cpp" "tests/CMakeFiles/tests_forest.dir/forest/test_predicates.cpp.o" "gcc" "tests/CMakeFiles/tests_forest.dir/forest/test_predicates.cpp.o.d"
  "/root/repo/tests/forest/test_quantize.cpp" "tests/CMakeFiles/tests_forest.dir/forest/test_quantize.cpp.o" "gcc" "tests/CMakeFiles/tests_forest.dir/forest/test_quantize.cpp.o.d"
  "/root/repo/tests/forest/test_serialize.cpp" "tests/CMakeFiles/tests_forest.dir/forest/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/tests_forest.dir/forest/test_serialize.cpp.o.d"
  "/root/repo/tests/forest/test_trainer.cpp" "tests/CMakeFiles/tests_forest.dir/forest/test_trainer.cpp.o" "gcc" "tests/CMakeFiles/tests_forest.dir/forest/test_trainer.cpp.o.d"
  "/root/repo/tests/forest/test_tree.cpp" "tests/CMakeFiles/tests_forest.dir/forest/test_tree.cpp.o" "gcc" "tests/CMakeFiles/tests_forest.dir/forest/test_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bolt/CMakeFiles/bolt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/bolt_service.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/bolt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/forest/CMakeFiles/bolt_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/archsim/CMakeFiles/bolt_archsim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bolt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bolt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
