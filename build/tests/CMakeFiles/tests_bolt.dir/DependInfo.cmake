
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bolt/test_artifact_io.cpp" "tests/CMakeFiles/tests_bolt.dir/bolt/test_artifact_io.cpp.o" "gcc" "tests/CMakeFiles/tests_bolt.dir/bolt/test_artifact_io.cpp.o.d"
  "/root/repo/tests/bolt/test_bloom.cpp" "tests/CMakeFiles/tests_bolt.dir/bolt/test_bloom.cpp.o" "gcc" "tests/CMakeFiles/tests_bolt.dir/bolt/test_bloom.cpp.o.d"
  "/root/repo/tests/bolt/test_builder.cpp" "tests/CMakeFiles/tests_bolt.dir/bolt/test_builder.cpp.o" "gcc" "tests/CMakeFiles/tests_bolt.dir/bolt/test_builder.cpp.o.d"
  "/root/repo/tests/bolt/test_cluster.cpp" "tests/CMakeFiles/tests_bolt.dir/bolt/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/tests_bolt.dir/bolt/test_cluster.cpp.o.d"
  "/root/repo/tests/bolt/test_dictionary.cpp" "tests/CMakeFiles/tests_bolt.dir/bolt/test_dictionary.cpp.o" "gcc" "tests/CMakeFiles/tests_bolt.dir/bolt/test_dictionary.cpp.o.d"
  "/root/repo/tests/bolt/test_explain.cpp" "tests/CMakeFiles/tests_bolt.dir/bolt/test_explain.cpp.o" "gcc" "tests/CMakeFiles/tests_bolt.dir/bolt/test_explain.cpp.o.d"
  "/root/repo/tests/bolt/test_layout.cpp" "tests/CMakeFiles/tests_bolt.dir/bolt/test_layout.cpp.o" "gcc" "tests/CMakeFiles/tests_bolt.dir/bolt/test_layout.cpp.o.d"
  "/root/repo/tests/bolt/test_parallel.cpp" "tests/CMakeFiles/tests_bolt.dir/bolt/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/tests_bolt.dir/bolt/test_parallel.cpp.o.d"
  "/root/repo/tests/bolt/test_paths.cpp" "tests/CMakeFiles/tests_bolt.dir/bolt/test_paths.cpp.o" "gcc" "tests/CMakeFiles/tests_bolt.dir/bolt/test_paths.cpp.o.d"
  "/root/repo/tests/bolt/test_planner.cpp" "tests/CMakeFiles/tests_bolt.dir/bolt/test_planner.cpp.o" "gcc" "tests/CMakeFiles/tests_bolt.dir/bolt/test_planner.cpp.o.d"
  "/root/repo/tests/bolt/test_profile.cpp" "tests/CMakeFiles/tests_bolt.dir/bolt/test_profile.cpp.o" "gcc" "tests/CMakeFiles/tests_bolt.dir/bolt/test_profile.cpp.o.d"
  "/root/repo/tests/bolt/test_random_sweep.cpp" "tests/CMakeFiles/tests_bolt.dir/bolt/test_random_sweep.cpp.o" "gcc" "tests/CMakeFiles/tests_bolt.dir/bolt/test_random_sweep.cpp.o.d"
  "/root/repo/tests/bolt/test_results.cpp" "tests/CMakeFiles/tests_bolt.dir/bolt/test_results.cpp.o" "gcc" "tests/CMakeFiles/tests_bolt.dir/bolt/test_results.cpp.o.d"
  "/root/repo/tests/bolt/test_table.cpp" "tests/CMakeFiles/tests_bolt.dir/bolt/test_table.cpp.o" "gcc" "tests/CMakeFiles/tests_bolt.dir/bolt/test_table.cpp.o.d"
  "/root/repo/tests/bolt/test_verify.cpp" "tests/CMakeFiles/tests_bolt.dir/bolt/test_verify.cpp.o" "gcc" "tests/CMakeFiles/tests_bolt.dir/bolt/test_verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bolt/CMakeFiles/bolt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/bolt_service.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/bolt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/forest/CMakeFiles/bolt_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/archsim/CMakeFiles/bolt_archsim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bolt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bolt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
