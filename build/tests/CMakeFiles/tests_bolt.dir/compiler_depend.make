# Empty compiler generated dependencies file for tests_bolt.
# This may be replaced when dependencies are built.
