# Empty dependencies file for bolt_data.
# This may be replaced when dependencies are built.
