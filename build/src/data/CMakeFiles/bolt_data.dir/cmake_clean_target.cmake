file(REMOVE_RECURSE
  "libbolt_data.a"
)
