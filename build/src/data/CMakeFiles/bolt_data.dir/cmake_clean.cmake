file(REMOVE_RECURSE
  "CMakeFiles/bolt_data.dir/csv.cpp.o"
  "CMakeFiles/bolt_data.dir/csv.cpp.o.d"
  "CMakeFiles/bolt_data.dir/dataset.cpp.o"
  "CMakeFiles/bolt_data.dir/dataset.cpp.o.d"
  "CMakeFiles/bolt_data.dir/synthetic.cpp.o"
  "CMakeFiles/bolt_data.dir/synthetic.cpp.o.d"
  "libbolt_data.a"
  "libbolt_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolt_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
