file(REMOVE_RECURSE
  "CMakeFiles/bolt_util.dir/bits.cpp.o"
  "CMakeFiles/bolt_util.dir/bits.cpp.o.d"
  "CMakeFiles/bolt_util.dir/hash.cpp.o"
  "CMakeFiles/bolt_util.dir/hash.cpp.o.d"
  "CMakeFiles/bolt_util.dir/stats.cpp.o"
  "CMakeFiles/bolt_util.dir/stats.cpp.o.d"
  "CMakeFiles/bolt_util.dir/thread_pool.cpp.o"
  "CMakeFiles/bolt_util.dir/thread_pool.cpp.o.d"
  "libbolt_util.a"
  "libbolt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
