file(REMOVE_RECURSE
  "libbolt_util.a"
)
