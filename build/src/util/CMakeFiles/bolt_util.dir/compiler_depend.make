# Empty compiler generated dependencies file for bolt_util.
# This may be replaced when dependencies are built.
