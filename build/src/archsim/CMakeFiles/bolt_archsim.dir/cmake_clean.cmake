file(REMOVE_RECURSE
  "CMakeFiles/bolt_archsim.dir/branch.cpp.o"
  "CMakeFiles/bolt_archsim.dir/branch.cpp.o.d"
  "CMakeFiles/bolt_archsim.dir/cache.cpp.o"
  "CMakeFiles/bolt_archsim.dir/cache.cpp.o.d"
  "CMakeFiles/bolt_archsim.dir/machine.cpp.o"
  "CMakeFiles/bolt_archsim.dir/machine.cpp.o.d"
  "libbolt_archsim.a"
  "libbolt_archsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolt_archsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
