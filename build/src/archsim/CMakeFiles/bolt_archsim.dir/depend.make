# Empty dependencies file for bolt_archsim.
# This may be replaced when dependencies are built.
