file(REMOVE_RECURSE
  "libbolt_archsim.a"
)
