file(REMOVE_RECURSE
  "CMakeFiles/bolt_service.dir/protocol.cpp.o"
  "CMakeFiles/bolt_service.dir/protocol.cpp.o.d"
  "CMakeFiles/bolt_service.dir/server.cpp.o"
  "CMakeFiles/bolt_service.dir/server.cpp.o.d"
  "libbolt_service.a"
  "libbolt_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolt_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
