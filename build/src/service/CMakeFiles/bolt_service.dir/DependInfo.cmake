
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/service/protocol.cpp" "src/service/CMakeFiles/bolt_service.dir/protocol.cpp.o" "gcc" "src/service/CMakeFiles/bolt_service.dir/protocol.cpp.o.d"
  "/root/repo/src/service/server.cpp" "src/service/CMakeFiles/bolt_service.dir/server.cpp.o" "gcc" "src/service/CMakeFiles/bolt_service.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bolt/CMakeFiles/bolt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/bolt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/forest/CMakeFiles/bolt_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bolt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/archsim/CMakeFiles/bolt_archsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bolt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
