# Empty compiler generated dependencies file for bolt_service.
# This may be replaced when dependencies are built.
