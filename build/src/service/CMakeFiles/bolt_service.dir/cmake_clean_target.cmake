file(REMOVE_RECURSE
  "libbolt_service.a"
)
