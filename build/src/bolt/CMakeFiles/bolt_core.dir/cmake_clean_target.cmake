file(REMOVE_RECURSE
  "libbolt_core.a"
)
