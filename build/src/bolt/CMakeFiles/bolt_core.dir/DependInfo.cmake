
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bolt/bloom.cpp" "src/bolt/CMakeFiles/bolt_core.dir/bloom.cpp.o" "gcc" "src/bolt/CMakeFiles/bolt_core.dir/bloom.cpp.o.d"
  "/root/repo/src/bolt/builder.cpp" "src/bolt/CMakeFiles/bolt_core.dir/builder.cpp.o" "gcc" "src/bolt/CMakeFiles/bolt_core.dir/builder.cpp.o.d"
  "/root/repo/src/bolt/cluster.cpp" "src/bolt/CMakeFiles/bolt_core.dir/cluster.cpp.o" "gcc" "src/bolt/CMakeFiles/bolt_core.dir/cluster.cpp.o.d"
  "/root/repo/src/bolt/dictionary.cpp" "src/bolt/CMakeFiles/bolt_core.dir/dictionary.cpp.o" "gcc" "src/bolt/CMakeFiles/bolt_core.dir/dictionary.cpp.o.d"
  "/root/repo/src/bolt/engine.cpp" "src/bolt/CMakeFiles/bolt_core.dir/engine.cpp.o" "gcc" "src/bolt/CMakeFiles/bolt_core.dir/engine.cpp.o.d"
  "/root/repo/src/bolt/explain.cpp" "src/bolt/CMakeFiles/bolt_core.dir/explain.cpp.o" "gcc" "src/bolt/CMakeFiles/bolt_core.dir/explain.cpp.o.d"
  "/root/repo/src/bolt/layout.cpp" "src/bolt/CMakeFiles/bolt_core.dir/layout.cpp.o" "gcc" "src/bolt/CMakeFiles/bolt_core.dir/layout.cpp.o.d"
  "/root/repo/src/bolt/parallel.cpp" "src/bolt/CMakeFiles/bolt_core.dir/parallel.cpp.o" "gcc" "src/bolt/CMakeFiles/bolt_core.dir/parallel.cpp.o.d"
  "/root/repo/src/bolt/paths.cpp" "src/bolt/CMakeFiles/bolt_core.dir/paths.cpp.o" "gcc" "src/bolt/CMakeFiles/bolt_core.dir/paths.cpp.o.d"
  "/root/repo/src/bolt/planner.cpp" "src/bolt/CMakeFiles/bolt_core.dir/planner.cpp.o" "gcc" "src/bolt/CMakeFiles/bolt_core.dir/planner.cpp.o.d"
  "/root/repo/src/bolt/results.cpp" "src/bolt/CMakeFiles/bolt_core.dir/results.cpp.o" "gcc" "src/bolt/CMakeFiles/bolt_core.dir/results.cpp.o.d"
  "/root/repo/src/bolt/table.cpp" "src/bolt/CMakeFiles/bolt_core.dir/table.cpp.o" "gcc" "src/bolt/CMakeFiles/bolt_core.dir/table.cpp.o.d"
  "/root/repo/src/bolt/verify.cpp" "src/bolt/CMakeFiles/bolt_core.dir/verify.cpp.o" "gcc" "src/bolt/CMakeFiles/bolt_core.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/forest/CMakeFiles/bolt_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/bolt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/archsim/CMakeFiles/bolt_archsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bolt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bolt_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
