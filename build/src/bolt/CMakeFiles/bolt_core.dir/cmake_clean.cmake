file(REMOVE_RECURSE
  "CMakeFiles/bolt_core.dir/bloom.cpp.o"
  "CMakeFiles/bolt_core.dir/bloom.cpp.o.d"
  "CMakeFiles/bolt_core.dir/builder.cpp.o"
  "CMakeFiles/bolt_core.dir/builder.cpp.o.d"
  "CMakeFiles/bolt_core.dir/cluster.cpp.o"
  "CMakeFiles/bolt_core.dir/cluster.cpp.o.d"
  "CMakeFiles/bolt_core.dir/dictionary.cpp.o"
  "CMakeFiles/bolt_core.dir/dictionary.cpp.o.d"
  "CMakeFiles/bolt_core.dir/engine.cpp.o"
  "CMakeFiles/bolt_core.dir/engine.cpp.o.d"
  "CMakeFiles/bolt_core.dir/explain.cpp.o"
  "CMakeFiles/bolt_core.dir/explain.cpp.o.d"
  "CMakeFiles/bolt_core.dir/layout.cpp.o"
  "CMakeFiles/bolt_core.dir/layout.cpp.o.d"
  "CMakeFiles/bolt_core.dir/parallel.cpp.o"
  "CMakeFiles/bolt_core.dir/parallel.cpp.o.d"
  "CMakeFiles/bolt_core.dir/paths.cpp.o"
  "CMakeFiles/bolt_core.dir/paths.cpp.o.d"
  "CMakeFiles/bolt_core.dir/planner.cpp.o"
  "CMakeFiles/bolt_core.dir/planner.cpp.o.d"
  "CMakeFiles/bolt_core.dir/results.cpp.o"
  "CMakeFiles/bolt_core.dir/results.cpp.o.d"
  "CMakeFiles/bolt_core.dir/table.cpp.o"
  "CMakeFiles/bolt_core.dir/table.cpp.o.d"
  "CMakeFiles/bolt_core.dir/verify.cpp.o"
  "CMakeFiles/bolt_core.dir/verify.cpp.o.d"
  "libbolt_core.a"
  "libbolt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
