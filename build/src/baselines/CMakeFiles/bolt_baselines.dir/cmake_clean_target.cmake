file(REMOVE_RECURSE
  "libbolt_baselines.a"
)
