file(REMOVE_RECURSE
  "CMakeFiles/bolt_baselines.dir/fp_engine.cpp.o"
  "CMakeFiles/bolt_baselines.dir/fp_engine.cpp.o.d"
  "CMakeFiles/bolt_baselines.dir/ranger_engine.cpp.o"
  "CMakeFiles/bolt_baselines.dir/ranger_engine.cpp.o.d"
  "CMakeFiles/bolt_baselines.dir/sklearn_engine.cpp.o"
  "CMakeFiles/bolt_baselines.dir/sklearn_engine.cpp.o.d"
  "libbolt_baselines.a"
  "libbolt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
