# Empty compiler generated dependencies file for bolt_baselines.
# This may be replaced when dependencies are built.
