# Empty dependencies file for bolt_forest.
# This may be replaced when dependencies are built.
