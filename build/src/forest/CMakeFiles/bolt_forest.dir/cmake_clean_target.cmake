file(REMOVE_RECURSE
  "libbolt_forest.a"
)
