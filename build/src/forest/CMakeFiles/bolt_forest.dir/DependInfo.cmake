
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forest/boosted.cpp" "src/forest/CMakeFiles/bolt_forest.dir/boosted.cpp.o" "gcc" "src/forest/CMakeFiles/bolt_forest.dir/boosted.cpp.o.d"
  "/root/repo/src/forest/deep_forest.cpp" "src/forest/CMakeFiles/bolt_forest.dir/deep_forest.cpp.o" "gcc" "src/forest/CMakeFiles/bolt_forest.dir/deep_forest.cpp.o.d"
  "/root/repo/src/forest/dot_io.cpp" "src/forest/CMakeFiles/bolt_forest.dir/dot_io.cpp.o" "gcc" "src/forest/CMakeFiles/bolt_forest.dir/dot_io.cpp.o.d"
  "/root/repo/src/forest/predicates.cpp" "src/forest/CMakeFiles/bolt_forest.dir/predicates.cpp.o" "gcc" "src/forest/CMakeFiles/bolt_forest.dir/predicates.cpp.o.d"
  "/root/repo/src/forest/quantize.cpp" "src/forest/CMakeFiles/bolt_forest.dir/quantize.cpp.o" "gcc" "src/forest/CMakeFiles/bolt_forest.dir/quantize.cpp.o.d"
  "/root/repo/src/forest/serialize.cpp" "src/forest/CMakeFiles/bolt_forest.dir/serialize.cpp.o" "gcc" "src/forest/CMakeFiles/bolt_forest.dir/serialize.cpp.o.d"
  "/root/repo/src/forest/trainer.cpp" "src/forest/CMakeFiles/bolt_forest.dir/trainer.cpp.o" "gcc" "src/forest/CMakeFiles/bolt_forest.dir/trainer.cpp.o.d"
  "/root/repo/src/forest/tree.cpp" "src/forest/CMakeFiles/bolt_forest.dir/tree.cpp.o" "gcc" "src/forest/CMakeFiles/bolt_forest.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bolt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bolt_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
