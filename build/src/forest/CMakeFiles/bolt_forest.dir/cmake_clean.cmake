file(REMOVE_RECURSE
  "CMakeFiles/bolt_forest.dir/boosted.cpp.o"
  "CMakeFiles/bolt_forest.dir/boosted.cpp.o.d"
  "CMakeFiles/bolt_forest.dir/deep_forest.cpp.o"
  "CMakeFiles/bolt_forest.dir/deep_forest.cpp.o.d"
  "CMakeFiles/bolt_forest.dir/dot_io.cpp.o"
  "CMakeFiles/bolt_forest.dir/dot_io.cpp.o.d"
  "CMakeFiles/bolt_forest.dir/predicates.cpp.o"
  "CMakeFiles/bolt_forest.dir/predicates.cpp.o.d"
  "CMakeFiles/bolt_forest.dir/quantize.cpp.o"
  "CMakeFiles/bolt_forest.dir/quantize.cpp.o.d"
  "CMakeFiles/bolt_forest.dir/serialize.cpp.o"
  "CMakeFiles/bolt_forest.dir/serialize.cpp.o.d"
  "CMakeFiles/bolt_forest.dir/trainer.cpp.o"
  "CMakeFiles/bolt_forest.dir/trainer.cpp.o.d"
  "CMakeFiles/bolt_forest.dir/tree.cpp.o"
  "CMakeFiles/bolt_forest.dir/tree.cpp.o.d"
  "libbolt_forest.a"
  "libbolt_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolt_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
