# Empty compiler generated dependencies file for bolt_cli.
# This may be replaced when dependencies are built.
