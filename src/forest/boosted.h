// Boosted tree ensembles with per-tree stage weights.
//
// The paper (§5, "Bolt for Complex Forest Structures") notes Bolt supports
// gradient-boosted forests "by simply adding the corresponding tree weight
// to each path". We train weighted ensembles with SAMME AdaBoost — a
// boosting scheme whose model is exactly a weighted-vote forest, which is
// the structure Bolt consumes.
#pragma once

#include "data/dataset.h"
#include "forest/trainer.h"
#include "forest/tree.h"

namespace bolt::forest {

struct BoostConfig {
  std::size_t num_rounds = 10;
  std::size_t max_height = 3;
  std::size_t max_features = 0;  // 0 = sqrt
  std::size_t max_thresholds = 32;
  std::uint64_t seed = 42;
};

/// Trains a SAMME (multi-class AdaBoost) ensemble. The returned Forest has
/// per-tree weights = stage weights; Forest::predict aggregates by weighted
/// vote, and Bolt attaches the weight to every path of the tree.
Forest train_boosted(const data::Dataset& ds, const BoostConfig& cfg);

}  // namespace bolt::forest
