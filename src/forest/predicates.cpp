#include "forest/predicates.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/binio.h"

namespace bolt::forest {

// Branchless scalar pass over the SoA mirrors, one 64-bit word at a time,
// with two interleaved register accumulators to halve the OR dependency
// chain. This is the bit-identity oracle: every SIMD binarize kernel must
// reproduce these words exactly (NaN fails `<=`, matching _CMP_LE_OQ).
void binarize_row_scalar(const PredicateSoA& space, const float* x,
                         std::uint64_t* out_words) {
  const std::int32_t* feats = space.features;
  const float* thrs = space.thresholds;
  const std::size_t n = space.num_predicates;
  const std::size_t nwords = util::words_for_bits(n);
  for (std::size_t w = 0; w < nwords; ++w) {
    const std::size_t lo = w * 64;
    const std::size_t hi = std::min(n, lo + 64);
    std::uint64_t acc0 = 0;
    std::uint64_t acc1 = 0;
    std::size_t p = lo;
    for (; p + 1 < hi; p += 2) {
      acc0 |= static_cast<std::uint64_t>(x[feats[p]] <= thrs[p]) << (p - lo);
      acc1 |= static_cast<std::uint64_t>(x[feats[p + 1]] <= thrs[p + 1])
              << (p + 1 - lo);
    }
    if (p < hi) {
      acc0 |= static_cast<std::uint64_t>(x[feats[p]] <= thrs[p]) << (p - lo);
    }
    out_words[w] = acc0 | acc1;
  }
}

namespace detail {
// constinit: the default must be constant-initialized so the kernel
// layer's static-init installer can never be clobbered by TU init order.
constinit std::atomic<BinarizeRowFn> binarize_row_dispatch{
    &binarize_row_scalar};
}  // namespace detail

void set_binarize_row_dispatch(BinarizeRowFn fn) {
  detail::binarize_row_dispatch.store(fn != nullptr ? fn
                                                    : &binarize_row_scalar,
                                      std::memory_order_release);
}

PredicateSpace::PredicateSpace(const Forest& forest)
    : num_features_(forest.num_features) {
  std::vector<Predicate> all;
  for (const DecisionTree& t : forest.trees) {
    for (const TreeNode& n : t.nodes()) {
      if (!n.is_leaf()) {
        all.push_back({static_cast<std::uint32_t>(n.feature), n.threshold});
      }
    }
  }
  std::sort(all.begin(), all.end(), [](const Predicate& a, const Predicate& b) {
    return a.feature != b.feature ? a.feature < b.feature
                                  : a.threshold < b.threshold;
  });
  all.erase(std::unique(all.begin(), all.end()), all.end());
  predicates_ = std::move(all);
  build_indexes();
}

void PredicateSpace::build_indexes() {
  std::vector<std::int32_t> feats;
  std::vector<float> thrs;
  feats.reserve(predicates_.size());
  thrs.reserve(predicates_.size());
  for (const Predicate& p : predicates_) {
    feats.push_back(static_cast<std::int32_t>(p.feature));
    thrs.push_back(p.threshold);
  }
  soa_features_ = std::move(feats);
  soa_thresholds_ = std::move(thrs);

  std::vector<std::uint32_t> offs(num_features_ + 1, 0);
  for (const Predicate& p : predicates_) ++offs[p.feature + 1];
  for (std::size_t f = 0; f < num_features_; ++f) {
    offs[f + 1] += offs[f];
  }
  feature_offsets_ = std::move(offs);
  count_used_features();
}

void PredicateSpace::count_used_features() {
  used_features_ = 0;
  for (std::size_t f = 0; f < num_features_; ++f) {
    if (feature_offsets_[f + 1] != feature_offsets_[f]) ++used_features_;
  }
}

void PredicateSpace::save(std::ostream& out) const {
  util::put(out, static_cast<std::uint64_t>(num_features_));
  util::put_vec(out, predicates_);
}

PredicateSpace PredicateSpace::load(std::istream& in) {
  PredicateSpace space;
  space.num_features_ = util::get<std::uint64_t>(in);
  if (space.num_features_ > (1ull << 32)) {
    throw std::runtime_error("predicate space load: implausible arity");
  }
  space.predicates_ = util::get_vec<Predicate>(in);
  for (const Predicate& p : space.predicates_) {
    if (p.feature >= space.num_features_) {
      throw std::runtime_error("predicate space load: feature out of range");
    }
  }
  space.build_indexes();
  return space;
}

PredicateSpace PredicateSpace::from_predicates(
    std::size_t num_features, std::span<const Predicate> predicates) {
  PredicateSpace space;
  space.num_features_ = num_features;
  if (space.num_features_ > (1ull << 32)) {
    throw std::runtime_error("predicate space load: implausible arity");
  }
  space.predicates_ =
      std::vector<Predicate>(predicates.begin(), predicates.end());
  for (const Predicate& p : space.predicates_) {
    if (p.feature >= space.num_features_) {
      throw std::runtime_error("predicate space load: feature out of range");
    }
  }
  space.build_indexes();
  return space;
}

PredicateSpace PredicateSpace::from_views(std::size_t num_features,
                                          const Views& v,
                                          bool deep_validate) {
  auto fail = [](const char* what) {
    throw std::runtime_error(std::string("predicate space load: ") + what);
  };
  PredicateSpace space;
  space.num_features_ = num_features;
  if (num_features > (1ull << 32)) fail("implausible arity");
  const std::size_t n = v.predicates.size();
  if (v.soa_features.size() != n || v.soa_thresholds.size() != n) {
    fail("SoA mirror size mismatch");
  }
  if (v.feature_offsets.size() != num_features + 1) {
    fail("feature index size mismatch");
  }
  if (num_features > 0 &&
      (v.feature_offsets.front() != 0 || v.feature_offsets.back() != n)) {
    fail("feature index does not cover predicates");
  }
  if (deep_validate) {
    // The mirrors and the CSR index are redundant with the predicate
    // array; re-derive element-wise (branchless accumulate — these
    // stream on the mmap cold-start path).
    std::uint32_t bad = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Predicate& p = v.predicates[i];
      bad |= static_cast<std::uint32_t>(p.feature >= num_features);
      bad |= static_cast<std::uint32_t>(
          v.soa_features[i] != static_cast<std::int32_t>(p.feature));
      // Bitwise float compare: NaN thresholds must round-trip too.
      bad |= static_cast<std::uint32_t>(
          std::memcmp(&v.soa_thresholds[i], &p.threshold, sizeof(float)) != 0);
    }
    if (bad != 0) fail("SoA mirror disagrees with predicates");
    std::uint32_t bad_off = 0;
    for (std::size_t f = 0; f < num_features; ++f) {
      bad_off |= static_cast<std::uint32_t>(v.feature_offsets[f + 1] <
                                            v.feature_offsets[f]);
    }
    if (bad_off != 0) fail("feature index not monotone");
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t f = v.predicates[i].feature;
      bad_off |= static_cast<std::uint32_t>(i < v.feature_offsets[f]) |
                 static_cast<std::uint32_t>(i >= v.feature_offsets[f + 1]);
    }
    if (bad_off != 0) fail("feature index disagrees with predicates");
  }
  space.predicates_ = util::VecOrView<Predicate>::view(v.predicates.data(), n);
  space.soa_features_ =
      util::VecOrView<std::int32_t>::view(v.soa_features.data(), n);
  space.soa_thresholds_ =
      util::VecOrView<float>::view(v.soa_thresholds.data(), n);
  space.feature_offsets_ = util::VecOrView<std::uint32_t>::view(
      v.feature_offsets.data(), v.feature_offsets.size());
  space.count_used_features();
  return space;
}

std::uint32_t PredicateSpace::id_of(std::uint32_t feature,
                                    float threshold) const {
  const std::uint32_t lo = feature_offsets_[feature];
  const std::uint32_t hi = feature_offsets_[feature + 1];
  const auto begin = predicates_.begin() + lo;
  const auto end = predicates_.begin() + hi;
  const auto it =
      std::lower_bound(begin, end, threshold,
                       [](const Predicate& p, float t) { return p.threshold < t; });
  if (it == end || it->threshold != threshold) {
    throw std::out_of_range("PredicateSpace::id_of: unknown predicate");
  }
  return static_cast<std::uint32_t>(it - predicates_.begin());
}

void PredicateSpace::binarize(std::span<const float> x,
                              util::BitVector& out) const {
  if (out.size() != predicates_.size()) out.resize(predicates_.size());
  // One relaxed load + indirect call (the pext64_fast pattern): the kernel
  // layer installs its selected SIMD implementation here at startup, so
  // this is the dispatched path for every caller, not just the engines.
  detail::binarize_row_dispatch.load(std::memory_order_relaxed)(
      soa(), x.data(), out.words().data());
}

util::BitVector PredicateSpace::binarize(std::span<const float> x) const {
  util::BitVector out(predicates_.size());
  binarize(x, out);
  return out;
}

void PredicateSpace::binarize_subset(std::span<const float> x,
                                     std::span<const std::uint32_t> positions,
                                     util::BitVector& out) const {
  if (out.size() != predicates_.size()) out.resize(predicates_.size());
  const Predicate* preds = predicates_.data();
  std::uint64_t* words = out.words().data();
  // Accumulate per 64-bit word in registers; one read-modify-write per
  // word instead of per predicate.
  std::size_t k = 0;
  const std::size_t n = positions.size();
  while (k < n) {
    const std::uint32_t w = positions[k] >> 6;
    std::uint64_t mask = 0;
    std::uint64_t values = 0;
    while (k < n && (positions[k] >> 6) == w) {
      const std::uint32_t p = positions[k];
      const std::uint64_t bit = std::uint64_t{1} << (p & 63);
      mask |= bit;
      values |= static_cast<std::uint64_t>(x[preds[p].feature] <=
                                           preds[p].threshold)
                << (p & 63);
      ++k;
    }
    words[w] = (words[w] & ~mask) | values;
  }
}

}  // namespace bolt::forest
