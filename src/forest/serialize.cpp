#include "forest/serialize.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace bolt::forest {
namespace {

constexpr std::uint32_t kMagic = 0x424f4c54;  // "BOLT"
constexpr std::uint32_t kVersion = 1;

static_assert(std::endian::native == std::endian::little,
              "serializer assumes a little-endian host");

template <class T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("forest load: truncated stream");
  return v;
}

}  // namespace

void save_forest(const Forest& forest, std::ostream& out) {
  put(out, kMagic);
  put(out, kVersion);
  put(out, static_cast<std::uint64_t>(forest.num_features));
  put(out, static_cast<std::uint64_t>(forest.num_classes));
  put(out, static_cast<std::uint64_t>(forest.trees.size()));
  for (double w : forest.weights) put(out, w);
  for (const DecisionTree& t : forest.trees) {
    put(out, static_cast<std::uint64_t>(t.nodes().size()));
    for (const TreeNode& n : t.nodes()) {
      put(out, n.feature);
      put(out, n.threshold);
      put(out, n.left);
      put(out, n.right);
      put(out, n.leaf_class);
    }
  }
}

void save_forest_file(const Forest& forest, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("forest save: cannot open " + path);
  save_forest(forest, out);
}

Forest load_forest(std::istream& in) {
  if (get<std::uint32_t>(in) != kMagic) {
    throw std::runtime_error("forest load: bad magic");
  }
  if (get<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error("forest load: unsupported version");
  }
  Forest f;
  f.num_features = get<std::uint64_t>(in);
  f.num_classes = get<std::uint64_t>(in);
  const auto ntrees = get<std::uint64_t>(in);
  // Sanity caps so corrupted headers fail fast instead of allocating
  // per their claimed (arbitrary) sizes.
  if (ntrees > (1u << 20) || f.num_features > (1ull << 32) ||
      f.num_classes > (1u << 20)) {
    throw std::runtime_error("forest load: implausible header");
  }
  f.weights.reserve(ntrees);
  for (std::uint64_t t = 0; t < ntrees; ++t) {
    f.weights.push_back(get<double>(in));
  }
  f.trees.reserve(ntrees);
  for (std::uint64_t t = 0; t < ntrees; ++t) {
    const auto nnodes = get<std::uint64_t>(in);
    if (nnodes > (1u << 26)) {
      throw std::runtime_error("forest load: implausible tree size");
    }
    std::vector<TreeNode> nodes(nnodes);
    for (auto& n : nodes) {
      n.feature = get<std::int32_t>(in);
      n.threshold = get<float>(in);
      n.left = get<std::int32_t>(in);
      n.right = get<std::int32_t>(in);
      n.leaf_class = get<std::int32_t>(in);
    }
    f.trees.emplace_back(std::move(nodes));
  }
  f.check();
  return f;
}

Forest load_forest_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("forest load: cannot open " + path);
  return load_forest(in);
}

}  // namespace bolt::forest
