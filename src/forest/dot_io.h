// DOT (Graphviz) import/export for decision trees.
//
// The paper's toolchain converts each Scikit-Learn tree to a DOT file and
// Bolt's tools extract root-to-leaf paths from those files (§5). We emit
// the same `X[f] <= t` node-label dialect sklearn.tree.export_graphviz
// uses, and the importer accepts files in that dialect, so a forest trained
// with real Scikit-Learn can be fed to this implementation unchanged.
#pragma once

#include <iosfwd>
#include <string>

#include "forest/tree.h"

namespace bolt::forest {

/// Writes one tree as a DOT digraph. Internal nodes are labeled
/// "X[f] <= t", leaves "class = c"; left edges carry headlabel "True".
void write_dot(const DecisionTree& tree, std::ostream& out);
std::string to_dot(const DecisionTree& tree);

/// Parses a DOT digraph in the dialect produced by write_dot /
/// sklearn.tree.export_graphviz. Node statements may carry extra label
/// lines (gini/samples/value), which are ignored.
DecisionTree read_dot(std::istream& in);
DecisionTree parse_dot(const std::string& text);

/// Writes/reads a whole forest as a directory-free multi-graph stream:
/// one digraph per tree, separated by blank lines, preceded by a header
/// comment carrying num_features/num_classes/weights.
void write_forest_dot(const Forest& forest, std::ostream& out);
Forest read_forest_dot(std::istream& in);

}  // namespace bolt::forest
