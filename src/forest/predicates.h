// The split-predicate space: the set of distinct (feature, threshold) tests
// appearing anywhere in a trained forest.
//
// The paper models trees as binary: "nodes are features, and edges indicate
// boolean values associated with a feature and a threshold value" (§4).
// For numeric forests this is realized by treating every distinct split
// test `x[f] <= t` as one boolean predicate. An input sample is binarized
// once into a bit vector over this space; every Bolt structure (paths,
// dictionary masks, lookup addresses) then operates on predicate bits only.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "forest/tree.h"
#include "util/bits.h"

namespace bolt::forest {

/// One boolean predicate: `x[feature] <= threshold`.
struct Predicate {
  std::uint32_t feature;
  float threshold;

  friend bool operator==(const Predicate&, const Predicate&) = default;
};

/// The deduplicated, ordered predicate space of a forest plus fast lookup
/// from tree nodes to predicate IDs.
class PredicateSpace {
 public:
  /// Scans every internal node of `forest` and assigns each distinct
  /// (feature, threshold) a dense predicate ID. Predicates are ordered by
  /// (feature, threshold), so all tests of one input feature are adjacent —
  /// this keeps binarization cache-friendly and lets thresholds of a
  /// feature be evaluated with one pass.
  explicit PredicateSpace(const Forest& forest);

  std::size_t size() const { return predicates_.size(); }
  const Predicate& predicate(std::size_t id) const { return predicates_[id]; }
  std::span<const Predicate> predicates() const { return predicates_; }

  /// Predicate ID of a (feature, threshold) pair; the pair must exist.
  std::uint32_t id_of(std::uint32_t feature, float threshold) const;

  /// Binarizes a sample: bit p is set iff x[f_p] <= t_p. This is the single
  /// O(|P|) pass each engine performs before any dictionary work.
  void binarize(std::span<const float> x, util::BitVector& out) const;
  util::BitVector binarize(std::span<const float> x) const;

  /// Evaluates only the predicates in `positions` (ascending, deduplicated)
  /// into `out`. Used by the partitioned engine: a core whose dictionary
  /// partition touches a subset of the predicate space encodes only that
  /// subset (other bits of `out` are left untouched).
  void binarize_subset(std::span<const float> x,
                       std::span<const std::uint32_t> positions,
                       util::BitVector& out) const;

  /// Number of distinct input features that appear in any predicate.
  std::size_t num_used_features() const { return used_features_; }

  /// Binary (de)serialization; part of the Bolt artifact format.
  void save(std::ostream& out) const;
  static PredicateSpace load(std::istream& in);

 private:
  PredicateSpace() = default;
  /// Rebuilds SoA mirrors and CSR indexes from predicates_/num_features_.
  void build_indexes();

  std::vector<Predicate> predicates_;
  // Structure-of-arrays mirror of predicates_ for the vectorized
  // (gather/compare/movemask) binarization path.
  std::vector<std::int32_t> soa_features_;
  std::vector<float> soa_thresholds_;
  // CSR-style index: for each input feature, the contiguous range of its
  // predicate IDs (predicates are sorted by feature then threshold).
  std::vector<std::uint32_t> feature_offsets_;
  std::size_t num_features_ = 0;
  std::size_t used_features_ = 0;
};

}  // namespace bolt::forest
