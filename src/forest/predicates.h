// The split-predicate space: the set of distinct (feature, threshold) tests
// appearing anywhere in a trained forest.
//
// The paper models trees as binary: "nodes are features, and edges indicate
// boolean values associated with a feature and a threshold value" (§4).
// For numeric forests this is realized by treating every distinct split
// test `x[f] <= t` as one boolean predicate. An input sample is binarized
// once into a bit vector over this space; every Bolt structure (paths,
// dictionary masks, lookup addresses) then operates on predicate bits only.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "forest/tree.h"
#include "util/bits.h"
#include "util/vec_view.h"

namespace bolt::forest {

/// One boolean predicate: `x[feature] <= threshold`.
///
/// NaN contract: a NaN feature value fails every predicate — scalar
/// `x <= t` and the vector kernels' `_CMP_LE_OQ` (ordered, quiet) compare
/// both yield false for NaN operands, so a NaN input routes "right" at
/// every split, exactly as float tree traversal would. ±inf follow IEEE
/// ordering (-inf <= t is true, +inf <= t is false for finite t). Every
/// binarize path (row, subset, tile; scalar and SIMD) implements this
/// contract bit-identically; tests feed NaN/±inf through all of them.
struct Predicate {
  std::uint32_t feature;
  float threshold;

  friend bool operator==(const Predicate&, const Predicate&) = default;
};

/// Borrowed POD view of a PredicateSpace's SoA mirrors and CSR feature
/// index — the input contract of the binarize kernels (the kernel layer
/// cannot depend on PredicateSpace itself; engines hand it this view).
/// Invariants (maintained by PredicateSpace): predicates are sorted by
/// (feature, threshold) with dense IDs, so feature_offsets' CSR ranges
/// concatenate to exactly [0, num_predicates) in ID order.
struct PredicateSoA {
  const std::int32_t* features;          // num_predicates
  const float* thresholds;               // num_predicates
  const std::uint32_t* feature_offsets;  // num_features + 1 (CSR)
  std::size_t num_predicates;
  std::size_t num_features;
};

/// The scalar binarize oracle: bit p of `out_words` is set iff
/// x[features[p]] <= thresholds[p]. Fully defines words
/// [0, words_for_bits(num_predicates)); portable, branchless, and the
/// bit-identity reference every SIMD binarize kernel is swept against.
/// `x` must have at least `space.num_features` elements.
void binarize_row_scalar(const PredicateSoA& space, const float* x,
                         std::uint64_t* out_words);

/// Runtime dispatch seam for PredicateSpace::binarize. Defaults to the
/// scalar oracle; the kernel layer (bolt::kernels::select_kernel) installs
/// the selected SIMD implementation at startup, so every caller of
/// PredicateSpace::binarize — engines, planner, verifier, benches — gets
/// the vectorized path without a layering inversion (forest cannot link
/// against the kernel layer). nullptr restores the scalar oracle.
using BinarizeRowFn = void (*)(const PredicateSoA&, const float*,
                               std::uint64_t*);
void set_binarize_row_dispatch(BinarizeRowFn fn);

namespace detail {
extern std::atomic<BinarizeRowFn> binarize_row_dispatch;
}  // namespace detail

/// The deduplicated, ordered predicate space of a forest plus fast lookup
/// from tree nodes to predicate IDs.
class PredicateSpace {
 public:
  /// Scans every internal node of `forest` and assigns each distinct
  /// (feature, threshold) a dense predicate ID. Predicates are ordered by
  /// (feature, threshold), so all tests of one input feature are adjacent —
  /// this keeps binarization cache-friendly and lets thresholds of a
  /// feature be evaluated with one pass.
  explicit PredicateSpace(const Forest& forest);

  std::size_t size() const { return predicates_.size(); }
  const Predicate& predicate(std::size_t id) const { return predicates_[id]; }
  std::span<const Predicate> predicates() const { return predicates_; }

  /// Predicate ID of a (feature, threshold) pair; the pair must exist.
  std::uint32_t id_of(std::uint32_t feature, float threshold) const;

  /// Binarizes a sample: bit p is set iff x[f_p] <= t_p. This is the single
  /// O(|P|) pass each engine performs before any dictionary work. Routes
  /// through the registered binarize dispatch (the selected SIMD kernel
  /// when the kernel layer is linked; the scalar oracle otherwise) — all
  /// implementations are bit-identical, including the NaN contract above.
  void binarize(std::span<const float> x, util::BitVector& out) const;
  util::BitVector binarize(std::span<const float> x) const;

  /// The SoA/CSR view the binarize kernels consume; valid while the space
  /// is alive (borrows the mirrors rebuilt by build_indexes / mapped by
  /// from_views).
  PredicateSoA soa() const {
    return {soa_features_.data(), soa_thresholds_.data(),
            feature_offsets_.data(), predicates_.size(), num_features_};
  }

  /// Evaluates only the predicates in `positions` (ascending, deduplicated)
  /// into `out`. Used by the partitioned engine: a core whose dictionary
  /// partition touches a subset of the predicate space encodes only that
  /// subset (other bits of `out` are left untouched).
  void binarize_subset(std::span<const float> x,
                       std::span<const std::uint32_t> positions,
                       util::BitVector& out) const;

  /// Number of distinct input features that appear in any predicate.
  std::size_t num_used_features() const { return used_features_; }

  /// Binary (de)serialization; part of the Bolt artifact format.
  void save(std::ostream& out) const;
  static PredicateSpace load(std::istream& in);

  /// Reconstruction from a v2 artifact's predicate section, with load()'s
  /// validation. The predicates are copied and the SoA mirrors and CSR
  /// index re-derived (the fallback when an artifact lacks the derived
  /// sections; from_views is the zero-copy path).
  static PredicateSpace from_predicates(std::size_t num_features,
                                        std::span<const Predicate> predicates);

  /// The raw arrays as spans (the v2 pack writer serializes all four —
  /// including the derived SoA mirrors and CSR index — so from_views()
  /// can borrow them instead of re-deriving on every open).
  struct Views {
    std::span<const Predicate> predicates;
    std::span<const std::int32_t> soa_features;
    std::span<const float> soa_thresholds;
    std::span<const std::uint32_t> feature_offsets;
  };
  Views pools() const {
    return {predicates_, soa_features_, soa_thresholds_, feature_offsets_};
  }

  /// Construct over borrowed (mmap'd) arrays; zero copies, the spans must
  /// outlive the space. `deep_validate = false` (the trusted-artifact
  /// tier) runs only O(1)/O(num_features) consistency checks; true
  /// re-derives nothing but verifies every element of the mirrors and
  /// index against the predicate array.
  static PredicateSpace from_views(std::size_t num_features, const Views& v,
                                   bool deep_validate = true);

  /// Heap bytes owned by the arrays (0 when fully mapped).
  std::size_t owned_bytes() const {
    return predicates_.owned_bytes() + soa_features_.owned_bytes() +
           soa_thresholds_.owned_bytes() + feature_offsets_.owned_bytes();
  }

 private:
  PredicateSpace() = default;
  /// Rebuilds SoA mirrors and CSR indexes from predicates_/num_features_.
  void build_indexes();
  /// Recomputes used_features_ from the CSR index.
  void count_used_features();

  util::VecOrView<Predicate> predicates_;
  // Structure-of-arrays mirror of predicates_ for the vectorized
  // (gather/compare/movemask) binarization path.
  util::VecOrView<std::int32_t> soa_features_;
  util::VecOrView<float> soa_thresholds_;
  // CSR-style index: for each input feature, the contiguous range of its
  // predicate IDs (predicates are sorted by feature then threshold).
  util::VecOrView<std::uint32_t> feature_offsets_;
  std::size_t num_features_ = 0;
  std::size_t used_features_ = 0;
};

}  // namespace bolt::forest
