// Compact binary serialization for trained forests (save once, benchmark
// many times without retraining).
#pragma once

#include <iosfwd>
#include <string>

#include "forest/tree.h"

namespace bolt::forest {

/// Writes `forest` in a versioned little-endian binary format.
void save_forest(const Forest& forest, std::ostream& out);
void save_forest_file(const Forest& forest, const std::string& path);

/// Reads a forest written by save_forest; validates structure on load.
Forest load_forest(std::istream& in);
Forest load_forest_file(const std::string& path);

}  // namespace bolt::forest
