#include "forest/tree.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace bolt::forest {

int DecisionTree::predict(std::span<const float> x) const {
  std::int32_t node = 0;
  while (!nodes_[node].is_leaf()) {
    const TreeNode& n = nodes_[node];
    node = x[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes_[node].leaf_class;
}

std::size_t DecisionTree::height() const {
  if (nodes_.empty()) return 0;
  std::function<std::size_t(std::int32_t)> depth = [&](std::int32_t i) {
    const TreeNode& n = nodes_[i];
    if (n.is_leaf()) return std::size_t{0};
    return 1 + std::max(depth(n.left), depth(n.right));
  };
  return depth(0);
}

std::size_t DecisionTree::num_leaves() const {
  std::size_t c = 0;
  for (const TreeNode& n : nodes_) c += n.is_leaf() ? 1 : 0;
  return c;
}

void DecisionTree::check() const {
  if (nodes_.empty()) throw std::logic_error("tree: empty");
  std::vector<int> seen(nodes_.size(), 0);
  std::function<void(std::int32_t)> walk = [&](std::int32_t i) {
    if (i < 0 || static_cast<std::size_t>(i) >= nodes_.size()) {
      throw std::logic_error("tree: child index out of range");
    }
    if (seen[i]++) throw std::logic_error("tree: node reachable twice");
    const TreeNode& n = nodes_[i];
    if (n.is_leaf()) {
      if (n.leaf_class < 0) throw std::logic_error("tree: leaf without class");
      return;
    }
    if (n.feature < 0) throw std::logic_error("tree: negative feature");
    walk(n.left);
    walk(n.right);
  };
  walk(0);
}

std::vector<double> Forest::vote(std::span<const float> x) const {
  std::vector<double> votes(num_classes, 0.0);
  for (std::size_t t = 0; t < trees.size(); ++t) {
    votes[trees[t].predict(x)] += weights[t];
  }
  return votes;
}

int Forest::predict(std::span<const float> x) const {
  const auto votes = vote(x);
  return argmax_class(votes);
}

std::size_t Forest::total_leaves() const {
  std::size_t c = 0;
  for (const auto& t : trees) c += t.num_leaves();
  return c;
}

std::size_t Forest::max_height() const {
  std::size_t h = 0;
  for (const auto& t : trees) h = std::max(h, t.height());
  return h;
}

void Forest::check() const {
  if (trees.size() != weights.size()) {
    throw std::logic_error("forest: trees/weights size mismatch");
  }
  for (const auto& t : trees) {
    t.check();
    for (const TreeNode& n : t.nodes()) {
      if (!n.is_leaf() &&
          static_cast<std::size_t>(n.feature) >= num_features) {
        throw std::logic_error("forest: feature index out of range");
      }
      if (n.is_leaf() &&
          static_cast<std::size_t>(n.leaf_class) >= num_classes) {
        throw std::logic_error("forest: class index out of range");
      }
    }
  }
}

int argmax_class(std::span<const double> votes) {
  int best = 0;
  for (int c = 1; c < static_cast<int>(votes.size()); ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  return best;
}

}  // namespace bolt::forest
