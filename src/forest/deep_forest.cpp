#include "forest/deep_forest.h"

#include <cassert>

namespace bolt::forest {
namespace {

/// Normalized vote fractions of one forest for one sample.
std::vector<double> vote_fractions(const Forest& f, std::span<const float> x) {
  std::vector<double> v = f.vote(x);
  double total = 0.0;
  for (double c : v) total += c;
  if (total > 0) {
    for (double& c : v) c /= total;
  }
  return v;
}

}  // namespace

DeepForest DeepForest::train(const data::Dataset& ds,
                             const DeepForestConfig& cfg) {
  DeepForest df;
  df.num_classes_ = ds.num_classes();
  df.base_features_ = ds.num_features();

  // Features consumed by the layer currently being trained.
  data::Dataset current = ds;
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    std::vector<Forest> layer;
    TrainConfig fc = cfg.forest_cfg;
    for (std::size_t fi = 0; fi < cfg.forests_per_layer; ++fi) {
      fc.seed = cfg.forest_cfg.seed + l * 1000 + fi;
      layer.push_back(train_random_forest(current, fc));
    }

    const bool last = l + 1 == cfg.num_layers;
    if (!last) {
      // Build the augmented dataset for the next layer.
      const std::size_t aug =
          cfg.forests_per_layer * ds.num_classes();
      data::Dataset next(current.num_features() + aug, ds.num_classes());
      next.reserve(current.num_rows());
      std::vector<float> row;
      for (std::size_t i = 0; i < current.num_rows(); ++i) {
        const auto x = current.row(i);
        row.assign(x.begin(), x.end());
        for (const Forest& f : layer) {
          for (double v : vote_fractions(f, x)) {
            row.push_back(static_cast<float>(v));
          }
        }
        next.add_row(row, current.label(i));
      }
      current = std::move(next);
    }
    df.layers_.push_back(std::move(layer));
  }
  return df;
}

std::vector<float> DeepForest::augment(
    std::span<const float> x,
    std::span<const std::vector<double>> layer_votes) const {
  std::vector<float> out(x.begin(), x.end());
  for (const auto& votes : layer_votes) {
    double total = 0.0;
    for (double v : votes) total += v;
    for (double v : votes) {
      out.push_back(static_cast<float>(total > 0 ? v / total : 0.0));
    }
  }
  return out;
}

int DeepForest::predict(std::span<const float> x) const {
  std::vector<float> features(x.begin(), x.end());
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    std::vector<std::vector<double>> votes;
    votes.reserve(layers_[l].size());
    for (const Forest& f : layers_[l]) votes.push_back(f.vote(features));
    features = augment(features, votes);
  }
  // Final layer: sum votes across its forests.
  std::vector<double> total(num_classes_, 0.0);
  for (const Forest& f : layers_.back()) {
    const auto v = f.vote(features);
    for (std::size_t c = 0; c < total.size(); ++c) total[c] += v[c];
  }
  return argmax_class(total);
}

double DeepForest::accuracy(const data::Dataset& ds) const {
  if (ds.num_rows() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    if (predict(ds.row(i)) == ds.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ds.num_rows());
}

}  // namespace bolt::forest
