#include "forest/quantize.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/bits.h"

namespace bolt::forest {

FeatureQuantizer FeatureQuantizer::fit(const data::Dataset& ds) {
  FeatureQuantizer q;
  q.channels_.resize(ds.num_features());
  std::vector<float> lo(ds.num_features(), std::numeric_limits<float>::max());
  std::vector<float> hi(ds.num_features(), std::numeric_limits<float>::lowest());
  std::vector<bool> integral(ds.num_features(), true);
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    const auto row = ds.row(i);
    for (std::size_t f = 0; f < row.size(); ++f) {
      lo[f] = std::min(lo[f], row[f]);
      hi[f] = std::max(hi[f], row[f]);
      if (row[f] != std::floor(row[f])) integral[f] = false;
    }
  }
  for (std::size_t f = 0; f < ds.num_features(); ++f) {
    Channel& c = q.channels_[f];
    if (ds.num_rows() == 0 || hi[f] <= lo[f]) {
      c = {ds.num_rows() ? lo[f] : 0.0f, 0.0f};  // constant feature -> 0
      continue;
    }
    c.offset = lo[f];
    if (integral[f] && hi[f] - lo[f] <= 255.0f) {
      // Pure shift (the paper's [-90,90] -> [0,180] trick): lossless.
      c.scale = 1.0f;
    } else {
      c.scale = 255.0f / (hi[f] - lo[f]);
    }
  }
  return q;
}

float FeatureQuantizer::quantize_value(std::size_t feature, float x) const {
  const Channel& c = channels_[feature];
  const float v = std::round((x - c.offset) * c.scale);
  return std::clamp(v, 0.0f, 255.0f);
}

std::vector<float> FeatureQuantizer::apply_row(std::span<const float> x) const {
  std::vector<float> out(x.size());
  for (std::size_t f = 0; f < x.size(); ++f) {
    out[f] = quantize_value(f, x[f]);
  }
  return out;
}

data::Dataset FeatureQuantizer::apply(const data::Dataset& ds) const {
  data::Dataset out(ds.num_features(), ds.num_classes());
  out.feature_names() = ds.feature_names();
  out.reserve(ds.num_rows());
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    out.add_row(apply_row(ds.row(i)), ds.label(i));
  }
  return out;
}

unsigned FeatureQuantizer::value_bits_for(const Forest& forest) {
  float max_threshold = 0.0f;
  for (const auto& tree : forest.trees) {
    for (const auto& n : tree.nodes()) {
      if (!n.is_leaf()) {
        max_threshold = std::max(max_threshold, std::abs(n.threshold));
      }
    }
  }
  return util::bit_width_for(static_cast<std::uint64_t>(
      std::ceil(std::max(1.0f, max_threshold))));
}

QuantizedForest quantize_forest(const Forest& forest,
                                const FeatureQuantizer& quantizer,
                                const data::Dataset& reference) {
  QuantizedForest out;
  out.forest = forest;

  for (auto& tree : out.forest.trees) {
    for (auto& node : tree.nodes()) {
      if (node.is_leaf()) continue;
      // Quantized values of reference data on each side of the raw split.
      float left_max = std::numeric_limits<float>::lowest();
      float right_min = std::numeric_limits<float>::max();
      for (std::size_t i = 0; i < reference.num_rows(); ++i) {
        const float raw = reference.row(i)[node.feature];
        const float q = quantizer.quantize_value(node.feature, raw);
        if (raw <= node.threshold) {
          left_max = std::max(left_max, q);
        } else {
          right_min = std::min(right_min, q);
        }
      }
      if (left_max == std::numeric_limits<float>::lowest()) {
        // Nothing on the left in the reference: the most conservative
        // quantized threshold is just below the right side.
        left_max = right_min - 1.0f;
      }
      if (right_min == std::numeric_limits<float>::max()) {
        right_min = left_max + 1.0f;
      }
      if (left_max >= right_min) {
        // Quantization collapsed the boundary (resolution loss).
        out.exact = false;
        ++out.inexact_splits;
      }
      node.threshold = (left_max + right_min) / 2.0f;
    }
  }
  return out;
}

}  // namespace bolt::forest
