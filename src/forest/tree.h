// Decision tree and random-forest model types. These are the *trained
// model* representation (what Scikit-Learn hands to Bolt in the paper);
// inference engines build their own layouts from it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bolt::forest {

/// One node of a binary decision tree.
///
/// Internal nodes test `x[feature] <= threshold`; true goes to `left`,
/// false to `right` (the Scikit-Learn convention the paper trains with).
/// Leaves have feature == kLeaf and carry the predicted class.
struct TreeNode {
  static constexpr std::int32_t kLeaf = -1;

  std::int32_t feature = kLeaf;
  float threshold = 0.0f;
  std::int32_t left = -1;
  std::int32_t right = -1;
  std::int32_t leaf_class = -1;

  bool is_leaf() const { return feature == kLeaf; }
};

/// A trained binary decision tree stored as a flat node array (root at 0).
class DecisionTree {
 public:
  DecisionTree() = default;
  explicit DecisionTree(std::vector<TreeNode> nodes)
      : nodes_(std::move(nodes)) {}

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  std::vector<TreeNode>& nodes() { return nodes_; }
  bool empty() const { return nodes_.empty(); }

  /// Standard root-to-leaf traversal.
  int predict(std::span<const float> x) const;

  /// Height = number of edges on the longest root-to-leaf path.
  std::size_t height() const;
  std::size_t num_leaves() const;

  /// Validates structural invariants (tree-shaped, children in range,
  /// leaves have classes). Throws std::logic_error on violation.
  void check() const;

 private:
  std::vector<TreeNode> nodes_;
};

/// A weighted ensemble of decision trees over a shared feature space.
///
/// Plain random forests use weight 1.0 per tree (majority vote); boosted
/// ensembles (paper §5 "Bolt for Complex Forest Structures") carry their
/// stage weights here — Bolt simply attaches the weight to every path of
/// the tree.
struct Forest {
  std::size_t num_features = 0;
  std::size_t num_classes = 0;
  std::vector<DecisionTree> trees;
  std::vector<double> weights;  // same length as trees

  /// Weighted per-class vote totals for one sample.
  std::vector<double> vote(std::span<const float> x) const;

  /// argmax of vote() (ties broken toward the lower class index).
  int predict(std::span<const float> x) const;

  std::size_t total_leaves() const;
  std::size_t max_height() const;
  void check() const;
};

/// argmax helper shared by engines; ties break to the lowest index so every
/// engine and Bolt agree bit-for-bit on predictions.
int argmax_class(std::span<const double> votes);

}  // namespace bolt::forest
