#include "forest/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.h"

namespace bolt::forest {
namespace {

struct SplitResult {
  int feature = -1;
  float threshold = 0.0f;
  double gain = 0.0;
};

double gini(std::span<const std::size_t> counts, std::size_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

int majority(std::span<const std::size_t> counts) {
  int best = 0;
  for (int c = 1; c < static_cast<int>(counts.size()); ++c) {
    if (counts[c] > counts[best]) best = c;
  }
  return best;
}

class TreeBuilder {
 public:
  TreeBuilder(const data::Dataset& ds, const TrainConfig& cfg,
              std::uint64_t seed)
      : ds_(ds), cfg_(cfg), rng_(seed) {}

  DecisionTree build(std::span<const std::size_t> rows) {
    nodes_.clear();
    std::vector<std::size_t> work(rows.begin(), rows.end());
    grow(work, 0);
    return DecisionTree(std::move(nodes_));
  }

 private:
  /// Grows a subtree over `rows` at `depth`; returns its node index.
  std::int32_t grow(std::vector<std::size_t>& rows, std::size_t depth) {
    std::vector<std::size_t> counts(ds_.num_classes(), 0);
    for (std::size_t r : rows) ++counts[ds_.label(r)];

    const double impurity = gini(counts, rows.size());
    const bool stop = depth >= cfg_.max_height ||
                      rows.size() < cfg_.min_samples_split ||
                      impurity == 0.0;

    std::optional<SplitResult> split;
    if (!stop) split = find_split(rows, counts, impurity);

    const auto idx = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
    if (!split) {
      nodes_[idx].feature = TreeNode::kLeaf;
      nodes_[idx].leaf_class = majority(counts);
      return idx;
    }

    std::vector<std::size_t> left_rows, right_rows;
    left_rows.reserve(rows.size());
    right_rows.reserve(rows.size());
    for (std::size_t r : rows) {
      (ds_.row(r)[split->feature] <= split->threshold ? left_rows : right_rows)
          .push_back(r);
    }
    rows.clear();
    rows.shrink_to_fit();  // bound peak memory on deep recursions

    nodes_[idx].feature = split->feature;
    nodes_[idx].threshold = split->threshold;
    nodes_[idx].left = grow(left_rows, depth + 1);
    nodes_[idx].right = grow(right_rows, depth + 1);
    return idx;
  }

  std::optional<SplitResult> find_split(std::span<const std::size_t> rows,
                                        std::span<const std::size_t> counts,
                                        double parent_impurity) {
    const std::size_t nf = ds_.num_features();
    std::size_t k = cfg_.max_features;
    if (k == 0) {
      k = static_cast<std::size_t>(
          std::max(1.0, std::floor(std::sqrt(static_cast<double>(nf)))));
    }
    k = std::min(k, nf);

    // Sample k distinct candidate features.
    std::vector<std::uint32_t> features(nf);
    std::iota(features.begin(), features.end(), 0);
    for (std::size_t i = 0; i < k; ++i) {
      std::swap(features[i], features[i + rng_.below(nf - i)]);
    }

    SplitResult best;
    std::vector<std::pair<float, int>> vals;
    vals.reserve(rows.size());
    std::vector<std::size_t> left_counts(ds_.num_classes());
    for (std::size_t fi = 0; fi < k; ++fi) {
      const std::uint32_t f = features[fi];
      vals.clear();
      for (std::size_t r : rows) vals.emplace_back(ds_.row(r)[f], ds_.label(r));
      std::sort(vals.begin(), vals.end());
      if (vals.front().first == vals.back().first) continue;  // constant

      // Candidate cut positions: boundaries between distinct values,
      // optionally subsampled (max_thresholds) via strided selection.
      std::fill(left_counts.begin(), left_counts.end(), 0);
      std::size_t stride = 1;
      if (cfg_.max_thresholds > 0 && rows.size() > cfg_.max_thresholds) {
        stride = rows.size() / cfg_.max_thresholds;
      }
      std::size_t left_n = 0;
      for (std::size_t i = 0; i + 1 < vals.size(); ++i) {
        ++left_counts[vals[i].second];
        ++left_n;
        if (vals[i].first == vals[i + 1].first) continue;
        if (stride > 1 && (i % stride) != 0) continue;
        const std::size_t right_n = rows.size() - left_n;
        if (left_n < cfg_.min_samples_leaf || right_n < cfg_.min_samples_leaf) {
          continue;
        }
        double right_gini;
        {
          double sum_sq = 0.0;
          for (std::size_t c = 0; c < left_counts.size(); ++c) {
            const double rc = static_cast<double>(counts[c] - left_counts[c]) /
                              static_cast<double>(right_n);
            sum_sq += rc * rc;
          }
          right_gini = 1.0 - sum_sq;
        }
        const double left_gini = gini(left_counts, left_n);
        const double weighted =
            (static_cast<double>(left_n) * left_gini +
             static_cast<double>(right_n) * right_gini) /
            static_cast<double>(rows.size());
        const double gain = parent_impurity - weighted;
        if (gain > best.gain + 1e-12) {
          best.feature = static_cast<int>(f);
          // Midpoint threshold, as Scikit-Learn computes it.
          best.threshold = (vals[i].first + vals[i + 1].first) / 2.0f;
          best.gain = gain;
        }
      }
    }
    if (best.feature < 0) return std::nullopt;
    return best;
  }

  const data::Dataset& ds_;
  const TrainConfig& cfg_;
  util::Rng rng_;
  std::vector<TreeNode> nodes_;
};

}  // namespace

DecisionTree train_tree(const data::Dataset& ds,
                        std::span<const std::size_t> rows,
                        const TrainConfig& cfg, std::uint64_t tree_seed) {
  TreeBuilder builder(ds, cfg, tree_seed);
  return builder.build(rows);
}

Forest train_random_forest(const data::Dataset& ds, const TrainConfig& cfg) {
  Forest f;
  f.num_features = ds.num_features();
  f.num_classes = ds.num_classes();
  f.trees.reserve(cfg.num_trees);
  f.weights.assign(cfg.num_trees, 1.0);

  util::Rng rng(cfg.seed);
  std::vector<std::size_t> rows(ds.num_rows());
  for (std::size_t t = 0; t < cfg.num_trees; ++t) {
    if (cfg.bootstrap) {
      for (auto& r : rows) r = rng.below(ds.num_rows());
    } else {
      std::iota(rows.begin(), rows.end(), 0);
    }
    f.trees.push_back(train_tree(ds, rows, cfg, rng.next()));
  }
  f.check();
  return f;
}

double accuracy(const Forest& f, const data::Dataset& ds) {
  if (ds.num_rows() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.num_rows(); ++i) {
    if (f.predict(ds.row(i)) == ds.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ds.num_rows());
}

}  // namespace bolt::forest
