// CART trainer for decision trees and random forests. This is the repo's
// stand-in for Python Scikit-Learn training (the paper trains all forests
// with Scikit-Learn; Bolt never touches training, only the trained model).
#pragma once

#include <cstdint>
#include <optional>

#include "data/dataset.h"
#include "forest/tree.h"

namespace bolt::forest {

struct TrainConfig {
  /// Maximum tree height (edges root->leaf). The paper's "maximum height"
  /// knob (Figure 11(A) sweeps 4..10).
  std::size_t max_height = 4;
  /// Number of trees in the ensemble (Figure 11(B) sweeps 10..30).
  std::size_t num_trees = 10;
  /// Candidate features per split; 0 means floor(sqrt(num_features)),
  /// Scikit-Learn's default for classification.
  std::size_t max_features = 0;
  /// Nodes with fewer samples become leaves.
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Bootstrap-resample the training set per tree (standard RF behaviour).
  bool bootstrap = true;
  /// Cap on candidate thresholds scanned per feature per node (0 = all);
  /// keeps training tractable on wide data like the 1500-dim Yelp vectors.
  std::size_t max_thresholds = 32;
  std::uint64_t seed = 42;
};

/// Trains a single CART tree (Gini impurity) on `ds` using the row indices
/// in `rows`. Exposed for tests; forest training calls this per tree.
DecisionTree train_tree(const data::Dataset& ds,
                        std::span<const std::size_t> rows,
                        const TrainConfig& cfg, std::uint64_t tree_seed);

/// Trains a random forest: per-tree bootstrap + feature subsampling.
Forest train_random_forest(const data::Dataset& ds, const TrainConfig& cfg);

/// Classification accuracy of a forest on a dataset.
double accuracy(const Forest& f, const data::Dataset& ds);

}  // namespace bolt::forest
