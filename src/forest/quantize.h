// Feature quantization and normalization (paper §5).
//
// Bolt's compressed layouts reserve "only enough bits for feature values to
// represent the maximum value used in a split", and the paper normalizes
// awkward ranges into byte-friendly ones ("by shifting the scale from
// [-90, 90] to [0, 180], all of the information can be stored in one byte
// without losing prediction power"). This module implements that pipeline:
//   - fit a per-feature affine byte mapping q(x) = round((x - offset) * scale)
//     clamped to [0, 255] from a dataset;
//   - apply it to datasets/rows;
//   - requantize a trained forest's thresholds so that classification over
//     quantized inputs matches the original forest over raw inputs, with an
//     explicit exactness check against the fitting data.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "forest/tree.h"

namespace bolt::forest {

class FeatureQuantizer {
 public:
  struct Channel {
    float offset = 0.0f;
    float scale = 1.0f;  // quantized = clamp(round((x - offset) * scale))
  };

  /// Fits per-feature offsets/scales from the observed min/max. Integral
  /// features whose range already fits a byte get scale 1 (pure shift, the
  /// paper's latitude trick); constant features map to 0.
  static FeatureQuantizer fit(const data::Dataset& ds);

  std::size_t num_features() const { return channels_.size(); }
  const Channel& channel(std::size_t f) const { return channels_[f]; }

  float quantize_value(std::size_t feature, float x) const;
  std::vector<float> apply_row(std::span<const float> x) const;
  /// Quantizes every row; labels and metadata carry over.
  data::Dataset apply(const data::Dataset& ds) const;

  /// Bits needed to represent every quantized split threshold of `forest`
  /// — the §5 "largest value used in binary split" statistic that sizes
  /// dictionary value fields.
  static unsigned value_bits_for(const Forest& forest);

 private:
  std::vector<Channel> channels_;
};

struct QuantizedForest {
  Forest forest;  // thresholds in quantized space
  /// True iff, on the fitting dataset, every split separates the quantized
  /// values exactly as the raw split did — classification of quantized
  /// rows is then identical to the original forest on raw rows for every
  /// row of that dataset (and any input whose quantized values match one).
  bool exact = true;
  /// Splits whose left/right quantized ranges overlapped (resolution loss).
  std::size_t inexact_splits = 0;
};

/// Requantizes a trained forest: each split's new threshold is placed
/// midway between the largest quantized value on the raw split's left side
/// and the smallest on its right side, computed over `reference` (pass the
/// training set). See QuantizedForest::exact.
QuantizedForest quantize_forest(const Forest& forest,
                                const FeatureQuantizer& quantizer,
                                const data::Dataset& reference);

}  // namespace bolt::forest
