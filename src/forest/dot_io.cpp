#include "forest/dot_io.h"

#include <charconv>
#include <map>
#include <sstream>
#include <stdexcept>

namespace bolt::forest {
namespace {

void write_dot_body(const DecisionTree& tree, std::ostream& out) {
  // Full float precision so a parse round-trip reproduces thresholds
  // bit-for-bit (9 significant digits always suffice for binary32).
  out.precision(9);
  out << "digraph Tree {\n";
  out << "node [shape=box] ;\n";
  const auto& nodes = tree.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const TreeNode& n = nodes[i];
    if (n.is_leaf()) {
      out << i << " [label=\"class = " << n.leaf_class << "\"] ;\n";
    } else {
      out << i << " [label=\"X[" << n.feature << "] <= " << n.threshold
          << "\"] ;\n";
    }
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const TreeNode& n = nodes[i];
    if (n.is_leaf()) continue;
    out << i << " -> " << n.left << " [headlabel=\"True\"] ;\n";
    out << i << " -> " << n.right << " [headlabel=\"False\"] ;\n";
  }
  out << "}\n";
}

/// Pulls the quoted label out of a node statement; returns false if the
/// line is not a node statement.
bool extract_label(const std::string& line, long& id, std::string& label) {
  const std::size_t bracket = line.find('[');
  if (bracket == std::string::npos) return false;
  if (line.find("->") != std::string::npos) return false;
  const std::string head = line.substr(0, bracket);
  const auto first = head.find_first_not_of(" \t");
  if (first == std::string::npos) return false;
  const char* begin = head.data() + first;
  const char* end = head.data() + head.size();
  const auto res = std::from_chars(begin, end, id);
  if (res.ec != std::errc{}) return false;
  const std::size_t lpos = line.find("label=\"", bracket);
  if (lpos == std::string::npos) return false;
  const std::size_t start = lpos + 7;
  const std::size_t stop = line.find('"', start);
  if (stop == std::string::npos) return false;
  label = line.substr(start, stop - start);
  return true;
}

bool extract_edge(const std::string& line, long& from, long& to, bool& is_true_edge) {
  const std::size_t arrow = line.find("->");
  if (arrow == std::string::npos) return false;
  {
    const std::string head = line.substr(0, arrow);
    const auto first = head.find_first_not_of(" \t");
    if (first == std::string::npos) return false;
    if (std::from_chars(head.data() + first, head.data() + head.size(), from)
            .ec != std::errc{}) {
      return false;
    }
  }
  {
    std::size_t p = arrow + 2;
    while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) ++p;
    if (std::from_chars(line.data() + p, line.data() + line.size(), to).ec !=
        std::errc{}) {
      return false;
    }
  }
  is_true_edge = line.find("True") != std::string::npos;
  return true;
}

DecisionTree parse_one_digraph(std::istream& in) {
  // Maps original node IDs to parsed descriptions, then renumbers into a
  // dense array with the root (the node that is never a target) at 0.
  struct Parsed {
    bool leaf = false;
    int feature = -1;
    float threshold = 0.0f;
    int leaf_class = -1;
    long true_child = -1;
    long false_child = -1;
    int edges_seen = 0;
  };
  std::map<long, Parsed> parsed;
  std::map<long, bool> is_target;

  std::string line;
  bool in_graph = false;
  while (std::getline(in, line)) {
    if (!in_graph) {
      if (line.find("digraph") != std::string::npos) in_graph = true;
      continue;
    }
    if (line.find('}') != std::string::npos) break;

    long id = 0;
    std::string label;
    if (extract_label(line, id, label)) {
      Parsed& p = parsed[id];
      // Only the first label line matters; sklearn packs gini/samples/value
      // into the same label with \n separators, so look at the first chunk.
      const std::string first_line = label.substr(0, label.find("\\n"));
      if (first_line.rfind("class", 0) == 0) {
        p.leaf = true;
        const std::size_t eq = first_line.find('=');
        p.leaf_class = std::stoi(first_line.substr(eq + 1));
      } else if (first_line.rfind("X[", 0) == 0) {
        const std::size_t close = first_line.find(']');
        p.feature = std::stoi(first_line.substr(2, close - 2));
        const std::size_t le = first_line.find("<=");
        p.threshold = std::stof(first_line.substr(le + 2));
      } else {
        // sklearn may emit leaves labeled "gini = ...\nclass = y_k"; look
        // for a class chunk anywhere in the label.
        const std::size_t cpos = label.find("class");
        if (cpos != std::string::npos) {
          const std::size_t eq = label.find('=', cpos);
          p.leaf = true;
          // Accept "class = y_3" (sklearn class_names) or "class = 3".
          std::size_t digit = eq + 1;
          while (digit < label.size() && !isdigit(label[digit])) ++digit;
          p.leaf_class = std::stoi(label.substr(digit));
        } else {
          throw std::runtime_error("dot: unrecognized node label: " + label);
        }
      }
      continue;
    }

    long from = 0, to = 0;
    bool true_edge = false;
    if (extract_edge(line, from, to, true_edge)) {
      Parsed& p = parsed[from];
      is_target[to] = true;
      // sklearn only labels the first two edges (True/False headlabels) of
      // the root; later edges are unlabeled but ordered left-then-right.
      if (true_edge || p.edges_seen == 0) {
        p.true_child = to;
      } else {
        p.false_child = to;
      }
      if (!true_edge && p.edges_seen == 0 &&
          line.find("False") != std::string::npos) {
        p.true_child = -1;
        p.false_child = to;
      }
      ++p.edges_seen;
    }
  }
  if (parsed.empty()) throw std::runtime_error("dot: no nodes parsed");

  long root = -1;
  for (const auto& [id, p] : parsed) {
    if (!is_target.count(id)) {
      root = id;
      break;
    }
  }
  if (root < 0) throw std::runtime_error("dot: no root (cycle?)");

  std::vector<TreeNode> nodes;
  nodes.reserve(parsed.size());
  // Renumber via explicit DFS stack that patches parent links after
  // children are allocated.
  struct Frame {
    long orig;
    std::int32_t slot;
  };
  std::vector<Frame> stack;
  nodes.emplace_back();
  stack.push_back({root, 0});
  while (!stack.empty()) {
    const Frame fr = stack.back();
    stack.pop_back();
    const Parsed& p = parsed.at(fr.orig);
    TreeNode& n = nodes[fr.slot];
    if (p.leaf) {
      n.feature = TreeNode::kLeaf;
      n.leaf_class = p.leaf_class;
      continue;
    }
    if (p.true_child < 0 || p.false_child < 0) {
      throw std::runtime_error("dot: internal node missing a child");
    }
    n.feature = p.feature;
    n.threshold = p.threshold;
    const auto li = static_cast<std::int32_t>(nodes.size());
    nodes.emplace_back();
    const auto ri = static_cast<std::int32_t>(nodes.size());
    nodes.emplace_back();
    nodes[fr.slot].left = li;
    nodes[fr.slot].right = ri;
    stack.push_back({p.true_child, li});
    stack.push_back({p.false_child, ri});
  }
  DecisionTree tree(std::move(nodes));
  tree.check();
  return tree;
}

}  // namespace

void write_dot(const DecisionTree& tree, std::ostream& out) {
  write_dot_body(tree, out);
}

std::string to_dot(const DecisionTree& tree) {
  std::ostringstream ss;
  write_dot(tree, ss);
  return ss.str();
}

DecisionTree read_dot(std::istream& in) { return parse_one_digraph(in); }

DecisionTree parse_dot(const std::string& text) {
  std::istringstream ss(text);
  return read_dot(ss);
}

void write_forest_dot(const Forest& forest, std::ostream& out) {
  out << "// bolt-forest num_features=" << forest.num_features
      << " num_classes=" << forest.num_classes << " trees="
      << forest.trees.size() << "\n// weights=";
  for (std::size_t t = 0; t < forest.weights.size(); ++t) {
    if (t) out << ',';
    out << forest.weights[t];
  }
  out << "\n";
  for (const DecisionTree& t : forest.trees) {
    write_dot_body(t, out);
    out << "\n";
  }
}

Forest read_forest_dot(std::istream& in) {
  Forest f;
  std::string line;
  if (!std::getline(in, line) || line.rfind("// bolt-forest", 0) != 0) {
    throw std::runtime_error("dot: missing forest header");
  }
  std::size_t trees = 0;
  {
    std::istringstream ss(line.substr(15));
    std::string kv;
    while (ss >> kv) {
      const std::size_t eq = kv.find('=');
      const std::string key = kv.substr(0, eq);
      const std::string val = kv.substr(eq + 1);
      if (key == "num_features") f.num_features = std::stoul(val);
      if (key == "num_classes") f.num_classes = std::stoul(val);
      if (key == "trees") trees = std::stoul(val);
    }
  }
  if (!std::getline(in, line) || line.rfind("// weights=", 0) != 0) {
    throw std::runtime_error("dot: missing weights header");
  }
  {
    std::istringstream ss(line.substr(11));
    std::string w;
    while (std::getline(ss, w, ',')) f.weights.push_back(std::stod(w));
  }
  for (std::size_t t = 0; t < trees; ++t) {
    f.trees.push_back(parse_one_digraph(in));
  }
  if (f.weights.size() != f.trees.size()) {
    throw std::runtime_error("dot: weights/trees mismatch");
  }
  f.check();
  return f;
}

}  // namespace bolt::forest
