// Deep forests (gcForest-style cascades, Zhou & Feng 2017).
//
// The paper's Figure 15 evaluates two-layer deep forests: "the output of
// each layer is appended as a feature for subsequent layers" (§4.6). Each
// cascade layer holds one or more random forests; a layer's per-forest
// class-vote fractions are appended to the input features of the next
// layer. Bolt compresses each layer in isolation and runs the dictionaries
// sequentially (§5).
#pragma once

#include <vector>

#include "data/dataset.h"
#include "forest/trainer.h"
#include "forest/tree.h"

namespace bolt::forest {

struct DeepForestConfig {
  std::size_t num_layers = 2;
  std::size_t forests_per_layer = 1;
  TrainConfig forest_cfg;
};

/// A trained cascade. Layer l consumes the original features plus
/// (forests_per_layer * num_classes) augmented features from layer l-1.
class DeepForest {
 public:
  /// Trains layer by layer: each layer is fitted on the training data
  /// augmented with the previous layer's outputs.
  static DeepForest train(const data::Dataset& ds, const DeepForestConfig& cfg);

  std::size_t num_layers() const { return layers_.size(); }
  std::size_t num_classes() const { return num_classes_; }
  std::size_t base_features() const { return base_features_; }

  /// Forests of one layer (exposed so Bolt can compress each in isolation).
  const std::vector<Forest>& layer(std::size_t l) const { return layers_[l]; }

  /// Augments `x` with layer-l outputs: returns the feature vector that
  /// layer l+1 consumes. Exposed so any engine (Bolt or baseline) can drive
  /// the cascade with its own per-forest vote function.
  std::vector<float> augment(std::span<const float> x,
                             std::span<const std::vector<double>> layer_votes) const;

  /// Reference prediction via plain tree traversal at every layer.
  int predict(std::span<const float> x) const;

  /// Fraction of `ds` classified correctly.
  double accuracy(const data::Dataset& ds) const;

 private:
  std::vector<std::vector<Forest>> layers_;
  std::size_t num_classes_ = 0;
  std::size_t base_features_ = 0;
};

}  // namespace bolt::forest
