#include "forest/boosted.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.h"

namespace bolt::forest {

Forest train_boosted(const data::Dataset& ds, const BoostConfig& cfg) {
  Forest f;
  f.num_features = ds.num_features();
  f.num_classes = ds.num_classes();

  const std::size_t n = ds.num_rows();
  const double k = static_cast<double>(ds.num_classes());
  std::vector<double> sample_weight(n, 1.0 / static_cast<double>(n));

  TrainConfig tree_cfg;
  tree_cfg.max_height = cfg.max_height;
  tree_cfg.max_features = cfg.max_features;
  tree_cfg.max_thresholds = cfg.max_thresholds;

  util::Rng rng(cfg.seed);
  for (std::size_t round = 0; round < cfg.num_rounds; ++round) {
    // Weighted resampling stands in for weighted impurity: draw a bootstrap
    // sample proportional to current weights (a standard SAMME variant that
    // lets us reuse the unweighted CART trainer).
    std::vector<double> cumulative(n);
    std::partial_sum(sample_weight.begin(), sample_weight.end(),
                     cumulative.begin());
    const double total = cumulative.back();
    std::vector<std::size_t> rows(n);
    for (auto& r : rows) {
      const double u = rng.uniform() * total;
      r = static_cast<std::size_t>(
          std::lower_bound(cumulative.begin(), cumulative.end(), u) -
          cumulative.begin());
      if (r >= n) r = n - 1;
    }

    DecisionTree tree = train_tree(ds, rows, tree_cfg, rng.next());

    double err = 0.0;
    std::vector<bool> wrong(n);
    for (std::size_t i = 0; i < n; ++i) {
      wrong[i] = tree.predict(ds.row(i)) != ds.label(i);
      if (wrong[i]) err += sample_weight[i];
    }
    err = std::clamp(err, 1e-10, 1.0 - 1e-10);
    const double alpha = std::log((1.0 - err) / err) + std::log(k - 1.0);
    if (alpha <= 0.0) {
      // Weak learner no better than chance: stop boosting (standard SAMME
      // early exit); keep at least one tree.
      if (!f.trees.empty()) break;
    }

    f.trees.push_back(std::move(tree));
    f.weights.push_back(std::max(alpha, 1e-3));

    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (wrong[i]) sample_weight[i] *= std::exp(alpha);
      norm += sample_weight[i];
    }
    for (auto& w : sample_weight) w /= norm;
  }
  f.check();
  return f;
}

}  // namespace bolt::forest
