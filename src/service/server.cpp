#include "service/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "util/timer.h"

namespace bolt::service {
namespace {

int make_unix_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("service: socket: ") +
                             std::strerror(errno));
  }
  return fd;
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw std::runtime_error("service: socket path too long");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

InferenceServer::InferenceServer(
    std::string socket_path,
    std::function<std::unique_ptr<engines::Engine>()> factory,
    std::size_t workers)
    : InferenceServer(std::move(socket_path), std::move(factory),
                      ServerOptions{.workers = workers}) {}

InferenceServer::InferenceServer(
    std::string socket_path,
    std::function<std::unique_ptr<engines::Engine>()> factory,
    const ServerOptions& options)
    : socket_path_(std::move(socket_path)), factory_(std::move(factory)),
      options_(options) {
  // Metric objects exist even when recording is disabled so STATS always
  // answers with a well-formed (if all-zero) snapshot.
  engine_metrics_ = util::EngineMetrics::in(metrics_, "engine");
  requests_total_ = &metrics_.counter("service.requests");
  errors_total_ = &metrics_.counter("service.errors");
  malformed_total_ = &metrics_.counter("service.malformed_requests");
  stats_requests_total_ = &metrics_.counter("service.stats_requests");
  connections_total_ = &metrics_.counter("service.connections_total");
  active_connections_ = &metrics_.gauge("service.active_connections");
  request_latency_us_ = &metrics_.histogram("service.request_latency_us");
}

InferenceServer::~InferenceServer() { stop(); }

void InferenceServer::start() {
  listen_fd_ = make_unix_socket();
  ::unlink(socket_path_.c_str());
  sockaddr_un addr = make_addr(socket_path_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw std::runtime_error(std::string("service: bind: ") +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) < 0) {
    throw std::runtime_error(std::string("service: listen: ") +
                             std::strerror(errno));
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void InferenceServer::stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard lock(conn_mu_);
    conns.swap(connection_threads_);
    // Wake handlers blocked in read(): a handler owns its fd and closes it
    // on exit, so only shut the socket down here (never close it twice).
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : conns) t.join();
  {
    std::lock_guard lock(conn_mu_);
    connection_fds_.clear();
  }
  ::unlink(socket_path_.c_str());
}

void InferenceServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) return;
      if (errno == EINTR) continue;
      return;  // listening socket gone
    }
    std::lock_guard lock(conn_mu_);
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back(
        [this, fd] { handle_connection(fd); });
  }
}

void InferenceServer::handle_connection(int fd) {
  // One engine per connection: engines carry scratch buffers. All
  // connections share the registry-owned atomics, so STATS totals are
  // service-wide.
  std::unique_ptr<engines::Engine> engine = factory_();
  auto* bolt_engine = dynamic_cast<core::BoltEngine*>(engine.get());
  const bool record = options_.metrics;
  if (record) {
    engine->attach_metrics(&engine_metrics_);
    connections_total_->inc();
    active_connections_->add(1);
  }

  std::vector<std::uint8_t> frame, out;
  try {
    while (running_.load() && read_frame(fd, frame)) {
      if (frame_magic(frame) == kStatsRequestMagic) {
        // STATS op: scrape the registry. Not counted as an inference
        // request; totals therefore match classification ground truth.
        StatsRequest sreq;
        try {
          sreq = decode_stats_request(frame);
        } catch (const std::exception&) {
          if (record) malformed_total_->inc();
          throw;
        }
        if (record) stats_requests_total_->inc();
        const util::MetricsSnapshot snap = metrics_.snapshot();
        StatsResponse sresp;
        sresp.body =
            (sreq.flags & kStatsFlagJson) ? snap.to_json() : snap.to_text();
        out.clear();
        encode_stats_response(sresp, out);
        write_frame(fd, out);
        continue;
      }
      util::Timer request_timer;
      Request req;
      try {
        req = decode_request(frame);
      } catch (const std::exception&) {
        if (record) malformed_total_->inc();
        throw;  // undecodable peer: drop the connection
      }
      Response resp;
      if (req.features.size() != engine->num_features()) {
        // Arity mismatch: answer with an error class instead of letting a
        // malformed request reach the engine's hot path.
        resp.predicted_class = -1;
      } else if ((req.flags & kFlagExplain) && bolt_engine != nullptr) {
        core::Explanation explanation(
            bolt_engine->artifact().num_features());
        resp.predicted_class =
            bolt_engine->predict_explained(req.features, explanation);
        for (std::uint32_t f : explanation.top_k(10)) {
          if (explanation.scores()[f] <= 0.0) break;
          resp.salient.push_back({f, explanation.scores()[f]});
        }
      } else {
        resp.predicted_class =
            static_cast<std::int32_t>(engine->predict(req.features));
      }
      out.clear();
      encode_response(resp, out);
      // Account for the request *before* the response leaves: once a client
      // holds the response, a scrape (STATS or requests_served()) must
      // already include it. The latency histogram therefore covers
      // decode + inference + encode, not the final write syscall.
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      if (record) {
        requests_total_->inc();
        if (resp.predicted_class < 0) errors_total_->inc();
        request_latency_us_->record(request_timer.elapsed_us());
      }
      write_frame(fd, out);
    }
  } catch (const std::exception&) {
    // Malformed request or peer reset: drop the connection.
  }
  if (record) active_connections_->sub(1);
  {
    std::lock_guard lock(conn_mu_);
    std::erase(connection_fds_, fd);
  }
  ::close(fd);
}

InferenceClient::InferenceClient(const std::string& socket_path) {
  fd_ = make_unix_socket();
  sockaddr_un addr = make_addr(socket_path);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    throw std::runtime_error(std::string("service: connect: ") +
                             std::strerror(errno));
  }
}

InferenceClient::~InferenceClient() {
  if (fd_ >= 0) ::close(fd_);
}

Response InferenceClient::classify(std::span<const float> features,
                                   bool explain) {
  Request req;
  req.flags = explain ? kFlagExplain : 0;
  req.features.assign(features.begin(), features.end());
  buf_.clear();
  encode_request(req, buf_);
  write_frame(fd_, buf_);
  if (!read_frame(fd_, buf_)) {
    throw std::runtime_error("service: server closed connection");
  }
  return decode_response(buf_);
}

std::string InferenceClient::stats(bool json) {
  StatsRequest req;
  req.flags = json ? kStatsFlagJson : 0;
  buf_.clear();
  encode_stats_request(req, buf_);
  write_frame(fd_, buf_);
  if (!read_frame(fd_, buf_)) {
    throw std::runtime_error("service: server closed connection");
  }
  return decode_stats_response(buf_).body;
}

}  // namespace bolt::service
