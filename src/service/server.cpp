#include "service/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "bolt/kernels/kernels.h"
#include "service/unix_socket.h"
#include "util/build_info.h"
#include "util/cpu_features.h"
#include "util/timer.h"

namespace bolt::service {
namespace {

using detail::make_addr;
using detail::make_unix_socket;

/// Copies a trace's non-empty stages into a response's trace section.
void fill_trace_section(const util::TraceContext& trace,
                        std::uint64_t total_ns, Response& resp) {
  resp.traced = true;
  resp.trace_total_ns = total_ns;
  resp.trace.clear();
  for (std::size_t s = 0; s < util::kNumStages; ++s) {
    const util::StageTotals t = trace.stage(static_cast<util::Stage>(s));
    if (t.count == 0) continue;
    resp.trace.push_back({static_cast<std::uint8_t>(s), t.count, t.total_ns});
  }
}

/// Maps a scheduler verdict onto the wire's class-code convention.
std::int32_t class_code(const BatchScheduler::Result& r) {
  switch (r.status) {
    case BatchScheduler::Status::kOk:
      return r.predicted_class;
    case BatchScheduler::Status::kBusy:
    case BatchScheduler::Status::kShutdown:
      return kClassBusy;
    case BatchScheduler::Status::kExpired:
      return kClassExpired;
    case BatchScheduler::Status::kError:
      return kClassError;
  }
  return kClassError;
}

}  // namespace

InferenceServer::InferenceServer(
    std::string socket_path,
    std::function<std::unique_ptr<engines::Engine>()> factory,
    std::size_t workers)
    : InferenceServer(std::move(socket_path), std::move(factory), [&] {
        ServerOptions o;
        o.workers = workers;
        return o;
      }()) {}

InferenceServer::InferenceServer(
    std::string socket_path,
    std::function<std::unique_ptr<engines::Engine>()> factory,
    const ServerOptions& options)
    : socket_path_(std::move(socket_path)), factory_(std::move(factory)),
      options_(options) {
  // Metric objects exist even when recording is disabled so STATS always
  // answers with a well-formed (if all-zero) snapshot.
  engine_metrics_ = util::EngineMetrics::in(metrics_, "engine");
  requests_total_ = &metrics_.counter("service.requests");
  errors_total_ = &metrics_.counter("service.errors");
  malformed_total_ = &metrics_.counter("service.malformed_requests");
  stats_requests_total_ = &metrics_.counter("service.stats_requests");
  batch_requests_total_ = &metrics_.counter("service.batch_requests");
  connections_total_ = &metrics_.counter("service.connections_total");
  rejected_connections_ = &metrics_.counter("service.rejected_connections");
  idle_timeouts_ = &metrics_.counter("service.idle_timeouts");
  active_connections_ = &metrics_.gauge("service.active_connections");
  uptime_seconds_ = &metrics_.gauge("service.uptime_seconds");
  traced_requests_ = &metrics_.counter("service.traced_requests");
  slow_captured_ = &metrics_.counter("service.slow_captured");
  slow_op_requests_ = &metrics_.counter("service.slow_op_requests");
  request_latency_us_ = &metrics_.histogram("service.request_latency_us");
  batch_size_ = &metrics_.histogram(
      "service.batch_size", util::Histogram::exponential_bounds(1, 2.0, 14));
  slow_ring_ = std::make_unique<util::SlowRing>(
      options_.trace.slow_ring_capacity, options_.trace.slow_threshold_us);
  // Runtime dispatch facts beside the compile-time ones: which membership
  // kernel this process selected and what the CPU offers, so a scrape can
  // tell a scalar-fallback deployment from a vectorized one.
  auto build_labels = util::build_info_labels();
  build_labels.emplace_back("kernel", kernels::select_kernel().label);
  build_labels.emplace_back("cpu", util::cpu_features_summary());
  metrics_.set_build_info(std::move(build_labels));
}

InferenceServer::~InferenceServer() { stop(); }

void InferenceServer::start() {
  if (options_.scheduler.enabled && scheduler_ == nullptr) {
    scheduler_ = std::make_unique<BatchScheduler>(
        factory_, options_.scheduler, metrics_, options_.metrics);
    scheduler_->start();
  }
  listen_fd_ = make_unix_socket();
  ::unlink(socket_path_.c_str());
  sockaddr_un addr = make_addr(socket_path_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw std::runtime_error(std::string("service: bind: ") +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) < 0) {
    throw std::runtime_error(std::string("service: listen: ") +
                             std::strerror(errno));
  }
  running_.store(true);
  start_time_ = std::chrono::steady_clock::now();
  if (options_.metrics_port >= 0) {
    metrics_http_ = std::make_unique<MetricsHttpServer>(
        metrics_, static_cast<std::uint16_t>(options_.metrics_port),
        [this] { update_uptime(); });
    metrics_http_->start();
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void InferenceServer::update_uptime() {
  uptime_seconds_->set(std::chrono::duration_cast<std::chrono::seconds>(
                           std::chrono::steady_clock::now() - start_time_)
                           .count());
}

void InferenceServer::stop() {
  if (!running_.exchange(false)) return;
  if (metrics_http_) {
    metrics_http_->stop();
    metrics_http_.reset();
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain the scheduler first: handlers blocked on a completion future are
  // released with a real answer (and later submissions shed kShutdown), so
  // no handler can be parked on inference when we shut its socket down.
  if (scheduler_) scheduler_->stop();
  // Handlers are detached and self-reaping: wake any blocked in read() by
  // shutting their sockets down (a handler owns its fd and closes it on
  // exit — never close here), then wait for the live count to drain.
  std::unique_lock lock(conn_mu_);
  for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  conn_cv_.wait(lock, [this] { return active_handlers_ == 0; });
  connection_fds_.clear();
  lock.unlock();
  // Destroy only after every handler has exited (none can hold a pointer
  // to it past this line); start() rebuilds it for a restarted server.
  scheduler_.reset();
  ::unlink(socket_path_.c_str());
}

std::size_t InferenceServer::active_handler_count() const {
  std::lock_guard lock(conn_mu_);
  return active_handlers_;
}

void InferenceServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) return;
      if (errno == EINTR) continue;
      return;  // listening socket gone
    }
    {
      std::lock_guard lock(conn_mu_);
      // Explicit backpressure: beyond the cap, refuse instead of piling up
      // handler threads until OOM.
      if (options_.max_connections != 0 &&
          active_handlers_ >= options_.max_connections) {
        rejected_connections_->inc();
        ::close(fd);
        continue;
      }
      connection_fds_.push_back(fd);
      ++active_handlers_;
    }
    // Detached: the handler reaps itself on exit (finished threads never
    // accumulate); stop() waits on active_handlers_ via conn_cv_.
    std::thread([this, fd] { handle_connection(fd); }).detach();
  }
}

void InferenceServer::handle_connection(int fd) {
  if (options_.idle_timeout_ms > 0) {
    // Slow-loris defence: a peer that stops sending (before or mid-frame)
    // trips SO_RCVTIMEO, read_frame throws ReadTimeoutError, and the
    // handler exits — freeing its max_connections slot.
    timeval tv{};
    tv.tv_sec = options_.idle_timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(options_.idle_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  // One engine per connection: engines carry scratch buffers. All
  // connections share the registry-owned atomics, so STATS totals are
  // service-wide.
  std::unique_ptr<engines::Engine> engine = factory_();
  auto* bolt_engine = dynamic_cast<core::BoltEngine*>(engine.get());
  const bool record = options_.metrics;
  if (record) {
    engine->attach_metrics(&engine_metrics_);
    connections_total_->inc();
    active_connections_->add(1);
  }

  std::vector<std::uint8_t> frame, out;
  try {
    while (running_.load() && read_frame(fd, frame)) {
      if (frame_magic(frame) == kStatsRequestMagic) {
        // STATS op: scrape the registry. Not counted as an inference
        // request; totals therefore match classification ground truth.
        StatsRequest sreq;
        try {
          sreq = decode_stats_request(frame);
        } catch (const std::exception&) {
          if (record) malformed_total_->inc();
          throw;
        }
        if (record) stats_requests_total_->inc();
        update_uptime();
        const util::MetricsSnapshot snap = metrics_.snapshot();
        StatsResponse sresp;
        sresp.body =
            (sreq.flags & kStatsFlagJson) ? snap.to_json() : snap.to_text();
        out.clear();
        encode_stats_response(sresp, out);
        write_frame(fd, out);
        continue;
      }
      if (frame_magic(frame) == kSlowRequestMagic) {
        // SLOW op: dump the slow-request capture ring. Like STATS, not an
        // inference request.
        SlowRequest qreq;
        try {
          qreq = decode_slow_request(frame);
        } catch (const std::exception&) {
          if (record) malformed_total_->inc();
          throw;
        }
        if (record) slow_op_requests_->inc();
        SlowResponse sresp;
        sresp.body = (qreq.flags & kSlowFlagJson) ? slow_ring_->render_json()
                                                  : slow_ring_->render_text();
        out.clear();
        encode_slow_response(sresp, out);
        write_frame(fd, out);
        continue;
      }
      if (frame_magic(frame) == kBatchRequestMagic) {
        // BATCH op: N rows in, N classes out, classified by the engine's
        // amortized batch kernel. Counted as one request per row so the
        // service totals stay row-denominated.
        util::Timer batch_timer;
        BatchRequest breq;
        try {
          breq = decode_batch_request(frame);
        } catch (const std::exception&) {
          if (record) malformed_total_->inc();
          throw;
        }
        const std::int64_t batch_decode_ns = batch_timer.elapsed_ns();
        const std::size_t rows = breq.num_rows();
        BatchResponse bresp;
        bresp.classes.assign(rows, kClassError);
        const std::size_t arity = engine->num_features();
        // Sampled tracing: BATCH requests feed the slow ring (a large
        // batch is the canonical slow request) but carry no wire trace
        // section — the breakdown is retrieved post-hoc via SLOW.
        util::TraceContext batch_trace;
        util::TraceContext* btrace =
            sampler_.should_trace() ? &batch_trace : nullptr;
        if (btrace != nullptr) {
          btrace->add(util::Stage::kDecode, batch_decode_ns);
        }
        const std::uint64_t battr_before =
            btrace != nullptr ? btrace->attributed_ns() : 0;
        const std::int64_t binfer_start =
            btrace != nullptr ? util::TraceContext::now_ns() : 0;
        if (btrace != nullptr && !scheduler_) engine->attach_trace(btrace);
        if (breq.uniform_arity(arity)) {
          // Fast path: the flat feature buffer is already a contiguous
          // stride-`arity` matrix — zero copies to the kernel (or to the
          // scheduler, which borrows the rows until the tiles complete).
          if (scheduler_) {
            std::vector<BatchScheduler::Result> results(rows);
            scheduler_->classify_many(breq.features, rows, arity, results,
                                      btrace);
            for (std::size_t i = 0; i < rows; ++i) {
              bresp.classes[i] = class_code(results[i]);
            }
          } else {
            engine->predict_batch(breq.features, rows, arity, bresp.classes);
          }
        } else {
          // Mixed batch: arity-mismatched rows answer -1; the rest are
          // gathered into a contiguous matrix and batch-classified.
          std::vector<float> good;
          std::vector<std::size_t> good_idx;
          good.reserve(breq.features.size());
          for (std::size_t i = 0; i < rows; ++i) {
            const auto row = breq.row(i);
            if (row.size() != arity) continue;
            good.insert(good.end(), row.begin(), row.end());
            good_idx.push_back(i);
          }
          if (scheduler_) {
            std::vector<BatchScheduler::Result> results(good_idx.size());
            scheduler_->classify_many(good, good_idx.size(), arity, results,
                                      btrace);
            for (std::size_t k = 0; k < good_idx.size(); ++k) {
              bresp.classes[good_idx[k]] = class_code(results[k]);
            }
          } else {
            std::vector<int> good_out(good_idx.size());
            engine->predict_batch(good, good_idx.size(), arity, good_out);
            for (std::size_t k = 0; k < good_idx.size(); ++k) {
              bresp.classes[good_idx[k]] = good_out[k];
            }
          }
        }
        if (btrace != nullptr) {
          if (!scheduler_) engine->attach_trace(nullptr);
          const std::int64_t wall =
              util::TraceContext::now_ns() - binfer_start;
          const auto attributed = static_cast<std::int64_t>(
              btrace->attributed_ns() - battr_before);
          btrace->add(util::Stage::kDispatch, wall - attributed);
        }
        std::uint64_t batch_errors = 0;
        for (std::int32_t c : bresp.classes) batch_errors += c < 0;
        out.clear();
        const std::int64_t bencode_start =
            btrace != nullptr ? util::TraceContext::now_ns() : 0;
        encode_batch_response(bresp, out);
        if (btrace != nullptr) {
          btrace->add(util::Stage::kEncode,
                      util::TraceContext::now_ns() - bencode_start);
        }
        requests_served_.fetch_add(rows, std::memory_order_relaxed);
        if (record) {
          batch_requests_total_->inc();
          batch_size_->record(static_cast<double>(rows));
          requests_total_->inc(rows);
          errors_total_->inc(batch_errors);
          request_latency_us_->record(batch_timer.elapsed_us());
        }
        if (btrace != nullptr) {
          if (record) traced_requests_->inc();
          const bool captured = slow_ring_->maybe_capture(
              *btrace, batch_timer.elapsed_us(), "BATCH",
              static_cast<std::uint32_t>(rows));
          if (captured && record) slow_captured_->inc();
        }
        write_frame(fd, out);
        continue;
      }
      util::Timer request_timer;
      Request req;
      try {
        req = decode_request(frame);
      } catch (const std::exception&) {
        if (record) malformed_total_->inc();
        throw;  // undecodable peer: drop the connection
      }
      const std::int64_t decode_ns = request_timer.elapsed_ns();
      // Arm a trace when the client asked (kFlagTrace echoes the span
      // breakdown on the response) or the sampler fires (1-in-N, or every
      // request when a slow threshold is set). Untraced requests pay one
      // clock read (decode_ns) and the null tests below.
      const bool client_trace =
          util::kTracingCompiledIn && (req.flags & kFlagTrace) != 0;
      util::TraceContext trace_ctx;
      util::TraceContext* tctx =
          client_trace || sampler_.should_trace() ? &trace_ctx : nullptr;
      if (tctx != nullptr) tctx->add(util::Stage::kDecode, decode_ns);
      Response resp;
      const std::uint64_t attr_before =
          tctx != nullptr ? tctx->attributed_ns() : 0;
      const std::int64_t infer_start =
          tctx != nullptr ? util::TraceContext::now_ns() : 0;
      if (req.features.size() != engine->num_features()) {
        // Arity mismatch: answer with an error class instead of letting a
        // malformed request reach the engine's hot path.
        resp.predicted_class = kClassError;
      } else if (scheduler_ && (req.flags & kFlagExplain) == 0) {
        // Dynamic batching: park this handler on the completion slot while
        // the scheduler aggregates rows from every connection into one
        // amortized-kernel tile. Explanations stay on the per-row path.
        // The trace crosses the batch boundary with the request: the
        // worker records its queue wait and merges the tile's kernel
        // spans before the future is fulfilled.
        resp.predicted_class =
            class_code(scheduler_->classify(req.features, tctx));
      } else if ((req.flags & kFlagExplain) && bolt_engine != nullptr) {
        if (tctx != nullptr) engine->attach_trace(tctx);
        core::Explanation explanation(
            bolt_engine->artifact().num_features());
        resp.predicted_class =
            bolt_engine->predict_explained(req.features, explanation);
        for (std::uint32_t f : explanation.top_k(10)) {
          if (explanation.scores()[f] <= 0.0) break;
          resp.salient.push_back({f, explanation.scores()[f]});
        }
        if (tctx != nullptr) engine->attach_trace(nullptr);
      } else {
        if (tctx != nullptr) engine->attach_trace(tctx);
        resp.predicted_class =
            static_cast<std::int32_t>(engine->predict(req.features));
        if (tctx != nullptr) engine->attach_trace(nullptr);
      }
      if (tctx != nullptr) {
        // Dispatch is derived, not measured: inference-layer wall time
        // minus what the layers below attributed, so the breakdown sums
        // to the request latency instead of double-counting.
        const std::int64_t wall = util::TraceContext::now_ns() - infer_start;
        const auto attributed =
            static_cast<std::int64_t>(tctx->attributed_ns() - attr_before);
        tctx->add(util::Stage::kDispatch, wall - attributed);
      }
      out.clear();
      const std::int64_t encode_start =
          tctx != nullptr ? util::TraceContext::now_ns() : 0;
      encode_response(resp, out);
      if (tctx != nullptr) {
        tctx->add(util::Stage::kEncode,
                  util::TraceContext::now_ns() - encode_start);
      }
      if (client_trace && tctx != nullptr) {
        // The client asked for the breakdown: attach the trace section
        // and re-encode. The kEncode span was measured on the first
        // encode; the re-encode costs only traced requests.
        fill_trace_section(
            *tctx, static_cast<std::uint64_t>(request_timer.elapsed_ns()),
            resp);
        out.clear();
        encode_response(resp, out);
      }
      // Account for the request *before* the response leaves: once a client
      // holds the response, a scrape (STATS or requests_served()) must
      // already include it. The latency histogram therefore covers
      // decode + inference + encode, not the final write syscall.
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      if (record) {
        requests_total_->inc();
        if (resp.predicted_class < 0) errors_total_->inc();
        request_latency_us_->record(request_timer.elapsed_us());
      }
      if (tctx != nullptr) {
        if (record) traced_requests_->inc();
        const bool captured = slow_ring_->maybe_capture(
            *tctx, request_timer.elapsed_us(), "CLASSIFY", 1);
        if (captured && record) slow_captured_->inc();
      }
      write_frame(fd, out);
    }
  } catch (const ReadTimeoutError&) {
    // Idle-timeout reap: the peer held the connection without completing a
    // frame for idle_timeout_ms. Drop it and free the slot.
    if (record) idle_timeouts_->inc();
  } catch (const std::exception&) {
    // Malformed request or peer reset (e.g. EPIPE from write_frame when
    // the client vanished mid-response): drop the connection.
  }
  if (record) active_connections_->sub(1);
  {
    // Self-reap: remove and close the fd, then announce the exit. stop()
    // returns only after every handler has passed this point, so no fd or
    // detached thread outlives the server.
    std::lock_guard lock(conn_mu_);
    std::erase(connection_fds_, fd);
    ::close(fd);
    --active_handlers_;
    // Notify under the lock: stop() cannot pass its predicate re-check (and
    // destroy *this) until this handler has released the mutex, after which
    // the handler touches nothing of the server.
    conn_cv_.notify_all();
  }
}

}  // namespace bolt::service
