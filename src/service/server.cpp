#include "service/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "bolt/kernels/kernels.h"
#include "service/event_loop.h"
#include "service/net.h"
#include "service/unix_socket.h"
#include "util/build_info.h"
#include "util/cpu_features.h"
#include "util/timer.h"

namespace bolt::service {
namespace {

using detail::make_addr;
using detail::make_unix_socket;

/// Copies a trace's non-empty stages into a response's trace section.
void fill_trace_section(const util::TraceContext& trace,
                        std::uint64_t total_ns, Response& resp) {
  resp.traced = true;
  resp.trace_total_ns = total_ns;
  resp.trace.clear();
  for (std::size_t s = 0; s < util::kNumStages; ++s) {
    const util::StageTotals t = trace.stage(static_cast<util::Stage>(s));
    if (t.count == 0) continue;
    resp.trace.push_back({static_cast<std::uint8_t>(s), t.count, t.total_ns});
  }
}

/// Maps a scheduler verdict onto the wire's class-code convention.
std::int32_t class_code(const BatchScheduler::Result& r) {
  switch (r.status) {
    case BatchScheduler::Status::kOk:
      return r.predicted_class;
    case BatchScheduler::Status::kBusy:
    case BatchScheduler::Status::kShutdown:
      return kClassBusy;
    case BatchScheduler::Status::kExpired:
      return kClassExpired;
    case BatchScheduler::Status::kError:
      return kClassError;
  }
  return kClassError;
}

}  // namespace

InferenceServer::InferenceServer(
    std::string socket_path,
    std::function<std::unique_ptr<engines::Engine>()> factory,
    std::size_t workers)
    : InferenceServer(std::move(socket_path), std::move(factory), [&] {
        ServerOptions o;
        o.workers = workers;
        return o;
      }()) {}

InferenceServer::InferenceServer(
    std::string socket_path,
    std::function<std::unique_ptr<engines::Engine>()> factory,
    const ServerOptions& options)
    : socket_path_(std::move(socket_path)), factory_(std::move(factory)),
      options_(options) {
  // Metric objects exist even when recording is disabled so STATS always
  // answers with a well-formed (if all-zero) snapshot.
  engine_metrics_ = util::EngineMetrics::in(metrics_, "engine");
  requests_total_ = &metrics_.counter("service.requests");
  errors_total_ = &metrics_.counter("service.errors");
  malformed_total_ = &metrics_.counter("service.malformed_requests");
  stats_requests_total_ = &metrics_.counter("service.stats_requests");
  batch_requests_total_ = &metrics_.counter("service.batch_requests");
  connections_total_ = &metrics_.counter("service.connections_total");
  rejected_connections_ = &metrics_.counter("service.rejected_connections");
  accept_errors_ = &metrics_.counter("service.accept_errors");
  idle_timeouts_ = &metrics_.counter("service.idle_timeouts");
  active_connections_ = &metrics_.gauge("service.active_connections");
  uptime_seconds_ = &metrics_.gauge("service.uptime_seconds");
  traced_requests_ = &metrics_.counter("service.traced_requests");
  slow_captured_ = &metrics_.counter("service.slow_captured");
  slow_op_requests_ = &metrics_.counter("service.slow_op_requests");
  request_latency_us_ = &metrics_.histogram("service.request_latency_us");
  batch_size_ = &metrics_.histogram(
      "service.batch_size", util::Histogram::exponential_bounds(1, 2.0, 14));
  // Labeled series (one sample per label value; /metrics groups them
  // under one TYPE line). Requests are counted per frame, by wire op.
  requests_op_classify_ =
      &metrics_.counter("service.requests_by_op{op=classify}");
  requests_op_batch_ = &metrics_.counter("service.requests_by_op{op=batch}");
  requests_op_stats_ = &metrics_.counter("service.requests_by_op{op=stats}");
  requests_op_slow_ = &metrics_.counter("service.requests_by_op{op=slow}");
  connections_unix_ =
      &metrics_.counter("service.connections_by_transport{transport=unix}");
  connections_tcp_ =
      &metrics_.counter("service.connections_by_transport{transport=tcp}");
  model_generation_ = &metrics_.gauge("model.generation");
  slow_ring_ = std::make_unique<util::SlowRing>(
      options_.trace.slow_ring_capacity, options_.trace.slow_threshold_us);
  // Runtime dispatch facts beside the compile-time ones: which membership
  // kernel this process selected and what the CPU offers, so a scrape can
  // tell a scalar-fallback deployment from a vectorized one. `binarize`
  // names the backend producing predicate bits (same KernelOps table as
  // the scan, so today it always matches `kernel`'s family — the separate
  // label keeps scrapes stable if the two ever dispatch independently).
  auto build_labels = util::build_info_labels();
  build_labels.emplace_back("kernel", kernels::select_kernel().label);
  build_labels.emplace_back("binarize", kernels::select_kernel().name);
  build_labels.emplace_back("cpu", util::cpu_features_summary());
  for (const auto& [k, v] : options_.extra_build_labels) {
    build_labels.emplace_back(k, v);
  }
  metrics_.set_build_info(std::move(build_labels));
}

InferenceServer::~InferenceServer() {
  stop();
  if (spare_fd_ >= 0) ::close(spare_fd_);
}

void InferenceServer::close_listeners() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  if (tcp_listen_fd_ >= 0) ::close(tcp_listen_fd_);
  tcp_listen_fd_ = -1;
  tcp_port_ = -1;
}

void InferenceServer::start() {
  if (running_.load()) return;
  if (options_.scheduler.enabled && scheduler_ == nullptr) {
    scheduler_ = std::make_unique<BatchScheduler>(
        factory_, options_.scheduler, metrics_, options_.metrics);
    scheduler_->start();
  }
  const int backlog =
      options_.listen_backlog > 0 ? options_.listen_backlog : SOMAXCONN;
  bool bound_path = false;
  try {
    listen_fd_ = make_unix_socket();
    ::unlink(socket_path_.c_str());
    sockaddr_un addr = make_addr(socket_path_);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      throw std::runtime_error(std::string("service: bind: ") +
                               std::strerror(errno));
    }
    bound_path = true;
    if (::listen(listen_fd_, backlog) < 0) {
      throw std::runtime_error(std::string("service: listen: ") +
                               std::strerror(errno));
    }
    if (options_.tcp_port >= 0) {
      std::uint16_t bound = 0;
      tcp_listen_fd_ = detail::make_tcp_listener(
          static_cast<std::uint16_t>(options_.tcp_port), backlog, bound);
      tcp_port_ = bound;
    }
    if (options_.metrics_port >= 0) {
      AdminHooks hooks;
      hooks.before_scrape = [this] { update_uptime(); };
      // Readiness: the front end is accepting (running_ flips true after
      // this block, so a probe racing start() correctly sees 503) AND the
      // caller's extra condition (e.g. "a model is loaded").
      hooks.ready = [this] {
        return running_.load() && (!options_.ready || options_.ready());
      };
      hooks.timeline = [] {
        return util::Timeline::instance().drain_chrome_json();
      };
      metrics_http_ = std::make_unique<MetricsHttpServer>(
          metrics_, static_cast<std::uint16_t>(options_.metrics_port),
          std::move(hooks));
      metrics_http_->start();
    }
  } catch (...) {
    // A throwing start() must leave no trace: no leaked listen fds, no
    // stale bound socket path to shadow a later bind, and a scheduler that
    // a retried start() can rebuild.
    close_listeners();
    if (bound_path) ::unlink(socket_path_.c_str());
    metrics_http_.reset();
    if (scheduler_) {
      scheduler_->stop();
      scheduler_.reset();
    }
    throw;
  }
  if (spare_fd_ < 0) {
    spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  }
  // Process-global timeline: this server's knobs win (see ServerOptions).
  util::Timeline::instance().configure(options_.timeline);
  running_.store(true);
  start_time_ = std::chrono::steady_clock::now();
  update_uptime();  // model.generation is live from the first STATS/scrape
  if (options_.front_end == FrontEnd::kEventLoop) {
    event_loop_ = std::make_unique<EventLoop>(*this);
    try {
      event_loop_->start();
    } catch (...) {
      event_loop_.reset();
      running_.store(false);
      close_listeners();
      ::unlink(socket_path_.c_str());
      if (metrics_http_) {
        metrics_http_->stop();
        metrics_http_.reset();
      }
      throw;
    }
  } else {
    accept_threads_.emplace_back(
        [this] { accept_loop(listen_fd_, /*tcp=*/false); });
    if (tcp_listen_fd_ >= 0) {
      accept_threads_.emplace_back(
          [this] { accept_loop(tcp_listen_fd_, /*tcp=*/true); });
    }
  }
}

void InferenceServer::update_uptime() {
  uptime_seconds_->set(std::chrono::duration_cast<std::chrono::seconds>(
                           std::chrono::steady_clock::now() - start_time_)
                           .count());
  if (options_.model_generation) {
    model_generation_->set(
        static_cast<std::int64_t>(options_.model_generation()));
  }
}

void InferenceServer::stop() {
  if (!running_.exchange(false)) return;
  if (metrics_http_) {
    metrics_http_->stop();
    metrics_http_.reset();
  }
  if (event_loop_) {
    // Scheduler first: its drain fulfils every async completion, the loop
    // writes those responses out, then the loop itself quiesces. The event
    // loop owns (and closes) the listener and connection fds.
    if (scheduler_) scheduler_->stop();
    event_loop_->stop();
    event_loop_.reset();
    listen_fd_ = -1;
    tcp_listen_fd_ = -1;
    tcp_port_ = -1;
  } else {
    // Wake the accept threads (shutdown makes a blocked accept() return)
    // but close the fds only after the join: close() concurrent with
    // accept() races the fd number being reused by a handler's socket.
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (tcp_listen_fd_ >= 0) ::shutdown(tcp_listen_fd_, SHUT_RDWR);
    for (auto& t : accept_threads_) t.join();
    accept_threads_.clear();
    close_listeners();
    // Drain the scheduler first: handlers blocked on a completion future
    // are released with a real answer (and later submissions shed
    // kShutdown), so no handler can be parked on inference when we shut
    // its socket down.
    if (scheduler_) scheduler_->stop();
    // Handlers are detached and self-reaping: wake any blocked in read()
    // by shutting their sockets down (a handler owns its fd and closes it
    // on exit — never close here), then wait for the live count to drain.
    std::unique_lock lock(conn_mu_);
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    conn_cv_.wait(lock, [this] { return active_handlers_ == 0; });
    connection_fds_.clear();
    lock.unlock();
  }
  // Destroy only after every handler has exited (none can hold a pointer
  // to it past this line); start() rebuilds it for a restarted server.
  scheduler_.reset();
  ::unlink(socket_path_.c_str());
}

std::size_t InferenceServer::active_handler_count() const {
  if (event_loop_) return event_loop_->connection_count();
  std::lock_guard lock(conn_mu_);
  return active_handlers_;
}

void InferenceServer::shed_pending_connection(int listen_fd) {
  std::lock_guard lock(spare_mu_);
  if (spare_fd_ < 0) return;
  // Only shed when a connection is actually queued: a blocking accept here
  // would park holding both the mutex and the released spare slot, and eat
  // the first healthy connection that arrives after the pressure clears.
  pollfd pending{listen_fd, POLLIN, 0};
  if (::poll(&pending, 1, 0) <= 0 || (pending.revents & POLLIN) == 0) {
    return;
  }
  ::close(spare_fd_);
  spare_fd_ = -1;
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd >= 0) ::close(fd);
  spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
}

void InferenceServer::accept_loop(int listen_fd, bool tcp) {
  std::uint32_t backoff_ms = 1;
  while (running_.load()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;
      if (!running_.load()) return;
      if (err == EINTR || err == EAGAIN || err == EWOULDBLOCK) continue;
      if (err == ECONNABORTED || err == EPROTO) {
        // The peer gave up between connect and accept — its problem, not
        // the listener's. Count it and take the next one.
        if (options_.metrics) accept_errors_->inc();
        continue;
      }
      if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
          err == ENOMEM) {
        // Resource exhaustion is transient: shed the pending connection
        // via the emergency spare fd so the peer sees EOF (not a hang),
        // then back off — retrying hot cannot free fds.
        if (options_.metrics) accept_errors_->inc();
        shed_pending_connection(listen_fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min<std::uint32_t>(backoff_ms * 2, 100);
        continue;
      }
      return;  // listening socket gone
    }
    backoff_ms = 1;
    if (tcp) detail::set_tcp_nodelay(fd);
    if (options_.metrics) {
      (tcp ? connections_tcp_ : connections_unix_)->inc();
    }
    {
      std::lock_guard lock(conn_mu_);
      // Re-check under the lock: a connection that won the race against
      // stop() flipping running_ must not spawn a handler the drain wait
      // in stop() (which holds this mutex) would never cover.
      if (!running_.load()) {
        ::close(fd);
        return;
      }
      // Explicit backpressure: beyond the cap, refuse instead of piling up
      // handler threads until OOM.
      if (options_.max_connections != 0 &&
          active_handlers_ >= options_.max_connections) {
        rejected_connections_->inc();
        ::close(fd);
        continue;
      }
      connection_fds_.push_back(fd);
      ++active_handlers_;
    }
    // Detached: the handler reaps itself on exit (finished threads never
    // accumulate); stop() waits on active_handlers_ via conn_cv_.
    std::thread([this, fd] { handle_connection(fd); }).detach();
  }
}

void InferenceServer::finish_classify(Response& resp,
                                      util::TraceContext* tctx,
                                      bool client_trace,
                                      const ClassifyTiming& timing,
                                      std::vector<std::uint8_t>& out) {
  const bool record = options_.metrics;
  if (tctx != nullptr) {
    // Dispatch is derived, not measured: inference-layer wall time minus
    // what the layers below attributed, so the breakdown sums to the
    // request latency instead of double-counting.
    const std::int64_t wall =
        util::TraceContext::now_ns() - timing.infer_start_ns;
    const auto attributed = static_cast<std::int64_t>(tctx->attributed_ns() -
                                                      timing.attr_before);
    tctx->add(util::Stage::kDispatch, wall - attributed);
  }
  out.clear();
  const std::int64_t encode_start =
      tctx != nullptr ? util::TraceContext::now_ns() : 0;
  encode_response(resp, out);
  if (tctx != nullptr) {
    tctx->add(util::Stage::kEncode,
              util::TraceContext::now_ns() - encode_start);
  }
  const std::int64_t total_ns =
      util::TraceContext::now_ns() - timing.request_start_ns;
  if (client_trace && tctx != nullptr) {
    // The client asked for the breakdown: attach the trace section and
    // re-encode. The kEncode span was measured on the first encode; the
    // re-encode costs only traced requests.
    fill_trace_section(*tctx, static_cast<std::uint64_t>(total_ns), resp);
    out.clear();
    encode_response(resp, out);
  }
  // Account for the request *before* the response leaves: once a client
  // holds the response, a scrape (STATS or requests_served()) must
  // already include it. The latency histogram therefore covers
  // decode + inference + encode, not the final write syscall.
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (record) {
    requests_total_->inc();
    requests_op_classify_->inc();
    if (resp.predicted_class < 0) errors_total_->inc();
    request_latency_us_->record(static_cast<double>(total_ns) / 1000.0);
  }
  if (tctx != nullptr) {
    if (tctx->timeline_armed()) {
      util::timeline_record("service", "classify", timing.request_start_ns,
                            total_ns);
    }
    if (record) traced_requests_->inc();
    const bool captured = slow_ring_->maybe_capture(
        *tctx, static_cast<double>(total_ns) / 1000.0, "CLASSIFY", 1);
    if (captured && record) slow_captured_->inc();
  }
}

void InferenceServer::finish_batch(BatchResponse& bresp,
                                   util::TraceContext* btrace,
                                   const ClassifyTiming& timing,
                                   std::size_t rows,
                                   std::vector<std::uint8_t>& out) {
  const bool record = options_.metrics;
  if (btrace != nullptr) {
    const std::int64_t wall =
        util::TraceContext::now_ns() - timing.infer_start_ns;
    const auto attributed = static_cast<std::int64_t>(
        btrace->attributed_ns() - timing.attr_before);
    btrace->add(util::Stage::kDispatch, wall - attributed);
  }
  std::uint64_t batch_errors = 0;
  for (std::int32_t c : bresp.classes) batch_errors += c < 0;
  out.clear();
  const std::int64_t bencode_start =
      btrace != nullptr ? util::TraceContext::now_ns() : 0;
  encode_batch_response(bresp, out);
  if (btrace != nullptr) {
    btrace->add(util::Stage::kEncode,
                util::TraceContext::now_ns() - bencode_start);
  }
  const std::int64_t total_ns =
      util::TraceContext::now_ns() - timing.request_start_ns;
  requests_served_.fetch_add(rows, std::memory_order_relaxed);
  if (record) {
    batch_requests_total_->inc();
    requests_op_batch_->inc();
    batch_size_->record(static_cast<double>(rows));
    requests_total_->inc(rows);
    errors_total_->inc(batch_errors);
    request_latency_us_->record(static_cast<double>(total_ns) / 1000.0);
  }
  if (btrace != nullptr) {
    if (btrace->timeline_armed()) {
      util::timeline_record("service", "batch", timing.request_start_ns,
                            total_ns, "rows", rows);
    }
    if (record) traced_requests_->inc();
    const bool captured = slow_ring_->maybe_capture(
        *btrace, static_cast<double>(total_ns) / 1000.0, "BATCH",
        static_cast<std::uint32_t>(rows));
    if (captured && record) slow_captured_->inc();
  }
}

void InferenceServer::process_frame(std::span<const std::uint8_t> frame,
                                    engines::Engine& engine,
                                    core::BoltEngine* bolt_engine,
                                    std::vector<std::uint8_t>& out) {
  const bool record = options_.metrics;
  if (frame_magic(frame) == kStatsRequestMagic) {
    // STATS op: scrape the registry. Not counted as an inference request;
    // totals therefore match classification ground truth.
    StatsRequest sreq;
    try {
      sreq = decode_stats_request(frame);
    } catch (const std::exception&) {
      if (record) malformed_total_->inc();
      throw;
    }
    if (record) {
      stats_requests_total_->inc();
      requests_op_stats_->inc();
    }
    update_uptime();
    const util::MetricsSnapshot snap = metrics_.snapshot();
    StatsResponse sresp;
    sresp.body =
        (sreq.flags & kStatsFlagJson) ? snap.to_json() : snap.to_text();
    out.clear();
    encode_stats_response(sresp, out);
    return;
  }
  if (frame_magic(frame) == kSlowRequestMagic) {
    // SLOW op: dump the slow-request capture ring. Like STATS, not an
    // inference request.
    SlowRequest qreq;
    try {
      qreq = decode_slow_request(frame);
    } catch (const std::exception&) {
      if (record) malformed_total_->inc();
      throw;
    }
    if (record) {
      slow_op_requests_->inc();
      requests_op_slow_->inc();
    }
    SlowResponse sresp;
    sresp.body = (qreq.flags & kSlowFlagJson) ? slow_ring_->render_json()
                                              : slow_ring_->render_text();
    out.clear();
    encode_slow_response(sresp, out);
    return;
  }
  if (frame_magic(frame) == kBatchRequestMagic) {
    // BATCH op: N rows in, N classes out, classified by the engine's
    // amortized batch kernel. Counted as one request per row so the
    // service totals stay row-denominated.
    ClassifyTiming timing;
    timing.request_start_ns = util::TraceContext::now_ns();
    BatchRequest breq;
    try {
      breq = decode_batch_request(frame);
    } catch (const std::exception&) {
      if (record) malformed_total_->inc();
      throw;
    }
    const std::int64_t batch_decode_ns =
        util::TraceContext::now_ns() - timing.request_start_ns;
    const std::size_t rows = breq.num_rows();
    BatchResponse bresp;
    bresp.classes.assign(rows, kClassError);
    const std::size_t arity = engine.num_features();
    // Sampled tracing: BATCH requests feed the slow ring (a large batch is
    // the canonical slow request) but carry no wire trace section — the
    // breakdown is retrieved post-hoc via SLOW.
    util::TraceContext batch_trace;
    const bool batch_tl = util::Timeline::instance().sample();
    util::TraceContext* btrace =
        sampler_.should_trace() || batch_tl ? &batch_trace : nullptr;
    if (batch_tl) batch_trace.set_timeline(true);
    if (btrace != nullptr) {
      btrace->add(util::Stage::kDecode, batch_decode_ns);
    }
    timing.attr_before = btrace != nullptr ? btrace->attributed_ns() : 0;
    timing.infer_start_ns =
        btrace != nullptr ? util::TraceContext::now_ns() : 0;
    if (btrace != nullptr && !scheduler_) engine.attach_trace(btrace);
    if (breq.uniform_arity(arity)) {
      // Fast path: the flat feature buffer is already a contiguous
      // stride-`arity` matrix — zero copies to the kernel (or to the
      // scheduler, which borrows the rows until the tiles complete).
      if (scheduler_) {
        std::vector<BatchScheduler::Result> results(rows);
        scheduler_->classify_many(breq.features, rows, arity, results,
                                  btrace);
        for (std::size_t i = 0; i < rows; ++i) {
          bresp.classes[i] = class_code(results[i]);
        }
      } else {
        engine.predict_batch(breq.features, rows, arity, bresp.classes);
      }
    } else {
      // Mixed batch: arity-mismatched rows answer -1; the rest are
      // gathered into a contiguous matrix and batch-classified.
      std::vector<float> good;
      std::vector<std::size_t> good_idx;
      good.reserve(breq.features.size());
      for (std::size_t i = 0; i < rows; ++i) {
        const auto row = breq.row(i);
        if (row.size() != arity) continue;
        good.insert(good.end(), row.begin(), row.end());
        good_idx.push_back(i);
      }
      if (scheduler_) {
        std::vector<BatchScheduler::Result> results(good_idx.size());
        scheduler_->classify_many(good, good_idx.size(), arity, results,
                                  btrace);
        for (std::size_t k = 0; k < good_idx.size(); ++k) {
          bresp.classes[good_idx[k]] = class_code(results[k]);
        }
      } else {
        std::vector<int> good_out(good_idx.size());
        engine.predict_batch(good, good_idx.size(), arity, good_out);
        for (std::size_t k = 0; k < good_idx.size(); ++k) {
          bresp.classes[good_idx[k]] = good_out[k];
        }
      }
    }
    if (btrace != nullptr && !scheduler_) engine.attach_trace(nullptr);
    finish_batch(bresp, btrace, timing, rows, out);
    return;
  }
  ClassifyTiming timing;
  timing.request_start_ns = util::TraceContext::now_ns();
  Request req;
  try {
    req = decode_request(frame);
  } catch (const std::exception&) {
    if (record) malformed_total_->inc();
    throw;  // undecodable peer: drop the connection
  }
  const std::int64_t decode_ns =
      util::TraceContext::now_ns() - timing.request_start_ns;
  // Arm a trace when the client asked (kFlagTrace echoes the span
  // breakdown on the response) or the sampler fires (1-in-N, or every
  // request when a slow threshold is set). Untraced requests pay one
  // clock read (decode_ns) and the null tests below.
  const bool client_trace =
      util::kTracingCompiledIn && (req.flags & kFlagTrace) != 0;
  util::TraceContext trace_ctx;
  const bool tl_sample = util::Timeline::instance().sample();
  util::TraceContext* tctx =
      client_trace || sampler_.should_trace() || tl_sample ? &trace_ctx
                                                           : nullptr;
  if (tl_sample) trace_ctx.set_timeline(true);
  if (tctx != nullptr) tctx->add(util::Stage::kDecode, decode_ns);
  Response resp;
  timing.attr_before = tctx != nullptr ? tctx->attributed_ns() : 0;
  timing.infer_start_ns =
      tctx != nullptr ? util::TraceContext::now_ns() : 0;
  if (req.features.size() != engine.num_features()) {
    // Arity mismatch: answer with an error class instead of letting a
    // malformed request reach the engine's hot path.
    resp.predicted_class = kClassError;
  } else if (scheduler_ && (req.flags & kFlagExplain) == 0) {
    // Dynamic batching: park this handler on the completion slot while
    // the scheduler aggregates rows from every connection into one
    // amortized-kernel tile. Explanations stay on the per-row path.
    // The trace crosses the batch boundary with the request: the worker
    // records its queue wait and merges the tile's kernel spans before
    // the future is fulfilled.
    resp.predicted_class = class_code(scheduler_->classify(req.features, tctx));
  } else if ((req.flags & kFlagExplain) && bolt_engine != nullptr) {
    if (tctx != nullptr) engine.attach_trace(tctx);
    core::Explanation explanation(bolt_engine->artifact().num_features());
    resp.predicted_class =
        bolt_engine->predict_explained(req.features, explanation);
    for (std::uint32_t f : explanation.top_k(10)) {
      if (explanation.scores()[f] <= 0.0) break;
      resp.salient.push_back({f, explanation.scores()[f]});
    }
    if (tctx != nullptr) engine.attach_trace(nullptr);
  } else {
    if (tctx != nullptr) engine.attach_trace(tctx);
    resp.predicted_class =
        static_cast<std::int32_t>(engine.predict(req.features));
    if (tctx != nullptr) engine.attach_trace(nullptr);
  }
  finish_classify(resp, tctx, client_trace, timing, out);
}

void InferenceServer::process_frame_async(
    std::span<const std::uint8_t> frame, engines::Engine& engine,
    core::BoltEngine* bolt_engine, FrameSink done) {
  const bool record = options_.metrics;
  const std::uint32_t magic = frame_magic(frame);
  if (scheduler_ && magic == kRequestMagic) {
    // In-flight record: owns the decoded request (the scheduler borrows
    // its feature span) and the trace until the completion fires on a
    // scheduler worker thread.
    struct Flight {
      Request req;
      util::TraceContext trace;
      util::TraceContext* tctx = nullptr;
      bool client_trace = false;
      ClassifyTiming timing;
    };
    auto fl = std::make_shared<Flight>();
    fl->timing.request_start_ns = util::TraceContext::now_ns();
    try {
      fl->req = decode_request(frame);
    } catch (const std::exception&) {
      if (record) malformed_total_->inc();
      done({}, /*drop=*/true);
      return;
    }
    if ((fl->req.flags & kFlagExplain) == 0) {
      const std::int64_t decode_ns =
          util::TraceContext::now_ns() - fl->timing.request_start_ns;
      fl->client_trace =
          util::kTracingCompiledIn && (fl->req.flags & kFlagTrace) != 0;
      const bool fl_tl = util::Timeline::instance().sample();
      fl->tctx = fl->client_trace || sampler_.should_trace() || fl_tl
                     ? &fl->trace
                     : nullptr;
      if (fl_tl) fl->trace.set_timeline(true);
      if (fl->tctx != nullptr) fl->tctx->add(util::Stage::kDecode, decode_ns);
      fl->timing.attr_before =
          fl->tctx != nullptr ? fl->tctx->attributed_ns() : 0;
      fl->timing.infer_start_ns =
          fl->tctx != nullptr ? util::TraceContext::now_ns() : 0;
      if (fl->req.features.size() != engine.num_features()) {
        Response resp;
        resp.predicted_class = kClassError;
        std::vector<std::uint8_t> out;
        finish_classify(resp, fl->tctx, fl->client_trace, fl->timing, out);
        done(std::move(out), false);
        return;
      }
      scheduler_->classify_async(
          fl->req.features, fl->tctx,
          [this, fl, done = std::move(done)](BatchScheduler::Result r) {
            Response resp;
            resp.predicted_class = class_code(r);
            std::vector<std::uint8_t> out;
            finish_classify(resp, fl->tctx, fl->client_trace, fl->timing,
                            out);
            done(std::move(out), false);
          });
      return;
    }
    // Explain requests bypass the scheduler; fall through to the
    // synchronous path below (the redundant re-decode only costs
    // explanation traffic).
  }
  if (scheduler_ && magic == kBatchRequestMagic) {
    struct BatchFlight {
      BatchRequest breq;
      BatchResponse bresp;
      util::TraceContext trace;
      util::TraceContext* btrace = nullptr;
      ClassifyTiming timing;
      std::size_t rows = 0;
      std::vector<std::size_t> slot;  // submitted row k -> original index
      std::vector<BatchScheduler::Result> results;
      std::atomic<std::size_t> remaining{0};
      FrameSink done;
    };
    auto fl = std::make_shared<BatchFlight>();
    fl->timing.request_start_ns = util::TraceContext::now_ns();
    try {
      fl->breq = decode_batch_request(frame);
    } catch (const std::exception&) {
      if (record) malformed_total_->inc();
      done({}, /*drop=*/true);
      return;
    }
    const std::int64_t decode_ns =
        util::TraceContext::now_ns() - fl->timing.request_start_ns;
    fl->rows = fl->breq.num_rows();
    fl->bresp.classes.assign(fl->rows, kClassError);
    const bool bfl_tl = util::Timeline::instance().sample();
    fl->btrace = sampler_.should_trace() || bfl_tl ? &fl->trace : nullptr;
    if (bfl_tl) fl->trace.set_timeline(true);
    if (fl->btrace != nullptr) {
      fl->btrace->add(util::Stage::kDecode, decode_ns);
    }
    fl->timing.attr_before =
        fl->btrace != nullptr ? fl->btrace->attributed_ns() : 0;
    fl->timing.infer_start_ns =
        fl->btrace != nullptr ? util::TraceContext::now_ns() : 0;
    const std::size_t arity = engine.num_features();
    for (std::size_t i = 0; i < fl->rows; ++i) {
      if (fl->breq.row(i).size() == arity) fl->slot.push_back(i);
    }
    if (fl->slot.empty()) {
      std::vector<std::uint8_t> out;
      finish_batch(fl->bresp, fl->btrace, fl->timing, fl->rows, out);
      done(std::move(out), false);
      return;
    }
    fl->results.resize(fl->slot.size());
    fl->remaining.store(fl->slot.size(), std::memory_order_relaxed);
    fl->done = std::move(done);
    for (std::size_t k = 0; k < fl->slot.size(); ++k) {
      scheduler_->classify_async(
          fl->breq.row(fl->slot[k]), fl->btrace,
          [this, fl, k](BatchScheduler::Result r) {
            fl->results[k] = r;
            // The last row to complete finalizes the whole frame; the
            // release/acquire pair on `remaining` publishes every
            // results[] write to that finalizer.
            if (fl->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
                1) {
              for (std::size_t j = 0; j < fl->slot.size(); ++j) {
                fl->bresp.classes[fl->slot[j]] = class_code(fl->results[j]);
              }
              std::vector<std::uint8_t> out;
              finish_batch(fl->bresp, fl->btrace, fl->timing, fl->rows,
                           out);
              fl->done(std::move(out), false);
            }
          });
    }
    return;
  }
  // Everything else — STATS, SLOW, explain, schedulerless classify/batch —
  // is answered synchronously on the calling (pool worker) thread.
  std::vector<std::uint8_t> out;
  try {
    process_frame(frame, engine, bolt_engine, out);
  } catch (const std::exception&) {
    done({}, /*drop=*/true);
    return;
  }
  done(std::move(out), false);
}

void InferenceServer::handle_connection(int fd) {
  if (options_.idle_timeout_ms > 0) {
    // Slow-loris defence: a peer that stops sending (before or mid-frame)
    // trips SO_RCVTIMEO, read_frame throws ReadTimeoutError, and the
    // handler exits — freeing its max_connections slot.
    timeval tv{};
    tv.tv_sec = options_.idle_timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(options_.idle_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  // One engine per connection: engines carry scratch buffers. All
  // connections share the registry-owned atomics, so STATS totals are
  // service-wide.
  std::unique_ptr<engines::Engine> engine = factory_();
  auto* bolt_engine = dynamic_cast<core::BoltEngine*>(engine.get());
  const bool record = options_.metrics;
  if (record) {
    engine->attach_metrics(&engine_metrics_);
    connections_total_->inc();
    active_connections_->add(1);
  }

  std::vector<std::uint8_t> frame, out;
  try {
    while (running_.load() && read_frame(fd, frame)) {
      process_frame(frame, *engine, bolt_engine, out);
      write_frame(fd, out);
    }
  } catch (const ReadTimeoutError&) {
    // Idle-timeout reap: the peer held the connection without completing a
    // frame for idle_timeout_ms. Drop it and free the slot.
    if (record) idle_timeouts_->inc();
  } catch (const std::exception&) {
    // Malformed request or peer reset (e.g. EPIPE from write_frame when
    // the client vanished mid-response): drop the connection.
  }
  if (record) active_connections_->sub(1);
  {
    // Self-reap: remove and close the fd, then announce the exit. stop()
    // returns only after every handler has passed this point, so no fd or
    // detached thread outlives the server.
    std::lock_guard lock(conn_mu_);
    std::erase(connection_fds_, fd);
    ::close(fd);
    --active_handlers_;
    // Notify under the lock: stop() cannot pass its predicate re-check (and
    // destroy *this) until this handler has released the mutex, after which
    // the handler touches nothing of the server.
    conn_cv_.notify_all();
  }
}

}  // namespace bolt::service
