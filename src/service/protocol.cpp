#include "service/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/trace.h"

namespace bolt::service {
namespace {

template <class T>
void put(std::vector<std::uint8_t>& out, const T& v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <class T>
T get(std::span<const std::uint8_t>& in) {
  if (in.size() < sizeof(T)) {
    throw std::runtime_error("protocol: truncated frame");
  }
  T v{};
  std::memcpy(&v, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return v;
}

}  // namespace

void encode_request(const Request& req, std::vector<std::uint8_t>& out) {
  put(out, kRequestMagic);
  put(out, req.flags);
  put(out, static_cast<std::uint32_t>(req.features.size()));
  for (float f : req.features) put(out, f);
}

void encode_response(const Response& resp, std::vector<std::uint8_t>& out) {
  put(out, kResponseMagic);
  put(out, resp.predicted_class);
  put(out, static_cast<std::uint32_t>(resp.salient.size()));
  for (const SalientFeature& s : resp.salient) {
    put(out, s.feature);
    put(out, s.score);
  }
  if (resp.traced) {
    put(out, static_cast<std::uint8_t>(resp.trace.size()));
    put(out, resp.trace_total_ns);
    for (const TraceSpan& s : resp.trace) {
      put(out, s.stage);
      put(out, s.count);
      put(out, s.total_ns);
    }
  }
}

void encode_stats_request(const StatsRequest& req,
                          std::vector<std::uint8_t>& out) {
  put(out, kStatsRequestMagic);
  put(out, req.flags);
}

void encode_stats_response(const StatsResponse& resp,
                           std::vector<std::uint8_t>& out) {
  put(out, kStatsResponseMagic);
  put(out, static_cast<std::uint32_t>(resp.body.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(resp.body.data());
  out.insert(out.end(), p, p + resp.body.size());
}

Request decode_request(std::span<const std::uint8_t> frame) {
  if (get<std::uint32_t>(frame) != kRequestMagic) {
    throw std::runtime_error("protocol: bad request magic");
  }
  Request req;
  req.flags = get<std::uint32_t>(frame);
  const auto n = get<std::uint32_t>(frame);
  if (frame.size() != n * sizeof(float)) {
    throw std::runtime_error("protocol: request size mismatch");
  }
  req.features.resize(n);
  std::memcpy(req.features.data(), frame.data(), n * sizeof(float));
  return req;
}

Response decode_response(std::span<const std::uint8_t> frame) {
  if (get<std::uint32_t>(frame) != kResponseMagic) {
    throw std::runtime_error("protocol: bad response magic");
  }
  Response resp;
  resp.predicted_class = get<std::int32_t>(frame);
  const auto n = get<std::uint32_t>(frame);
  // Validate the declared count against the bytes actually present BEFORE
  // reserving (mirrors decode_request): a corrupt peer must not be able to
  // force a multi-GB allocation with a 16-byte frame.
  if (frame.size() < static_cast<std::uint64_t>(n) *
                         (sizeof(std::uint32_t) + sizeof(double))) {
    throw std::runtime_error("protocol: response size mismatch");
  }
  resp.salient.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    SalientFeature s;
    s.feature = get<std::uint32_t>(frame);
    s.score = get<double>(frame);
    resp.salient.push_back(s);
  }
  // Optional trailing trace section (kFlagTrace responses only).
  if (!frame.empty()) {
    const auto num_spans = get<std::uint8_t>(frame);
    resp.traced = true;
    resp.trace_total_ns = get<std::uint64_t>(frame);
    constexpr std::size_t kSpanBytes = sizeof(std::uint8_t) +
                                       sizeof(std::uint32_t) +
                                       sizeof(std::uint64_t);
    if (frame.size() != num_spans * kSpanBytes) {
      throw std::runtime_error("protocol: trace section size mismatch");
    }
    resp.trace.reserve(num_spans);
    for (std::uint8_t i = 0; i < num_spans; ++i) {
      TraceSpan s;
      s.stage = get<std::uint8_t>(frame);
      s.count = get<std::uint32_t>(frame);
      s.total_ns = get<std::uint64_t>(frame);
      if (s.stage >= util::kNumStages) {
        throw std::runtime_error("protocol: unknown trace stage");
      }
      resp.trace.push_back(s);
    }
  }
  return resp;
}

StatsRequest decode_stats_request(std::span<const std::uint8_t> frame) {
  if (get<std::uint32_t>(frame) != kStatsRequestMagic) {
    throw std::runtime_error("protocol: bad stats request magic");
  }
  StatsRequest req;
  req.flags = get<std::uint32_t>(frame);
  if (!frame.empty()) throw std::runtime_error("protocol: trailing bytes");
  return req;
}

StatsResponse decode_stats_response(std::span<const std::uint8_t> frame) {
  if (get<std::uint32_t>(frame) != kStatsResponseMagic) {
    throw std::runtime_error("protocol: bad stats response magic");
  }
  const auto n = get<std::uint32_t>(frame);
  if (frame.size() != n) {
    throw std::runtime_error("protocol: stats size mismatch");
  }
  StatsResponse resp;
  resp.body.assign(reinterpret_cast<const char*>(frame.data()), n);
  return resp;
}

bool BatchRequest::uniform_arity(std::size_t arity) const {
  for (std::size_t i = 0; i < num_rows(); ++i) {
    if (row_offsets[i + 1] - row_offsets[i] != arity) return false;
  }
  return true;
}

void encode_batch_request(const BatchRequest& req,
                          std::vector<std::uint8_t>& out) {
  put(out, kBatchRequestMagic);
  put(out, req.flags);
  put(out, static_cast<std::uint32_t>(req.num_rows()));
  for (std::size_t i = 0; i < req.num_rows(); ++i) {
    const std::span<const float> row = req.row(i);
    put(out, static_cast<std::uint32_t>(row.size()));
    const auto* p = reinterpret_cast<const std::uint8_t*>(row.data());
    out.insert(out.end(), p, p + row.size() * sizeof(float));
  }
}

void encode_batch_response(const BatchResponse& resp,
                           std::vector<std::uint8_t>& out) {
  put(out, kBatchResponseMagic);
  put(out, static_cast<std::uint32_t>(resp.classes.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(resp.classes.data());
  out.insert(out.end(), p, p + resp.classes.size() * sizeof(std::int32_t));
}

BatchRequest decode_batch_request(std::span<const std::uint8_t> frame) {
  if (get<std::uint32_t>(frame) != kBatchRequestMagic) {
    throw std::runtime_error("protocol: bad batch request magic");
  }
  BatchRequest req;
  req.flags = get<std::uint32_t>(frame);
  const auto num_rows = get<std::uint32_t>(frame);
  // Every declared row costs at least its 4-byte length prefix; checking
  // that bound (and each row's span below) before any reserve keeps a
  // corrupt count from forcing a huge allocation.
  if (static_cast<std::uint64_t>(num_rows) * sizeof(std::uint32_t) >
      frame.size()) {
    throw std::runtime_error("protocol: batch row count exceeds frame");
  }
  req.row_offsets.reserve(num_rows + 1);
  req.features.reserve(frame.size() / sizeof(float));
  for (std::uint32_t i = 0; i < num_rows; ++i) {
    const auto n = get<std::uint32_t>(frame);
    if (static_cast<std::uint64_t>(n) * sizeof(float) > frame.size()) {
      throw std::runtime_error("protocol: batch row exceeds frame");
    }
    const std::size_t begin = req.features.size();
    req.features.resize(begin + n);
    std::memcpy(req.features.data() + begin, frame.data(), n * sizeof(float));
    frame = frame.subspan(n * sizeof(float));
    req.row_offsets.push_back(static_cast<std::uint32_t>(req.features.size()));
  }
  if (!frame.empty()) throw std::runtime_error("protocol: trailing bytes");
  return req;
}

BatchResponse decode_batch_response(std::span<const std::uint8_t> frame) {
  if (get<std::uint32_t>(frame) != kBatchResponseMagic) {
    throw std::runtime_error("protocol: bad batch response magic");
  }
  const auto n = get<std::uint32_t>(frame);
  if (frame.size() !=
      static_cast<std::uint64_t>(n) * sizeof(std::int32_t)) {
    throw std::runtime_error("protocol: batch response size mismatch");
  }
  BatchResponse resp;
  resp.classes.resize(n);
  std::memcpy(resp.classes.data(), frame.data(), n * sizeof(std::int32_t));
  return resp;
}

void encode_slow_request(const SlowRequest& req,
                         std::vector<std::uint8_t>& out) {
  put(out, kSlowRequestMagic);
  put(out, req.flags);
}

void encode_slow_response(const SlowResponse& resp,
                          std::vector<std::uint8_t>& out) {
  put(out, kSlowResponseMagic);
  put(out, static_cast<std::uint32_t>(resp.body.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(resp.body.data());
  out.insert(out.end(), p, p + resp.body.size());
}

SlowRequest decode_slow_request(std::span<const std::uint8_t> frame) {
  if (get<std::uint32_t>(frame) != kSlowRequestMagic) {
    throw std::runtime_error("protocol: bad slow request magic");
  }
  SlowRequest req;
  req.flags = get<std::uint32_t>(frame);
  if (!frame.empty()) throw std::runtime_error("protocol: trailing bytes");
  return req;
}

SlowResponse decode_slow_response(std::span<const std::uint8_t> frame) {
  if (get<std::uint32_t>(frame) != kSlowResponseMagic) {
    throw std::runtime_error("protocol: bad slow response magic");
  }
  const auto n = get<std::uint32_t>(frame);
  if (frame.size() != n) {
    throw std::runtime_error("protocol: slow size mismatch");
  }
  SlowResponse resp;
  resp.body.assign(reinterpret_cast<const char*>(frame.data()), n);
  return resp;
}

std::uint32_t frame_magic(std::span<const std::uint8_t> frame) {
  if (frame.size() < sizeof(std::uint32_t)) return 0;
  std::uint32_t magic = 0;
  std::memcpy(&magic, frame.data(), sizeof(magic));
  return magic;
}

namespace {

bool read_exact(int fd, void* buf, std::size_t n, bool eof_ok) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, p + done, n - done);
    if (r == 0) {
      if (done == 0 && eof_ok) return false;
      throw std::runtime_error("protocol: unexpected EOF");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO elapsed: the peer went quiet. Surface as the
        // dedicated timeout type so the server can count the reap.
        throw ReadTimeoutError("protocol: receive timed out");
      }
      throw std::runtime_error(std::string("protocol: read: ") +
                               std::strerror(errno));
    }
    done += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool read_frame(int fd, std::vector<std::uint8_t>& frame) {
  std::uint32_t len = 0;
  if (!read_exact(fd, &len, sizeof(len), /*eof_ok=*/true)) return false;
  if (len > kMaxFrameBytes) {
    throw std::runtime_error("protocol: frame too big");
  }
  frame.resize(len);
  read_exact(fd, frame.data(), len, /*eof_ok=*/false);
  return true;
}

void write_frame(int fd, std::span<const std::uint8_t> payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::uint8_t header[sizeof(len)];
  std::memcpy(header, &len, sizeof(len));
  struct Chunk {
    const std::uint8_t* p;
    std::size_t n;
  } chunks[2] = {{header, sizeof(len)}, {payload.data(), payload.size()}};
  for (const Chunk& c : chunks) {
    std::size_t done = 0;
    while (done < c.n) {
      // MSG_NOSIGNAL: a peer that vanished between request and response
      // must surface as EPIPE (thrown, handled by the caller's connection
      // teardown), never as a process-wide SIGPIPE.
      const ssize_t w = ::send(fd, c.p + done, c.n - done, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EPIPE || errno == ECONNRESET) {
          throw std::runtime_error("protocol: peer closed connection");
        }
        throw std::runtime_error(std::string("protocol: write: ") +
                                 std::strerror(errno));
      }
      done += static_cast<std::size_t>(w);
    }
  }
}

}  // namespace bolt::service
