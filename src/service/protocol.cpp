#include "service/protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace bolt::service {
namespace {

template <class T>
void put(std::vector<std::uint8_t>& out, const T& v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <class T>
T get(std::span<const std::uint8_t>& in) {
  if (in.size() < sizeof(T)) {
    throw std::runtime_error("protocol: truncated frame");
  }
  T v{};
  std::memcpy(&v, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return v;
}

}  // namespace

void encode_request(const Request& req, std::vector<std::uint8_t>& out) {
  put(out, kRequestMagic);
  put(out, req.flags);
  put(out, static_cast<std::uint32_t>(req.features.size()));
  for (float f : req.features) put(out, f);
}

void encode_response(const Response& resp, std::vector<std::uint8_t>& out) {
  put(out, kResponseMagic);
  put(out, resp.predicted_class);
  put(out, static_cast<std::uint32_t>(resp.salient.size()));
  for (const SalientFeature& s : resp.salient) {
    put(out, s.feature);
    put(out, s.score);
  }
}

void encode_stats_request(const StatsRequest& req,
                          std::vector<std::uint8_t>& out) {
  put(out, kStatsRequestMagic);
  put(out, req.flags);
}

void encode_stats_response(const StatsResponse& resp,
                           std::vector<std::uint8_t>& out) {
  put(out, kStatsResponseMagic);
  put(out, static_cast<std::uint32_t>(resp.body.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(resp.body.data());
  out.insert(out.end(), p, p + resp.body.size());
}

Request decode_request(std::span<const std::uint8_t> frame) {
  if (get<std::uint32_t>(frame) != kRequestMagic) {
    throw std::runtime_error("protocol: bad request magic");
  }
  Request req;
  req.flags = get<std::uint32_t>(frame);
  const auto n = get<std::uint32_t>(frame);
  if (frame.size() != n * sizeof(float)) {
    throw std::runtime_error("protocol: request size mismatch");
  }
  req.features.resize(n);
  std::memcpy(req.features.data(), frame.data(), n * sizeof(float));
  return req;
}

Response decode_response(std::span<const std::uint8_t> frame) {
  if (get<std::uint32_t>(frame) != kResponseMagic) {
    throw std::runtime_error("protocol: bad response magic");
  }
  Response resp;
  resp.predicted_class = get<std::int32_t>(frame);
  const auto n = get<std::uint32_t>(frame);
  resp.salient.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    SalientFeature s;
    s.feature = get<std::uint32_t>(frame);
    s.score = get<double>(frame);
    resp.salient.push_back(s);
  }
  if (!frame.empty()) throw std::runtime_error("protocol: trailing bytes");
  return resp;
}

StatsRequest decode_stats_request(std::span<const std::uint8_t> frame) {
  if (get<std::uint32_t>(frame) != kStatsRequestMagic) {
    throw std::runtime_error("protocol: bad stats request magic");
  }
  StatsRequest req;
  req.flags = get<std::uint32_t>(frame);
  if (!frame.empty()) throw std::runtime_error("protocol: trailing bytes");
  return req;
}

StatsResponse decode_stats_response(std::span<const std::uint8_t> frame) {
  if (get<std::uint32_t>(frame) != kStatsResponseMagic) {
    throw std::runtime_error("protocol: bad stats response magic");
  }
  const auto n = get<std::uint32_t>(frame);
  if (frame.size() != n) {
    throw std::runtime_error("protocol: stats size mismatch");
  }
  StatsResponse resp;
  resp.body.assign(reinterpret_cast<const char*>(frame.data()), n);
  return resp;
}

std::uint32_t frame_magic(std::span<const std::uint8_t> frame) {
  if (frame.size() < sizeof(std::uint32_t)) return 0;
  std::uint32_t magic = 0;
  std::memcpy(&magic, frame.data(), sizeof(magic));
  return magic;
}

namespace {

bool read_exact(int fd, void* buf, std::size_t n, bool eof_ok) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, p + done, n - done);
    if (r == 0) {
      if (done == 0 && eof_ok) return false;
      throw std::runtime_error("protocol: unexpected EOF");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("protocol: read: ") +
                               std::strerror(errno));
    }
    done += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool read_frame(int fd, std::vector<std::uint8_t>& frame) {
  std::uint32_t len = 0;
  if (!read_exact(fd, &len, sizeof(len), /*eof_ok=*/true)) return false;
  if (len > (64u << 20)) throw std::runtime_error("protocol: frame too big");
  frame.resize(len);
  read_exact(fd, frame.data(), len, /*eof_ok=*/false);
  return true;
}

void write_frame(int fd, std::span<const std::uint8_t> payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::uint8_t header[sizeof(len)];
  std::memcpy(header, &len, sizeof(len));
  struct Chunk {
    const std::uint8_t* p;
    std::size_t n;
  } chunks[2] = {{header, sizeof(len)}, {payload.data(), payload.size()}};
  for (const Chunk& c : chunks) {
    std::size_t done = 0;
    while (done < c.n) {
      const ssize_t w = ::write(fd, c.p + done, c.n - done);
      if (w < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("protocol: write: ") +
                                 std::strerror(errno));
      }
      done += static_cast<std::size_t>(w);
    }
  }
}

}  // namespace bolt::service
