// Wire protocol for the networked classification service (paper §5/§6:
// "Input data is sent via network to a front-end. The front-end calls the
// inference processing engine"; the evaluation communicates over a UNIX
// domain socket).
//
// Framing: little-endian, length-prefixed.
//   request  := u32 magic | u32 flags | u32 num_features | f32[num_features]
//   response := u32 magic | i32 class | u32 num_salient |
//               (u32 feature, f64 score)[num_salient]
// flags bit 0: request salient-feature explanation with the result.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bolt::service {

constexpr std::uint32_t kRequestMagic = 0x424c5451;   // "BLTQ"
constexpr std::uint32_t kResponseMagic = 0x424c5452;  // "BLTR"
constexpr std::uint32_t kFlagExplain = 1u << 0;

struct Request {
  std::uint32_t flags = 0;
  std::vector<float> features;
};

struct SalientFeature {
  std::uint32_t feature;
  double score;
};

struct Response {
  std::int32_t predicted_class = -1;
  std::vector<SalientFeature> salient;
};

/// Serializes a request/response into `out` (appended).
void encode_request(const Request& req, std::vector<std::uint8_t>& out);
void encode_response(const Response& resp, std::vector<std::uint8_t>& out);

/// Parses a full frame; throws std::runtime_error on malformed input.
Request decode_request(std::span<const std::uint8_t> frame);
Response decode_response(std::span<const std::uint8_t> frame);

/// Blocking framed I/O over a file descriptor (4-byte length prefix then
/// payload). Returns false on clean EOF before any byte of the frame.
bool read_frame(int fd, std::vector<std::uint8_t>& frame);
void write_frame(int fd, std::span<const std::uint8_t> payload);

}  // namespace bolt::service
