// Wire protocol for the networked classification service (paper §5/§6:
// "Input data is sent via network to a front-end. The front-end calls the
// inference processing engine"; the evaluation communicates over a UNIX
// domain socket).
//
// Framing: little-endian, length-prefixed.
//   request  := u32 magic | u32 flags | u32 num_features | f32[num_features]
//   response := u32 magic | i32 class | u32 num_salient |
//               (u32 feature, f64 score)[num_salient]
// flags bit 0: request salient-feature explanation with the result.
//
// A second op shares the framing: STATS scrapes the server's metrics
// registry (docs/OBSERVABILITY.md) from a live service.
//   stats request  := u32 magic | u32 flags          (flags bit 0: JSON)
//   stats response := u32 magic | u32 num_bytes | u8[num_bytes]
// The server dispatches on the leading magic, so classification and STATS
// requests interleave freely on one connection.
//
// A third op carries amortized batches (N rows in, N classes out) to the
// engine's entry-major batch kernel. Rows are individually length-prefixed
// so one malformed row (wrong arity) yields class -1 for that row without
// poisoning the rest of the batch:
//   batch request  := u32 magic | u32 flags | u32 num_rows |
//                     (u32 num_features | f32[num_features])[num_rows]
//   batch response := u32 magic | u32 num_rows | i32[num_rows]
//
// flags bit 1 (kFlagTrace) on a classify request asks the server to echo
// the request's span breakdown. The response then carries a trailing
// trace section after the salient list (docs/SERVING.md):
//   trace := u8 num_spans | u64 total_ns |
//            (u8 stage, u32 count, u64 total_ns)[num_spans]
// `stage` indexes util::Stage; `total_ns` on the header is the server-
// measured request wall time. Decoders that predate the flag reject
// trailing bytes, which is safe: a client only sees the section if it
// asked for it.
//
// A fourth op retrieves the slow-request capture ring (the K most recent
// requests whose latency exceeded the server's slow threshold), mirroring
// the STATS framing:
//   slow request  := u32 magic | u32 flags          (flags bit 0: JSON)
//   slow response := u32 magic | u32 num_bytes | u8[num_bytes]
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace bolt::service {

constexpr std::uint32_t kRequestMagic = 0x424c5451;   // "BLTQ"
constexpr std::uint32_t kResponseMagic = 0x424c5452;  // "BLTR"
constexpr std::uint32_t kStatsRequestMagic = 0x424c5453;   // "BLTS"
constexpr std::uint32_t kStatsResponseMagic = 0x424c5454;  // "BLTT"
constexpr std::uint32_t kBatchRequestMagic = 0x424c5455;   // "BLTU"
constexpr std::uint32_t kBatchResponseMagic = 0x424c5456;  // "BLTV"
constexpr std::uint32_t kSlowRequestMagic = 0x424c5457;    // "BLTW"
constexpr std::uint32_t kSlowResponseMagic = 0x424c5458;   // "BLTX"
constexpr std::uint32_t kFlagExplain = 1u << 0;
constexpr std::uint32_t kFlagTrace = 1u << 1;
constexpr std::uint32_t kStatsFlagJson = 1u << 0;
constexpr std::uint32_t kSlowFlagJson = 1u << 0;

/// Largest accepted frame payload. Shared by the blocking read_frame and
/// the event loop's incremental parser so both front ends reject oversized
/// frames at the same boundary.
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Status codes carried in Response::predicted_class (and per row of a
/// batch response). Real classes are >= 0, so negatives are unambiguous:
///   kClassError   — arity mismatch / malformed row / engine failure
///   kClassBusy    — shed by backpressure (scheduler queue full, or the
///                   server is shutting down); retry later
///   kClassExpired — the request's deadline passed while it was queued;
///                   inference was never run
constexpr std::int32_t kClassError = -1;
constexpr std::int32_t kClassBusy = -2;
constexpr std::int32_t kClassExpired = -3;

/// Thrown by read_frame when the socket's receive timeout (the server's
/// idle-timeout reaper for slow-loris clients) elapses mid-wait. A
/// distinct type so the server can count reaps separately from malformed
/// peers; both end with the connection dropped.
class ReadTimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Request {
  std::uint32_t flags = 0;
  std::vector<float> features;
};

struct SalientFeature {
  std::uint32_t feature;
  double score;
};

/// One stage's totals in a response's trace section. `stage` is a
/// util::Stage value; `count` is how many times the stage was entered.
struct TraceSpan {
  std::uint8_t stage = 0;
  std::uint32_t count = 0;
  std::uint64_t total_ns = 0;
};

struct Response {
  std::int32_t predicted_class = -1;
  std::vector<SalientFeature> salient;
  /// Trace section (kFlagTrace). `traced` distinguishes "no section"
  /// from a traced request that recorded zero spans.
  bool traced = false;
  std::uint64_t trace_total_ns = 0;  // server-measured request wall time
  std::vector<TraceSpan> trace;
};

struct StatsRequest {
  std::uint32_t flags = 0;
};

struct StatsResponse {
  std::string body;  // text or JSON metrics dump
};

struct SlowRequest {
  std::uint32_t flags = 0;  // kSlowFlagJson: JSON body
};

struct SlowResponse {
  std::string body;  // text or JSON slow-ring dump
};

/// A batch of samples, stored flat (rows back to back) with a CSR offset
/// array so uniform-arity batches reach the engine's batch kernel without
/// per-row copies.
struct BatchRequest {
  std::uint32_t flags = 0;
  std::vector<std::uint32_t> row_offsets{0};  // num_rows + 1 offsets
  std::vector<float> features;                // row_offsets.back() floats

  std::size_t num_rows() const { return row_offsets.size() - 1; }
  std::span<const float> row(std::size_t i) const {
    return {features.data() + row_offsets[i],
            row_offsets[i + 1] - row_offsets[i]};
  }
  void add_row(std::span<const float> row) {
    features.insert(features.end(), row.begin(), row.end());
    row_offsets.push_back(static_cast<std::uint32_t>(features.size()));
  }
  /// True iff every row has exactly `arity` features (the engine batch-
  /// kernel fast path: `features` is then a contiguous stride-`arity`
  /// matrix).
  bool uniform_arity(std::size_t arity) const;
};

struct BatchResponse {
  std::vector<std::int32_t> classes;  // one per row; -1 = arity mismatch
};

/// Serializes a request/response into `out` (appended).
void encode_request(const Request& req, std::vector<std::uint8_t>& out);
void encode_response(const Response& resp, std::vector<std::uint8_t>& out);

void encode_stats_request(const StatsRequest& req,
                          std::vector<std::uint8_t>& out);
void encode_stats_response(const StatsResponse& resp,
                           std::vector<std::uint8_t>& out);

void encode_batch_request(const BatchRequest& req,
                          std::vector<std::uint8_t>& out);
void encode_batch_response(const BatchResponse& resp,
                           std::vector<std::uint8_t>& out);

void encode_slow_request(const SlowRequest& req,
                         std::vector<std::uint8_t>& out);
void encode_slow_response(const SlowResponse& resp,
                          std::vector<std::uint8_t>& out);

/// Parses a full frame; throws std::runtime_error on malformed input.
Request decode_request(std::span<const std::uint8_t> frame);
Response decode_response(std::span<const std::uint8_t> frame);
StatsRequest decode_stats_request(std::span<const std::uint8_t> frame);
StatsResponse decode_stats_response(std::span<const std::uint8_t> frame);
BatchRequest decode_batch_request(std::span<const std::uint8_t> frame);
BatchResponse decode_batch_response(std::span<const std::uint8_t> frame);
SlowRequest decode_slow_request(std::span<const std::uint8_t> frame);
SlowResponse decode_slow_response(std::span<const std::uint8_t> frame);

/// Leading magic of a frame (0 if shorter than 4 bytes) — how the server
/// dispatches between classification and STATS ops.
std::uint32_t frame_magic(std::span<const std::uint8_t> frame);

/// Blocking framed I/O over a socket (4-byte length prefix then payload).
/// Returns false on clean EOF before any byte of the frame.
bool read_frame(int fd, std::vector<std::uint8_t>& frame);
/// Writes with MSG_NOSIGNAL: a peer that disconnected mid-response raises
/// EPIPE (translated to std::runtime_error, the caller's drop-the-
/// connection path) instead of a process-killing SIGPIPE.
void write_frame(int fd, std::span<const std::uint8_t> payload);

}  // namespace bolt::service
