// Client for the inference service: connects to a server's UNIX socket,
// sends samples, and reads classifications (plus the STATS/TRACE/SLOW and
// BATCH ops — see service/protocol.h for the wire formats).
//
// Connection establishment is retried with exponential backoff inside
// ClientOptions::connect_timeout_ms: a client started concurrently with
// the server (CI jobs, the load generator's worker fleet) converges as
// soon as the socket is bound instead of failing on the first
// ECONNREFUSED/ENOENT. I/O deadlines (ClientOptions::io_timeout_ms) bound
// every subsequent round trip so a wedged server surfaces as
// ReadTimeoutError instead of a hung client.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "service/protocol.h"

namespace bolt::service {

/// Where a client connects: a UNIX-domain socket path or a TCP host:port
/// (IPv4; "localhost" maps to 127.0.0.1 without DNS). Both transports speak
/// the identical binary protocol, so everything above the connect call —
/// ops, tracing, error codes — is transport-agnostic.
struct Endpoint {
  enum class Kind : std::uint8_t { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;          // kUnix: socket path
  std::string host;          // kTcp: IPv4 dotted quad or "localhost"
  std::uint16_t port = 0;    // kTcp

  static Endpoint unix_socket(std::string socket_path);
  static Endpoint tcp(std::string host, std::uint16_t port);
  /// Parses "host:port" (host optional: ":9000" or "9000" mean loopback).
  /// Throws std::runtime_error on a missing or non-numeric port.
  static Endpoint parse_tcp(const std::string& spec);

  /// "unix:<path>" or "tcp:<host>:<port>" — for logs and error messages.
  std::string describe() const;
};

/// Connection-establishment and I/O-deadline tunables for InferenceClient.
struct ClientOptions {
  /// Total budget for establishing the connection. While the server's
  /// socket is missing (ENOENT) or not yet accepting (ECONNREFUSED) the
  /// client retries with exponential backoff until the budget is spent.
  /// 0 = a single attempt that fails immediately (the historical
  /// behaviour, still right for "is it up?" probes).
  std::uint32_t connect_timeout_ms = 0;
  /// First retry sleep; doubles per attempt, capped at 100 ms so a
  /// multi-second budget still probes frequently.
  std::uint32_t connect_backoff_ms = 2;
  /// Per-operation send/receive deadline (SO_SNDTIMEO/SO_RCVTIMEO). A
  /// response that does not arrive within it throws ReadTimeoutError.
  /// 0 = block indefinitely.
  std::uint32_t io_timeout_ms = 0;
};

/// Client for the service: connects, sends samples, reads classifications.
class InferenceClient {
 public:
  explicit InferenceClient(const std::string& socket_path);
  InferenceClient(const std::string& socket_path, const ClientOptions& opts);
  explicit InferenceClient(const Endpoint& endpoint);
  InferenceClient(const Endpoint& endpoint, const ClientOptions& opts);
  ~InferenceClient();

  InferenceClient(const InferenceClient&) = delete;
  InferenceClient& operator=(const InferenceClient&) = delete;

  /// Round-trips one sample. `explain` asks for salient features.
  Response classify(std::span<const float> features, bool explain = false);

  /// Round-trips one sample with kFlagTrace set: the response carries the
  /// server's per-stage span breakdown (Response::trace) and its measured
  /// wall time (Response::trace_total_ns). Response::traced stays false
  /// when the server was built with tracing compiled out.
  Response classify_traced(std::span<const float> features);

  /// Retrieves the server's slow-request capture ring (SLOW op). Returns
  /// the text rendering, or JSON when `json` is set.
  std::string slow(bool json = false);

  /// Round-trips a batch of `num_rows` samples of `row_stride` floats each
  /// (row i at rows[i * row_stride]) through the BATCH op: one frame each
  /// way, classified server-side by the amortized batch kernel. Returns one
  /// class per row (-1 for arity-mismatched rows).
  std::vector<std::int32_t> classify_batch(std::span<const float> rows,
                                           std::size_t num_rows,
                                           std::size_t row_stride);

  /// Scrapes the server's metrics registry (STATS op). Returns the text
  /// dump, or JSON when `json` is set.
  std::string stats(bool json = false);

  /// Connect attempts the constructor made before succeeding (1 when the
  /// server was already up) — observability for retry-path tests and the
  /// load generator's connect accounting.
  std::uint32_t connect_attempts() const { return connect_attempts_; }

 private:
  int fd_ = -1;
  std::uint32_t connect_attempts_ = 0;
  std::vector<std::uint8_t> buf_;
};

}  // namespace bolt::service
