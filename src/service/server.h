// The classification service front end (paper Figure 7): accepts requests
// over a UNIX domain socket, dispatches them to an inference engine, and
// returns the class (plus salient features when requested).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "baselines/engine.h"
#include "bolt/engine.h"
#include "service/protocol.h"

namespace bolt::service {

/// Serves one engine on a UNIX-domain-socket path. Connections are handled
/// on a small thread pool; each connection may pipeline many requests.
class InferenceServer {
 public:
  /// The engine factory is invoked once per worker thread — engines carry
  /// per-call scratch state and are not safe to share across threads.
  /// Explanation requests are honored only for factories producing
  /// BoltEngine (other engines answer with an empty salient list).
  InferenceServer(std::string socket_path,
                  std::function<std::unique_ptr<engines::Engine>()> factory,
                  std::size_t workers = 2);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Binds, listens and spawns the accept loop. Throws on socket errors.
  void start();
  /// Stops accepting, closes the socket and joins all threads.
  void stop();

  const std::string& socket_path() const { return socket_path_; }
  std::uint64_t requests_served() const { return requests_served_.load(); }

 private:
  void accept_loop();
  void handle_connection(int fd);

  std::string socket_path_;
  std::function<std::unique_ptr<engines::Engine>()> factory_;
  std::size_t workers_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::thread accept_thread_;
  std::vector<std::thread> connection_threads_;
  std::vector<int> connection_fds_;  // live sockets, shut down on stop()
  std::mutex conn_mu_;
};

/// Client for the service: connects, sends samples, reads classifications.
class InferenceClient {
 public:
  explicit InferenceClient(const std::string& socket_path);
  ~InferenceClient();

  InferenceClient(const InferenceClient&) = delete;
  InferenceClient& operator=(const InferenceClient&) = delete;

  /// Round-trips one sample. `explain` asks for salient features.
  Response classify(std::span<const float> features, bool explain = false);

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> buf_;
};

}  // namespace bolt::service
