// The classification service front end (paper Figure 7): accepts requests
// over a UNIX domain socket, dispatches them to an inference engine, and
// returns the class (plus salient features when requested).
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "baselines/engine.h"
#include "bolt/engine.h"
#include "service/client.h"  // re-exported: InferenceClient historically lived here
#include "service/metrics_http.h"
#include "service/protocol.h"
#include "service/scheduler.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace bolt::service {

/// Tunables for InferenceServer beyond the socket path and engine factory.
struct ServerOptions {
  std::size_t workers = 2;
  /// When false the server records nothing and answers STATS with an empty
  /// registry snapshot — the knob bench_service uses to price the
  /// instrumentation itself.
  bool metrics = true;
  /// Concurrent-connection cap: an accept beyond it is closed immediately
  /// (counted in service.rejected_connections), making backpressure under
  /// connection floods explicit instead of an unbounded handler-thread
  /// pile-up. 0 = unlimited.
  std::size_t max_connections = 256;
  /// Receive timeout per connection (SO_RCVTIMEO): a client that connects
  /// and never sends a complete frame is reaped after this long, freeing
  /// its max_connections slot (the slow-loris defence; counted in
  /// service.idle_timeouts). 0 = wait forever.
  std::uint32_t idle_timeout_ms = 0;
  /// Dynamic-batching scheduler (docs/SERVING.md). When
  /// scheduler.enabled, CLASSIFY and BATCH requests from every connection
  /// are aggregated into shared tiles for the engine's amortized batch
  /// kernel; shed/expired requests answer kClassBusy/kClassExpired.
  /// Explanation requests bypass the scheduler (per-row by nature).
  SchedulerOptions scheduler;
  /// Request-scoped tracing and the slow-request capture ring
  /// (docs/OBSERVABILITY.md): trace.sample_every arms 1-in-N requests,
  /// trace.slow_threshold_us arms every request and captures those that
  /// exceed it. A client setting kFlagTrace is always traced.
  util::TraceConfig trace;
  /// Prometheus exposition over HTTP (`GET /metrics`) on 127.0.0.1:
  /// -1 disables the endpoint, 0 binds a kernel-assigned ephemeral port
  /// (tests; read it back via metrics_http_port()), >0 binds that port.
  std::int32_t metrics_port = -1;
};

/// Serves one engine on a UNIX-domain-socket path. Connections are handled
/// on a small thread pool; each connection may pipeline many requests.
class InferenceServer {
 public:
  /// The engine factory is invoked once per worker thread — engines carry
  /// per-call scratch state and are not safe to share across threads.
  /// Explanation requests are honored only for factories producing
  /// BoltEngine (other engines answer with an empty salient list).
  InferenceServer(std::string socket_path,
                  std::function<std::unique_ptr<engines::Engine>()> factory,
                  std::size_t workers = 2);
  InferenceServer(std::string socket_path,
                  std::function<std::unique_ptr<engines::Engine>()> factory,
                  const ServerOptions& options);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Binds, listens and spawns the accept loop. Throws on socket errors.
  void start();
  /// Stops accepting, closes the socket and joins all threads.
  void stop();

  const std::string& socket_path() const { return socket_path_; }
  std::uint64_t requests_served() const { return requests_served_.load(); }

  /// Live connection handlers right now (drains to zero after churn — the
  /// regression gate for the historical unbounded handler-thread leak).
  std::size_t active_handler_count() const;

  /// The server's metrics registry (exported metric names are listed in
  /// docs/OBSERVABILITY.md). Remote scrapes arrive via the STATS op; local
  /// callers can register additional metrics here before start().
  util::MetricsRegistry& metrics() { return metrics_; }
  bool metrics_enabled() const { return options_.metrics; }

  /// The dynamic-batching scheduler, live between start() and stop() when
  /// ServerOptions::scheduler.enabled; nullptr otherwise.
  BatchScheduler* scheduler() { return scheduler_.get(); }

  /// The slow-request capture ring (always present; captures only when
  /// ServerOptions::trace.slow_threshold_us > 0).
  util::SlowRing& slow_ring() { return *slow_ring_; }

  /// Port the /metrics HTTP endpoint is bound to, or -1 when disabled.
  /// With ServerOptions::metrics_port == 0 this is the kernel-assigned
  /// ephemeral port (valid after start()).
  std::int32_t metrics_http_port() const {
    return metrics_http_ ? metrics_http_->port() : -1;
  }

 private:
  void accept_loop();
  void handle_connection(int fd);
  void update_uptime();

  std::string socket_path_;
  std::function<std::unique_ptr<engines::Engine>()> factory_;
  ServerOptions options_;
  std::unique_ptr<BatchScheduler> scheduler_;
  util::TraceSampler sampler_{options_.trace};
  std::unique_ptr<util::SlowRing> slow_ring_;
  std::unique_ptr<MetricsHttpServer> metrics_http_;
  std::chrono::steady_clock::time_point start_time_{};
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::thread accept_thread_;
  // Handler threads are detached and self-reaping: each handler removes its
  // fd and decrements active_handlers_ on exit (no per-connection join
  // bookkeeping to grow without bound under churn); stop() shuts every live
  // fd down and waits on conn_cv_ until the count drains to zero.
  std::vector<int> connection_fds_;  // live sockets, shut down on stop()
  std::size_t active_handlers_ = 0;
  std::condition_variable conn_cv_;
  mutable std::mutex conn_mu_;

  // Registry-owned instrumentation, shared by every connection handler.
  util::MetricsRegistry metrics_;
  util::EngineMetrics engine_metrics_;
  util::Counter* requests_total_ = nullptr;
  util::Counter* errors_total_ = nullptr;
  util::Counter* malformed_total_ = nullptr;
  util::Counter* stats_requests_total_ = nullptr;
  util::Counter* batch_requests_total_ = nullptr;
  util::Counter* connections_total_ = nullptr;
  util::Counter* rejected_connections_ = nullptr;
  util::Counter* idle_timeouts_ = nullptr;
  util::Gauge* active_connections_ = nullptr;
  util::Gauge* uptime_seconds_ = nullptr;
  util::Counter* traced_requests_ = nullptr;
  util::Counter* slow_captured_ = nullptr;
  util::Counter* slow_op_requests_ = nullptr;
  util::Histogram* request_latency_us_ = nullptr;
  util::Histogram* batch_size_ = nullptr;
};

}  // namespace bolt::service
