// The classification service front end (paper Figure 7): accepts requests
// over a UNIX domain socket, dispatches them to an inference engine, and
// returns the class (plus salient features when requested).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/engine.h"
#include "bolt/engine.h"
#include "service/client.h"  // re-exported: InferenceClient historically lived here
#include "service/metrics_http.h"
#include "service/protocol.h"
#include "service/scheduler.h"
#include "util/metrics.h"
#include "util/trace.h"
#include "util/trace_export.h"

namespace bolt::service {

class EventLoop;

/// How the server turns accepted sockets into answered frames.
enum class FrontEnd : std::uint8_t {
  /// One detached handler thread per connection (the historical path).
  /// Simple, but thread count scales with connection count.
  kThreaded,
  /// One epoll loop thread plus a fixed pool of ServerOptions::workers
  /// inference threads; connection count is bounded by fds, not threads
  /// (docs/SERVING.md "Transports and front ends").
  kEventLoop,
};

/// Tunables for InferenceServer beyond the socket path and engine factory.
struct ServerOptions {
  /// Inference worker threads for the event-loop front end (each owns one
  /// engine from the factory). The threaded front end ignores this and
  /// spawns per connection.
  std::size_t workers = 2;
  /// Which front end serves connections. Both speak the identical protocol
  /// and share the op-dispatch code, so responses are bit-identical — the
  /// soak job A/Bs them.
  FrontEnd front_end = FrontEnd::kThreaded;
  /// TCP listener on 127.0.0.1 beside the UNIX socket: -1 disables (UNIX
  /// only, the historical shape), 0 binds a kernel-assigned ephemeral port
  /// (read it back via tcp_port()), >0 binds that port. Both listeners
  /// serve simultaneously from the same front end.
  std::int32_t tcp_port = -1;
  /// listen(2) backlog for both listeners. 0 = SOMAXCONN. (The historical
  /// hardcoded 16 manufactured ECONNREFUSED storms under connect bursts.)
  std::int32_t listen_backlog = 0;
  /// When false the server records nothing and answers STATS with an empty
  /// registry snapshot — the knob bench_service uses to price the
  /// instrumentation itself.
  bool metrics = true;
  /// Concurrent-connection cap: an accept beyond it is closed immediately
  /// (counted in service.rejected_connections), making backpressure under
  /// connection floods explicit instead of an unbounded handler-thread
  /// pile-up. 0 = unlimited.
  std::size_t max_connections = 256;
  /// Receive timeout per connection (SO_RCVTIMEO): a client that connects
  /// and never sends a complete frame is reaped after this long, freeing
  /// its max_connections slot (the slow-loris defence; counted in
  /// service.idle_timeouts). 0 = wait forever.
  std::uint32_t idle_timeout_ms = 0;
  /// Dynamic-batching scheduler (docs/SERVING.md). When
  /// scheduler.enabled, CLASSIFY and BATCH requests from every connection
  /// are aggregated into shared tiles for the engine's amortized batch
  /// kernel; shed/expired requests answer kClassBusy/kClassExpired.
  /// Explanation requests bypass the scheduler (per-row by nature).
  SchedulerOptions scheduler;
  /// Request-scoped tracing and the slow-request capture ring
  /// (docs/OBSERVABILITY.md): trace.sample_every arms 1-in-N requests,
  /// trace.slow_threshold_us arms every request and captures those that
  /// exceed it. A client setting kFlagTrace is always traced.
  util::TraceConfig trace;
  /// Admin HTTP surface (`GET /metrics`, `/healthz`, `/readyz`,
  /// `/timeline`) on 127.0.0.1: -1 disables it, 0 binds a
  /// kernel-assigned ephemeral port (tests; read it back via
  /// metrics_http_port()), >0 binds that port.
  std::int32_t metrics_port = -1;
  /// Timeline export (docs/OBSERVABILITY.md "Timeline"): sample_every > 0
  /// records 1-in-N sampled events from the event loop, scheduler, engine
  /// stages, and model swaps into the process-wide rings, drained by
  /// `GET /timeline` as Chrome Trace Event JSON. The timeline is
  /// process-global; the last started server's config wins.
  util::TimelineConfig timeline;
  /// Extra readiness probe ANDed into `GET /readyz` beside "the front end
  /// is accepting" (e.g. "a model is loaded"). Null = no extra condition.
  std::function<bool()> ready;
  /// When set, polled before every STATS snapshot and /metrics scrape to
  /// refresh the `model.generation` gauge — wire ModelHandle::generation
  /// here so hot swaps are observable.
  std::function<std::uint64_t()> model_generation;
  /// Extra labels appended to bolt_build_info (STATS and /metrics) beside
  /// the compiled-in and runtime-dispatch facts — the serve front end
  /// reports the model artifact's version (1=v1 heap, 2=v2 mapped),
  /// storage mode, and checksum-verification status here.
  std::vector<std::pair<std::string, std::string>> extra_build_labels = {};
};

/// Serves one engine on a UNIX-domain-socket path. Connections are handled
/// on a small thread pool; each connection may pipeline many requests.
class InferenceServer {
 public:
  /// The engine factory is invoked once per worker thread — engines carry
  /// per-call scratch state and are not safe to share across threads.
  /// Explanation requests are honored only for factories producing
  /// BoltEngine (other engines answer with an empty salient list).
  InferenceServer(std::string socket_path,
                  std::function<std::unique_ptr<engines::Engine>()> factory,
                  std::size_t workers = 2);
  InferenceServer(std::string socket_path,
                  std::function<std::unique_ptr<engines::Engine>()> factory,
                  const ServerOptions& options);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Binds, listens and spawns the accept loop. Throws on socket errors.
  void start();
  /// Stops accepting, closes the socket and joins all threads.
  void stop();

  const std::string& socket_path() const { return socket_path_; }
  std::uint64_t requests_served() const { return requests_served_.load(); }

  /// Port the TCP listener is bound to, or -1 when ServerOptions::tcp_port
  /// is disabled. With tcp_port == 0 this is the kernel-assigned ephemeral
  /// port (valid after start()).
  std::int32_t tcp_port() const { return tcp_port_; }

  /// Live connection handlers right now (drains to zero after churn — the
  /// regression gate for the historical unbounded handler-thread leak).
  std::size_t active_handler_count() const;

  /// The server's metrics registry (exported metric names are listed in
  /// docs/OBSERVABILITY.md). Remote scrapes arrive via the STATS op; local
  /// callers can register additional metrics here before start().
  util::MetricsRegistry& metrics() { return metrics_; }
  bool metrics_enabled() const { return options_.metrics; }

  /// The dynamic-batching scheduler, live between start() and stop() when
  /// ServerOptions::scheduler.enabled; nullptr otherwise.
  BatchScheduler* scheduler() { return scheduler_.get(); }

  /// The slow-request capture ring (always present; captures only when
  /// ServerOptions::trace.slow_threshold_us > 0).
  util::SlowRing& slow_ring() { return *slow_ring_; }

  /// Port the /metrics HTTP endpoint is bound to, or -1 when disabled.
  /// With ServerOptions::metrics_port == 0 this is the kernel-assigned
  /// ephemeral port (valid after start()).
  std::int32_t metrics_http_port() const {
    return metrics_http_ ? metrics_http_->port() : -1;
  }

 private:
  friend class EventLoop;

  /// Callback a frame's encoded response is delivered through on the async
  /// path. `drop` asks the front end to close the connection (malformed
  /// peer) instead of writing.
  using FrameSink =
      std::function<void(std::vector<std::uint8_t> payload, bool drop)>;

  /// Timing state threaded from decode to response finalization so both
  /// front ends account identically (docs/OBSERVABILITY.md).
  struct ClassifyTiming {
    std::int64_t request_start_ns = 0;
    std::uint64_t attr_before = 0;
    std::int64_t infer_start_ns = 0;
  };

  void accept_loop(int listen_fd, bool tcp);
  void handle_connection(int fd);
  void update_uptime();
  void close_listeners();
  /// Accept hit fd exhaustion: briefly release the reserved emergency fd,
  /// accept the pending connection, and close it so the peer sees a clean
  /// EOF instead of hanging in the backlog until its own timeout.
  void shed_pending_connection(int listen_fd);

  /// Synchronous op dispatch shared by both front ends: decodes `frame`,
  /// runs the op against `engine`, and leaves the encoded response in
  /// `out`. Throws on a malformed frame (counted; caller drops the
  /// connection).
  void process_frame(std::span<const std::uint8_t> frame,
                     engines::Engine& engine, core::BoltEngine* bolt_engine,
                     std::vector<std::uint8_t>& out);
  /// Asynchronous dispatch for the event-loop front end: scheduler-eligible
  /// CLASSIFY/BATCH frames are submitted via classify_async and `done`
  /// fires from a scheduler worker when every row completes; all other ops
  /// run synchronously on the calling thread and `done` fires inline.
  /// `done` is invoked exactly once.
  void process_frame_async(std::span<const std::uint8_t> frame,
                           engines::Engine& engine,
                           core::BoltEngine* bolt_engine, FrameSink done);
  /// Closes out one CLASSIFY: derives the dispatch span, encodes (and
  /// re-encodes with the trace section when the client asked), and records
  /// service metrics + slow-ring capture.
  void finish_classify(Response& resp, util::TraceContext* tctx,
                       bool client_trace, const ClassifyTiming& timing,
                       std::vector<std::uint8_t>& out);
  /// Same closure for one BATCH frame of `rows` rows.
  void finish_batch(BatchResponse& bresp, util::TraceContext* btrace,
                    const ClassifyTiming& timing, std::size_t rows,
                    std::vector<std::uint8_t>& out);

  std::string socket_path_;
  std::function<std::unique_ptr<engines::Engine>()> factory_;
  ServerOptions options_;
  std::unique_ptr<BatchScheduler> scheduler_;
  std::unique_ptr<EventLoop> event_loop_;
  util::TraceSampler sampler_{options_.trace};
  std::unique_ptr<util::SlowRing> slow_ring_;
  std::unique_ptr<MetricsHttpServer> metrics_http_;
  std::chrono::steady_clock::time_point start_time_{};
  int listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  std::int32_t tcp_port_ = -1;
  // Reserved fd (open on /dev/null) released under EMFILE so accept can
  // still shed the pending connection cleanly. Lives for the server's
  // lifetime; guarded by spare_mu_ (both accept threads may hit exhaustion
  // at once).
  int spare_fd_ = -1;
  std::mutex spare_mu_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::vector<std::thread> accept_threads_;
  // Handler threads are detached and self-reaping: each handler removes its
  // fd and decrements active_handlers_ on exit (no per-connection join
  // bookkeeping to grow without bound under churn); stop() shuts every live
  // fd down and waits on conn_cv_ until the count drains to zero.
  std::vector<int> connection_fds_;  // live sockets, shut down on stop()
  std::size_t active_handlers_ = 0;
  std::condition_variable conn_cv_;
  mutable std::mutex conn_mu_;

  // Registry-owned instrumentation, shared by every connection handler.
  util::MetricsRegistry metrics_;
  util::EngineMetrics engine_metrics_;
  util::Counter* requests_total_ = nullptr;
  util::Counter* errors_total_ = nullptr;
  util::Counter* malformed_total_ = nullptr;
  util::Counter* stats_requests_total_ = nullptr;
  util::Counter* batch_requests_total_ = nullptr;
  util::Counter* connections_total_ = nullptr;
  util::Counter* rejected_connections_ = nullptr;
  util::Counter* accept_errors_ = nullptr;
  util::Counter* idle_timeouts_ = nullptr;
  util::Gauge* active_connections_ = nullptr;
  util::Gauge* uptime_seconds_ = nullptr;
  util::Counter* traced_requests_ = nullptr;
  util::Counter* slow_captured_ = nullptr;
  util::Counter* slow_op_requests_ = nullptr;
  util::Histogram* request_latency_us_ = nullptr;
  util::Histogram* batch_size_ = nullptr;
  // Labeled series (util/prometheus.h naming convention): request counts
  // by wire op and connection counts by transport, plus the hot-swap
  // generation gauge refreshed from ServerOptions::model_generation.
  util::Counter* requests_op_classify_ = nullptr;
  util::Counter* requests_op_batch_ = nullptr;
  util::Counter* requests_op_stats_ = nullptr;
  util::Counter* requests_op_slow_ = nullptr;
  util::Counter* connections_unix_ = nullptr;
  util::Counter* connections_tcp_ = nullptr;
  util::Gauge* model_generation_ = nullptr;
};

}  // namespace bolt::service
