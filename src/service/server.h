// The classification service front end (paper Figure 7): accepts requests
// over a UNIX domain socket, dispatches them to an inference engine, and
// returns the class (plus salient features when requested).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "baselines/engine.h"
#include "bolt/engine.h"
#include "service/protocol.h"
#include "util/metrics.h"

namespace bolt::service {

/// Tunables for InferenceServer beyond the socket path and engine factory.
struct ServerOptions {
  std::size_t workers = 2;
  /// When false the server records nothing and answers STATS with an empty
  /// registry snapshot — the knob bench_service uses to price the
  /// instrumentation itself.
  bool metrics = true;
};

/// Serves one engine on a UNIX-domain-socket path. Connections are handled
/// on a small thread pool; each connection may pipeline many requests.
class InferenceServer {
 public:
  /// The engine factory is invoked once per worker thread — engines carry
  /// per-call scratch state and are not safe to share across threads.
  /// Explanation requests are honored only for factories producing
  /// BoltEngine (other engines answer with an empty salient list).
  InferenceServer(std::string socket_path,
                  std::function<std::unique_ptr<engines::Engine>()> factory,
                  std::size_t workers = 2);
  InferenceServer(std::string socket_path,
                  std::function<std::unique_ptr<engines::Engine>()> factory,
                  const ServerOptions& options);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Binds, listens and spawns the accept loop. Throws on socket errors.
  void start();
  /// Stops accepting, closes the socket and joins all threads.
  void stop();

  const std::string& socket_path() const { return socket_path_; }
  std::uint64_t requests_served() const { return requests_served_.load(); }

  /// The server's metrics registry (exported metric names are listed in
  /// docs/OBSERVABILITY.md). Remote scrapes arrive via the STATS op; local
  /// callers can register additional metrics here before start().
  util::MetricsRegistry& metrics() { return metrics_; }
  bool metrics_enabled() const { return options_.metrics; }

 private:
  void accept_loop();
  void handle_connection(int fd);

  std::string socket_path_;
  std::function<std::unique_ptr<engines::Engine>()> factory_;
  ServerOptions options_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::thread accept_thread_;
  std::vector<std::thread> connection_threads_;
  std::vector<int> connection_fds_;  // live sockets, shut down on stop()
  std::mutex conn_mu_;

  // Registry-owned instrumentation, shared by every connection handler.
  util::MetricsRegistry metrics_;
  util::EngineMetrics engine_metrics_;
  util::Counter* requests_total_ = nullptr;
  util::Counter* errors_total_ = nullptr;
  util::Counter* malformed_total_ = nullptr;
  util::Counter* stats_requests_total_ = nullptr;
  util::Counter* connections_total_ = nullptr;
  util::Gauge* active_connections_ = nullptr;
  util::Histogram* request_latency_us_ = nullptr;
};

/// Client for the service: connects, sends samples, reads classifications.
class InferenceClient {
 public:
  explicit InferenceClient(const std::string& socket_path);
  ~InferenceClient();

  InferenceClient(const InferenceClient&) = delete;
  InferenceClient& operator=(const InferenceClient&) = delete;

  /// Round-trips one sample. `explain` asks for salient features.
  Response classify(std::span<const float> features, bool explain = false);

  /// Scrapes the server's metrics registry (STATS op). Returns the text
  /// dump, or JSON when `json` is set.
  std::string stats(bool json = false);

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> buf_;
};

}  // namespace bolt::service
