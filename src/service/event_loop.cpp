#include "service/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "bolt/engine.h"
#include "service/net.h"
#include "service/protocol.h"
#include "service/server.h"
#include "util/trace.h"
#include "util/trace_export.h"

namespace bolt::service {
namespace {

// epoll user-data keys below kFirstConnId identify non-connection fds.
constexpr std::uint64_t kEventFdKey = 1;
constexpr std::uint64_t kUnixListenerKey = 2;
constexpr std::uint64_t kTcpListenerKey = 3;

constexpr std::size_t kReadChunk = 16 * 1024;
// Compact the read buffer once this much consumed prefix accumulates
// (cheap amortized move instead of per-frame shifting).
constexpr std::size_t kCompactThreshold = 64 * 1024;

}  // namespace

EventLoop::EventLoop(InferenceServer& server) : server_(server) {}

EventLoop::~EventLoop() { stop(); }

void EventLoop::start() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error(std::string("service: epoll_create1: ") +
                             std::strerror(errno));
  }
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (event_fd_ < 0) {
    const int err = errno;
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw std::runtime_error(std::string("service: eventfd: ") +
                             std::strerror(err));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kEventFdKey;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

  // Take over the server's (already bound + listening) fds: flip them
  // nonblocking so a connection that vanishes between epoll readiness and
  // accept() cannot wedge the loop.
  listeners_.clear();
  listeners_.push_back({server_.listen_fd_, false, kUnixListenerKey});
  if (server_.tcp_listen_fd_ >= 0) {
    listeners_.push_back({server_.tcp_listen_fd_, true, kTcpListenerKey});
  }
  for (Listener& l : listeners_) {
    detail::set_nonblocking(l.fd);
    epoll_event lev{};
    lev.events = EPOLLIN;
    lev.data.u64 = l.key;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, l.fd, &lev);
    l.armed = true;
  }

  const std::size_t n = std::max<std::size_t>(1, server_.options_.workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
  loop_thread_ = std::thread([this] { run(); });
}

void EventLoop::stop() {
  if (!loop_thread_.joinable()) return;
  // 1. Stop accepting: the loop closes the listener fds on next wake.
  quiesce_.store(true);
  wake();
  // 2. Drain the worker pool. The scheduler was stopped by the server
  //    before this call, so every async completion has fired; joining the
  //    workers means every completion there will ever be is now posted.
  {
    std::lock_guard lock(jobs_mu_);
    workers_stop_ = true;
  }
  jobs_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  // 3. Grace window: let the loop flush posted completions to peers that
  //    can take them. A peer that cannot drain its response within the
  //    window loses it — exactly as if it had disconnected.
  const Clock::time_point flush_deadline =
      Clock::now() + std::chrono::seconds(2);
  for (;;) {
    {
      std::lock_guard lock(cq_mu_);
      if (completions_.empty()) break;
    }
    if (Clock::now() >= flush_deadline) break;
    wake();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // 4. Tear down: the loop thread closes every connection on exit.
  done_.store(true);
  wake();
  loop_thread_.join();
  {
    std::lock_guard lock(cq_mu_);
    completions_.clear();
  }
  jobs_.clear();
  if (event_fd_ >= 0) ::close(event_fd_);
  event_fd_ = -1;
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  epoll_fd_ = -1;
}

void EventLoop::wake() {
  std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(event_fd_, &one, sizeof(one));
}

void EventLoop::post(Completion&& c) {
  {
    std::lock_guard lock(cq_mu_);
    completions_.push_back(std::move(c));
  }
  wake();
}

void EventLoop::worker_main() {
  // Engine-per-thread, as everywhere else: engines carry scratch state.
  std::unique_ptr<engines::Engine> engine = server_.factory_();
  auto* bolt_engine = dynamic_cast<core::BoltEngine*>(engine.get());
  if (server_.options_.metrics) {
    engine->attach_metrics(&server_.engine_metrics_);
  }
  for (;;) {
    Job job;
    {
      std::unique_lock lock(jobs_mu_);
      jobs_cv_.wait(lock,
                    [this] { return workers_stop_ || !jobs_.empty(); });
      // Drain-then-exit: accepted frames are answered even during stop so
      // the exactly-once contract holds across the shutdown edge.
      if (jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    if (job.tl_enqueued_ns != 0) {
      // Readiness→dispatch latency: the frame was complete and queued at
      // tl_enqueued_ns; a worker only now picked it up.
      util::timeline_record("loop", "dispatch_wait", job.tl_enqueued_ns,
                            util::TraceContext::now_ns() -
                                job.tl_enqueued_ns);
    }
    const std::uint64_t id = job.conn_id;
    server_.process_frame_async(
        job.frame, *engine, bolt_engine,
        [this, id](std::vector<std::uint8_t> payload, bool drop) {
          post({id, std::move(payload), drop});
        });
  }
}

void EventLoop::run() {
  std::vector<epoll_event> events(128);
  bool listeners_closed = false;
  while (!done_.load(std::memory_order_acquire)) {
    const Clock::time_point now = Clock::now();
    if (!listeners_closed) {
      if (quiesce_.load(std::memory_order_acquire)) {
        for (Listener& l : listeners_) {
          if (l.armed) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, l.fd, nullptr);
          ::close(l.fd);
          l.fd = -1;
          l.armed = false;
        }
        listeners_closed = true;
      } else {
        // Re-arm any listener parked by fd-exhaustion backoff.
        for (Listener& l : listeners_) {
          if (l.armed || now < l.rearm_at) continue;
          epoll_event lev{};
          lev.events = EPOLLIN;
          lev.data.u64 = l.key;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, l.fd, &lev);
          l.armed = true;
        }
      }
    }
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()),
                               poll_timeout_ms(now));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone: unrecoverable, fall through to teardown
    }
    const bool tl_on = util::timeline_enabled();
    const std::int64_t wake_ns =
        tl_on && n > 0 ? util::TraceContext::now_ns() : 0;
    for (int i = 0; i < n; ++i) {
      const std::uint64_t key = events[i].data.u64;
      if (key == kEventFdKey) continue;  // drained below
      if (key == kUnixListenerKey || key == kTcpListenerKey) {
        if (listeners_closed) continue;
        for (Listener& l : listeners_) {
          if (l.key == key && l.armed) on_listener(l);
        }
        continue;
      }
      const auto it = conns_.find(key);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      on_conn_event(*it->second, events[i].events);
    }
    if (wake_ns != 0 && util::Timeline::instance().sample()) {
      // One epoll wake: how many fds came ready together and how long
      // dispatching the whole batch took on the loop thread.
      util::timeline_record("loop", "epoll_wake", wake_ns,
                            util::TraceContext::now_ns() - wake_ns,
                            "batch", static_cast<std::uint64_t>(n));
    }
    drain_completions();
    reap_idle(Clock::now());
  }
  // Teardown on the loop thread: nothing else touches conns_, so closing
  // here cannot race an event in flight.
  if (!listeners_closed) {
    for (Listener& l : listeners_) {
      if (l.fd >= 0) ::close(l.fd);
      l.fd = -1;
    }
  }
  const bool record = server_.options_.metrics;
  for (auto& [id, c] : conns_) {
    ::close(c->fd);
    if (record) server_.active_connections_->sub(1);
  }
  conns_.clear();
  idle_lru_.clear();
  conn_count_.store(0, std::memory_order_relaxed);
}

int EventLoop::poll_timeout_ms(Clock::time_point now) const {
  std::int64_t timeout = -1;
  if (!idle_lru_.empty()) {
    const auto it = conns_.find(idle_lru_.front());
    if (it != conns_.end()) {
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          it->second->idle_deadline - now)
                          .count();
      timeout = std::max<std::int64_t>(0, ms + 1);
    }
  }
  for (const Listener& l : listeners_) {
    if (l.armed || l.fd < 0) continue;
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        l.rearm_at - now)
                        .count();
    const std::int64_t until = std::max<std::int64_t>(0, ms + 1);
    timeout = timeout < 0 ? until : std::min(timeout, until);
  }
  if (timeout > std::numeric_limits<int>::max()) timeout = -1;
  return static_cast<int>(timeout);
}

void EventLoop::disarm_listener(Listener& l) {
  if (l.armed) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, l.fd, nullptr);
  l.armed = false;
  l.rearm_at = Clock::now() + std::chrono::milliseconds(l.backoff_ms);
  l.backoff_ms = std::min<std::uint32_t>(l.backoff_ms * 2, 100);
}

void EventLoop::on_listener(Listener& l) {
  const bool record = server_.options_.metrics;
  for (;;) {
    const int fd =
        ::accept4(l.fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      const int err = errno;
      if (err == EAGAIN || err == EWOULDBLOCK) return;  // backlog drained
      if (err == EINTR) continue;
      if (err == ECONNABORTED || err == EPROTO) {
        if (record) server_.accept_errors_->inc();
        continue;
      }
      if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
          err == ENOMEM) {
        // fd exhaustion: shed the head of the backlog via the emergency
        // spare fd, then park the listener — level-triggered epoll would
        // otherwise spin hot on the still-pending backlog.
        if (record) server_.accept_errors_->inc();
        server_.shed_pending_connection(l.fd);
        disarm_listener(l);
        return;
      }
      return;  // fatal (listener shut down)
    }
    l.backoff_ms = 1;
    if (l.tcp) detail::set_tcp_nodelay(fd);
    const std::size_t cap = server_.options_.max_connections;
    if (cap != 0 && conn_count_.load(std::memory_order_relaxed) >= cap) {
      server_.rejected_connections_->inc();
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_id_++;
    conn->tcp = l.tcp;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    if (record) {
      server_.connections_total_->inc();
      (l.tcp ? server_.connections_tcp_ : server_.connections_unix_)->inc();
      server_.active_connections_->add(1);
    }
    conn_count_.fetch_add(1, std::memory_order_relaxed);
    Conn& c = *conn;
    conns_.emplace(c.id, std::move(conn));
    touch_lru(c);
  }
}

void EventLoop::set_interest(Conn& c, bool read, bool write) {
  if (c.want_read == read && c.want_write == write) return;
  c.want_read = read;
  c.want_write = write;
  epoll_event ev{};
  ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
  ev.data.u64 = c.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void EventLoop::touch_lru(Conn& c) {
  const std::uint32_t timeout_ms = server_.options_.idle_timeout_ms;
  if (timeout_ms == 0) return;
  if (c.in_lru) idle_lru_.erase(c.lru);
  idle_lru_.push_back(c.id);
  c.lru = std::prev(idle_lru_.end());
  c.in_lru = true;
  c.idle_deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
}

void EventLoop::drop_lru(Conn& c) {
  if (!c.in_lru) return;
  idle_lru_.erase(c.lru);
  c.in_lru = false;
}

void EventLoop::reap_idle(Clock::time_point now) {
  if (server_.options_.idle_timeout_ms == 0) return;
  const bool record = server_.options_.metrics;
  while (!idle_lru_.empty()) {
    const auto it = conns_.find(idle_lru_.front());
    if (it == conns_.end()) {
      idle_lru_.pop_front();  // defensive; close always unlinks
      continue;
    }
    Conn& c = *it->second;
    if (c.idle_deadline > now) break;
    if (record) server_.idle_timeouts_->inc();
    close_conn(c);
  }
}

void EventLoop::close_conn(Conn& c) {
  drop_lru(c);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  if (server_.options_.metrics) server_.active_connections_->sub(1);
  conn_count_.fetch_sub(1, std::memory_order_relaxed);
  conns_.erase(c.id);  // destroys c — callers return immediately
}

bool EventLoop::on_conn_event(Conn& c, std::uint32_t ev) {
  if (ev & EPOLLIN) {
    if (!read_some(c)) return false;
  } else if (ev & (EPOLLHUP | EPOLLERR)) {
    // No readable data and the peer is gone (or the socket errored):
    // anything still buffered our way can never be delivered.
    close_conn(c);
    return false;
  }
  if (ev & EPOLLOUT) {
    if (!flush_write(c)) return false;
  }
  return true;
}

bool EventLoop::read_some(Conn& c) {
  for (;;) {
    const std::size_t old_size = c.rbuf.size();
    c.rbuf.resize(old_size + kReadChunk);
    const ssize_t n = ::read(c.fd, c.rbuf.data() + old_size, kReadChunk);
    if (n > 0) {
      c.rbuf.resize(old_size + static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < kReadChunk) break;
      continue;
    }
    c.rbuf.resize(old_size);
    if (n == 0) {
      c.peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(c);
    return false;
  }
  if (!parse_frames(c)) return false;
  return settle(c);
}

bool EventLoop::parse_frames(Conn& c) {
  // Serial connections: at most one frame in flight, matching the strict
  // request/response protocol. Reads stay armed while parsing is short of
  // a full frame; they pause (set_interest below) once a frame dispatches.
  while (!c.in_flight) {
    const std::size_t avail = c.rbuf.size() - c.rpos;
    if (avail < sizeof(std::uint32_t)) break;
    std::uint32_t len = 0;
    std::memcpy(&len, c.rbuf.data() + c.rpos, sizeof(len));
    if (len > kMaxFrameBytes) {
      // Same bound as the blocking read_frame: an oversized length prefix
      // is an undecodable peer, drop it.
      close_conn(c);
      return false;
    }
    if (avail - sizeof(len) < len) break;
    Job job;
    job.conn_id = c.id;
    if (util::timeline_enabled() && util::Timeline::instance().sample()) {
      job.tl_enqueued_ns = util::TraceContext::now_ns();
    }
    const auto* base = c.rbuf.data() + c.rpos + sizeof(len);
    job.frame.assign(base, base + len);
    c.rpos += sizeof(len) + len;
    c.in_flight = true;
    drop_lru(c);
    set_interest(c, /*read=*/false, /*write=*/c.want_write);
    {
      std::lock_guard lock(jobs_mu_);
      jobs_.push_back(std::move(job));
    }
    jobs_cv_.notify_one();
  }
  if (c.rpos == c.rbuf.size()) {
    c.rbuf.clear();
    c.rpos = 0;
  } else if (c.rpos >= kCompactThreshold) {
    c.rbuf.erase(c.rbuf.begin(),
                 c.rbuf.begin() + static_cast<std::ptrdiff_t>(c.rpos));
    c.rpos = 0;
  }
  return true;
}

bool EventLoop::settle(Conn& c) {
  if (c.in_flight || c.wpos < c.wbuf.size()) return true;
  if (c.peer_eof) {
    // Clean close after the peer's half-close: every complete frame it
    // sent has been answered and flushed (a trailing partial frame is a
    // truncation — dropped, same as the blocking read path).
    close_conn(c);
    return false;
  }
  set_interest(c, /*read=*/true, /*write=*/false);
  touch_lru(c);
  return true;
}

bool EventLoop::flush_write(Conn& c) {
  while (c.wpos < c.wbuf.size()) {
    const ssize_t n = ::send(c.fd, c.wbuf.data() + c.wpos,
                             c.wbuf.size() - c.wpos, MSG_NOSIGNAL);
    if (n >= 0) {
      c.wpos += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Peer's socket buffer is full: park the remainder and let EPOLLOUT
      // resume it. Reads stay paused until the response is out.
      if (c.park_begin_ns == 0 && util::timeline_enabled() &&
          util::Timeline::instance().sample()) {
        c.park_begin_ns = util::TraceContext::now_ns();
      }
      set_interest(c, /*read=*/false, /*write=*/true);
      return true;
    }
    close_conn(c);  // EPIPE/ECONNRESET: peer vanished mid-response
    return false;
  }
  if (c.park_begin_ns != 0) {
    // The parked response finally drained: the span covers first EAGAIN
    // to last byte accepted by the kernel.
    util::timeline_record("loop", "write_park", c.park_begin_ns,
                          util::TraceContext::now_ns() - c.park_begin_ns);
    c.park_begin_ns = 0;
  }
  c.wbuf.clear();
  c.wpos = 0;
  // Response delivered: serve the next pipelined frame if one is already
  // buffered, otherwise go back to reading/idle.
  if (!parse_frames(c)) return false;
  return settle(c);
}

void EventLoop::drain_completions() {
  std::uint64_t junk = 0;
  [[maybe_unused]] const ssize_t r =
      ::read(event_fd_, &junk, sizeof(junk));
  std::vector<Completion> batch;
  {
    std::lock_guard lock(cq_mu_);
    batch.swap(completions_);
  }
  for (Completion& comp : batch) {
    const auto it = conns_.find(comp.conn_id);
    if (it == conns_.end()) continue;  // connection died while in flight
    Conn& c = *it->second;
    c.in_flight = false;
    if (comp.drop) {
      // Malformed frame: the threaded front end drops the connection
      // without a response; mirror that.
      close_conn(c);
      continue;
    }
    const auto len = static_cast<std::uint32_t>(comp.payload.size());
    std::uint8_t header[sizeof(len)];
    std::memcpy(header, &len, sizeof(len));
    c.wbuf.insert(c.wbuf.end(), header, header + sizeof(len));
    c.wbuf.insert(c.wbuf.end(), comp.payload.begin(), comp.payload.end());
    flush_write(c);
  }
}

}  // namespace bolt::service
