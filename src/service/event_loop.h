// Epoll event-loop front end for InferenceServer (docs/SERVING.md
// "Transports and front ends").
//
// The threaded front end spends one OS thread per connection — fine for
// tens of clients, a scalability wall at thousands (the accept path the
// ROADMAP's "heavy traffic" target trips over first). This front end holds
// every connection as nonblocking-fd state inside one epoll loop:
//
//   loop thread        worker pool (ServerOptions::workers)
//   ───────────        ────────────────────────────────────
//   accept/read ──▶ complete frame ──▶ job queue ──▶ decode + dispatch
//   write/flush ◀── completion queue ◀── eventfd ◀── encoded response
//
// The loop thread never runs inference and never blocks on a peer; workers
// never touch a socket. Scheduler-eligible frames go through
// BatchScheduler::classify_async, so no thread parks on a completion —
// cross-connection tiles can aggregate rows from thousands of connections
// while the pool stays at `workers` threads. Responses reach the peer via
// the completion queue + eventfd wakeup; partial writes re-arm EPOLLOUT.
//
// Connections are serial (one in-flight frame each — reads pause while a
// frame is being served, matching the request/response protocol), and
// idle-timeout reaping uses a uniform-duration LRU list instead of
// SO_RCVTIMEO: every timeout is the same length, so activity order IS
// deadline order and reaping is O(1) per reap.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace bolt::service {

class InferenceServer;

/// One instance per started server (FrontEnd::kEventLoop); owned by
/// InferenceServer, which remains responsible for protocol dispatch and
/// metrics — this class is purely sockets, buffers, and scheduling glue.
class EventLoop {
 public:
  explicit EventLoop(InferenceServer& server);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Takes ownership of the server's listener fds (flips them
  /// nonblocking), spawns the worker pool and the loop thread. Throws on
  /// epoll/eventfd setup failure.
  void start();
  /// Quiesces: closes listeners and connections, drains the worker pool,
  /// joins every thread. Call after BatchScheduler::stop() so async
  /// completions have already been delivered. Idempotent.
  void stop();

  /// Live connections (the event-loop analogue of active handler count).
  std::size_t connection_count() const {
    return conn_count_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    bool tcp = false;
    // Read side: raw bytes accumulate in rbuf; rpos is the parse cursor
    // (frames are length-prefixed, so a frame is complete when
    // rbuf.size() - rpos covers prefix + payload).
    std::vector<std::uint8_t> rbuf;
    std::size_t rpos = 0;
    // Write side: the pending encoded response (+ length prefix); wpos is
    // how much the kernel has taken. Non-empty wbuf ⇒ EPOLLOUT armed.
    std::vector<std::uint8_t> wbuf;
    std::size_t wpos = 0;
    bool in_flight = false;  // frame handed to the pool; reads paused
    bool peer_eof = false;   // half-close: flush what we owe, then close
    bool want_read = true;   // EPOLLIN currently armed
    bool want_write = false; // EPOLLOUT currently armed
    bool in_lru = false;
    std::list<std::uint64_t>::iterator lru;  // valid iff in_lru
    Clock::time_point idle_deadline{};
    // Timeline: when the kernel socket buffer filled and this response
    // parked on EPOLLOUT (0 = not parked / parking not sampled). The
    // span is emitted when the flush finally completes.
    std::int64_t park_begin_ns = 0;
  };

  struct Listener {
    int fd = -1;
    bool tcp = false;
    std::uint64_t key = 0;
    bool armed = false;              // registered with epoll right now
    Clock::time_point rearm_at{};    // when !armed: retry accept here
    std::uint32_t backoff_ms = 1;
  };

  struct Job {
    std::uint64_t conn_id = 0;
    std::vector<std::uint8_t> frame;
    // Timeline: when the complete frame was queued for the worker pool
    // (0 = not sampled). The readiness→dispatch span is emitted by the
    // worker that picks the job up.
    std::int64_t tl_enqueued_ns = 0;
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    std::vector<std::uint8_t> payload;
    bool drop = false;
  };

  void run();
  void worker_main();
  void wake();
  void post(Completion&& c);
  void drain_completions();

  void on_listener(Listener& l);
  void disarm_listener(Listener& l);
  /// Returns false when the connection was destroyed.
  bool on_conn_event(Conn& c, std::uint32_t events);
  bool read_some(Conn& c);
  bool parse_frames(Conn& c);
  bool flush_write(Conn& c);
  /// Close-or-keep decision once a response has fully flushed or EOF was
  /// seen; re-arms reads and the idle LRU when the connection stays.
  bool settle(Conn& c);
  void close_conn(Conn& c);
  void set_interest(Conn& c, bool read, bool write);
  void touch_lru(Conn& c);
  void drop_lru(Conn& c);
  void reap_idle(Clock::time_point now);
  int poll_timeout_ms(Clock::time_point now) const;

  InferenceServer& server_;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> quiesce_{false};
  std::atomic<bool> done_{false};

  std::vector<Listener> listeners_;
  std::uint64_t next_id_ = 16;  // ids below 16 are listener/eventfd keys
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::atomic<std::size_t> conn_count_{0};
  // Idle reaping: uniform timeout ⇒ the least-recently-active connection
  // expires first, so a touch-ordered list scans only actual expiries.
  // Contains exactly the connections that are idle (no in-flight frame,
  // nothing buffered to write). Empty when idle_timeout_ms == 0.
  std::list<std::uint64_t> idle_lru_;

  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<Job> jobs_;
  bool workers_stop_ = false;

  std::mutex cq_mu_;
  std::vector<Completion> completions_;
};

}  // namespace bolt::service
