#include "service/scheduler.h"

#include <algorithm>

#include "util/trace.h"
#include "util/trace_export.h"

namespace bolt::service {
namespace {

std::int64_t to_ns(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

}  // namespace

BatchScheduler::BatchScheduler(
    std::function<std::unique_ptr<engines::Engine>()> factory,
    const SchedulerOptions& options, util::MetricsRegistry& registry,
    bool record)
    : factory_(std::move(factory)), options_(options), record_(record) {
  if (options_.max_batch_size == 0) options_.max_batch_size = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  queue_depth_ = &registry.gauge("scheduler.queue_depth");
  batches_ = &registry.counter("scheduler.batches");
  batch_size_ = &registry.histogram(
      "scheduler.batch_size", util::Histogram::exponential_bounds(1, 2.0, 14));
  queue_wait_us_ = &registry.histogram("scheduler.queue_wait_us");
  shed_ = &registry.counter("scheduler.shed");
  expired_ = &registry.counter("scheduler.expired");
}

BatchScheduler::~BatchScheduler() { stop(); }

void BatchScheduler::start() {
  {
    std::lock_guard lock(mu_);
    if (!stopping_) return;  // already running
    stopping_ = false;
  }
  std::size_t n = options_.workers;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void BatchScheduler::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  // Workers only exit once the queue is empty, so every accepted request
  // has been answered by now.
}

std::size_t BatchScheduler::queue_depth() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

bool BatchScheduler::enqueue(Pending* p, Status& why) {
  p->enqueued = Clock::now();
  p->deadline = options_.deadline_us == 0
                    ? Clock::time_point::max()
                    : p->enqueued + std::chrono::microseconds(
                                        options_.deadline_us);
  {
    std::lock_guard lock(mu_);
    if (stopping_) {
      why = Status::kShutdown;
      return false;
    }
    if (queue_.size() >= options_.queue_capacity) {
      why = Status::kBusy;
      if (record_) shed_->inc();
      return false;
    }
    queue_.push_back(p);
    if (record_) queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
  }
  cv_.notify_one();
  return true;
}

void BatchScheduler::complete(Pending* p, Result r) {
  if (p->done_cb) {
    // Move the callback out first: it owns the in-flight state that keeps
    // p->features alive, and must outlive the record it frees.
    std::function<void(Result)> cb = std::move(p->done_cb);
    delete p;
    cb(r);
    return;
  }
  p->done.set_value(r);
}

void BatchScheduler::classify_async(std::span<const float> features,
                                    util::TraceContext* trace,
                                    std::function<void(Result)> done) {
  auto* p = new Pending;
  p->features = features;
  p->trace = trace;
  p->done_cb = std::move(done);
  Status why;
  if (!enqueue(p, why)) {
    complete(p, {why, -1});
    return;
  }
  // The worker pool now owns answering (and freeing) the record.
}

BatchScheduler::Result BatchScheduler::classify(
    std::span<const float> features, util::TraceContext* trace) {
  Pending p;
  p.features = features;
  p.trace = trace;
  std::future<Result> fut = p.done.get_future();
  Status why;
  if (!enqueue(&p, why)) return {why, -1};
  return fut.get();
}

void BatchScheduler::classify_many(std::span<const float> rows,
                                   std::size_t num_rows,
                                   std::size_t row_stride,
                                   std::span<Result> out,
                                   util::TraceContext* trace) {
  std::vector<Pending> pending(num_rows);
  std::vector<std::future<Result>> futures;
  std::vector<std::size_t> submitted;
  futures.reserve(num_rows);
  submitted.reserve(num_rows);
  for (std::size_t i = 0; i < num_rows; ++i) {
    pending[i].features = {rows.data() + i * row_stride, row_stride};
    pending[i].trace = trace;
    std::future<Result> fut = pending[i].done.get_future();
    Status why;
    if (!enqueue(&pending[i], why)) {
      out[i] = {why, -1};
      continue;
    }
    futures.push_back(std::move(fut));
    submitted.push_back(i);
  }
  for (std::size_t k = 0; k < submitted.size(); ++k) {
    out[submitted[k]] = futures[k].get();
  }
}

void BatchScheduler::worker_loop() {
  const std::unique_ptr<engines::Engine> engine = factory_();
  std::vector<Pending*> tile;
  std::vector<float> rows;
  std::vector<int> classes;
  tile.reserve(options_.max_batch_size);
  for (;;) {
    tile.clear();
    {
      std::unique_lock lock(mu_);
      for (;;) {
        if (queue_.empty()) {
          if (stopping_) return;
          cv_.wait(lock);
          continue;
        }
        // Aggregation policy: run as soon as the tile is full, the head
        // request has waited max_queue_delay_us, or we are draining for
        // shutdown — whichever comes first.
        if (stopping_ || queue_.size() >= options_.max_batch_size) break;
        const Clock::time_point fill_deadline =
            queue_.front()->enqueued +
            std::chrono::microseconds(options_.max_queue_delay_us);
        if (Clock::now() >= fill_deadline) break;
        cv_.wait_until(lock, fill_deadline);
      }
      const std::size_t n =
          std::min(queue_.size(), options_.max_batch_size);
      tile.assign(queue_.begin(),
                  queue_.begin() + static_cast<std::ptrdiff_t>(n));
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(n));
      if (record_) queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
      if (!queue_.empty()) cv_.notify_one();  // hand off to another worker
    }
    run_tile(*engine, tile, rows, classes);
  }
}

void BatchScheduler::run_tile(engines::Engine& engine,
                              std::vector<Pending*>& tile,
                              std::vector<float>& rows,
                              std::vector<int>& classes) {
  const std::size_t arity = engine.num_features();
  const Clock::time_point now = Clock::now();
  // Timeline: sample 1-in-N *tiles*. A sampled tile emits its whole
  // lifecycle — first-enqueue → tile-close (form), kernel, completion —
  // each span carrying the tile's row count.
  const bool tl = util::timeline_enabled() &&
                  util::Timeline::instance().sample();
  if (tl && !tile.empty()) {
    Clock::time_point first = tile.front()->enqueued;
    for (const Pending* p : tile) first = std::min(first, p->enqueued);
    util::timeline_record("sched", "tile_form", to_ns(first),
                          to_ns(now) - to_ns(first), "rows",
                          tile.size());
  }
  rows.clear();
  std::vector<Pending*> live;
  live.reserve(tile.size());
  for (Pending* p : tile) {
    if (record_) {
      queue_wait_us_->record(
          std::chrono::duration<double, std::micro>(now - p->enqueued)
              .count());
    }
    if (p->trace != nullptr) {
      p->trace->add(util::Stage::kQueueWait,
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        now - p->enqueued)
                        .count());
    }
    if (now > p->deadline) {
      if (record_) expired_->inc();
      complete(p, {Status::kExpired, -1});
      continue;
    }
    if (p->features.size() != arity) {
      // Defensive: the server validates arity before submitting, so this
      // only fires on a misuse of the library API.
      complete(p, {Status::kError, -1});
      continue;
    }
    live.push_back(p);
    rows.insert(rows.end(), p->features.begin(), p->features.end());
  }
  if (record_) {
    batches_->inc();
    batch_size_->record(static_cast<double>(tile.size()));
  }
  if (live.empty()) return;
  classes.resize(live.size());
  // Cross-connection trace handoff: the tile runs as one kernel call, so
  // its binarize/scan/table_probe/aggregate spans are recorded once into
  // a tile-level context and merged into each *distinct* requester trace
  // afterwards (a BATCH request's rows share one trace — merging per row
  // would multiply the kernel spans).
  bool any_traced = false;
  for (Pending* p : live) {
    if (p->trace != nullptr) {
      any_traced = true;
      break;
    }
  }
  util::TraceContext tile_trace;
  // A timeline-sampled tile also attaches the tile trace (and arms it) so
  // the kernel's internal Spans emit engine-stage timeline events; the
  // requester-merge below still only runs for genuinely traced requests.
  if (tl) tile_trace.set_timeline(true);
  if (any_traced || tl) engine.attach_trace(&tile_trace);
  const std::int64_t kernel_begin =
      tl ? util::TraceContext::now_ns() : 0;
  try {
    engine.predict_batch(rows, live.size(), arity, classes);
  } catch (const std::exception&) {
    if (any_traced || tl) engine.attach_trace(nullptr);
    // A throwing engine must not leave callers blocked on their futures.
    for (Pending* p : live) complete(p, {Status::kError, -1});
    return;
  }
  const std::int64_t kernel_end = tl ? util::TraceContext::now_ns() : 0;
  if (tl) {
    util::timeline_record("sched", "kernel", kernel_begin,
                          kernel_end - kernel_begin, "rows", live.size());
  }
  if (any_traced || tl) engine.attach_trace(nullptr);
  if (any_traced) {
    std::vector<util::TraceContext*> merged;
    merged.reserve(4);
    for (Pending* p : live) {
      if (p->trace == nullptr) continue;
      if (std::find(merged.begin(), merged.end(), p->trace) != merged.end()) {
        continue;
      }
      merged.push_back(p->trace);
      p->trace->merge(tile_trace);
    }
  }
  for (std::size_t i = 0; i < live.size(); ++i) {
    complete(live[i], {Status::kOk, classes[i]});
  }
  if (tl) {
    util::timeline_record("sched", "complete", kernel_end,
                          util::TraceContext::now_ns() - kernel_end, "rows",
                          live.size());
  }
}

}  // namespace bolt::service
