// Minimal HTTP/1.1 admin endpoint on 127.0.0.1 — just enough HTTP for a
// scraper and a probe, not for the open internet. Routes (exact paths,
// GET and HEAD only; anything else answers 404/405 properly):
//   GET /metrics   Prometheus text exposition of the registry
//   GET /healthz   liveness: 200 "ok" whenever the thread serves
//   GET /readyz    readiness: 200 when the ready hook says yes, else 503
//                  (the server wires "model loaded and front end
//                  accepting"; probes gate rollouts on this)
//   GET /timeline  drains the process timeline rings as Chrome Trace
//                  Event JSON (util/trace_export.h); load in Perfetto
// One accept thread serves requests sequentially — each response is one
// small payload every few seconds, so concurrency would buy nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "util/metrics.h"

namespace bolt::service {

/// Callbacks the owning server injects into the admin surface. All may be
/// null: a null `ready` makes /readyz always 200, a null `timeline`
/// makes /timeline answer 404.
struct AdminHooks {
  /// Runs before each /metrics snapshot (uptime/generation refresh).
  std::function<void()> before_scrape;
  /// Readiness probe: return true once the server can take traffic.
  std::function<bool()> ready;
  /// Produces the /timeline payload (drains the timeline rings).
  std::function<std::string()> timeline;
};

class MetricsHttpServer {
 public:
  /// `port` 0 asks the kernel for an ephemeral port (tests); the bound
  /// port is available from port() after start().
  MetricsHttpServer(util::MetricsRegistry& registry, std::uint16_t port,
                    AdminHooks hooks = {});
  /// Back-compat shape: just the before-scrape callback.
  MetricsHttpServer(util::MetricsRegistry& registry, std::uint16_t port,
                    std::function<void()> before_scrape);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds and spawns the accept thread. Throws std::runtime_error when
  /// the port cannot be bound.
  void start();
  /// Stops accepting and joins the thread. Idempotent.
  void stop();

  /// Port actually bound (valid after start()).
  std::uint16_t port() const { return port_; }

 private:
  void serve_loop();
  void handle(int fd);

  util::MetricsRegistry& registry_;
  AdminHooks hooks_;
  std::uint16_t port_;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
};

/// Blocking one-shot HTTP GET against a local admin endpoint: connects to
/// `host:port`, requests `path`, and returns the response body (headers
/// stripped). The status code lands in `*status` when non-null. Throws
/// std::runtime_error on connect/IO failure. Shared by the `bolt
/// timeline` verb, bolt_loadgen's --timeline-out arm, and tests.
std::string admin_http_get(const std::string& host, std::uint16_t port,
                           const std::string& path, int* status = nullptr,
                           int timeout_ms = 5000);

}  // namespace bolt::service
