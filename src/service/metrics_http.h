// Minimal HTTP/1.1 exposition endpoint: `GET /metrics` answers the
// registry's Prometheus text rendering (util/prometheus.h), anything else
// 404s. One accept thread serves requests sequentially — a scrape is a
// single small response every few seconds, so concurrency would buy
// nothing and cost a pool. Binds 127.0.0.1 only: the exposition carries
// operational detail and this server implements just enough HTTP for a
// scraper, not for the open internet.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "util/metrics.h"

namespace bolt::service {

class MetricsHttpServer {
 public:
  /// `port` 0 asks the kernel for an ephemeral port (tests); the bound
  /// port is available from port() after start(). `before_scrape` (may be
  /// null) runs before each snapshot — the server refreshes its uptime
  /// gauge there.
  MetricsHttpServer(util::MetricsRegistry& registry, std::uint16_t port,
                    std::function<void()> before_scrape = nullptr);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds and spawns the accept thread. Throws std::runtime_error when
  /// the port cannot be bound.
  void start();
  /// Stops accepting and joins the thread. Idempotent.
  void stop();

  /// Port actually bound (valid after start()).
  std::uint16_t port() const { return port_; }

 private:
  void serve_loop();
  void handle(int fd);

  util::MetricsRegistry& registry_;
  std::function<void()> before_scrape_;
  std::uint16_t port_;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
};

}  // namespace bolt::service
