#include "service/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace bolt::service {
namespace {

// A request line is "<method> <path> HTTP/1.1"; ours are tens of bytes.
// Anything past this cap is a misbehaving client and answers 414.
constexpr std::size_t kMaxRequestLine = 2048;

/// Writes the full buffer, swallowing errors — a scraper that hung up
/// mid-response is its own problem, and this thread must keep serving.
void write_all(int fd, const std::string& data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t w = ::send(fd, data.data() + done, data.size() - done,
                             MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;
    }
    done += static_cast<std::size_t>(w);
  }
}

std::string http_response(int code, const char* status,
                          const std::string& body, const char* content_type,
                          bool head, const char* extra_header = nullptr) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + ' ' + status +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size());
  if (extra_header != nullptr) {
    out += "\r\n";
    out += extra_header;
  }
  out += "\r\nConnection: close\r\n\r\n";
  // HEAD: full headers (including the Content-Length a GET would carry),
  // no body.
  if (!head) out += body;
  return out;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(util::MetricsRegistry& registry,
                                     std::uint16_t port, AdminHooks hooks)
    : registry_(registry), hooks_(std::move(hooks)), port_(port) {}

MetricsHttpServer::MetricsHttpServer(util::MetricsRegistry& registry,
                                     std::uint16_t port,
                                     std::function<void()> before_scrape)
    : MetricsHttpServer(registry, port,
                        AdminHooks{std::move(before_scrape), {}, {}}) {}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::start() {
  if (listen_fd_ >= 0) return;  // already running
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("metrics_http: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 8) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("metrics_http: bind/listen 127.0.0.1:" +
                             std::to_string(port_) + ": " + err);
  }
  if (port_ == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
}

void MetricsHttpServer::stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsHttpServer::serve_loop() {
  // Poll with a short timeout so stop() needs no wakeup machinery: the
  // accept loop rechecks the flag every 50 ms, which is instant next to
  // any scrape interval.
  for (;;) {
    if (stopping_.load(std::memory_order_relaxed)) return;
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 50);
    if (r <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::handle(int fd) {
  // Read until the end of the request head. 8 KB bounds a misbehaving
  // client; a scrape request is one line plus a few headers.
  std::string head;
  char buf[1024];
  while (head.size() < 8192 && head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      break;
    }
    head.append(buf, static_cast<std::size_t>(r));
  }
  const std::size_t eol = head.find("\r\n");
  if (eol == std::string::npos || eol > kMaxRequestLine) {
    write_all(fd, http_response(414, "URI Too Long", "request line too long\n",
                                "text/plain; charset=utf-8", false));
    return;
  }
  const std::string request_line = head.substr(0, eol);

  // "<METHOD> <path>[?query] HTTP/..." — exact-path routing (the
  // historical prefix match answered `GET /metricsfoo` with /metrics).
  const std::size_t m_end = request_line.find(' ');
  if (m_end == std::string::npos) {
    write_all(fd, http_response(400, "Bad Request", "malformed request\n",
                                "text/plain; charset=utf-8", false));
    return;
  }
  const std::string method = request_line.substr(0, m_end);
  std::size_t p_end = request_line.find(' ', m_end + 1);
  if (p_end == std::string::npos) p_end = request_line.size();
  std::string path = request_line.substr(m_end + 1, p_end - m_end - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  const bool known_path = path == "/metrics" || path == "/healthz" ||
                          path == "/readyz" || path == "/timeline";
  if (!known_path) {
    write_all(fd, http_response(404, "Not Found", "not found\n",
                                "text/plain; charset=utf-8", false));
    return;
  }
  if (method != "GET" && method != "HEAD") {
    write_all(fd, http_response(405, "Method Not Allowed",
                                "method not allowed\n",
                                "text/plain; charset=utf-8", false,
                                "Allow: GET, HEAD"));
    return;
  }
  const bool is_head = method == "HEAD";

  if (path == "/metrics") {
    if (hooks_.before_scrape) hooks_.before_scrape();
    write_all(fd, http_response(200, "OK", registry_.render_prometheus(),
                                "text/plain; version=0.0.4; charset=utf-8",
                                is_head));
  } else if (path == "/healthz") {
    write_all(fd, http_response(200, "OK", "ok\n",
                                "text/plain; charset=utf-8", is_head));
  } else if (path == "/readyz") {
    const bool ready = !hooks_.ready || hooks_.ready();
    if (ready) {
      write_all(fd, http_response(200, "OK", "ready\n",
                                  "text/plain; charset=utf-8", is_head));
    } else {
      write_all(fd, http_response(503, "Service Unavailable", "not ready\n",
                                  "text/plain; charset=utf-8", is_head));
    }
  } else {  // /timeline
    if (!hooks_.timeline) {
      write_all(fd, http_response(404, "Not Found",
                                  "timeline not enabled\n",
                                  "text/plain; charset=utf-8", is_head));
      return;
    }
    write_all(fd, http_response(200, "OK", hooks_.timeline(),
                                "application/json; charset=utf-8",
                                is_head));
  }
}

std::string admin_http_get(const std::string& host, std::uint16_t port,
                           const std::string& path, int* status,
                           int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("admin_http_get: socket: ") +
                             std::strerror(errno));
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<long>(timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("admin_http_get: bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("admin_http_get: connect " + host + ':' +
                             std::to_string(port) + ": " + err);
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  write_all(fd, req);
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    resp.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  const std::size_t head_end = resp.find("\r\n\r\n");
  if (head_end == std::string::npos || resp.rfind("HTTP/", 0) != 0) {
    throw std::runtime_error("admin_http_get: malformed response");
  }
  if (status != nullptr) {
    const std::size_t sp = resp.find(' ');
    *status = sp == std::string::npos
                  ? 0
                  : std::atoi(resp.c_str() + sp + 1);
  }
  return resp.substr(head_end + 4);
}

}  // namespace bolt::service
