#include "service/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace bolt::service {
namespace {

/// Writes the full buffer, swallowing errors — a scraper that hung up
/// mid-response is its own problem, and this thread must keep serving.
void write_all(int fd, const std::string& data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t w = ::send(fd, data.data() + done, data.size() - done,
                             MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;
    }
    done += static_cast<std::size_t>(w);
  }
}

std::string http_response(int code, const char* status,
                          const std::string& body,
                          const char* content_type) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + ' ' + status +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(util::MetricsRegistry& registry,
                                     std::uint16_t port,
                                     std::function<void()> before_scrape)
    : registry_(registry), before_scrape_(std::move(before_scrape)),
      port_(port) {}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::start() {
  if (listen_fd_ >= 0) return;  // already running
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("metrics_http: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 8) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("metrics_http: bind/listen 127.0.0.1:" +
                             std::to_string(port_) + ": " + err);
  }
  if (port_ == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
}

void MetricsHttpServer::stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsHttpServer::serve_loop() {
  // Poll with a short timeout so stop() needs no wakeup machinery: the
  // accept loop rechecks the flag every 50 ms, which is instant next to
  // any scrape interval.
  for (;;) {
    if (stopping_.load(std::memory_order_relaxed)) return;
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 50);
    if (r <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::handle(int fd) {
  // Read until the end of the request head. 8 KB bounds a misbehaving
  // client; a scrape request is one line plus a few headers.
  std::string head;
  char buf[1024];
  while (head.size() < 8192 && head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      break;
    }
    head.append(buf, static_cast<std::size_t>(r));
  }
  const std::size_t eol = head.find("\r\n");
  const std::string request_line =
      eol == std::string::npos ? head : head.substr(0, eol);
  if (request_line.rfind("GET /metrics", 0) == 0) {
    if (before_scrape_) before_scrape_();
    write_all(fd, http_response(
                      200, "OK", registry_.render_prometheus(),
                      "text/plain; version=0.0.4; charset=utf-8"));
  } else {
    write_all(fd, http_response(404, "Not Found", "not found\n",
                                "text/plain; charset=utf-8"));
  }
}

}  // namespace bolt::service
