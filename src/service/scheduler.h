// Dynamic-batching request scheduler: decouples connection I/O from
// inference so concurrent single-row CLASSIFY requests from *different*
// connections reach the engine's amortized batch kernel together.
//
// Connection handlers enqueue requests (a borrowed feature span plus a
// completion slot) into a bounded MPMC queue; a small pool of inference
// workers drains the queue into tiles of up to `max_batch_size` rows —
// waiting at most `max_queue_delay_us` for a tile to fill — and answers
// every request in the tile with one `predict_batch` call. Results are
// bit-identical to the per-row path by the batch kernel's contract.
//
// Overload never blocks the accept loop or a connection handler forever:
//   - a full queue sheds the request immediately (Status::kBusy);
//   - a request whose deadline passes while queued is answered
//     Status::kExpired without running inference;
//   - stop() drains everything already accepted, then rejects new
//     submissions with Status::kShutdown.
// Every submitted request is answered exactly once.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "baselines/engine.h"
#include "util/metrics.h"

namespace bolt::service {

/// Tunables for the dynamic-batching scheduler (docs/SERVING.md).
struct SchedulerOptions {
  /// Off by default: the server then runs inference on the connection
  /// handler thread exactly as before.
  bool enabled = false;
  /// Largest tile handed to predict_batch in one call.
  std::size_t max_batch_size = 64;
  /// Longest a queued request may wait for its tile to fill before the
  /// worker runs a partial tile (latency bound under light load).
  std::uint32_t max_queue_delay_us = 200;
  /// Bounded queue: a submit beyond this sheds with Status::kBusy instead
  /// of blocking the connection handler.
  std::size_t queue_capacity = 1024;
  /// Per-request deadline measured from enqueue; a request still queued
  /// past it is answered Status::kExpired, never silently computed.
  /// 0 disables deadlines.
  std::uint32_t deadline_us = 0;
  /// Inference worker threads (each owns one engine from the factory).
  /// 0 = hardware concurrency.
  std::size_t workers = 0;
};

/// The scheduler. Thread-safe: any number of threads may call classify /
/// classify_many concurrently between start() and stop().
class BatchScheduler {
 public:
  enum class Status : std::uint8_t {
    kOk,        ///< classified; Result::predicted_class is valid
    kBusy,      ///< shed: queue full at submit time
    kExpired,   ///< deadline passed while queued; not computed
    kShutdown,  ///< submitted after stop(); not computed
    kError,     ///< engine threw or row arity mismatched
  };

  struct Result {
    Status status = Status::kShutdown;
    std::int32_t predicted_class = -1;
  };

  /// The factory is invoked once per worker thread (engines carry scratch
  /// state and are not shared). Metrics are registered in `registry` under
  /// the `scheduler.` prefix; `record` mirrors ServerOptions::metrics.
  BatchScheduler(std::function<std::unique_ptr<engines::Engine>()> factory,
                 const SchedulerOptions& options,
                 util::MetricsRegistry& registry, bool record);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Spawns the worker pool. Submissions before start() are kShutdown.
  void start();
  /// Drains the queue (every accepted request is answered), joins the
  /// workers, and rejects later submissions with kShutdown. Idempotent.
  void stop();

  /// Blocking: enqueues one row and waits for its tile to be classified.
  /// `features` must stay alive until this returns (it is borrowed, not
  /// copied, until the worker gathers the tile) and must match the
  /// engine's arity — the server validates before submitting.
  ///
  /// When `trace` is non-null the worker records the row's queue wait
  /// into it and merges the tile's kernel spans (binarize/scan/
  /// table_probe/aggregate) across the cross-connection batch boundary:
  /// the rows batched together share one tile-level context, merged once
  /// into each distinct requester's trace. `trace` must stay alive until
  /// this returns.
  Result classify(std::span<const float> features,
                  util::TraceContext* trace = nullptr);

  /// Enqueues `num_rows` rows (row i at rows[i * row_stride]) as
  /// independent requests sharing the queue with every other connection,
  /// then waits for all of them. Rows shed by backpressure are answered
  /// kBusy individually; the rest proceed. A non-null `trace` is shared
  /// by every row of the call (per-row queue waits accumulate; each
  /// tile's kernel spans merge once per tile).
  void classify_many(std::span<const float> rows, std::size_t num_rows,
                     std::size_t row_stride, std::span<Result> out,
                     util::TraceContext* trace = nullptr);

  /// Non-blocking submission for the event-loop front end: enqueues one row
  /// and returns immediately; `done` is invoked exactly once with the
  /// verdict — inline when the submission is shed (kBusy/kShutdown),
  /// otherwise later on a scheduler worker thread. No thread ever parks on
  /// the completion, so cross-connection tiles can grow past the caller's
  /// thread count. `features` and `trace` are borrowed and must stay alive
  /// until `done` runs (the caller keeps the decoded request in its
  /// in-flight record).
  void classify_async(std::span<const float> features,
                      util::TraceContext* trace,
                      std::function<void(Result)> done);

  /// Requests currently queued (not yet gathered into a tile).
  std::size_t queue_depth() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::span<const float> features;  // borrowed from the submitting caller
    Clock::time_point enqueued;
    Clock::time_point deadline;  // Clock::time_point::max() = none
    util::TraceContext* trace = nullptr;  // borrowed; null = untraced
    std::promise<Result> done;
    /// Async submissions (classify_async) answer through this callback
    /// instead of the promise; the record is then heap-owned and freed by
    /// complete(). Blocking submissions leave it empty.
    std::function<void(Result)> done_cb;
  };

  /// Answers `p` exactly once: invokes done_cb and frees the heap-owned
  /// record (async path) or fulfils the promise (blocking path).
  static void complete(Pending* p, Result r);

  /// Returns false (with `why` set) when shedding; on success the worker
  /// pool owns answering `p->done`.
  bool enqueue(Pending* p, Status& why);
  void worker_loop();
  void run_tile(engines::Engine& engine, std::vector<Pending*>& tile,
                std::vector<float>& rows, std::vector<int>& classes);

  std::function<std::unique_ptr<engines::Engine>()> factory_;
  SchedulerOptions options_;
  bool record_ = true;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending*> queue_;
  bool stopping_ = true;  // start() flips to false
  std::vector<std::thread> workers_;

  // Registry-owned instrumentation (docs/OBSERVABILITY.md).
  util::Gauge* queue_depth_ = nullptr;       // scheduler.queue_depth
  util::Counter* batches_ = nullptr;         // scheduler.batches
  util::Histogram* batch_size_ = nullptr;    // scheduler.batch_size
  util::Histogram* queue_wait_us_ = nullptr; // scheduler.queue_wait_us
  util::Counter* shed_ = nullptr;            // scheduler.shed
  util::Counter* expired_ = nullptr;         // scheduler.expired
};

}  // namespace bolt::service
