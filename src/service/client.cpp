#include "service/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "service/net.h"
#include "service/unix_socket.h"

namespace bolt::service {
namespace {

using Clock = std::chrono::steady_clock;

/// A connect failure worth retrying while the budget lasts: the socket
/// file is not there yet (server still starting) or exists but nobody is
/// accepting (server binding, or a stale file from a previous run that a
/// starting server is about to replace).
bool retryable_connect_errno(int err) {
  return err == ENOENT || err == ECONNREFUSED;
}

/// One connect attempt against either transport. Returns the connected fd,
/// or -1 with errno preserved.
int try_connect(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    const int fd = detail::make_unix_socket();
    sockaddr_un addr = detail::make_addr(ep.path);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return fd;
    }
    const int err = errno;
    ::close(fd);
    errno = err;
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("service: tcp socket: ") +
                             std::strerror(errno));
  }
  sockaddr_in addr = detail::make_inet_addr(ep.host, ep.port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    detail::set_tcp_nodelay(fd);
    return fd;
  }
  const int err = errno;
  ::close(fd);
  errno = err;
  return -1;
}

int connect_with_retry(const Endpoint& ep, const ClientOptions& opts,
                       std::uint32_t& attempts) {
  const Clock::time_point give_up =
      Clock::now() + std::chrono::milliseconds(opts.connect_timeout_ms);
  std::uint32_t backoff_ms = std::max<std::uint32_t>(1, opts.connect_backoff_ms);
  attempts = 0;
  for (;;) {
    ++attempts;
    const int fd = try_connect(ep);
    if (fd >= 0) return fd;
    const int err = errno;
    if (!retryable_connect_errno(err) || Clock::now() >= give_up) {
      throw std::runtime_error(std::string("service: connect ") +
                               ep.describe() + ": " + std::strerror(err) +
                               " (after " + std::to_string(attempts) +
                               " attempt" + (attempts == 1 ? "" : "s") + ")");
    }
    // Never sleep past the deadline: the final attempt happens as close to
    // the budget's edge as the backoff grid allows.
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        give_up - Clock::now());
    const auto sleep_ms = std::min<std::int64_t>(
        backoff_ms, std::max<std::int64_t>(1, remaining.count()));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms = std::min<std::uint32_t>(backoff_ms * 2, 100);
  }
}

void set_io_deadline(int fd, std::uint32_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<long>(timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

Endpoint Endpoint::unix_socket(std::string socket_path) {
  Endpoint ep;
  ep.kind = Kind::kUnix;
  ep.path = std::move(socket_path);
  return ep;
}

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint ep;
  ep.kind = Kind::kTcp;
  ep.host = std::move(host);
  ep.port = port;
  return ep;
}

Endpoint Endpoint::parse_tcp(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  const std::string host =
      colon == std::string::npos ? "" : spec.substr(0, colon);
  const std::string port_str =
      colon == std::string::npos ? spec : spec.substr(colon + 1);
  if (port_str.empty() ||
      port_str.find_first_not_of("0123456789") != std::string::npos) {
    throw std::runtime_error("service: bad tcp endpoint (want host:port): " +
                             spec);
  }
  const unsigned long port = std::stoul(port_str);
  if (port == 0 || port > 65535) {
    throw std::runtime_error("service: tcp port out of range: " + spec);
  }
  return tcp(host, static_cast<std::uint16_t>(port));
}

std::string Endpoint::describe() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + (host.empty() ? std::string("127.0.0.1") : host) + ":" +
         std::to_string(port);
}

InferenceClient::InferenceClient(const std::string& socket_path)
    : InferenceClient(socket_path, ClientOptions{}) {}

InferenceClient::InferenceClient(const std::string& socket_path,
                                 const ClientOptions& opts)
    : InferenceClient(Endpoint::unix_socket(socket_path), opts) {}

InferenceClient::InferenceClient(const Endpoint& endpoint)
    : InferenceClient(endpoint, ClientOptions{}) {}

InferenceClient::InferenceClient(const Endpoint& endpoint,
                                 const ClientOptions& opts) {
  fd_ = connect_with_retry(endpoint, opts, connect_attempts_);
  if (opts.io_timeout_ms > 0) set_io_deadline(fd_, opts.io_timeout_ms);
}

InferenceClient::~InferenceClient() {
  if (fd_ >= 0) ::close(fd_);
}

Response InferenceClient::classify(std::span<const float> features,
                                   bool explain) {
  Request req;
  req.flags = explain ? kFlagExplain : 0;
  req.features.assign(features.begin(), features.end());
  buf_.clear();
  encode_request(req, buf_);
  write_frame(fd_, buf_);
  if (!read_frame(fd_, buf_)) {
    throw std::runtime_error("service: server closed connection");
  }
  return decode_response(buf_);
}

Response InferenceClient::classify_traced(std::span<const float> features) {
  Request req;
  req.flags = kFlagTrace;
  req.features.assign(features.begin(), features.end());
  buf_.clear();
  encode_request(req, buf_);
  write_frame(fd_, buf_);
  if (!read_frame(fd_, buf_)) {
    throw std::runtime_error("service: server closed connection");
  }
  return decode_response(buf_);
}

std::string InferenceClient::slow(bool json) {
  SlowRequest req;
  req.flags = json ? kSlowFlagJson : 0;
  buf_.clear();
  encode_slow_request(req, buf_);
  write_frame(fd_, buf_);
  if (!read_frame(fd_, buf_)) {
    throw std::runtime_error("service: server closed connection");
  }
  return decode_slow_response(buf_).body;
}

std::vector<std::int32_t> InferenceClient::classify_batch(
    std::span<const float> rows, std::size_t num_rows,
    std::size_t row_stride) {
  BatchRequest req;
  req.features.assign(rows.begin(),
                      rows.begin() + static_cast<std::ptrdiff_t>(
                                         num_rows * row_stride));
  req.row_offsets.resize(num_rows + 1);
  for (std::size_t i = 0; i <= num_rows; ++i) {
    req.row_offsets[i] = static_cast<std::uint32_t>(i * row_stride);
  }
  buf_.clear();
  encode_batch_request(req, buf_);
  write_frame(fd_, buf_);
  if (!read_frame(fd_, buf_)) {
    throw std::runtime_error("service: server closed connection");
  }
  BatchResponse resp = decode_batch_response(buf_);
  if (resp.classes.size() != num_rows) {
    throw std::runtime_error("service: batch response row count mismatch");
  }
  return std::move(resp.classes);
}

std::string InferenceClient::stats(bool json) {
  StatsRequest req;
  req.flags = json ? kStatsFlagJson : 0;
  buf_.clear();
  encode_stats_request(req, buf_);
  write_frame(fd_, buf_);
  if (!read_frame(fd_, buf_)) {
    throw std::runtime_error("service: server closed connection");
  }
  return decode_stats_response(buf_).body;
}

}  // namespace bolt::service
