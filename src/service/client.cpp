#include "service/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "service/unix_socket.h"

namespace bolt::service {
namespace {

using Clock = std::chrono::steady_clock;

/// A connect failure worth retrying while the budget lasts: the socket
/// file is not there yet (server still starting) or exists but nobody is
/// accepting (server binding, or a stale file from a previous run that a
/// starting server is about to replace).
bool retryable_connect_errno(int err) {
  return err == ENOENT || err == ECONNREFUSED;
}

int connect_with_retry(const std::string& path, const ClientOptions& opts,
                       std::uint32_t& attempts) {
  const Clock::time_point give_up =
      Clock::now() + std::chrono::milliseconds(opts.connect_timeout_ms);
  std::uint32_t backoff_ms = std::max<std::uint32_t>(1, opts.connect_backoff_ms);
  attempts = 0;
  for (;;) {
    const int fd = detail::make_unix_socket();
    sockaddr_un addr = detail::make_addr(path);
    ++attempts;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    const int err = errno;
    ::close(fd);
    if (!retryable_connect_errno(err) || Clock::now() >= give_up) {
      throw std::runtime_error(std::string("service: connect ") + path +
                               ": " + std::strerror(err) + " (after " +
                               std::to_string(attempts) + " attempt" +
                               (attempts == 1 ? "" : "s") + ")");
    }
    // Never sleep past the deadline: the final attempt happens as close to
    // the budget's edge as the backoff grid allows.
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        give_up - Clock::now());
    const auto sleep_ms = std::min<std::int64_t>(
        backoff_ms, std::max<std::int64_t>(1, remaining.count()));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms = std::min<std::uint32_t>(backoff_ms * 2, 100);
  }
}

void set_io_deadline(int fd, std::uint32_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<long>(timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

InferenceClient::InferenceClient(const std::string& socket_path)
    : InferenceClient(socket_path, ClientOptions{}) {}

InferenceClient::InferenceClient(const std::string& socket_path,
                                 const ClientOptions& opts) {
  fd_ = connect_with_retry(socket_path, opts, connect_attempts_);
  if (opts.io_timeout_ms > 0) set_io_deadline(fd_, opts.io_timeout_ms);
}

InferenceClient::~InferenceClient() {
  if (fd_ >= 0) ::close(fd_);
}

Response InferenceClient::classify(std::span<const float> features,
                                   bool explain) {
  Request req;
  req.flags = explain ? kFlagExplain : 0;
  req.features.assign(features.begin(), features.end());
  buf_.clear();
  encode_request(req, buf_);
  write_frame(fd_, buf_);
  if (!read_frame(fd_, buf_)) {
    throw std::runtime_error("service: server closed connection");
  }
  return decode_response(buf_);
}

Response InferenceClient::classify_traced(std::span<const float> features) {
  Request req;
  req.flags = kFlagTrace;
  req.features.assign(features.begin(), features.end());
  buf_.clear();
  encode_request(req, buf_);
  write_frame(fd_, buf_);
  if (!read_frame(fd_, buf_)) {
    throw std::runtime_error("service: server closed connection");
  }
  return decode_response(buf_);
}

std::string InferenceClient::slow(bool json) {
  SlowRequest req;
  req.flags = json ? kSlowFlagJson : 0;
  buf_.clear();
  encode_slow_request(req, buf_);
  write_frame(fd_, buf_);
  if (!read_frame(fd_, buf_)) {
    throw std::runtime_error("service: server closed connection");
  }
  return decode_slow_response(buf_).body;
}

std::vector<std::int32_t> InferenceClient::classify_batch(
    std::span<const float> rows, std::size_t num_rows,
    std::size_t row_stride) {
  BatchRequest req;
  req.features.assign(rows.begin(),
                      rows.begin() + static_cast<std::ptrdiff_t>(
                                         num_rows * row_stride));
  req.row_offsets.resize(num_rows + 1);
  for (std::size_t i = 0; i <= num_rows; ++i) {
    req.row_offsets[i] = static_cast<std::uint32_t>(i * row_stride);
  }
  buf_.clear();
  encode_batch_request(req, buf_);
  write_frame(fd_, buf_);
  if (!read_frame(fd_, buf_)) {
    throw std::runtime_error("service: server closed connection");
  }
  BatchResponse resp = decode_batch_response(buf_);
  if (resp.classes.size() != num_rows) {
    throw std::runtime_error("service: batch response row count mismatch");
  }
  return std::move(resp.classes);
}

std::string InferenceClient::stats(bool json) {
  StatsRequest req;
  req.flags = json ? kStatsFlagJson : 0;
  buf_.clear();
  encode_stats_request(req, buf_);
  write_frame(fd_, buf_);
  if (!read_frame(fd_, buf_)) {
    throw std::runtime_error("service: server closed connection");
  }
  return decode_stats_response(buf_).body;
}

}  // namespace bolt::service
