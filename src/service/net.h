// Internal TCP and fd-mode helpers shared by the server, the event-loop
// front end, and the client TUs. The UNIX-domain counterparts live in
// unix_socket.h. Not part of the public service API.
#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace bolt::service::detail {

inline void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error(std::string("service: fcntl O_NONBLOCK: ") +
                             std::strerror(errno));
  }
}

/// Best effort: latency matters more than the syscall result here (the
/// protocol is strictly request/response, so Nagle-delayed small frames
/// would stack an RTT onto every round trip).
inline void set_tcp_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// IPv4 only, by design: the TCP transport exists for same-host / same-rack
/// clients that cannot share a filesystem namespace with the server.
/// "localhost" and "" resolve to loopback without touching DNS.
inline in_addr parse_ipv4(const std::string& host) {
  const std::string h =
      (host.empty() || host == "localhost") ? "127.0.0.1" : host;
  in_addr a{};
  if (::inet_pton(AF_INET, h.c_str(), &a) != 1) {
    throw std::runtime_error("service: not an IPv4 address: " + host);
  }
  return a;
}

inline sockaddr_in make_inet_addr(const std::string& host,
                                  std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr = parse_ipv4(host);
  return addr;
}

/// Creates, binds and listens a TCP socket on 127.0.0.1:`port` (0 = kernel-
/// assigned; the bound port is written to `bound_port` either way).
/// SO_REUSEADDR so a restarted server rebinds through TIME_WAIT. Closes the
/// fd before throwing — no caller cleanup needed on failure.
inline int make_tcp_listener(std::uint16_t port, int backlog,
                             std::uint16_t& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("service: tcp socket: ") +
                             std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_inet_addr("127.0.0.1", port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("service: tcp bind: ") +
                             std::strerror(err));
  }
  if (::listen(fd, backlog) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("service: tcp listen: ") +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("service: tcp getsockname: ") +
                             std::strerror(err));
  }
  bound_port = ntohs(bound.sin_port);
  return fd;
}

}  // namespace bolt::service::detail
