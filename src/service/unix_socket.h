// Internal UNIX-domain-socket helpers shared by the server and client TUs.
// Not part of the public service API.
#pragma once

#include <sys/socket.h>
#include <sys/un.h>

#include <cstring>
#include <stdexcept>
#include <string>

namespace bolt::service::detail {

inline int make_unix_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("service: socket: ") +
                             std::strerror(errno));
  }
  return fd;
}

inline sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw std::runtime_error("service: socket path too long");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace bolt::service::detail
