// The recombined lookup table (paper §4.1 end, §4.3, §4.4, Figure 6).
//
// Every cluster's small lookup table is hashed into ONE big table keyed by
// (dictionary entry ID, address bits). Requirements from the paper:
//   - conflict-free for all inserted keys (so a probe is exactly one
//     memory access, no probing loops and no pointer chasing);
//   - each slot carries the entry ID of the dictionary entry that owns it,
//     so false positives (inputs matching an entry's common features but
//     no path in the entry) are detected at lookup time.
//
// §4.4's correctness argument: a true-positive input's address is always
// inserted (don't-care expansion covers every combination of unconstrained
// uncommon features), and a false positive's address is never inserted for
// that entry — so "is (entry_id, address) in the table?" exactly separates
// them. We offer two slot-verification modes:
//   kExact: the slot stores the full key; classification equals plain
//           traversal bit-for-bit (the default, and what the safety tests
//           assert).
//   kByte:  the slot stores entry_id mod 256 only — the paper's §5 layout,
//           which trades a ~2^-buckets error probability for 1 byte/slot.
//           Exposed for the Figure 8 accounting and the ablation bench.
//
// Two conflict-free construction strategies (ablation §4.4):
//   kDisplacement: CHD-style two-level hashing — a small displacement
//           array, guaranteed success, table stays near 2^ceil(log2 n).
//   kSeedSearch: search a global seed making h(key) collision-free,
//           doubling the table until one exists (no displacement array
//           read on lookup, but the table can grow toward n^2 slots).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/hash.h"
#include "util/vec_view.h"

namespace bolt::core {

enum class TableStrategy { kDisplacement, kSeedSearch };
enum class IdCheck { kExact, kByte };

struct TableConfig {
  TableStrategy strategy = TableStrategy::kDisplacement;
  IdCheck id_check = IdCheck::kExact;
  /// Target load factor for the displacement strategy.
  double max_load = 0.5;
  /// Seed-search gives up and doubles after this many seeds per size.
  std::size_t seeds_per_size = 64;
  /// Absolute cap on table slots (throws if exceeded).
  std::size_t max_slots = std::size_t{1} << 28;
};

struct TableEntry {
  std::uint32_t entry_id;
  std::uint64_t address;
  std::uint32_t result_idx;
};

/// Immutable conflict-free hash table built once from all cluster tables.
class RecombinedTable {
 public:
  RecombinedTable() = default;

  /// Builds the table. Keys (entry_id, address) must be distinct.
  static RecombinedTable build(const std::vector<TableEntry>& entries,
                               const TableConfig& cfg);

  /// One-memory-access probe. Returns the result-pool index, or nullopt if
  /// the slot does not belong to (entry_id, address) — i.e. a detected
  /// false positive or an empty slot.
  std::optional<std::uint32_t> find(std::uint32_t entry_id,
                                    std::uint64_t address) const {
    return probe_slot(slot_of(entry_id, address), entry_id, address);
  }

  /// Probe of an already-computed slot (lets callers that need the slot
  /// index for partition routing or tracing avoid hashing twice).
  std::optional<std::uint32_t> probe_slot(std::size_t slot,
                                          std::uint32_t entry_id,
                                          std::uint64_t address) const {
    const std::uint32_t r = result_idx_[slot];
    if (r == kEmpty) return std::nullopt;
    if (id_check_ == IdCheck::kExact) {
      if (keys_[slot] != pack_key(entry_id, address)) return std::nullopt;
    } else {
      if (id8_[slot] != static_cast<std::uint8_t>(entry_id)) {
        return std::nullopt;
      }
    }
    return r;
  }

  /// Slot index for a key (used by the parallel engine to route lookups to
  /// the core owning that table partition, Figure 4).
  ///
  /// One SplitMix64 round over the packed key; the displacement strategy
  /// adds a double-hashing step `(h + d * h2)` with odd `h2` so every
  /// displacement value permutes the slot space (CHD).
  std::size_t slot_of(std::uint32_t entry_id, std::uint64_t address) const {
    const std::uint64_t h = key_hash(entry_id, address, seed_);
    if (strategy_ == TableStrategy::kSeedSearch) {
      return static_cast<std::size_t>(h & slot_mask_);
    }
    const std::uint32_t d = displacement_[h & bucket_mask_];
    return displaced_slot(h, d, slot_mask_);
  }

  /// Hints the cache lines probe_slot(slot, ...) will touch (slot payload
  /// plus the verification key). The batch kernel issues these a window
  /// ahead so a tile's probes — serial dependent misses in the per-row
  /// path — resolve as overlapped in-flight loads.
  void prefetch_slot(std::size_t slot) const {
    __builtin_prefetch(&result_idx_[slot]);
    if (id_check_ == IdCheck::kExact) {
      __builtin_prefetch(&keys_[slot]);
    } else {
      __builtin_prefetch(&id8_[slot]);
    }
  }

  std::size_t num_slots() const { return result_idx_.size(); }
  std::size_t num_entries() const { return num_entries_; }
  TableStrategy strategy() const { return strategy_; }
  IdCheck id_check() const { return id_check_; }

  /// Resident bytes of the probe-side structures.
  std::size_t memory_bytes() const;

  /// Address of the slot array cell for archsim tracing.
  const void* slot_address(std::size_t slot) const {
    return &result_idx_[slot];
  }

  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  /// Binary (de)serialization; part of the Bolt artifact format.
  void save(std::ostream& out) const;
  static RecombinedTable load(std::istream& in);

  /// Scalar header fields the v2 artifact stores in its meta section.
  struct Scalars {
    std::uint32_t strategy;
    std::uint32_t id_check;
    std::uint64_t seed;
    std::uint64_t num_entries;
    std::uint32_t slot_mask;
    std::uint32_t bucket_mask;
  };
  Scalars scalars() const {
    return {static_cast<std::uint32_t>(strategy_),
            static_cast<std::uint32_t>(id_check_),
            seed_,
            num_entries_,
            slot_mask_,
            bucket_mask_};
  }
  /// The probe-side arrays as spans (v2 pack writer / mapped loader).
  struct Views {
    std::span<const std::uint32_t> displacement;
    std::span<const std::uint32_t> result_idx;
    std::span<const std::uint64_t> keys;
    std::span<const std::uint8_t> id8;
  };
  Views pools() const { return {displacement_, result_idx_, keys_, id8_}; }
  /// Construct over borrowed (mmap'd) arrays with full load() validation;
  /// the spans must outlive the table (src/bolt/artifact/).
  static RecombinedTable from_views(const Scalars& s, const Views& v);

  /// Heap bytes owned by the arrays (0 when fully mapped).
  std::size_t owned_bytes() const {
    return displacement_.owned_bytes() + result_idx_.owned_bytes() +
           keys_.owned_bytes() + id8_.owned_bytes();
  }

  /// Throws unless every occupied slot's result index is < pool_size
  /// (artifact-load validation).
  void validate_result_indices(std::size_t pool_size) const {
    // Branchless accumulation: the slot array is the largest table section
    // and this runs on the v2 mmap cold-start path — a per-element throw
    // branch defeats vectorization. kEmpty is the u32 max, so clamping the
    // pool size to kEmpty makes "r != kEmpty && r >= pool_size" a single
    // range test.
    const std::uint32_t limit =
        pool_size >= kEmpty ? kEmpty
                            : static_cast<std::uint32_t>(pool_size);
    std::uint32_t bad = 0;
    for (std::uint32_t r : result_idx_) {
      bad |= static_cast<std::uint32_t>(r != kEmpty) &
             static_cast<std::uint32_t>(r >= limit);
    }
    if (bad != 0) {
      throw std::runtime_error("table: result index out of range");
    }
  }

 private:
  static constexpr std::uint64_t pack_key(std::uint32_t entry_id,
                                          std::uint64_t address) {
    // Addresses are < 2^max_table_bits <= 2^63 - entry bits; fold the entry
    // id into the top bits. Collisions between packed keys of distinct
    // (id, address) pairs are impossible for address < 2^40, id < 2^24,
    // which build() validates.
    return (static_cast<std::uint64_t>(entry_id) << 40) ^ address;
  }

  static constexpr std::uint64_t key_hash(std::uint32_t entry_id,
                                          std::uint64_t address,
                                          std::uint64_t seed) {
    return util::mix64(pack_key(entry_id, address) ^ seed);
  }

  static constexpr std::size_t displaced_slot(std::uint64_t h, std::uint32_t d,
                                              std::uint32_t slot_mask) {
    const std::uint64_t h2 = (h >> 32) | 1;  // odd => permutes mod 2^k
    return static_cast<std::size_t>((h + d * h2) & slot_mask);
  }

  /// Structural validation shared by load() and from_views().
  void validate() const;

  TableStrategy strategy_ = TableStrategy::kDisplacement;
  IdCheck id_check_ = IdCheck::kExact;
  std::uint64_t seed_ = 0;
  std::size_t num_entries_ = 0;
  std::uint32_t slot_mask_ = 0;
  std::uint32_t bucket_mask_ = 0;          // displacement only
  util::VecOrView<std::uint32_t> displacement_;  // displacement only
  util::VecOrView<std::uint32_t> result_idx_;    // kEmpty when unused
  util::VecOrView<std::uint64_t> keys_;          // kExact
  util::VecOrView<std::uint8_t> id8_;            // kByte
};

}  // namespace bolt::core
