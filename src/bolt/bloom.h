// Bloom filter over the recombined table's inserted keys (paper §4.3).
//
// Dictionaries make many entries irrelevant to a given input; Bolt's
// bitmask membership test (common-feature compare) is the first filter.
// Candidate entries that pass it still probe the table; the classic Bloom
// filter here sits in front of that memory access and skips probes whose
// (entry_id, address) key was never inserted — i.e. most false positives —
// at the cost of k in-register hash evaluations on a bit array small
// enough to stay cache-resident. No false negatives: a true positive is
// never skipped, preserving the safety property.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "util/bits.h"
#include "util/hash.h"
#include "util/vec_view.h"

namespace bolt::core {

class BloomFilter {
 public:
  BloomFilter() = default;

  /// Sizes the filter for `expected_keys` at `bits_per_key` (k hash
  /// functions chosen as ln(2) * bits_per_key, the optimum).
  BloomFilter(std::size_t expected_keys, std::size_t bits_per_key);

  void insert(std::uint32_t entry_id, std::uint64_t address);

  /// True if the key may be present; false means definitely absent.
  bool maybe_contains(std::uint32_t entry_id, std::uint64_t address) const {
    const std::uint64_t h = util::hash_table_key(entry_id, address, seed_);
    // Double hashing: position_i = h1 + i * h2 (Kirsch–Mitzenmacher).
    const std::uint64_t h2 = util::mix64(h) | 1;
    std::uint64_t pos = h;
    for (unsigned i = 0; i < k_; ++i) {
      const std::uint64_t bit = pos & mask_;
      if (!((bits_[bit >> 6] >> (bit & 63)) & 1u)) return false;
      pos += h2;
    }
    return true;
  }

  std::size_t bit_count() const { return mask_ + 1; }
  unsigned num_hashes() const { return k_; }
  std::size_t memory_bytes() const { return bits_.size() * sizeof(std::uint64_t); }

  /// Empirical false-positive probability estimate from fill ratio.
  double estimated_fpp() const;

  /// Binary (de)serialization; part of the Bolt artifact format.
  void save(std::ostream& out) const;
  static BloomFilter load(std::istream& in);

  std::uint64_t seed() const { return seed_; }
  std::span<const std::uint64_t> bit_words() const { return bits_; }

  /// Construct over a borrowed (mmap'd) bit array with load()-equivalent
  /// validation (src/bolt/artifact/).
  static BloomFilter from_views(std::uint64_t seed, std::uint64_t mask,
                                unsigned k,
                                std::span<const std::uint64_t> bits);

  /// Heap bytes owned by the bit array (0 when mapped).
  std::size_t owned_bytes() const { return bits_.owned_bytes(); }

 private:
  void validate() const;

  std::uint64_t seed_ = 0x62100f11;
  std::uint64_t mask_ = 0;
  unsigned k_ = 1;
  util::VecOrView<std::uint64_t> bits_;
};

}  // namespace bolt::core
