// Equivalence verification: proves (or refutes with a counterexample) that
// a Bolt artifact classifies identically to its source forest.
//
// The paper defines safety as "transformations preserve classification
// results for all inputs" (footnote 1). Sampling can only ever check some
// inputs; this verifier can check ALL of them. Key observation: a forest's
// behaviour depends on the input only through the predicate bit vector,
// and the feasible bit vectors form a small structured set — within one
// input feature, predicates sorted by ascending threshold can only take
// "staircase" values 0^k 1^(m-k) (if x <= t then x <= t' for every
// t' >= t). So the whole input space partitions into
// prod_f (num_thresholds_f + 1) equivalence classes, each identified by a
// cut position per feature. Enumerating them visits every behaviourally
// distinct input exactly once.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bolt/builder.h"

namespace bolt::core {

struct VerifyReport {
  /// Number of equivalence classes (exhaustive) or samples (sampled) checked.
  std::uint64_t checked = 0;
  std::uint64_t mismatches = 0;
  /// True when every feasible input region was covered (exhaustive mode).
  bool exhaustive = false;
  /// A witness input for the first mismatch, if any.
  std::optional<std::vector<float>> counterexample;

  bool ok() const { return mismatches == 0; }
};

/// Number of feasible predicate-assignment classes of `forest`'s predicate
/// space: prod over features of (distinct thresholds + 1).
std::uint64_t feasible_classes(const forest::Forest& forest);

/// Exhaustively verifies vote equivalence over every feasible input class.
/// Refuses (returns nullopt) if the class count exceeds `max_classes`;
/// fall back to verify_sampled then.
std::optional<VerifyReport> verify_exhaustive(
    const forest::Forest& forest, const BoltForest& artifact,
    std::uint64_t max_classes = 1ull << 22);

/// Randomized verification over `samples` adversarial inputs (mixture of
/// uniform, extreme, and exact-threshold values).
VerifyReport verify_sampled(const forest::Forest& forest,
                            const BoltForest& artifact, std::size_t samples,
                            std::uint64_t seed = 1);

/// Convenience: exhaustive when tractable, sampled otherwise.
VerifyReport verify(const forest::Forest& forest, const BoltForest& artifact,
                    std::size_t fallback_samples = 20000);

}  // namespace bolt::core
