#include "bolt/paths.h"

#include <algorithm>
#include <cassert>

namespace bolt::core {
namespace {

void walk(const forest::DecisionTree& tree, const forest::PredicateSpace& space,
          std::int32_t node, std::vector<PathItem>& stack, double weight,
          std::size_t num_classes, std::vector<Path>& out) {
  const forest::TreeNode& n = tree.nodes()[node];
  if (n.is_leaf()) {
    Path p;
    p.items = stack;
    std::sort(p.items.begin(), p.items.end());
    p.votes.assign(num_classes, 0.0f);
    p.votes[n.leaf_class] = static_cast<float>(weight);
    out.push_back(std::move(p));
    return;
  }
  const std::uint32_t pred =
      space.id_of(static_cast<std::uint32_t>(n.feature), n.threshold);
  // Left edge = test true (x[f] <= t), the binarization convention.
  stack.push_back(make_item(pred, true));
  walk(tree, space, n.left, stack, weight, num_classes, out);
  stack.back() = make_item(pred, false);
  walk(tree, space, n.right, stack, weight, num_classes, out);
  stack.pop_back();
}

}  // namespace

std::vector<Path> enumerate_paths(const forest::Forest& forest,
                                  const forest::PredicateSpace& space) {
  std::vector<Path> all;
  all.reserve(forest.total_leaves());
  std::vector<PathItem> stack;
  for (std::size_t t = 0; t < forest.trees.size(); ++t) {
    walk(forest.trees[t], space, 0, stack, forest.weights[t],
         forest.num_classes, all);
  }

  // Lexicographic sort over packed items (Figure 3 ①-②).
  std::sort(all.begin(), all.end(),
            [](const Path& a, const Path& b) { return a.items < b.items; });

  // Merge identical paths: cross-tree redundant paths collapse to one entry
  // whose votes are the sum of the sources' votes.
  std::vector<Path> merged;
  merged.reserve(all.size());
  for (Path& p : all) {
    if (!merged.empty() && merged.back().items == p.items) {
      for (std::size_t c = 0; c < p.votes.size(); ++c) {
        merged.back().votes[c] += p.votes[c];
      }
    } else {
      merged.push_back(std::move(p));
    }
  }
  return merged;
}

bool path_matches(const Path& path, const util::BitVector& sample_bits) {
  for (PathItem item : path.items) {
    if (sample_bits.get(item_pred(item)) != item_value(item)) return false;
  }
  return true;
}

}  // namespace bolt::core
