#include "bolt/table.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "util/binio.h"
#include "util/hash.h"

// slot_of/probe_slot are defined inline in the header (hot path).

namespace bolt::core {
namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

RecombinedTable RecombinedTable::build(const std::vector<TableEntry>& entries,
                                       const TableConfig& cfg) {
  RecombinedTable t;
  t.strategy_ = cfg.strategy;
  t.id_check_ = cfg.id_check;
  t.num_entries_ = entries.size();

  for (const TableEntry& e : entries) {
    if (e.address >> 40) {
      throw std::invalid_argument("table: address exceeds 40 bits");
    }
    if (e.entry_id >> 24) {
      throw std::invalid_argument("table: entry id exceeds 24 bits");
    }
    if (e.result_idx == kEmpty) {
      throw std::invalid_argument("table: reserved result index");
    }
  }

  auto fill_slots = [&](std::size_t slots) {
    t.result_idx_.assign(slots, kEmpty);
    if (cfg.id_check == IdCheck::kExact) {
      t.keys_.assign(slots, 0);
      t.id8_.clear();
    } else {
      t.id8_.assign(slots, 0);
      t.keys_.clear();
    }
    t.slot_mask_ = static_cast<std::uint32_t>(slots - 1);
  };

  auto store = [&](std::size_t slot, const TableEntry& e) {
    t.result_idx_.mut(slot) = e.result_idx;
    if (cfg.id_check == IdCheck::kExact) {
      t.keys_.mut(slot) = pack_key(e.entry_id, e.address);
    } else {
      t.id8_.mut(slot) = static_cast<std::uint8_t>(e.entry_id);
    }
  };

  if (entries.empty()) {
    fill_slots(1);
    t.bucket_mask_ = 0;
    t.displacement_.assign(1, 0);
    return t;
  }

  if (cfg.strategy == TableStrategy::kSeedSearch) {
    std::size_t slots =
        next_pow2(std::max<std::size_t>(2, entries.size() * 2));
    std::vector<char> used;
    for (; slots <= cfg.max_slots; slots <<= 1) {
      for (std::size_t s = 0; s < cfg.seeds_per_size; ++s) {
        const std::uint64_t seed = util::mix64(0xb01dface ^ (slots * 31), s);
        used.assign(slots, 0);
        bool ok = true;
        for (const TableEntry& e : entries) {
          const std::size_t slot = static_cast<std::size_t>(
              key_hash(e.entry_id, e.address, seed) & (slots - 1));
          if (used[slot]) {
            ok = false;
            break;
          }
          used[slot] = 1;
        }
        if (ok) {
          t.seed_ = seed;
          fill_slots(slots);
          for (const TableEntry& e : entries) {
            store(static_cast<std::size_t>(
                      key_hash(e.entry_id, e.address, seed) & (slots - 1)),
                  e);
          }
          return t;
        }
      }
    }
    throw std::runtime_error(
        "table: seed search exhausted max_slots without a conflict-free "
        "assignment; use kDisplacement");
  }

  // CHD-style displacement hashing. Buckets group keys by h1; buckets are
  // placed largest-first, each receiving a displacement that maps all its
  // keys to free slots.
  const std::size_t min_slots = next_pow2(std::max<std::size_t>(
      2, static_cast<std::size_t>(
             static_cast<double>(entries.size()) / cfg.max_load)));
  for (std::size_t slots = min_slots; slots <= cfg.max_slots; slots <<= 1) {
    const std::size_t buckets = std::max<std::size_t>(2, slots / 4);
    t.seed_ = util::mix64(0xd15c0c0de ^ slots);
    t.bucket_mask_ = static_cast<std::uint32_t>(buckets - 1);

    std::vector<std::vector<std::uint32_t>> bucket_members(buckets);
    for (std::uint32_t i = 0; i < entries.size(); ++i) {
      const std::uint64_t h =
          key_hash(entries[i].entry_id, entries[i].address, t.seed_);
      bucket_members[h & t.bucket_mask_].push_back(i);
    }

    std::vector<std::uint32_t> order(buckets);
    for (std::uint32_t b = 0; b < buckets; ++b) order[b] = b;
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return bucket_members[a].size() > bucket_members[b].size();
    });

    fill_slots(slots);
    t.displacement_.assign(buckets, 0);
    std::vector<char> used(slots, 0);
    std::vector<std::size_t> placed;
    bool all_ok = true;

    for (std::uint32_t b : order) {
      const auto& members = bucket_members[b];
      if (members.empty()) continue;
      bool found = false;
      // Displacement search; 8 * slots tries is ample at load <= 0.5.
      const std::size_t max_d = 8 * slots + 64;
      for (std::uint32_t d = 0; d < max_d; ++d) {
        placed.clear();
        bool ok = true;
        for (std::uint32_t mi : members) {
          const TableEntry& e = entries[mi];
          const std::uint64_t h = key_hash(e.entry_id, e.address, t.seed_);
          const std::size_t slot = displaced_slot(h, d, t.slot_mask_);
          if (used[slot] ||
              std::find(placed.begin(), placed.end(), slot) != placed.end()) {
            ok = false;
            break;
          }
          placed.push_back(slot);
        }
        if (ok) {
          for (std::size_t k = 0; k < members.size(); ++k) {
            used[placed[k]] = 1;
            store(placed[k], entries[members[k]]);
          }
          t.displacement_.mut(b) = d;
          found = true;
          break;
        }
      }
      if (!found) {
        all_ok = false;
        break;
      }
    }
    if (all_ok) return t;
  }
  throw std::runtime_error("table: displacement build exceeded max_slots");
}

void RecombinedTable::save(std::ostream& out) const {
  util::put(out, static_cast<std::uint32_t>(strategy_));
  util::put(out, static_cast<std::uint32_t>(id_check_));
  util::put(out, seed_);
  util::put(out, static_cast<std::uint64_t>(num_entries_));
  util::put(out, slot_mask_);
  util::put(out, bucket_mask_);
  util::put_vec(out, displacement_);
  util::put_vec(out, result_idx_);
  util::put_vec(out, keys_);
  util::put_vec(out, id8_);
}

RecombinedTable RecombinedTable::load(std::istream& in) {
  RecombinedTable t;
  t.strategy_ = static_cast<TableStrategy>(util::get<std::uint32_t>(in));
  t.id_check_ = static_cast<IdCheck>(util::get<std::uint32_t>(in));
  t.seed_ = util::get<std::uint64_t>(in);
  t.num_entries_ = util::get<std::uint64_t>(in);
  t.slot_mask_ = util::get<std::uint32_t>(in);
  t.bucket_mask_ = util::get<std::uint32_t>(in);
  t.displacement_ = util::get_vec<std::uint32_t>(in);
  t.result_idx_ = util::get_vec<std::uint32_t>(in);
  t.keys_ = util::get_vec<std::uint64_t>(in);
  t.id8_ = util::get_vec<std::uint8_t>(in);
  t.validate();
  return t;
}

RecombinedTable RecombinedTable::from_views(const Scalars& s, const Views& v) {
  RecombinedTable t;
  t.strategy_ = static_cast<TableStrategy>(s.strategy);
  t.id_check_ = static_cast<IdCheck>(s.id_check);
  t.seed_ = s.seed;
  t.num_entries_ = static_cast<std::size_t>(s.num_entries);
  t.slot_mask_ = s.slot_mask;
  t.bucket_mask_ = s.bucket_mask;
  t.displacement_ = util::VecOrView<std::uint32_t>::view(v.displacement.data(),
                                                         v.displacement.size());
  t.result_idx_ = util::VecOrView<std::uint32_t>::view(v.result_idx.data(),
                                                       v.result_idx.size());
  t.keys_ = util::VecOrView<std::uint64_t>::view(v.keys.data(), v.keys.size());
  t.id8_ = util::VecOrView<std::uint8_t>::view(v.id8.data(), v.id8.size());
  t.validate();
  return t;
}

void RecombinedTable::validate() const {
  if (static_cast<std::uint32_t>(strategy_) > 1 ||
      static_cast<std::uint32_t>(id_check_) > 1) {
    throw std::runtime_error("table load: bad enum value");
  }
  if (result_idx_.size() != static_cast<std::size_t>(slot_mask_) + 1) {
    throw std::runtime_error("table load: slot count mismatch");
  }
  if (strategy_ == TableStrategy::kDisplacement &&
      displacement_.size() != static_cast<std::size_t>(bucket_mask_) + 1) {
    throw std::runtime_error("table load: displacement size mismatch");
  }
  if (id_check_ == IdCheck::kExact) {
    if (keys_.size() != result_idx_.size()) {
      throw std::runtime_error("table load: key array size mismatch");
    }
  } else if (id8_.size() != result_idx_.size()) {
    throw std::runtime_error("table load: id8 array size mismatch");
  }
}

std::size_t RecombinedTable::memory_bytes() const {
  return result_idx_.size() * sizeof(std::uint32_t) +
         keys_.size() * sizeof(std::uint64_t) + id8_.size() +
         displacement_.size() * sizeof(std::uint32_t);
}

}  // namespace bolt::core
