// Storage-layout accounting (paper §5, Figure 8).
//
// The paper's implementation compresses the memory-mapped structures and
// reports bytes-per-entry for four components, each against a
// "decompressed" layout that uses plain integer/boolean-array encodings:
//   Dictionary / Masks:    bitmaps sized by the largest feature set across
//                          entries  vs  1-byte boolean arrays;
//   Dictionary / Features: feature-value pairs with value bits sized by
//                          the largest split value  vs  int pairs;
//   Lookup table / Results:     knee-point (99th-percentile) bit widths
//                               vs  4-byte integers;
//   Lookup table / Entry ID:    1 byte (mod 256)  vs  4-byte integer.
#pragma once

#include "bolt/builder.h"

namespace bolt::core {

struct ComponentSize {
  double bolt_bytes_per_entry = 0.0;
  double plain_bytes_per_entry = 0.0;
};

struct LayoutReport {
  // Dictionary components (per dictionary entry).
  ComponentSize dict_masks;
  ComponentSize dict_features;
  // Lookup-table components (per table entry).
  ComponentSize table_results;
  ComponentSize table_entry_id;

  double dict_total_bolt() const {
    return dict_masks.bolt_bytes_per_entry + dict_features.bolt_bytes_per_entry;
  }
  double dict_total_plain() const {
    return dict_masks.plain_bytes_per_entry +
           dict_features.plain_bytes_per_entry;
  }
  double table_total_bolt() const {
    return table_results.bolt_bytes_per_entry +
           table_entry_id.bolt_bytes_per_entry;
  }
  double table_total_plain() const {
    return table_results.plain_bytes_per_entry +
           table_entry_id.plain_bytes_per_entry;
  }
};

/// Computes the Figure 8 report for a built artifact.
LayoutReport analyze_layout(const BoltForest& bf);

}  // namespace bolt::core
