#include "bolt/planner.h"

#include <algorithm>

#include "util/stats.h"
#include "util/timer.h"

namespace bolt::core {
namespace {

/// Factor pairs (d, t) with d*t == cores, plus (1,1).
std::vector<PartitionPlan> partition_shapes(std::size_t cores) {
  std::vector<PartitionPlan> shapes;
  shapes.push_back({1, 1});
  for (std::size_t d = 1; d <= cores; ++d) {
    if (cores % d != 0) continue;
    const std::size_t t = cores / d;
    if (d == 1 && t == 1) continue;
    shapes.push_back({d, t});
  }
  return shapes;
}

}  // namespace

PlanResult plan(const forest::Forest& forest, const data::Dataset& calibration,
                const PlannerConfig& cfg) {
  PlanResult result;
  const std::size_t samples =
      std::min(cfg.max_calibration_samples, calibration.num_rows());

  double best_us = 0.0;
  std::size_t best_threshold = 0;

  for (std::size_t threshold : cfg.thresholds) {
    BoltConfig bolt_cfg = cfg.base;
    bolt_cfg.cluster.threshold = threshold;
    std::unique_ptr<BoltForest> artifact;
    try {
      artifact =
          std::make_unique<BoltForest>(BoltForest::build(forest, bolt_cfg));
    } catch (const std::runtime_error&) {
      continue;  // table blew past the size cap at this threshold
    }

    for (const PartitionPlan& shape : partition_shapes(cfg.cores)) {
      PartitionedBoltEngine engine(*artifact, shape);

      util::Summary med;
      for (std::size_t rep = 0; rep < cfg.repetitions; ++rep) {
        double total_us = 0.0;
        for (std::size_t i = 0; i < samples; ++i) {
          total_us += engine.measure_response_us(calibration.row(i));
        }
        med.add(total_us / static_cast<double>(std::max<std::size_t>(1, samples)));
      }

      PlanCandidate cand;
      cand.threshold = threshold;
      cand.partitions = shape;
      cand.avg_response_us = med.percentile(50);
      cand.dict_entries = artifact->dictionary().num_entries();
      cand.table_slots = artifact->table().num_slots();
      cand.memory_bytes = engine.memory_bytes();
      if (cfg.cache_bytes_per_core != 0) {
        // Per-core working set: its table partition plus the (duplicated)
        // dictionary.
        cand.fits_cache = engine.table_partition_bytes(0) +
                              artifact->dictionary().memory_bytes() <=
                          cfg.cache_bytes_per_core;
      }
      result.candidates.push_back(cand);

      const bool better =
          result.artifact == nullptr ||
          (cand.fits_cache && !result.candidates[result.best].fits_cache) ||
          (cand.fits_cache == result.candidates[result.best].fits_cache &&
           cand.avg_response_us < best_us);
      if (better) {
        best_us = cand.avg_response_us;
        result.best = result.candidates.size() - 1;
        best_threshold = threshold;
      }
    }
    if (result.artifact == nullptr || best_threshold == threshold) {
      result.artifact = std::move(artifact);
    }
  }

  if (result.artifact == nullptr) {
    throw std::runtime_error("planner: no feasible configuration");
  }
  return result;
}

Bottleneck diagnose(const BoltForest& bf, std::size_t cache_bytes) {
  const std::size_t table_bytes = bf.table().memory_bytes();
  if (table_bytes > cache_bytes) return Bottleneck::kCacheCapacity;
  // Heuristic from §4.2: once the table fits in cache, latency is governed
  // by dictionary entries scanned per sample; "parameter changes that lead
  // to less dictionary entries will yield better results".
  const std::size_t entries = bf.dictionary().num_entries();
  if (entries > 4 * std::max<std::size_t>(1, bf.stats().num_merged_paths /
                                                 8)) {
    return Bottleneck::kDictionaryScan;
  }
  return Bottleneck::kBalanced;
}

}  // namespace bolt::core
