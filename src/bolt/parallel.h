// Parallel Bolt (paper §4.2, Figure 4): the dictionary is split into `d`
// partitions and the recombined lookup table into `t` partitions; one core
// is assigned each (dictionary partition, table partition) pair, so
// C = d x t cores. A core scans its dictionary partition and performs only
// the lookups whose table slot falls inside its table partition; any other
// accepted lookup is safely discarded because the core holding (same
// dictionary partition, owning table partition) will perform it (§4.5's
// duplication guarantee). Votes are aggregated across cores at the end.
//
// The repo runs in a single-CPU container, so latency for multi-core
// configurations is *measured* with the critical-path model documented in
// DESIGN.md §3: each core's scan is executed and timed on the one physical
// CPU; response time = max over cores + measured aggregation cost + a
// fixed per-core communication charge. A real threaded execution path
// (ThreadPool) is also provided and used by tests to validate that the
// partitioned computation is equivalent to the single-core engine.
#pragma once

#include <memory>
#include <vector>

#include "bolt/builder.h"
#include "bolt/engine.h"
#include "util/bits.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace bolt::core {

struct PartitionPlan {
  std::size_t dict_parts = 1;
  std::size_t table_parts = 1;
  std::size_t cores() const { return dict_parts * table_parts; }
};

class PartitionedBoltEngine {
 public:
  /// Borrows the artifact (must outlive the engine).
  PartitionedBoltEngine(const BoltForest& bf, const PartitionPlan& plan);

  /// Shared-ownership form (ModelHandle/hot-swap path; see BoltEngine).
  PartitionedBoltEngine(std::shared_ptr<const BoltForest> bf,
                        const PartitionPlan& plan)
      : PartitionedBoltEngine(*bf, plan) {
    keepalive_ = std::move(bf);
  }

  const PartitionPlan& plan() const { return plan_; }

  /// Work of core (dict_part, table_part) for a binarized sample:
  /// accumulates votes into `out` (not cleared). Exposed for tests. The
  /// scan runs the dispatched membership kernel over this dictionary
  /// partition's own SoA layout (built once at construction).
  void core_work(std::size_t dict_part, std::size_t table_part,
                 const util::BitVector& bits, std::span<double> out) const;

  /// Sequential reference execution: all cores' work + aggregation.
  /// Must equal BoltEngine::predict for every input (tested).
  int predict(std::span<const float> x);

  /// Real threaded execution across `pool` (one task per core).
  int predict_threaded(std::span<const float> x, util::ThreadPool& pool);

  /// Row-parallel amortized batch classification across `pool`: rows are
  /// split into contiguous tile-aligned chunks, one chunk per worker, each
  /// running the entry-major amortized kernel (predict_batch_amortized)
  /// with its own scratch — throughput scales with cores while every
  /// worker keeps the once-per-tile cache amortization. Output rows are
  /// disjoint per chunk, so no aggregation or locking is needed; results
  /// are bit-identical to single-threaded BoltEngine::predict_batch.
  void predict_batch(std::span<const float> rows, std::size_t num_rows,
                     std::size_t row_stride, std::span<int> out,
                     util::ThreadPool& pool);

  /// Critical-path latency measurement for one sample: every core's work
  /// is run and timed in isolation; returns
  ///   binarize + max(core times) + aggregation + per-core comm charge.
  /// `comm_ns_per_core` models the inter-core result hand-off the paper
  /// discusses ("the overhead of aggregating results must be considered");
  /// ~25 ns approximates a cross-core cache-line transfer.
  double measure_response_us(std::span<const float> x,
                             double comm_ns_per_core = 25.0);

  /// Bytes of the table partition a single core touches (the §4.2 storage
  /// argument: table partitioning divides per-core storage demand).
  std::size_t table_partition_bytes(std::size_t table_part) const;

  std::size_t memory_bytes() const;

  /// Observability: when attached, `core_work` counts lookups it discards
  /// because they route to another core's table partition (the Figure 4
  /// duplication overhead), and `predict_threaded` records each core's
  /// scan time. The bundle must outlive the engine; nullptr detaches.
  void attach_metrics(const util::PartitionMetrics* metrics) {
    metrics_ = metrics;
  }

  /// Request tracing: when attached, predict/predict_threaded record
  /// binarize, per-core scan (kScan, one entry per core) and aggregation
  /// spans; predict_batch forwards the context into the amortized kernel
  /// for its fine-grained breakdown. The context's accumulators are
  /// relaxed atomics, so pool workers record concurrently. nullptr
  /// detaches.
  void attach_trace(util::TraceContext* trace) { trace_ = trace; }

  /// Predicates a dictionary partition's entries actually test (common +
  /// uncommon), ascending and deduplicated. A core only encodes these.
  std::span<const std::uint32_t> partition_predicates(
      std::size_t dict_part) const {
    return part_preds_[dict_part];
  }

 private:
  std::pair<std::size_t, std::size_t> dict_range(std::size_t part) const;
  std::pair<std::size_t, std::size_t> slot_range(std::size_t part) const;

  std::shared_ptr<const BoltForest> keepalive_;  // set by the shared ctor
  const BoltForest& bf_;
  PartitionPlan plan_;
  const kernels::KernelOps& kernel_;  // dispatch decision, made once here
  std::vector<kernels::ScanLayout> part_layouts_;  // one per dict partition
  util::BitVector bits_;
  std::vector<BatchScratch> batch_scratch_;  // one per pool worker, lazy
  std::vector<std::vector<double>> core_votes_;
  std::vector<double> agg_;
  std::vector<std::vector<std::uint32_t>> part_preds_;  // per dict partition
  const util::PartitionMetrics* metrics_ = nullptr;
  util::TraceContext* trace_ = nullptr;
};

}  // namespace bolt::core
