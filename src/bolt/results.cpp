#include "bolt/results.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/binio.h"
#include "util/bits.h"
#include "util/hash.h"

namespace bolt::core {

std::uint32_t ResultPool::intern(std::span<const float> votes) {
  packed_.clear();  // packing is finalized after the last intern
  // Hash the bit pattern; equal vectors hash equal, and we verify on
  // collision by comparing payloads of the chained candidate.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (float v : votes) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    h = util::mix64(h ^ bits);
  }
  auto [it, inserted] = index_.try_emplace(h, 0);
  if (!inserted) {
    // Verify (hash collisions between distinct vectors are possible in
    // principle; correctness must not depend on their absence).
    const std::uint32_t idx = it->second;
    if (std::equal(votes.begin(), votes.end(),
                   pool_.begin() + static_cast<std::size_t>(idx) * num_classes_)) {
      return idx;
    }
    // Fall through: rehash with a salt until an empty or matching slot.
    std::uint64_t salt = 1;
    for (;;) {
      const std::uint64_t h2 = util::mix64(h, salt++);
      auto [it2, ins2] = index_.try_emplace(h2, 0);
      if (!ins2) {
        const std::uint32_t idx2 = it2->second;
        if (std::equal(votes.begin(), votes.end(),
                       pool_.begin() +
                           static_cast<std::size_t>(idx2) * num_classes_)) {
          return idx2;
        }
        continue;
      }
      it = it2;
      break;
    }
  }
  const auto idx = static_cast<std::uint32_t>(size());
  pool_.append(votes.begin(), votes.end());
  it->second = idx;
  return idx;
}

bool ResultPool::finalize_packed(double total_mass) {
  packed_.clear();
  if (num_classes_ == 0 || num_classes_ > 64) return false;
  // Field must hold the worst-case per-class aggregate plus headroom for
  // the sentinel-free add (no carry may cross fields).
  const auto cap = static_cast<std::uint64_t>(total_mass + 1.0);
  field_bits_ = util::bit_width_for(cap);
  if (field_bits_ * num_classes_ > 64) return false;

  std::vector<std::uint64_t> packed;
  packed.reserve(size());
  for (std::size_t r = 0; r < size(); ++r) {
    std::uint64_t word = 0;
    for (std::size_t c = 0; c < num_classes_; ++c) {
      const float v = pool_[r * num_classes_ + c];
      const double rounded = std::round(v);
      if (v < 0.0f || std::abs(v - rounded) > 1e-6 || rounded > cap) {
        return false;  // non-integral or out-of-range: stay on float path
      }
      word |= static_cast<std::uint64_t>(rounded) << (c * field_bits_);
    }
    packed.push_back(word);
  }
  packed_ = std::move(packed);
  return true;
}

void ResultPool::save(std::ostream& out) const {
  util::put(out, static_cast<std::uint64_t>(num_classes_));
  util::put_vec(out, pool_);
  util::put_vec(out, packed_);
  util::put(out, field_bits_);
}

ResultPool ResultPool::load(std::istream& in) {
  const auto classes = util::get<std::uint64_t>(in);
  ResultPool pool(classes);
  pool.pool_ = util::get_vec<float>(in);
  pool.packed_ = util::get_vec<std::uint64_t>(in);
  pool.field_bits_ = util::get<unsigned>(in);
  pool.validate();
  // Rebuild the intern index so post-load intern() keeps deduplicating.
  for (std::size_t r = 0; r < pool.size(); ++r) {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::size_t c = 0; c < classes; ++c) {
      std::uint32_t bits;
      std::memcpy(&bits, &pool.pool_[r * classes + c], sizeof(bits));
      h = util::mix64(h ^ bits);
    }
    pool.index_.try_emplace(h, static_cast<std::uint32_t>(r));
  }
  return pool;
}

ResultPool ResultPool::from_views(std::size_t num_classes,
                                  std::span<const float> pool,
                                  std::span<const std::uint64_t> packed,
                                  unsigned field_bits) {
  ResultPool p(num_classes);
  p.pool_ = util::VecOrView<float>::view(pool.data(), pool.size());
  p.packed_ = util::VecOrView<std::uint64_t>::view(packed.data(),
                                                   packed.size());
  p.field_bits_ = field_bits;
  p.validate();
  return p;
}

void ResultPool::validate() const {
  if (num_classes_ == 0 || pool_.size() % num_classes_ != 0) {
    throw std::runtime_error("result pool load: bad geometry");
  }
  // The packed form is trusted by accumulate_packed/unpack: its row count
  // must match the float pool and the field layout must fit one u64
  // (an oversized field_bits would make unpack() shift by >= 64).
  if (!packed_.empty()) {
    if (packed_.size() != size() || field_bits_ == 0 ||
        static_cast<std::size_t>(field_bits_) * num_classes_ > 64) {
      throw std::runtime_error("result pool load: bad packed geometry");
    }
  }
}

std::size_t ResultPool::compressed_bytes() const {
  if (pool_.empty()) return 0;

  bool integral = true;
  std::vector<std::uint64_t> ints;
  ints.reserve(pool_.size());
  for (float v : pool_) {
    const double r = std::round(v);
    if (v < 0.0f || std::abs(v - r) > 1e-6) {
      integral = false;
      break;
    }
    ints.push_back(static_cast<std::uint64_t>(r));
  }
  if (!integral) return pool_.size() * sizeof(float);

  // Knee point: width covering the 99th percentile of values; values above
  // it are stored in an escape table (index + 32-bit value).
  std::vector<std::uint64_t> sorted = ints;
  std::sort(sorted.begin(), sorted.end());
  const std::uint64_t p99 = sorted[(sorted.size() * 99) / 100];
  const unsigned width = util::bit_width_for(std::max<std::uint64_t>(p99, 1)) +
                         1;  // +1 for the escape marker value
  std::size_t escapes = 0;
  for (std::uint64_t v : ints) {
    if (util::bit_width_for(std::max<std::uint64_t>(v, 1)) > width - 1) {
      ++escapes;
    }
  }
  const std::size_t packed_bits = ints.size() * width;
  return (packed_bits + 7) / 8 + escapes * (sizeof(std::uint32_t) * 2);
}

}  // namespace bolt::core
