// Phase 2: parameter selection (paper §4.2, Figures 13(A)/(B)).
//
// Bolt's latency depends on a size/latency trade-off: small clustering
// thresholds make many dictionary entries (scan-bound), large thresholds
// blow up the don't-care expansion and the lookup table (memory-bound once
// the table exceeds cache). The paper "searches the space given by these
// parameters by running the forest with different parameter settings and
// selecting those partitioning strategies that lead to best results." The
// planner does exactly that: it builds candidate artifacts across a
// threshold grid, crosses them with the (table partitions x dictionary
// partitions) shapes that fit the available cores, *runs* each candidate
// on calibration samples, and returns the fastest configuration. A storage
// model flags candidates whose per-core working set exceeds the given
// cache capacity (the paper's capacity-planning diagnostics, §4.6).
#pragma once

#include <memory>
#include <vector>

#include "bolt/builder.h"
#include "bolt/parallel.h"
#include "data/dataset.h"

namespace bolt::core {

struct PlannerConfig {
  /// Clustering thresholds to explore.
  std::vector<std::size_t> thresholds = {1, 2, 3, 4, 6, 8, 12};
  /// Available cores (t x d combinations with t*d == cores are explored,
  /// plus the single-core shape).
  std::size_t cores = 1;
  /// Per-core cache capacity in bytes (the paper's third input: "cache
  /// capacity of each core"). 0 disables the storage check.
  std::size_t cache_bytes_per_core = 0;
  /// Calibration samples used to time candidates.
  std::size_t max_calibration_samples = 64;
  /// Timing repetitions per candidate (median taken).
  std::size_t repetitions = 3;
  /// Base Bolt configuration (table strategy, bloom, ...).
  BoltConfig base;
};

struct PlanCandidate {
  std::size_t threshold = 0;
  PartitionPlan partitions;
  double avg_response_us = 0.0;
  std::size_t dict_entries = 0;
  std::size_t table_slots = 0;
  std::size_t memory_bytes = 0;
  bool fits_cache = true;
};

struct PlanResult {
  /// All evaluated candidates, in evaluation order (Figure 13(B) plots
  /// exactly this spread).
  std::vector<PlanCandidate> candidates;
  /// Index of the selected (fastest feasible) candidate.
  std::size_t best = 0;
  /// The artifact built with the winning threshold.
  std::unique_ptr<BoltForest> artifact;

  const PlanCandidate& best_candidate() const { return candidates[best]; }
};

/// Runs the Phase-2 search. `calibration` supplies the timing inputs
/// (the paper runs the forest on sample inputs under each setting).
PlanResult plan(const forest::Forest& forest, const data::Dataset& calibration,
                const PlannerConfig& cfg);

/// Diagnostic of §4.6: classifies the bottleneck of a built artifact on a
/// machine with `cache_bytes` available — "cache" when the table spills
/// past the LLC, "dictionary" when entry scans dominate, "balanced"
/// otherwise.
enum class Bottleneck { kBalanced, kCacheCapacity, kDictionaryScan };
Bottleneck diagnose(const BoltForest& bf, std::size_t cache_bytes);

}  // namespace bolt::core
