// Deduplicated pool of vote vectors referenced by lookup-table slots.
//
// The paper's Figure 3 shows slots holding result *lists* (e.g. "[yes,no]"
// where two trees' paths merged into one address); we store the aggregated
// weighted class votes. Distinct vote vectors are few (bounded by distinct
// leaf combinations), so slots store a small pool index and the pool is
// bit-packed with the knee-point width encoding of §5 ("99th percentile
// results value": typical values use few bits, outliers take an escape).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/vec_view.h"

namespace bolt::core {

class ResultPool {
 public:
  explicit ResultPool(std::size_t num_classes) : num_classes_(num_classes) {}

  /// Interns a vote vector, returning its pool index (deduplicated).
  std::uint32_t intern(std::span<const float> votes);

  std::size_t size() const { return pool_.size() / num_classes_; }
  std::size_t num_classes() const { return num_classes_; }

  std::span<const float> votes(std::uint32_t idx) const {
    return {pool_.data() + static_cast<std::size_t>(idx) * num_classes_,
            num_classes_};
  }

  /// Accumulates entry `idx` into `acc` (the engine's per-sample hot path).
  void accumulate(std::uint32_t idx, std::span<double> acc) const {
    const float* v = pool_.data() + static_cast<std::size_t>(idx) * num_classes_;
    for (std::size_t c = 0; c < num_classes_; ++c) acc[c] += v[c];
  }

  std::span<const float> raw() const { return pool_; }
  std::span<const std::uint64_t> packed_raw() const { return packed_; }

  /// Builds the packed-accumulation form: each vote vector packed into ONE
  /// u64 with fixed-width per-class fields, so the engine accumulates a
  /// whole slot's votes with a single integer add (a §5-style bit-level
  /// optimization). Available when votes are non-negative integers (plain
  /// random forests) and `total_mass` — the maximum possible per-class
  /// aggregate, i.e. the sum of tree weights — fits the field width.
  /// Returns true if packing succeeded.
  bool finalize_packed(double total_mass);

  bool packed_available() const { return !packed_.empty(); }
  unsigned packed_field_bits() const { return field_bits_; }

  /// Single-add accumulation (no per-class loop). Field widths are chosen
  /// so no field can overflow into its neighbour even when every slot of
  /// the forest is accumulated.
  void accumulate_packed(std::uint32_t idx, std::uint64_t& acc) const {
    acc += packed_[idx];
  }

  /// Expands a packed accumulator into per-class totals.
  void unpack(std::uint64_t acc, std::span<double> out) const {
    const std::uint64_t field_mask = (std::uint64_t{1} << field_bits_) - 1;
    for (std::size_t c = 0; c < num_classes_; ++c) {
      out[c] = static_cast<double>((acc >> (c * field_bits_)) & field_mask);
    }
  }

  /// Binary (de)serialization; part of the Bolt artifact format.
  void save(std::ostream& out) const;
  static ResultPool load(std::istream& in);

  /// Construct over borrowed (mmap'd) pools with load()-equivalent
  /// validation. The intern index is NOT rebuilt: a mapped pool is
  /// immutable and serving never interns (src/bolt/artifact/).
  static ResultPool from_views(std::size_t num_classes,
                               std::span<const float> pool,
                               std::span<const std::uint64_t> packed,
                               unsigned field_bits);

  /// Heap bytes owned by the vote pools (0 when fully mapped; the intern
  /// index is excluded — it is empty for mapped pools).
  std::size_t owned_bytes() const {
    return pool_.owned_bytes() + packed_.owned_bytes();
  }

  /// Bytes of the knee-point compressed representation: votes quantized to
  /// integers where exact (plain random forests always are), stored with
  /// the bit width covering the 99th percentile of values; larger values
  /// take a per-value escape slot. Falls back to 32-bit floats for
  /// non-integral (boosted) votes. Used by the Figure 8 accounting.
  std::size_t compressed_bytes() const;
  /// Bytes if every vote were stored as a 4-byte integer/float — the
  /// "decompressed" bar of Figure 8.
  std::size_t decompressed_bytes() const {
    return pool_.size() * sizeof(std::int32_t);
  }

 private:
  /// Geometry validation shared by load() and from_views().
  void validate() const;

  std::size_t num_classes_;
  util::VecOrView<float> pool_;  // size() * num_classes_, row-major
  std::unordered_map<std::uint64_t, std::uint32_t> index_;
  util::VecOrView<std::uint64_t> packed_;  // empty unless finalize_packed ok
  unsigned field_bits_ = 0;
};

}  // namespace bolt::core
