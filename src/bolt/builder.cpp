#include "bolt/builder.h"

#include <algorithm>
#include <fstream>
#include <unordered_map>

#include "util/binio.h"
#include "util/timer.h"

namespace bolt::core {
namespace {

/// Expands one path over its cluster's uncommon predicates: predicates the
/// path does not constrain are "don't cares", and the path's votes are
/// added at every combination of their values (paper §4.1: "all paths in a
/// dictionary entry are expanded in the lookup table to include all
/// possible values of irrelevant features"). Accumulates into
/// `address_votes` (address -> votes), merging paths that share addresses.
void expand_path(const Path& path, const Cluster& cluster,
                 std::unordered_map<std::uint64_t, std::vector<float>>&
                     address_votes,
                 std::size_t num_classes) {
  const auto& uncommon = cluster.uncommon_preds;
  // Fixed bits: positions the path constrains. Free positions: don't cares.
  std::uint64_t fixed = 0;
  std::vector<unsigned> free_positions;
  std::size_t item_i = 0;
  for (std::size_t k = 0; k < uncommon.size(); ++k) {
    const std::uint32_t pred = uncommon[k];
    while (item_i < path.items.size() && item_pred(path.items[item_i]) < pred) {
      ++item_i;
    }
    if (item_i < path.items.size() &&
        item_pred(path.items[item_i]) == pred) {
      if (item_value(path.items[item_i])) fixed |= std::uint64_t{1} << k;
    } else {
      free_positions.push_back(static_cast<unsigned>(k));
    }
  }

  const std::uint64_t combos = std::uint64_t{1} << free_positions.size();
  for (std::uint64_t m = 0; m < combos; ++m) {
    std::uint64_t address = fixed;
    for (std::size_t b = 0; b < free_positions.size(); ++b) {
      if ((m >> b) & 1u) address |= std::uint64_t{1} << free_positions[b];
    }
    auto [it, inserted] =
        address_votes.try_emplace(address, std::vector<float>());
    if (inserted) it->second.assign(num_classes, 0.0f);
    for (std::size_t c = 0; c < num_classes; ++c) {
      it->second[c] += path.votes[c];
    }
  }
}

}  // namespace

BoltForest BoltForest::build(const forest::Forest& forest,
                             const BoltConfig& cfg) {
  util::Timer timer;
  forest.check();

  forest::PredicateSpace space(forest);
  BoltForest bf(std::move(space), forest.num_classes);
  bf.cfg_ = cfg;
  bf.num_features_ = forest.num_features;
  bf.stats_.num_predicates = bf.space_.size();
  bf.stats_.num_raw_paths = forest.total_leaves();

  // Phase 1: enumerate + sort + merge, then greedy clustering.
  const std::vector<Path> paths = enumerate_paths(forest, bf.space_);
  bf.stats_.num_merged_paths = paths.size();
  const std::vector<Cluster> clusters = greedy_cluster(paths, cfg.cluster);
  bf.stats_.num_clusters = clusters.size();

  bf.dict_ = Dictionary(clusters, bf.space_.size());
  bf.layout_ = std::make_shared<const kernels::ScanLayout>(bf.dict_);

  // Expansion + recombination: each cluster's table is hashed into the one
  // big table keyed by (entry id, address).
  std::vector<TableEntry> entries;
  std::unordered_map<std::uint64_t, std::vector<float>> address_votes;
  for (std::size_t e = 0; e < clusters.size(); ++e) {
    const Cluster& c = clusters[e];
    address_votes.clear();
    for (std::size_t pi : c.paths) {
      expand_path(paths[pi], c, address_votes, forest.num_classes);
    }
    for (auto& [address, votes] : address_votes) {
      entries.push_back({static_cast<std::uint32_t>(e), address,
                         bf.results_.intern(votes)});
    }
  }
  bf.stats_.table_entries = entries.size();
  bf.stats_.distinct_results = bf.results_.size();

  bf.table_ = RecombinedTable::build(entries, cfg.table);
  bf.stats_.table_slots = bf.table_.num_slots();

  // Enable single-add packed vote accumulation when the forest's total
  // vote mass fits (plain random forests with modest tree counts).
  double total_mass = 0.0;
  for (double w : forest.weights) total_mass += w;
  bf.results_.finalize_packed(total_mass);

  if (cfg.use_bloom) {
    bf.bloom_.emplace(entries.size(), cfg.bloom_bits_per_key);
    for (const TableEntry& e : entries) {
      bf.bloom_->insert(e.entry_id, e.address);
    }
  }

  bf.stats_.build_seconds = timer.elapsed_ms() / 1e3;
  return bf;
}

namespace {
constexpr std::uint32_t kArtifactMagic = 0x424f4c46;  // "BOLF"
constexpr std::uint32_t kArtifactVersion = 1;
}  // namespace

void BoltForest::save(std::ostream& out) const {
  util::put(out, kArtifactMagic);
  util::put(out, kArtifactVersion);
  util::put(out, static_cast<std::uint64_t>(num_classes_));
  util::put(out, static_cast<std::uint64_t>(num_features_));

  // Config.
  util::put(out, static_cast<std::uint64_t>(cfg_.cluster.threshold));
  util::put(out, static_cast<std::uint64_t>(cfg_.cluster.max_table_bits));
  util::put(out, static_cast<std::uint32_t>(cfg_.table.strategy));
  util::put(out, static_cast<std::uint32_t>(cfg_.table.id_check));
  util::put(out, cfg_.use_bloom ? std::uint8_t{1} : std::uint8_t{0});
  util::put(out, static_cast<std::uint64_t>(cfg_.bloom_bits_per_key));

  // Stats.
  util::put(out, stats_);

  space_.save(out);
  dict_.save(out);
  table_.save(out);
  results_.save(out);
  util::put(out, bloom_.has_value() ? std::uint8_t{1} : std::uint8_t{0});
  if (bloom_) bloom_->save(out);
}

void BoltForest::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("artifact save: cannot open " + path);
  save(out);
}

BoltForest BoltForest::load(std::istream& in) {
  if (util::get<std::uint32_t>(in) != kArtifactMagic) {
    throw std::runtime_error("artifact load: bad magic");
  }
  if (util::get<std::uint32_t>(in) != kArtifactVersion) {
    throw std::runtime_error("artifact load: unsupported version");
  }
  const auto num_classes = util::get<std::uint64_t>(in);
  const auto num_features = util::get<std::uint64_t>(in);

  BoltConfig cfg;
  cfg.cluster.threshold = util::get<std::uint64_t>(in);
  cfg.cluster.max_table_bits = util::get<std::uint64_t>(in);
  cfg.table.strategy = static_cast<TableStrategy>(util::get<std::uint32_t>(in));
  cfg.table.id_check = static_cast<IdCheck>(util::get<std::uint32_t>(in));
  cfg.use_bloom = util::get<std::uint8_t>(in) != 0;
  cfg.bloom_bits_per_key = util::get<std::uint64_t>(in);

  const auto stats = util::get<BuildStats>(in);

  forest::PredicateSpace space = forest::PredicateSpace::load(in);
  BoltForest bf(std::move(space), num_classes);
  bf.cfg_ = cfg;
  bf.stats_ = stats;
  bf.num_features_ = num_features;
  bf.dict_ = Dictionary::load(in);
  bf.layout_ = std::make_shared<const kernels::ScanLayout>(bf.dict_);
  bf.table_ = RecombinedTable::load(in);
  bf.results_ = ResultPool::load(in);
  if (util::get<std::uint8_t>(in) != 0) {
    bf.bloom_.emplace(BloomFilter::load(in));
  }
  if (bf.results_.num_classes() != bf.num_classes_ ||
      bf.dict_.num_predicates() != bf.space_.size()) {
    throw std::runtime_error("artifact load: inconsistent components");
  }
  bf.table_.validate_result_indices(bf.results_.size());
  return bf;
}

BoltForest BoltForest::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("artifact load: cannot open " + path);
  return load(in);
}

std::size_t BoltForest::owned_bytes() const {
  return dict_.owned_bytes() + table_.owned_bytes() + results_.owned_bytes() +
         space_.owned_bytes() + (bloom_ ? bloom_->owned_bytes() : 0) +
         (layout_ ? layout_->owned_bytes() : 0);
}

std::size_t BoltForest::memory_bytes() const {
  return dict_.memory_bytes() + table_.memory_bytes() +
         results_.raw().size() * sizeof(float) +
         (bloom_ ? bloom_->memory_bytes() : 0) +
         space_.size() * sizeof(forest::Predicate);
}

}  // namespace bolt::core
