// The Bolt inference engine (paper §4.5, Figure 7).
//
// Per sample:
//   1. binarize the input once over the predicate space;
//   2. for every dictionary entry, one bit-masked compare decides
//      relevance (no per-feature branching);
//   3. relevant entries form an address from their uncommon predicates,
//      optionally consult the Bloom filter, and probe the recombined
//      lookup table with ONE memory access;
//   4. a slot is counted only if its stored entry ID matches (false-
//      positive rejection, §4.3); accepted slots' vote vectors accumulate;
//   5. argmax of the aggregate votes is the classification.
#pragma once

#include <memory>
#include <vector>

#include "baselines/engine.h"
#include "bolt/builder.h"
#include "bolt/explain.h"

namespace bolt::core {

/// Per-thread scratch of the amortized batch kernel: the binarized row tile
/// plus per-row vote accumulators. Allocate once (per serving thread / pool
/// worker) and reuse across calls; predict_batch_amortized never allocates.
struct BatchScratch {
  /// Rows binarized per tile. 64 keeps the whole tile's bit rows inside a
  /// few KB (L1-resident beside the dictionary stream) and lets the kernel
  /// track per-entry matching rows in a single 64-bit row bitmap.
  static constexpr std::size_t kTileRows = kernels::kTileRows;

  /// Deferred table probes buffered between prefetch and access. 128
  /// outstanding lines (~16 KB of slots + keys) fit L1 beside the tile
  /// while giving the memory system a deep pipeline of independent loads.
  static constexpr std::size_t kProbeWindow = 128;

  explicit BatchScratch(const BoltForest& bf);

  std::size_t words_per_row;
  /// The binarized tile, *word-major* (transposed): word w of row r is
  /// tile_t[w * kTileRows + r], so one predicate word's 64 rows are a
  /// contiguous 64-byte-aligned run — the batch kernels' row-group loads
  /// are plain aligned vector loads, no gathers.
  util::aligned_vector<std::uint64_t> tile_t;  // words_per_row x kTileRows
  /// Per-layout-lane matching-row bitmaps filled by KernelOps::scan_tile.
  util::aligned_vector<std::uint64_t> rowmasks;  // layout.local_size()
  std::vector<std::uint64_t> packed_acc;  // kTileRows packed-vote accumulators
  std::vector<double> votes;              // kTileRows x num_classes
  // Probe pipeline: (entry, row, slot, address) tuples awaiting their
  // prefetched slot lines.
  std::vector<std::uint32_t> probe_entries;  // kProbeWindow
  std::vector<std::uint32_t> probe_rows;     // kProbeWindow
  std::vector<std::size_t> probe_slots;      // kProbeWindow
  std::vector<std::uint64_t> probe_addrs;    // kProbeWindow
};

/// The amortized batch path (the throughput side of the paper's one-access
/// claim): the kernel's columnar binarize_tile writes up to
/// BatchScratch::kTileRows rows straight into the word-major tile (one
/// split test evaluated against the whole tile per vector op), then scan
/// the dictionary *entry-major* — each entry's sparse words are loaded once
/// and tested against every row of the tile, producing a tile-wide bitmap
/// of matching rows per entry; the entry's address words are likewise read
/// while still cache-hot. Table probes are not issued inline: each
/// candidate's slot is prefetched and the (entry, row, slot, address) tuple
/// buffered, and the window is drained once kProbeWindow probes are
/// pending — so the random table accesses that serialize the per-row path
/// (each probe a dependent cache miss) overlap as in-flight loads.
/// Classifications are bit-identical to per-row `BoltEngine::predict`
/// (the same tests run in a different order).
/// `kernel` selects the membership kernel for the tile scan; nullptr means
/// the process-wide kernels::select_kernel() choice (engines pass the
/// kernel they captured at construction).
void predict_batch_amortized(const BoltForest& bf, std::span<const float> rows,
                             std::size_t num_rows, std::size_t row_stride,
                             std::span<int> out, BatchScratch& scratch,
                             const util::EngineMetrics* metrics = nullptr,
                             util::TraceContext* trace = nullptr,
                             const kernels::KernelOps* kernel = nullptr);

class BoltEngine final : public engines::Engine {
 public:
  /// The engine borrows the artifact; the BoltForest must outlive it.
  /// Multiple engines (one per core) can share one artifact.
  explicit BoltEngine(const BoltForest& bf);

  /// Shared-ownership form (the ModelHandle/hot-swap path): the engine
  /// keeps the forest — and, for a mapped v2 artifact, its file mapping —
  /// alive for its own lifetime, so a reload that drops the handle's
  /// reference cannot pull storage out from under in-flight requests.
  explicit BoltEngine(std::shared_ptr<const BoltForest> bf)
      : BoltEngine(*bf) {
    keepalive_ = std::move(bf);
  }

  std::string_view name() const override { return "BOLT"; }
  std::size_t num_features() const override { return bf_.num_features(); }
  int predict(std::span<const float> x) override;
  int predict_traced(std::span<const float> x,
                     archsim::Machine& machine) override;
  void vote(std::span<const float> x, std::span<double> out) override;
  std::size_t memory_bytes() const override;

  /// Observability: when attached, every predict/vote records binarize and
  /// scan timings plus candidate/accept/rejected counts. Costs two clock
  /// reads and a handful of relaxed atomic adds per sample when attached,
  /// one predictable branch when not.
  void attach_metrics(const util::EngineMetrics* metrics) override {
    metrics_ = metrics;
  }

  /// Request tracing: when attached, every predict/vote/predict_batch
  /// records binarize/scan/table_probe/aggregate spans into the context.
  /// Same cost model as metrics — a few clock reads when attached, one
  /// predictable branch per phase when not.
  void attach_trace(util::TraceContext* trace) override { trace_ = trace; }

  /// Classification plus per-entry telemetry (candidate/accept counters).
  int predict_profiled(std::span<const float> x, EntryProfile& profile);

  /// Classification plus salient-feature tracking (§2.1: Bolt tracks
  /// salience "with one memory access per tree inference" — the matched
  /// entries' items are already in registers when a lookup is accepted).
  int predict_explained(std::span<const float> x, Explanation& explanation);

  /// Votes over an already-binarized sample — the deep-forest cascade and
  /// the partitioned engine reuse this to skip re-binarization.
  void vote_binarized(const util::BitVector& bits, std::span<double> out);

  /// Batched classification via the amortized entry-major tile kernel
  /// (predict_batch_amortized); bit-identical to per-row `predict`. The
  /// scratch tile is allocated lazily on first use, so single-sample
  /// engines pay nothing.
  void predict_batch(std::span<const float> rows, std::size_t num_rows,
                     std::size_t row_stride, std::span<int> out) override;

  /// The pre-amortization baseline — a plain per-row `predict` loop that
  /// re-streams the dictionary and table through cache for every sample.
  /// Kept as the comparison arm of bench_batching.
  void predict_batch_naive(std::span<const float> rows, std::size_t num_rows,
                           std::size_t row_stride, std::span<int> out);

  const BoltForest& artifact() const { return bf_; }
  /// The membership kernel this engine dispatches to (fixed at ctor).
  const kernels::KernelOps& kernel() const { return kernel_; }

 private:
  template <class Probe>
  void vote_impl(std::span<const float> x, std::span<double> out, Probe probe);
  template <class Probe>
  void vote_bits_impl(const util::BitVector& bits, std::span<double> out,
                      Probe probe);
  void record_scan_metrics(std::uint64_t accepted,
                           std::int64_t elapsed_ns) const;

  std::shared_ptr<const BoltForest> keepalive_;  // set by the shared ctor
  const BoltForest& bf_;
  const kernels::KernelOps& kernel_;  // dispatch decision, made once here
  util::BitVector bits_;
  std::vector<double> vote_scratch_;
  std::vector<std::uint64_t> candidate_blocks_;  // phase-A bitmap scratch
  std::unique_ptr<BatchScratch> batch_scratch_;  // lazily built tile buffers
  const util::EngineMetrics* metrics_ = nullptr;
  util::TraceContext* trace_ = nullptr;
};

}  // namespace bolt::core
