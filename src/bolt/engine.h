// The Bolt inference engine (paper §4.5, Figure 7).
//
// Per sample:
//   1. binarize the input once over the predicate space;
//   2. for every dictionary entry, one bit-masked compare decides
//      relevance (no per-feature branching);
//   3. relevant entries form an address from their uncommon predicates,
//      optionally consult the Bloom filter, and probe the recombined
//      lookup table with ONE memory access;
//   4. a slot is counted only if its stored entry ID matches (false-
//      positive rejection, §4.3); accepted slots' vote vectors accumulate;
//   5. argmax of the aggregate votes is the classification.
#pragma once

#include <memory>
#include <vector>

#include "baselines/engine.h"
#include "bolt/builder.h"
#include "bolt/explain.h"

namespace bolt::core {

class BoltEngine final : public engines::Engine {
 public:
  /// The engine borrows the artifact; the BoltForest must outlive it.
  /// Multiple engines (one per core) can share one artifact.
  explicit BoltEngine(const BoltForest& bf);

  std::string_view name() const override { return "BOLT"; }
  std::size_t num_features() const override { return bf_.num_features(); }
  int predict(std::span<const float> x) override;
  int predict_traced(std::span<const float> x,
                     archsim::Machine& machine) override;
  void vote(std::span<const float> x, std::span<double> out) override;
  std::size_t memory_bytes() const override;

  /// Observability: when attached, every predict/vote records binarize and
  /// scan timings plus candidate/accept/rejected counts. Costs two clock
  /// reads and a handful of relaxed atomic adds per sample when attached,
  /// one predictable branch when not.
  void attach_metrics(const util::EngineMetrics* metrics) override {
    metrics_ = metrics;
  }

  /// Classification plus per-entry telemetry (candidate/accept counters).
  int predict_profiled(std::span<const float> x, EntryProfile& profile);

  /// Classification plus salient-feature tracking (§2.1: Bolt tracks
  /// salience "with one memory access per tree inference" — the matched
  /// entries' items are already in registers when a lookup is accepted).
  int predict_explained(std::span<const float> x, Explanation& explanation);

  /// Votes over an already-binarized sample — the deep-forest cascade and
  /// the partitioned engine reuse this to skip re-binarization.
  void vote_binarized(const util::BitVector& bits, std::span<double> out);

  /// Batched classification: `num_rows` samples of `row_stride` floats in
  /// one call. Bolt needs no batching for throughput (its structures are
  /// small and scanned linearly), but the API allows apples-to-apples
  /// comparison with Ranger's batch mode (paper §2.1: Ranger achieves very
  /// low response times when batching).
  void predict_batch(std::span<const float> rows, std::size_t num_rows,
                     std::size_t row_stride, std::span<int> out);

  const BoltForest& artifact() const { return bf_; }

 private:
  template <class Probe>
  void vote_impl(std::span<const float> x, std::span<double> out, Probe probe);
  template <class Probe>
  void vote_bits_impl(const util::BitVector& bits, std::span<double> out,
                      Probe probe);
  void record_scan_metrics(std::uint64_t accepted,
                           std::int64_t elapsed_ns) const;

  const BoltForest& bf_;
  util::BitVector bits_;
  std::vector<double> vote_scratch_;
  std::vector<std::uint64_t> candidate_blocks_;  // phase-A bitmap scratch
  const util::EngineMetrics* metrics_ = nullptr;
};

}  // namespace bolt::core
