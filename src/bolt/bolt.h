// Umbrella header: the Bolt public API.
//
//   forest::Forest model = forest::train_random_forest(data, train_cfg);
//   core::BoltForest artifact = core::BoltForest::build(model, {});
//   core::BoltEngine engine(artifact);
//   int cls = engine.predict(sample);
//
// See README.md for the full walkthrough and DESIGN.md for the paper map.
#pragma once

#include "bolt/bloom.h"
#include "bolt/builder.h"
#include "bolt/cluster.h"
#include "bolt/dictionary.h"
#include "bolt/engine.h"
#include "bolt/explain.h"
#include "bolt/layout.h"
#include "bolt/parallel.h"
#include "bolt/paths.h"
#include "bolt/planner.h"
#include "bolt/results.h"
#include "bolt/table.h"
#include "bolt/verify.h"
