// Local explanation (salient-feature tracking) for Bolt inference.
//
// Paper §2.1: "Bolt uses associative arrays to track salient features.
// Bolt can do such tracking with one memory access per tree inference,
// meaning that Bolt can produce a list of salient features as inference is
// produced." When a lookup is accepted, the matched dictionary entry's
// common items and the address bits over its uncommon predicates identify
// exactly which feature tests the matched paths used — no tree re-walk.
#pragma once

#include <cstdint>
#include <vector>

#include "forest/predicates.h"

namespace bolt::core {

/// Salience accumulated over one (or more) inference calls.
class Explanation {
 public:
  explicit Explanation(std::size_t num_features)
      : counts_(num_features, 0.0) {}

  void add_feature(std::uint32_t feature, double weight) {
    counts_[feature] += weight;
  }

  void clear() { counts_.assign(counts_.size(), 0.0); }

  /// Salience score per input feature: total vote mass of matched paths
  /// that tested the feature.
  const std::vector<double>& scores() const { return counts_; }

  /// Indices of the `k` most salient features, descending by score.
  std::vector<std::uint32_t> top_k(std::size_t k) const;

 private:
  std::vector<double> counts_;
};

/// Per-dictionary-entry service telemetry: how often each entry matched
/// (candidate) and produced an accepted lookup. Paper §2.1: because Bolt
/// maps all paths explicitly, "Bolt forests can cache whichever paths are
/// used most frequently by a service" — this profile is how a deployment
/// finds those hot entries.
class EntryProfile {
 public:
  explicit EntryProfile(std::size_t num_entries)
      : candidates_(num_entries, 0), accepts_(num_entries, 0) {}

  void record_candidate(std::size_t entry) { ++candidates_[entry]; }
  void record_accept(std::size_t entry) { ++accepts_[entry]; }
  void bump_samples() { ++samples_; }

  std::uint64_t samples() const { return samples_; }
  const std::vector<std::uint64_t>& candidates() const { return candidates_; }
  const std::vector<std::uint64_t>& accepts() const { return accepts_; }

  /// Entries by descending accept count.
  std::vector<std::uint32_t> hottest(std::size_t k) const;

  /// Fraction of candidate matches that were rejected at the table (the
  /// measured dictionary false-positive rate of §4.3).
  double false_positive_rate() const;

 private:
  std::vector<std::uint64_t> candidates_;
  std::vector<std::uint64_t> accepts_;
  std::uint64_t samples_ = 0;
};

}  // namespace bolt::core
