// The Bolt dictionary (paper §4.1 Figure 3 ④, §4.3, §5).
//
// One entry per path cluster. An entry stores:
//   - the cluster's common feature-value pairs as a (mask, expected-values)
//     bit pattern over the predicate space — membership of an input is one
//     bit-wise masked compare, no branching per feature;
//   - the cluster's uncommon predicate positions, from which the input's
//     lookup-table address is formed (paper: "compute the location of the
//     lookup table that would be accessed if the dictionary entry is
//     relevant").
//
// Layout: predicates touched by one entry are few (<= path length +
// threshold), so masks are stored sparsely as (word index, mask word,
// expect word) triples in one contiguous CSR pool — the scan touches only
// words that matter, which is the §5 bitmap compression (Figure 8 "Masks").
#pragma once

#include <bit>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "bolt/cluster.h"
#include "util/bits.h"
#include "util/vec_view.h"

namespace bolt::core {

class Dictionary {
 public:
  /// A 64-bit window of an entry's common-feature mask.
  struct SparseWord {
    std::uint32_t word;    // word index into the binarized input
    std::uint64_t mask;    // predicates constrained by this entry
    std::uint64_t expect;  // required values (subset of mask)
  };

  /// A 64-bit window of an entry's uncommon predicates; the input's bits
  /// under `mask` are PEXT-gathered into the lookup address.
  struct AddrWord {
    std::uint32_t word;
    std::uint64_t mask;
  };

  Dictionary() = default;

  /// Builds the dictionary from Phase-1 clusters over a predicate space of
  /// `num_predicates` bits.
  Dictionary(std::span<const Cluster> clusters, std::size_t num_predicates);

  std::size_t num_entries() const { return num_entries_; }
  std::size_t num_predicates() const { return num_predicates_; }

  /// Bitmask membership test (paper Figure 7: `d = data (x) e.features.key`).
  bool matches(std::size_t entry, const util::BitVector& bits) const {
    return matches_words(entry, bits.words().data());
  }

  /// Raw-word form of `matches`: `words` is a binarized sample laid out as
  /// by BitVector. The batch kernel tiles B samples as B such word rows and
  /// tests each dictionary entry against all of them while the entry's
  /// sparse words are still in cache.
  bool matches_words(std::size_t entry, const std::uint64_t* words) const {
    const std::uint32_t begin = word_offsets_[entry];
    const std::uint32_t end = word_offsets_[entry + 1];
    std::uint64_t diff = 0;
    for (std::uint32_t w = begin; w < end; ++w) {
      const SparseWord& sw = words_[w];
      diff |= (words[sw.word] & sw.mask) ^ sw.expect;
    }
    return diff == 0;
  }

  /// Address formation: the input's bits at the entry's uncommon predicate
  /// positions, packed ascending. PEXT gathers a whole word's worth of
  /// positions per instruction; word order and in-word bit order are both
  /// ascending, so the result is identical to gathering positions one by
  /// one (verified by tests against the positions-based oracle).
  std::uint64_t address(std::size_t entry, const util::BitVector& bits) const {
    return address_words(entry, bits.words().data());
  }

  /// Raw-word form of `address` (see `matches_words`).
  std::uint64_t address_words(std::size_t entry,
                              const std::uint64_t* words) const {
    const std::uint32_t begin = addr_word_offsets_[entry];
    const std::uint32_t end = addr_word_offsets_[entry + 1];
    std::uint64_t out = 0;
    unsigned shift = 0;
    for (std::uint32_t k = begin; k < end; ++k) {
      const AddrWord& aw = addr_words_[k];
      out |= util::pext64_fast(words[aw.word], aw.mask) << shift;
      shift += static_cast<unsigned>(std::popcount(aw.mask));
    }
    return out;
  }

  /// Address formation over a word-major transposed tile (the batch scan
  /// kernels' layout): word w of row `row` lives at base[w * stride + row].
  std::uint64_t address_words_strided(std::size_t entry,
                                      const std::uint64_t* base,
                                      std::size_t stride,
                                      std::size_t row) const {
    const std::uint32_t begin = addr_word_offsets_[entry];
    const std::uint32_t end = addr_word_offsets_[entry + 1];
    std::uint64_t out = 0;
    unsigned shift = 0;
    for (std::uint32_t k = begin; k < end; ++k) {
      const AddrWord& aw = addr_words_[k];
      out |= util::pext64_fast(base[aw.word * stride + row], aw.mask) << shift;
      shift += static_cast<unsigned>(std::popcount(aw.mask));
    }
    return out;
  }

  /// Reference address formation from explicit positions (test oracle).
  std::uint64_t address_by_positions(std::size_t entry,
                                     const util::BitVector& bits) const {
    const std::uint32_t begin = addr_offsets_[entry];
    const std::uint32_t end = addr_offsets_[entry + 1];
    std::uint64_t out = 0;
    for (std::uint32_t k = begin; k < end; ++k) {
      out |= static_cast<std::uint64_t>(bits.get(addr_positions_[k]))
             << (k - begin);
    }
    return out;
  }

  /// Number of uncommon predicates (address bits) of an entry.
  std::size_t address_bits(std::size_t entry) const {
    return addr_offsets_[entry + 1] - addr_offsets_[entry];
  }

  /// Uncommon predicate ids of an entry (ascending).
  std::span<const std::uint32_t> address_positions(std::size_t entry) const {
    return {addr_positions_.data() + addr_offsets_[entry],
            addr_offsets_[entry + 1] - addr_offsets_[entry]};
  }

  /// Sparse mask words of an entry (for tracing and tests).
  std::span<const SparseWord> sparse_words(std::size_t entry) const {
    return {words_.data() + word_offsets_[entry],
            static_cast<std::size_t>(word_offsets_[entry + 1] -
                                     word_offsets_[entry])};
  }

  /// Common (predicate, value) pairs of an entry, for explanation
  /// workloads (salient-feature tracking, §2.1).
  std::span<const PathItem> common_items(std::size_t entry) const {
    return {common_pool_.data() + common_offsets_[entry],
            static_cast<std::size_t>(common_offsets_[entry + 1] -
                                     common_offsets_[entry])};
  }

  std::size_t memory_bytes() const;

  /// Binary (de)serialization; part of the Bolt artifact format.
  void save(std::ostream& out) const;
  static Dictionary load(std::istream& in);

  /// The dictionary's pools as borrowed read-only spans — how the v2
  /// mapped artifact constructs a Dictionary in place over mmap'd sections
  /// with zero copies (src/bolt/artifact/). Runs the same structural
  /// validation as load(); the spans must outlive the Dictionary (the
  /// owning BoltForest holds the MappedArtifact refcount).
  struct Views {
    std::span<const std::uint32_t> word_offsets;
    std::span<const SparseWord> words;
    std::span<const std::uint32_t> addr_offsets;
    std::span<const std::uint32_t> addr_positions;
    std::span<const std::uint32_t> addr_word_offsets;
    std::span<const AddrWord> addr_words;
    std::span<const std::uint32_t> common_offsets;
    std::span<const PathItem> common_pool;
  };
  /// `deep_validate = false` is the trusted-artifact tier: only O(1)
  /// shape checks run, the per-element bounds scans are skipped. Callers
  /// must have established validity another way (pack-time self-check
  /// plus section CRCs — see docs/ARTIFACT_FORMAT.md "trust tiers").
  static Dictionary from_views(std::size_t num_entries,
                               std::size_t num_predicates, const Views& v,
                               bool deep_validate = true);

  /// The raw pools as spans (the v2 pack writer serializes these verbatim
  /// into sections; from_views() reconstructs from the mapped bytes).
  Views pools() const {
    return {word_offsets_,  words_,      addr_offsets_, addr_positions_,
            addr_word_offsets_, addr_words_, common_offsets_, common_pool_};
  }

  /// Address of an entry's first sparse word, for archsim tracing.
  /// (data()+offset, not operator[], so entries with empty masks — offset
  /// == size — stay well-defined.)
  const void* entry_address(std::size_t entry) const {
    return words_.data() + word_offsets_[entry];
  }
  /// Bytes scanned when testing one entry.
  std::size_t entry_scan_bytes(std::size_t entry) const {
    return (word_offsets_[entry + 1] - word_offsets_[entry]) *
               sizeof(SparseWord) +
           (addr_offsets_[entry + 1] - addr_offsets_[entry]) *
               sizeof(std::uint32_t);
  }

  /// Heap bytes owned by the pools (0 for a fully mapped dictionary) —
  /// the zero-copy accounting hook (tests, bench_coldstart).
  std::size_t owned_bytes() const;

 private:
  /// Structural validation shared by load() and from_views(): every
  /// invariant inference relies on for memory safety. Throws on violation.
  /// `deep` gates the O(n) per-element scans; the O(1) shape checks
  /// always run.
  void validate(bool deep = true) const;

  std::size_t num_entries_ = 0;
  std::size_t num_predicates_ = 0;
  util::VecOrView<std::uint32_t> word_offsets_;    // num_entries_ + 1
  util::VecOrView<SparseWord> words_;
  util::VecOrView<std::uint32_t> addr_offsets_;    // num_entries_ + 1
  util::VecOrView<std::uint32_t> addr_positions_;  // uncommon predicate ids
  util::VecOrView<std::uint32_t> addr_word_offsets_;  // num_entries_ + 1
  util::VecOrView<AddrWord> addr_words_;
  util::VecOrView<std::uint32_t> common_offsets_;  // num_entries_ + 1
  util::VecOrView<PathItem> common_pool_;
};

}  // namespace bolt::core
