// The Bolt build pipeline: trained forest -> BoltForest artifact
// (dictionary + recombined lookup table + result pool + optional Bloom
// filter). This is the compression box of the paper's Figure 1, Phases 1
// and 3; Phase 2 (parameter selection) lives in planner.h and calls this
// builder with candidate configurations.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "bolt/bloom.h"
#include "bolt/cluster.h"
#include "bolt/dictionary.h"
#include "bolt/kernels/kernels.h"
#include "bolt/results.h"
#include "bolt/table.h"
#include "forest/predicates.h"
#include "forest/tree.h"

namespace bolt::artifact {
class MappedArtifact;
}

namespace bolt::core {

struct BoltConfig {
  ClusterConfig cluster;
  TableConfig table;
  /// Insert a classic Bloom filter in front of table probes (§4.3).
  bool use_bloom = false;
  std::size_t bloom_bits_per_key = 10;
};

/// Build-time statistics (reported by the figure harnesses and used by the
/// Phase-2 planner's storage model).
struct BuildStats {
  std::size_t num_predicates = 0;
  std::size_t num_raw_paths = 0;     // before cross-tree merging
  std::size_t num_merged_paths = 0;  // after merging
  std::size_t num_clusters = 0;      // == dictionary entries
  std::size_t table_entries = 0;     // after don't-care expansion
  std::size_t table_slots = 0;
  std::size_t distinct_results = 0;
  double build_seconds = 0.0;
};

/// The immutable inference artifact. Thread-safe to share between cores:
/// all state is read-only after build (the parallel engine of Figure 4
/// hands partitions of the same artifact to different cores).
class BoltForest {
 public:
  /// Transforms a trained forest. Throws std::runtime_error if the table
  /// cannot be built within the configured size cap.
  static BoltForest build(const forest::Forest& forest, const BoltConfig& cfg);

  const forest::PredicateSpace& space() const { return space_; }
  const Dictionary& dictionary() const { return dict_; }
  /// SoA bucketed view of the dictionary the scan kernels run over.
  /// Derived from the dictionary at build()/load() — never serialized, so
  /// the artifact format is layout-agnostic. Shared so copies of the
  /// artifact (planner candidates) don't rebuild it.
  const kernels::ScanLayout& scan_layout() const { return *layout_; }
  const RecombinedTable& table() const { return table_; }
  const ResultPool& results() const { return results_; }
  const BloomFilter* bloom() const {
    return bloom_ ? &*bloom_ : nullptr;
  }
  std::size_t num_classes() const { return num_classes_; }
  std::size_t num_features() const { return num_features_; }
  const BuildStats& stats() const { return stats_; }
  const BoltConfig& config() const { return cfg_; }

  /// Total resident bytes of the inference structures.
  std::size_t memory_bytes() const;

  /// True when the pools borrow a read-only file mapping (a v2 artifact
  /// opened through bolt::artifact::MappedArtifact) instead of owning
  /// heap storage.
  bool mapped() const { return mapping_ != nullptr; }

  /// Heap bytes owned by the dictionary/table/result/bloom/layout pools
  /// and the predicate space — ~0 for a mapped forest (the zero-copy
  /// accounting hook asserted by tests and reported by bench_coldstart).
  /// The small bucket directory is excluded.
  std::size_t owned_bytes() const;

  /// Serializes the built artifact (dictionary, recombined table, result
  /// pool, Bloom filter, predicate space, config, stats) so a compiled
  /// model can be shipped and served without re-running Phase 1.
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  static BoltForest load(std::istream& in);
  static BoltForest load_file(const std::string& path);

 private:
  /// The v2 loader assembles a BoltForest from mapped section views the
  /// same way load() does from a stream.
  friend class bolt::artifact::MappedArtifact;

  BoltForest(forest::PredicateSpace space, std::size_t num_classes)
      : space_(std::move(space)), results_(num_classes),
        num_classes_(num_classes) {}

  forest::PredicateSpace space_;
  Dictionary dict_;
  std::shared_ptr<const kernels::ScanLayout> layout_;
  RecombinedTable table_;
  ResultPool results_;
  std::optional<BloomFilter> bloom_;
  std::size_t num_classes_ = 0;
  std::size_t num_features_ = 0;
  BuildStats stats_;
  BoltConfig cfg_;
  /// Keepalive for the mmap'd file a v2-loaded forest's pools borrow
  /// (type-erased to avoid an include cycle; null when heap-built).
  /// Copies of the forest share the mapping, so they stay cheap and safe.
  std::shared_ptr<const void> mapping_;
};

}  // namespace bolt::core
