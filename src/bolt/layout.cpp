#include "bolt/layout.h"

#include <algorithm>
#include <cmath>

#include "util/bits.h"

namespace bolt::core {

LayoutReport analyze_layout(const BoltForest& bf) {
  LayoutReport report;
  const Dictionary& dict = bf.dictionary();
  const std::size_t entries = std::max<std::size_t>(1, dict.num_entries());

  // Largest feature set across all dictionary entries (§5) sizes the
  // bitmask; each entry needs a mask bitmap and a values bitmap.
  std::size_t max_items = 0;
  std::size_t total_items = 0;
  for (std::size_t e = 0; e < dict.num_entries(); ++e) {
    const std::size_t items =
        dict.common_items(e).size() + dict.address_bits(e);
    max_items = std::max(max_items, items);
    total_items += items;
  }
  report.dict_masks.bolt_bytes_per_entry =
      2.0 * std::ceil(static_cast<double>(max_items) / 8.0);
  report.dict_masks.plain_bytes_per_entry =
      2.0 * static_cast<double>(max_items);  // 1-byte boolean arrays

  // Feature-value pairs: Bolt reserves bit_width(num_features) bits per
  // feature id and only enough value bits to cover the largest split value
  // (after the §5 normalization shift); plain layout uses two ints.
  float max_threshold = 0.0f;
  for (const auto& p : bf.space().predicates()) {
    max_threshold = std::max(max_threshold, std::abs(p.threshold));
  }
  const unsigned feature_bits = util::bit_width_for(
      std::max<std::uint64_t>(1, bf.num_features() ? bf.num_features() - 1 : 0));
  const unsigned value_bits = util::bit_width_for(std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(max_threshold))));
  const double avg_items =
      static_cast<double>(total_items) / static_cast<double>(entries);
  report.dict_features.bolt_bytes_per_entry =
      avg_items * static_cast<double>(feature_bits + value_bits) / 8.0;
  report.dict_features.plain_bytes_per_entry =
      avg_items * (sizeof(std::int32_t) + sizeof(std::int32_t));

  // Lookup-table results: knee-point pool encoding vs 4-byte values,
  // amortized per table entry (slots reference pool rows).
  const std::size_t table_entries =
      std::max<std::size_t>(1, bf.stats().table_entries);
  const double pool_rows = static_cast<double>(
      std::max<std::size_t>(1, bf.results().size()));
  const double bolt_row_bytes =
      static_cast<double>(bf.results().compressed_bytes()) / pool_rows;
  const double plain_row_bytes =
      static_cast<double>(bf.results().decompressed_bytes()) / pool_rows;
  // A slot stores a pool reference sized to address the pool plus the row
  // amortized over the slots sharing it.
  const double ref_bits =
      util::bit_width_for(std::max<std::uint64_t>(1, pool_rows - 1));
  const double sharing =
      static_cast<double>(table_entries) / pool_rows;  // entries per row
  report.table_results.bolt_bytes_per_entry =
      ref_bits / 8.0 + bolt_row_bytes / sharing;
  report.table_results.plain_bytes_per_entry =
      sizeof(std::uint32_t) + plain_row_bytes / sharing;

  // Entry ID: 1 byte (mod 256, §5) vs a 4-byte id.
  report.table_entry_id.bolt_bytes_per_entry = 1.0;
  report.table_entry_id.plain_bytes_per_entry = sizeof(std::uint32_t);

  return report;
}

}  // namespace bolt::core
