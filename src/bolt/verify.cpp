#include "bolt/verify.h"

#include <algorithm>
#include <cmath>

#include "bolt/engine.h"
#include "util/rng.h"

namespace bolt::core {
namespace {

/// Distinct split thresholds per feature, ascending.
std::vector<std::vector<float>> thresholds_by_feature(
    const forest::Forest& forest) {
  std::vector<std::vector<float>> by_feature(forest.num_features);
  for (const auto& tree : forest.trees) {
    for (const auto& n : tree.nodes()) {
      if (!n.is_leaf()) by_feature[n.feature].push_back(n.threshold);
    }
  }
  for (auto& v : by_feature) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return by_feature;
}

/// Representative value for "exactly the first `cut` thresholds are below
/// x": cut = 0 -> x == lowest threshold (every predicate true);
/// cut = m -> x above every threshold.
float representative(const std::vector<float>& thresholds, std::size_t cut) {
  if (cut == thresholds.size()) return thresholds.back() + 1.0f;
  // x must satisfy: > thresholds[cut-1] (if any) and <= thresholds[cut].
  // The threshold itself qualifies (comparisons are <=).
  return thresholds[cut];
}

bool votes_equal(std::span<const double> a, std::span<const double> b) {
  for (std::size_t c = 0; c < a.size(); ++c) {
    if (std::abs(a[c] - b[c]) > 1e-6) return false;
  }
  return true;
}

}  // namespace

std::uint64_t feasible_classes(const forest::Forest& forest) {
  std::uint64_t classes = 1;
  for (const auto& t : thresholds_by_feature(forest)) {
    if (t.empty()) continue;
    const std::uint64_t options = t.size() + 1;
    if (classes > (~std::uint64_t{0}) / options) return ~std::uint64_t{0};
    classes *= options;
  }
  return classes;
}

std::optional<VerifyReport> verify_exhaustive(const forest::Forest& forest,
                                              const BoltForest& artifact,
                                              std::uint64_t max_classes) {
  const std::uint64_t classes = feasible_classes(forest);
  if (classes > max_classes) return std::nullopt;

  const auto by_feature = thresholds_by_feature(forest);
  std::vector<std::size_t> used;  // features with at least one threshold
  for (std::size_t f = 0; f < by_feature.size(); ++f) {
    if (!by_feature[f].empty()) used.push_back(f);
  }

  BoltEngine engine(artifact);
  VerifyReport report;
  report.exhaustive = true;

  // Mixed-radix counter over per-feature cut positions; unused features
  // are irrelevant to every path, any constant works.
  std::vector<std::size_t> cuts(used.size(), 0);
  std::vector<float> x(forest.num_features, 0.0f);
  for (std::size_t k = 0; k < used.size(); ++k) {
    x[used[k]] = representative(by_feature[used[k]], 0);
  }

  std::vector<double> bolt_votes(forest.num_classes);
  for (;;) {
    ++report.checked;
    engine.vote(x, bolt_votes);
    const auto expected = forest.vote(x);
    if (!votes_equal(bolt_votes, expected)) {
      ++report.mismatches;
      if (!report.counterexample) report.counterexample = x;
    }

    // Increment the counter.
    std::size_t k = 0;
    for (; k < used.size(); ++k) {
      if (cuts[k] < by_feature[used[k]].size()) {
        ++cuts[k];
        x[used[k]] = representative(by_feature[used[k]], cuts[k]);
        break;
      }
      cuts[k] = 0;
      x[used[k]] = representative(by_feature[used[k]], 0);
    }
    if (k == used.size()) break;  // counter wrapped: done
  }
  return report;
}

VerifyReport verify_sampled(const forest::Forest& forest,
                            const BoltForest& artifact, std::size_t samples,
                            std::uint64_t seed) {
  const auto by_feature = thresholds_by_feature(forest);
  util::Rng rng(seed);
  BoltEngine engine(artifact);
  VerifyReport report;
  report.exhaustive = false;

  std::vector<float> x(forest.num_features);
  std::vector<double> bolt_votes(forest.num_classes);
  for (std::size_t i = 0; i < samples; ++i) {
    for (std::size_t f = 0; f < x.size(); ++f) {
      const auto& t = by_feature[f];
      switch (rng.below(4)) {
        case 0:
          x[f] = static_cast<float>(rng.uniform(-1e4, 1e4));
          break;
        case 1:
          x[f] = t.empty() ? 0.0f : t[rng.below(t.size())];  // exact hit
          break;
        case 2:
          x[f] = t.empty()
                     ? 1.0f
                     : t[rng.below(t.size())] +
                           static_cast<float>(rng.uniform(-0.5, 0.5));
          break;
        default:
          x[f] = static_cast<float>(rng.normal(0.0, 100.0));
      }
    }
    ++report.checked;
    engine.vote(x, bolt_votes);
    const auto expected = forest.vote(x);
    if (!votes_equal(bolt_votes, expected)) {
      ++report.mismatches;
      if (!report.counterexample) report.counterexample = x;
    }
  }
  return report;
}

VerifyReport verify(const forest::Forest& forest, const BoltForest& artifact,
                    std::size_t fallback_samples) {
  if (auto exhaustive = verify_exhaustive(forest, artifact)) {
    return *exhaustive;
  }
  return verify_sampled(forest, artifact, fallback_samples);
}

}  // namespace bolt::core
