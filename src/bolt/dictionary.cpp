#include "bolt/dictionary.h"

#include <map>

#include "util/binio.h"
#include "util/bits.h"

namespace bolt::core {

Dictionary::Dictionary(std::span<const Cluster> clusters,
                       std::size_t num_predicates)
    : num_entries_(clusters.size()), num_predicates_(num_predicates) {
  word_offsets_.reserve(num_entries_ + 1);
  addr_offsets_.reserve(num_entries_ + 1);
  addr_word_offsets_.reserve(num_entries_ + 1);
  common_offsets_.reserve(num_entries_ + 1);
  word_offsets_.push_back(0);
  addr_offsets_.push_back(0);
  addr_word_offsets_.push_back(0);
  common_offsets_.push_back(0);

  for (const Cluster& c : clusters) {
    // Group the cluster's common items into 64-bit windows.
    std::map<std::uint32_t, SparseWord> by_word;
    for (PathItem item : c.common_items) {
      const std::uint32_t pred = item_pred(item);
      const std::uint32_t w = pred >> 6;
      auto [it, inserted] = by_word.try_emplace(w, SparseWord{w, 0, 0});
      const std::uint64_t bit = std::uint64_t{1} << (pred & 63);
      it->second.mask |= bit;
      if (item_value(item)) it->second.expect |= bit;
    }
    for (const auto& [w, sw] : by_word) words_.push_back(sw);
    word_offsets_.push_back(static_cast<std::uint32_t>(words_.size()));

    addr_positions_.insert(addr_positions_.end(), c.uncommon_preds.begin(),
                           c.uncommon_preds.end());
    addr_offsets_.push_back(static_cast<std::uint32_t>(addr_positions_.size()));

    // PEXT windows: group the (ascending) uncommon predicates by word.
    for (std::size_t k = 0; k < c.uncommon_preds.size();) {
      const std::uint32_t w = c.uncommon_preds[k] >> 6;
      std::uint64_t mask = 0;
      while (k < c.uncommon_preds.size() && (c.uncommon_preds[k] >> 6) == w) {
        mask |= std::uint64_t{1} << (c.uncommon_preds[k] & 63);
        ++k;
      }
      addr_words_.push_back({w, mask});
    }
    addr_word_offsets_.push_back(
        static_cast<std::uint32_t>(addr_words_.size()));

    common_pool_.insert(common_pool_.end(), c.common_items.begin(),
                        c.common_items.end());
    common_offsets_.push_back(static_cast<std::uint32_t>(common_pool_.size()));
  }
}

std::size_t Dictionary::memory_bytes() const {
  return word_offsets_.size() * sizeof(std::uint32_t) +
         words_.size() * sizeof(SparseWord) +
         addr_offsets_.size() * sizeof(std::uint32_t) +
         addr_positions_.size() * sizeof(std::uint32_t) +
         addr_word_offsets_.size() * sizeof(std::uint32_t) +
         addr_words_.size() * sizeof(AddrWord) +
         common_offsets_.size() * sizeof(std::uint32_t) +
         common_pool_.size() * sizeof(PathItem);
}

void Dictionary::save(std::ostream& out) const {
  util::put(out, static_cast<std::uint64_t>(num_entries_));
  util::put(out, static_cast<std::uint64_t>(num_predicates_));
  util::put_vec(out, word_offsets_);
  util::put_vec(out, words_);
  util::put_vec(out, addr_offsets_);
  util::put_vec(out, addr_positions_);
  util::put_vec(out, addr_word_offsets_);
  util::put_vec(out, addr_words_);
  util::put_vec(out, common_offsets_);
  util::put_vec(out, common_pool_);
}

Dictionary Dictionary::load(std::istream& in) {
  Dictionary d;
  d.num_entries_ = util::get<std::uint64_t>(in);
  d.num_predicates_ = util::get<std::uint64_t>(in);
  d.word_offsets_ = util::get_vec<std::uint32_t>(in);
  d.words_ = util::get_vec<SparseWord>(in);
  d.addr_offsets_ = util::get_vec<std::uint32_t>(in);
  d.addr_positions_ = util::get_vec<std::uint32_t>(in);
  d.addr_word_offsets_ = util::get_vec<std::uint32_t>(in);
  d.addr_words_ = util::get_vec<AddrWord>(in);
  d.common_offsets_ = util::get_vec<std::uint32_t>(in);
  d.common_pool_ = util::get_vec<PathItem>(in);
  if (d.word_offsets_.size() != d.num_entries_ + 1 ||
      d.addr_offsets_.size() != d.num_entries_ + 1 ||
      d.addr_word_offsets_.size() != d.num_entries_ + 1 ||
      d.common_offsets_.size() != d.num_entries_ + 1) {
    throw std::runtime_error("dictionary load: inconsistent offsets");
  }
  // Bounds validation so a corrupted artifact can never cause
  // out-of-range reads during inference.
  auto check_offsets = [&](const std::vector<std::uint32_t>& offs,
                           std::size_t pool) {
    if (!offs.empty() && offs.front() != 0) {
      throw std::runtime_error("dictionary load: offsets must start at 0");
    }
    for (std::size_t i = 1; i < offs.size(); ++i) {
      if (offs[i] < offs[i - 1]) {
        throw std::runtime_error("dictionary load: offsets not monotone");
      }
    }
    if (!offs.empty() && offs.back() != pool) {
      throw std::runtime_error("dictionary load: offsets/pool mismatch");
    }
  };
  check_offsets(d.word_offsets_, d.words_.size());
  check_offsets(d.addr_offsets_, d.addr_positions_.size());
  check_offsets(d.addr_word_offsets_, d.addr_words_.size());
  check_offsets(d.common_offsets_, d.common_pool_.size());
  const std::size_t nwords = util::words_for_bits(d.num_predicates_);
  for (const SparseWord& sw : d.words_) {
    if (sw.word >= nwords || (sw.expect & ~sw.mask) != 0) {
      throw std::runtime_error("dictionary load: bad sparse word");
    }
  }
  for (const AddrWord& aw : d.addr_words_) {
    if (aw.word >= nwords) {
      throw std::runtime_error("dictionary load: bad address word");
    }
  }
  for (std::uint32_t p : d.addr_positions_) {
    if (p >= d.num_predicates_) {
      throw std::runtime_error("dictionary load: position out of range");
    }
  }
  for (PathItem item : d.common_pool_) {
    if (item_pred(item) >= d.num_predicates_) {
      throw std::runtime_error("dictionary load: item out of range");
    }
  }
  // Per-entry address width must fit the 64-bit address path.
  for (std::size_t e = 0; e < d.num_entries_; ++e) {
    if (d.addr_offsets_[e + 1] - d.addr_offsets_[e] > 64) {
      throw std::runtime_error("dictionary load: address too wide");
    }
  }
  return d;
}

}  // namespace bolt::core
