#include "bolt/dictionary.h"

#include <map>

#include "util/binio.h"
#include "util/bits.h"

namespace bolt::core {

Dictionary::Dictionary(std::span<const Cluster> clusters,
                       std::size_t num_predicates)
    : num_entries_(clusters.size()), num_predicates_(num_predicates) {
  word_offsets_.reserve(num_entries_ + 1);
  addr_offsets_.reserve(num_entries_ + 1);
  addr_word_offsets_.reserve(num_entries_ + 1);
  common_offsets_.reserve(num_entries_ + 1);
  word_offsets_.push_back(0);
  addr_offsets_.push_back(0);
  addr_word_offsets_.push_back(0);
  common_offsets_.push_back(0);

  for (const Cluster& c : clusters) {
    // Group the cluster's common items into 64-bit windows.
    std::map<std::uint32_t, SparseWord> by_word;
    for (PathItem item : c.common_items) {
      const std::uint32_t pred = item_pred(item);
      const std::uint32_t w = pred >> 6;
      auto [it, inserted] = by_word.try_emplace(w, SparseWord{w, 0, 0});
      const std::uint64_t bit = std::uint64_t{1} << (pred & 63);
      it->second.mask |= bit;
      if (item_value(item)) it->second.expect |= bit;
    }
    for (const auto& [w, sw] : by_word) words_.push_back(sw);
    word_offsets_.push_back(static_cast<std::uint32_t>(words_.size()));

    addr_positions_.append(c.uncommon_preds.begin(), c.uncommon_preds.end());
    addr_offsets_.push_back(static_cast<std::uint32_t>(addr_positions_.size()));

    // PEXT windows: group the (ascending) uncommon predicates by word.
    for (std::size_t k = 0; k < c.uncommon_preds.size();) {
      const std::uint32_t w = c.uncommon_preds[k] >> 6;
      std::uint64_t mask = 0;
      while (k < c.uncommon_preds.size() && (c.uncommon_preds[k] >> 6) == w) {
        mask |= std::uint64_t{1} << (c.uncommon_preds[k] & 63);
        ++k;
      }
      addr_words_.push_back({w, mask});
    }
    addr_word_offsets_.push_back(
        static_cast<std::uint32_t>(addr_words_.size()));

    common_pool_.append(c.common_items.begin(), c.common_items.end());
    common_offsets_.push_back(static_cast<std::uint32_t>(common_pool_.size()));
  }
}

std::size_t Dictionary::memory_bytes() const {
  return word_offsets_.size() * sizeof(std::uint32_t) +
         words_.size() * sizeof(SparseWord) +
         addr_offsets_.size() * sizeof(std::uint32_t) +
         addr_positions_.size() * sizeof(std::uint32_t) +
         addr_word_offsets_.size() * sizeof(std::uint32_t) +
         addr_words_.size() * sizeof(AddrWord) +
         common_offsets_.size() * sizeof(std::uint32_t) +
         common_pool_.size() * sizeof(PathItem);
}

void Dictionary::save(std::ostream& out) const {
  util::put(out, static_cast<std::uint64_t>(num_entries_));
  util::put(out, static_cast<std::uint64_t>(num_predicates_));
  util::put_vec(out, word_offsets_);
  util::put_vec(out, words_);
  util::put_vec(out, addr_offsets_);
  util::put_vec(out, addr_positions_);
  util::put_vec(out, addr_word_offsets_);
  util::put_vec(out, addr_words_);
  util::put_vec(out, common_offsets_);
  util::put_vec(out, common_pool_);
}

Dictionary Dictionary::load(std::istream& in) {
  Dictionary d;
  d.num_entries_ = util::get<std::uint64_t>(in);
  d.num_predicates_ = util::get<std::uint64_t>(in);
  d.word_offsets_ = util::get_vec<std::uint32_t>(in);
  d.words_ = util::get_vec<SparseWord>(in);
  d.addr_offsets_ = util::get_vec<std::uint32_t>(in);
  d.addr_positions_ = util::get_vec<std::uint32_t>(in);
  d.addr_word_offsets_ = util::get_vec<std::uint32_t>(in);
  d.addr_words_ = util::get_vec<AddrWord>(in);
  d.common_offsets_ = util::get_vec<std::uint32_t>(in);
  d.common_pool_ = util::get_vec<PathItem>(in);
  d.validate();
  return d;
}

Dictionary Dictionary::from_views(std::size_t num_entries,
                                  std::size_t num_predicates, const Views& v,
                                  bool deep_validate) {
  Dictionary d;
  d.num_entries_ = num_entries;
  d.num_predicates_ = num_predicates;
  auto borrow = [](auto& dst, auto span) {
    dst = std::remove_reference_t<decltype(dst)>::view(span.data(),
                                                       span.size());
  };
  borrow(d.word_offsets_, v.word_offsets);
  borrow(d.words_, v.words);
  borrow(d.addr_offsets_, v.addr_offsets);
  borrow(d.addr_positions_, v.addr_positions);
  borrow(d.addr_word_offsets_, v.addr_word_offsets);
  borrow(d.addr_words_, v.addr_words);
  borrow(d.common_offsets_, v.common_offsets);
  borrow(d.common_pool_, v.common_pool);
  d.validate(deep_validate);
  return d;
}

void Dictionary::validate(bool deep) const {
  if (word_offsets_.size() != num_entries_ + 1 ||
      addr_offsets_.size() != num_entries_ + 1 ||
      addr_word_offsets_.size() != num_entries_ + 1 ||
      common_offsets_.size() != num_entries_ + 1) {
    throw std::runtime_error("dictionary load: inconsistent offsets");
  }
  // Bounds validation so a corrupted artifact can never cause
  // out-of-range reads during inference. Every per-element check
  // accumulates a violation flag branchlessly and throws once at the end:
  // these passes stream megabytes on the v2 mmap cold-start path, and a
  // throw branch per element defeats vectorization (docs/ARTIFACT_FORMAT.md
  // "fixup rules" times this).
  auto check_offsets = [&](std::span<const std::uint32_t> offs,
                           std::size_t pool) {
    if (!offs.empty() && (offs.front() != 0 || offs.back() != pool)) {
      throw std::runtime_error("dictionary load: offsets/pool mismatch");
    }
    if (!deep) return;
    std::uint32_t bad = 0;
    for (std::size_t i = 1; i < offs.size(); ++i) {
      bad |= static_cast<std::uint32_t>(offs[i] < offs[i - 1]);
    }
    if (bad != 0) {
      throw std::runtime_error("dictionary load: offsets not monotone");
    }
  };
  check_offsets(word_offsets_, words_.size());
  check_offsets(addr_offsets_, addr_positions_.size());
  check_offsets(addr_word_offsets_, addr_words_.size());
  check_offsets(common_offsets_, common_pool_.size());
  if (!deep) return;
  const std::size_t nwords = util::words_for_bits(num_predicates_);
  std::uint32_t bad_word = 0;
  for (const SparseWord& sw : words_) {
    bad_word |= static_cast<std::uint32_t>(sw.word >= nwords) |
                static_cast<std::uint32_t>((sw.expect & ~sw.mask) != 0);
  }
  if (bad_word != 0) {
    throw std::runtime_error("dictionary load: bad sparse word");
  }
  std::uint32_t bad_addr = 0;
  for (const AddrWord& aw : addr_words_) {
    bad_addr |= static_cast<std::uint32_t>(aw.word >= nwords);
  }
  if (bad_addr != 0) {
    throw std::runtime_error("dictionary load: bad address word");
  }
  std::uint32_t bad_pos = 0;
  for (std::uint32_t p : addr_positions_) {
    bad_pos |= static_cast<std::uint32_t>(p >= num_predicates_);
  }
  if (bad_pos != 0) {
    throw std::runtime_error("dictionary load: position out of range");
  }
  std::uint32_t bad_item = 0;
  for (PathItem item : common_pool_) {
    bad_item |= static_cast<std::uint32_t>(item_pred(item) >= num_predicates_);
  }
  if (bad_item != 0) {
    throw std::runtime_error("dictionary load: item out of range");
  }
  // Per-entry address width must fit the 64-bit address path.
  std::uint32_t bad_width = 0;
  for (std::size_t e = 0; e < num_entries_; ++e) {
    bad_width |=
        static_cast<std::uint32_t>(addr_offsets_[e + 1] - addr_offsets_[e] > 64);
  }
  if (bad_width != 0) {
    throw std::runtime_error("dictionary load: address too wide");
  }
}

std::size_t Dictionary::owned_bytes() const {
  return word_offsets_.owned_bytes() + words_.owned_bytes() +
         addr_offsets_.owned_bytes() + addr_positions_.owned_bytes() +
         addr_word_offsets_.owned_bytes() + addr_words_.owned_bytes() +
         common_offsets_.owned_bytes() + common_pool_.owned_bytes();
}

}  // namespace bolt::core
