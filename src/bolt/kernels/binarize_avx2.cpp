// AVX2 binarize kernels (this TU is compiled with -mavx2; see
// src/bolt/CMakeLists.txt — callers reach these only through KernelOps
// after the CPU check).
//
// binarize_row: the gather/compare/movemask pass over the SoA mirrors — 8
// predicates per op, accumulated 8 bits at a time into each output word.
// binarize_tile: the columnar driver with an 8-row-per-op compare — one
// threshold broadcast against a staged 64-row feature column, no gathers.
#include <immintrin.h>

#include "bolt/kernels/binarize_impl.h"

namespace bolt::kernels::detail {

void binarize_row_avx2(const forest::PredicateSoA& space, const float* x,
                       std::uint64_t* out_words) {
  const std::int32_t* feats = space.features;
  const float* thrs = space.thresholds;
  const std::size_t n = space.num_predicates;
  std::size_t p = 0;
  std::size_t w = 0;
  while (p + 8 <= n) {
    std::uint64_t acc = 0;
    const std::size_t lo = p;
    while (p + 8 <= n && p - lo < 64) {
      const __m256i idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(feats + p));
      const __m256 vals = _mm256_i32gather_ps(x, idx, 4);
      const __m256 thr = _mm256_loadu_ps(thrs + p);
      const __m256 cmp = _mm256_cmp_ps(vals, thr, _CMP_LE_OQ);
      acc |= static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(_mm256_movemask_ps(cmp)))
             << (p - lo);
      p += 8;
    }
    out_words[w++] = acc;
  }
  // Scalar tail (fewer than 8 predicates remaining). When the vector loop
  // stopped mid-word (p % 64 != 0), that word was just written above this
  // call — merge into it, never into stale memory.
  if (p < n) {
    std::uint64_t acc = (p % 64 == 0) ? 0 : out_words[p >> 6];
    for (; p < n; ++p) {
      acc |= static_cast<std::uint64_t>(x[feats[p]] <= thrs[p]) << (p & 63);
    }
    out_words[(n - 1) >> 6] = acc;
  }
}

void binarize_tile_avx2(const forest::PredicateSoA& space, const float* rows,
                        std::size_t num_rows, std::size_t row_stride,
                        std::uint64_t* tile_t) {
  binarize_tile_driver(
      space, rows, num_rows, row_stride, tile_t,
      [](const float* col, float t) {
        const __m256 thr = _mm256_set1_ps(t);
        std::uint64_t rm = 0;
        for (std::size_t r = 0; r < kTileRows; r += 8) {
          const __m256 vals = _mm256_load_ps(col + r);
          const __m256 cmp = _mm256_cmp_ps(vals, thr, _CMP_LE_OQ);
          rm |= static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(_mm256_movemask_ps(cmp)))
                << r;
        }
        return rm;
      });
}

}  // namespace bolt::kernels::detail
