#include "bolt/kernels/kernels.h"

#include <map>
#include <stdexcept>
#include <string>

#include "util/bits.h"

namespace bolt::kernels {
namespace {

constexpr std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) / align * align;
}

}  // namespace

ScanLayout::ScanLayout(const core::Dictionary& dict, std::size_t entry_begin,
                       std::size_t entry_end)
    : num_entries_(entry_end - entry_begin) {
  // Bucket entries by sparse-word count; ascending entry order within a
  // bucket keeps the local order deterministic (tests and the engine's
  // accept order depend on it being a pure function of the dictionary).
  std::map<std::uint32_t, std::vector<std::uint32_t>> by_width;
  for (std::size_t e = entry_begin; e < entry_end; ++e) {
    const auto width = static_cast<std::uint32_t>(dict.sparse_words(e).size());
    by_width[width].push_back(static_cast<std::uint32_t>(e));
  }

  std::size_t pool = 0;
  std::size_t base = 0;
  buckets_.reserve(by_width.size());
  for (const auto& [width, ids] : by_width) {
    Bucket b;
    b.width = width;
    b.count = static_cast<std::uint32_t>(ids.size());
    b.padded = static_cast<std::uint32_t>(round_up(b.count, kLanePad));
    b.local_base = static_cast<std::uint32_t>(base);
    b.plane_offset = pool;
    buckets_.push_back(b);
    pool += static_cast<std::size_t>(width) * b.padded;
    base = round_up(base + b.padded, 64);
  }
  local_size_ = base;

  perm_.assign(local_size_, kInvalidEntry);
  widx_.assign(pool, 0);
  mask_.assign(pool, 0);
  expect_.assign(pool, 0);

  std::size_t bucket_i = 0;
  for (const auto& [width, ids] : by_width) {
    const Bucket& b = buckets_[bucket_i++];
    for (std::uint32_t i = 0; i < b.count; ++i) {
      const std::uint32_t e = ids[i];
      perm_.mut(b.local_base + i) = e;
      const auto words = dict.sparse_words(e);
      for (std::uint32_t k = 0; k < b.width; ++k) {
        const std::size_t p =
            b.plane_offset + static_cast<std::size_t>(k) * b.padded + i;
        widx_.mut(p) = words[k].word;
        mask_.mut(p) = words[k].mask;
        expect_.mut(p) = words[k].expect;
      }
    }
    // Padding lanes never match: plane 0 demands a set bit under an empty
    // mask, so their diff is non-zero for every input (the remaining
    // planes stay neutral). Word index 0 keeps their gathers in bounds.
    for (std::uint32_t i = b.count; i < b.padded && b.width > 0; ++i) {
      expect_.mut(b.plane_offset + i) = 1;
    }
  }
}

ScanLayout ScanLayout::from_views(std::size_t num_entries,
                                  std::size_t local_size,
                                  std::span<const Bucket> buckets,
                                  std::span<const std::uint32_t> perm,
                                  std::span<const std::uint32_t> widx,
                                  std::span<const std::uint64_t> mask,
                                  std::span<const std::uint64_t> expect,
                                  std::size_t dict_num_entries,
                                  std::size_t num_predicates,
                                  bool deep_validate) {
  auto fail = [](const char* what) {
    throw std::runtime_error(std::string("scan layout load: ") + what);
  };

  // The kernels issue aligned vector loads over the plane pools.
  for (const void* p : {static_cast<const void*>(widx.data()),
                        static_cast<const void*>(mask.data()),
                        static_cast<const void*>(expect.data())}) {
    if (reinterpret_cast<std::uintptr_t>(p) % 64 != 0) {
      fail("plane pools not 64-byte aligned");
    }
  }
  if (mask.size() != widx.size() || expect.size() != widx.size()) {
    fail("plane pool size mismatch");
  }
  if (local_size % 64 != 0 || perm.size() != local_size) {
    fail("bad local index space");
  }

  // Replay the constructor's packing arithmetic: buckets must be exactly
  // the deterministic layout build() produces (strictly ascending widths,
  // sequential plane offsets, 64-aligned bases, kLanePad padding). This is
  // both the simplest check to reason about and the strictest — any file
  // that passes is indistinguishable from a rebuilt layout geometrically.
  std::size_t pool = 0;
  std::size_t base = 0;
  std::size_t counted = 0;
  std::uint32_t prev_width = 0;
  bool first = true;
  for (const Bucket& b : buckets) {
    if (!first && b.width <= prev_width) fail("bucket widths not ascending");
    first = false;
    prev_width = b.width;
    if (b.count == 0 || b.padded != round_up(b.count, kLanePad)) {
      fail("bad bucket padding");
    }
    if (b.local_base != base || b.plane_offset != pool) {
      fail("bucket offsets out of sequence");
    }
    pool += static_cast<std::size_t>(b.width) * b.padded;
    base = round_up(base + b.padded, 64);
    counted += b.count;
  }
  if (base != local_size || pool != widx.size() || counted != num_entries ||
      num_entries > dict_num_entries) {
    fail("bucket totals inconsistent");
  }

  if (deep_validate) {
    // Branchless accumulate over the plane pool (streams on the mmap
    // cold-start path; a throw branch per element defeats vectorization).
    const std::size_t nwords = util::words_for_bits(num_predicates);
    std::uint32_t bad_widx = 0;
    for (std::uint32_t w : widx) {
      bad_widx |= static_cast<std::uint32_t>(w >= nwords);
    }
    if (bad_widx != 0) fail("word index out of range");

    // perm: real lanes must name a dictionary entry the engines can
    // index; padding and gap lanes must be kInvalidEntry AND provably
    // never match (plane 0 demands a bit under an empty mask), because
    // the row kernels evaluate padding lanes and a matching one would
    // surface kInvalidEntry as an entry id.
    std::vector<char> is_real(local_size, 0);
    for (const Bucket& b : buckets) {
      for (std::uint32_t i = 0; i < b.count; ++i) {
        if (perm[b.local_base + i] >= dict_num_entries) {
          fail("perm out of range");
        }
        is_real[b.local_base + i] = 1;
      }
      for (std::uint32_t i = b.count; i < b.padded && b.width > 0; ++i) {
        const std::size_t p = b.plane_offset + i;
        if ((expect[p] & ~mask[p]) == 0) fail("padding lane can match");
      }
    }
    for (std::size_t l = 0; l < local_size; ++l) {
      if (!is_real[l] && perm[l] != kInvalidEntry) {
        fail("gap lane not invalid");
      }
    }
  }

  ScanLayout s;
  s.num_entries_ = num_entries;
  s.local_size_ = local_size;
  s.buckets_.assign(buckets.begin(), buckets.end());
  s.perm_ = util::VecOrView<std::uint32_t>::view(perm.data(), perm.size());
  s.widx_ = decltype(s.widx_)::view(widx.data(), widx.size());
  s.mask_ = decltype(s.mask_)::view(mask.data(), mask.size());
  s.expect_ = decltype(s.expect_)::view(expect.data(), expect.size());
  return s;
}

std::size_t ScanLayout::memory_bytes() const {
  return buckets_.size() * sizeof(Bucket) +
         perm_.size() * sizeof(std::uint32_t) +
         widx_.size() * sizeof(std::uint32_t) +
         (mask_.size() + expect_.size()) * sizeof(std::uint64_t);
}

}  // namespace bolt::kernels
