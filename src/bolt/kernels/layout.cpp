#include "bolt/kernels/kernels.h"

#include <map>

namespace bolt::kernels {
namespace {

constexpr std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) / align * align;
}

}  // namespace

ScanLayout::ScanLayout(const core::Dictionary& dict, std::size_t entry_begin,
                       std::size_t entry_end)
    : num_entries_(entry_end - entry_begin) {
  // Bucket entries by sparse-word count; ascending entry order within a
  // bucket keeps the local order deterministic (tests and the engine's
  // accept order depend on it being a pure function of the dictionary).
  std::map<std::uint32_t, std::vector<std::uint32_t>> by_width;
  for (std::size_t e = entry_begin; e < entry_end; ++e) {
    const auto width = static_cast<std::uint32_t>(dict.sparse_words(e).size());
    by_width[width].push_back(static_cast<std::uint32_t>(e));
  }

  std::size_t pool = 0;
  std::size_t base = 0;
  buckets_.reserve(by_width.size());
  for (const auto& [width, ids] : by_width) {
    Bucket b;
    b.width = width;
    b.count = static_cast<std::uint32_t>(ids.size());
    b.padded = static_cast<std::uint32_t>(round_up(b.count, kLanePad));
    b.local_base = static_cast<std::uint32_t>(base);
    b.plane_offset = pool;
    buckets_.push_back(b);
    pool += static_cast<std::size_t>(width) * b.padded;
    base = round_up(base + b.padded, 64);
  }
  local_size_ = base;

  perm_.assign(local_size_, kInvalidEntry);
  widx_.assign(pool, 0);
  mask_.assign(pool, 0);
  expect_.assign(pool, 0);

  std::size_t bucket_i = 0;
  for (const auto& [width, ids] : by_width) {
    const Bucket& b = buckets_[bucket_i++];
    for (std::uint32_t i = 0; i < b.count; ++i) {
      const std::uint32_t e = ids[i];
      perm_[b.local_base + i] = e;
      const auto words = dict.sparse_words(e);
      for (std::uint32_t k = 0; k < b.width; ++k) {
        const std::size_t p =
            b.plane_offset + static_cast<std::size_t>(k) * b.padded + i;
        widx_[p] = words[k].word;
        mask_[p] = words[k].mask;
        expect_[p] = words[k].expect;
      }
    }
    // Padding lanes never match: plane 0 demands a set bit under an empty
    // mask, so their diff is non-zero for every input (the remaining
    // planes stay neutral). Word index 0 keeps their gathers in bounds.
    for (std::uint32_t i = b.count; i < b.padded && b.width > 0; ++i) {
      expect_[b.plane_offset + i] = 1;
    }
  }
}

std::size_t ScanLayout::memory_bytes() const {
  return buckets_.size() * sizeof(Bucket) +
         perm_.size() * sizeof(std::uint32_t) +
         widx_.size() * sizeof(std::uint32_t) +
         (mask_.size() + expect_.size()) * sizeof(std::uint64_t);
}

}  // namespace bolt::kernels
