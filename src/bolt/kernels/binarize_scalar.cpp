// Portable columnar tile binarize: the fallback on CPUs (or builds)
// without SIMD and — because it runs the exact same driver skeleton, CSR
// walk, rowmask masking, and transpose as the vector variants — the
// bit-identity reference for binarize_tile. (The row-shaped scalar
// binarize is forest::binarize_row_scalar itself; the scalar KernelOps
// table points straight at it.)
#include "bolt/kernels/binarize_impl.h"

namespace bolt::kernels::detail {

void binarize_tile_scalar(const forest::PredicateSoA& space, const float* rows,
                          std::size_t num_rows, std::size_t row_stride,
                          std::uint64_t* tile_t) {
  binarize_tile_driver(space, rows, num_rows, row_stride, tile_t,
                       [](const float* col, float t) {
                         std::uint64_t rm = 0;
                         for (std::size_t r = 0; r < kTileRows; ++r) {
                           rm |= static_cast<std::uint64_t>(col[r] <= t) << r;
                         }
                         return rm;
                       });
}

}  // namespace bolt::kernels::detail
