// AVX-512 binarize kernels (this TU is compiled with -mavx512f; see
// src/bolt/CMakeLists.txt — callers reach these only through KernelOps
// after the CPU check).
//
// binarize_row: 16-predicate gather/compare, the compare mask register
// shifted straight into the word accumulator (16 | 64, so a word is
// exactly four compares and the inner loop never stops mid-word except at
// the predicate tail). binarize_tile: the columnar driver with a
// 16-row-per-op compare — a 64-row column is four compares per threshold.
#include <immintrin.h>

#include "bolt/kernels/binarize_impl.h"

namespace bolt::kernels::detail {

void binarize_row_avx512(const forest::PredicateSoA& space, const float* x,
                         std::uint64_t* out_words) {
  const std::int32_t* feats = space.features;
  const float* thrs = space.thresholds;
  const std::size_t n = space.num_predicates;
  std::size_t p = 0;
  std::size_t w = 0;
  while (p + 16 <= n) {
    std::uint64_t acc = 0;
    const std::size_t lo = p;
    while (p + 16 <= n && p - lo < 64) {
      const __m512i idx = _mm512_loadu_si512(feats + p);
      const __m512 vals = _mm512_i32gather_ps(idx, x, 4);
      const __m512 thr = _mm512_loadu_ps(thrs + p);
      const __mmask16 cmp = _mm512_cmp_ps_mask(vals, thr, _CMP_LE_OQ);
      acc |= static_cast<std::uint64_t>(cmp) << (p - lo);
      p += 16;
    }
    out_words[w++] = acc;
  }
  // Scalar tail (fewer than 16 predicates remaining). When the vector loop
  // stopped mid-word (p % 64 != 0), that word was just written above this
  // call — merge into it, never into stale memory.
  if (p < n) {
    std::uint64_t acc = (p % 64 == 0) ? 0 : out_words[p >> 6];
    for (; p < n; ++p) {
      acc |= static_cast<std::uint64_t>(x[feats[p]] <= thrs[p]) << (p & 63);
    }
    out_words[(n - 1) >> 6] = acc;
  }
}

void binarize_tile_avx512(const forest::PredicateSoA& space, const float* rows,
                          std::size_t num_rows, std::size_t row_stride,
                          std::uint64_t* tile_t) {
  binarize_tile_driver(
      space, rows, num_rows, row_stride, tile_t,
      [](const float* col, float t) {
        const __m512 thr = _mm512_set1_ps(t);
        std::uint64_t rm = 0;
        for (std::size_t r = 0; r < kTileRows; r += 16) {
          const __m512 vals = _mm512_load_ps(col + r);
          rm |= static_cast<std::uint64_t>(
                    _mm512_cmp_ps_mask(vals, thr, _CMP_LE_OQ))
                << r;
        }
        return rm;
      });
}

}  // namespace bolt::kernels::detail
