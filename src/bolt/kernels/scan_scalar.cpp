// Portable membership kernels: the fallback on CPUs (or builds) without
// SIMD and the bit-identity oracle every vector kernel is swept against.
// Arithmetic is exactly Dictionary::matches_words — an OR-reduce of masked
// XORs in the entry's word order — walked in the layout's local order.
#include <algorithm>

#include "bolt/kernels/binarize_impl.h"
#include "bolt/kernels/kernels.h"

namespace bolt::kernels {
namespace {

void scan_row_scalar(const ScanLayout& layout, const std::uint64_t* row_words,
                     std::uint64_t* bitmap) {
  std::fill_n(bitmap, layout.bitmap_words(), std::uint64_t{0});
  const std::uint32_t* widx = layout.widx();
  const std::uint64_t* mask = layout.mask();
  const std::uint64_t* expect = layout.expect();
  for (const ScanLayout::Bucket& b : layout.buckets()) {
    if (b.width == 0) {
      detail::bitmap_fill_ones(b, bitmap);
      continue;
    }
    for (std::uint32_t i = 0; i < b.count; ++i) {
      std::uint64_t diff = 0;
      std::size_t p = b.plane_offset + i;
      for (std::uint32_t k = 0; k < b.width; ++k, p += b.padded) {
        diff |= (row_words[widx[p]] & mask[p]) ^ expect[p];
      }
      const std::size_t local = b.local_base + i;
      bitmap[local >> 6] |= static_cast<std::uint64_t>(diff == 0)
                            << (local & 63);
    }
  }
}

void scan_tile_scalar(const ScanLayout& layout, const std::uint64_t* tile_t,
                      std::size_t num_rows, std::uint64_t* rowmasks) {
  std::fill_n(rowmasks, layout.local_size(), std::uint64_t{0});
  const std::uint64_t rows_mask = detail::tile_rows_mask(num_rows);
  const std::uint32_t* widx = layout.widx();
  const std::uint64_t* mask = layout.mask();
  const std::uint64_t* expect = layout.expect();
  for (const ScanLayout::Bucket& b : layout.buckets()) {
    if (b.width == 0) {
      std::fill_n(rowmasks + b.local_base, b.count, rows_mask);
      continue;
    }
    for (std::uint32_t i = 0; i < b.count; ++i) {
      std::uint64_t rm = 0;
      for (std::size_t r = 0; r < num_rows; ++r) {
        std::uint64_t diff = 0;
        std::size_t p = b.plane_offset + i;
        for (std::uint32_t k = 0; k < b.width; ++k, p += b.padded) {
          diff |= (tile_t[static_cast<std::size_t>(widx[p]) * kTileRows + r] &
                   mask[p]) ^
                  expect[p];
        }
        rm |= static_cast<std::uint64_t>(diff == 0) << r;
      }
      rowmasks[b.local_base + i] = rm;
    }
  }
}

}  // namespace

extern const KernelOps kScalarOps;
const KernelOps kScalarOps = {"scalar",          "scalar_x1",
                              1,                 &scan_row_scalar,
                              &scan_tile_scalar, &forest::binarize_row_scalar,
                              &detail::binarize_tile_scalar};

}  // namespace bolt::kernels
