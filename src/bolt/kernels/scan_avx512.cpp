// AVX-512F membership kernels (this TU alone is compiled with -mavx512f;
// reached only through the dispatch table after util::cpu_features confirms
// AVX-512F plus OS zmm state support).
//
// Same shapes as the AVX2 kernels at twice the width — 8 entries per
// vector op on the per-row path, 8 tile rows per vector op on the batch
// path — and the 512-bit compare returns its result directly as a
// __mmask8, so the bitmap/rowmask bits need no movemask dance.
#include <immintrin.h>

#include <algorithm>

#include "bolt/kernels/binarize_impl.h"
#include "bolt/kernels/kernels.h"

namespace bolt::kernels {
namespace {

void scan_row_avx512(const ScanLayout& layout, const std::uint64_t* row_words,
                     std::uint64_t* bitmap) {
  std::fill_n(bitmap, layout.bitmap_words(), std::uint64_t{0});
  const std::uint32_t* widx = layout.widx();
  const std::uint64_t* mask = layout.mask();
  const std::uint64_t* expect = layout.expect();
  const __m512i zero = _mm512_setzero_si512();
  for (const ScanLayout::Bucket& b : layout.buckets()) {
    if (b.width == 0) {
      detail::bitmap_fill_ones(b, bitmap);
      continue;
    }
    for (std::uint32_t i = 0; i < b.padded; i += 8) {
      __m512i diff = zero;
      std::size_t p = b.plane_offset + i;
      for (std::uint32_t k = 0; k < b.width; ++k, p += b.padded) {
        const __m256i idx =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(widx + p));
        const __m512i words = _mm512_i32gather_epi64(
            idx, static_cast<const void*>(row_words), 8);
        const __m512i m = _mm512_load_si512(mask + p);
        const __m512i e = _mm512_load_si512(expect + p);
        diff = _mm512_or_si512(diff,
                               _mm512_xor_si512(_mm512_and_si512(words, m), e));
      }
      const __mmask8 eq = _mm512_cmpeq_epi64_mask(diff, zero);
      const std::size_t local = b.local_base + i;
      bitmap[local >> 6] |= static_cast<std::uint64_t>(eq) << (local & 63);
    }
  }
}

void scan_tile_avx512(const ScanLayout& layout, const std::uint64_t* tile_t,
                      std::size_t num_rows, std::uint64_t* rowmasks) {
  std::fill_n(rowmasks, layout.local_size(), std::uint64_t{0});
  const std::uint64_t rows_mask = detail::tile_rows_mask(num_rows);
  const std::size_t row_groups = (num_rows + 7) / 8;
  const std::uint32_t* widx = layout.widx();
  const std::uint64_t* mask = layout.mask();
  const std::uint64_t* expect = layout.expect();
  const __m512i zero = _mm512_setzero_si512();
  for (const ScanLayout::Bucket& b : layout.buckets()) {
    if (b.width == 0) {
      std::fill_n(rowmasks + b.local_base, b.count, rows_mask);
      continue;
    }
    for (std::uint32_t i = 0; i < b.count; ++i) {
      std::uint64_t rm = 0;
      for (std::size_t rb = 0; rb < row_groups; ++rb) {
        __m512i diff = zero;
        std::size_t p = b.plane_offset + i;
        for (std::uint32_t k = 0; k < b.width; ++k, p += b.padded) {
          const __m512i words = _mm512_load_si512(
              tile_t + static_cast<std::size_t>(widx[p]) * kTileRows + rb * 8);
          const __m512i m = _mm512_set1_epi64(static_cast<long long>(mask[p]));
          const __m512i e =
              _mm512_set1_epi64(static_cast<long long>(expect[p]));
          diff = _mm512_or_si512(
              diff, _mm512_xor_si512(_mm512_and_si512(words, m), e));
        }
        const __mmask8 eq = _mm512_cmpeq_epi64_mask(diff, zero);
        rm |= static_cast<std::uint64_t>(eq) << (rb * 8);
      }
      rowmasks[b.local_base + i] = rm & rows_mask;
    }
  }
}

}  // namespace

extern const KernelOps kAvx512Ops;
const KernelOps kAvx512Ops = {"avx512",          "avx512_x8",
                              8,                 &scan_row_avx512,
                              &scan_tile_avx512, &detail::binarize_row_avx512,
                              &detail::binarize_tile_avx512};

}  // namespace bolt::kernels
