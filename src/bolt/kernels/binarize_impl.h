// Kernel-internal declarations of the binarize implementations, so the
// KernelOps tables in scan_*.cpp can name functions that live in their
// ISA-gated sibling TUs (binarize_avx2.cpp is compiled with -mavx2,
// binarize_avx512.cpp with -mavx512f; taking their address needs no flag).
// The scalar row binarize is forest::binarize_row_scalar itself — the ops
// table points straight at the oracle, so "scalar kernel" and "oracle" are
// literally the same code.
//
// The shared helpers here are `static` (internal linkage) on purpose: this
// header is included by TUs compiled with different ISA flags, and an
// external-linkage inline would be emitted as one mergeable COMDAT — the
// linker could keep the -mavx512f copy and hand it to the scalar kernel on
// a CPU without AVX-512. Internal linkage keeps each TU's copy compiled
// with that TU's own flags. The tile driver is a template over the per-ISA
// rowmask functor; each TU's lambda has a unique type, so instantiations
// never collide either.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "bolt/kernels/kernels.h"
#include "forest/predicates.h"

namespace bolt::kernels::detail {

void binarize_tile_scalar(const forest::PredicateSoA& space, const float* rows,
                          std::size_t num_rows, std::size_t row_stride,
                          std::uint64_t* tile_t);

void binarize_row_avx2(const forest::PredicateSoA& space, const float* x,
                       std::uint64_t* out_words);
void binarize_tile_avx2(const forest::PredicateSoA& space, const float* rows,
                        std::size_t num_rows, std::size_t row_stride,
                        std::uint64_t* tile_t);

void binarize_row_avx512(const forest::PredicateSoA& space, const float* x,
                         std::uint64_t* out_words);
void binarize_tile_avx512(const forest::PredicateSoA& space, const float* rows,
                          std::size_t num_rows, std::size_t row_stride,
                          std::uint64_t* tile_t);

/// Stages input feature `f`'s column of the tile: col[r] = rows[r*stride+f]
/// for r < num_rows. The caller zero-fills col[num_rows, kTileRows) once
/// per tile (the buffer is reused across features and only the first
/// num_rows slots are rewritten), so vector lanes beyond the tile read
/// zeros, never garbage — their compare bits are discarded by the rowmask
/// AND below. Adjacent features of a row share cache lines, so the staging
/// working set stays L1-resident across a feature's CSR range.
static inline void stage_column(const float* rows, std::size_t num_rows,
                                std::size_t row_stride, std::size_t f,
                                float* col) {
  for (std::size_t r = 0; r < num_rows; ++r) {
    col[r] = rows[r * row_stride + f];
  }
}

/// Transposes one buffered group of 64 per-predicate rowmasks into the 64
/// per-row predicate words of tile word `w` and stores them at
/// tile_t[w * kTileRows]. Destroys `masks`.
static inline void flush_tile_word(std::uint64_t masks[kTileRows],
                                   std::size_t w, std::uint64_t* tile_t) {
  transpose_64x64(masks);
  std::copy(masks, masks + kTileRows, tile_t + w * kTileRows);
}

/// The columnar tile-binarize skeleton shared by every ISA variant: walk
/// features in CSR order (predicate IDs are dense and feature-sorted, so
/// the walk visits IDs 0..n-1 exactly once, in order), stage each used
/// feature's 64-row column once, evaluate every threshold of that feature
/// against the whole column via `rowmask_of(col, t)` (the per-ISA compare:
/// 1/8/16 rows per op), and buffer the per-predicate rowmasks until a
/// 64-predicate group is full, then bit-transpose it into the word-major
/// tile. Rowmasks are ANDed with tile_rows_mask, so rows >= num_rows
/// binarize to zero words in every variant — the tile is deterministic and
/// kernels are bit-comparable.
template <typename RowMaskFn>
static inline void binarize_tile_driver(const forest::PredicateSoA& space,
                                        const float* rows,
                                        std::size_t num_rows,
                                        std::size_t row_stride,
                                        std::uint64_t* tile_t,
                                        RowMaskFn&& rowmask_of) {
  const std::size_t n = space.num_predicates;
  const std::uint64_t rows_mask = tile_rows_mask(num_rows);
  alignas(64) float col[kTileRows] = {};  // zero tail for lanes >= num_rows
  alignas(64) std::uint64_t masks[kTileRows];
  for (std::size_t f = 0; f < space.num_features; ++f) {
    const std::uint32_t lo = space.feature_offsets[f];
    const std::uint32_t hi = space.feature_offsets[f + 1];
    if (lo == hi) continue;
    stage_column(rows, num_rows, row_stride, f, col);
    for (std::uint32_t q = lo; q < hi; ++q) {
      masks[q & 63] = rowmask_of(col, space.thresholds[q]) & rows_mask;
      if ((q & 63) == 63) flush_tile_word(masks, q >> 6, tile_t);
    }
  }
  if (n % 64 != 0) {
    std::fill(masks + (n % 64), masks + kTileRows, std::uint64_t{0});
    flush_tile_word(masks, n / 64, tile_t);
  }
}

}  // namespace bolt::kernels::detail
