// AVX2 membership kernels (this TU alone is compiled with -mavx2; it is
// only ever called through the dispatch table after util::cpu_features
// confirms AVX2 plus OS ymm state support).
//
// scan_row:  4 entries per vector op — gather word `widx` of 4 adjacent
//            lanes from the sample's BitVector, masked-compare, reduce the
//            4 per-lane diffs to 4 bitmap bits via a double movemask.
// scan_tile: 4 tile rows per vector op — the tile is word-major
//            (tile_t[w * kTileRows + r]), so the 4 rows' copies of one
//            predicate word are one aligned vector load; the entry's
//            mask/expect broadcast across lanes.
#include <immintrin.h>

#include <algorithm>

#include "bolt/kernels/binarize_impl.h"
#include "bolt/kernels/kernels.h"

namespace bolt::kernels {
namespace {

void scan_row_avx2(const ScanLayout& layout, const std::uint64_t* row_words,
                   std::uint64_t* bitmap) {
  std::fill_n(bitmap, layout.bitmap_words(), std::uint64_t{0});
  const std::uint32_t* widx = layout.widx();
  const std::uint64_t* mask = layout.mask();
  const std::uint64_t* expect = layout.expect();
  const __m256i zero = _mm256_setzero_si256();
  for (const ScanLayout::Bucket& b : layout.buckets()) {
    if (b.width == 0) {
      detail::bitmap_fill_ones(b, bitmap);
      continue;
    }
    for (std::uint32_t i = 0; i < b.padded; i += 4) {
      __m256i diff = zero;
      std::size_t p = b.plane_offset + i;
      for (std::uint32_t k = 0; k < b.width; ++k, p += b.padded) {
        const __m128i idx =
            _mm_load_si128(reinterpret_cast<const __m128i*>(widx + p));
        const __m256i words = _mm256_i32gather_epi64(
            reinterpret_cast<const long long*>(row_words), idx, 8);
        const __m256i m =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(mask + p));
        const __m256i e =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(expect + p));
        diff = _mm256_or_si256(diff,
                               _mm256_xor_si256(_mm256_and_si256(words, m), e));
      }
      const __m256i eq = _mm256_cmpeq_epi64(diff, zero);
      const auto bits = static_cast<std::uint64_t>(
          _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
      const std::size_t local = b.local_base + i;
      bitmap[local >> 6] |= bits << (local & 63);
    }
  }
}

void scan_tile_avx2(const ScanLayout& layout, const std::uint64_t* tile_t,
                    std::size_t num_rows, std::uint64_t* rowmasks) {
  std::fill_n(rowmasks, layout.local_size(), std::uint64_t{0});
  const std::uint64_t rows_mask = detail::tile_rows_mask(num_rows);
  const std::size_t row_groups = (num_rows + 3) / 4;
  const std::uint32_t* widx = layout.widx();
  const std::uint64_t* mask = layout.mask();
  const std::uint64_t* expect = layout.expect();
  const __m256i zero = _mm256_setzero_si256();
  for (const ScanLayout::Bucket& b : layout.buckets()) {
    if (b.width == 0) {
      std::fill_n(rowmasks + b.local_base, b.count, rows_mask);
      continue;
    }
    for (std::uint32_t i = 0; i < b.count; ++i) {
      std::uint64_t rm = 0;
      for (std::size_t rb = 0; rb < row_groups; ++rb) {
        __m256i diff = zero;
        std::size_t p = b.plane_offset + i;
        for (std::uint32_t k = 0; k < b.width; ++k, p += b.padded) {
          const __m256i words = _mm256_load_si256(reinterpret_cast<const __m256i*>(
              tile_t + static_cast<std::size_t>(widx[p]) * kTileRows + rb * 4));
          const __m256i m = _mm256_set1_epi64x(static_cast<long long>(mask[p]));
          const __m256i e =
              _mm256_set1_epi64x(static_cast<long long>(expect[p]));
          diff = _mm256_or_si256(
              diff, _mm256_xor_si256(_mm256_and_si256(words, m), e));
        }
        const __m256i eq = _mm256_cmpeq_epi64(diff, zero);
        const auto bits = static_cast<std::uint64_t>(
            _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
        rm |= bits << (rb * 4);
      }
      rowmasks[b.local_base + i] = rm & rows_mask;
    }
  }
}

}  // namespace

extern const KernelOps kAvx2Ops;
const KernelOps kAvx2Ops = {"avx2",          "avx2_x4",
                            4,               &scan_row_avx2,
                            &scan_tile_avx2, &detail::binarize_row_avx2,
                            &detail::binarize_tile_avx2};

}  // namespace bolt::kernels
