// The vectorized dictionary-scan kernel layer.
//
// Bolt's Phase-3 scan is a masked-compare sweep over every dictionary
// entry — pure data parallelism the scalar CSR walk in Dictionary leaves
// on the table. This layer restructures the sparse-word pool into a SoA
// layout (ScanLayout) and provides interchangeable membership kernels over
// it:
//
//   scan_row   one binarized sample against all entries; AVX2/AVX-512
//              test 4/8 *entries* per vector op (the per-sample latency
//              path: BoltEngine::predict, PartitionedBoltEngine cores);
//   scan_tile  a 64-row binarized tile against all entries; AVX2/AVX-512
//              test 4/8 *rows* per vector op (the batch throughput path:
//              predict_batch_amortized).
//
// Layout (built once per artifact/partition from the Dictionary):
//   - entries are bucketed by sparse-word count, so each bucket's inner
//     loop has a fixed trip count and no per-entry branches;
//   - each bucket stores its (word index, mask, expect) triples as three
//     plane-major pools — plane k holds word k of every entry in the
//     bucket, contiguous — in 64-byte-aligned storage, so vector loads are
//     aligned and lanes are adjacent entries;
//   - buckets are padded to the widest lane count with never-matching
//     sentinel lanes (mask 0, expect 1), and each bucket starts on a
//     64-local boundary, so kernels write whole bitmap words and padding
//     can never leak a candidate bit.
//
// Binarization is part of the same backend interface (the step toward
// GPU/OpenCL backends: a backend owns both how predicate bits are produced
// and how the dictionary is scanned over them):
//
//   binarize_row   one sample -> predicate bit words; AVX2/AVX-512
//                  gather 8/16 feature values by the SoA feature index,
//                  compare against 8/16 thresholds, movemask into the word
//                  accumulator (the per-sample latency path);
//   binarize_tile  up to 64 rows -> the word-major tile scan_tile consumes.
//                  Columnar: predicates are walked in feature-CSR order,
//                  each input feature's 64-row column is staged once
//                  (column-major staging tile, L1-resident) and every
//                  threshold of that feature is evaluated against all rows
//                  with 8/16-lane compares — one split test against a whole
//                  tile per vector op, no gathers — producing a per-
//                  predicate rowmask that a 64x64 bit transpose turns into
//                  the row-major predicate words. This replaces the old
//                  row-at-a-time binarize + hand transpose on the batch
//                  path.
//
// Every kernel produces identical bits in an identical order (the layout's
// local order); the scalar kernel doubles as the portable fallback and as
// the bit-identity oracle the tests sweep the vector kernels against.
// Kernel selection happens once at engine build via util::cpu_features —
// one binary runs everywhere — with a BOLT_KERNEL=scalar|avx2|avx512 env
// override for debugging and benchmarks. The selected kernel's
// binarize_row is also installed as forest::PredicateSpace::binarize's
// dispatch target, so non-engine callers vectorize too.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "bolt/dictionary.h"
#include "util/aligned.h"
#include "util/vec_view.h"

namespace bolt::forest {
struct PredicateSoA;
}  // namespace bolt::forest

namespace bolt::kernels {

/// Rows per batch tile: a tile-wide membership result is one u64 rowmask.
constexpr std::size_t kTileRows = 64;

/// entry_id() value of padding/gap lanes (never set in any bitmap).
constexpr std::uint32_t kInvalidEntry = 0xffffffffu;

/// Buckets are padded to the widest kernel's lane count.
constexpr std::uint32_t kLanePad = 8;

/// SoA view of a Dictionary's sparse-word pool (optionally restricted to
/// an entry range, for the partitioned engine). Self-contained: owns its
/// pools, so the source Dictionary may move after construction.
class ScanLayout {
 public:
  struct Bucket {
    std::uint32_t width;       // sparse words per entry in this bucket
    std::uint32_t count;       // real entries (excludes padding lanes)
    std::uint32_t padded;      // count rounded up to kLanePad
    std::uint32_t local_base;  // first local index; multiple of 64
    std::size_t plane_offset;  // pool offset of plane 0; plane k starts at
                               // plane_offset + k * padded
  };

  ScanLayout() = default;
  explicit ScanLayout(const core::Dictionary& dict)
      : ScanLayout(dict, 0, dict.num_entries()) {}
  /// Layout over dictionary entries [entry_begin, entry_end).
  ScanLayout(const core::Dictionary& dict, std::size_t entry_begin,
             std::size_t entry_end);

  /// Entries covered (== entry_end - entry_begin).
  std::size_t num_entries() const { return num_entries_; }
  /// Padded local index space; always a multiple of 64 (possibly 0).
  std::size_t local_size() const { return local_size_; }
  std::size_t bitmap_words() const { return local_size_ / 64; }
  /// Maps a local index back to its dictionary entry id (kInvalidEntry for
  /// padding/gap lanes, whose bits are never set).
  std::uint32_t entry_id(std::size_t local) const { return perm_[local]; }

  std::span<const Bucket> buckets() const { return buckets_; }
  const std::uint32_t* widx() const { return widx_.data(); }
  const std::uint64_t* mask() const { return mask_.data(); }
  const std::uint64_t* expect() const { return expect_.data(); }

  /// Whole-pool spans for the v2 pack writer (the layout is serialized so
  /// a mapped artifact skips the rebuild — the dominant v1 cold-start
  /// cost).
  std::span<const std::uint32_t> perm_span() const { return perm_; }
  std::size_t plane_pool_size() const { return widx_.size(); }

  /// Construct over borrowed 64-byte-aligned pools (the mmap'd v2
  /// sections). Validates every geometric invariant the kernels and
  /// engines trust — bucket packing, perm bounds, word indexes, and the
  /// never-match property of padding lanes — against the owning
  /// dictionary's entry count and predicate space, since a corrupted
  /// layout that slipped a matching padding lane through would surface
  /// kInvalidEntry as a real entry id downstream. Throws on violation.
  /// `deep_validate = false` (the trusted-artifact tier) keeps the
  /// alignment, size, and bucket-geometry replay checks — they are O(1)
  /// in the pool size — but skips the per-lane widx/perm/padding scans.
  static ScanLayout from_views(std::size_t num_entries, std::size_t local_size,
                               std::span<const Bucket> buckets,
                               std::span<const std::uint32_t> perm,
                               std::span<const std::uint32_t> widx,
                               std::span<const std::uint64_t> mask,
                               std::span<const std::uint64_t> expect,
                               std::size_t dict_num_entries,
                               std::size_t num_predicates,
                               bool deep_validate = true);

  /// Heap bytes owned by the per-lane pools (0 when fully mapped; the
  /// small bucket directory is always owned).
  std::size_t owned_bytes() const {
    return perm_.owned_bytes() + widx_.owned_bytes() + mask_.owned_bytes() +
           expect_.owned_bytes();
  }

  std::size_t memory_bytes() const;

 private:
  std::size_t num_entries_ = 0;
  std::size_t local_size_ = 0;
  std::vector<Bucket> buckets_;
  util::VecOrView<std::uint32_t> perm_;  // local -> entry id
  util::VecOrView<std::uint32_t, util::AlignedAllocator<std::uint32_t, 64>>
      widx_;
  util::VecOrView<std::uint64_t, util::AlignedAllocator<std::uint64_t, 64>>
      mask_;
  util::VecOrView<std::uint64_t, util::AlignedAllocator<std::uint64_t, 64>>
      expect_;
};

/// One membership-kernel implementation. All functions fully define their
/// output: bits beyond real entries are zero, so callers may popcount the
/// whole result.
struct KernelOps {
  const char* name;   // BOLT_KERNEL key: "scalar" | "avx2" | "avx512"
  const char* label;  // export label with lane count, e.g. "avx2_x4"
  unsigned lanes;     // entries (scan_row) / rows (scan_tile) per vector op

  /// Membership of one binarized row (laid out as BitVector words) against
  /// every entry: bitmap[local/64] bit (local%64) is set iff the entry at
  /// `local` matches. `bitmap` has layout.bitmap_words() words.
  void (*scan_row)(const ScanLayout& layout, const std::uint64_t* row_words,
                   std::uint64_t* bitmap);

  /// Membership of a word-major tile — tile_t[w * kTileRows + r] is word w
  /// of row r — against every entry: rowmasks[local] bit r is set iff row
  /// r matches that entry. Rows >= num_rows are masked off; `rowmasks` has
  /// layout.local_size() words.
  void (*scan_tile)(const ScanLayout& layout, const std::uint64_t* tile_t,
                    std::size_t num_rows, std::uint64_t* rowmasks);

  /// Binarization of one sample over the predicate space: bit p of
  /// `out_words` is set iff x[features[p]] <= thresholds[p] (NaN fails;
  /// see forest::Predicate). Fully defines words
  /// [0, words_for_bits(num_predicates)); bit-identical to
  /// forest::binarize_row_scalar. `x` needs space.num_features floats.
  void (*binarize_row)(const forest::PredicateSoA& space, const float* x,
                       std::uint64_t* out_words);

  /// Columnar binarization of up to kTileRows row-major samples
  /// (rows[r * row_stride + f]) straight into the word-major tile
  /// scan_tile consumes: tile_t[w * kTileRows + r] holds predicate word w
  /// of row r. All kTileRows row slots of every word are fully defined —
  /// rows >= num_rows binarize to zero words — so the tile is
  /// deterministic and kernels are bit-comparable. `tile_t` has
  /// words_for_bits(num_predicates) * kTileRows words.
  void (*binarize_tile)(const forest::PredicateSoA& space, const float* rows,
                        std::size_t num_rows, std::size_t row_stride,
                        std::uint64_t* tile_t);
};

/// Kernels compiled into this binary (scalar always first).
std::span<const KernelOps* const> compiled_kernels();
/// Compiled kernels this CPU can execute (scalar always first).
std::span<const KernelOps* const> available_kernels();
const KernelOps& scalar_kernel();
/// An available kernel by name, or nullptr.
const KernelOps* find_kernel(std::string_view name);

/// The dispatch decision: the test override if set, else the BOLT_KERNEL
/// env request (falling back, with a one-line stderr note, when the named
/// kernel is compiled out or the CPU lacks it), else the widest available
/// kernel. Engines capture the result once at construction.
const KernelOps& select_kernel();

/// Overrides select_kernel (nullptr restores normal dispatch). Construct
/// engines *after* forcing; used by the bit-identity tests and benches.
void force_kernel_for_testing(const KernelOps* kernel);

namespace detail {

/// Width-0 entries (no common predicates) match every input: set the
/// bucket's `count` bits. local_base is 64-aligned, so whole words first.
inline void bitmap_fill_ones(const ScanLayout::Bucket& b,
                             std::uint64_t* bitmap) {
  std::size_t word = b.local_base >> 6;
  std::uint32_t remaining = b.count;
  while (remaining >= 64) {
    bitmap[word++] = ~std::uint64_t{0};
    remaining -= 64;
  }
  if (remaining != 0) bitmap[word] |= (std::uint64_t{1} << remaining) - 1;
}

/// Low `num_rows` bits set (all 64 when the tile is full).
inline std::uint64_t tile_rows_mask(std::size_t num_rows) {
  return num_rows >= 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << num_rows) - 1;
}

/// In-place 64x64 bit-matrix transpose (Hacker's Delight 7-3, LSB-first):
/// afterwards, bit c of a[r] equals the former bit r of a[c]. This is how
/// the columnar binarize kernels turn 64 per-predicate rowmasks into the
/// 64 per-row predicate words of one tile word. Level j swaps the j-bit of
/// the row index with the j-bit of the column index, so six levels move
/// every bit (r, c) to (c, r). `static`: this header is included by TUs
/// compiled with different ISA flags, and internal linkage keeps each TU's
/// copy compiled with its own flags (an external inline would be one
/// mergeable COMDAT — the linker could hand a -mavx512f copy to the scalar
/// kernel on a CPU without AVX-512).
static inline void transpose_64x64(std::uint64_t a[64]) {
  std::uint64_t m = 0xFFFFFFFF00000000ull;  // columns with bit j set
  for (unsigned j = 32; j != 0; j >>= 1, m ^= (m >> j)) {
    for (unsigned k = 0; k < 64; k = ((k | j) + 1) & ~j) {
      const std::uint64_t t = (a[k] ^ (a[k | j] << j)) & m;
      a[k] ^= t;
      a[k | j] ^= t >> j;
    }
  }
}

}  // namespace detail

}  // namespace bolt::kernels
