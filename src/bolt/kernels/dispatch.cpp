// Kernel registry and the one-time dispatch decision. Which vector TUs
// exist is a compile-time fact (BOLT_HAVE_KERNEL_* set by CMake on this
// file only); which of those this CPU can run is a runtime fact
// (util::cpu_features). select_kernel() folds both, honoring a
// BOLT_KERNEL env override with a graceful, noted fallback. The decision
// is also pushed down into the forest layer: the selected kernel's
// binarize_row becomes PredicateSpace::binarize's dispatch target (the
// pext64_fast pattern — forest cannot link against this layer, so it
// exposes an atomic hook we install into), both eagerly at static init and
// on every select/force transition, so non-engine callers vectorize too.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bolt/kernels/kernels.h"
#include "forest/predicates.h"
#include "util/cpu_features.h"

namespace bolt::kernels {

extern const KernelOps kScalarOps;
#if defined(BOLT_HAVE_KERNEL_AVX2)
extern const KernelOps kAvx2Ops;
#endif
#if defined(BOLT_HAVE_KERNEL_AVX512)
extern const KernelOps kAvx512Ops;
#endif

namespace {

constexpr const KernelOps* kCompiled[] = {
    &kScalarOps,
#if defined(BOLT_HAVE_KERNEL_AVX2)
    &kAvx2Ops,
#endif
#if defined(BOLT_HAVE_KERNEL_AVX512)
    &kAvx512Ops,
#endif
};

std::vector<const KernelOps*> make_available() {
  const util::CpuFeatures& cpu = util::cpu_features();
  std::vector<const KernelOps*> out;
  for (const KernelOps* k : kCompiled) {
    if (std::string_view(k->name) == "avx2" && !cpu.can_avx2()) continue;
    if (std::string_view(k->name) == "avx512" && !cpu.can_avx512()) continue;
    out.push_back(k);
  }
  return out;
}

const std::vector<const KernelOps*>& available_vec() {
  static const std::vector<const KernelOps*> avail = make_available();
  return avail;
}

std::atomic<const KernelOps*> g_forced{nullptr};

const KernelOps& resolve_default() {
  const auto& avail = available_vec();
  if (const char* env = std::getenv("BOLT_KERNEL"); env && *env) {
    for (const KernelOps* k : avail) {
      if (std::string_view(k->name) == env) return *k;
    }
    std::fprintf(stderr,
                 "bolt: BOLT_KERNEL=%s is not available on this build/CPU; "
                 "using %s\n",
                 env, avail.back()->name);
  }
  return *avail.back();
}

}  // namespace

std::span<const KernelOps* const> compiled_kernels() { return kCompiled; }

std::span<const KernelOps* const> available_kernels() {
  return available_vec();
}

const KernelOps& scalar_kernel() { return kScalarOps; }

const KernelOps* find_kernel(std::string_view name) {
  for (const KernelOps* k : available_vec()) {
    if (name == k->name) return k;
  }
  return nullptr;
}

const KernelOps& select_kernel() {
  if (const KernelOps* forced = g_forced.load(std::memory_order_acquire)) {
    return *forced;
  }
  static const KernelOps& chosen = []() -> const KernelOps& {
    const KernelOps& k = resolve_default();
    forest::set_binarize_row_dispatch(k.binarize_row);
    return k;
  }();
  return chosen;
}

void force_kernel_for_testing(const KernelOps* kernel) {
  g_forced.store(kernel, std::memory_order_release);
  if (kernel != nullptr) {
    forest::set_binarize_row_dispatch(kernel->binarize_row);
  } else {
    // Back to normal dispatch: reinstall the resolved default (also
    // re-resolves it if nothing had selected a kernel yet).
    forest::set_binarize_row_dispatch(select_kernel().binarize_row);
  }
}

namespace {

// Any binary linking the kernel layer gets the SIMD binarize hook without
// having to construct an engine first (planner, verifier, tools).
const bool g_binarize_hook_installed = [] {
  (void)select_kernel();
  return true;
}();

}  // namespace

}  // namespace bolt::kernels
