#include "bolt/cluster.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace bolt::core {

void derive_structure(const std::vector<Path>& paths, Cluster& cluster) {
  cluster.common_items.clear();
  cluster.uncommon_preds.clear();
  if (cluster.paths.empty()) return;

  // Intersection of item sets (paths are sorted by predicate, so this is a
  // repeated sorted-set intersection).
  std::vector<PathItem> common = paths[cluster.paths.front()].items;
  std::vector<PathItem> tmp;
  for (std::size_t k = 1; k < cluster.paths.size() && !common.empty(); ++k) {
    const auto& items = paths[cluster.paths[k]].items;
    tmp.clear();
    std::set_intersection(common.begin(), common.end(), items.begin(),
                          items.end(), std::back_inserter(tmp));
    common.swap(tmp);
  }

  // Union of predicates minus common predicates = uncommon predicates.
  std::unordered_set<std::uint32_t> common_preds;
  for (PathItem item : common) common_preds.insert(item_pred(item));
  std::unordered_set<std::uint32_t> uncommon;
  for (std::size_t idx : cluster.paths) {
    for (PathItem item : paths[idx].items) {
      const std::uint32_t pred = item_pred(item);
      if (!common_preds.count(pred)) uncommon.insert(pred);
    }
  }

  cluster.common_items = std::move(common);
  cluster.uncommon_preds.assign(uncommon.begin(), uncommon.end());
  std::sort(cluster.uncommon_preds.begin(), cluster.uncommon_preds.end());
}

std::vector<Cluster> greedy_cluster(const std::vector<Path>& paths,
                                    const ClusterConfig& cfg) {
  std::vector<Cluster> clusters;
  if (paths.empty()) return clusters;

  const std::size_t max_bits = std::min<std::size_t>(cfg.max_table_bits, 63);

  Cluster current;
  std::unordered_set<PathItem> seen;      // distinct pairs in the cluster
  std::size_t new_pairs = 0;              // pairs added after the first path

  auto close_cluster = [&] {
    derive_structure(paths, current);
    clusters.push_back(std::move(current));
    current = Cluster{};
    seen.clear();
    new_pairs = 0;
  };

  for (std::size_t i = 0; i < paths.size(); ++i) {
    const Path& p = paths[i];
    if (!current.paths.empty()) {
      std::size_t unseen = 0;
      for (PathItem item : p.items) unseen += seen.count(item) ? 0 : 1;
      if (new_pairs + unseen > cfg.threshold) close_cluster();
    }

    if (!current.paths.empty()) {
      // Tentatively accept, then verify the address-width cap; the exact
      // uncommon-predicate count needs the full structure, and clusters are
      // small, so recomputing is cheap at build time.
      current.paths.push_back(i);
      Cluster probe = current;
      derive_structure(paths, probe);
      if (probe.uncommon_preds.size() > max_bits) {
        current.paths.pop_back();
        close_cluster();
      } else {
        for (PathItem item : p.items) new_pairs += seen.insert(item).second;
        continue;
      }
    }

    // Start a new cluster with this path. A single path can itself exceed
    // the cap only if it is longer than max_bits predicates, and a lone
    // path has no uncommon predicates at all, so this is always valid.
    current.paths.push_back(i);
    for (PathItem item : p.items) seen.insert(item);
  }
  if (!current.paths.empty()) close_cluster();

  // Postcondition: clusters partition [0, paths.size()).
  std::size_t covered = 0;
  for (const Cluster& c : clusters) covered += c.paths.size();
  assert(covered == paths.size());
  return clusters;
}

}  // namespace bolt::core
