#include "bolt/parallel.h"

#include <algorithm>

#include "util/timer.h"

namespace bolt::core {

PartitionedBoltEngine::PartitionedBoltEngine(const BoltForest& bf,
                                             const PartitionPlan& plan)
    : bf_(bf), plan_(plan), kernel_(kernels::select_kernel()),
      bits_(bf.space().size()), agg_(bf.num_classes()) {
  core_votes_.assign(plan_.cores(), std::vector<double>(bf.num_classes()));

  // Per-dictionary-partition SoA layout (a core scans only its own entry
  // range) and predicate footprint (what a core must encode).
  part_preds_.resize(plan_.dict_parts);
  part_layouts_.reserve(plan_.dict_parts);
  const Dictionary& dict = bf_.dictionary();
  for (std::size_t part = 0; part < plan_.dict_parts; ++part) {
    const auto [begin, end] = dict_range(part);
    part_layouts_.emplace_back(dict, begin, end);
    std::vector<std::uint32_t>& preds = part_preds_[part];
    for (std::size_t e = begin; e < end; ++e) {
      for (PathItem item : dict.common_items(e)) {
        preds.push_back(item_pred(item));
      }
      for (std::uint32_t p : dict.address_positions(e)) preds.push_back(p);
    }
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  }
}

std::pair<std::size_t, std::size_t> PartitionedBoltEngine::dict_range(
    std::size_t part) const {
  const std::size_t n = bf_.dictionary().num_entries();
  const std::size_t per = (n + plan_.dict_parts - 1) / plan_.dict_parts;
  const std::size_t begin = std::min(n, part * per);
  return {begin, std::min(n, begin + per)};
}

std::pair<std::size_t, std::size_t> PartitionedBoltEngine::slot_range(
    std::size_t part) const {
  const std::size_t n = bf_.table().num_slots();
  const std::size_t per = (n + plan_.table_parts - 1) / plan_.table_parts;
  const std::size_t begin = std::min(n, part * per);
  return {begin, std::min(n, begin + per)};
}

void PartitionedBoltEngine::core_work(std::size_t dict_part,
                                      std::size_t table_part,
                                      const util::BitVector& bits,
                                      std::span<double> out) const {
  const Dictionary& dict = bf_.dictionary();
  const RecombinedTable& table = bf_.table();
  const ResultPool& results = bf_.results();
  const BloomFilter* bloom = bf_.bloom();
  const kernels::ScanLayout& layout = part_layouts_[dict_part];

  const auto [s_begin, s_end] = slot_range(table_part);

  // Per-thread candidate bitmap: core_work is const and runs concurrently
  // from pool workers, so the scratch cannot live on the engine.
  static thread_local std::vector<std::uint64_t> bitmap;
  if (bitmap.size() < layout.bitmap_words()) {
    bitmap.resize(layout.bitmap_words());
  }
  kernel_.scan_row(layout, bits.words().data(), bitmap.data());

  std::uint64_t discarded = 0;
  for (std::size_t b = 0; b < layout.bitmap_words(); ++b) {
    std::uint64_t word = bitmap[b];
    while (word != 0) {
      const std::size_t local =
          b * 64 + static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      const std::size_t e = layout.entry_id(local);  // global entry id
      const std::uint64_t address = dict.address(e, bits);
      if (bloom &&
          !bloom->maybe_contains(static_cast<std::uint32_t>(e), address)) {
        continue;
      }
      // Partition routing (Figure 4): only probe slots this core owns.
      const std::size_t slot =
          table.slot_of(static_cast<std::uint32_t>(e), address);
      if (slot < s_begin || slot >= s_end) {
        ++discarded;  // another core owns this slot and performs the lookup
        continue;
      }
      const auto result = table.find(static_cast<std::uint32_t>(e), address);
      if (!result) continue;
      results.accumulate(*result, out);
    }
  }
  if (metrics_ != nullptr && discarded != 0) {
    metrics_->discarded_lookups->inc(discarded);
  }
}

int PartitionedBoltEngine::predict(std::span<const float> x) {
  {
    util::TraceContext::Span bin(trace_, util::Stage::kBinarize);
    // The engine's captured kernel (same backend as its scans), not the
    // global dispatch hook.
    kernel_.binarize_row(bf_.space().soa(), x.data(), bits_.words().data());
  }
  std::fill(agg_.begin(), agg_.end(), 0.0);
  {
    // One kScan entry per core's work — the partitioned engine's scan and
    // probe phases interleave per core, so the breakdown reports them as
    // a single scan span rather than splitting misleadingly.
    util::TraceContext::Span scan(trace_, util::Stage::kScan);
    for (std::size_t d = 0; d < plan_.dict_parts; ++d) {
      for (std::size_t t = 0; t < plan_.table_parts; ++t) {
        core_work(d, t, bits_, agg_);
      }
    }
  }
  util::TraceContext::Span agg(trace_, util::Stage::kAggregate);
  return forest::argmax_class(agg_);
}

int PartitionedBoltEngine::predict_threaded(std::span<const float> x,
                                            util::ThreadPool& pool) {
  {
    util::TraceContext::Span bin(trace_, util::Stage::kBinarize);
    kernel_.binarize_row(bf_.space().soa(), x.data(), bits_.words().data());
  }
  for (auto& v : core_votes_) std::fill(v.begin(), v.end(), 0.0);
  pool.parallel_for(plan_.cores(), [&](std::size_t core) {
    const std::size_t d = core / plan_.table_parts;
    const std::size_t t = core % plan_.table_parts;
    if (metrics_ != nullptr || trace_ != nullptr) {
      util::Timer timer;
      core_work(d, t, bits_, core_votes_[core]);
      const std::int64_t elapsed = timer.elapsed_ns();
      if (metrics_ != nullptr) {
        metrics_->core_work_ns->record(static_cast<double>(elapsed));
      }
      // kScan entries accumulate concurrently from pool workers (the
      // context's adds are relaxed atomics); one entry per core.
      if (trace_ != nullptr) trace_->add(util::Stage::kScan, elapsed);
    } else {
      core_work(d, t, bits_, core_votes_[core]);
    }
  });
  util::TraceContext::Span agg(trace_, util::Stage::kAggregate);
  std::fill(agg_.begin(), agg_.end(), 0.0);
  for (const auto& v : core_votes_) {
    for (std::size_t c = 0; c < agg_.size(); ++c) agg_[c] += v[c];
  }
  return forest::argmax_class(agg_);
}

void PartitionedBoltEngine::predict_batch(std::span<const float> rows,
                                          std::size_t num_rows,
                                          std::size_t row_stride,
                                          std::span<int> out,
                                          util::ThreadPool& pool) {
  if (num_rows == 0) return;
  constexpr std::size_t kTile = BatchScratch::kTileRows;
  const std::size_t tiles = (num_rows + kTile - 1) / kTile;
  const std::size_t tasks = std::min(pool.size(), tiles);
  while (batch_scratch_.size() < tasks) batch_scratch_.emplace_back(bf_);
  const std::size_t tiles_per_task = (tiles + tasks - 1) / tasks;
  pool.parallel_for(tasks, [&](std::size_t task) {
    const std::size_t tile_begin = task * tiles_per_task;
    const std::size_t tile_end = std::min(tiles, tile_begin + tiles_per_task);
    if (tile_begin >= tile_end) return;
    const std::size_t row_begin = tile_begin * kTile;
    const std::size_t row_count =
        std::min(num_rows, tile_end * kTile) - row_begin;
    predict_batch_amortized(bf_, rows.subspan(row_begin * row_stride),
                            row_count, row_stride,
                            out.subspan(row_begin, row_count),
                            batch_scratch_[task], /*metrics=*/nullptr,
                            trace_, &kernel_);
  });
}

double PartitionedBoltEngine::measure_response_us(std::span<const float> x,
                                                  double comm_ns_per_core) {
  // Per-core times are ~100 ns — amortize the clock reads over `kReps`
  // repetitions so timer overhead does not masquerade as partition
  // overhead.
  constexpr int kReps = 32;
  bf_.space().binarize(x, bits_);  // correctness bits for core_work

  // Parallel stage: a core encodes the predicates its dictionary partition
  // tests, then scans it; the slowest core bounds the fan-out latency.
  double max_core_us = 0.0;
  for (std::size_t core = 0; core < plan_.cores(); ++core) {
    const std::size_t d = core / plan_.table_parts;
    const std::size_t t = core % plan_.table_parts;
    auto& votes = core_votes_[core];
    // The vectorized full encode beats position-by-position evaluation
    // once a partition covers most of the predicate space.
    const bool dense_partition =
        part_preds_[d].size() * 3 >= bf_.space().size() * 2;
    // Best-of-5 batches: taking the max over cores of *noisy* means would
    // grow with core count by extreme-value statistics alone; the min over
    // batches estimates each core's true cost.
    double core_us = 0.0;
    for (int batch = 0; batch < 5; ++batch) {
      util::Timer timer;
      for (int r = 0; r < kReps; ++r) {
        if (dense_partition) {
          bf_.space().binarize(x, bits_);
        } else {
          bf_.space().binarize_subset(x, part_preds_[d], bits_);
        }
        std::fill(votes.begin(), votes.end(), 0.0);
        core_work(d, t, bits_, votes);
      }
      const double us = timer.elapsed_us() / kReps;
      core_us = batch == 0 ? us : std::min(core_us, us);
    }
    max_core_us = std::max(max_core_us, core_us);
  }

  // Stage 3 (serial): aggregate per-core votes, plus a fixed charge per
  // extra core for the result hand-off the paper highlights ("the overhead
  // of aggregating results must be considered").
  util::Timer agg_timer;
  for (int r = 0; r < kReps; ++r) {
    std::fill(agg_.begin(), agg_.end(), 0.0);
    for (const auto& v : core_votes_) {
      for (std::size_t c = 0; c < agg_.size(); ++c) agg_[c] += v[c];
    }
    util::do_not_optimize(forest::argmax_class(agg_));
  }
  const double agg_us = agg_timer.elapsed_us() / kReps;

  return max_core_us + agg_us +
         comm_ns_per_core * static_cast<double>(plan_.cores() - 1) / 1e3;
}

std::size_t PartitionedBoltEngine::table_partition_bytes(
    std::size_t table_part) const {
  const auto [begin, end] = slot_range(table_part);
  const std::size_t slots = end - begin;
  const std::size_t per_slot =
      bf_.table().memory_bytes() / std::max<std::size_t>(1, bf_.table().num_slots());
  return slots * per_slot;
}

std::size_t PartitionedBoltEngine::memory_bytes() const {
  // Dictionary partitioning duplicates the table per dictionary partition;
  // table partitioning duplicates the dictionary per table partition
  // (Figure 4 shows both copies).
  return bf_.dictionary().memory_bytes() * plan_.table_parts +
         bf_.table().memory_bytes() * plan_.dict_parts;
}

}  // namespace bolt::core
