// Phase 1, step 1-2 (paper §4.1, Figure 3 ①-②): enumerate every
// root-to-leaf path of every tree as a sorted list of (predicate, value)
// pairs, sort all paths lexicographically across the whole forest, and
// merge identical paths (their votes accumulate — this is the cross-tree
// redundancy Bolt exploits).
#pragma once

#include <cstdint>
#include <vector>

#include "forest/predicates.h"
#include "forest/tree.h"

namespace bolt::core {

/// One (predicate, value) pair packed as (pred << 1) | value. Packing makes
/// lexicographic path comparison a plain vector compare and keeps the
/// enumeration memory-light on big forests.
using PathItem = std::uint32_t;

constexpr PathItem make_item(std::uint32_t pred, bool value) {
  return (pred << 1) | (value ? 1u : 0u);
}
constexpr std::uint32_t item_pred(PathItem item) { return item >> 1; }
constexpr bool item_value(PathItem item) { return item & 1u; }

/// A root-to-leaf path (after merging, possibly representing several
/// identical paths from different trees).
struct Path {
  /// (predicate, value) pairs sorted by predicate id. A tree never tests
  /// the same predicate twice on one path, so predicates are unique.
  std::vector<PathItem> items;
  /// Weighted class votes contributed when this path matches: one entry per
  /// class. Plain forests contribute weight 1.0 at the leaf class per
  /// merged source path; boosted forests contribute their stage weight
  /// (paper §5: gradient boosting = "adding the corresponding tree weight
  /// to each path").
  std::vector<float> votes;
};

/// Enumerates, sorts and merges the paths of `forest` over `space`.
/// Postconditions (checked by tests):
///  - paths are strictly increasing lexicographically (no duplicates),
///  - for every input, exactly one path per source tree matches,
///  - total vote mass equals the sum of tree weights.
std::vector<Path> enumerate_paths(const forest::Forest& forest,
                                  const forest::PredicateSpace& space);

/// True iff `path` matches the binarized sample: every (pred, value) item
/// agrees with the sample's bit. Reference semantics used by tests.
bool path_matches(const Path& path, const util::BitVector& sample_bits);

}  // namespace bolt::core
