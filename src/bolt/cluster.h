// Phase 1, step 3 (paper §4.1, Figure 3 ③): greedy clustering of the
// sorted path list. A cluster accumulates consecutive paths while the
// number of *uncommon* feature-value pairs stays within a tunable
// threshold — the hyperparameter Phase 2 optimizes.
#pragma once

#include <cstdint>
#include <vector>

#include "bolt/paths.h"

namespace bolt::core {

struct ClusterConfig {
  /// Maximum number of feature-value pairs, beyond those introduced by the
  /// cluster's first path, that later paths may add (the paper's worked
  /// example in Figure 3 uses threshold 2: pairs (b,1) and (h,0) join the
  /// first cluster, then it closes).
  std::size_t threshold = 4;
  /// Hard cap on a cluster's uncommon-*predicate* count, i.e. on the
  /// cluster lookup-table address width (2^bits entries). Keeps don't-care
  /// expansion bounded no matter what the threshold is.
  std::size_t max_table_bits = 20;
};

/// One cluster of paths plus its derived dictionary-entry structure.
struct Cluster {
  /// Indices into the sorted path list (contiguous range, ascending).
  std::vector<std::size_t> paths;
  /// Pairs present in *every* member path — the dictionary entry's key
  /// (Figure 3 ④: "(a,0)" for the green cluster).
  std::vector<PathItem> common_items;
  /// Predicates that appear in some member path but are not common; these
  /// address the cluster's lookup table. Sorted ascending; size <=
  /// max_table_bits.
  std::vector<std::uint32_t> uncommon_preds;
};

/// Greedy threshold clustering over the lexicographically sorted `paths`.
/// Every path lands in exactly one cluster; clusters cover contiguous
/// ranges of the sorted order (similar paths are adjacent after sorting —
/// that is why the sort happens).
std::vector<Cluster> greedy_cluster(const std::vector<Path>& paths,
                                    const ClusterConfig& cfg);

/// Recomputes common/uncommon structure for an arbitrary set of paths.
/// Used internally and by tests as the independent oracle.
void derive_structure(const std::vector<Path>& paths, Cluster& cluster);

}  // namespace bolt::core
