#include "bolt/engine.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <type_traits>

#include "archsim/cost_model.h"
#include "baselines/probe.h"

namespace bolt::core {
namespace {

/// One clock read, skipped entirely when metrics are detached so the
/// uninstrumented hot path pays only a predictable branch.
inline std::int64_t engine_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline std::int64_t metrics_now_ns(const util::EngineMetrics* metrics) {
  if (metrics == nullptr) return 0;
  return engine_now_ns();
}

}  // namespace

BoltEngine::BoltEngine(const BoltForest& bf)
    : bf_(bf), kernel_(kernels::select_kernel()), bits_(bf.space().size()),
      vote_scratch_(bf.num_classes()),
      candidate_blocks_(bf.scan_layout().bitmap_words() + 1) {}

/// The Phase-3 scan shared by all entry points: tests every dictionary
/// entry, forms addresses, probes the table once per candidate, and calls
/// `accept(entry, result_idx)` for every accepted lookup.
///
/// Two phases: (1) the selected membership kernel computes a branchless
/// candidate bitmap over the SoA scan layout — one bit per layout lane, no
/// data-dependent branches, which is how Bolt "avoids branching at every
/// node" (§4.3, Figure 12); (2) only the set bits are visited — in layout
/// order, the same order every kernel produces, so accept order (and hence
/// vote-accumulation order) is kernel-independent — to form addresses and
/// probe the table.
template <class Probe, class Accept>
inline void scan_dictionary(const BoltForest& bf, const util::BitVector& bits,
                            const kernels::KernelOps& kernel,
                            std::uint64_t* candidate_blocks, Probe probe,
                            Accept&& accept,
                            util::TraceContext* trace = nullptr) {
  const Dictionary& dict = bf.dictionary();
  const RecombinedTable& table = bf.table();
  const BloomFilter* bloom = bf.bloom();
  const kernels::ScanLayout& layout = bf.scan_layout();
  const std::size_t blocks = layout.bitmap_words();

  // Phase A: branchless candidate bitmap via the dispatched kernel.
  const std::int64_t phase_a_start =
      trace != nullptr ? util::TraceContext::now_ns() : 0;
  kernel.scan_row(layout, bits.words().data(), candidate_blocks);
  if constexpr (!std::is_empty_v<Probe>) {
    // Modeled probes (archsim) charge the same per-entry memory and
    // instruction costs the scalar sweep would, in layout order. NullProbe
    // is empty, so the uninstrumented path skips this walk entirely.
    for (std::size_t local = 0; local < layout.local_size(); ++local) {
      const std::uint32_t e = layout.entry_id(local);
      if (e == kernels::kInvalidEntry) continue;
      probe.mem(dict.entry_address(e), dict.entry_scan_bytes(e),
                archsim::MemDep::kParallel);
      probe.instr(archsim::cost::kDictWordOp *
                  std::max<std::size_t>(1, dict.sparse_words(e).size()));
    }
  }

  // Phase B: probe only the candidates.
  std::int64_t phase_b_start = 0;
  if (trace != nullptr) {
    phase_b_start = util::TraceContext::now_ns();
    trace->add(util::Stage::kScan, phase_b_start - phase_a_start);
  }
  for (std::size_t b = 0; b < blocks; ++b) {
    std::uint64_t word = candidate_blocks[b];
    while (word != 0) {
      const std::size_t local =
          b * 64 + static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      const std::size_t e = layout.entry_id(local);

      const std::uint64_t address = dict.address(e, bits);
      probe.instr(archsim::cost::kAddressBit * dict.address_bits(e));

      if (bloom) {
        probe.instr(archsim::cost::kBloomProbe);
        const bool pass =
            bloom->maybe_contains(static_cast<std::uint32_t>(e), address);
        probe.branch(0x2000 + e, pass);
        if (!pass) continue;
      }

      // One memory access: the table slot.
      probe.instr(archsim::cost::kHashProbe);
      const std::size_t slot =
          table.slot_of(static_cast<std::uint32_t>(e), address);
      probe.mem(table.slot_address(slot), sizeof(std::uint32_t) * 3,
                archsim::MemDep::kParallel);
      const auto result =
          table.probe_slot(slot, static_cast<std::uint32_t>(e), address);
      probe.branch(0x3000 + e, result.has_value());
      if (!result) continue;  // detected false positive

      accept(e, *result);
    }
  }
  if (trace != nullptr) {
    trace->add(util::Stage::kTableProbe,
               util::TraceContext::now_ns() - phase_b_start);
  }
  probe.instr(archsim::cost::kPerSample);
}

template <class Probe>
void BoltEngine::vote_bits_impl(const util::BitVector& bits,
                                std::span<double> out, Probe probe) {
  const std::int64_t scan_start = metrics_now_ns(metrics_);
  std::uint64_t accepted = 0;
  const ResultPool& results = bf_.results();
  if (results.packed_available()) {
    // Fast path: each accepted slot's whole vote vector is one u64 add.
    std::uint64_t acc = 0;
    scan_dictionary(bf_, bits, kernel_, candidate_blocks_.data(), probe,
                    [&](std::size_t, std::uint32_t result_idx) {
                      probe.mem(&results.raw()[result_idx], sizeof(std::uint64_t),
                                archsim::MemDep::kParallel);
                      probe.instr(archsim::cost::kVoteAccum);
                      results.accumulate_packed(result_idx, acc);
                      ++accepted;
                    },
                    trace_);
    util::TraceContext::Span agg(trace_, util::Stage::kAggregate);
    results.unpack(acc, out);
  } else {
    std::fill(out.begin(), out.end(), 0.0);
    scan_dictionary(bf_, bits, kernel_, candidate_blocks_.data(), probe,
                    [&](std::size_t, std::uint32_t result_idx) {
                      probe.mem(results.votes(result_idx).data(),
                                bf_.num_classes() * sizeof(float),
                                archsim::MemDep::kParallel);
                      probe.instr(archsim::cost::kVoteAccum);
                      results.accumulate(result_idx, out);
                      ++accepted;
                    },
                    trace_);
  }
  if (metrics_ != nullptr) {
    record_scan_metrics(accepted, metrics_now_ns(metrics_) - scan_start);
  }
}

void BoltEngine::record_scan_metrics(std::uint64_t accepted,
                                     std::int64_t elapsed_ns) const {
  // The phase-A bitmap is still live in the scratch buffer: candidate
  // count is a popcount sweep, no rescan.
  std::uint64_t candidates = 0;
  const std::size_t blocks = bf_.scan_layout().bitmap_words();
  for (std::size_t b = 0; b < blocks; ++b) {
    candidates += static_cast<std::uint64_t>(std::popcount(candidate_blocks_[b]));
  }
  metrics_->samples->inc();
  metrics_->candidates->inc(candidates);
  metrics_->accepts->inc(accepted);
  metrics_->rejected->inc(candidates - accepted);
  metrics_->scan_ns->record(static_cast<double>(elapsed_ns));
}

template <class Probe>
void BoltEngine::vote_impl(std::span<const float> x, std::span<double> out,
                           Probe probe) {
  const bool timed = metrics_ != nullptr || trace_ != nullptr;
  const std::int64_t binarize_start = timed ? engine_now_ns() : 0;
  // The engine's captured kernel, not the global dispatch hook: one engine
  // binarizes and scans with the same backend for its whole lifetime.
  kernel_.binarize_row(bf_.space().soa(), x.data(), bits_.words().data());
  if (timed) {
    const std::int64_t elapsed = engine_now_ns() - binarize_start;
    if (metrics_ != nullptr) {
      metrics_->binarize_ns->record(static_cast<double>(elapsed));
    }
    if (trace_ != nullptr) {
      trace_->add(util::Stage::kBinarize, elapsed);
      if (trace_->timeline_armed()) {
        util::timeline_record_stage(util::Stage::kBinarize, binarize_start,
                                    elapsed);
      }
    }
  }
  probe.mem(x.data(), x.size() * sizeof(float), archsim::MemDep::kParallel);
  probe.instr(archsim::cost::kPredicateEval * bf_.space().size());
  probe.mem(bf_.space().predicates().data(),
            bf_.space().size() * sizeof(forest::Predicate),
            archsim::MemDep::kParallel);
  vote_bits_impl(bits_, out, probe);
}

int BoltEngine::predict(std::span<const float> x) {
  vote_impl(x, vote_scratch_, engines::NullProbe{});
  util::TraceContext::Span agg(trace_, util::Stage::kAggregate);
  return forest::argmax_class(vote_scratch_);
}

int BoltEngine::predict_traced(std::span<const float> x,
                               archsim::Machine& machine) {
  vote_impl(x, vote_scratch_, engines::SimProbe{machine});
  return forest::argmax_class(vote_scratch_);
}

void BoltEngine::vote(std::span<const float> x, std::span<double> out) {
  vote_impl(x, out, engines::NullProbe{});
}

void BoltEngine::vote_binarized(const util::BitVector& bits,
                                std::span<double> out) {
  vote_bits_impl(bits, out, engines::NullProbe{});
}

std::size_t BoltEngine::memory_bytes() const { return bf_.memory_bytes(); }

BatchScratch::BatchScratch(const BoltForest& bf)
    : words_per_row(util::words_for_bits(bf.space().size())),
      tile_t(words_per_row * kTileRows),
      rowmasks(bf.scan_layout().local_size()), packed_acc(kTileRows),
      votes(kTileRows * bf.num_classes()),
      probe_entries(kProbeWindow), probe_rows(kProbeWindow),
      probe_slots(kProbeWindow), probe_addrs(kProbeWindow) {}

namespace {

/// One tile (n <= kTileRows rows) of the amortized kernel. Funnel counters
/// are accumulated into the caller's totals so metrics cost one set of
/// atomic adds per predict_batch call, not per tile.
void batch_tile(const BoltForest& bf, const float* rows, std::size_t n,
                std::size_t stride, int* out, BatchScratch& s,
                const kernels::KernelOps& kernel,
                std::uint64_t& candidates_total, std::uint64_t& accepted_total,
                const util::EngineMetrics* metrics,
                util::TraceContext* trace) {
  const Dictionary& dict = bf.dictionary();
  const RecombinedTable& table = bf.table();
  const ResultPool& results = bf.results();
  const BloomFilter* bloom = bf.bloom();
  const kernels::ScanLayout& layout = bf.scan_layout();
  const std::size_t classes = bf.num_classes();
  const bool packed = results.packed_available();

  // Columnar binarize, tile-shaped: the kernel walks predicates in
  // feature-CSR order, evaluates each split test against all n rows per
  // vector op, and writes the word-major tile (word w of row r at
  // tile_t[w * kTileRows + r]) directly — no per-row pass, no explicit
  // transpose here. Rows >= n binarize to zero words.
  const bool traced = trace != nullptr;
  const bool timed = traced || metrics != nullptr;
  const std::int64_t binarize_start = timed ? engine_now_ns() : 0;
  constexpr std::size_t kTileRows = BatchScratch::kTileRows;
  kernel.binarize_tile(bf.space().soa(), rows, n, stride, s.tile_t.data());
  if (timed) {
    const std::int64_t binarize_ns = engine_now_ns() - binarize_start;
    if (metrics != nullptr) {
      metrics->binarize_tile_ns->record(static_cast<double>(binarize_ns));
    }
    if (traced) {
      trace->add(util::Stage::kBinarize, binarize_ns);
      if (trace->timeline_armed()) {
        util::timeline_record_stage(util::Stage::kBinarize, binarize_start,
                                    binarize_ns);
      }
    }
  }
  if (packed) {
    std::fill_n(s.packed_acc.begin(), n, std::uint64_t{0});
  } else {
    std::fill_n(s.votes.begin(), n * classes, 0.0);
  }

  // Entry-major scan: the kernel loads each entry's sparse words once and
  // tests them against every row of the tile (branchless — matches OR into
  // a tile-wide rowmask per entry); the entry's address words are then
  // read for just the matching rows while still cache-hot. This is the
  // single-row Phase A/Phase B with the loop nest inverted: dictionary
  // misses are paid once per tile instead of once per row.
  //
  // Table probes are pipelined rather than issued inline. In the per-row
  // path each probe is a dependent random access — one full cache miss of
  // latency, serialized. Here the slot is computed and prefetched as soon
  // as the address is formed, the probe is buffered, and the window drains
  // kProbeWindow at a time: by drain time the slot lines are in flight or
  // resident, so the misses overlap instead of queueing.
  std::uint64_t candidates = 0, accepted = 0;
  const std::uint64_t* tile = s.tile_t.data();
  std::size_t pending = 0;
  // Drain time accumulates separately so the traced scan span excludes
  // the probe window (drains interleave with the entry sweep).
  std::int64_t probe_ns = 0;
  std::uint32_t drains = 0;
  auto drain = [&] {
    const std::int64_t drain_start = traced ? engine_now_ns() : 0;
    for (std::size_t i = 0; i < pending; ++i) {
      const auto result = table.probe_slot(s.probe_slots[i], s.probe_entries[i],
                                           s.probe_addrs[i]);
      if (!result) continue;  // detected false positive
      ++accepted;
      const std::size_t r = s.probe_rows[i];
      if (packed) {
        results.accumulate_packed(*result, s.packed_acc[r]);
      } else {
        results.accumulate(*result, {s.votes.data() + r * classes, classes});
      }
    }
    pending = 0;
    if (traced) {
      probe_ns += engine_now_ns() - drain_start;
      ++drains;
    }
  };
  const std::int64_t scan_start = traced ? engine_now_ns() : 0;
  kernel.scan_tile(layout, tile, n, s.rowmasks.data());
  for (std::size_t local = 0; local < layout.local_size(); ++local) {
    std::uint64_t rowmask = s.rowmasks[local];
    if (rowmask == 0) continue;  // padding lanes never match
    const std::size_t e = layout.entry_id(local);
    candidates += static_cast<std::uint64_t>(std::popcount(rowmask));
    while (rowmask != 0) {
      const std::size_t r = static_cast<std::size_t>(std::countr_zero(rowmask));
      rowmask &= rowmask - 1;
      const std::uint64_t address =
          dict.address_words_strided(e, tile, kTileRows, r);
      if (bloom &&
          !bloom->maybe_contains(static_cast<std::uint32_t>(e), address)) {
        continue;
      }
      const std::size_t slot =
          table.slot_of(static_cast<std::uint32_t>(e), address);
      table.prefetch_slot(slot);
      s.probe_entries[pending] = static_cast<std::uint32_t>(e);
      s.probe_rows[pending] = static_cast<std::uint32_t>(r);
      s.probe_slots[pending] = slot;
      s.probe_addrs[pending] = address;
      if (++pending == BatchScratch::kProbeWindow) drain();
    }
  }
  drain();
  if (traced) {
    const std::int64_t scan_ns = engine_now_ns() - scan_start - probe_ns;
    trace->add(util::Stage::kScan, scan_ns);
    trace->add(util::Stage::kTableProbe, probe_ns,
               std::max<std::uint32_t>(1, drains));
    if (trace->timeline_armed()) {
      // The probe drains interleave with the scan sweep, so both spans are
      // anchored at the sweep start: scan with the probe time carved out,
      // probes as one aggregate span of the accumulated drain time.
      util::timeline_record_stage(util::Stage::kScan, scan_start, scan_ns);
      util::timeline_record_stage(util::Stage::kTableProbe, scan_start,
                                  probe_ns);
    }
  }

  const std::int64_t aggregate_start = traced ? engine_now_ns() : 0;
  for (std::size_t r = 0; r < n; ++r) {
    std::span<double> votes{s.votes.data() + r * classes, classes};
    if (packed) results.unpack(s.packed_acc[r], votes);
    out[r] = forest::argmax_class(votes);
  }
  if (traced) {
    const std::int64_t aggregate_ns = engine_now_ns() - aggregate_start;
    trace->add(util::Stage::kAggregate, aggregate_ns);
    if (trace->timeline_armed()) {
      util::timeline_record_stage(util::Stage::kAggregate, aggregate_start,
                                  aggregate_ns);
    }
  }
  candidates_total += candidates;
  accepted_total += accepted;
}

}  // namespace

void predict_batch_amortized(const BoltForest& bf, std::span<const float> rows,
                             std::size_t num_rows, std::size_t row_stride,
                             std::span<int> out, BatchScratch& scratch,
                             const util::EngineMetrics* metrics,
                             util::TraceContext* trace,
                             const kernels::KernelOps* kernel) {
  const kernels::KernelOps& k =
      kernel != nullptr ? *kernel : kernels::select_kernel();
  std::uint64_t candidates = 0, accepted = 0;
  for (std::size_t begin = 0; begin < num_rows;
       begin += BatchScratch::kTileRows) {
    const std::size_t n =
        std::min(BatchScratch::kTileRows, num_rows - begin);
    batch_tile(bf, rows.data() + begin * row_stride, n, row_stride,
               out.data() + begin, scratch, k, candidates, accepted, metrics,
               trace);
  }
  if (metrics != nullptr) {
    // Batch rows feed the same funnel counters as single-sample predicts
    // (candidates == accepts + rejected stays invariant) plus the batch
    // totals; the per-phase timing histograms stay single-sample-only.
    metrics->samples->inc(num_rows);
    metrics->candidates->inc(candidates);
    metrics->accepts->inc(accepted);
    metrics->rejected->inc(candidates - accepted);
    metrics->batch_rows->inc(num_rows);
    metrics->batch_size->record(static_cast<double>(num_rows));
  }
}

void BoltEngine::predict_batch(std::span<const float> rows,
                               std::size_t num_rows, std::size_t row_stride,
                               std::span<int> out) {
  if (batch_scratch_ == nullptr) {
    batch_scratch_ = std::make_unique<BatchScratch>(bf_);
  }
  predict_batch_amortized(bf_, rows, num_rows, row_stride, out,
                          *batch_scratch_, metrics_, trace_, &kernel_);
}

void BoltEngine::predict_batch_naive(std::span<const float> rows,
                                     std::size_t num_rows,
                                     std::size_t row_stride,
                                     std::span<int> out) {
  for (std::size_t r = 0; r < num_rows; ++r) {
    out[r] = predict({rows.data() + r * row_stride, row_stride});
  }
}

int BoltEngine::predict_profiled(std::span<const float> x,
                                 EntryProfile& profile) {
  bf_.space().binarize(x, bits_);
  const Dictionary& dict = bf_.dictionary();
  const RecombinedTable& table = bf_.table();
  const ResultPool& results = bf_.results();
  std::fill(vote_scratch_.begin(), vote_scratch_.end(), 0.0);
  profile.bump_samples();
  for (std::size_t e = 0; e < dict.num_entries(); ++e) {
    if (!dict.matches(e, bits_)) continue;
    profile.record_candidate(e);
    const std::uint64_t address = dict.address(e, bits_);
    const auto result = table.find(static_cast<std::uint32_t>(e), address);
    if (!result) continue;
    profile.record_accept(e);
    results.accumulate(*result, vote_scratch_);
  }
  return forest::argmax_class(vote_scratch_);
}

int BoltEngine::predict_explained(std::span<const float> x,
                                  Explanation& explanation) {
  bf_.space().binarize(x, bits_);
  std::fill(vote_scratch_.begin(), vote_scratch_.end(), 0.0);

  const Dictionary& dict = bf_.dictionary();
  const ResultPool& results = bf_.results();

  scan_dictionary(
      bf_, bits_, kernel_, candidate_blocks_.data(), engines::NullProbe{},
      [&](std::size_t e, std::uint32_t result_idx) {
        results.accumulate(result_idx, vote_scratch_);

        // Salience: the accepted entry's items are in hand — no extra
        // memory access beyond the lookup that produced the inference.
        double mass = 0.0;
        for (float v : results.votes(result_idx)) mass += v;
        for (PathItem item : dict.common_items(e)) {
          explanation.add_feature(
              bf_.space().predicate(item_pred(item)).feature, mass);
        }
        for (std::uint32_t pred : dict.address_positions(e)) {
          explanation.add_feature(bf_.space().predicate(pred).feature, mass);
        }
      },
      trace_);
  return forest::argmax_class(vote_scratch_);
}

}  // namespace bolt::core
