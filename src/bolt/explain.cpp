#include "bolt/explain.h"

#include <algorithm>
#include <numeric>

namespace bolt::core {

std::vector<std::uint32_t> Explanation::top_k(std::size_t k) const {
  std::vector<std::uint32_t> idx(counts_.size());
  std::iota(idx.begin(), idx.end(), 0);
  k = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                      if (counts_[a] != counts_[b]) {
                        return counts_[a] > counts_[b];
                      }
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

std::vector<std::uint32_t> EntryProfile::hottest(std::size_t k) const {
  std::vector<std::uint32_t> idx(accepts_.size());
  std::iota(idx.begin(), idx.end(), 0);
  k = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                      if (accepts_[a] != accepts_[b]) {
                        return accepts_[a] > accepts_[b];
                      }
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

double EntryProfile::false_positive_rate() const {
  std::uint64_t cand = 0, acc = 0;
  for (std::size_t e = 0; e < candidates_.size(); ++e) {
    cand += candidates_[e];
    acc += accepts_[e];
  }
  return cand == 0 ? 0.0
                   : static_cast<double>(cand - acc) / static_cast<double>(cand);
}

}  // namespace bolt::core
