// ModelHandle: the refcounted indirection between serving and a model's
// storage — the hot-swap substrate. A handle owns "the current forest" as
// a shared_ptr; engines constructed through it hold their own reference,
// so reload() swaps the pointer atomically (under a mutex) while in-flight
// requests keep the old forest (and its file mapping) alive until the
// last engine drops it. Dispatches on the artifact magic: v1 "BOLF" is
// heap-deserialized, v2 "BOL2" is mmap'd zero-copy via MappedArtifact.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "bolt/builder.h"

namespace bolt::artifact {

struct ModelDrainTag;

class ModelHandle {
 public:
  struct Options {
    /// Verify v2 per-section CRCs at every (re)load.
    bool verify_checksums = true;
    /// Run the O(n) structural scans at every (re)load. Turning both
    /// flags off is the trusted map-and-fixup tier — see the contract on
    /// artifact::OpenOptions before using it.
    bool validate_structure = true;
  };

  /// Loads `path` (v1 or v2, by magic). Throws on any load failure.
  explicit ModelHandle(std::string path);
  ModelHandle(std::string path, const Options& opts);

  ModelHandle(const ModelHandle&) = delete;
  ModelHandle& operator=(const ModelHandle&) = delete;

  /// The current forest; never null. Callers keep the returned reference
  /// for the duration of use — a concurrent reload cannot invalidate it.
  std::shared_ptr<const core::BoltForest> current() const;

  /// Re-reads path() and swaps atomically. On failure the current model
  /// stays in place and the error propagates (a bad artifact on disk
  /// never takes down serving).
  void reload();
  /// Points the handle at a new file and swaps (the hot-swap entry
  /// point). On failure the path and model are unchanged.
  void reload(const std::string& new_path);

  /// Monotonic swap count: 1 after construction, +1 per successful
  /// reload. Exposed through STATS/metrics so rollouts are observable.
  std::uint64_t generation() const;

  /// 1 (heap v1) or 2 (mapped v2) for the currently served model.
  unsigned artifact_version() const;

  std::string path() const;

 private:
  struct Loaded {
    std::shared_ptr<const core::BoltForest> forest;
    unsigned version;
    std::shared_ptr<ModelDrainTag> tag;
  };
  static Loaded load(const std::string& path, const Options& opts);
  /// Stamps the outgoing generation's drain tag and installs the new
  /// model. Caller must hold mu_.
  void swap_locked(Loaded&& l);

  mutable std::mutex mu_;
  std::string path_;
  Options opts_;
  std::shared_ptr<const core::BoltForest> cur_;
  // Weak ref to the drain tag riding cur_'s control block: reload() uses
  // it to stamp the retirement instant on the generation being replaced
  // (the tag's destructor — the last engine reference dropping — closes
  // the drain span). Weak so the handle itself never extends the drain.
  std::weak_ptr<ModelDrainTag> cur_tag_;
  unsigned version_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace bolt::artifact
